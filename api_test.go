package uncertaingraph_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	ug "uncertaingraph"
)

// TestPublicAPIEndToEnd exercises the full facade the way a downstream
// user would: build a graph, obfuscate, verify, estimate utility,
// compare against a baseline, round-trip the publication format.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := ug.NewRand(1)
	g := ug.SocialGraph(rng, 400, 500, []float64{0, 0, 0.5, 0.3, 0.2}, 0.4)
	if g.NumVertices() != 400 || g.NumEdges() == 0 {
		t.Fatal("generator failed")
	}

	res, err := ug.Obfuscate(context.Background(), g,
		ug.WithK(5), ug.WithEps(0.1), ug.WithSeed(2),
		ug.WithObfuscation(ug.ObfuscationParams{Trials: 2, Delta: 1e-3}))
	if err != nil {
		t.Fatal(err)
	}
	if !ug.VerifyObfuscation(res.G, g.Degrees(), 5, 0.1) {
		t.Error("published graph fails independent verification")
	}
	levels := ug.ObfuscationLevels(res.G, g.Degrees())
	if len(levels) != 400 {
		t.Fatal("level count")
	}

	rep, err := ug.EstimateStatistics(context.Background(), res.G,
		ug.WithWorlds(10), ug.WithSeed(3), ug.WithDistances(ug.DistanceExactBFS))
	if err != nil {
		t.Fatal(err)
	}
	real, err := ug.Statistics(context.Background(), g, ug.WithDistances(ug.DistanceExactBFS))
	if err != nil {
		t.Fatal(err)
	}
	if rep.RelErr("S_NE", real["S_NE"]) > 0.5 {
		t.Errorf("S_NE error %v implausibly large", rep.RelErr("S_NE", real["S_NE"]))
	}

	// Baselines and their anonymity.
	sp := ug.Sparsify(g, 0.3, ug.NewRand(4))
	if sp.NumEdges() >= g.NumEdges() {
		t.Error("sparsification did not remove edges")
	}
	if lv := ug.SparsifyAnonymity(g, sp, 0.3); len(lv) != 400 {
		t.Error("sparsify anonymity length")
	}
	pt := ug.Perturb(g, 0.3, ug.NewRand(5))
	if lv := ug.PerturbAnonymity(g, pt, 0.3); len(lv) != 400 {
		t.Error("perturb anonymity length")
	}

	// Publication round trip.
	var buf bytes.Buffer
	if err := ug.WriteUncertainGraph(&buf, res.G); err != nil {
		t.Fatal(err)
	}
	back, err := ug.ReadUncertainGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPairs() != res.G.NumPairs() {
		t.Error("round trip lost pairs")
	}
	if math.Abs(back.ExpectedNumEdges()-res.G.ExpectedNumEdges()) > 1e-6 {
		t.Error("round trip changed expected edges")
	}
}

func TestPublicGraphIO(t *testing.T) {
	g := ug.GraphFromEdges(3, []ug.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	var buf bytes.Buffer
	if err := ug.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ug.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 {
		t.Error("graph IO round trip")
	}
}

func TestPublicDistancePipelines(t *testing.T) {
	g := ug.ErdosRenyi(ug.NewRand(6), 300, 900)
	exact := ug.ExactDistances(g)
	approx := ug.ApproxDistances(g, 9, 1)
	if exact.AvgDistance() <= 0 {
		t.Fatal("exact distances empty")
	}
	rel := math.Abs(exact.AvgDistance()-approx.AvgDistance()) / exact.AvgDistance()
	if rel > 0.1 {
		t.Errorf("ANF AvgDistance off by %v", rel)
	}
	if cc := ug.ClusteringCoefficient(g); cc < 0 || cc > 1 {
		t.Errorf("clustering coefficient %v", cc)
	}
	dd := ug.DegreeDistribution(g)
	var sum float64
	for _, f := range dd {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Error("degree distribution normalization")
	}
}

func TestAttackAndQueryFacade(t *testing.T) {
	g := ug.SocialGraph(ug.NewRand(8), 300, 360, []float64{0, 0, 0.6, 0.4}, 0.3)
	snaps := ug.EvolveGraph(g, 2, 0.2, ug.NewRand(9))
	if len(snaps) != 2 {
		t.Fatal("snapshot count")
	}
	trails := ug.DegreeTrails(snaps)
	crowds := ug.DegreeTrailCrowds(snaps)
	if len(crowds) != 300 || len(trails) != 300 {
		t.Fatal("attack output sizes")
	}
	published := []*ug.UncertainGraph{ug.CertainGraph(snaps[0]), ug.CertainGraph(snaps[1])}
	levels := ug.SequentialObfuscationLevels(published, trails, []int{0, 1, 2})
	for i, l := range levels {
		// Certain releases degenerate to exact trail matching.
		if math.Abs(l-float64(crowds[i])) > 1e-6 {
			t.Errorf("target %d: level %v vs crowd %d", i, l, crowds[i])
		}
	}

	// Belief anonymity is dominated by the entropy level.
	c := ug.CertainGraph(g)
	bel := ug.BeliefAnonymity(c, g.Degrees())
	ent := ug.ObfuscationLevels(c, g.Degrees())
	for v := range bel {
		if ent[v] < bel[v]-1e-9 {
			t.Fatalf("vertex %d: entropy level %v below belief %v", v, ent[v], bel[v])
		}
	}

	// Query engine over a certain publication: exact semantics.
	e := ug.NewQueryEngine(c, 50, ug.NewRand(10))
	if e.Reliability(0, 0) != 1 {
		t.Error("self reliability")
	}
}

// TestQueryBatchFacade exercises the batched serving path through the
// public facade: one world set shared by all registered queries, exact
// answers on certain structure, and the count-rule median surfaced via
// KNearestWithMedians.
func TestQueryBatchFacade(t *testing.T) {
	g, err := ug.NewUncertainGraph(4, []ug.Pair{
		{U: 0, V: 1, P: 1}, {U: 1, V: 2, P: 1}, {U: 2, V: 3, P: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ug.NewQueryBatch(g, ug.WithWorlds(200), ug.WithSeed(3), ug.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	rel := b.AddReliability(0, 2)
	dist := b.AddDistance(0, 2)
	knn := b.AddKNearest(0, 2)
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := b.Reliability(rel); got != 1 {
		t.Errorf("Pr(0~2) = %v, want 1 (certain path)", got)
	}
	if got := b.MedianDistance(dist); got != 2 {
		t.Errorf("median(0,2) = %d, want 2", got)
	}
	want := []ug.QueryNeighbor{{V: 1, Median: 1}, {V: 2, Median: 2}}
	if got := b.KNearestWithMedians(knn); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("KNearestWithMedians = %v, want %v", got, want)
	}

	// WithMemoryBudget: a k-NN set priced over the budget fails Run
	// with the typed ErrOverBudget before any accumulator grows.
	tight, err := ug.NewQueryBatch(g, ug.WithWorlds(50), ug.WithMemoryBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	tight.AddKNearest(0, 2)
	if err := tight.Run(context.Background()); !errors.Is(err, ug.ErrOverBudget) {
		t.Errorf("over-budget Run err = %v, want ErrOverBudget", err)
	}
}

func TestCertainGraphSemantics(t *testing.T) {
	g := ug.GraphFromEdges(4, []ug.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	c := ug.CertainGraph(g)
	w := ug.SampleWorld(c, ug.NewRand(7))
	if w.NumEdges() != 2 || !w.HasEdge(0, 1) || !w.HasEdge(2, 3) {
		t.Error("certain graph must sample to itself")
	}
	// A certain graph's obfuscation level is the degree crowd size.
	levels := ug.ObfuscationLevels(c, g.Degrees())
	for _, l := range levels {
		if math.Abs(l-4) > 1e-9 {
			t.Errorf("level %v, want 4 (all vertices share degree 1)", l)
		}
	}
}
