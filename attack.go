package uncertaingraph

import (
	"math/rand"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/degreetrail"
)

// EvolveGraph returns `releases` growing snapshots of g (preferential
// edge additions of growth*|E| edges per step), modelling the
// sequential-release scenario of the paper's Section 8.
func EvolveGraph(g *Graph, releases int, growth float64, rng *rand.Rand) []*Graph {
	return degreetrail.Evolve(g, releases, growth, rng)
}

// DegreeTrails returns trails[v][t] = degree of v in snapshot t: the
// adversary's background knowledge in the degree-trail attack.
func DegreeTrails(snapshots []*Graph) [][]int { return degreetrail.Trails(snapshots) }

// DegreeTrailCrowds runs the Medforth–Wang degree-trail attack against
// certain releases: for each vertex, the number of vertices sharing its
// exact degree trail (1 = fully re-identified).
func DegreeTrailCrowds(snapshots []*Graph) []int {
	return degreetrail.CertainCrowdSizes(snapshots)
}

// SequentialObfuscationLevels runs the degree-trail attack against a
// sequence of uncertain releases: per target, the entropy-based level
// of the adversary's combined belief across releases. targets nil
// attacks every vertex.
func SequentialObfuscationLevels(published []*UncertainGraph, trails [][]int, targets []int) []float64 {
	models := make([]adversary.Model, len(published))
	for i, g := range published {
		models[i] = adversary.UncertainModel{G: g}
	}
	return degreetrail.SequentialLevels(models, trails, targets)
}

// BeliefAnonymity returns the per-vertex a-posteriori belief anonymity
// 1/max_u Y_{deg(v)}(u) — the Hay et al. measure that the paper's
// entropy levels provably dominate. Useful for comparing the two
// measures on the same publication.
func BeliefAnonymity(ug *UncertainGraph, originalDegrees []int) []float64 {
	return adversary.BeliefLevels(adversary.UncertainModel{G: ug}, originalDegrees)
}
