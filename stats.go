package uncertaingraph

import (
	"uncertaingraph/internal/anf"
	"uncertaingraph/internal/bfs"
	"uncertaingraph/internal/sampling"
	"uncertaingraph/internal/stats"
)

// StatNames lists the ten scalar statistics of the paper's evaluation,
// in Table 4 order: S_NE, S_AD, S_MD, S_DV, S_PL, S_APD, S_DiamLB,
// S_EDiam, S_CL, S_CC.
var StatNames = sampling.StatNames

// EstimateConfig tunes statistic estimation on uncertain graphs.
type EstimateConfig = sampling.Config

// EstimateReport aggregates per-world statistic samples: means,
// relative SEMs and relative errors.
type EstimateReport = sampling.Report

// Distance estimators for the distance-based statistics.
const (
	// DistanceANF estimates distances with HyperANF (the paper's
	// method).
	DistanceANF = sampling.DistanceANF
	// DistanceExactBFS computes them exactly (small graphs).
	DistanceExactBFS = sampling.DistanceExactBFS
	// DistanceSampledBFS scales BFS trees from sampled sources.
	DistanceSampledBFS = sampling.DistanceSampledBFS
)

// Statistics evaluates the ten paper statistics on a certain graph.
func Statistics(g *Graph, cfg EstimateConfig) map[string]float64 {
	return sampling.ScalarsOf(g, cfg, cfg.Seed)
}

// EstimateStatistics samples possible worlds of an uncertain graph and
// returns the aggregated statistic report (paper Section 6.1).
func EstimateStatistics(ug *UncertainGraph, cfg EstimateConfig) *EstimateReport {
	return sampling.Run(ug, cfg)
}

// DistanceDistribution is the S_PDD shape shared by the exact and
// estimated distance pipelines.
type DistanceDistribution = stats.DistanceDistribution

// ExactDistances computes the exact pairwise distance distribution by
// all-sources BFS.
func ExactDistances(g *Graph) DistanceDistribution { return bfs.DistanceDistribution(g) }

// ApproxDistances estimates the distance distribution with HyperANF
// using 2^bits registers per counter (bits = 0 selects the default).
func ApproxDistances(g *Graph, bits int, seed uint64) DistanceDistribution {
	return anf.DistanceDistribution(g, anf.Options{Bits: bits, Seed: seed})
}

// ClusteringCoefficient returns the paper's S_CC = T3/T2.
func ClusteringCoefficient(g *Graph) float64 { return stats.ClusteringCoefficient(g) }

// DegreeDistribution returns the fraction of vertices per degree.
func DegreeDistribution(g *Graph) []float64 { return stats.DegreeDistribution(g) }
