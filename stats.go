package uncertaingraph

import (
	"context"

	"uncertaingraph/internal/anf"
	"uncertaingraph/internal/bfs"
	"uncertaingraph/internal/sampling"
	"uncertaingraph/internal/stats"
)

// StatNames lists the ten scalar statistics of the paper's evaluation,
// in Table 4 order: S_NE, S_AD, S_MD, S_DV, S_PL, S_APD, S_DiamLB,
// S_EDiam, S_CL, S_CC.
var StatNames = sampling.StatNames

// EstimateConfig tunes statistic estimation on uncertain graphs. New
// code passes the estimation knobs via WithEstimate (plus WithWorlds,
// WithSeed, WithWorkers, WithDistances); the struct remains the
// exchange format between the two layers.
type EstimateConfig = sampling.Config

// EstimateReport aggregates per-world statistic samples: means,
// relative SEMs and relative errors.
type EstimateReport = sampling.Report

// DistanceMethod selects how per-world distance distributions are
// computed (see the estimator constants below); pass it via
// WithDistances.
type DistanceMethod = sampling.DistanceMethod

// Distance estimators for the distance-based statistics.
const (
	// DistanceANF estimates distances with HyperANF (the paper's
	// method).
	DistanceANF = sampling.DistanceANF
	// DistanceExactBFS computes them exactly (small graphs).
	DistanceExactBFS = sampling.DistanceExactBFS
	// DistanceSampledBFS scales BFS trees from sampled sources.
	DistanceSampledBFS = sampling.DistanceSampledBFS
)

// Statistics evaluates the ten paper statistics on a certain graph.
// Cancellation is coarse: ctx is checked on entry (a single graph's
// evaluation is one unit of work); option validation failures return
// an error wrapping ErrBadConfig.
func Statistics(ctx context.Context, g *Graph, opts ...Option) (map[string]float64, error) {
	s, err := newSettings(opts)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	cfg := s.estimateConfig(StageEstimate)
	return sampling.ScalarsOf(g, cfg, cfg.Seed), nil
}

// StatisticsWithConfig is the v1 form of Statistics: no cancellation,
// all configuration through the config struct.
//
// Deprecated: use Statistics(ctx, g, opts...). This wrapper remains for
// one release of compatibility.
func StatisticsWithConfig(g *Graph, cfg EstimateConfig) map[string]float64 {
	return sampling.ScalarsOf(g, cfg, cfg.Seed)
}

// EstimateStatistics samples possible worlds of an uncertain graph and
// returns the aggregated statistic report (paper Section 6.1).
//
//	rep, err := uncertaingraph.EstimateStatistics(ctx, pub,
//	    uncertaingraph.WithWorlds(100), uncertaingraph.WithSeed(7))
//
// Worlds are evaluated on WithWorkers goroutines under the shared
// determinism contract: world i's RNG stream derives from (seed, i)
// alone, so the report is bit-identical for every worker count.
// Cancelling ctx aborts between worlds, joins every worker, and
// returns ctx.Err() with no partial report; option validation failures
// return an error wrapping ErrBadConfig. A nil ctx never cancels.
func EstimateStatistics(ctx context.Context, ug *UncertainGraph, opts ...Option) (*EstimateReport, error) {
	s, err := newSettings(opts)
	if err != nil {
		return nil, err
	}
	return sampling.Run(ctx, ug, s.estimateConfig(StageEstimate))
}

// VectorFn maps a sampled world to a vector statistic (degree
// distribution, distance distribution fractions, ...). The graph
// passed to fn is only valid for the duration of the call; the
// returned slice must not alias it.
type VectorFn = sampling.VectorFn

// RunVector evaluates a vector statistic on each sampled world of an
// uncertain graph, returning one row per world (rows may have
// different lengths; callers typically pad or box-summarize). It obeys
// the same options, cancellation and determinism contract as
// EstimateStatistics; with WithTolerance the run stops early once
// every coordinate's relative SEM is inside the tolerance (shorter
// rows contribute 0 beyond their length), and the returned rows are
// bit-identical to the same-length prefix of a full fixed-budget run.
func RunVector(ctx context.Context, ug *UncertainGraph, fn VectorFn, opts ...Option) ([][]float64, error) {
	s, err := newSettings(opts)
	if err != nil {
		return nil, err
	}
	return sampling.RunVector(ctx, ug, s.estimateConfig(StageEstimate), fn)
}

// EstimateStatisticsWithConfig is the v1 form of EstimateStatistics: no
// cancellation, all configuration through the config struct.
//
// Deprecated: use EstimateStatistics(ctx, ug, opts...). This wrapper
// remains for one release of compatibility.
func EstimateStatisticsWithConfig(ug *UncertainGraph, cfg EstimateConfig) *EstimateReport {
	rep, _ := sampling.Run(context.Background(), ug, cfg)
	return rep
}

// DistanceDistribution is the S_PDD shape shared by the exact and
// estimated distance pipelines.
type DistanceDistribution = stats.DistanceDistribution

// ExactDistances computes the exact pairwise distance distribution by
// all-sources BFS.
func ExactDistances(g *Graph) DistanceDistribution { return bfs.DistanceDistribution(g) }

// ApproxDistances estimates the distance distribution with HyperANF
// using 2^bits registers per counter (bits = 0 selects the default).
func ApproxDistances(g *Graph, bits int, seed uint64) DistanceDistribution {
	return anf.DistanceDistribution(g, anf.Options{Bits: bits, Seed: seed})
}

// ClusteringCoefficient returns the paper's S_CC = T3/T2.
func ClusteringCoefficient(g *Graph) float64 { return stats.ClusteringCoefficient(g) }

// DegreeDistribution returns the fraction of vertices per degree.
func DegreeDistribution(g *Graph) []float64 { return stats.DegreeDistribution(g) }
