package uncertaingraph

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadConfig is returned (wrapped, with detail) by the context-first
// entry points when an option carries a nonsensical value — a negative
// worker budget, a non-positive world count, an obfuscation level below
// 1. Test with errors.Is.
var ErrBadConfig = errors.New("uncertaingraph: bad configuration")

func badConfig(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadConfig, fmt.Sprintf(format, args...))
}

// Progress is one progress observation delivered to a WithProgress
// callback: Done units of Total are finished in the named stage. Units
// are stage-specific — σ probes for "obfuscate", sampled worlds for
// "estimate" and "query". Total is 0 while the operation's length is
// not yet known (the doubling phase of the obfuscation search).
// Progress observation never affects results.
type Progress struct {
	Stage string
	Done  int
	Total int
}

// Stage names delivered in Progress.Stage.
const (
	StageObfuscate = "obfuscate"
	StageEstimate  = "estimate"
	StageQuery     = "query"
)

// Option configures a context-first entry point (Obfuscate,
// EstimateStatistics, Statistics, NewQueryBatch). The shared options —
// WithSeed, WithWorkers, WithWorlds, WithProgress — mean the same thing
// everywhere and replace the per-call rng parameters and per-struct
// Seed/Rng/Workers fields of the v1 API; entry points silently ignore
// options that do not apply to them (WithWorlds on Obfuscate). Invalid
// values are reported by the entry point as errors wrapping
// ErrBadConfig rather than being silently clamped.
type Option func(*settings) error

// settings is the merged view of an option list. Set-flags distinguish
// "explicitly configured" from zero values so that bulk options
// (WithObfuscation, WithEstimate) compose with the shared ones: shared
// options win regardless of argument order.
type settings struct {
	seed       int64
	seedSet    bool
	workers    int
	workersSet bool
	worlds     int
	worldsSet  bool
	maxWorlds  int
	tolerance  float64
	memBudget  int64
	progress   func(Progress)

	k            float64
	kSet         bool
	eps          float64
	epsSet       bool
	obf          ObfuscationParams
	obfSet       bool
	est          EstimateConfig
	estSet       bool
	distances    DistanceMethod
	distancesSet bool
}

func newSettings(opts []Option) (*settings, error) {
	s := &settings{}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// WithSeed pins the base seed of the operation's determinism contract:
// every RNG stream — per-(σ, trial) obfuscation streams, per-world
// sampling streams — is derived from it via randx.Derive-style
// splitting, so results are bit-identical for every worker count and
// every scheduling. Seeds at or above 2^63 fold their top bit off (the
// internal engines use non-negative int64 seeds); seed 0 selects the
// historical default stream (seed 1) in Obfuscate, matching the v1 API.
func WithSeed(seed uint64) Option {
	return func(s *settings) error {
		s.seed = int64(seed & math.MaxInt64)
		s.seedSet = true
		return nil
	}
}

// WithWorkers bounds the operation's concurrency. 0 selects GOMAXPROCS;
// negative counts are rejected with ErrBadConfig. Results never depend
// on the value — workers trade wall-clock time only. The budget spans
// both parallelism axes: world-sampling operations spend it across
// sampled worlds while enough worlds are queued to absorb it, and
// spill the leftover into each world's frontier-parallel BFS when they
// are not (see the package comment and the README's "Intra-world
// parallelism" subsection).
func WithWorkers(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return badConfig("workers %d must be >= 0 (0 selects GOMAXPROCS)", n)
		}
		s.workers = n
		s.workersSet = true
		return nil
	}
}

// WithWorlds sets the Monte-Carlo sample size r for world-sampling
// operations (EstimateStatistics, NewQueryBatch). Non-positive counts
// are rejected with ErrBadConfig; omit the option to get the
// operation's default (100 worlds for estimation, the Hoeffding 738
// for queries).
func WithWorlds(r int) Option {
	return func(s *settings) error {
		if r <= 0 {
			return badConfig("worlds %d must be positive", r)
		}
		s.worlds = r
		s.worldsSet = true
		return nil
	}
}

// WithTolerance enables adaptive-precision estimation: the operation
// samples worlds in fixed-size blocks and stops at the first block
// barrier where every statistic's (EstimateStatistics) or query's
// (NewQueryBatch) relative standard error of the mean is at most tol.
// The worlds count — WithWorlds, or WithMaxWorlds for estimation —
// stays the budget; a run that never converges uses all of it.
//
// Determinism: a run stopped after b blocks is bit-identical to the
// first b blocks of an uncancelled full-budget run, for every
// WithWorkers value — adaptive stopping changes how many worlds are
// measured, never what any world measures. Reports carry the worlds
// actually used (Report.WorldsUsed, Batch.WorldsRun) and per-statistic
// convergence flags.
//
// tol 0 (the default) disables adaptive stopping; negative, NaN or
// infinite tolerances are rejected with ErrBadConfig.
func WithTolerance(tol float64) Option {
	return func(s *settings) error {
		if tol < 0 || math.IsNaN(tol) || math.IsInf(tol, 0) {
			return badConfig("tolerance %v must be a finite non-negative number", tol)
		}
		s.tolerance = tol
		return nil
	}
}

// WithMaxWorlds caps the world budget of an adaptive estimation run
// (EstimateStatistics with WithTolerance): seeds are pre-derived for
// cap worlds and the run may stop at any block boundary before
// reaching it. It overrides the budget independently of WithWorlds, so
// callers can keep a small fixed default while letting adaptive runs
// range further. For NewQueryBatch it caps the effective world count.
// Non-positive caps are rejected with ErrBadConfig.
func WithMaxWorlds(cap int) Option {
	return func(s *settings) error {
		if cap <= 0 {
			return badConfig("max worlds %d must be positive", cap)
		}
		s.maxWorlds = cap
		return nil
	}
}

// WithMemoryBudget bounds the accumulator memory of a query batch
// (NewQueryBatch) in bytes. Run rejects a query set whose worst-case
// k-NN histogram footprint — distinct k-NN sources × n² int32 counters
// × workers — exceeds the budget, returning an error for which
// errors.Is(err, ErrOverBudget) is true, and Reset sheds retained
// high-water buffers above the budget so a pooled batch cannot pin one
// huge request's memory forever. Zero (the default) disables both
// checks; negative budgets are rejected with ErrBadConfig. Other entry
// points ignore the option.
func WithMemoryBudget(bytes int64) Option {
	return func(s *settings) error {
		if bytes < 0 {
			return badConfig("memory budget %d must be >= 0 (0 disables the budget)", bytes)
		}
		s.memBudget = bytes
		return nil
	}
}

// WithProgress registers a progress observer. Parallel stages invoke
// fn concurrently from worker goroutines; fn must be safe for
// concurrent use and must not block for long. Observation never
// affects results — a run with a progress callback is bit-identical to
// one without.
func WithProgress(fn func(Progress)) Option {
	return func(s *settings) error {
		s.progress = fn
		return nil
	}
}

// validateK and validateEps hold the single copy of the (k, ε) rules,
// shared by the WithK/WithEps constructors and the merged-params
// validation in Obfuscate (the bulk WithObfuscation struct may carry
// k and ε too, and must hit the same ErrBadConfig).
func validateK(k float64) error {
	if k < 1 || math.IsNaN(k) {
		return badConfig("obfuscation level k = %v must be >= 1", k)
	}
	return nil
}

func validateEps(eps float64) error {
	if eps < 0 || eps >= 1 || math.IsNaN(eps) {
		return badConfig("eps = %v must be in [0, 1)", eps)
	}
	return nil
}

func validateKEps(k, eps float64) error {
	if err := validateK(k); err != nil {
		return err
	}
	return validateEps(eps)
}

// WithK sets the obfuscation level k (Definition 2; the paper uses 20,
// 60, 100). Values below 1 are rejected with ErrBadConfig.
func WithK(k float64) Option {
	return func(s *settings) error {
		if err := validateK(k); err != nil {
			return err
		}
		s.k = k
		s.kSet = true
		return nil
	}
}

// WithEps sets the tolerated fraction ε of non-obfuscated vertices
// (the paper uses 1e-3 and 1e-4). Values outside [0, 1) are rejected
// with ErrBadConfig.
func WithEps(eps float64) Option {
	return func(s *settings) error {
		if err := validateEps(eps); err != nil {
			return err
		}
		s.eps = eps
		s.epsSet = true
		return nil
	}
}

// WithObfuscation supplies the full ObfuscationParams struct for the
// domain knobs without a dedicated option (C, Q, Trials, Delta,
// SigmaInit, MaxSigma, ExactThreshold, Property, DisableHExclusion).
// The shared options — WithSeed, WithWorkers, WithProgress — and WithK/
// WithEps override the corresponding fields regardless of option
// order. A params struct carrying a negative Workers or Trials count,
// or the deprecated Rng field, is rejected with ErrBadConfig: under
// the v2 determinism contract all randomness derives from the seed.
func WithObfuscation(p ObfuscationParams) Option {
	return func(s *settings) error {
		if p.Workers < 0 {
			return badConfig("ObfuscationParams.Workers %d must be >= 0", p.Workers)
		}
		if p.Trials < 0 {
			return badConfig("ObfuscationParams.Trials %d must be >= 0", p.Trials)
		}
		if p.Rng != nil {
			return badConfig("ObfuscationParams.Rng is not supported by the option API; use WithSeed")
		}
		s.obf = p
		s.obfSet = true
		return nil
	}
}

// WithEstimate supplies the full EstimateConfig struct for the
// estimation knobs without a dedicated option (ANFBits, BFSSources,
// PowerLawMinDegree, EffectiveDiameterQ). The shared options override
// the corresponding fields regardless of option order. Negative
// Workers or Worlds counts are rejected with ErrBadConfig (0 still
// selects the defaults, matching the v1 struct).
func WithEstimate(cfg EstimateConfig) Option {
	return func(s *settings) error {
		if cfg.Workers < 0 {
			return badConfig("EstimateConfig.Workers %d must be >= 0", cfg.Workers)
		}
		if cfg.Worlds < 0 {
			return badConfig("EstimateConfig.Worlds %d must be >= 0", cfg.Worlds)
		}
		s.est = cfg
		s.estSet = true
		return nil
	}
}

// WithDistances selects the per-world distance estimator for
// EstimateStatistics and Statistics (DistanceANF, DistanceExactBFS,
// DistanceSampledBFS).
func WithDistances(m DistanceMethod) Option {
	return func(s *settings) error {
		if m != DistanceANF && m != DistanceExactBFS && m != DistanceSampledBFS {
			return badConfig("unknown distance method %d", m)
		}
		s.distances = m
		s.distancesSet = true
		return nil
	}
}

// stageProgress adapts the user's Progress observer to the internal
// engines' (done, total) callbacks, stamping the stage name.
func stageProgress(fn func(Progress), stage string) func(done, total int) {
	if fn == nil {
		return nil
	}
	return func(done, total int) { fn(Progress{Stage: stage, Done: done, Total: total}) }
}

// obfuscationParams merges the option list into the core engine's
// parameter struct.
func (s *settings) obfuscationParams() ObfuscationParams {
	p := s.obf
	if s.kSet {
		p.K = s.k
	}
	if s.epsSet {
		p.Eps = s.eps
	}
	if s.seedSet {
		p.Seed = s.seed
	}
	if s.workersSet {
		p.Workers = s.workers
	}
	if s.progress != nil {
		p.Progress = stageProgress(s.progress, StageObfuscate)
	}
	return p
}

// estimateConfig merges the option list into the sampling engine's
// config struct.
func (s *settings) estimateConfig(stage string) EstimateConfig {
	cfg := s.est
	if s.worldsSet {
		cfg.Worlds = s.worlds
	}
	if s.seedSet {
		cfg.Seed = s.seed
	}
	if s.workersSet {
		cfg.Workers = s.workers
	}
	if s.distancesSet {
		cfg.Distances = s.distances
	}
	if s.tolerance > 0 {
		cfg.Tolerance = s.tolerance
	}
	if s.maxWorlds > 0 {
		cfg.MaxWorlds = s.maxWorlds
	}
	if s.progress != nil {
		cfg.Progress = stageProgress(s.progress, stage)
	}
	return cfg
}

// queryConfig merges the option list into the query engine's config
// struct.
func (s *settings) queryConfig() QueryConfig {
	worlds := s.worlds
	// The query engine's Worlds is already the (adaptive) budget, so
	// WithMaxWorlds acts as a ceiling on it.
	if s.maxWorlds > 0 && (worlds == 0 || worlds > s.maxWorlds) {
		worlds = s.maxWorlds
	}
	return QueryConfig{
		Worlds:       worlds,
		Seed:         s.seed,
		Workers:      s.workers,
		Tolerance:    s.tolerance,
		MemoryBudget: s.memBudget,
		Progress:     stageProgress(s.progress, StageQuery),
	}
}
