// Benchmarks for the parallel trial engine: the same full Algorithm 1
// run on a ~5k-vertex heavy-tailed graph, sequential (Workers: 1)
// versus parallel (Workers: GOMAXPROCS). Both return bit-identical
// results — the equivalence is asserted once per benchmark process —
// so the two timings isolate the wall-clock effect of concurrent
// trials, speculative σ probing, and the parallel adversary scan.
//
//	go test -bench 'BenchmarkObfuscate(Sequential|Parallel)' -benchtime 3x .
package uncertaingraph_test

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"uncertaingraph/internal/core"
	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

var (
	parBenchOnce  sync.Once
	parBenchGraph *graph.Graph
)

// parallelBenchGraph is a dblp-like stand-in at ~5k vertices / ~15k
// edges — large enough that the adversary scan and candidate selection
// dominate, small enough for CI.
func parallelBenchGraph() *graph.Graph {
	parBenchOnce.Do(func() {
		parBenchGraph = gen.HolmeKim(randx.New(1), 5000, 3, 0.3)
	})
	return parBenchGraph
}

func benchObfuscate(b *testing.B, workers int) {
	g := parallelBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Obfuscate(context.Background(), g, core.Params{
			K: 10, Eps: 0.05, Trials: 5, Delta: 1e-4,
			Workers: workers, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Sigma <= 0 {
			b.Fatal("degenerate sigma")
		}
	}
}

func BenchmarkObfuscateSequential(b *testing.B) { benchObfuscate(b, 1) }

func BenchmarkObfuscateParallel(b *testing.B) {
	if runtime.GOMAXPROCS(0) == 1 {
		b.Log("GOMAXPROCS=1: parallel timing degenerates to sequential plus overhead")
	}
	benchObfuscate(b, runtime.GOMAXPROCS(0))
}

// TestObfuscateBenchConfigEquivalence pins that the two benchmark
// configurations really measure the same computation: identical σ, ε̃,
// and work counters at the benchmark's full 5k-vertex size.
func TestObfuscateBenchConfigEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("5k-vertex obfuscation is beyond -short budget")
	}
	g := parallelBenchGraph()
	run := func(workers int) *core.Result {
		res, err := core.Obfuscate(context.Background(), g, core.Params{
			K: 10, Eps: 0.05, Trials: 5, Delta: 1e-4,
			Workers: workers, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(4)
	if seq.Sigma != par.Sigma || seq.EpsTilde != par.EpsTilde ||
		seq.Generations != par.Generations || seq.Trials != par.Trials {
		t.Errorf("benchmark configs diverge: seq=(%v,%v,%d,%d) par=(%v,%v,%d,%d)",
			seq.Sigma, seq.EpsTilde, seq.Generations, seq.Trials,
			par.Sigma, par.EpsTilde, par.Generations, par.Trials)
	}
}
