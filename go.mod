module uncertaingraph

go 1.22
