package randx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewReproducible(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(100)
	same := true
	for i := 0; i < 10; i++ {
		if New(99).Int63() != c.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different streams")
	}
}

func TestFillWorldSeedsMatchesDirectDraws(t *testing.T) {
	// The helper must reproduce exactly the sequential Int63 stream the
	// sampling pipeline has always pre-derived (its pinned regressions
	// depend on it), and refilling from a reseeded master must replay it.
	seeds := make([]int64, 32)
	FillWorldSeeds(seeds, New(7))
	direct := New(7)
	for i, s := range seeds {
		if want := direct.Int63(); s != want {
			t.Fatalf("seed[%d] = %d, want direct draw %d", i, s, want)
		}
	}
	master := New(0)
	master.Seed(7)
	again := make([]int64, 32)
	FillWorldSeeds(again, master)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatalf("reseeded refill diverged at %d", i)
		}
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	rng := New(7)
	counts := make([]int, len(weights))
	const n = 400000
	for i := 0; i < n; i++ {
		counts[a.Draw(rng)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.005 {
			t.Errorf("outcome %d: freq %v, want %v", i, got, want)
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a := NewAlias([]float64{0, 1, 0, 2, 0})
	rng := New(13)
	for i := 0; i < 100000; i++ {
		k := a.Draw(rng)
		if k != 1 && k != 3 {
			t.Fatalf("drew zero-weight outcome %d", k)
		}
	}
}

func TestAliasDegenerate(t *testing.T) {
	if NewAlias(nil) != nil {
		t.Error("empty weights should return nil")
	}
	if NewAlias([]float64{0, 0}) != nil {
		t.Error("all-zero weights should return nil")
	}
	a := NewAlias([]float64{5})
	rng := New(1)
	if a.Draw(rng) != 0 {
		t.Error("single outcome must always be drawn")
	}
	if a.Len() != 1 {
		t.Error("Len mismatch")
	}
}

func TestAliasNegativeTreatedAsZero(t *testing.T) {
	a := NewAlias([]float64{-3, 1})
	rng := New(2)
	for i := 0; i < 10000; i++ {
		if a.Draw(rng) != 1 {
			t.Fatal("negative weight drawn")
		}
	}
}

// Property: alias table construction never panics and always draws valid
// indices, for arbitrary non-negative weight vectors.
func TestAliasProperty(t *testing.T) {
	f := func(raw []float64) bool {
		weights := make([]float64, len(raw))
		anyPos := false
		for i, w := range raw {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				w = 0
			}
			weights[i] = math.Mod(math.Abs(w), 1e9)
			if weights[i] > 0 {
				anyPos = true
			}
		}
		a := NewAlias(weights)
		if !anyPos {
			return a == nil
		}
		if a == nil {
			return false
		}
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 50; i++ {
			k := a.Draw(rng)
			if k < 0 || k >= len(weights) {
				return false
			}
			if weights[k] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAliasSkewedWeights(t *testing.T) {
	// Heavily skewed weights, as produced by uniqueness scores on
	// power-law degree distributions.
	weights := []float64{1e-9, 1e-3, 1, 1e3, 1e6}
	a := NewAlias(weights)
	rng := New(21)
	counts := make([]int, len(weights))
	const n = 1000000
	for i := 0; i < n; i++ {
		counts[a.Draw(rng)]++
	}
	// The largest weight holds ~99.9% of the mass.
	if frac := float64(counts[4]) / n; frac < 0.997 {
		t.Errorf("dominant weight drawn with freq %v, want ~0.999", frac)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	seen := map[int]bool{}
	Shuffle(New(3), xs)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 7 {
		t.Error("shuffle lost elements")
	}
}

func TestDeriveDeterministicAndDistinct(t *testing.T) {
	a := Derive(7, 1, 2)
	if a != Derive(7, 1, 2) {
		t.Fatal("Derive is not deterministic")
	}
	if a < 0 {
		t.Errorf("Derive(7,1,2) = %d, want non-negative", a)
	}
	// Distinct tag paths must land on distinct seeds: this is what gives
	// every (sigma probe, trial) pair an independent stream.
	seen := map[int64]bool{a: true}
	for _, tags := range [][]uint64{{1, 3}, {2, 2}, {2, 1}, {0}, {}, {1}, {1, 2, 0}} {
		s := Derive(7, tags...)
		if seen[s] {
			t.Fatalf("Derive(7, %v) collides with an earlier derivation", tags)
		}
		seen[s] = true
	}
	if Derive(8, 1, 2) == a {
		t.Error("different base seeds should derive different streams")
	}
}

func TestDeriveStreamsUncorrelated(t *testing.T) {
	// Neighboring trial indices must yield streams that do not track each
	// other: compare first draws across 100 sibling streams.
	seen := map[int64]bool{}
	for trial := uint64(0); trial < 100; trial++ {
		v := New(Derive(1, trial)).Int63()
		if seen[v] {
			t.Fatalf("trial %d repeats another stream's first draw", trial)
		}
		seen[v] = true
	}
}
