// Package randx provides the randomness substrate: reproducible seeded
// RNG construction and O(1) weighted sampling via Walker's alias method.
//
// The obfuscation algorithm (paper Alg. 2) repeatedly draws vertices from
// the uniqueness-proportional distribution Q while growing the candidate
// set E_C; with |E_C| = c|E| draws per trial and t trials per binary
// search step, sampling must be constant time, hence the alias table.
package randx

import "math/rand"

// New returns a reproducible *rand.Rand for the given seed.
//
// All randomized components of this repository accept a *rand.Rand rather
// than using the global source, so experiments are replayable from a
// single seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA
// 2014): a bijective avalanche mix whose output stream passes BigCrush.
// It is the standard tool for deriving independent seeds from one base
// seed, which is how the parallel trial engine gives every trial its own
// reproducible stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Derive maps (seed, tags...) to a new seed, deterministically and with
// good avalanche behavior: distinct tag sequences yield statistically
// independent seeds. The obfuscation core derives one stream per
// (σ probe, trial index) pair from a single base seed, so results do not
// depend on how many trials run concurrently or in what order.
func Derive(seed int64, tags ...uint64) int64 {
	x := splitmix64(uint64(seed))
	for _, t := range tags {
		x = splitmix64(x ^ splitmix64(t))
	}
	return int64(x &^ (1 << 63)) // non-negative, matching rand.Seed conventions
}

// FillWorldSeeds fills seeds with one independent seed per world drawn
// sequentially from master — the pre-derivation discipline shared by
// the sampling and query engines: world i's RNG stream depends only on
// the master seed and i, never on the worker count or the schedule, so
// Monte-Carlo results are bit-identical for every Workers value.
func FillWorldSeeds(seeds []int64, master *rand.Rand) {
	for i := range seeds {
		seeds[i] = master.Int63()
	}
}

// Alias is a Walker alias table supporting O(1) draws from a fixed
// discrete distribution over {0, ..., n-1}.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given non-negative weights.
// Weights need not be normalized. At least one weight must be positive,
// otherwise NewAlias returns nil.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		return nil
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return nil
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scaled probabilities; mean 1 by construction.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Whatever remains (numerical leftovers) gets probability 1.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Draw samples an index according to the table's distribution.
func (a *Alias) Draw(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }

// Shuffle permutes the ints in place.
func Shuffle(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
