package uncertain

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

// figure1b builds the uncertain graph of paper Figure 1(b), whose X/Y
// matrices are given in Table 1. The candidate pairs and probabilities
// are reverse-engineered in the Table 1 caption discussion: p(v1,v2)=0.7,
// p(v1,v3)=0.9, p(v1,v4)=0.8, p(v2,v3)=0.8, p(v2,v4)=0.1, p(v3,v4)=0.
func figure1b(t testing.TB) *Graph {
	g, err := New(4, []Pair{
		{0, 1, 0.7},
		{0, 2, 0.9},
		{0, 3, 0.8},
		{1, 2, 0.8},
		{1, 3, 0.1},
		{2, 3, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		pairs []Pair
	}{
		{"self-loop", 3, []Pair{{1, 1, 0.5}}},
		{"out-of-range", 3, []Pair{{0, 3, 0.5}}},
		{"negative-vertex", 3, []Pair{{-1, 0, 0.5}}},
		{"bad-prob-high", 3, []Pair{{0, 1, 1.5}}},
		{"bad-prob-low", 3, []Pair{{0, 1, -0.1}}},
		{"duplicate", 3, []Pair{{0, 1, 0.5}, {1, 0, 0.2}}},
	}
	for _, c := range cases {
		if _, err := New(c.n, c.pairs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestExpectedDegreeStats(t *testing.T) {
	g := figure1b(t)
	// E[S_NE] = sum p = 0.7+0.9+0.8+0.8+0.1+0 = 3.3.
	if got := g.ExpectedNumEdges(); math.Abs(got-3.3) > 1e-12 {
		t.Errorf("ExpectedNumEdges = %v, want 3.3", got)
	}
	if got := g.ExpectedAverageDegree(); math.Abs(got-1.65) > 1e-12 {
		t.Errorf("ExpectedAverageDegree = %v, want 1.65", got)
	}
	// Expected degree of v1 = 0.7+0.9+0.8 = 2.4.
	if got := g.ExpectedDegree(0); math.Abs(got-2.4) > 1e-12 {
		t.Errorf("ExpectedDegree(v1) = %v, want 2.4", got)
	}
	if got := g.ExpectedDegree(3); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("ExpectedDegree(v4) = %v, want 0.9", got)
	}
}

func TestDegreeDistMatchesTable1(t *testing.T) {
	g := figure1b(t)
	want := [][]float64{
		{0.006, 0.092, 0.398, 0.504},
		{0.054, 0.348, 0.542, 0.056},
		{0.020, 0.260, 0.720, 0.000},
		{0.180, 0.740, 0.080, 0.000},
	}
	for v := 0; v < 4; v++ {
		d := g.DegreeDist(v, 0)
		for w := 0; w < 4; w++ {
			if math.Abs(d.Prob(w)-want[v][w]) > 1e-9 {
				t.Errorf("X_v%d(%d) = %v, want %v", v+1, w, d.Prob(w), want[v][w])
			}
		}
	}
}

func TestSampleWorldFrequencies(t *testing.T) {
	g := figure1b(t)
	rng := randx.New(17)
	const worlds = 50000
	counts := make(map[int64]int)
	for i := 0; i < worlds; i++ {
		w := g.SampleWorld(rng)
		w.ForEachEdge(func(u, v int) {
			counts[graph.PairKey(u, v, 4)]++
		})
	}
	for _, pr := range g.Pairs() {
		got := float64(counts[graph.PairKey(pr.U, pr.V, 4)]) / worlds
		if math.Abs(got-pr.P) > 0.01 {
			t.Errorf("pair (%d,%d): frequency %v, want %v", pr.U, pr.V, got, pr.P)
		}
	}
}

func TestSampleWorldIsValidGraph(t *testing.T) {
	g := figure1b(t)
	rng := randx.New(18)
	for i := 0; i < 100; i++ {
		if err := g.SampleWorld(rng).Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFromCertainRoundTrip(t *testing.T) {
	orig := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 2, V: 3}})
	ug := FromCertain(orig)
	if ug.NumPairs() != 4 {
		t.Fatalf("pairs = %d", ug.NumPairs())
	}
	if got := ug.ExpectedNumEdges(); got != 4 {
		t.Errorf("expected edges = %v", got)
	}
	// Every sampled world is the original graph.
	w := ug.SampleWorld(randx.New(1))
	if w.NumEdges() != 4 || !w.HasEdge(2, 3) || w.HasEdge(1, 2) {
		t.Error("certain graph world differs from original")
	}
}

func TestWorldLogProb(t *testing.T) {
	g, err := New(2, []Pair{{0, 1, 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.WorldLogProb(map[int]bool{0: true}); math.Abs(got-math.Log(0.25)) > 1e-12 {
		t.Errorf("log prob with edge = %v", got)
	}
	if got := g.WorldLogProb(nil); math.Abs(got-math.Log(0.75)) > 1e-12 {
		t.Errorf("log prob without edge = %v", got)
	}
}

func TestWorldProbabilitiesSumToOne(t *testing.T) {
	// Enumerate all worlds of the Figure 1(b) graph (2^5 non-trivial
	// pairs plus one zero pair) and check Eq. 1 defines a distribution.
	g := figure1b(t)
	m := g.NumPairs()
	var total float64
	for mask := 0; mask < 1<<m; mask++ {
		world := make(map[int]bool)
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				world[i] = true
			}
		}
		lp := g.WorldLogProb(world)
		if !math.IsInf(lp, -1) {
			total += math.Exp(lp)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("world probabilities sum to %v", total)
	}
}

func TestIORoundTrip(t *testing.T) {
	g := figure1b(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 4 || g2.NumPairs() != g.NumPairs() {
		t.Fatalf("round trip: %d vertices %d pairs", g2.NumVertices(), g2.NumPairs())
	}
	for i, pr := range g.Pairs() {
		if g2.Pairs()[i] != pr {
			t.Errorf("pair %d: %v != %v", i, g2.Pairs()[i], pr)
		}
	}
}

func TestReadWithoutHeader(t *testing.T) {
	g, err := Read(bytes.NewReader([]byte("0 1 0.5\n2 3 0.25\n")))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Errorf("inferred vertices = %d, want 4", g.NumVertices())
	}
}

func TestReadMalformed(t *testing.T) {
	for _, in := range []string{"0 1\n", "a b c\n", "0 1 2 3\n", "0 1 1.5\n"} {
		if _, err := Read(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

// TestReadHeaderVertexCount is the regression suite for header
// handling: a vertices= count smaller than max id + 1 (or negative)
// must be rejected with an error blaming the *header*, not deferred to
// a confusing per-pair range error — while a count larger than the
// pairs need is legitimate (isolated vertices) and must be honoured.
func TestReadHeaderVertexCount(t *testing.T) {
	undersized := "# uncertain graph: vertices=3 pairs=2\n0 1 0.5\n2 3 0.25\n"
	_, err := Read(bytes.NewReader([]byte(undersized)))
	if err == nil {
		t.Fatal("undersized header accepted")
	}
	for _, needle := range []string{"header", "vertices=3", "need at least 4"} {
		if !strings.Contains(err.Error(), needle) {
			t.Errorf("undersized-header error %q missing %q", err, needle)
		}
	}

	negative := "# uncertain graph: vertices=-7 pairs=0\n"
	if _, err := Read(bytes.NewReader([]byte(negative))); err == nil ||
		!strings.Contains(err.Error(), "negative vertex count") {
		t.Errorf("negative header: err = %v, want a negative-vertex-count error", err)
	}

	oversized := "# uncertain graph: vertices=10 pairs=2\n0 1 0.5\n2 3 0.25\n"
	g, err := Read(bytes.NewReader([]byte(oversized)))
	if err != nil {
		t.Fatalf("oversized header (isolated vertices) rejected: %v", err)
	}
	if g.NumVertices() != 10 {
		t.Errorf("vertices = %d, want the header's 10", g.NumVertices())
	}
}
