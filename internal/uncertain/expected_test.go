package uncertain

import (
	"math"
	"testing"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

// sampleStat averages a statistic of sampled worlds.
func sampleStat(t *testing.T, g *Graph, worlds int, stat func(*graph.Graph) float64) float64 {
	t.Helper()
	rng := randx.New(99)
	var sum float64
	for i := 0; i < worlds; i++ {
		sum += stat(g.SampleWorld(rng))
	}
	return sum / float64(worlds)
}

func degreeVariance(w *graph.Graph) float64 {
	n := w.NumVertices()
	if n == 0 {
		return 0
	}
	avg := w.AverageDegree()
	var ss float64
	for v := 0; v < n; v++ {
		d := float64(w.Degree(v)) - avg
		ss += d * d
	}
	return ss / float64(n)
}

func countTriangles(w *graph.Graph) float64 {
	var t3 float64
	n := w.NumVertices()
	for v := 0; v < n; v++ {
		nbrs := w.Neighbors(v)
		for i := 0; i < len(nbrs); i++ {
			if int(nbrs[i]) < v {
				continue
			}
			for j := i + 1; j < len(nbrs); j++ {
				if w.HasEdge(int(nbrs[i]), int(nbrs[j])) {
					t3++
				}
			}
		}
	}
	return t3
}

func connectedTriples(w *graph.Graph) float64 {
	var paths float64
	for v := 0; v < w.NumVertices(); v++ {
		d := float64(w.Degree(v))
		paths += d * (d - 1) / 2
	}
	return paths - 2*countTriangles(w)
}

func TestExpectedDegreeVarianceOnCertainGraph(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 2, V: 3}})
	ug := FromCertain(g)
	// Degrees 3,1,2,2 -> mean 2, variance 0.5; no randomness.
	if got := ug.ExpectedDegreeVariance(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("E[S_DV] = %v, want 0.5", got)
	}
}

func TestExpectedDegreeVarianceMatchesSampling(t *testing.T) {
	g := figure1b(t)
	want := sampleStat(t, g, 200000, degreeVariance)
	got := g.ExpectedDegreeVariance()
	if math.Abs(got-want) > 0.01 {
		t.Errorf("E[S_DV] closed form %v vs sampled %v", got, want)
	}
}

func TestExpectedTrianglesFigure1(t *testing.T) {
	g := figure1b(t)
	// Triples with all three pairs candidates: (v1,v2,v3): .7*.9*.8;
	// (v1,v2,v4): .7*.8*.1; (v1,v3,v4): .9*.8*0; (v2,v3,v4): .8*.1*0.
	want := 0.7*0.9*0.8 + 0.7*0.8*0.1
	if got := g.ExpectedTriangles(); math.Abs(got-want) > 1e-12 {
		t.Errorf("E[T3] = %v, want %v", got, want)
	}
}

func TestExpectedTrianglesMatchesSampling(t *testing.T) {
	g := figure1b(t)
	want := sampleStat(t, g, 100000, countTriangles)
	if got := g.ExpectedTriangles(); math.Abs(got-want) > 0.02 {
		t.Errorf("E[T3] closed form %v vs sampled %v", got, want)
	}
}

func TestExpectedConnectedTriplesMatchesSampling(t *testing.T) {
	g := figure1b(t)
	want := sampleStat(t, g, 100000, connectedTriples)
	if got := g.ExpectedConnectedTriples(); math.Abs(got-want)/want > 0.01 {
		t.Errorf("E[T2] closed form %v vs sampled %v", got, want)
	}
}

func TestExpectedTrianglesCertainGraph(t *testing.T) {
	// K4 has 4 triangles.
	b := graph.NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
		}
	}
	ug := FromCertain(b.Build())
	if got := ug.ExpectedTriangles(); math.Abs(got-4) > 1e-12 {
		t.Errorf("E[T3] on K4 = %v, want 4", got)
	}
	// T2[K4] = sum C(3,2)*4 - 2*4 = 12 - 8 = 4.
	if got := ug.ExpectedConnectedTriples(); math.Abs(got-4) > 1e-12 {
		t.Errorf("E[T2] on K4 = %v, want 4", got)
	}
}

func TestExpectedStatsOnLargerRandomUncertain(t *testing.T) {
	// Random uncertain graph: closed forms must track sampling.
	rng := randx.New(5)
	var pairs []Pair
	n := 60
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.1 {
				pairs = append(pairs, Pair{U: u, V: v, P: rng.Float64()})
			}
		}
	}
	g, err := New(n, pairs)
	if err != nil {
		t.Fatal(err)
	}
	wantDV := sampleStat(t, g, 20000, degreeVariance)
	if got := g.ExpectedDegreeVariance(); math.Abs(got-wantDV)/wantDV > 0.03 {
		t.Errorf("E[S_DV] %v vs sampled %v", got, wantDV)
	}
	wantT3 := sampleStat(t, g, 20000, countTriangles)
	if got := g.ExpectedTriangles(); math.Abs(got-wantT3)/(wantT3+1) > 0.05 {
		t.Errorf("E[T3] %v vs sampled %v", got, wantT3)
	}
}
