package uncertain

// This file provides closed-form expectations of non-linear statistics
// that the paper mentions but does not spell out (Section 6.2 notes
// that E[S_DV] "can be computed precisely... the cost of evaluating the
// corresponding formulas is quadratic in the number of vertices" and
// omits them; with the candidate-set representation the cost is in fact
// linear in |E_C|). Expectations of triangle counts follow the same
// independence argument. These exact values complement the sampling
// estimator and are used in tests as ground truth for it.

// ExpectedDegreeVariance returns E[S_DV] for
// S_DV = (1/n) Σ_v (d_v - S_AD)^2 where S_AD = (2/n) Σ_e X_e.
//
// Writing S_DV = (1/n) Σ_v d_v^2 - S_AD^2 and using independence of the
// candidate-pair indicators:
//
//	E[d_v^2]   = Var(d_v) + E[d_v]^2,  Var(d_v) = Σ_{e∋v} p_e(1-p_e)
//	E[S_AD^2]  = Var(S_AD) + E[S_AD]^2, Var(S_AD) = (4/n^2) Σ_e p_e(1-p_e)
//
// so every term is a sum over candidate pairs.
func (g *Graph) ExpectedDegreeVariance() float64 {
	n := float64(g.n)
	if n == 0 {
		return 0
	}
	var sumSq float64 // Σ_v E[d_v^2]
	for v := 0; v < g.n; v++ {
		var mu, varv float64
		for _, idx := range g.Incident(v) {
			p := g.pairP[idx]
			mu += p
			varv += p * (1 - p)
		}
		sumSq += varv + mu*mu
	}
	var varSum float64 // Σ_e p(1-p)
	var muSum float64  // Σ_e p
	for _, p := range g.pairP {
		varSum += p * (1 - p)
		muSum += p
	}
	muAD := 2 * muSum / n
	varAD := 4 * varSum / (n * n)
	return sumSq/n - (varAD + muAD*muAD)
}

// ExpectedTriangles returns E[T3]: by linearity, the sum over vertex
// triples whose three pairs are all candidates of the product of their
// probabilities. Enumeration follows candidate adjacency, so the cost
// is O(Σ_v inc(v)^2) rather than cubic.
func (g *Graph) ExpectedTriangles() float64 {
	// probTo[w] = probability of candidate pair (v, w) for current v.
	probTo := make(map[int]float64, 64)
	var total float64
	for v := 0; v < g.n; v++ {
		// Only count triangles whose lowest vertex is v: neighbors u, w
		// of v with v < u < w and (u, w) a candidate.
		for k := range probTo {
			delete(probTo, k)
		}
		for _, idx := range g.Incident(v) {
			other := int(g.pairU[idx])
			if other == v {
				other = int(g.pairV[idx])
			}
			if other > v && g.pairP[idx] > 0 {
				probTo[other] = g.pairP[idx]
			}
		}
		for u, pu := range probTo {
			for _, idx := range g.Incident(u) {
				w := int(g.pairU[idx])
				if w == u {
					w = int(g.pairV[idx])
				}
				p := g.pairP[idx]
				if w <= u || p == 0 {
					continue
				}
				if pw, ok := probTo[w]; ok {
					total += pu * pw * p
				}
			}
		}
	}
	return total
}

// ExpectedConnectedTriples returns E[T2] under the paper's definition
// T2 = Σ_v C(d_v, 2) - 2*T3. E[C(d_v,2)] = (E[d_v^2] - E[d_v])/2, and
// E[d_v^2] follows from the Poisson-binomial moments as in
// ExpectedDegreeVariance.
func (g *Graph) ExpectedConnectedTriples() float64 {
	var paths float64
	for v := 0; v < g.n; v++ {
		var mu, varv float64
		for _, idx := range g.Incident(v) {
			p := g.pairP[idx]
			mu += p
			varv += p * (1 - p)
		}
		sq := varv + mu*mu
		paths += (sq - mu) / 2
	}
	return paths - 2*g.ExpectedTriangles()
}
