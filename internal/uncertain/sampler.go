package uncertain

import (
	"math/rand"
	"sort"

	"uncertaingraph/internal/graph"
)

// Sampler materializes possible worlds of one uncertain graph into
// preallocated CSR buffers: after construction, every Sample call
// performs zero heap allocations. It is the world engine behind the
// Monte-Carlo estimation pipeline (paper Section 6.1), where r ≈ 100
// worlds are sampled per published graph and every statistic is
// recomputed on each — the hot path that dominates evaluation cost.
//
// The trick is a sampling template built once per Sampler: for every
// vertex, the incident candidate pairs sorted by the opposite
// endpoint. A world is then materialized in two passes — (1) draw each
// candidate pair in candidate-list order, exactly the RNG draw order
// of Graph.SampleWorld, recording presence in a bitmap; (2) walk the
// template and copy the present neighbors into the world's flat
// adjacency array, which lands sorted without any per-world sort.
//
// The returned *graph.Graph is reused: it remains valid only until the
// next Sample call on the same Sampler. A Sampler is not safe for
// concurrent use; parallel pipelines hold one Sampler per worker.
type Sampler struct {
	g *Graph

	// Template: per-vertex incident slots sorted by opposite endpoint.
	toff  []int64 // length n+1
	tnbr  []int32 // opposite endpoint of the slot's pair
	tpair []int32 // index of the slot's pair

	// Per-world buffers.
	present []bool
	offsets []int64
	nbr     []int32
	world   graph.Graph
}

// NewSampler builds the sampling template for g. Cost is one sort of
// the incident lists, O(Σ_v inc(v) log inc(v)); every subsequent
// Sample is O(|E_C|) with no allocations.
func (g *Graph) NewSampler() *Sampler {
	s := &Sampler{
		g:       g,
		toff:    g.incOff,
		tnbr:    make([]int32, len(g.incIdx)),
		tpair:   make([]int32, len(g.incIdx)),
		present: make([]bool, len(g.pairP)),
		offsets: make([]int64, g.n+1),
		nbr:     make([]int32, len(g.incIdx)),
	}
	for v := 0; v < g.n; v++ {
		lo, hi := s.toff[v], s.toff[v+1]
		for k := lo; k < hi; k++ {
			idx := g.incIdx[k]
			other := g.pairU[idx]
			if int(other) == v {
				other = g.pairV[idx]
			}
			s.tnbr[k] = other
			s.tpair[k] = idx
		}
		sort.Sort(templateSlots{nbr: s.tnbr[lo:hi], pair: s.tpair[lo:hi]})
	}
	return s
}

// templateSlots co-sorts one vertex's (neighbor, pair-index) slots by
// neighbor id; endpoints are distinct within a vertex, so the order is
// total.
type templateSlots struct {
	nbr  []int32
	pair []int32
}

func (t templateSlots) Len() int           { return len(t.nbr) }
func (t templateSlots) Less(i, j int) bool { return t.nbr[i] < t.nbr[j] }
func (t templateSlots) Swap(i, j int) {
	t.nbr[i], t.nbr[j] = t.nbr[j], t.nbr[i]
	t.pair[i], t.pair[j] = t.pair[j], t.pair[i]
}

// Sample draws one possible world W ~ Pr(W) into the sampler's
// buffers. The RNG draw sequence is identical to Graph.SampleWorld's —
// one Float64 per candidate pair with 0 < p < 1, in candidate-list
// order — so for equal RNG states the two produce equal worlds, pinned
// by TestSamplerMatchesSampleWorld. The returned graph aliases the
// sampler and is valid until the next Sample call.
func (s *Sampler) Sample(rng *rand.Rand) *graph.Graph {
	probs := s.g.pairP
	m := 0
	for i := range probs {
		p := probs[i]
		on := p > 0 && (p >= 1 || rng.Float64() < p)
		s.present[i] = on
		if on {
			m++
		}
	}
	var pos int64
	for v := 0; v < s.g.n; v++ {
		for k := s.toff[v]; k < s.toff[v+1]; k++ {
			if s.present[s.tpair[k]] {
				s.nbr[pos] = s.tnbr[k]
				pos++
			}
		}
		s.offsets[v+1] = pos
	}
	s.world.ResetCSR(s.offsets, s.nbr[:pos], m)
	return &s.world
}

// Graph returns the uncertain graph this sampler draws from.
func (s *Sampler) Graph() *Graph { return s.g }

// Clone returns a sampler that shares the receiver's immutable
// sampling template but owns fresh per-world buffers, so it samples
// exactly the same worlds from equal RNG states while being safe to
// drive from another goroutine. Parallel engines build one template
// (the O(Σ inc(v) log inc(v)) sort) and clone it per worker instead of
// re-sorting per worker.
func (s *Sampler) Clone() *Sampler {
	return &Sampler{
		g:       s.g,
		toff:    s.toff,
		tnbr:    s.tnbr,
		tpair:   s.tpair,
		present: make([]bool, len(s.present)),
		offsets: make([]int64, len(s.offsets)),
		nbr:     make([]int32, len(s.nbr)),
	}
}
