package uncertain

import "fmt"

// Columns is the columnar backing of a Graph: three parallel candidate
// arrays plus the CSR incident index. It is both the zero-copy view of
// a live graph (Columns method) and the adoption form of FromColumns —
// the sections of the on-disk binary format (internal/ugbin) are
// exactly these five arrays, so a mapped file becomes a Graph without
// copying or re-indexing.
type Columns struct {
	PairU  []int32   // lower endpoint of pair i (PairU[i] < PairV[i])
	PairV  []int32   // upper endpoint of pair i
	PairP  []float64 // existence probability of pair i
	IncOff []int64   // CSR offsets into IncIdx, length n+1
	IncIdx []int32   // pair indices grouped by incident vertex,
	// ascending within each vertex (candidate-list order)
}

// Columns returns the graph's backing arrays, shared and read-only.
func (g *Graph) Columns() Columns {
	return Columns{PairU: g.pairU, PairV: g.pairV, PairP: g.pairP, IncOff: g.incOff, IncIdx: g.incIdx}
}

// FromColumns adopts pre-built columnar arrays as a Graph without
// copying them: the caller's slices (typically views over an mmap'd
// file, see mappedBytes) become the graph's backing store and must not
// be modified afterwards. mappedBytes records the size of the
// externally backed region the arrays alias (0 for columns the graph
// exclusively owns); it only affects FootprintBytes/MappedBytes
// accounting.
//
// The arrays are fully validated before adoption — every invariant New
// establishes is checked here, in O(n + |E_C|) time with zero heap
// allocation, so a hostile or corrupt file can produce an error but
// never a Graph that panics later:
//
//   - consistent lengths (|PairU| = |PairV| = |PairP| = m,
//     |IncOff| = n+1, |IncIdx| = 2m)
//   - endpoints in [0, n) with PairU[i] < PairV[i] (normalized, no
//     self-loops)
//   - probabilities in [0, 1] (NaN rejected)
//   - IncOff starting at 0, nondecreasing, ending at 2m
//   - IncIdx entries in [0, m), strictly increasing within each
//     vertex, each referencing a pair incident to that vertex
//
// The last condition pins the exact layout New builds: within a vertex
// the indices ascend (candidate-list order) and reference only incident
// pairs, which together force every pair to appear exactly twice — once
// under each endpoint — without needing per-pair counters.
func FromColumns(n int, c Columns, mappedBytes int64) (*Graph, error) {
	if n < 0 || n > MaxVertices {
		return nil, fmt.Errorf("uncertain: vertex count %d outside [0,%d]", n, MaxVertices)
	}
	m := len(c.PairP)
	if len(c.PairU) != m || len(c.PairV) != m {
		return nil, fmt.Errorf("uncertain: column lengths disagree: |U|=%d |V|=%d |P|=%d",
			len(c.PairU), len(c.PairV), m)
	}
	if len(c.IncOff) != n+1 {
		return nil, fmt.Errorf("uncertain: incident offsets length %d, want n+1 = %d", len(c.IncOff), n+1)
	}
	if len(c.IncIdx) != 2*m {
		return nil, fmt.Errorf("uncertain: incident index length %d, want 2m = %d", len(c.IncIdx), 2*m)
	}
	for i := 0; i < m; i++ {
		u, v := c.PairU[i], c.PairV[i]
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			return nil, fmt.Errorf("uncertain: pair %d endpoints (%d,%d) out of range [0,%d)", i, u, v, n)
		}
		if u >= v {
			return nil, fmt.Errorf("uncertain: pair %d (%d,%d) not normalized (want U < V)", i, u, v)
		}
		if p := c.PairP[i]; !(p >= 0 && p <= 1) {
			return nil, fmt.Errorf("uncertain: probability %v of pair %d outside [0,1]", p, i)
		}
	}
	if c.IncOff[0] != 0 {
		return nil, fmt.Errorf("uncertain: incident offsets start at %d, want 0", c.IncOff[0])
	}
	for v := 0; v < n; v++ {
		lo, hi := c.IncOff[v], c.IncOff[v+1]
		if hi < lo {
			return nil, fmt.Errorf("uncertain: incident offsets decrease at vertex %d (%d -> %d)", v, lo, hi)
		}
		if hi > int64(2*m) {
			return nil, fmt.Errorf("uncertain: incident offset %d at vertex %d exceeds 2m = %d", hi, v+1, 2*m)
		}
		prev := int32(-1)
		for k := lo; k < hi; k++ {
			idx := c.IncIdx[k]
			if idx < 0 || int(idx) >= m {
				return nil, fmt.Errorf("uncertain: incident index %d at vertex %d out of range [0,%d)", idx, v, m)
			}
			if idx <= prev {
				return nil, fmt.Errorf("uncertain: incident indices of vertex %d not strictly increasing (%d after %d)", v, idx, prev)
			}
			prev = idx
			if int(c.PairU[idx]) != v && int(c.PairV[idx]) != v {
				return nil, fmt.Errorf("uncertain: pair %d (%d,%d) listed as incident to vertex %d", idx, c.PairU[idx], c.PairV[idx], v)
			}
		}
	}
	if c.IncOff[n] != int64(2*m) {
		return nil, fmt.Errorf("uncertain: incident offsets end at %d, want 2m = %d", c.IncOff[n], 2*m)
	}
	return &Graph{
		n: n, pairU: c.PairU, pairV: c.PairV, pairP: c.PairP,
		incOff: c.IncOff, incIdx: c.IncIdx, mapped: mappedBytes,
	}, nil
}
