package uncertain

import (
	"reflect"
	"testing"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

// samplerFixture builds an uncertain graph mixing certain edges
// (p = 1), impossible pairs (p = 0) and genuinely random pairs.
func samplerFixture(t testing.TB, n int) *Graph {
	t.Helper()
	rng := randx.New(99)
	var pairs []Pair
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			switch rng.Intn(5) {
			case 0:
				pairs = append(pairs, Pair{U: u, V: v, P: 1})
			case 1:
				pairs = append(pairs, Pair{U: u, V: v, P: 0})
			case 2, 3:
				pairs = append(pairs, Pair{U: v, V: u, P: rng.Float64()})
			}
		}
	}
	g, err := New(n, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSamplerMatchesSampleWorld pins the bit-identity contract: for
// equal RNG states, Sampler.Sample and the pre-refactor builder-based
// materialization (one Float64 draw per candidate pair with
// 0 < p < 1, in candidate-list order, dropped into a graph.Builder)
// must consume the same draws and produce the same graph.
func TestSamplerMatchesSampleWorld(t *testing.T) {
	g := samplerFixture(t, 30)
	s := g.NewSampler()
	for seed := int64(1); seed <= 20; seed++ {
		world := s.Sample(randx.New(seed))
		if err := world.Validate(); err != nil {
			t.Fatalf("seed %d: invalid world: %v", seed, err)
		}
		// Reference: the seed's SampleWorld implementation, verbatim.
		rng := randx.New(seed)
		b := graph.NewBuilder(g.n)
		for _, pr := range g.Pairs() {
			if pr.P > 0 && (pr.P >= 1 || rng.Float64() < pr.P) {
				b.AddEdge(pr.U, pr.V)
			}
		}
		ref := b.Build()
		if world.NumEdges() != ref.NumEdges() {
			t.Fatalf("seed %d: %d edges, reference %d", seed, world.NumEdges(), ref.NumEdges())
		}
		if !reflect.DeepEqual(world.Edges(), ref.Edges()) {
			t.Fatalf("seed %d: edge sets differ", seed)
		}
	}
}

// TestSamplerWorldReuse checks that consecutive samples reuse the same
// backing graph and stay internally consistent.
func TestSamplerWorldReuse(t *testing.T) {
	g := samplerFixture(t, 25)
	s := g.NewSampler()
	rng := randx.New(5)
	w1 := s.Sample(rng)
	w2 := s.Sample(rng)
	if w1 != w2 {
		t.Error("Sample should return the same reused *graph.Graph")
	}
	if err := w2.Validate(); err != nil {
		t.Fatalf("reused world invalid: %v", err)
	}
}

// TestSampleWorldIndependentOfSampler checks the one-shot path still
// yields a graph that survives further sampler activity (it owns the
// buffers of its throwaway sampler).
func TestSampleWorldIndependentOfSampler(t *testing.T) {
	g := samplerFixture(t, 25)
	w := g.SampleWorld(randx.New(3))
	before := w.NumEdges()
	// Unrelated sampling must not disturb w.
	g.SampleWorld(randx.New(4))
	g.NewSampler().Sample(randx.New(5))
	if w.NumEdges() != before {
		t.Error("SampleWorld graph mutated by later sampling")
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("one-shot world invalid: %v", err)
	}
}

// TestSamplerCloneSamplesIdenticalWorlds pins the Clone contract: a
// clone shares the immutable template, owns its own world buffers, and
// draws exactly the same worlds from equal RNG states — the property
// the batched query engine relies on when it builds one template and
// clones it per worker.
func TestSamplerCloneSamplesIdenticalWorlds(t *testing.T) {
	g := samplerFixture(t, 50)
	orig := g.NewSampler()
	clone := orig.Clone()
	if clone.Graph() != g {
		t.Fatal("clone lost its graph")
	}
	for seed := int64(0); seed < 20; seed++ {
		wo := orig.Sample(randx.New(seed))
		wc := clone.Sample(randx.New(seed))
		// Both worlds stay alive across each other's Sample calls:
		// buffers are not shared.
		if wo.NumEdges() != wc.NumEdges() {
			t.Fatalf("seed %d: edge counts %d vs %d", seed, wo.NumEdges(), wc.NumEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			no, nc := wo.Neighbors(v), wc.Neighbors(v)
			if len(no) != len(nc) {
				t.Fatalf("seed %d: vertex %d degree %d vs %d", seed, v, len(no), len(nc))
			}
			for i := range no {
				if no[i] != nc[i] {
					t.Fatalf("seed %d: vertex %d adjacency differs", seed, v)
				}
			}
		}
	}
}

// TestSamplerZeroAllocs pins the acceptance criterion: after the
// sampler is constructed (the warm-up), the steady-state per-world
// loop — reseed, sample — performs zero heap allocations.
func TestSamplerZeroAllocs(t *testing.T) {
	g := samplerFixture(t, 60)
	s := g.NewSampler()
	rng := randx.New(0)
	seed := int64(1)
	allocs := testing.AllocsPerRun(50, func() {
		rng.Seed(seed)
		s.Sample(rng)
		seed++
	})
	if allocs != 0 {
		t.Errorf("steady-state Sample allocates %v times per world, want 0", allocs)
	}
}
