package uncertain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"uncertaingraph/internal/graph"
)

// randomUncertain builds a valid random uncertain graph from a seed.
func randomUncertain(seed int64, maxN int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(maxN-1)
	var pairs []Pair
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.3 {
				pairs = append(pairs, Pair{U: u, V: v, P: rng.Float64()})
			}
		}
	}
	g, err := New(n, pairs)
	if err != nil {
		panic(err)
	}
	return g
}

// Property: expected number of edges equals the mean over sampled
// worlds within Monte-Carlo tolerance, for arbitrary uncertain graphs.
func TestQuickExpectedEdgesMatchesSampling(t *testing.T) {
	f := func(seed int64) bool {
		g := randomUncertain(seed, 20)
		rng := rand.New(rand.NewSource(seed + 1))
		const worlds = 3000
		var sum float64
		for i := 0; i < worlds; i++ {
			sum += float64(g.SampleWorld(rng).NumEdges())
		}
		mean := sum / worlds
		want := g.ExpectedNumEdges()
		// 6-sigma bound: Var <= sum p(1-p) <= pairs/4.
		tol := 6 * math.Sqrt(float64(g.NumPairs())/4/worlds)
		return math.Abs(mean-want) <= tol+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: every sampled world is a valid simple graph whose edges are
// a subset of the candidate pairs.
func TestQuickWorldsAreSubsetsOfCandidates(t *testing.T) {
	f := func(seed int64) bool {
		g := randomUncertain(seed, 15)
		cand := map[int64]bool{}
		for _, pr := range g.Pairs() {
			cand[graph.PairKey(pr.U, pr.V, g.NumVertices())] = true
		}
		rng := rand.New(rand.NewSource(seed + 2))
		for i := 0; i < 20; i++ {
			w := g.SampleWorld(rng)
			if w.Validate() != nil {
				return false
			}
			ok := true
			w.ForEachEdge(func(u, v int) {
				if !cand[graph.PairKey(u, v, g.NumVertices())] {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the per-vertex degree distribution has mean equal to the
// expected degree and support within [0, incident count].
func TestQuickDegreeDistMoments(t *testing.T) {
	f := func(seed int64) bool {
		g := randomUncertain(seed, 15)
		for v := 0; v < g.NumVertices(); v++ {
			d := g.DegreeDist(v, 0)
			var mean, mass float64
			for k := 0; k <= g.IncidentCount(v); k++ {
				p := d.Prob(k)
				if p < -1e-12 {
					return false
				}
				mean += float64(k) * p
				mass += p
			}
			if math.Abs(mass-1) > 1e-6 {
				return false
			}
			if math.Abs(mean-g.ExpectedDegree(v)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: closed-form E[S_DV] is non-negative and zero only when all
// degrees are deterministic and equal.
func TestQuickExpectedDegreeVarianceNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		g := randomUncertain(seed, 18)
		return g.ExpectedDegreeVariance() >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
