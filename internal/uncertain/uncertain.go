// Package uncertain implements the paper's publication object: the
// uncertain graph G̃ = (V, p) (Definition 1), where a subset E_C of
// vertex pairs carries edge-existence probabilities and every other pair
// is a certain non-edge.
//
// The package provides possible-world sampling (each pair materializes
// independently with its probability, Eq. 1) both as one-shot
// SampleWorld calls and through the buffer-reusing Sampler engine,
// closed-form expected degree statistics (Section 6.2), and per-vertex
// degree distributions (Poisson-binomial over incident pairs, Section
// 4) that feed the adversary model.
//
// The candidate set is stored columnar — pairU/pairV []int32 plus
// pairP []float64, struct-of-arrays rather than a []Pair — and the
// incident-pair index in compressed-sparse-row form (incOff/incIdx),
// mirroring the flat layout of internal/graph: the candidate pairs
// incident to v are the indices incIdx[incOff[v]:incOff[v+1]], in
// candidate-list order. The columnar arrays are exactly the sections of
// the on-disk binary format (internal/ugbin), so a graph can operate
// directly over an mmap'd file with zero copies.
package uncertain

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/pbinom"
)

// Pair is a vertex pair carrying an edge-existence probability.
type Pair struct {
	U, V int
	P    float64
}

// Graph is an uncertain graph: a fixed vertex set plus a candidate set
// of probabilistic pairs. Pairs not listed are certain non-edges.
//
// The backing arrays are columnar (see Columns); they may live on the
// heap or alias a read-only memory-mapped file (see MappedBytes), so
// they must never be written after construction.
type Graph struct {
	n      int
	pairU  []int32   // lower endpoint of pair i (pairU[i] < pairV[i])
	pairV  []int32   // upper endpoint of pair i
	pairP  []float64 // existence probability of pair i
	incOff []int64   // CSR offsets into incIdx, length n+1
	incIdx []int32   // pair indices, grouped by incident vertex

	// mapped is the byte count of the externally backed region the
	// arrays alias — an mmap'd file or a caller-retained buffer adopted
	// zero-copy — and 0 for graphs owning their heap arrays; see
	// FootprintBytes.
	mapped int64
}

// MaxVertices bounds the vertex count of a Graph: endpoints are stored
// as int32, on heap and on disk alike.
const MaxVertices = math.MaxInt32

// New constructs an uncertain graph on n vertices from the candidate
// pairs. It rejects self-loops, out-of-range vertices, duplicate pairs,
// and probabilities outside [0, 1].
func New(n int, pairs []Pair) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("uncertain: negative vertex count %d", n)
	}
	if n > MaxVertices {
		return nil, fmt.Errorf("uncertain: vertex count %d exceeds %d", n, MaxVertices)
	}
	seen := make(map[int64]struct{}, len(pairs))
	pairU := make([]int32, 0, len(pairs))
	pairV := make([]int32, 0, len(pairs))
	pairP := make([]float64, 0, len(pairs))
	incOff := make([]int64, n+1)
	for _, pr := range pairs {
		if pr.U == pr.V {
			return nil, fmt.Errorf("uncertain: self-loop at vertex %d", pr.U)
		}
		if pr.U < 0 || pr.V < 0 || pr.U >= n || pr.V >= n {
			return nil, fmt.Errorf("uncertain: pair (%d,%d) out of range [0,%d)", pr.U, pr.V, n)
		}
		if !(pr.P >= 0 && pr.P <= 1) {
			return nil, fmt.Errorf("uncertain: probability %v of pair (%d,%d) outside [0,1]", pr.P, pr.U, pr.V)
		}
		key := graph.PairKey(pr.U, pr.V, n)
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("uncertain: duplicate pair (%d,%d)", pr.U, pr.V)
		}
		seen[key] = struct{}{}
		if pr.U > pr.V {
			pr.U, pr.V = pr.V, pr.U
		}
		pairU = append(pairU, int32(pr.U))
		pairV = append(pairV, int32(pr.V))
		pairP = append(pairP, pr.P)
		incOff[pr.U+1]++
		incOff[pr.V+1]++
	}
	for v := 0; v < n; v++ {
		incOff[v+1] += incOff[v]
	}
	incIdx := make([]int32, 2*len(pairU))
	fill := make([]int64, n)
	for i := range pairU {
		u, v := pairU[i], pairV[i]
		incIdx[incOff[u]+fill[u]] = int32(i)
		fill[u]++
		incIdx[incOff[v]+fill[v]] = int32(i)
		fill[v]++
	}
	return &Graph{n: n, pairU: pairU, pairV: pairV, pairP: pairP, incOff: incOff, incIdx: incIdx}, nil
}

// FromCertain lifts a deterministic graph into an uncertain graph whose
// every edge has probability 1.
func FromCertain(g *graph.Graph) *Graph {
	pairs := make([]Pair, 0, g.NumEdges())
	g.ForEachEdge(func(u, v int) {
		pairs = append(pairs, Pair{U: u, V: v, P: 1})
	})
	ug, err := New(g.NumVertices(), pairs)
	if err != nil {
		// A valid certain graph cannot produce invalid pairs.
		panic(err)
	}
	return ug
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumPairs returns the size of the candidate set |E_C|.
func (g *Graph) NumPairs() int { return len(g.pairP) }

// PairAt returns candidate pair i with U < V.
func (g *Graph) PairAt(i int) Pair {
	return Pair{U: int(g.pairU[i]), V: int(g.pairV[i]), P: g.pairP[i]}
}

// PairProb returns the existence probability of candidate pair i.
func (g *Graph) PairProb(i int) float64 { return g.pairP[i] }

// Pairs materializes the candidate pairs as a freshly allocated slice
// (the graph stores them columnar; see Columns for the zero-copy view).
func (g *Graph) Pairs() []Pair {
	pairs := make([]Pair, len(g.pairP))
	for i := range pairs {
		pairs[i] = g.PairAt(i)
	}
	return pairs
}

// FootprintBytes estimates the heap bytes *exclusively owned* by the
// graph's backing arrays: the columnar candidate arrays plus the CSR
// incident index. For a graph whose arrays alias externally backed
// memory — an mmap'd file (the arrays live in the page cache, shared
// across processes) or a retained upload buffer adopted zero-copy —
// FootprintBytes is 0 and the aliased size is reported by MappedBytes
// instead: dropping such a graph frees essentially nothing, so a
// serving registry charges only FootprintBytes against its global
// memory budget and its eviction accounting stays honest. Derived
// per-query state (samplers, BFS scratch, accumulators) is excluded
// either way.
func (g *Graph) FootprintBytes() int64 {
	if g.mapped > 0 {
		return 0
	}
	return int64(len(g.pairP))*16 + // pairU+pairV (4+4) and pairP (8)
		int64(len(g.incOff))*8 + int64(len(g.incIdx))*4
}

// MappedBytes returns the size of the externally backed read-only
// region the graph's arrays alias (an mmap'd .ugb file, or the
// caller-retained buffer a zero-copy decode adopted), or 0 for a graph
// owning its arrays on the heap.
func (g *Graph) MappedBytes() int64 { return g.mapped }

// Incident returns the indices into the candidate list of the pairs
// incident to v, in candidate-list order: a subslice of the flat CSR
// index, shared with the graph and not to be modified.
func (g *Graph) Incident(v int) []int32 {
	return g.incIdx[g.incOff[v]:g.incOff[v+1]]
}

// IncidentProbs returns the probabilities of the candidate pairs
// incident to v, freshly allocated.
func (g *Graph) IncidentProbs(v int) []float64 {
	return g.AppendIncidentProbs(nil, v)
}

// AppendIncidentProbs appends v's incident candidate probabilities to
// dst and returns the extended slice — the reuse form of IncidentProbs
// for scans that stream every vertex through one buffer.
func (g *Graph) AppendIncidentProbs(dst []float64, v int) []float64 {
	for _, idx := range g.Incident(v) {
		dst = append(dst, g.pairP[idx])
	}
	return dst
}

// IncidentCount returns the number of candidate pairs incident to v.
func (g *Graph) IncidentCount(v int) int {
	return int(g.incOff[v+1] - g.incOff[v])
}

// ExpectedDegree returns E[d_v] = sum of incident probabilities.
func (g *Graph) ExpectedDegree(v int) float64 {
	var sum float64
	for _, idx := range g.Incident(v) {
		sum += g.pairP[idx]
	}
	return sum
}

// ExpectedNumEdges returns E[S_NE] = sum over pairs of p(e), the exact
// closed form of Section 6.2.
func (g *Graph) ExpectedNumEdges() float64 {
	var sum float64
	for _, p := range g.pairP {
		sum += p
	}
	return sum
}

// ExpectedAverageDegree returns E[S_AD] = (2/n) * sum p(e).
func (g *Graph) ExpectedAverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * g.ExpectedNumEdges() / float64(g.n)
}

// DegreeDist returns the distribution of v's degree in G̃: a
// Poisson-binomial over the incident candidate probabilities, exact up
// to threshold terms and normal-approximated beyond (threshold <= 0
// selects pbinom.DefaultExactThreshold).
func (g *Graph) DegreeDist(v int, threshold int) pbinom.Dist {
	return pbinom.New(g.IncidentProbs(v), threshold)
}

// DegreeDistBuf is DegreeDist evaluated through a caller-owned
// probability buffer: the incident probabilities are written into
// buf[:0] and the (possibly grown) buffer is returned for the next
// call. pbinom does not retain the slice.
func (g *Graph) DegreeDistBuf(v int, threshold int, buf []float64) (pbinom.Dist, []float64) {
	buf = g.AppendIncidentProbs(buf[:0], v)
	return pbinom.New(buf, threshold), buf
}

// SampleWorld draws one possible world W ~ Pr(W) by materializing each
// candidate pair independently with its probability (Eq. 1). The RNG
// draw protocol — one Float64 per candidate pair with 0 < p < 1, in
// candidate-list order — is shared with Sampler.Sample, so both paths
// produce the identical world from the identical RNG state. The
// returned graph owns exactly-sized buffers; callers looping over many
// worlds should hold a Sampler instead, which allocates nothing per
// world.
func (g *Graph) SampleWorld(rng *rand.Rand) *graph.Graph {
	present := make([]bool, len(g.pairP))
	m := 0
	for i, p := range g.pairP {
		if p > 0 && (p >= 1 || rng.Float64() < p) {
			present[i] = true
			m++
		}
	}
	offsets := make([]int64, g.n+1)
	for i := range g.pairP {
		if present[i] {
			offsets[g.pairU[i]+1]++
			offsets[g.pairV[i]+1]++
		}
	}
	for v := 0; v < g.n; v++ {
		offsets[v+1] += offsets[v]
	}
	neighbors := make([]int32, 2*m)
	fill := make([]int64, g.n)
	for i := range g.pairP {
		if !present[i] {
			continue
		}
		u, v := g.pairU[i], g.pairV[i]
		neighbors[offsets[u]+fill[u]] = v
		fill[u]++
		neighbors[offsets[v]+fill[v]] = u
		fill[v]++
	}
	for v := 0; v < g.n; v++ {
		slices.Sort(neighbors[offsets[v]:offsets[v+1]])
	}
	return graph.NewCSR(offsets, neighbors, m)
}

// WorldLogProb returns the log-probability ln Pr(W) of a possible world
// given as the set of materialized candidate indices; any candidate pair
// with p in {0, 1} must agree with the world or the result is -Inf.
// Primarily a testing aid for the possible-world semantics.
func (g *Graph) WorldLogProb(materialized map[int]bool) float64 {
	var lp float64
	for i, p := range g.pairP {
		if materialized[i] {
			lp += logOrNegInf(p)
		} else {
			lp += logOrNegInf(1 - p)
		}
	}
	return lp
}
