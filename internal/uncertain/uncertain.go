// Package uncertain implements the paper's publication object: the
// uncertain graph G̃ = (V, p) (Definition 1), where a subset E_C of
// vertex pairs carries edge-existence probabilities and every other pair
// is a certain non-edge.
//
// The package provides possible-world sampling (each pair materializes
// independently with its probability, Eq. 1), closed-form expected
// degree statistics (Section 6.2), and per-vertex degree distributions
// (Poisson-binomial over incident pairs, Section 4) that feed the
// adversary model.
package uncertain

import (
	"fmt"
	"math/rand"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/pbinom"
)

// Pair is a vertex pair carrying an edge-existence probability.
type Pair struct {
	U, V int
	P    float64
}

// Graph is an uncertain graph: a fixed vertex set plus a candidate set
// of probabilistic pairs. Pairs not listed are certain non-edges.
type Graph struct {
	n     int
	pairs []Pair
	inc   [][]int32 // per-vertex indices into pairs
}

// New constructs an uncertain graph on n vertices from the candidate
// pairs. It rejects self-loops, out-of-range vertices, duplicate pairs,
// and probabilities outside [0, 1].
func New(n int, pairs []Pair) (*Graph, error) {
	seen := make(map[int64]struct{}, len(pairs))
	inc := make([][]int32, n)
	stored := make([]Pair, 0, len(pairs))
	for _, pr := range pairs {
		if pr.U == pr.V {
			return nil, fmt.Errorf("uncertain: self-loop at vertex %d", pr.U)
		}
		if pr.U < 0 || pr.V < 0 || pr.U >= n || pr.V >= n {
			return nil, fmt.Errorf("uncertain: pair (%d,%d) out of range [0,%d)", pr.U, pr.V, n)
		}
		if pr.P < 0 || pr.P > 1 {
			return nil, fmt.Errorf("uncertain: probability %v of pair (%d,%d) outside [0,1]", pr.P, pr.U, pr.V)
		}
		key := graph.PairKey(pr.U, pr.V, n)
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("uncertain: duplicate pair (%d,%d)", pr.U, pr.V)
		}
		seen[key] = struct{}{}
		idx := int32(len(stored))
		if pr.U > pr.V {
			pr.U, pr.V = pr.V, pr.U
		}
		stored = append(stored, pr)
		inc[pr.U] = append(inc[pr.U], idx)
		inc[pr.V] = append(inc[pr.V], idx)
	}
	return &Graph{n: n, pairs: stored, inc: inc}, nil
}

// FromCertain lifts a deterministic graph into an uncertain graph whose
// every edge has probability 1.
func FromCertain(g *graph.Graph) *Graph {
	pairs := make([]Pair, 0, g.NumEdges())
	g.ForEachEdge(func(u, v int) {
		pairs = append(pairs, Pair{U: u, V: v, P: 1})
	})
	ug, err := New(g.NumVertices(), pairs)
	if err != nil {
		// A valid certain graph cannot produce invalid pairs.
		panic(err)
	}
	return ug
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumPairs returns the size of the candidate set |E_C|.
func (g *Graph) NumPairs() int { return len(g.pairs) }

// Pairs returns the candidate pairs. The slice is shared and must not be
// modified.
func (g *Graph) Pairs() []Pair { return g.pairs }

// IncidentProbs returns the probabilities of the candidate pairs
// incident to v, freshly allocated.
func (g *Graph) IncidentProbs(v int) []float64 {
	probs := make([]float64, len(g.inc[v]))
	for i, idx := range g.inc[v] {
		probs[i] = g.pairs[idx].P
	}
	return probs
}

// IncidentCount returns the number of candidate pairs incident to v.
func (g *Graph) IncidentCount(v int) int { return len(g.inc[v]) }

// ExpectedDegree returns E[d_v] = sum of incident probabilities.
func (g *Graph) ExpectedDegree(v int) float64 {
	var sum float64
	for _, idx := range g.inc[v] {
		sum += g.pairs[idx].P
	}
	return sum
}

// ExpectedNumEdges returns E[S_NE] = sum over pairs of p(e), the exact
// closed form of Section 6.2.
func (g *Graph) ExpectedNumEdges() float64 {
	var sum float64
	for _, pr := range g.pairs {
		sum += pr.P
	}
	return sum
}

// ExpectedAverageDegree returns E[S_AD] = (2/n) * sum p(e).
func (g *Graph) ExpectedAverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * g.ExpectedNumEdges() / float64(g.n)
}

// DegreeDist returns the distribution of v's degree in G̃: a
// Poisson-binomial over the incident candidate probabilities, exact up
// to threshold terms and normal-approximated beyond (threshold <= 0
// selects pbinom.DefaultExactThreshold).
func (g *Graph) DegreeDist(v int, threshold int) pbinom.Dist {
	return pbinom.New(g.IncidentProbs(v), threshold)
}

// SampleWorld draws one possible world W ~ Pr(W) by materializing each
// candidate pair independently with its probability (Eq. 1).
func (g *Graph) SampleWorld(rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(g.n)
	for _, pr := range g.pairs {
		if pr.P > 0 && (pr.P >= 1 || rng.Float64() < pr.P) {
			b.AddEdge(pr.U, pr.V)
		}
	}
	return b.Build()
}

// WorldLogProb returns the log-probability ln Pr(W) of a possible world
// given as the set of materialized candidate indices; any candidate pair
// with p in {0, 1} must agree with the world or the result is -Inf.
// Primarily a testing aid for the possible-world semantics.
func (g *Graph) WorldLogProb(materialized map[int]bool) float64 {
	var lp float64
	for i, pr := range g.pairs {
		if materialized[i] {
			lp += logOrNegInf(pr.P)
		} else {
			lp += logOrNegInf(1 - pr.P)
		}
	}
	return lp
}
