package uncertain

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

func logOrNegInf(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// Write serializes the uncertain graph as a header comment followed by
// one "u v p" line per candidate pair.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# uncertain graph: vertices=%d pairs=%d\n", g.n, len(g.pairP)); err != nil {
		return err
	}
	for i := range g.pairP {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", g.pairU[i], g.pairV[i], g.pairP[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write. The vertex count is taken
// from the header if present, otherwise inferred as max id + 1. A
// header whose vertices= count is negative or smaller than max id + 1
// is rejected outright with an error naming the header — the pair list
// proves the count wrong, and quietly deferring to per-pair range
// errors (or worse, accepting a hostile count) would misattribute the
// problem to the data.
func Read(r io.Reader) (*Graph, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<16), 1<<22)
	n := -1
	haveHeader := false
	var pairs []Pair
	maxID := -1
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' {
			if v, ok := parseHeaderVertices(line); ok {
				n = v
				haveHeader = true
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("uncertain: line %d: expected \"u v p\", got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("uncertain: line %d: %w", lineNo, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("uncertain: line %d: %w", lineNo, err)
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("uncertain: line %d: %w", lineNo, err)
		}
		pairs = append(pairs, Pair{U: u, V: v, P: p})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("uncertain: reading: %w", err)
	}
	if haveHeader {
		if n < 0 {
			return nil, fmt.Errorf("uncertain: header declares negative vertex count vertices=%d", n)
		}
		if n < maxID+1 {
			return nil, fmt.Errorf("uncertain: header declares vertices=%d but pair ids reach %d (need at least %d)",
				n, maxID, maxID+1)
		}
	} else {
		n = maxID + 1
	}
	return New(n, pairs)
}

func parseHeaderVertices(line string) (int, bool) {
	const key = "vertices="
	i := strings.Index(line, key)
	if i < 0 {
		return 0, false
	}
	rest := line[i+len(key):]
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return v, true
}
