package adversary

// XMatrix materializes the full n x (maxOmega+1) matrix X_v(ω)
// (paper Table 1, left). Intended for small graphs, worked examples and
// tests; the production path streams columns via ColumnEntropies.
func XMatrix(m Model, maxOmega int) [][]float64 {
	n := m.NumVertices()
	x := make([][]float64, n)
	for v := 0; v < n; v++ {
		row := make([]float64, maxOmega+1)
		d := m.VertexX(v)
		for w := 0; w <= maxOmega; w++ {
			row[w] = d.Prob(w)
		}
		x[v] = row
	}
	return x
}

// YMatrix normalizes each column of an X matrix into the belief
// distributions Y_ω(v) (paper Eq. 3, Table 1 right). Columns with zero
// mass are left all-zero.
func YMatrix(x [][]float64) [][]float64 {
	if len(x) == 0 {
		return nil
	}
	cols := len(x[0])
	sums := make([]float64, cols)
	for _, row := range x {
		for w, p := range row {
			sums[w] += p
		}
	}
	y := make([][]float64, len(x))
	for v, row := range x {
		out := make([]float64, cols)
		for w, p := range row {
			if sums[w] > 0 {
				out[w] = p / sums[w]
			}
		}
		y[v] = out
	}
	return y
}
