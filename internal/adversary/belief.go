package adversary

import (
	"runtime"
	"sync"
)

// This file implements the *a-posteriori belief* anonymity measure used
// by Hay et al. and Ying et al., which the paper's Section 2 contrasts
// with the entropy measure it adopts (following Bonchi et al. [4]): the
// anonymity of a target with property ω is (max_u Y_ω(u))^{-1}, the
// reciprocal of the adversary's best single guess. Bonchi et al. prove
// the entropy-based level 2^H(Y_ω) always dominates it (min-entropy
// bounds Shannon entropy from below); TestEntropyDominatesBelief pins
// that theorem, and the ablation benchmarks use the two measures to
// show why the paper's choice matters.

// ColumnBeliefLevels returns, for every requested property value ω, the
// belief anonymity level (Σ_u X_u(ω)) / (max_u X_u(ω)) = 1/max_u Y_ω(u).
// Columns with zero mass yield level 0.
func ColumnBeliefLevels(m Model, omegas []int) map[int]float64 {
	if prep, ok := m.(Preparer); ok {
		prep.Prepare(omegas)
	}
	n := m.NumVertices()
	out := make(map[int]float64, len(omegas))
	if len(omegas) == 0 || n == 0 {
		return out
	}
	type agg struct{ sum, max float64 }
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	locals := make([][]agg, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := make([]agg, len(omegas))
			for v := lo; v < hi; v++ {
				x := m.VertexX(v)
				for i, omega := range omegas {
					p := x.Prob(omega)
					acc[i].sum += p
					if p > acc[i].max {
						acc[i].max = p
					}
				}
			}
			locals[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	merged := make([]agg, len(omegas))
	for _, acc := range locals {
		if acc == nil {
			continue
		}
		for i, a := range acc {
			merged[i].sum += a.sum
			if a.max > merged[i].max {
				merged[i].max = a.max
			}
		}
	}
	for i, omega := range omegas {
		if merged[i].max > 0 {
			out[omega] = merged[i].sum / merged[i].max
		} else {
			out[omega] = 0
		}
	}
	return out
}

// BeliefLevels returns the per-vertex belief anonymity level
// 1/max_u Y_{P(v)}(u), aligned with the property assignment.
func BeliefLevels(m Model, values []int) []float64 {
	cols := ColumnBeliefLevels(m, DistinctValues(values))
	out := make([]float64, len(values))
	for v, val := range values {
		out[v] = cols[val]
	}
	return out
}
