package adversary

import (
	"math"
	"testing"

	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/uncertain"
)

func TestBeliefLevelsFigure1(t *testing.T) {
	m := UncertainModel{G: figure1b(t)}
	cols := ColumnBeliefLevels(m, []int{1, 2, 3})
	// Column deg=3: Y = (0.9, 0.1, 0, 0) -> level 1/0.9.
	if want := 1 / 0.9; math.Abs(cols[3]-want) > 1e-9 {
		t.Errorf("belief level (deg=3) = %v, want %v", cols[3], want)
	}
	// Column deg=1: Y ~ (0.064, 0.242, 0.181, 0.514) -> 1/0.514.
	if cols[1] < 1.9 || cols[1] > 2.0 {
		t.Errorf("belief level (deg=1) = %v, want ~1.945", cols[1])
	}
}

func TestEntropyDominatesBelief(t *testing.T) {
	// Bonchi et al.'s theorem: the entropy-based obfuscation level
	// 2^H(Y) is at least the belief level 1/max Y (Shannon entropy is
	// bounded below by min-entropy). Check on the paper example and on
	// a randomized uncertain graph.
	check := func(m Model, values []int) {
		t.Helper()
		entLevels := ObfuscationLevels(m, values)
		belLevels := BeliefLevels(m, values)
		for v := range values {
			if entLevels[v] < belLevels[v]-1e-9 {
				t.Fatalf("vertex %d: entropy level %v below belief level %v",
					v, entLevels[v], belLevels[v])
			}
		}
	}
	check(UncertainModel{G: figure1b(t)}, originalDegrees)

	g := gen.HolmeKim(randx.New(3), 300, 3, 0.3)
	rng := randx.New(4)
	pairs := make([]uncertain.Pair, 0, g.NumEdges())
	g.ForEachEdge(func(u, v int) {
		pairs = append(pairs, uncertain.Pair{U: u, V: v, P: 0.3 + 0.7*rng.Float64()})
	})
	ugr, err := uncertain.New(g.NumVertices(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	check(UncertainModel{G: ugr}, g.Degrees())
}

func TestBeliefOnCertainGraphIsCrowdSize(t *testing.T) {
	// Certain graph: Y uniform over the crowd, so belief level = crowd
	// size = entropy level.
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}})
	m := UncertainModel{G: uncertain.FromCertain(g)}
	levels := BeliefLevels(m, []int{1, 1, 1, 1, 1, 1})
	for v, l := range levels {
		if math.Abs(l-6) > 1e-9 {
			t.Errorf("vertex %d belief level %v, want 6", v, l)
		}
	}
}

func TestBeliefLevelsEmpty(t *testing.T) {
	m := UncertainModel{G: figure1b(t)}
	if got := ColumnBeliefLevels(m, nil); len(got) != 0 {
		t.Error("no columns should give empty map")
	}
}
