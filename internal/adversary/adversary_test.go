package adversary

import (
	"context"
	"math"
	"reflect"
	"testing"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/uncertain"
)

// figure1b is the uncertain graph of paper Figure 1(b); see Table 1.
func figure1b(t testing.TB) *uncertain.Graph {
	g, err := uncertain.New(4, []uncertain.Pair{
		{U: 0, V: 1, P: 0.7},
		{U: 0, V: 2, P: 0.9},
		{U: 0, V: 3, P: 0.8},
		{U: 1, V: 2, P: 0.8},
		{U: 1, V: 3, P: 0.1},
		{U: 2, V: 3, P: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// originalDegrees of Figure 1(a): deg(v1)=3, deg(v2)=1, deg(v3)=deg(v4)=2.
var originalDegrees = []int{3, 1, 2, 2}

func TestXMatrixMatchesPaperTable1(t *testing.T) {
	m := UncertainModel{G: figure1b(t)}
	x := XMatrix(m, 3)
	want := [][]float64{
		{0.006, 0.092, 0.398, 0.504},
		{0.054, 0.348, 0.542, 0.056},
		{0.020, 0.260, 0.720, 0.000},
		{0.180, 0.740, 0.080, 0.000},
	}
	for v := range want {
		for w := range want[v] {
			if math.Abs(x[v][w]-want[v][w]) > 1e-9 {
				t.Errorf("X[v%d][%d] = %v, want %v", v+1, w, x[v][w], want[v][w])
			}
		}
	}
}

func TestYMatrixMatchesPaperTable1(t *testing.T) {
	m := UncertainModel{G: figure1b(t)}
	y := YMatrix(XMatrix(m, 3))
	// Paper Table 1 (to three decimals).
	want := [][]float64{
		{0.023, 0.064, 0.229, 0.900},
		{0.208, 0.242, 0.311, 0.100},
		{0.077, 0.180, 0.414, 0.000},
		{0.692, 0.514, 0.046, 0.000},
	}
	for v := range want {
		for w := range want[v] {
			// Paper values are printed to three decimals.
			if math.Abs(y[v][w]-want[v][w]) > 1e-3 {
				t.Errorf("Y[%d][v%d] = %v, want %v", w, v+1, y[v][w], want[v][w])
			}
		}
	}
	// Columns of Y sum to 1.
	for w := 0; w < 4; w++ {
		var sum float64
		for v := 0; v < 4; v++ {
			sum += y[v][w]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("column %d sums to %v", w, sum)
		}
	}
}

func TestColumnEntropiesMatchPaperExample2(t *testing.T) {
	m := UncertainModel{G: figure1b(t)}
	ents := ColumnEntropies(m, []int{1, 2, 3})
	// Example 2: H(deg=3) ~ 0.469, H(deg=1) ~ 1.688, H(deg=2) ~ 1.742.
	cases := map[int]float64{3: 0.469, 1: 1.688, 2: 1.742}
	for w, want := range cases {
		if math.Abs(ents[w]-want) > 2e-3 {
			t.Errorf("H(Y_%d) = %v, want ~%v", w, ents[w], want)
		}
	}
}

func TestPaperExample2KEpsClaim(t *testing.T) {
	m := UncertainModel{G: figure1b(t)}
	// "as three out of four vertices are 3-obfuscated, the graph provides
	// a (3, 0.25)-obfuscation".
	if got := NotObfuscatedFraction(m, originalDegrees, 3); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("NotObfuscatedFraction(k=3) = %v, want 0.25", got)
	}
	if !IsKEpsObfuscation(m, originalDegrees, 3, 0.25) {
		t.Error("graph should be a (3,0.25)-obfuscation")
	}
	if IsKEpsObfuscation(m, originalDegrees, 3, 0.1) {
		t.Error("graph should not be a (3,0.1)-obfuscation")
	}
}

func TestCertainGraphEntropyIsLogCrowdSize(t *testing.T) {
	// For a certain graph, Y_ω is uniform over the vertices of degree ω
	// (the in-text discussion after Example 1): H = log2(count).
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}})
	m := UncertainModel{G: uncertain.FromCertain(g)}
	ents := ColumnEntropies(m, []int{1})
	if want := math.Log2(6); math.Abs(ents[1]-want) > 1e-9 {
		t.Errorf("H(Y_1) = %v, want log2(6) = %v", ents[1], want)
	}
	levels := ObfuscationLevels(m, []int{1, 1, 1, 1, 1, 1})
	for v, level := range levels {
		if math.Abs(level-6) > 1e-6 {
			t.Errorf("vertex %d level = %v, want 6", v, level)
		}
	}
}

func TestDistinctValues(t *testing.T) {
	got := DistinctValues([]int{3, 1, 2, 2, 3, 1})
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("DistinctValues = %v", got)
	}
	if DistinctValues(nil) != nil {
		t.Error("empty input should give empty output")
	}
}

func TestVertexEntropiesAlignWithColumns(t *testing.T) {
	m := UncertainModel{G: figure1b(t)}
	cols := ColumnEntropies(m, []int{1, 2, 3})
	ents := VertexEntropies(m, originalDegrees)
	want := []float64{cols[3], cols[1], cols[2], cols[2]}
	for v := range want {
		if math.Abs(ents[v]-want[v]) > 1e-12 {
			t.Errorf("vertex %d entropy %v, want %v", v, ents[v], want[v])
		}
	}
}

func TestAnonymityCDF(t *testing.T) {
	levels := []float64{1, 2.5, 3, 6, 100}
	cdf := AnonymityCDF(levels, 10)
	// level<=1: {1}; <=2: {1}; <=3: {1,2.5,3}; <=6: +{6}; 100 excluded.
	want := []int{0, 1, 1, 3, 3, 3, 4, 4, 4, 4, 4}
	if !reflect.DeepEqual(cdf, want) {
		t.Errorf("AnonymityCDF = %v, want %v", cdf, want)
	}
}

func TestColumnEntropiesEmpty(t *testing.T) {
	m := UncertainModel{G: figure1b(t)}
	if got := ColumnEntropies(m, nil); len(got) != 0 {
		t.Error("no columns requested should give empty map")
	}
}

func TestNotObfuscatedFractionEdgeCases(t *testing.T) {
	m := UncertainModel{G: figure1b(t)}
	if got := NotObfuscatedFraction(m, nil, 3); got != 0 {
		t.Error("no vertices should give 0")
	}
	// k=1 requires entropy >= 0, which always holds.
	if got := NotObfuscatedFraction(m, originalDegrees, 1); got != 0 {
		t.Errorf("k=1 fraction = %v, want 0", got)
	}
}

// TestParallelDeterminism ensures repeated parallel runs agree exactly.
func TestParallelDeterminism(t *testing.T) {
	m := UncertainModel{G: figure1b(t)}
	a := ColumnEntropies(m, []int{0, 1, 2, 3})
	for i := 0; i < 10; i++ {
		b := ColumnEntropies(m, []int{0, 1, 2, 3})
		if !reflect.DeepEqual(a, b) {
			t.Fatal("parallel column entropies are not deterministic")
		}
	}
}

// TestUncertainModelAbortsOnContext pins the Abortable-on-ctx.Done()
// reimplementation: a model with a cancelled context reports Aborted
// and the entropy scan stops at the next chunk boundary.
func TestUncertainModelAbortsOnContext(t *testing.T) {
	g := figure1b(t)
	if (UncertainModel{G: g}).Aborted() {
		t.Error("nil-context model reports Aborted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := UncertainModel{G: g, Ctx: ctx}
	if m.Aborted() {
		t.Error("live-context model reports Aborted")
	}
	cancel()
	if !m.Aborted() {
		t.Error("cancelled-context model does not report Aborted")
	}
	// The scan completes (discardable result, no hang, no leak) even
	// when aborted before it starts.
	_ = ColumnEntropies(m, []int{1, 2})
}
