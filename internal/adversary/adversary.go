// Package adversary implements the paper's re-identification model and
// the (k, ε)-obfuscation criterion (Definitions 2 and 3 of Section 3,
// quantified for the degree property in Section 4).
//
// The adversary knows a property value ω = P(v) of a target vertex and
// examines a published object in which each vertex v has a probability
// distribution X_v over property values. Normalizing the column of
// X at ω over all vertices yields Y_ω (Eq. 3), the adversary's belief
// distribution about which published vertex is the target. A vertex is
// k-obfuscated when H(Y_{P(v)}) >= log2 k, and the published object is a
// (k, ε)-obfuscation when at most an ε-fraction of vertices fail that
// bound.
//
// The same machinery serves two publishers: uncertain graphs (X_v is the
// Poisson-binomial degree distribution of Section 4) and the
// random-perturbation baselines of Section 7.3, whose X columns are
// degree-transition probabilities under the random model (the entropy
// measure of Bonchi et al.). Both are adapted to the Model interface.
package adversary

import (
	"context"
	"math"
	"runtime"
	"sort"

	"uncertaingraph/internal/mathx"
	"uncertaingraph/internal/parallel"
	"uncertaingraph/internal/pbinom"
	"uncertaingraph/internal/uncertain"
)

// Dist is a probability mass function over non-negative integers.
// pbinom.Dist satisfies it.
type Dist interface {
	Prob(k int) float64
}

// Model exposes, per published vertex v, the distribution X_v(ω) over
// property values ω (paper Eq. 2 for uncertain graphs).
type Model interface {
	NumVertices() int
	// VertexX returns X_v as a distribution. Implementations are called
	// once per vertex per pass and may allocate.
	VertexX(v int) Dist
}

// UncertainModel adapts an uncertain graph to the adversary interface
// for the degree property: X_v is the Poisson-binomial law of v's degree
// over its incident candidate pairs.
type UncertainModel struct {
	G *uncertain.Graph
	// ExactThreshold bounds the exact DP size; beyond it the CLT
	// approximation is used (<= 0 selects pbinom.DefaultExactThreshold).
	ExactThreshold int
	// Workers bounds the parallelism of the entropy scan (<= 0 selects
	// GOMAXPROCS). The scan's result is bit-identical for every value.
	Workers int
	// Ctx, when non-nil and cancelled, abandons the scan at the next
	// chunk boundary; the result is then unspecified and the caller must
	// discard it. The obfuscation engine hands each speculative σ probe
	// a derived context and cancels it to reap the probe instead of
	// letting its scan run to completion; request-scoped callers pass
	// their request context so a dropped client stops the scan.
	Ctx context.Context
}

// ParallelWorkers implements WorkerHinted.
func (m UncertainModel) ParallelWorkers() int { return m.Workers }

// Aborted implements Abortable on top of the model's context.
func (m UncertainModel) Aborted() bool {
	return m.Ctx != nil && m.Ctx.Err() != nil
}

// WorkerHinted is an optional Model extension: models that carry an
// explicit worker budget (e.g. one trial of the parallel obfuscation
// engine, which shares cores with its sibling trials) expose it here;
// ColumnEntropies otherwise defaults to GOMAXPROCS.
type WorkerHinted interface {
	ParallelWorkers() int
}

// Abortable is an optional Model extension: ColumnEntropies polls it
// between chunks and stops scanning once it reports true, returning an
// unspecified result the caller has agreed to discard.
type Abortable interface {
	Aborted() bool
}

// NumVertices implements Model.
func (m UncertainModel) NumVertices() int { return m.G.NumVertices() }

// VertexX implements Model.
func (m UncertainModel) VertexX(v int) Dist {
	return m.G.DegreeDist(v, m.ExactThreshold)
}

// VertexXBuf implements BufferedModel: the incident probabilities are
// staged through the scan's per-chunk buffer instead of a per-vertex
// allocation.
func (m UncertainModel) VertexXBuf(v int, buf []float64) (Dist, []float64) {
	d, buf := m.G.DegreeDistBuf(v, m.ExactThreshold, buf)
	return d, buf
}

// BufferedModel is an optional Model extension: models whose X columns
// can be computed through a caller-owned scratch buffer implement it,
// and the entropy scan then streams each chunk's vertices through one
// buffer instead of allocating per vertex. Implementations must not
// retain buf; they return the (possibly grown) buffer for the next
// call.
type BufferedModel interface {
	VertexXBuf(v int, buf []float64) (Dist, []float64)
}

// ColumnEntropies computes H(Y_ω) for every requested property value ω,
// streaming the X columns of all vertices through entropy accumulators.
// The vertex scan is parallelized across CPUs.
// Preparer is an optional Model extension: models whose X columns are
// cheaper to precompute in bulk (the baseline degree-transition models)
// implement it, and ColumnEntropies invokes it before the parallel scan.
type Preparer interface {
	Prepare(omegas []int)
}

// scanChunk is the fixed vertex-range granularity of the parallel scan.
// Chunk boundaries — and hence the order in which partial accumulators
// merge — must not depend on the worker count: float addition is not
// associative, so a worker-count-dependent split would make entropies
// (and every (k, ε) decision built on them) drift between runs with
// different parallelism. Fixed chunks merged in index order give
// bit-identical results for any number of workers.
const scanChunk = 512

func ColumnEntropies(m Model, omegas []int) map[int]float64 {
	if prep, ok := m.(Preparer); ok {
		prep.Prepare(omegas)
	}
	n := m.NumVertices()
	if len(omegas) == 0 || n == 0 {
		return map[int]float64{}
	}
	workers := runtime.GOMAXPROCS(0)
	if h, ok := m.(WorkerHinted); ok && h.ParallelWorkers() > 0 {
		workers = h.ParallelWorkers()
	}
	numChunks := (n + scanChunk - 1) / scanChunk
	aborted := func() bool { return false }
	if ab, ok := m.(Abortable); ok {
		aborted = ab.Aborted
	}
	bm, buffered := m.(BufferedModel)
	chunkAccs := make([][]mathx.EntropyAccumulator, numChunks)
	scan := func(c int) {
		lo := c * scanChunk
		hi := lo + scanChunk
		if hi > n {
			hi = n
		}
		acc := make([]mathx.EntropyAccumulator, len(omegas))
		var buf []float64
		for v := lo; v < hi; v++ {
			var x Dist
			if buffered {
				x, buf = bm.VertexXBuf(v, buf)
			} else {
				x = m.VertexX(v)
			}
			for i, omega := range omegas {
				acc[i].Add(x.Prob(omega))
			}
		}
		chunkAccs[c] = acc
	}
	parallel.For(numChunks, workers, aborted, scan)
	// Merge in chunk order — the same summation tree every run. Chunks
	// may be nil only after an abort, whose result is discarded anyway.
	merged := make([]mathx.EntropyAccumulator, len(omegas))
	for _, acc := range chunkAccs {
		if acc == nil {
			continue
		}
		for i := range merged {
			merged[i].Merge(acc[i])
		}
	}
	out := make(map[int]float64, len(omegas))
	for i, omega := range omegas {
		out[omega] = merged[i].Entropy()
	}
	return out
}

// DistinctValues returns the sorted distinct values in the property
// assignment (e.g. the distinct original degrees) — exactly the columns
// the (k, ε) check needs.
func DistinctValues(values []int) []int {
	seen := make(map[int]struct{}, len(values))
	var out []int
	for _, v := range values {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// VertexEntropies returns, for each original vertex v (with property
// values[v]), the entropy H(Y_{values[v]}) under the model.
func VertexEntropies(m Model, values []int) []float64 {
	cols := ColumnEntropies(m, DistinctValues(values))
	out := make([]float64, len(values))
	for v, val := range values {
		out[v] = cols[val]
	}
	return out
}

// ObfuscationLevels returns the per-vertex obfuscation level
// 2^H(Y_{P(v)}): the effective crowd size the vertex hides in. A certain
// graph gives exactly the count of vertices sharing the degree.
func ObfuscationLevels(m Model, values []int) []float64 {
	ents := VertexEntropies(m, values)
	out := make([]float64, len(ents))
	for i, h := range ents {
		out[i] = math.Exp2(h)
	}
	return out
}

// NotObfuscatedFraction returns ε̃: the fraction of original vertices
// that are not k-obfuscated (H(Y_{P(v)}) < log2 k) under the model.
func NotObfuscatedFraction(m Model, values []int, k float64) float64 {
	if len(values) == 0 {
		return 0
	}
	ents := VertexEntropies(m, values)
	logk := math.Log2(k)
	bad := 0
	for _, h := range ents {
		if h < logk-1e-12 {
			bad++
		}
	}
	return float64(bad) / float64(len(values))
}

// IsKEpsObfuscation reports whether the model provides a
// (k, ε)-obfuscation with respect to the property assignment, i.e. at
// least (1-ε)n vertices are k-obfuscated (Definition 2).
func IsKEpsObfuscation(m Model, values []int, k, eps float64) bool {
	return NotObfuscatedFraction(m, values, k) <= eps+1e-12
}

// MatchedK implements the parameter-matching rule of Section 7.3: for a
// fixed tolerance ε, the obfuscation level k matched by a published
// graph is the least obfuscation level among its vertices after
// disregarding the ⌊ε·n⌋ vertices with the smallest levels.
func MatchedK(levels []float64, eps float64) float64 {
	if len(levels) == 0 {
		return 0
	}
	sorted := append([]float64(nil), levels...)
	sort.Float64s(sorted)
	drop := int(eps * float64(len(sorted)))
	if drop >= len(sorted) {
		drop = len(sorted) - 1
	}
	return sorted[drop]
}

// AnonymityCDF returns, for each level 1..maxK, the number of vertices
// whose obfuscation level is <= that level — the curves of Figure 4.
func AnonymityCDF(levels []float64, maxK int) []int {
	cdf := make([]int, maxK+1)
	for _, level := range levels {
		// A vertex of level l first satisfies "level <= k" at the
		// smallest integer k >= l.
		idx := int(math.Ceil(level - 1e-12))
		if idx < 0 {
			idx = 0
		}
		if idx > maxK {
			continue
		}
		cdf[idx]++
	}
	for k := 1; k <= maxK; k++ {
		cdf[k] += cdf[k-1]
	}
	return cdf
}

// static check that pbinom.Dist satisfies Dist.
var _ Dist = pbinom.Dist{}
