package qserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"uncertaingraph/internal/ugbin"
	"uncertaingraph/internal/uncertain"
)

// chainGraph is the 0-1-2-3 chain with probability 0.8 per edge plus a
// certain edge 3-4 (the single-graph tests' fixture); starGraph is a
// certain star around 0 — structurally distinct, so any cross-graph
// answer leakage is visible in the numbers.
func starGraph(t testing.TB) *uncertain.Graph {
	t.Helper()
	g, err := uncertain.New(5, []uncertain.Pair{
		{U: 0, V: 1, P: 1}, {U: 0, V: 2, P: 1}, {U: 0, V: 3, P: 1}, {U: 0, V: 4, P: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func ugBytes(t testing.TB, g *uncertain.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := uncertain.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// graphFootprint is the FootprintBytes of the 5-vertex 4-pair test
// fixtures; the eviction tests size their global budget around it.
func graphFootprint(t testing.TB) int64 {
	t.Helper()
	return testGraph(t.(*testing.T)).FootprintBytes()
}

func do(t *testing.T, method, url string, body io.Reader) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestRegistryMultiGraphServing is the core acceptance path: one
// daemon hosts two graphs, query endpoints address them by name, each
// answers from its own structure, and an unknown graph is 404.
func TestRegistryMultiGraphServing(t *testing.T) {
	srv := &Server{Worlds: 200, Seed: 11}
	if _, _, err := srv.Publish("chain", ugBytes(t, testGraph(t)), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Publish("star", ugBytes(t, starGraph(t)), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// In the star, 1 and 4 connect only through 0's certain spokes:
	// Pr(1~3) = 1. In the chain, Pr(1~3) = 0.64.
	var chain, star BatchResponse
	status, body := get(t, ts.URL+"/graphs/chain/reliability?s=1&t=3")
	if status != http.StatusOK {
		t.Fatalf("chain: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &chain); err != nil {
		t.Fatal(err)
	}
	status, body = get(t, ts.URL+"/graphs/star/reliability?s=1&t=3")
	if status != http.StatusOK {
		t.Fatalf("star: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &star); err != nil {
		t.Fatal(err)
	}
	if got := *star.Results[0].Reliability; got != 1 {
		t.Errorf("star Pr(1~3) = %v, want 1 (certain spokes)", got)
	}
	if got := *chain.Results[0].Reliability; got >= 1 || got <= 0 {
		t.Errorf("chain Pr(1~3) = %v, want in (0,1)", got)
	}
	if chain.Graph != "chain" || star.Graph != "star" {
		t.Errorf("responses echo graphs %q/%q, want chain/star", chain.Graph, star.Graph)
	}

	// Unknown graph: 404 with a JSON error.
	status, body = get(t, ts.URL+"/graphs/nosuch/reliability?s=0&t=1")
	if status != http.StatusNotFound {
		t.Errorf("unknown graph: status %d (%s), want 404", status, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("unknown graph: no JSON error in %s", body)
	}
	// Batch endpoint too.
	resp, err := http.Post(ts.URL+"/graphs/nosuch/batch", "application/json",
		strings.NewReader(`{"queries":[{"op":"reliability","s":0,"t":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown graph batch: status %d, want 404", resp.StatusCode)
	}
}

// TestEvictionReloadBitIdentical pins the acceptance criterion:
// evicting a cold graph under the global budget and re-requesting it
// reloads it and returns byte-identical answers to the pre-eviction
// request, with the hit/miss/eviction counters telling the story.
func TestEvictionReloadBitIdentical(t *testing.T) {
	fp := graphFootprint(t)
	// Budget fits one fixture graph but not two, so every publish or
	// reload of one evicts the other.
	srv := &Server{Worlds: 300, Seed: 7, GlobalMemBudget: fp + fp/2}
	if _, _, err := srv.Publish("a", ugBytes(t, testGraph(t)), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const q = "/graphs/a/batch"
	reqBody := `{"queries":[{"op":"reliability","s":0,"t":3},{"op":"distance","s":0,"t":4},{"op":"knn","s":2,"k":3}]}`
	post := func() (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+q, "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	status, before := post() // hot: a resident since publish
	if status != http.StatusOK {
		t.Fatalf("pre-eviction: status %d: %s", status, before)
	}

	// Publishing b exceeds the budget and must evict a (the colder).
	if _, _, err := srv.Publish("b", ugBytes(t, starGraph(t)), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	stats, totals := srv.GraphStats()
	byName := map[string]GraphStats{}
	for _, st := range stats {
		byName[st.Name] = st
	}
	if byName["a"].Loaded || byName["a"].Evictions != 1 || byName["a"].ResidentBytes != 0 {
		t.Fatalf("a not evicted by b's publish: %+v", byName["a"])
	}
	if !byName["b"].Loaded {
		t.Fatalf("b not resident after publish: %+v", byName["b"])
	}
	if totals.Evictions != 1 || totals.Loaded != 1 || totals.ResidentBytes != byName["b"].ResidentBytes {
		t.Errorf("registry totals after eviction: %+v", totals)
	}

	// Re-requesting a reloads it transparently and bit-identically.
	status, after := post()
	if status != http.StatusOK {
		t.Fatalf("post-eviction: status %d: %s", status, after)
	}
	if string(before) != string(after) {
		t.Errorf("evict/reload changed the answer:\n%s\nvs\n%s", before, after)
	}
	stats, _ = srv.GraphStats()
	for _, st := range stats {
		byName[st.Name] = st
	}
	if !byName["a"].Loaded || byName["a"].Misses != 1 {
		t.Errorf("a after reload: %+v, want loaded with 1 miss", byName["a"])
	}
	if byName["b"].Loaded || byName["b"].Evictions != 1 {
		t.Errorf("b after a's reload: %+v, want evicted once", byName["b"])
	}

	// Hot repeat: a hit, not another reload.
	if status, again := post(); status != http.StatusOK || string(again) != string(before) {
		t.Errorf("hot repeat diverged (status %d)", status)
	}
	stats, _ = srv.GraphStats()
	for _, st := range stats {
		byName[st.Name] = st
	}
	if byName["a"].Hits < 2 || byName["a"].Misses != 1 {
		t.Errorf("a counters after hot repeat: %+v, want >=2 hits and still 1 miss", byName["a"])
	}
}

// TestGraphListAndHealthz pins the observability surface: GET /graphs
// and /healthz report per-graph residency and hit/miss/eviction
// counters plus the registry totals.
func TestGraphListAndHealthz(t *testing.T) {
	srv := &Server{G: testGraph(t), Worlds: 100, Seed: 11}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if _, _, err := srv.Publish("extra", ugBytes(t, starGraph(t)), GraphConfig{Worlds: 64}); err != nil {
		t.Fatal(err)
	}

	status, body := get(t, ts.URL+"/graphs")
	if status != http.StatusOK {
		t.Fatalf("GET /graphs: status %d: %s", status, body)
	}
	var list graphListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Graphs) != 2 || list.Graphs[0].Name != "default" || list.Graphs[1].Name != "extra" {
		t.Fatalf("graph list = %+v, want [default extra]", list.Graphs)
	}
	if !list.Graphs[0].Loaded || list.Graphs[0].ResidentBytes == 0 {
		t.Errorf("default graph not reported resident: %+v", list.Graphs[0])
	}
	if list.Graphs[1].Worlds != 64 {
		t.Errorf("extra's worlds override not listed: %+v", list.Graphs[1])
	}
	if list.Registry.Graphs != 2 || list.Registry.Loaded != 2 || list.Registry.GlobalMemBudget != DefaultGlobalMemBudget {
		t.Errorf("registry totals = %+v", list.Registry)
	}

	status, body = get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.DefaultGraph != "default" || h.Vertices != 5 || h.Pairs != 4 {
		t.Errorf("healthz default-graph fields: %+v", h)
	}
	if len(h.Graphs) != 2 || h.Registry.Graphs != 2 {
		t.Errorf("healthz registry view: %d graphs, totals %+v", len(h.Graphs), h.Registry)
	}

	// Single-graph stats endpoint.
	status, body = get(t, ts.URL+"/graphs/extra")
	if status != http.StatusOK {
		t.Fatalf("GET /graphs/extra: status %d", status)
	}
	var st GraphStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Name != "extra" || st.Vertices != 5 {
		t.Errorf("GET /graphs/extra = %+v", st)
	}
	if status, _ := get(t, ts.URL+"/graphs/nosuch"); status != http.StatusNotFound {
		t.Errorf("GET /graphs/nosuch: status %d, want 404", status)
	}
}

// TestUploadReplaceDelete drives the publish lifecycle over HTTP: PUT
// creates, a second PUT replaces (created=false, counters kept), the
// per-graph overrides ride the query string, and DELETE removes the
// graph for good.
func TestUploadReplaceDelete(t *testing.T) {
	srv := &Server{Worlds: 100, Seed: 11}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	src := ugBytes(t, testGraph(t))
	status, body := do(t, "PUT", ts.URL+"/graphs/rel1?worlds=50&tolerance=0.2", bytes.NewReader(src))
	if status != http.StatusOK {
		t.Fatalf("PUT: status %d: %s", status, body)
	}
	var up uploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if !up.Created || up.Graph.Name != "rel1" || up.Graph.Worlds != 50 || up.Graph.Tolerance != 0.2 {
		t.Fatalf("PUT response = %+v", up)
	}

	// The override takes effect: default-worlds requests run 50 worlds.
	status, body = get(t, ts.URL+"/graphs/rel1/reliability?s=3&t=4")
	if status != http.StatusOK {
		t.Fatalf("query: status %d: %s", status, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Worlds > 50 {
		t.Errorf("worlds = %d, want <= the graph's 50-world override", resp.Worlds)
	}

	// Replace with the star graph: same name, created=false, new
	// structure served immediately.
	status, body = do(t, "POST", ts.URL+"/graphs/rel1", bytes.NewReader(ugBytes(t, starGraph(t))))
	if status != http.StatusOK {
		t.Fatalf("replace: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Created {
		t.Errorf("replacing PUT reported created=true")
	}
	status, body = get(t, ts.URL+"/graphs/rel1/reliability?s=1&t=3")
	if err := json.Unmarshal(body, &resp); err != nil || status != http.StatusOK {
		t.Fatalf("post-replace query: status %d err %v", status, err)
	}
	if got := *resp.Results[0].Reliability; got != 1 {
		t.Errorf("post-replace Pr(1~3) = %v, want the star's 1", got)
	}

	// Malformed upload: 400 with the parse error.
	if status, body := do(t, "PUT", ts.URL+"/graphs/bad", strings.NewReader("0 1 not-a-prob\n")); status != http.StatusBadRequest {
		t.Errorf("malformed upload: status %d (%s), want 400", status, body)
	}
	// Bad override param: 400.
	if status, _ := do(t, "PUT", ts.URL+"/graphs/bad?worlds=-5", bytes.NewReader(src)); status != http.StatusBadRequest {
		t.Errorf("negative worlds override: status %d, want 400", status)
	}
	// Oversized upload: 413.
	srv.MaxUploadBytes = 16
	if status, _ := do(t, "PUT", ts.URL+"/graphs/big", bytes.NewReader(src)); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: status %d, want 413", status)
	}
	srv.MaxUploadBytes = 0

	// Delete, then both the stats and the queries 404.
	if status, _ := do(t, "DELETE", ts.URL+"/graphs/rel1", nil); status != http.StatusOK {
		t.Errorf("DELETE: status %d, want 200", status)
	}
	if status, _ := do(t, "DELETE", ts.URL+"/graphs/rel1", nil); status != http.StatusNotFound {
		t.Errorf("second DELETE: status %d, want 404", status)
	}
	if status, _ := get(t, ts.URL+"/graphs/rel1/reliability?s=0&t=1"); status != http.StatusNotFound {
		t.Errorf("query after DELETE: status %d, want 404", status)
	}
}

// TestLegacyAliasesResolveDefaultGraph pins the one-release compat
// contract: the old single-graph paths serve the default graph and
// share its world streams with the named paths (the seed derivation
// hashes the resolved name, not the URL shape).
func TestLegacyAliasesResolveDefaultGraph(t *testing.T) {
	srv := &Server{G: testGraph(t), Worlds: 150, Seed: 11}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	s1, b1 := get(t, ts.URL+"/reliability?s=0&t=3")
	s2, b2 := get(t, ts.URL+"/graphs/default/reliability?s=0&t=3")
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("statuses %d/%d: %s / %s", s1, s2, b1, b2)
	}
	if string(b1) != string(b2) {
		t.Errorf("alias and named path diverge:\n%s\nvs\n%s", b1, b2)
	}

	// Without a default graph the aliases 404 and name the fix.
	bare := &Server{Worlds: 50, Seed: 1}
	if _, _, err := bare.Publish("only", ugBytes(t, testGraph(t)), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(bare.Handler())
	t.Cleanup(ts2.Close)
	status, body := get(t, ts2.URL+"/reliability?s=0&t=1")
	if status != http.StatusNotFound || !strings.Contains(string(body), "no default graph") {
		t.Errorf("alias without default: status %d body %s, want 404 naming the fix", status, body)
	}
	// The named path still works.
	if status, _ := get(t, ts2.URL+"/graphs/only/reliability?s=0&t=1"); status != http.StatusOK {
		t.Errorf("named path on default-less server: status %d, want 200", status)
	}
}

// TestGraphNameAndPathValidation covers the routing edge cases the
// fuzzer also probes: traversal-shaped and non-canonical paths are
// 404, bad names are 400, and nothing panics.
func TestGraphNameAndPathValidation(t *testing.T) {
	srv := &Server{G: testGraph(t), Worlds: 50, Seed: 11}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	for _, c := range []struct {
		path string
		want int
	}{
		{"/graphs/../reliability?s=0&t=1", http.StatusNotFound},                                 // traversal → non-canonical
		{"/graphs//reliability?s=0&t=1", http.StatusNotFound},                                   // empty segment
		{"/graphs/a/b/reliability?s=0&t=1", http.StatusNotFound},                                // no such route
		{"/graphs/" + strings.Repeat("x", 300) + "/reliability?s=0&t=1", http.StatusBadRequest}, // overlong name
		{"/graphs/a%2Fb/reliability?s=0&t=1", http.StatusBadRequest},                            // encoded slash in name
		{"/graphs/%2e%2e/reliability?s=0&t=1", http.StatusBadRequest},                           // encoded ".."
		{"/graphs/caf%C3%A9/reliability?s=0&t=1", http.StatusNotFound},                          // valid unicode name, unknown
	} {
		req, err := http.NewRequest("GET", ts.URL+c.path, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		// Keep the raw path: the default client would clean it before
		// the server ever saw the traversal shape.
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.path, resp.StatusCode, c.want)
		}
	}

	// A unicode name round-trips through publish and query.
	if _, _, err := srv.Publish("café", ugBytes(t, starGraph(t)), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	if status, body := get(t, ts.URL+"/graphs/caf%C3%A9/reliability?s=0&t=1"); status != http.StatusOK {
		t.Errorf("unicode graph query: status %d (%s), want 200", status, body)
	}
	// Invalid names are rejected at publish time too.
	for _, name := range []string{"", ".", "..", "a/b", "ctrl\x01", strings.Repeat("x", 300)} {
		if _, _, err := srv.Publish(name, ugBytes(t, starGraph(t)), GraphConfig{}); err == nil {
			t.Errorf("Publish(%q) accepted an invalid name", name)
		}
	}
}

// TestRegistryFull pins the name-table cap: registering past MaxGraphs
// is rejected with ErrRegistryFull (HTTP 413), replacing an existing
// name is not.
func TestRegistryFull(t *testing.T) {
	srv := &Server{Worlds: 50, Seed: 11, MaxGraphs: 1}
	if _, _, err := srv.Publish("one", ugBytes(t, testGraph(t)), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Publish("one", ugBytes(t, starGraph(t)), GraphConfig{}); err != nil {
		t.Errorf("replacing at the cap failed: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	status, body := do(t, "PUT", ts.URL+"/graphs/two", bytes.NewReader(ugBytes(t, starGraph(t))))
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("publish past MaxGraphs: status %d (%s), want 413", status, body)
	}
}

// TestSeedsDecorrelateAcrossGraphs pins that two graphs with identical
// content and identical requests still get different world streams:
// the graph name is part of the seed derivation.
func TestSeedsDecorrelateAcrossGraphs(t *testing.T) {
	srv := &Server{Worlds: 100, Seed: 11}
	src := ugBytes(t, testGraph(t))
	for _, name := range []string{"left", "right"} {
		if _, _, err := srv.Publish(name, src, GraphConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	var seeds [2]int64
	for i, name := range []string{"left", "right"} {
		status, body := get(t, ts.URL+"/graphs/"+name+"/reliability?s=0&t=3")
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, status, body)
		}
		var resp BatchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		seeds[i] = resp.Seed
	}
	if seeds[0] == seeds[1] {
		t.Errorf("identical requests against different graphs share seed %d", seeds[0])
	}
}

// TestRegistryConcurrentChurn is the registry's race exercise:
// concurrent publishes, queries, evictions (via a tight global budget)
// and deletes against one registry, with a surviving graph's answers
// asserted bit-identical before and after its neighbours' churn. Run
// with -race this also proves handles outlive eviction safely.
func TestRegistryConcurrentChurn(t *testing.T) {
	fp := graphFootprint(t)
	// Room for ~2 fixture graphs: every publish/reload of a third
	// evicts somebody, so eviction churns constantly under load.
	srv := &Server{Worlds: 60, Seed: 5, GlobalMemBudget: 2*fp + fp/2}
	keepSrc := ugBytes(t, testGraph(t))
	churnSrc := ugBytes(t, starGraph(t))
	if _, _, err := srv.Publish("keep", keepSrc, GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const reqBody = `{"queries":[{"op":"reliability","s":0,"t":4},{"op":"knn","s":1,"k":3}]}`
	post := func(name string) (int, string) {
		resp, err := http.Post(ts.URL+"/graphs/"+name+"/batch", "application/json", strings.NewReader(reqBody))
		if err != nil {
			return 0, err.Error()
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	status, want := post("keep")
	if status != http.StatusOK {
		t.Fatalf("baseline: status %d: %s", status, want)
	}

	const workers, rounds = 8, 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("churn-%d", w%3)
			for i := 0; i < rounds; i++ {
				switch w % 4 {
				case 0: // publisher: create/replace its churn graph
					if status, body := do(t, "PUT", ts.URL+"/graphs/"+name, bytes.NewReader(churnSrc)); status != http.StatusOK {
						t.Errorf("publish %s: status %d: %s", name, status, body)
						return
					}
				case 1: // deleter: delete (absent is fine), then republish
					do(t, "DELETE", ts.URL+"/graphs/"+name, nil)
					do(t, "PUT", ts.URL+"/graphs/"+name, bytes.NewReader(churnSrc))
				case 2: // churn reader: query whatever exists right now
					if status, body := post(name); status != http.StatusOK && status != http.StatusNotFound {
						t.Errorf("churn query %s: status %d: %s", name, status, body)
						return
					}
				default: // keep reader: the survivor must answer bit-identically throughout
					if status, body := post("keep"); status != http.StatusOK || body != want {
						t.Errorf("keep diverged mid-churn (status %d):\n%s\nvs\n%s", status, body, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// After the dust settles the survivor still answers identically,
	// whether or not the churn evicted it along the way.
	if status, body := post("keep"); status != http.StatusOK || body != want {
		t.Errorf("keep diverged after churn (status %d):\n%s\nvs\n%s", status, body, want)
	}
	_, totals := srv.GraphStats()
	if totals.ResidentBytes > srv.GlobalMemBudget {
		t.Errorf("resident %d bytes exceed the global budget %d after churn", totals.ResidentBytes, srv.GlobalMemBudget)
	}
}

// ugbBytes serializes g in the binary .ugb format.
func ugbBytes(t testing.TB, g *uncertain.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ugbin.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryPublishBitIdenticalToText pins the format-sniffing publish
// paths: the same graph published as text bytes, binary bytes and a
// binary file answers every query byte-identically (the request seed
// hashes the graph *name*, so the three publishes share one under
// rotating names), and the binary copies report mapped-not-resident
// memory.
func TestBinaryPublishBitIdenticalToText(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.ugb")
	if err := ugbin.WriteFile(path, g); err != nil {
		t.Fatal(err)
	}

	const reqBody = `{"queries":[{"op":"reliability","s":0,"t":3},{"op":"distance","s":0,"t":4},{"op":"knn","s":2,"k":3}]}`
	answers := make(map[string]string)
	for _, tc := range []string{"text", "binary-upload", "binary-file"} {
		srv := &Server{Worlds: 200, Seed: 11}
		var st GraphStats
		var err error
		switch tc {
		case "text":
			st, _, err = srv.Publish("g", ugBytes(t, g), GraphConfig{})
		case "binary-upload":
			st, _, err = srv.Publish("g", ugbBytes(t, g), GraphConfig{})
		case "binary-file":
			st, err = srv.PublishFile("g", path, GraphConfig{})
		}
		if err != nil {
			t.Fatalf("%s: %v", tc, err)
		}
		if st.Vertices != g.NumVertices() || st.Pairs != g.NumPairs() {
			t.Errorf("%s: stats %d/%d, want %d/%d", tc, st.Vertices, st.Pairs, g.NumVertices(), g.NumPairs())
		}
		if tc == "text" {
			if st.ResidentBytes == 0 || st.MappedBytes != 0 {
				t.Errorf("text: resident=%d mapped=%d, want heap-resident", st.ResidentBytes, st.MappedBytes)
			}
		} else if st.MappedBytes == 0 || st.ResidentBytes != 0 {
			// Uploads adopt the retained bytes zero-copy; files mmap
			// (or, on platforms without mmap, PublishFile would be
			// heap-resident — this repo's CI targets are all unix).
			t.Errorf("%s: resident=%d mapped=%d, want mapped-backed", tc, st.ResidentBytes, st.MappedBytes)
		}

		ts := httptest.NewServer(srv.Handler())
		resp, err := http.Post(ts.URL+"/graphs/g/batch", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		ts.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d (%v): %s", tc, resp.StatusCode, err, b)
		}
		answers[tc] = string(b)
	}
	for _, tc := range []string{"binary-upload", "binary-file"} {
		if answers[tc] != answers["text"] {
			t.Errorf("%s answers diverge from text:\n%s\nvs\n%s", tc, answers[tc], answers["text"])
		}
	}
}

// TestMappedGraphsExemptFromEviction pins the honest-accounting rule: a
// mapped graph's memory is not metered by the global budget, so it is
// never chosen as an eviction victim — evicting it would free nothing
// while forcing a remap.
func TestMappedGraphsExemptFromEviction(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.ugb")
	if err := ugbin.WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	fp := g.FootprintBytes()
	reg := &Registry{GlobalMemBudget: fp + fp/2}
	if _, err := reg.PublishFile("mapped", path, GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Publish("heap1", ugBytes(t, g), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	// heap2 pushes resident past the budget; the only evictable victim
	// is heap1 — "mapped" has zero footprint and must survive.
	if _, _, err := reg.Publish("heap2", ugBytes(t, g), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	list, totals := reg.Stats()
	byName := map[string]GraphStats{}
	for _, st := range list {
		byName[st.Name] = st
	}
	if !byName["mapped"].Loaded || byName["mapped"].Evictions != 0 {
		t.Errorf("mapped graph was evicted: %+v", byName["mapped"])
	}
	if byName["heap1"].Loaded || byName["heap1"].Evictions != 1 {
		t.Errorf("heap1 not evicted: %+v", byName["heap1"])
	}
	if totals.ResidentBytes != byName["heap2"].ResidentBytes || totals.MappedBytes != byName["mapped"].MappedBytes {
		t.Errorf("registry totals %+v inconsistent with per-graph stats", totals)
	}

	// An evicted heap graph reloads via acquire; the mapped graph keeps
	// serving without ever having missed.
	h, err := reg.acquire("heap1")
	if err != nil {
		t.Fatal(err)
	}
	if h.g == nil {
		t.Fatal("acquire returned nil graph")
	}
	if h2, err := reg.acquire("mapped"); err != nil || h2.g.MappedBytes() == 0 {
		t.Errorf("mapped acquire: err=%v", err)
	}
	list, _ = reg.Stats()
	for _, st := range list {
		byName[st.Name] = st
	}
	if byName["heap1"].Misses != 1 {
		t.Errorf("heap1 misses = %d, want 1", byName["heap1"].Misses)
	}
	if byName["mapped"].Misses != 0 || byName["mapped"].Hits != 1 {
		t.Errorf("mapped counters: %+v, want 1 hit / 0 misses", byName["mapped"])
	}
}
