package qserve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"unicode/utf8"

	"uncertaingraph/internal/query"
	"uncertaingraph/internal/ugbin"
	"uncertaingraph/internal/uncertain"
)

// Registry limits. DefaultGlobalMemBudget bounds the summed
// FootprintBytes of every *loaded* graph — crossing it evicts the
// least-recently-used cold graphs — and DefaultMaxGraphs bounds how
// many graphs may be registered at all (loaded or not), so an upload
// loop cannot grow the name table without bound.
const (
	DefaultGlobalMemBudget = int64(8) << 30 // 8 GiB
	DefaultMaxGraphs       = 1024
	// maxGraphNameBytes caps a graph name's encoded length; names are
	// URL path segments and hash into every request seed, so they stay
	// short.
	maxGraphNameBytes = 128
)

// Registry errors, distinguished so the HTTP layer can map them to
// statuses (unknown → 404, bad name → 400, full → 413).
var (
	ErrUnknownGraph = errors.New("qserve: unknown graph")
	ErrBadGraphName = errors.New("qserve: invalid graph name")
	ErrRegistryFull = errors.New("qserve: graph registry is full")
)

// GraphConfig carries one graph's serving overrides. Zero fields
// inherit the server defaults, so the zero value means "serve with the
// daemon's configuration".
type GraphConfig struct {
	// Worlds overrides the per-request default sample size.
	Worlds int
	// Tolerance overrides the default adaptive-precision tolerance.
	Tolerance float64
	// MemoryBudget overrides the per-request accumulator budget.
	MemoryBudget int64
}

// GraphStats is one registered graph's public snapshot, served by
// GET /graphs and embedded in /healthz. Vertices and Pairs survive
// eviction (they describe the published release, not the resident
// copy); ResidentBytes is 0 while the graph is evicted.
type GraphStats struct {
	Name          string `json:"name"`
	Loaded        bool   `json:"loaded"`
	Vertices      int    `json:"vertices"`
	Pairs         int    `json:"pairs"`
	ResidentBytes int64  `json:"resident_bytes"`
	// MappedBytes is the externally backed memory the loaded graph's
	// arrays alias — an mmap'd .ugb file (page cache, shared across
	// processes) or retained upload bytes adopted zero-copy. Such
	// graphs cost ResidentBytes ≈ 0, are exempt from LRU eviction
	// (evicting them would free nothing the budget meters), and make
	// cold starts a page-table setup instead of a parse.
	MappedBytes int64 `json:"mapped_bytes,omitempty"`
	// Hits counts requests served while the graph was resident; Misses
	// counts requests that had to reload it after an eviction;
	// Evictions counts how many times it was dropped under the global
	// budget.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Per-graph overrides, omitted when inheriting the server default.
	Worlds       int     `json:"worlds,omitempty"`
	Tolerance    float64 `json:"tolerance,omitempty"`
	MemoryBudget int64   `json:"memory_budget,omitempty"`
}

// RegistryStats is the registry-wide snapshot.
type RegistryStats struct {
	Graphs          int    `json:"graphs"`
	Loaded          int    `json:"loaded"`
	ResidentBytes   int64  `json:"resident_bytes"`
	MappedBytes     int64  `json:"mapped_bytes,omitempty"`
	GlobalMemBudget int64  `json:"global_mem_budget"`
	Evictions       uint64 `json:"evictions"`
}

// graphEntry is one registered graph: its durable source (uploaded
// bytes or a file path, whichever published it), the resident parsed
// copy when loaded, its private batch pool, and its counters. The
// source outlives eviction — reloading parses the identical bytes, so
// an evict-then-reload cycle is invisible to clients.
type graphEntry struct {
	name string
	cfg  GraphConfig

	// gen is the entry's publish generation: a registry-wide monotonic
	// counter stamped on every install. It names the *release* — a
	// republish (same name, new bytes or config) gets a fresh gen, while
	// an evict-then-reload keeps it (reloading parses the identical
	// source, so answers are unchanged). The result cache keys on it, so
	// stale answers cannot survive a republish but do survive eviction.
	gen uint64

	source []byte // serialized graph; nil when path-backed
	path   string // reload path; "" when source-backed

	vertices, npairs int

	g      *uncertain.Graph // nil while evicted
	pool   *query.BatchPool // regenerated with g; nil while evicted
	bytes  int64            // FootprintBytes of g while loaded
	mapped int64            // MappedBytes of g while loaded

	lastUse                 uint64
	hits, misses, evictions uint64
}

// graphHandle is what one request borrows from the registry: the
// resident graph, its batch pool and its overrides, valid for the
// request's lifetime even if the registry evicts or replaces the entry
// meanwhile (the handle keeps the old copy alive; batches returned to
// an orphaned pool are simply garbage-collected).
type graphHandle struct {
	name string
	g    *uncertain.Graph
	pool *query.BatchPool
	cfg  GraphConfig
}

// Registry owns the named published graphs behind one daemon. All
// state is guarded by one mutex — including reload parsing, so a cold
// hit briefly serializes the registry; the steady state (every hot
// graph resident) only touches the map and counters. Batch Get/Put
// runs outside the lock on the per-graph pools.
type Registry struct {
	// GlobalMemBudget bounds the summed FootprintBytes of loaded
	// graphs (0 selects DefaultGlobalMemBudget). When a load pushes the
	// total over, least-recently-used graphs are evicted until the
	// total fits again — except the graph being loaded, which always
	// stays (a single graph larger than the budget still serves).
	GlobalMemBudget int64
	// MaxGraphs bounds the number of registered graphs (0 selects
	// DefaultMaxGraphs).
	MaxGraphs int
	// NewPool builds the batch pool for a graph when it is (re)loaded;
	// the server injects its effective-budget resolution here. Nil
	// falls back to an unbudgeted pool.
	NewPool func(g *uncertain.Graph, cfg GraphConfig) *query.BatchPool
	// BinaryLoadMode selects how .ugb files are brought into memory
	// (publish and post-eviction reload alike). The zero value is
	// ugbin.ModeAuto: mmap where the platform supports it, heap read
	// otherwise.
	BinaryLoadMode ugbin.Mode

	mu        sync.Mutex
	graphs    map[string]*graphEntry
	clock     uint64
	gens      uint64
	resident  int64
	mapped    int64
	evictions uint64
}

// validateGraphName rejects names that cannot be URL path segments or
// smell like filesystem traversal: empty, overlong, non-UTF-8, "." or
// "..", embedded '/' or '\', control bytes.
func validateGraphName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrBadGraphName)
	}
	if len(name) > maxGraphNameBytes {
		return fmt.Errorf("%w: name longer than %d bytes", ErrBadGraphName, maxGraphNameBytes)
	}
	if !utf8.ValidString(name) {
		return fmt.Errorf("%w: name is not valid UTF-8", ErrBadGraphName)
	}
	if name == "." || name == ".." {
		return fmt.Errorf("%w: %q", ErrBadGraphName, name)
	}
	for _, b := range []byte(name) {
		if b == '/' || b == '\\' || b < 0x20 || b == 0x7f {
			return fmt.Errorf("%w: %q contains a path separator or control byte", ErrBadGraphName, name)
		}
	}
	return nil
}

func (r *Registry) globalBudget() int64 {
	if r.GlobalMemBudget > 0 {
		return r.GlobalMemBudget
	}
	return DefaultGlobalMemBudget
}

func (r *Registry) maxGraphs() int {
	if r.MaxGraphs > 0 {
		return r.MaxGraphs
	}
	return DefaultMaxGraphs
}

func (r *Registry) newPool(g *uncertain.Graph, cfg GraphConfig) *query.BatchPool {
	if r.NewPool != nil {
		return r.NewPool(g, cfg)
	}
	return query.NewBatchPool(g, query.Config{})
}

// Publish registers (or replaces) a source-backed graph parsed from
// src, keeps src for reloads, and returns the graph's stats plus
// whether the name was new. The format is sniffed by magic: binary
// .ugb bytes are adopted zero-copy (the graph aliases the retained
// src), anything else parses as the "u v p" text format. The loaded
// copy is resident on return; publishing may evict colder graphs to
// fit it under the global budget.
func (r *Registry) Publish(name string, src []byte, cfg GraphConfig) (GraphStats, bool, error) {
	if err := validateGraphName(name); err != nil {
		return GraphStats{}, false, err
	}
	g, err := readGraphBytes(src)
	if err != nil {
		return GraphStats{}, false, fmt.Errorf("parsing graph %q: %w", name, err)
	}
	return r.install(name, g, src, "", cfg)
}

// readGraphBytes loads a serialized graph held in memory, routing on
// the .ugb magic.
func readGraphBytes(src []byte) (*uncertain.Graph, error) {
	if ugbin.Sniff(src) {
		return ugbin.Decode(src)
	}
	return uncertain.Read(bytes.NewReader(src))
}

// PublishFile registers (or replaces) a path-backed graph: the file is
// loaded now and re-read on every post-eviction reload, so the
// registry holds no copy of the serialized form. The format is sniffed
// by magic — a .ugb file is memory-mapped (per BinaryLoadMode), text
// is parsed.
func (r *Registry) PublishFile(name, path string, cfg GraphConfig) (GraphStats, error) {
	if err := validateGraphName(name); err != nil {
		return GraphStats{}, err
	}
	g, err := readGraphFile(path, r.BinaryLoadMode)
	if err != nil {
		return GraphStats{}, err
	}
	st, _, err := r.install(name, g, nil, path, cfg)
	return st, err
}

// readGraphFile loads the graph at path, routing on the .ugb magic: a
// binary file goes through ugbin (mmap by default — loading is a
// page-table setup, not a parse), anything else through the text
// reader.
func readGraphFile(path string, mode ugbin.Mode) (*uncertain.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	if ugbin.Sniff(magic[:n]) {
		return ugbin.LoadMode(path, mode)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	g, err := uncertain.Read(f)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return g, nil
}

// install swaps the freshly parsed graph into the registry under the
// lock, preserving counters across a replace (a republished name is a
// new release of the same logical graph).
func (r *Registry) install(name string, g *uncertain.Graph, src []byte, path string, cfg GraphConfig) (GraphStats, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.graphs == nil {
		r.graphs = make(map[string]*graphEntry)
	}
	e, ok := r.graphs[name]
	if !ok {
		if len(r.graphs) >= r.maxGraphs() {
			return GraphStats{}, false, fmt.Errorf("%w: %d graphs registered (cap %d)",
				ErrRegistryFull, len(r.graphs), r.maxGraphs())
		}
		e = &graphEntry{name: name}
		r.graphs[name] = e
	} else if e.g != nil {
		r.resident -= e.bytes
		r.mapped -= e.mapped
	}
	e.cfg = cfg
	r.gens++
	e.gen = r.gens
	e.source, e.path = src, path
	e.vertices, e.npairs = g.NumVertices(), g.NumPairs()
	e.g = g
	e.bytes = g.FootprintBytes()
	e.mapped = g.MappedBytes()
	e.pool = r.newPool(g, cfg)
	r.resident += e.bytes
	r.mapped += e.mapped
	r.clock++
	e.lastUse = r.clock
	r.enforceBudgetLocked(e)
	return r.statsLocked(e), !ok, nil
}

// Delete removes a graph entirely — source, resident copy, counters —
// and reports whether the name existed.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[name]
	if !ok {
		return false
	}
	if e.g != nil {
		r.resident -= e.bytes
		r.mapped -= e.mapped
	}
	delete(r.graphs, name)
	return true
}

// acquire borrows name's graph for one request, reloading it from its
// source if a past eviction dropped the resident copy. A reload may in
// turn evict the now-coldest graphs to fit the global budget.
func (r *Registry) acquire(name string) (*graphHandle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	r.clock++
	e.lastUse = r.clock
	if e.g == nil {
		g, err := e.reload(r.BinaryLoadMode)
		if err != nil {
			return nil, fmt.Errorf("reloading graph %q: %w", name, err)
		}
		e.g = g
		e.bytes = g.FootprintBytes()
		e.mapped = g.MappedBytes()
		e.pool = r.newPool(g, e.cfg)
		e.misses++
		r.resident += e.bytes
		r.mapped += e.mapped
		r.enforceBudgetLocked(e)
	} else {
		e.hits++
	}
	return &graphHandle{name: e.name, g: e.g, pool: e.pool, cfg: e.cfg}, nil
}

// reload rebuilds the resident copy from the entry's durable source.
// Both branches sniff the format again, so a path-backed .ugb comes
// back via mmap (an eviction miss costs a page-table setup, not a
// parse) and zero-copy uploaded binaries re-adopt the retained bytes.
func (e *graphEntry) reload(mode ugbin.Mode) (*uncertain.Graph, error) {
	if e.path != "" {
		return readGraphFile(e.path, mode)
	}
	return readGraphBytes(e.source)
}

// enforceBudgetLocked evicts least-recently-used loaded graphs until
// the resident total fits the global budget, never evicting keep (the
// graph the current operation is about to serve). Graphs with zero
// footprint — mmap'd or zero-copy binaries, whose memory the budget
// does not meter — are never victims: dropping them would free nothing
// while forcing a remap on the next request.
func (r *Registry) enforceBudgetLocked(keep *graphEntry) {
	budget := r.globalBudget()
	for r.resident > budget {
		var victim *graphEntry
		for _, e := range r.graphs {
			if e.g == nil || e == keep || e.bytes == 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		r.resident -= victim.bytes
		r.mapped -= victim.mapped
		victim.g, victim.pool, victim.bytes, victim.mapped = nil, nil, 0, 0
		victim.evictions++
		r.evictions++
	}
}

func (r *Registry) statsLocked(e *graphEntry) GraphStats {
	return GraphStats{
		Name:          e.name,
		Loaded:        e.g != nil,
		Vertices:      e.vertices,
		Pairs:         e.npairs,
		ResidentBytes: e.bytes,
		MappedBytes:   e.mapped,
		Hits:          e.hits,
		Misses:        e.misses,
		Evictions:     e.evictions,
		Worlds:        e.cfg.Worlds,
		Tolerance:     e.cfg.Tolerance,
		MemoryBudget:  e.cfg.MemoryBudget,
	}
}

// Stats returns every graph's snapshot (sorted by name) and the
// registry totals.
func (r *Registry) Stats() ([]GraphStats, RegistryStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	list := make([]GraphStats, 0, len(r.graphs))
	loaded := 0
	for _, e := range r.graphs {
		if e.g != nil {
			loaded++
		}
		list = append(list, r.statsLocked(e))
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list, RegistryStats{
		Graphs:          len(r.graphs),
		Loaded:          loaded,
		ResidentBytes:   r.resident,
		MappedBytes:     r.mapped,
		GlobalMemBudget: r.globalBudget(),
		Evictions:       r.evictions,
	}
}

// graphInfo is the slice of a graph's registration the serving layer
// can inspect without loading it: enough to validate a request, derive
// its seed/cache key and answer cache hits while the graph itself stays
// evicted.
type graphInfo struct {
	gen      uint64
	vertices int
	cfg      GraphConfig
}

// peek returns name's registration info without loading the graph or
// touching the LRU clock — a cache hit against an evicted graph must
// not force a reload (or perturb eviction order) just to learn the
// answer was already known.
func (r *Registry) peek(name string) (graphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[name]
	if !ok {
		return graphInfo{}, false
	}
	return graphInfo{gen: e.gen, vertices: e.vertices, cfg: e.cfg}, true
}

// GraphStatsFor returns one graph's snapshot.
func (r *Registry) GraphStatsFor(name string) (GraphStats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[name]
	if !ok {
		return GraphStats{}, false
	}
	return r.statsLocked(e), true
}
