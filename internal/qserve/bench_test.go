package qserve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"uncertaingraph/internal/uncertain"
)

// benchGraph builds a deterministic ~n-vertex uncertain graph (a ring
// plus hashed chords) big enough that evict/reload cost — serialize
// source held in memory, parse, rebuild incidence — is visible next to
// the request's world sampling.
func benchGraph(b *testing.B, n int) *uncertain.Graph {
	b.Helper()
	pairs := make([]uncertain.Pair, 0, 2*n)
	for u := 0; u < n; u++ {
		h := (u*2654435761 + 40503) % 97
		pairs = append(pairs, uncertain.Pair{U: u, V: (u + 1) % n, P: float64(h+1) / 98})
		if chord := (u + n/3) % n; chord != u && chord != (u+1)%n {
			pairs = append(pairs, uncertain.Pair{U: u, V: chord, P: float64((h*31)%97+1) / 98})
		}
	}
	g, err := uncertain.New(n, pairs)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchRequest(b *testing.B, handler http.Handler, name string) {
	b.Helper()
	body := `{"queries":[{"op":"reliability","s":0,"t":9},{"op":"distance","s":1,"t":7}]}`
	req := httptest.NewRequest("POST", "/graphs/"+name+"/batch", strings.NewReader(body))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s: status %d: %s", name, rec.Code, rec.Body.Bytes())
	}
}

// BenchmarkRegistryHotRequest is the steady-state number: every
// request hits a resident graph and a pooled batch. Its gap to
// BenchmarkRegistryColdReload is the price of an eviction miss.
func BenchmarkRegistryHotRequest(b *testing.B) {
	g := benchGraph(b, 2000)
	srv := &Server{Worlds: 8, Workers: 1, Seed: 1}
	if _, err := srv.PublishGraph("hot", g, GraphConfig{}); err != nil {
		b.Fatal(err)
	}
	handler := srv.Handler()
	benchRequest(b, handler, "hot") // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, handler, "hot")
	}
}

// BenchmarkRegistryColdReload serves the same request against a
// registry whose global budget fits one graph while two are
// registered, alternating between them: every request is a miss that
// reloads the graph from its retained source and rebuilds its pool.
func BenchmarkRegistryColdReload(b *testing.B) {
	g := benchGraph(b, 2000)
	srv := &Server{Worlds: 8, Workers: 1, Seed: 1,
		GlobalMemBudget: g.FootprintBytes() + g.FootprintBytes()/2}
	for _, name := range []string{"cold-a", "cold-b"} {
		if _, err := srv.PublishGraph(name, g, GraphConfig{}); err != nil {
			b.Fatal(err)
		}
	}
	handler := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, handler, fmt.Sprintf("cold-%c", 'a'+i%2))
	}
	b.StopTimer()
	_, totals := srv.GraphStats()
	if totals.Evictions < uint64(b.N) {
		b.Fatalf("only %d evictions over %d requests: the cold path was not exercised", totals.Evictions, b.N)
	}
}
