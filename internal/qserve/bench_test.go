package qserve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"uncertaingraph/internal/uncertain"
)

// benchGraph builds a deterministic ~n-vertex uncertain graph (a ring
// plus hashed chords) big enough that evict/reload cost — serialize
// source held in memory, parse, rebuild incidence — is visible next to
// the request's world sampling.
func benchGraph(b testing.TB, n int) *uncertain.Graph {
	b.Helper()
	pairs := make([]uncertain.Pair, 0, 2*n)
	for u := 0; u < n; u++ {
		h := (u*2654435761 + 40503) % 97
		pairs = append(pairs, uncertain.Pair{U: u, V: (u + 1) % n, P: float64(h+1) / 98})
		if chord := (u + n/3) % n; chord != u && chord != (u+1)%n {
			pairs = append(pairs, uncertain.Pair{U: u, V: chord, P: float64((h*31)%97+1) / 98})
		}
	}
	g, err := uncertain.New(n, pairs)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchRequest(b *testing.B, handler http.Handler, name string) {
	b.Helper()
	body := `{"queries":[{"op":"reliability","s":0,"t":9},{"op":"distance","s":1,"t":7}]}`
	req := httptest.NewRequest("POST", "/graphs/"+name+"/batch", strings.NewReader(body))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s: status %d: %s", name, rec.Code, rec.Body.Bytes())
	}
}

// BenchmarkRegistryHotRequest is the steady-state number: every
// request hits a resident graph and a pooled batch. Its gap to
// BenchmarkRegistryColdReload is the price of an eviction miss.
func BenchmarkRegistryHotRequest(b *testing.B) {
	g := benchGraph(b, 2000)
	srv := &Server{Worlds: 8, Workers: 1, Seed: 1}
	if _, err := srv.PublishGraph("hot", g, GraphConfig{}); err != nil {
		b.Fatal(err)
	}
	handler := srv.Handler()
	benchRequest(b, handler, "hot") // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, handler, "hot")
	}
}

// BenchmarkRegistryCachedRequest prices the result cache against the
// BenchmarkRegistryHotRequest baseline (which stays cache-disabled):
//
//   - hot-cache: every request after the first is a stored-answer
//     lookup — the acceptance bar is >= 10x faster than the hot
//     baseline;
//   - hot-graph-cold-cache: the cache is enabled but nothing fits its
//     budget, so every request runs the full miss path (flight setup,
//     computation, discarded store) against a resident graph — the
//     overhead the cache machinery adds to a recomputation;
//   - cold: a cache miss that also finds its graph evicted, paying
//     reload plus recomputation.
func BenchmarkRegistryCachedRequest(b *testing.B) {
	b.Run("hot-cache", func(b *testing.B) {
		srv := &Server{Worlds: 8, Workers: 1, Seed: 1, ResultCacheBudget: DefaultResultCacheBudget}
		if _, err := srv.PublishGraph("hot", benchGraph(b, 2000), GraphConfig{}); err != nil {
			b.Fatal(err)
		}
		handler := srv.Handler()
		benchRequest(b, handler, "hot") // fill the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchRequest(b, handler, "hot")
		}
	})
	b.Run("hot-graph-cold-cache", func(b *testing.B) {
		// A 1-byte budget stores nothing: every request misses, computes
		// under a flight, and its answer evicts itself.
		srv := &Server{Worlds: 8, Workers: 1, Seed: 1, ResultCacheBudget: 1}
		if _, err := srv.PublishGraph("hot", benchGraph(b, 2000), GraphConfig{}); err != nil {
			b.Fatal(err)
		}
		handler := srv.Handler()
		benchRequest(b, handler, "hot") // warm the pool
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchRequest(b, handler, "hot")
		}
	})
	b.Run("cold", func(b *testing.B) {
		g := benchGraph(b, 2000)
		srv := &Server{Worlds: 8, Workers: 1, Seed: 1, ResultCacheBudget: 1,
			GlobalMemBudget: g.FootprintBytes() + g.FootprintBytes()/2}
		for _, name := range []string{"cold-a", "cold-b"} {
			if _, err := srv.PublishGraph(name, g, GraphConfig{}); err != nil {
				b.Fatal(err)
			}
		}
		handler := srv.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchRequest(b, handler, fmt.Sprintf("cold-%c", 'a'+i%2))
		}
	})
}

// BenchmarkRegistryColdReload serves the same request against a
// registry whose global budget fits one graph while two are
// registered, alternating between them: every request is a miss that
// reloads the graph from its retained source and rebuilds its pool.
func BenchmarkRegistryColdReload(b *testing.B) {
	g := benchGraph(b, 2000)
	srv := &Server{Worlds: 8, Workers: 1, Seed: 1,
		GlobalMemBudget: g.FootprintBytes() + g.FootprintBytes()/2}
	for _, name := range []string{"cold-a", "cold-b"} {
		if _, err := srv.PublishGraph(name, g, GraphConfig{}); err != nil {
			b.Fatal(err)
		}
	}
	handler := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, handler, fmt.Sprintf("cold-%c", 'a'+i%2))
	}
	b.StopTimer()
	_, totals := srv.GraphStats()
	if totals.Evictions < uint64(b.N) {
		b.Fatalf("only %d evictions over %d requests: the cold path was not exercised", totals.Evictions, b.N)
	}
}
