package qserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postBody posts a batch request body and returns the status and
// response bytes.
func postBody(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// cacheStatsOf reads the result_cache block of GET /graphs.
func cacheStatsOf(t *testing.T, baseURL string) ResultCacheStats {
	t.Helper()
	status, body := get(t, baseURL+"/graphs")
	if status != http.StatusOK {
		t.Fatalf("GET /graphs: status %d: %s", status, body)
	}
	var list graphListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	return list.ResultCache
}

// graphStatsOf reads one graph's stats row out of GET /graphs.
func graphStatsOf(t *testing.T, baseURL, name string) GraphStats {
	t.Helper()
	status, body := get(t, baseURL+"/graphs")
	if status != http.StatusOK {
		t.Fatalf("GET /graphs: status %d: %s", status, body)
	}
	var list graphListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	for _, st := range list.Graphs {
		if st.Name == name {
			return st
		}
	}
	t.Fatalf("graph %q not in GET /graphs", name)
	return GraphStats{}
}

// referenceAnswer computes a request on a fresh cache-disabled
// single-tenant server — the ground truth every cached, coalesced or
// shared answer must be byte-identical to. Workers is pinned to 1, the
// canonical stream shape.
func referenceAnswer(t *testing.T, src []byte, name, reqBody string) []byte {
	t.Helper()
	srv := &Server{Worlds: 400, Seed: 11, Workers: 1}
	if _, _, err := srv.Publish(name, src, GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	status, b := postBody(t, ts.URL+"/graphs/"+name+"/batch", reqBody)
	if status != http.StatusOK {
		t.Fatalf("reference %s on %q: status %d: %s", reqBody, name, status, b)
	}
	return b
}

// corpusRequest renders one random valid batch request over a 5-vertex
// graph: mixed ops, default-vs-explicit worlds, absent/zero/adaptive
// tolerance, derived-vs-pinned seed.
func corpusRequest(rng *rand.Rand) string {
	nq := 1 + rng.Intn(3)
	qs := make([]string, nq)
	for i := range qs {
		switch rng.Intn(3) {
		case 0:
			qs[i] = fmt.Sprintf(`{"op":"reliability","s":%d,"t":%d}`, rng.Intn(5), rng.Intn(5))
		case 1:
			qs[i] = fmt.Sprintf(`{"op":"distance","s":%d,"t":%d}`, rng.Intn(5), rng.Intn(5))
		default:
			qs[i] = fmt.Sprintf(`{"op":"knn","s":%d,"k":%d}`, rng.Intn(5), 1+rng.Intn(4))
		}
	}
	fields := []string{fmt.Sprintf(`"queries":[%s]`, strings.Join(qs, ","))}
	if w := []int{0, 50, 64, 120}[rng.Intn(4)]; w > 0 {
		fields = append(fields, fmt.Sprintf(`"worlds":%d`, w))
	}
	switch rng.Intn(3) {
	case 0:
		fields = append(fields, `"tolerance":0.05`)
	case 1:
		fields = append(fields, `"tolerance":0`)
	}
	if rng.Intn(3) == 0 {
		fields = append(fields, `"seed":7`)
	}
	return "{" + strings.Join(fields, ",") + "}"
}

// TestResultCacheBitIdentityProperty is the cache's core contract as a
// property test: over a randomized request corpus on two graphs, the
// cold (computing) response and the warm (cached) response are both
// byte-identical to a fresh cache-disabled single-tenant
// recomputation, at Workers 1 and 4 alike.
func TestResultCacheBitIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	srcs := map[string][]byte{
		"chain": ugBytes(t, testGraph(t)),
		"star":  ugBytes(t, starGraph(t)),
	}
	type sample struct{ graph, body string }
	corpus := make([]sample, 12)
	for i := range corpus {
		name := "chain"
		if i%2 == 1 {
			name = "star"
		}
		corpus[i] = sample{name, corpusRequest(rng)}
	}
	refs := make([][]byte, len(corpus))
	for i, c := range corpus {
		refs[i] = referenceAnswer(t, srcs[c.graph], c.graph, c.body)
	}

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			srv := &Server{Worlds: 400, Seed: 11, Workers: workers, ResultCacheBudget: DefaultResultCacheBudget}
			for name, src := range srcs {
				if _, _, err := srv.Publish(name, src, GraphConfig{}); err != nil {
					t.Fatal(err)
				}
			}
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			for i, c := range corpus {
				url := ts.URL + "/graphs/" + c.graph + "/batch"
				for _, phase := range []string{"cold", "warm"} {
					status, got := postBody(t, url, c.body)
					if status != http.StatusOK {
						t.Fatalf("request %d (%s) %s: status %d: %s", i, phase, c.body, status, got)
					}
					if !bytes.Equal(got, refs[i]) {
						t.Errorf("request %d (%s) %s diverges from fresh recomputation:\n got %s\nwant %s",
							i, phase, c.body, got, refs[i])
					}
				}
			}
			st := cacheStatsOf(t, ts.URL)
			if !st.Enabled {
				t.Fatal("result cache reported disabled")
			}
			if st.Hits < uint64(len(corpus)) {
				t.Errorf("cache hits = %d over %d warm repeats", st.Hits, len(corpus))
			}
			if st.Entries == 0 || st.Bytes == 0 {
				t.Errorf("cache occupancy entries=%d bytes=%d, want > 0", st.Entries, st.Bytes)
			}
		})
	}
}

// TestResultCacheEvictThenWarm pins the evict-then-warm scenario: a
// budget that fits one stored answer evicts it when a second lands,
// and re-asking the evicted request recomputes the byte-identical
// answer (and never an over-budget stale one).
func TestResultCacheEvictThenWarm(t *testing.T) {
	src := ugBytes(t, testGraph(t))
	const reqA = `{"worlds":120,"queries":[{"op":"reliability","s":0,"t":3}]}`
	const reqB = `{"worlds":120,"queries":[{"op":"reliability","s":0,"t":4}]}`
	refA := referenceAnswer(t, src, "g", reqA)

	// Room for one body plus slack, never two.
	srv := &Server{Worlds: 400, Seed: 11, ResultCacheBudget: int64(len(refA)) + 16}
	if _, _, err := srv.Publish("g", src, GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	url := ts.URL + "/graphs/g/batch"

	if _, got := postBody(t, url, reqA); !bytes.Equal(got, refA) {
		t.Fatalf("cold answer diverges:\n got %s\nwant %s", got, refA)
	}
	postBody(t, url, reqB) // evicts reqA's entry
	if st := cacheStatsOf(t, ts.URL); st.Evictions == 0 {
		t.Errorf("no eviction after the second distinct answer (stats %+v)", st)
	} else if st.Bytes > srv.ResultCacheBudget {
		t.Errorf("resident %d bytes exceed the %d budget", st.Bytes, srv.ResultCacheBudget)
	}
	if _, got := postBody(t, url, reqA); !bytes.Equal(got, refA) {
		t.Errorf("evict-then-warm answer diverges:\n got %s\nwant %s", got, refA)
	}
	if st := cacheStatsOf(t, ts.URL); st.Computations < 3 {
		t.Errorf("computations = %d, want 3 (the evicted answer recomputed)", st.Computations)
	}
}

// TestResultCacheHitSurvivesGraphEviction pins the post-graph-reload
// scenarios: a cached answer keeps serving byte-identically while its
// graph is evicted — without reloading it — and a fresh request after
// the reload recomputes byte-identically too.
func TestResultCacheHitSurvivesGraphEviction(t *testing.T) {
	fp := graphFootprint(t)
	chainSrc := ugBytes(t, testGraph(t))
	starSrc := ugBytes(t, starGraph(t))
	const reqA = `{"queries":[{"op":"reliability","s":0,"t":3},{"op":"knn","s":2,"k":3}]}`
	const reqB = `{"queries":[{"op":"distance","s":0,"t":4}]}`
	refA := referenceAnswer(t, chainSrc, "chain", reqA)
	refB := referenceAnswer(t, chainSrc, "chain", reqB)
	refStar := referenceAnswer(t, starSrc, "star", reqA)

	// Budget fits one graph: every acquire of one evicts the other.
	srv := &Server{Worlds: 400, Seed: 11, GlobalMemBudget: fp + fp/2, ResultCacheBudget: DefaultResultCacheBudget}
	if _, _, err := srv.Publish("chain", chainSrc, GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Publish("star", starSrc, GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// chain was evicted by star's publish: this request reloads it.
	if _, got := postBody(t, ts.URL+"/graphs/chain/batch", reqA); !bytes.Equal(got, refA) {
		t.Fatalf("post-reload answer diverges:\n got %s\nwant %s", got, refA)
	}
	// star's turn evicts chain again.
	if _, got := postBody(t, ts.URL+"/graphs/star/batch", reqA); !bytes.Equal(got, refStar) {
		t.Fatalf("star answer diverges:\n got %s\nwant %s", got, refStar)
	}
	misses := graphStatsOf(t, ts.URL, "chain").Misses

	// Cache hit on the evicted graph: byte-identical, and the graph
	// stays evicted — a hit is a lookup, not a reload.
	if _, got := postBody(t, ts.URL+"/graphs/chain/batch", reqA); !bytes.Equal(got, refA) {
		t.Errorf("cached answer for the evicted graph diverges:\n got %s\nwant %s", got, refA)
	}
	if st := graphStatsOf(t, ts.URL, "chain"); st.Loaded || st.Misses != misses {
		t.Errorf("cache hit touched the evicted graph: %+v (misses were %d)", st, misses)
	}

	// A fresh request misses the cache, reloads the graph, and still
	// answers byte-identically to the single-tenant reference.
	if _, got := postBody(t, ts.URL+"/graphs/chain/batch", reqB); !bytes.Equal(got, refB) {
		t.Errorf("fresh request after reload diverges:\n got %s\nwant %s", got, refB)
	}
	if st := graphStatsOf(t, ts.URL, "chain"); !st.Loaded || st.Misses != misses+1 {
		t.Errorf("fresh request did not reload the graph: %+v", st)
	}
}

// TestCacheInvalidatedOnRepublish is the stale-answer regression
// guard: deleting and republishing a name with different bytes — or
// replacing it in place — must never serve the old release's cached
// answers.
func TestCacheInvalidatedOnRepublish(t *testing.T) {
	chainSrc := ugBytes(t, testGraph(t))
	starSrc := ugBytes(t, starGraph(t))
	const req = `{"queries":[{"op":"reliability","s":1,"t":3}]}`
	refChain := referenceAnswer(t, chainSrc, "g", req)
	refStar := referenceAnswer(t, starSrc, "g", req)
	if bytes.Equal(refChain, refStar) {
		t.Fatal("fixture graphs answer identically; the test cannot see staleness")
	}

	srv := &Server{Worlds: 400, Seed: 11, ResultCacheBudget: DefaultResultCacheBudget}
	if _, _, err := srv.Publish("g", chainSrc, GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	url := ts.URL + "/graphs/g/batch"

	if _, got := postBody(t, url, req); !bytes.Equal(got, refChain) {
		t.Fatalf("first release diverges:\n got %s\nwant %s", got, refChain)
	}
	postBody(t, url, req) // warm the cache
	if st := cacheStatsOf(t, ts.URL); st.Hits == 0 {
		t.Fatalf("warm repeat did not hit the cache: %+v", st)
	}

	// Delete, then republish different bytes under the same name.
	if status, body := do(t, "DELETE", ts.URL+"/graphs/g", nil); status != http.StatusOK {
		t.Fatalf("DELETE: status %d: %s", status, body)
	}
	if status, body := do(t, "PUT", ts.URL+"/graphs/g", bytes.NewReader(starSrc)); status != http.StatusOK {
		t.Fatalf("republish: status %d: %s", status, body)
	}
	if _, got := postBody(t, url, req); !bytes.Equal(got, refStar) {
		t.Errorf("republished graph served a stale answer:\n got %s\nwant %s", got, refStar)
	}

	// In-place replace back to the first release's bytes: determinism
	// makes the answer equal again, but it must be a recomputation
	// under the new generation, not a resurfaced cache entry.
	before := cacheStatsOf(t, ts.URL).Computations
	if status, body := do(t, "PUT", ts.URL+"/graphs/g", bytes.NewReader(chainSrc)); status != http.StatusOK {
		t.Fatalf("replace: status %d: %s", status, body)
	}
	if _, got := postBody(t, url, req); !bytes.Equal(got, refChain) {
		t.Errorf("replaced graph diverges from its release's reference:\n got %s\nwant %s", got, refChain)
	}
	if after := cacheStatsOf(t, ts.URL).Computations; after != before+1 {
		t.Errorf("computations %d -> %d across the replace, want a fresh computation", before, after)
	}
}

// TestHealthzReportsResultCache pins the observability surface: with
// the cache off /healthz says so, with it on the budget and counters
// appear.
func TestHealthzReportsResultCache(t *testing.T) {
	off := &Server{G: testGraph(t), Worlds: 50, Seed: 11}
	tsOff := httptest.NewServer(off.Handler())
	t.Cleanup(tsOff.Close)
	status, body := get(t, tsOff.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.ResultCache.Enabled || h.ResultCache.BudgetBytes != 0 {
		t.Errorf("cache-off healthz reports %+v", h.ResultCache)
	}

	on := &Server{G: testGraph(t), Worlds: 50, Seed: 11, ResultCacheBudget: 1 << 20}
	tsOn := httptest.NewServer(on.Handler())
	t.Cleanup(tsOn.Close)
	get(t, tsOn.URL+"/reliability?s=0&t=4")
	status, body = get(t, tsOn.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	rc := h.ResultCache
	if !rc.Enabled || rc.BudgetBytes != 1<<20 || rc.Entries != 1 || rc.Misses != 1 || rc.Computations != 1 {
		t.Errorf("cache-on healthz reports %+v", rc)
	}
}
