package qserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"uncertaingraph/internal/uncertain"
)

// testGraph is the chain 0-1-2-3 with probability 0.8 per edge plus a
// certain edge 3-4, giving both probabilistic and deterministic
// structure.
func testGraph(t *testing.T) *uncertain.Graph {
	t.Helper()
	g, err := uncertain.New(5, []uncertain.Pair{
		{U: 0, V: 1, P: 0.8}, {U: 1, V: 2, P: 0.8}, {U: 2, V: 3, P: 0.8},
		{U: 3, V: 4, P: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := &Server{G: testGraph(t), Worlds: 400, Seed: 11}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Vertices != 5 || h.Pairs != 4 || h.DefaultWorlds != 400 {
		t.Errorf("health = %+v", h)
	}
	// The caps that 400 a request must be discoverable.
	if h.MaxQueries != DefaultMaxQueries {
		t.Errorf("max_queries = %d, want %d", h.MaxQueries, DefaultMaxQueries)
	}
	if h.MaxWorlds != DefaultMaxWorlds {
		t.Errorf("max_worlds = %d, want %d", h.MaxWorlds, DefaultMaxWorlds)
	}
	if h.Workers < 1 {
		t.Errorf("workers = %d, want the effective clamp >= 1", h.Workers)
	}
}

func TestHealthzEchoesConfiguredLimits(t *testing.T) {
	srv := &Server{G: testGraph(t), Worlds: 16, Seed: 11, MaxQueries: 7, Workers: 3, Tolerance: 0.25}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.MaxQueries != 7 {
		t.Errorf("max_queries = %d, want 7", h.MaxQueries)
	}
	// Workers is the effective clamp, not the raw setting: 3 workers
	// over 16 default worlds stays 3.
	if h.Workers != 3 {
		t.Errorf("workers = %d, want 3", h.Workers)
	}
	if h.Tolerance != 0.25 {
		t.Errorf("tolerance = %v, want 0.25", h.Tolerance)
	}
}

func TestReliabilityEndpoint(t *testing.T) {
	ts := testServer(t)
	status, body := get(t, ts.URL+"/reliability?s=3&t=4")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Reliability == nil {
		t.Fatalf("response %s", body)
	}
	// The 3-4 edge is certain.
	if got := *resp.Results[0].Reliability; got != 1 {
		t.Errorf("Pr(3~4) = %v, want 1", got)
	}
	if resp.Worlds != 400 {
		t.Errorf("worlds = %d, want the server default 400", resp.Worlds)
	}
	// A zero-valued target must still be echoed (T is a pointer
	// precisely so t=0 survives omitempty).
	_, body0 := get(t, ts.URL+"/reliability?s=3&t=0")
	if !strings.Contains(string(body0), `"t":0`) {
		t.Errorf("t=0 not echoed in %s", body0)
	}
}

func TestDistanceEndpoint(t *testing.T) {
	ts := testServer(t)
	status, body := get(t, ts.URL+"/distance?s=0&t=2&worlds=2000")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	res := resp.Results[0]
	if res.Median == nil || res.Disconnected == nil || res.Distances == nil {
		t.Fatalf("response %s", body)
	}
	// P(d=2) = 0.64: the median must be 2 and all mass accountable.
	if *res.Median != 2 {
		t.Errorf("median = %d, want 2", *res.Median)
	}
	var mass float64
	for _, p := range res.Distances {
		mass += p
	}
	if diff := mass + *res.Disconnected - 1; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("mass %v + disconnected %v != 1", mass, *res.Disconnected)
	}
}

func TestKNNEndpoint(t *testing.T) {
	ts := testServer(t)
	status, body := get(t, ts.URL+"/knn?s=4&k=2")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	nb := resp.Results[0].Neighbors
	if len(nb) != 2 || nb[0].V != 3 || nb[0].Median != 1 {
		t.Errorf("neighbors = %+v, want 3 (median 1) first", nb)
	}
}

func TestBatchEndpointAndDeterminism(t *testing.T) {
	ts := testServer(t)
	reqBody := `{"worlds":500,"queries":[
		{"op":"reliability","s":0,"t":3},
		{"op":"distance","s":0,"t":3},
		{"op":"knn","s":0,"k":3}]}`
	post := func() (int, []byte) {
		resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}
	status, body1 := get(t, ts.URL+"/healthz") // warm an unrelated path
	if status != http.StatusOK {
		t.Fatal(string(body1))
	}
	s1, b1 := post()
	s2, b2 := post()
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("status %d/%d: %s", s1, s2, b1)
	}
	// Content-derived seeds: identical requests, identical answers.
	if string(b1) != string(b2) {
		t.Errorf("identical requests answered differently:\n%s\nvs\n%s", b1, b2)
	}
	var resp BatchResponse
	if err := json.Unmarshal(b1, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(resp.Results))
	}
	// Same worlds inside the batch: reliability == 1 - disconnected (up
	// to the float division by r).
	rel := *resp.Results[0].Reliability
	disc := *resp.Results[1].Disconnected
	if diff := rel - (1 - disc); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("reliability %v != 1 - disconnected %v on shared worlds", rel, disc)
	}
	// A pinned seed overrides the derivation and changes the answer
	// stream (same estimator, different worlds).
	resp2, err := http.Post(ts.URL+"/batch", "application/json",
		strings.NewReader(`{"worlds":500,"seed":123,"queries":[{"op":"reliability","s":0,"t":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var pinned BatchResponse
	if err := json.NewDecoder(resp2.Body).Decode(&pinned); err != nil {
		t.Fatal(err)
	}
	if pinned.Seed != 123 {
		t.Errorf("pinned seed not echoed: %d", pinned.Seed)
	}
}

// TestBatchAdaptiveTolerance exercises the request-level tolerance:
// an adaptive run stops short of its worlds budget, reports the worlds
// actually used, and answers bit-identically to a fixed run of exactly
// that prefix length on the same pinned seed.
func TestBatchAdaptiveTolerance(t *testing.T) {
	ts := testServer(t)
	post := func(reqBody string) BatchResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var br BatchResponse
		if err := json.Unmarshal(body, &br); err != nil {
			t.Fatal(err)
		}
		return br
	}

	adaptive := post(`{"worlds":2000,"seed":123,"tolerance":0.1,"queries":[{"op":"reliability","s":0,"t":1}]}`)
	if adaptive.Worlds >= 2000 {
		t.Fatalf("adaptive run used all %d worlds, expected early stop", adaptive.Worlds)
	}
	if !adaptive.Converged || adaptive.Tolerance != 0.1 {
		t.Errorf("adaptive response converged=%v tolerance=%v, want true/0.1", adaptive.Converged, adaptive.Tolerance)
	}

	// A fixed run of exactly the prefix length on the same seed must
	// answer bit-identically.
	fixed := post(fmt.Sprintf(`{"worlds":%d,"seed":123,"queries":[{"op":"reliability","s":0,"t":1}]}`, adaptive.Worlds))
	if fixed.Worlds != adaptive.Worlds {
		t.Fatalf("fixed prefix run used %d worlds, want %d", fixed.Worlds, adaptive.Worlds)
	}
	if got, want := *fixed.Results[0].Reliability, *adaptive.Results[0].Reliability; got != want {
		t.Errorf("prefix reliability %v != adaptive %v", got, want)
	}

	// An explicit zero tolerance disables adaptive stopping even when
	// the server would otherwise default to one.
	full := post(`{"worlds":2000,"seed":123,"tolerance":0,"queries":[{"op":"reliability","s":0,"t":1}]}`)
	if full.Worlds != 2000 {
		t.Errorf("tolerance 0 run used %d worlds, want the full 2000", full.Worlds)
	}
	if full.Converged || full.Tolerance != 0 {
		t.Errorf("fixed response should not carry adaptive fields: %+v", full)
	}

	// A batch carrying a k-NN query has no scalar CI and must run its
	// full budget, reporting converged=false.
	knn := post(`{"worlds":200,"seed":123,"tolerance":0.1,"queries":[{"op":"knn","s":0,"k":2}]}`)
	if knn.Worlds != 200 || knn.Converged {
		t.Errorf("k-NN batch worlds=%d converged=%v, want 200/false", knn.Worlds, knn.Converged)
	}
}

func TestValidationErrors(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, url string
	}{
		{"missing t", "/reliability?s=0"},
		{"bad vertex", "/reliability?s=0&t=99"},
		{"negative vertex", "/distance?s=-1&t=2"},
		{"zero k", "/knn?s=0&k=0"},
		{"bad int", "/knn?s=abc&k=2"},
		{"worlds over cap", fmt.Sprintf("/reliability?s=0&t=1&worlds=%d", DefaultMaxWorlds+1)},
		{"negative tolerance", "/reliability?s=0&t=1&tolerance=-0.1"},
		{"NaN tolerance", "/reliability?s=0&t=1&tolerance=NaN"},
	}
	for _, c := range cases {
		status, body := get(t, ts.URL+c.url)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, status, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: no error message in %s", c.name, body)
		}
	}
	// Unknown op and empty list via POST.
	for _, reqBody := range []string{
		`{"queries":[{"op":"pagerank","s":0}]}`,
		`{"queries":[]}`,
	} {
		resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", reqBody, resp.StatusCode)
		}
	}
}

// TestOverBudgetKNNRejected is the regression for the memory-budget
// layer: a k-NN request whose worst-case accumulator footprint exceeds
// the server's budget is rejected with HTTP 413 and an error wrapping
// query.ErrOverBudget, while reliability requests (worst case 0 bytes)
// keep serving under the same budget.
func TestOverBudgetKNNRejected(t *testing.T) {
	// 5 vertices, Workers 1: one k-NN source prices at 5*5*4 = 100
	// bytes, so a 99-byte budget rejects it.
	srv := &Server{G: testGraph(t), Worlds: 50, Seed: 11, Workers: 1, MemoryBudget: 99}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	status, body := get(t, ts.URL+"/knn?s=0&k=2")
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", status, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "memory budget") {
		t.Errorf("error body %s does not name the memory budget", body)
	}
	if status, body := get(t, ts.URL+"/reliability?s=0&t=4"); status != http.StatusOK {
		t.Errorf("reliability under the same budget: status %d (%s), want 200", status, body)
	}
	// Raising the budget by one byte admits the identical request.
	srv.MemoryBudget = 100
	if status, body := get(t, ts.URL+"/knn?s=0&k=2"); status != http.StatusOK {
		t.Errorf("at-budget k-NN: status %d (%s), want 200", status, body)
	}
}

// TestKNNSourceCapRejected pins the distinct-source cap: queries
// naming more distinct k-NN sources than MaxKNNSources get 413;
// repeats of one source count once.
func TestKNNSourceCapRejected(t *testing.T) {
	srv := &Server{G: testGraph(t), Worlds: 50, Seed: 11, MaxKNNSources: 2}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	over := `{"queries":[{"op":"knn","s":0,"k":2},{"op":"knn","s":1,"k":2},{"op":"knn","s":2,"k":2}]}`
	if status := post(over); status != http.StatusRequestEntityTooLarge {
		t.Errorf("3 distinct sources: status %d, want 413", status)
	}
	dupes := `{"queries":[{"op":"knn","s":0,"k":2},{"op":"knn","s":0,"k":3},{"op":"knn","s":1,"k":2}]}`
	if status := post(dupes); status != http.StatusOK {
		t.Errorf("2 distinct sources (one repeated): status %d, want 200", status)
	}
}

// TestRequestCancellationStopsRun pins the request-scoped cancellation
// wiring: a client that drops mid-batch cancels its context, the run
// aborts with no response written, and the pooled batch stays healthy —
// the next request reuses it and answers deterministically.
func TestRequestCancellationStopsRun(t *testing.T) {
	srv := &Server{G: testGraph(t), Worlds: 4000, Seed: 11}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/reliability?s=0&t=4", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	cancel()
	if err := <-done; err == nil {
		t.Error("dropped request completed with a response")
	}

	// The server keeps serving after the abandoned run: same request
	// twice, identical (content-derived seed) answers.
	s1, b1 := get(t, ts.URL+"/reliability?s=0&t=4&worlds=200")
	s2, b2 := get(t, ts.URL+"/reliability?s=0&t=4&worlds=200")
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("post-cancel statuses %d/%d, want 200", s1, s2)
	}
	if string(b1) != string(b2) {
		t.Errorf("post-cancel answers diverge: %s vs %s", b1, b2)
	}
}

// TestServerDefaultWorldsClamped pins that the MaxWorlds cap also
// bounds the server-configured default: a daemon misconfigured with
// Worlds > MaxWorlds must not serve uncapped requests whenever the
// client omits the worlds field.
func TestServerDefaultWorldsClamped(t *testing.T) {
	srv := &Server{G: testGraph(t), Worlds: 500, MaxWorlds: 200, Seed: 11}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	status, body := get(t, ts.URL+"/reliability?s=0&t=1")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Worlds != 200 {
		t.Errorf("default worlds served = %d, want clamped 200", resp.Worlds)
	}
}
