package qserve

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
)

// DefaultResultCacheBudget is the result-cache byte budget cmd/queryd
// serves with unless -result-cache-budget overrides it. The library
// default is off (Server.ResultCacheBudget 0): embedders opt in.
const DefaultResultCacheBudget = int64(256) << 20 // 256 MiB

// resultCacheKey names one fully resolved batch computation. Every
// input the answer depends on is in the key:
//
//   - the graph's publish generation (a republished graph is a new
//     release — its old answers must not resurface — while an
//     evict-then-reload keeps its gen, so cached answers survive
//     eviction);
//   - the resolved world budget and the effective request seed (the
//     content-derived seed of PR 6, or the caller's pinned override);
//   - the effective tolerance as exact float bits — tolerance is
//     excluded from the *seed* derivation so that adaptive and fixed
//     runs share a world stream, but it changes how many of those
//     worlds a run consumes, hence the rendered answer;
//   - the canonicalized query list (decoded values, not request bytes:
//     field order, whitespace and default-vs-explicit fields collide);
//   - the graph name, placed last because names may contain the
//     separator byte — everything after the final field is name, so
//     hostile names cannot forge another request's key.
func resultCacheKey(name string, gen uint64, worlds int, seed int64, tol float64, queries []QueryRequest) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "v1|%d|%d|%d|%016x", gen, worlds, seed, math.Float64bits(tol))
	for _, q := range queries {
		fmt.Fprintf(&sb, "|%s:%d:%d:%d", q.Op, q.S, q.T, q.K)
	}
	sb.WriteByte('|')
	sb.WriteString(name)
	return sb.String()
}

// flight is one in-progress computation that concurrent identical
// requests attach to instead of recomputing. The leader's goroutine
// runs the batch under the flight's own context; every attached request
// holds a reference, and when the last one detaches before completion
// the flight cancels — nobody is left to read the answer.
type flight struct {
	ctx    context.Context
	cancel context.CancelFunc
	refs   int // attached requests; guarded by resultCache.mu

	ready  chan struct{} // closed when status/body are set
	status int
	body   []byte
}

// centry is one cached rendered response.
type centry struct {
	key   string
	graph string // owning graph name, for invalidation
	body  []byte
}

// ResultCacheStats is the result-cache block surfaced by /healthz and
// GET /graphs.
type ResultCacheStats struct {
	Enabled     bool  `json:"enabled"`
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// Bytes/Entries describe the resident entries (response payload
	// bytes; keys and bookkeeping are not metered).
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
	// Hits served a stored answer; Misses had to compute (or join a
	// computation); Evictions counts entries dropped under the budget.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Coalesced counts requests that attached to another request's
	// in-flight computation; Computations counts batch runs actually
	// started — N identical concurrent requests cost one.
	Coalesced    uint64 `json:"coalesced"`
	Computations uint64 `json:"computations"`
	// SharedRuns counts world streams that served more than one batch;
	// SharedBatches the batches those streams served.
	SharedRuns    uint64 `json:"shared_runs"`
	SharedBatches uint64 `json:"shared_batches"`
}

// resultCache is a byte-bounded LRU of rendered batch responses plus
// the single-flight table coalescing concurrent identical requests.
// Only complete 200 responses are stored — errors are cheap to
// recompute and must not stick.
type resultCache struct {
	budget int64

	mu      sync.Mutex
	entries map[string]*list.Element // -> *centry, in lru
	lru     *list.List               // front = most recently used
	bytes   int64
	flights map[string]*flight

	hits, misses, evictions, coalesced, computations uint64
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{
		budget:  budget,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*flight),
	}
}

// lookup resolves key in one mutex pass: a stored answer (body != nil),
// an existing flight to wait on (leader false), or a fresh flight this
// request must lead (leader true). Folding the three cases into one
// critical section is what makes "exactly one computation per distinct
// key" hold under concurrency — there is no window between a miss and
// the flight registration for a second request to miss through.
func (c *resultCache) lookup(key string) (body []byte, f *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		return el.Value.(*centry).body, nil, false
	}
	c.misses++
	if f, ok := c.flights[key]; ok {
		f.refs++
		c.coalesced++
		return nil, f, false
	}
	ctx, cancel := context.WithCancel(context.Background())
	f = &flight{ctx: ctx, cancel: cancel, refs: 1, ready: make(chan struct{})}
	c.flights[key] = f
	return nil, f, true
}

// detach drops one request's reference on a flight. When the last
// reference goes before the flight settles, the computation is
// cancelled — its context only ever cancels through here, so a flight
// seeing ctx.Err() != nil knows every requester is gone.
func (c *resultCache) detach(f *flight) {
	c.mu.Lock()
	f.refs--
	abandoned := f.refs == 0 && !f.settled()
	c.mu.Unlock()
	if abandoned {
		f.cancel()
	}
}

func (f *flight) settled() bool {
	select {
	case <-f.ready:
		return true
	default:
		return false
	}
}

// computed counts one batch computation actually started.
func (c *resultCache) computed() {
	c.mu.Lock()
	c.computations++
	c.mu.Unlock()
}

// settle publishes a flight's outcome to its waiters and, for complete
// 200 answers, stores the rendered body under the owning graph's name.
func (c *resultCache) settle(key, graph string, f *flight, status int, body []byte, store bool) {
	c.mu.Lock()
	f.status, f.body = status, body
	close(f.ready)
	delete(c.flights, key)
	if store {
		c.putLocked(key, graph, body)
	}
	c.mu.Unlock()
	f.cancel() // release the context's resources; waiters already have the answer
}

// abort discards a flight whose computation was cancelled (every
// requester detached): nothing to publish, nothing to store. The ready
// channel stays open — no reader remains.
func (c *resultCache) abort(key string, f *flight) {
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
}

func (c *resultCache) putLocked(key, graph string, body []byte) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*centry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&centry{key: key, graph: graph, body: body})
		c.bytes += int64(len(body))
	}
	// Strict budget: evict from the cold end until resident bytes fit —
	// a body larger than the whole budget evicts itself (never cached).
	for c.bytes > c.budget && c.lru.Len() > 0 {
		c.evictOldestLocked()
	}
}

func (c *resultCache) evictOldestLocked() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*centry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= int64(len(e.body))
	c.evictions++
}

// invalidate drops every stored entry for graph. In-progress flights
// are left to finish — they carry the generation they started against
// in their key, so a republish during a flight stores an answer under
// the *old* gen, which no future request will ever look up.
func (c *resultCache) invalidate(graph string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*centry)
		if e.graph == graph {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.bytes -= int64(len(e.body))
		}
	}
}

func (c *resultCache) stats() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResultCacheStats{
		Enabled:      true,
		BudgetBytes:  c.budget,
		Bytes:        c.bytes,
		Entries:      len(c.entries),
		Hits:         c.hits,
		Misses:       c.misses,
		Evictions:    c.evictions,
		Coalesced:    c.coalesced,
		Computations: c.computations,
	}
}
