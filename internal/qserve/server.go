// Package qserve is the query-serving layer over internal/query's
// batch engine: a long-lived HTTP/JSON daemon hosting a *registry* of
// published uncertain graphs — the paper's consumption story (§1, §6)
// at deployment shape, where releases pile up per dataset, per ε, per
// epoch and one daemon serves them all — answering reliability,
// distance-distribution and k-nearest-neighbour queries against any of
// them.
//
// Every named graph owns its serving state: a pool of query.Batch
// (world samplers, BFS scratch and integer accumulators reused across
// that graph's requests, never another's), optional Worlds /
// Tolerance / MemoryBudget overrides falling back to the server
// defaults, and hit/miss/resident-bytes counters. The registry keeps
// hot graphs resident under a global memory budget and evicts the
// least-recently-used cold ones; each evicted graph's durable source
// (the uploaded bytes, or the file it was loaded from) stays, so the
// next request reloads it transparently.
//
// Determinism contract: a request that does not pin a seed gets one
// derived from the server's base seed, the graph's *name* and the
// request's content (worlds + query list), so identical requests
// against the same graph always return identical answers — including
// across an evict-then-reload cycle, which parses the identical source
// bytes — while different requests and different graphs get
// decorrelated world streams. A pinned "seed" field overrides the
// derivation. Responses echo the worlds and seed used.
//
// That contract is what makes cached answers safe: a response is a
// pure function of (graph release, resolved request), so with
// ResultCacheBudget set the server stores complete 200 bodies under a
// content-addressed key (graph generation + resolved worlds, seed,
// tolerance and query list), coalesces identical concurrent requests
// into one computation, and lets concurrent batches on the same
// (release, seed) share one sampled world stream. All three layers
// return bytes identical to a fresh recomputation — a cache hit, a
// coalesced response and a shared-stream answer are indistinguishable
// from computing alone — and republishing or deleting a graph starts a
// new generation, so no stale answer can outlive its release.
//
// Resource limits: besides the worlds and query-count caps, every
// request is priced against a memory budget before any buffer grows —
// distinct k-NN sources dominate (each can fill an n² int32 histogram
// per worker), so they are capped outright and charged via
// query.WorstCaseAccumBytes. Over-budget requests get HTTP 413 with an
// error wrapping query.ErrOverBudget, and pooled batches shed
// accumulators retained above the same budget on Reset. The registry
// adds the global layer: summed graph footprints are bounded by
// GlobalMemBudget (LRU eviction) and the name table by MaxGraphs.
package qserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"path"
	"strconv"
	"sync"

	"uncertaingraph/internal/query"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/ugbin"
	"uncertaingraph/internal/uncertain"
)

// Default limits bounding the per-request Monte-Carlo cost and memory
// footprint.
const (
	DefaultMaxWorlds  = 20000
	DefaultMaxQueries = 1024
	// DefaultMemoryBudget caps the worst-case per-request accumulator
	// footprint (k-NN histograms dominate: each distinct k-NN source
	// can grow n² int32 counters per worker).
	DefaultMemoryBudget = int64(1) << 30 // 1 GiB
	// DefaultMaxKNNSources caps the distinct k-NN sources of one
	// request; each one costs a full-component BFS per world plus its
	// own histogram, so they are the most expensive query shape.
	DefaultMaxKNNSources = 64
	// DefaultMaxUploadBytes caps one PUT/POST /graphs/{name} body.
	DefaultMaxUploadBytes = int64(1) << 30
	// DefaultGraphName is the registry name a Server.G compat graph is
	// published under when DefaultGraph is unset.
	DefaultGraphName = "default"
)

// Server answers possible-world Monte-Carlo queries over a registry of
// published uncertain graphs. The zero value serves an empty registry;
// set G (compat single-graph mode) or publish graphs via Publish /
// PublishFile / the HTTP surface. All exported fields must be set
// before the first request; after that a Server is safe for concurrent
// use — each in-flight request borrows a graph handle and a pooled
// query.Batch from that graph's pool, and resident graphs are
// read-only.
type Server struct {
	// G, when non-nil, is published at startup under DefaultGraph (or
	// DefaultGraphName) — the pre-registry single-graph mode.
	G *uncertain.Graph
	// DefaultGraph names the graph the legacy alias endpoints
	// (/batch, /reliability, /distance, /knn) resolve to. Empty with
	// G set selects DefaultGraphName; empty without G leaves the
	// aliases answering 404.
	DefaultGraph string
	// Worlds is the per-request default sample size (0 selects the
	// Hoeffding default, 738); a per-graph Worlds override takes
	// precedence.
	Worlds int
	// MaxWorlds caps the per-request sample size (0 selects
	// DefaultMaxWorlds).
	MaxWorlds int
	// MaxQueries caps the number of queries per batch request (0
	// selects DefaultMaxQueries).
	MaxQueries int
	// Workers bounds concurrent world evaluations per request (<= 0
	// selects GOMAXPROCS); answers are identical for every value.
	Workers int
	// Seed is the base seed for the content-derived per-request world
	// streams (the derivation also hashes the graph name).
	Seed int64
	// Tolerance is the default adaptive-precision tolerance applied to
	// requests that do not carry their own "tolerance" field: when > 0,
	// a request's batch stops as soon as every query's relative SEM is
	// inside it (see query.Config.Tolerance), and the response reports
	// the worlds actually used. 0 keeps the fixed-worlds behaviour.
	// A per-graph Tolerance override takes precedence.
	Tolerance float64
	// MemoryBudget caps the worst-case accumulator bytes one request
	// may grow — query.WorstCaseAccumBytes(n, distinct k-NN sources,
	// workers) — and the bytes a pooled batch retains across requests
	// (0 selects DefaultMemoryBudget). Over-budget requests are
	// rejected with HTTP 413 and an error wrapping query.ErrOverBudget.
	// A per-graph MemoryBudget override takes precedence.
	MemoryBudget int64
	// MaxKNNSources caps the distinct k-NN sources per request (0
	// selects DefaultMaxKNNSources); the rejection is also 413-typed.
	MaxKNNSources int
	// GlobalMemBudget bounds the summed footprint of resident graphs;
	// crossing it evicts the least-recently-used cold graphs (0
	// selects DefaultGlobalMemBudget).
	GlobalMemBudget int64
	// MaxGraphs bounds the registry's name table (0 selects
	// DefaultMaxGraphs); registering past it gets HTTP 413.
	MaxGraphs int
	// MaxUploadBytes caps one graph-upload body (0 selects
	// DefaultMaxUploadBytes); larger uploads get HTTP 413.
	MaxUploadBytes int64
	// BinaryLoadMode selects how binary .ugb graph files are brought
	// into memory, at publish and post-eviction reload alike. The zero
	// value (ugbin.ModeAuto) memory-maps where the platform supports it
	// and falls back to a heap read elsewhere.
	BinaryLoadMode ugbin.Mode
	// ResultCacheBudget, when positive, enables the content-addressed
	// result cache: complete 200 responses are stored under a key
	// derived from the graph release and the fully resolved request
	// (see resultCacheKey), LRU-evicted once stored bodies exceed this
	// many bytes, and invalidated when their graph is republished or
	// deleted. Enabling the cache also turns on single-flight
	// coalescing (N identical concurrent requests compute once) and
	// shared world streams (concurrent same-stream batches ride one
	// sampler tick). 0 — the zero value — disables all three; cached
	// answers are byte-identical to recomputation, but embedders opt
	// in. cmd/queryd serves with DefaultResultCacheBudget.
	ResultCacheBudget int64

	initOnce sync.Once
	reg      *Registry
	defName  string
	cache    *resultCache
	streams  streamCoord
}

// init builds the registry on first use and publishes the compat G
// graph under the default name. The registry's pool hook resolves each
// graph's effective memory budget, so pooled batches shed to the same
// bound validate prices against.
func (s *Server) init() {
	s.initOnce.Do(func() {
		s.reg = &Registry{
			GlobalMemBudget: s.GlobalMemBudget,
			MaxGraphs:       s.MaxGraphs,
			NewPool: func(g *uncertain.Graph, cfg GraphConfig) *query.BatchPool {
				return query.NewBatchPool(g, query.Config{MemoryBudget: s.effMemBudget(cfg)})
			},
			BinaryLoadMode: s.BinaryLoadMode,
		}
		if s.ResultCacheBudget > 0 {
			s.cache = newResultCache(s.ResultCacheBudget)
		}
		s.defName = s.DefaultGraph
		if s.G != nil {
			if s.defName == "" {
				s.defName = DefaultGraphName
			}
			var buf bytes.Buffer
			if err := uncertain.Write(&buf, s.G); err != nil {
				panic(fmt.Sprintf("qserve: serializing Server.G: %v", err))
			}
			// install keeps the already-parsed G resident and the
			// serialization as its reload source; Write emits exact
			// float representations, so an evict-then-reload cycle
			// reconstructs G bit-identically.
			if _, _, err := s.reg.install(s.defName, s.G, buf.Bytes(), "", GraphConfig{}); err != nil {
				panic(fmt.Sprintf("qserve: publishing Server.G: %v", err))
			}
		}
	})
}

// Publish parses src and registers (or replaces) it under name,
// keeping src for post-eviction reloads.
func (s *Server) Publish(name string, src []byte, cfg GraphConfig) (GraphStats, bool, error) {
	s.init()
	st, created, err := s.reg.Publish(name, src, cfg)
	if err == nil {
		s.invalidateResults(name)
	}
	return st, created, err
}

// invalidateResults drops name's cached answers after a registry
// mutation. The new release also carries a fresh generation — so even
// a racing flight that settles after this sweep stores its answer
// under the old gen, unreachable by any future lookup.
func (s *Server) invalidateResults(name string) {
	if s.cache != nil {
		s.cache.invalidate(name)
	}
}

// PublishGraph serializes g and registers it under name — the
// in-process form of an upload, used by daemons that already hold a
// parsed graph.
func (s *Server) PublishGraph(name string, g *uncertain.Graph, cfg GraphConfig) (GraphStats, error) {
	s.init()
	if err := validateGraphName(name); err != nil {
		return GraphStats{}, err
	}
	var buf bytes.Buffer
	if err := uncertain.Write(&buf, g); err != nil {
		return GraphStats{}, err
	}
	st, _, err := s.reg.install(name, g, buf.Bytes(), "", cfg)
	if err == nil {
		s.invalidateResults(name)
	}
	return st, err
}

// PublishFile registers the graph stored at path under name; the file
// is re-read on every post-eviction reload.
func (s *Server) PublishFile(name, path string, cfg GraphConfig) (GraphStats, error) {
	s.init()
	st, err := s.reg.PublishFile(name, path, cfg)
	if err == nil {
		s.invalidateResults(name)
	}
	return st, err
}

// DeleteGraph removes name from the registry, reporting whether it
// existed; its cached answers go with it.
func (s *Server) DeleteGraph(name string) bool {
	s.init()
	ok := s.reg.Delete(name)
	if ok {
		s.invalidateResults(name)
	}
	return ok
}

// GraphStats returns every registered graph's snapshot and the
// registry totals.
func (s *Server) GraphStats() ([]GraphStats, RegistryStats) {
	s.init()
	return s.reg.Stats()
}

// QueryRequest is one query of a batch request.
type QueryRequest struct {
	// Op is "reliability", "distance" or "knn".
	Op string `json:"op"`
	// S is the source vertex (all ops).
	S int `json:"s"`
	// T is the target vertex (reliability, distance).
	T int `json:"t,omitempty"`
	// K is the neighbour count (knn).
	K int `json:"k,omitempty"`
}

// BatchRequest is the body of POST /graphs/{name}/batch (and the
// legacy alias POST /batch).
type BatchRequest struct {
	// Worlds overrides the graph's (or server's) per-request sample
	// size.
	Worlds int `json:"worlds,omitempty"`
	// Seed pins the world stream; omitted, it is derived from the
	// graph name and the request content.
	Seed *int64 `json:"seed,omitempty"`
	// Tolerance overrides the effective adaptive-precision tolerance:
	// > 0 lets the run stop early once every query's relative SEM is
	// inside it, an explicit 0 disables adaptive stopping for this
	// request, omitted inherits the graph override or server default.
	// The worlds value stays the budget — requests are priced against
	// it in validate — and the response's "worlds" reports how many
	// were actually used.
	Tolerance *float64       `json:"tolerance,omitempty"`
	Queries   []QueryRequest `json:"queries"`
}

// NeighborResult is one ranked k-NN neighbour.
type NeighborResult struct {
	V      int `json:"v"`
	Median int `json:"median"`
}

// QueryResult is one query's answer; exactly the fields of its op are
// populated. T and K are pointers so that valid zero arguments (t=0 is
// a vertex) are still echoed, while fields foreign to the op are
// omitted.
type QueryResult struct {
	Op string `json:"op"`
	S  int    `json:"s"`
	T  *int   `json:"t,omitempty"`
	K  *int   `json:"k,omitempty"`

	Reliability *float64 `json:"reliability,omitempty"`
	// Distances maps distance -> probability; Disconnected carries the
	// remaining mass and Median the count-rule median (-1 when the
	// median is a disconnection).
	Distances    map[int]float64  `json:"distances,omitempty"`
	Disconnected *float64         `json:"disconnected,omitempty"`
	Median       *int             `json:"median,omitempty"`
	Neighbors    []NeighborResult `json:"neighbors,omitempty"`
}

// BatchResponse is the body of every query response. Worlds is the
// number of worlds actually sampled — fewer than the request's budget
// when an adaptive run converged early.
type BatchResponse struct {
	// Graph is the registry name the request resolved to (the legacy
	// aliases echo the default graph's name here).
	Graph  string `json:"graph,omitempty"`
	Worlds int    `json:"worlds"`
	Seed   int64  `json:"seed"`
	// Tolerance and Converged are reported for adaptive runs only:
	// the effective tolerance, and whether every query's relative SEM
	// was inside it when the run stopped (false means the worlds
	// budget ran out first, or the batch carried a k-NN query).
	Tolerance float64       `json:"tolerance,omitempty"`
	Converged bool          `json:"converged,omitempty"`
	Results   []QueryResult `json:"results"`
}

type healthResponse struct {
	// Vertices and Pairs describe the default graph (zero without
	// one); the full per-graph picture is in Graphs.
	Vertices      int `json:"vertices"`
	Pairs         int `json:"pairs"`
	DefaultWorlds int `json:"default_worlds"`
	MaxWorlds     int `json:"max_worlds"`
	MaxQueries    int `json:"max_queries"`
	// Workers is the effective per-request worker clamp at the default
	// world count — what a default-sized request will actually fan out
	// to after GOMAXPROCS and world-count clamping.
	Workers       int     `json:"workers"`
	Tolerance     float64 `json:"tolerance,omitempty"`
	MemoryBudget  int64   `json:"memory_budget"`
	MaxKNNSources int     `json:"max_knn_sources"`
	// DefaultGraph is the name the legacy alias endpoints resolve to.
	DefaultGraph string `json:"default_graph,omitempty"`
	// Registry totals (graph count, residency, evictions) and the
	// per-graph list with hit/miss/resident counters.
	Registry RegistryStats `json:"registry"`
	// ResultCache reports the result cache's occupancy and hit/miss/
	// coalescing counters (Enabled false when the cache is off).
	ResultCache ResultCacheStats `json:"result_cache"`
	Graphs      []GraphStats     `json:"graphs"`
}

// graphListResponse is the body of GET /graphs.
type graphListResponse struct {
	Registry    RegistryStats    `json:"registry"`
	ResultCache ResultCacheStats `json:"result_cache"`
	Graphs      []GraphStats     `json:"graphs"`
}

// uploadResponse is the body of a successful PUT/POST /graphs/{name}.
type uploadResponse struct {
	Created bool       `json:"created"`
	Graph   GraphStats `json:"graph"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP handler serving the query API:
//
//	GET    /healthz
//	GET    /graphs                            (list with stats)
//	PUT    /graphs/{name}   (upload a published graph; query params
//	POST   /graphs/{name}    worlds=, tolerance=, mem-budget= set
//	                         per-graph overrides)
//	GET    /graphs/{name}                     (one graph's stats)
//	DELETE /graphs/{name}
//	GET    /graphs/{name}/reliability?s=&t=[&worlds=][&seed=][&tolerance=]
//	GET    /graphs/{name}/distance?s=&t=[...]
//	GET    /graphs/{name}/knn?s=&k=[...]
//	POST   /graphs/{name}/batch               (BatchRequest body)
//
// plus the legacy single-graph aliases GET /reliability, GET
// /distance, GET /knn and POST /batch, which resolve to the default
// graph (kept for one release).
func (s *Server) Handler() http.Handler {
	s.init()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /graphs", s.handleGraphList)
	mux.HandleFunc("GET /graphs/{name}", s.handleGraphStats)
	mux.HandleFunc("PUT /graphs/{name}", s.handleGraphPut)
	mux.HandleFunc("POST /graphs/{name}", s.handleGraphPut)
	mux.HandleFunc("DELETE /graphs/{name}", s.handleGraphDelete)
	mux.HandleFunc("GET /graphs/{name}/reliability", s.handleSingle("reliability"))
	mux.HandleFunc("GET /graphs/{name}/distance", s.handleSingle("distance"))
	mux.HandleFunc("GET /graphs/{name}/knn", s.handleSingle("knn"))
	mux.HandleFunc("POST /graphs/{name}/batch", s.handleBatch)
	mux.HandleFunc("GET /reliability", s.handleSingle("reliability"))
	mux.HandleFunc("GET /distance", s.handleSingle("distance"))
	mux.HandleFunc("GET /knn", s.handleSingle("knn"))
	mux.HandleFunc("POST /batch", s.handleBatch)
	// Catch-all: unmatched routes get the same JSON 404 shape as
	// unknown graphs, not ServeMux's plain-text page.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such endpoint %q", r.URL.Path))
	})
	return canonicalPathOnly(mux)
}

// canonicalPathOnly rejects requests whose escaped path is not already
// clean (".." or "." segments, doubled or trailing slashes) with a
// plain 404 instead of ServeMux's 301 redirect: traversal-shaped paths
// never silently re-resolve to another graph's endpoint, and the
// response-status surface stays {200, 400, 404, 413}.
func canonicalPathOnly(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.EscapedPath()
		if p == "" || p[0] != '/' || (p != "/" && path.Clean(p) != p) {
			writeError(w, http.StatusNotFound, fmt.Errorf("non-canonical path %q", p))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// pathGraphName resolves the request's graph name: the {name} path
// segment when present (validated), otherwise the default graph.
// The empty string with a nil error never happens; failures carry the
// HTTP status to respond with.
func (s *Server) pathGraphName(r *http.Request) (string, int, error) {
	if name := r.PathValue("name"); name != "" {
		if err := validateGraphName(name); err != nil {
			return "", http.StatusBadRequest, err
		}
		return name, 0, nil
	}
	if name := s.defaultName(); name != "" {
		return name, 0, nil
	}
	return "", http.StatusNotFound, fmt.Errorf("%w: no default graph configured; address /graphs/{name}/...", ErrUnknownGraph)
}

// defaultName resolves the graph the legacy alias endpoints serve.
// DefaultGraph is read at call time, not frozen at init: cmd/queryd
// publishes its graphs first and names the default just before
// serving. The init-time name covers the compat Server.G publish.
func (s *Server) defaultName() string {
	if s.DefaultGraph != "" {
		return s.DefaultGraph
	}
	return s.defName
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	graphs, totals := s.reg.Stats()
	h := healthResponse{
		DefaultWorlds: s.defaultWorlds(),
		MaxWorlds:     s.maxWorlds(),
		MaxQueries:    s.maxQueries(),
		Workers:       query.EffectiveWorkers(s.Workers, s.defaultWorlds()),
		Tolerance:     s.Tolerance,
		MemoryBudget:  s.memoryBudget(),
		MaxKNNSources: s.maxKNNSources(),
		DefaultGraph:  s.defaultName(),
		Registry:      totals,
		ResultCache:   s.resultCacheStats(),
		Graphs:        graphs,
	}
	if st, ok := s.reg.GraphStatsFor(s.defaultName()); ok {
		h.Vertices, h.Pairs = st.Vertices, st.Pairs
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleGraphList(w http.ResponseWriter, _ *http.Request) {
	graphs, totals := s.reg.Stats()
	writeJSON(w, http.StatusOK, graphListResponse{
		Registry:    totals,
		ResultCache: s.resultCacheStats(),
		Graphs:      graphs,
	})
}

// resultCacheStats collates the cache's counters with the stream
// coordinator's; the zero value (Enabled false) reports a disabled
// cache.
func (s *Server) resultCacheStats() ResultCacheStats {
	if s.cache == nil {
		return ResultCacheStats{}
	}
	st := s.cache.stats()
	st.SharedRuns, st.SharedBatches = s.streams.stats()
	return st
}

func (s *Server) handleGraphStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validateGraphName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, ok := s.reg.GraphStatsFor(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownGraph, name))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleGraphPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validateGraphName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := graphConfigFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxUploadBytes()))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("upload exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading upload: %w", err))
		return
	}
	st, created, err := s.Publish(name, body, cfg)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrRegistryFull) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, uploadResponse{Created: created, Graph: st})
}

// graphConfigFromQuery parses the per-graph override query parameters
// of an upload: worlds, tolerance, mem-budget. Absent parameters leave
// the zero value (inherit the server default).
func graphConfigFromQuery(r *http.Request) (GraphConfig, error) {
	var cfg GraphConfig
	q := r.URL.Query()
	if v := q.Get("worlds"); v != "" {
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return cfg, fmt.Errorf("parameter worlds: %q must be a non-negative integer", v)
		}
		cfg.Worlds = w
	}
	if v := q.Get("tolerance"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return cfg, fmt.Errorf("parameter tolerance: %q must be a finite non-negative number", v)
		}
		cfg.Tolerance = t
	}
	if v := q.Get("mem-budget"); v != "" {
		b, err := strconv.ParseInt(v, 10, 64)
		if err != nil || b < 0 {
			return cfg, fmt.Errorf("parameter mem-budget: %q must be a non-negative byte count", v)
		}
		cfg.MemoryBudget = b
	}
	return cfg, nil
}

func (s *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validateGraphName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.DeleteGraph(name) {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownGraph, name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// handleSingle adapts one GET endpoint onto the batch path: the
// response is a BatchResponse carrying a single result.
func (s *Server) handleSingle(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name, status, err := s.pathGraphName(r)
		if err != nil {
			writeError(w, status, err)
			return
		}
		q := QueryRequest{Op: op}
		if q.S, err = intParam(r, "s"); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		switch op {
		case "knn":
			q.K, err = intParam(r, "k")
		default:
			q.T, err = intParam(r, "t")
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req := BatchRequest{Queries: []QueryRequest{q}}
		if v := r.URL.Query().Get("worlds"); v != "" {
			if req.Worlds, err = strconv.Atoi(v); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("parameter worlds: %w", err))
				return
			}
		}
		if v := r.URL.Query().Get("seed"); v != "" {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("parameter seed: %w", err))
				return
			}
			req.Seed = &seed
		}
		if v := r.URL.Query().Get("tolerance"); v != "" {
			tol, err := strconv.ParseFloat(v, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("parameter tolerance: %w", err))
				return
			}
			req.Tolerance = &tol
		}
		s.serve(r.Context(), w, name, &req)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	name, status, err := s.pathGraphName(r)
	if err != nil {
		writeError(w, status, err)
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.serve(r.Context(), w, name, &req)
}

// serve answers one batch request. The request is validated against
// the graph's *registration* (peek: no load, no LRU touch), its worlds
// / seed / tolerance are resolved, and then:
//
//   - cache disabled (the zero-value Server): the graph is acquired
//     (reloading it if evicted) and the batch computed directly — the
//     pre-cache serving path, unchanged;
//   - cache enabled: the fully resolved request names a cache key. A
//     stored answer is written back without touching the graph at all
//     (a cache hit on an evicted graph stays a page-table no-op); a
//     key already being computed is joined (single-flight); otherwise
//     this request leads a new flight whose computation runs on its
//     own goroutine under the flight's context and may share a world
//     stream with concurrent compatible flights.
//
// A dropped connection (or server shutdown) cancels ctx: the request
// detaches from its flight — which cancels the computation only when
// no other request is attached — and no response is written to the
// dead client.
func (s *Server) serve(ctx context.Context, w http.ResponseWriter, name string, req *BatchRequest) {
	info, ok := s.reg.peek(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownGraph, name))
		return
	}
	if err := s.validate(info.vertices, info.cfg, req); err != nil {
		// Over-budget requests are a payload-size problem, not a
		// malformed one: 413 tells a well-behaved client to shrink the
		// request rather than fix it.
		status := http.StatusBadRequest
		if errors.Is(err, query.ErrOverBudget) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	worlds := s.resolveWorlds(info.cfg, req.Worlds)
	seed := s.requestSeed(name, req, worlds)
	tol := s.effTolerance(info.cfg)
	if req.Tolerance != nil {
		tol = *req.Tolerance
	}

	if s.cache == nil {
		status, body, abandoned := s.compute(ctx, name, info.gen, req, worlds, seed, tol)
		if !abandoned {
			writeRawJSON(w, status, body)
		}
		return
	}

	key := resultCacheKey(name, info.gen, worlds, seed, tol, req.Queries)
	body, f, leader := s.cache.lookup(key)
	if f == nil {
		writeRawJSON(w, http.StatusOK, body)
		return
	}
	if leader {
		go s.runFlight(key, name, info.gen, req, worlds, seed, tol, f)
	}
	select {
	case <-f.ready:
		s.cache.detach(f)
		writeRawJSON(w, f.status, f.body)
	case <-ctx.Done():
		s.cache.detach(f)
	}
}

// runFlight computes one flight's answer on the leader's goroutine —
// detached from any single request, cancelled only when every attached
// request has gone — and settles it for all waiters, storing complete
// 200 bodies in the cache.
func (s *Server) runFlight(key, name string, gen uint64, req *BatchRequest, worlds int, seed int64, tol float64, f *flight) {
	s.cache.computed()
	status, body, abandoned := s.compute(f.ctx, name, gen, req, worlds, seed, tol)
	if abandoned {
		s.cache.abort(key, f)
		return
	}
	s.cache.settle(key, name, f, status, body, status == http.StatusOK)
}

// compute acquires the graph (reloading it if evicted), runs the fully
// resolved request through a pooled batch and renders the response to
// bytes. It returns abandoned=true — no status, no body — when ctx
// cancelled the run: nobody is listening. With the cache enabled the
// run goes through the stream coordinator, sharing one sampled world
// stream with concurrent requests on the same (graph release, seed);
// otherwise the batch samples alone.
func (s *Server) compute(ctx context.Context, name string, gen uint64, req *BatchRequest, worlds int, seed int64, tol float64) (status int, body []byte, abandoned bool) {
	h, err := s.reg.acquire(name)
	if err != nil {
		// The graph vanished between peek and acquire, or a path-backed
		// reload failed.
		status := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownGraph) {
			status = http.StatusNotFound
		}
		return status, encodeJSON(errorResponse{Error: err.Error()}), false
	}
	b := h.pool.Get()
	// Re-stamp the budget the validation priced against: the pool's
	// template was resolved at graph-load time, and validate must agree
	// with Run's own budget check even if the server's defaults were
	// adjusted since.
	b.MemoryBudget = s.effMemBudget(h.cfg)
	ids := make([]int, len(req.Queries))
	for i, q := range req.Queries {
		switch q.Op {
		case "reliability":
			ids[i] = b.AddReliability(q.S, q.T)
		case "distance":
			ids[i] = b.AddDistance(q.S, q.T)
		case "knn":
			ids[i] = b.AddKNearest(q.S, q.K)
		}
	}
	b.Worlds = worlds
	b.Seed = seed
	b.Workers = s.Workers
	// Always stamped, never merely defaulted: the batch is pooled, so a
	// previous request's tolerance must not leak into this one.
	b.Tolerance = tol
	if s.cache != nil {
		err = s.streams.run(ctx, streamKey{name: name, gen: gen, seed: seed}, b)
	} else {
		err = b.Run(ctx)
	}
	if err != nil {
		h.pool.Put(b)
		// The usual cause: the client dropped (or the server is
		// shutting down) and the computation's context cancelled —
		// abandon the answer, nobody is listening.
		if ctx.Err() != nil {
			return 0, nil, true
		}
		// Any other failure must reach the live client — e.g. Run's
		// own budget check catching a worker-count drift between
		// validate's pricing and the run (GOMAXPROCS can change).
		status := http.StatusInternalServerError
		if errors.Is(err, query.ErrOverBudget) {
			status = http.StatusRequestEntityTooLarge
		}
		return status, encodeJSON(errorResponse{Error: err.Error()}), false
	}
	// Snapshot the merged results and release the batch before
	// rendering: the pooled buffers go back to work for the next
	// request while this one serializes (and possibly caches) an
	// immutable copy.
	res := b.Snapshot()
	h.pool.Put(b)
	return http.StatusOK, encodeJSON(s.buildResponse(name, req, ids, res, seed, tol)), false
}

// buildResponse renders a completed run's snapshot into the response
// shape. Worlds reports what the run actually sampled — bit-identical
// to a prefix of the full-budget stream when adaptive stopping kicked
// in.
func (s *Server) buildResponse(name string, req *BatchRequest, ids []int, res *query.Results, seed int64, tol float64) BatchResponse {
	resp := BatchResponse{Graph: name, Worlds: res.WorldsRun(), Seed: seed, Results: make([]QueryResult, len(req.Queries))}
	if tol > 0 {
		resp.Tolerance = tol
		resp.Converged = res.Converged()
	}
	for i, q := range req.Queries {
		r := QueryResult{Op: q.Op, S: q.S}
		switch q.Op {
		case "reliability", "distance":
			r.T = &q.T
		case "knn":
			r.K = &q.K
		}
		switch q.Op {
		case "reliability":
			rel := res.Reliability(ids[i])
			r.Reliability = &rel
		case "distance":
			dist, disc := res.DistanceDistribution(ids[i])
			med := res.MedianDistance(ids[i])
			r.Distances = dist
			r.Disconnected = &disc
			r.Median = &med
		case "knn":
			neighbors := res.KNearestWithMedians(ids[i])
			r.Neighbors = make([]NeighborResult, len(neighbors))
			for j, nb := range neighbors {
				r.Neighbors[j] = NeighborResult{V: nb.V, Median: nb.Median}
			}
		}
		resp.Results[i] = r
	}
	return resp
}

func (s *Server) validate(n int, cfg GraphConfig, req *BatchRequest) error {
	if len(req.Queries) == 0 {
		return fmt.Errorf("empty query list")
	}
	if max := s.maxQueries(); len(req.Queries) > max {
		return fmt.Errorf("%d queries exceed the per-request limit %d", len(req.Queries), max)
	}
	if max := s.maxWorlds(); req.Worlds > max {
		return fmt.Errorf("worlds %d exceeds the per-request limit %d", req.Worlds, max)
	}
	if req.Worlds < 0 {
		return fmt.Errorf("negative worlds %d", req.Worlds)
	}
	// Tolerance shapes when a run may stop, not what it may cost: the
	// memory pricing below stays against the full worlds budget, so a
	// tolerant request that never converges is still within its quota.
	if req.Tolerance != nil {
		if t := *req.Tolerance; t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("tolerance %v must be a finite non-negative number", t)
		}
	}
	knnSources := make(map[int]struct{})
	for i, q := range req.Queries {
		if q.S < 0 || q.S >= n {
			return fmt.Errorf("query %d: vertex s=%d out of range [0,%d)", i, q.S, n)
		}
		switch q.Op {
		case "reliability", "distance":
			if q.T < 0 || q.T >= n {
				return fmt.Errorf("query %d: vertex t=%d out of range [0,%d)", i, q.T, n)
			}
		case "knn":
			if q.K < 1 {
				return fmt.Errorf("query %d: k=%d must be positive", i, q.K)
			}
			knnSources[q.S] = struct{}{}
		default:
			return fmt.Errorf("query %d: unknown op %q", i, q.Op)
		}
	}
	// Memory budget: price the request's worst-case accumulator
	// footprint before any buffer grows. Distinct k-NN sources dominate
	// — each can fill an n² int32 histogram per worker — so they are
	// both capped outright and charged against the byte budget.
	if max := s.maxKNNSources(); len(knnSources) > max {
		return fmt.Errorf("%w: %d distinct k-NN sources exceed the per-request cap %d",
			query.ErrOverBudget, len(knnSources), max)
	}
	workers := query.EffectiveWorkers(s.Workers, s.resolveWorlds(cfg, req.Worlds))
	if need, budget := query.WorstCaseAccumBytes(n, len(knnSources), workers), s.effMemBudget(cfg); need > budget {
		return fmt.Errorf("%w: worst case %d bytes (%d k-NN sources × %d² vertices × 4 bytes × %d workers) > budget %d bytes",
			query.ErrOverBudget, need, len(knnSources), n, workers, budget)
	}
	return nil
}

// resolveWorlds resolves a request's effective sample size: the
// request's value, else the graph's override, else the server default,
// clamped by MaxWorlds.
func (s *Server) resolveWorlds(cfg GraphConfig, requested int) int {
	w := requested
	if w <= 0 {
		w = cfg.Worlds
	}
	if w <= 0 {
		w = s.Worlds
	}
	if w <= 0 {
		w = query.DefaultWorlds()
	}
	// The cap bounds every request, including ones that fall back to a
	// misconfigured default larger than MaxWorlds; explicit over-cap
	// requests were already rejected by validate.
	if max := s.maxWorlds(); w > max {
		w = max
	}
	return w
}

// defaultWorlds is the server-level default (no graph override in
// play), reported by /healthz.
func (s *Server) defaultWorlds() int { return s.resolveWorlds(GraphConfig{}, 0) }

func (s *Server) effTolerance(cfg GraphConfig) float64 {
	if cfg.Tolerance > 0 {
		return cfg.Tolerance
	}
	return s.Tolerance
}

func (s *Server) effMemBudget(cfg GraphConfig) int64 {
	if cfg.MemoryBudget > 0 {
		return cfg.MemoryBudget
	}
	return s.memoryBudget()
}

func (s *Server) maxWorlds() int {
	if s.MaxWorlds > 0 {
		return s.MaxWorlds
	}
	return DefaultMaxWorlds
}

func (s *Server) maxQueries() int {
	if s.MaxQueries > 0 {
		return s.MaxQueries
	}
	return DefaultMaxQueries
}

func (s *Server) memoryBudget() int64 {
	if s.MemoryBudget > 0 {
		return s.MemoryBudget
	}
	return DefaultMemoryBudget
}

func (s *Server) maxKNNSources() int {
	if s.MaxKNNSources > 0 {
		return s.MaxKNNSources
	}
	return DefaultMaxKNNSources
}

func (s *Server) maxUploadBytes() int64 {
	if s.MaxUploadBytes > 0 {
		return s.MaxUploadBytes
	}
	return DefaultMaxUploadBytes
}

// requestSeed maps a request to its world-stream seed: the pinned seed
// when given, otherwise a derivation from the server's base seed, the
// graph's registry name and the request content, so identical requests
// against the same graph return identical answers — including across
// an evict/reload cycle, whose reloaded graph is parsed from the same
// source bytes. Hashing the name keeps equal-shaped requests against
// different graphs on decorrelated world streams. Tolerance is
// deliberately excluded from the derivation: an adaptive run is a
// prefix of the fixed run's world stream, so requests that differ only
// in tolerance should share one stream — the tighter run extends the
// looser one rather than resampling.
func (s *Server) requestSeed(name string, req *BatchRequest, worlds int) int64 {
	if req.Seed != nil {
		return *req.Seed
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", name, worlds)
	for _, q := range req.Queries {
		fmt.Fprintf(h, "|%s:%d:%d:%d", q.Op, q.S, q.T, q.K)
	}
	return randx.Derive(s.Seed, h.Sum64())
}

func intParam(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing parameter %s", name)
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %w", name, err)
	}
	return i, nil
}

// encodeJSON renders v exactly as writeJSON would put it on the wire
// (same encoder settings, same trailing newline). All responses —
// cached, coalesced or computed — pass through this one encoder, which
// is what makes "cache hit" and "recomputation" byte-identical by
// construction: encoding/json sorts map keys, so the rendering is a
// pure function of the response value.
func encodeJSON(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// Response types are plain data — maps, slices, numbers, strings
		// — which cannot fail to encode.
		panic(fmt.Sprintf("qserve: encoding response: %v", err))
	}
	return buf.Bytes()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	writeRawJSON(w, status, encodeJSON(v))
}

func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
