// Package qserve is the query-serving layer over internal/query's
// batch engine: a long-lived HTTP/JSON server that loads one published
// uncertain graph and answers reliability, distance-distribution and
// k-nearest-neighbour queries — the paper's consumption story (§1, §6)
// turned into a traffic-shaped service.
//
// Every request, including the single-query GET endpoints, runs
// through one query.Batch drawn from a sync.Pool, so steady-state
// serving reuses world samplers, BFS scratch and integer accumulators
// across requests. Worlds are sampled once per request and shared by
// all of the request's queries.
//
// Determinism contract: a request that does not pin a seed gets one
// derived from the server's base seed and the request's content
// (worlds + query list), so identical requests always return identical
// answers — cache-friendly and replayable — while different requests
// get decorrelated world streams. A pinned "seed" field overrides the
// derivation. Responses echo the worlds and seed used.
//
// Resource limits: besides the worlds and query-count caps, every
// request is priced against a memory budget before any buffer grows —
// distinct k-NN sources dominate (each can fill an n² int32 histogram
// per worker), so they are capped outright and charged via
// query.WorstCaseAccumBytes. Over-budget requests get HTTP 413 with an
// error wrapping query.ErrOverBudget, and pooled batches shed
// accumulators retained above the same budget on Reset.
package qserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"strconv"
	"sync"

	"uncertaingraph/internal/query"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/uncertain"
)

// Default limits bounding the per-request Monte-Carlo cost and memory
// footprint.
const (
	DefaultMaxWorlds  = 20000
	DefaultMaxQueries = 1024
	// DefaultMemoryBudget caps the worst-case per-request accumulator
	// footprint (k-NN histograms dominate: each distinct k-NN source
	// can grow n² int32 counters per worker).
	DefaultMemoryBudget = int64(1) << 30 // 1 GiB
	// DefaultMaxKNNSources caps the distinct k-NN sources of one
	// request; each one costs a full-component BFS per world plus its
	// own histogram, so they are the most expensive query shape.
	DefaultMaxKNNSources = 64
)

// Server answers possible-world Monte-Carlo queries over one published
// uncertain graph. The zero value is not usable; set G. A Server is
// safe for concurrent use: each in-flight request owns a pooled
// query.Batch, and the graph itself is read-only.
type Server struct {
	// G is the published uncertain graph being served.
	G *uncertain.Graph
	// Worlds is the per-request default sample size (0 selects the
	// Hoeffding default, 738).
	Worlds int
	// MaxWorlds caps the per-request sample size (0 selects
	// DefaultMaxWorlds).
	MaxWorlds int
	// MaxQueries caps the number of queries per batch request (0
	// selects DefaultMaxQueries).
	MaxQueries int
	// Workers bounds concurrent world evaluations per request (<= 0
	// selects GOMAXPROCS); answers are identical for every value.
	Workers int
	// Seed is the base seed for the content-derived per-request world
	// streams.
	Seed int64
	// Tolerance is the default adaptive-precision tolerance applied to
	// requests that do not carry their own "tolerance" field: when > 0,
	// a request's batch stops as soon as every query's relative SEM is
	// inside it (see query.Config.Tolerance), and the response reports
	// the worlds actually used. 0 keeps the fixed-worlds behaviour.
	Tolerance float64
	// MemoryBudget caps the worst-case accumulator bytes one request
	// may grow — query.WorstCaseAccumBytes(n, distinct k-NN sources,
	// workers) — and the bytes a pooled batch retains across requests
	// (0 selects DefaultMemoryBudget). Over-budget requests are
	// rejected with HTTP 413 and an error wrapping query.ErrOverBudget.
	MemoryBudget int64
	// MaxKNNSources caps the distinct k-NN sources per request (0
	// selects DefaultMaxKNNSources); the rejection is also 413-typed.
	MaxKNNSources int

	pool sync.Pool
}

// QueryRequest is one query of a batch request.
type QueryRequest struct {
	// Op is "reliability", "distance" or "knn".
	Op string `json:"op"`
	// S is the source vertex (all ops).
	S int `json:"s"`
	// T is the target vertex (reliability, distance).
	T int `json:"t,omitempty"`
	// K is the neighbour count (knn).
	K int `json:"k,omitempty"`
}

// BatchRequest is the body of POST /batch.
type BatchRequest struct {
	// Worlds overrides the server's per-request sample size.
	Worlds int `json:"worlds,omitempty"`
	// Seed pins the world stream; omitted, it is derived from the
	// request content.
	Seed *int64 `json:"seed,omitempty"`
	// Tolerance overrides the server's adaptive-precision tolerance:
	// > 0 lets the run stop early once every query's relative SEM is
	// inside it, an explicit 0 disables adaptive stopping for this
	// request, omitted inherits the server default. The worlds value
	// stays the budget — requests are priced against it in validate —
	// and the response's "worlds" reports how many were actually used.
	Tolerance *float64       `json:"tolerance,omitempty"`
	Queries   []QueryRequest `json:"queries"`
}

// NeighborResult is one ranked k-NN neighbour.
type NeighborResult struct {
	V      int `json:"v"`
	Median int `json:"median"`
}

// QueryResult is one query's answer; exactly the fields of its op are
// populated. T and K are pointers so that valid zero arguments (t=0 is
// a vertex) are still echoed, while fields foreign to the op are
// omitted.
type QueryResult struct {
	Op string `json:"op"`
	S  int    `json:"s"`
	T  *int   `json:"t,omitempty"`
	K  *int   `json:"k,omitempty"`

	Reliability *float64 `json:"reliability,omitempty"`
	// Distances maps distance -> probability; Disconnected carries the
	// remaining mass and Median the count-rule median (-1 when the
	// median is a disconnection).
	Distances    map[int]float64  `json:"distances,omitempty"`
	Disconnected *float64         `json:"disconnected,omitempty"`
	Median       *int             `json:"median,omitempty"`
	Neighbors    []NeighborResult `json:"neighbors,omitempty"`
}

// BatchResponse is the body of every query response. Worlds is the
// number of worlds actually sampled — fewer than the request's budget
// when an adaptive run converged early.
type BatchResponse struct {
	Worlds int   `json:"worlds"`
	Seed   int64 `json:"seed"`
	// Tolerance and Converged are reported for adaptive runs only:
	// the effective tolerance, and whether every query's relative SEM
	// was inside it when the run stopped (false means the worlds
	// budget ran out first, or the batch carried a k-NN query).
	Tolerance float64       `json:"tolerance,omitempty"`
	Converged bool          `json:"converged,omitempty"`
	Results   []QueryResult `json:"results"`
}

type healthResponse struct {
	Vertices      int `json:"vertices"`
	Pairs         int `json:"pairs"`
	DefaultWorlds int `json:"default_worlds"`
	MaxWorlds     int `json:"max_worlds"`
	MaxQueries    int `json:"max_queries"`
	// Workers is the effective per-request worker clamp at the default
	// world count — what a default-sized request will actually fan out
	// to after GOMAXPROCS and world-count clamping.
	Workers       int     `json:"workers"`
	Tolerance     float64 `json:"tolerance,omitempty"`
	MemoryBudget  int64   `json:"memory_budget"`
	MaxKNNSources int     `json:"max_knn_sources"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP handler serving the query API:
//
//	GET  /healthz
//	GET  /reliability?s=&t=[&worlds=][&seed=]
//	GET  /distance?s=&t=[&worlds=][&seed=]
//	GET  /knn?s=&k=[&worlds=][&seed=]
//	POST /batch           (BatchRequest body)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /reliability", s.handleSingle("reliability"))
	mux.HandleFunc("GET /distance", s.handleSingle("distance"))
	mux.HandleFunc("GET /knn", s.handleSingle("knn"))
	mux.HandleFunc("POST /batch", s.handleBatch)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Vertices:      s.G.NumVertices(),
		Pairs:         s.G.NumPairs(),
		DefaultWorlds: s.worlds(0),
		MaxWorlds:     s.maxWorlds(),
		MaxQueries:    s.maxQueries(),
		Workers:       query.EffectiveWorkers(s.Workers, s.worlds(0)),
		Tolerance:     s.Tolerance,
		MemoryBudget:  s.memoryBudget(),
		MaxKNNSources: s.maxKNNSources(),
	})
}

// handleSingle adapts one GET endpoint onto the batch path: the
// response is a BatchResponse carrying a single result.
func (s *Server) handleSingle(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := QueryRequest{Op: op}
		var err error
		if q.S, err = intParam(r, "s"); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		switch op {
		case "knn":
			q.K, err = intParam(r, "k")
		default:
			q.T, err = intParam(r, "t")
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req := BatchRequest{Queries: []QueryRequest{q}}
		if v := r.URL.Query().Get("worlds"); v != "" {
			if req.Worlds, err = strconv.Atoi(v); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("parameter worlds: %w", err))
				return
			}
		}
		if v := r.URL.Query().Get("seed"); v != "" {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("parameter seed: %w", err))
				return
			}
			req.Seed = &seed
		}
		if v := r.URL.Query().Get("tolerance"); v != "" {
			tol, err := strconv.ParseFloat(v, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("parameter tolerance: %w", err))
				return
			}
			req.Tolerance = &tol
		}
		s.serve(r.Context(), w, &req)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.serve(r.Context(), w, &req)
}

// serve validates req, runs it through a pooled batch under the
// request's context and writes the response. A dropped connection (or
// server shutdown closing idle connections) cancels ctx, which stops
// the batch's BFS work mid-flight at world granularity; the batch then
// returns to the pool clean — Reset on next acquire re-derives
// everything — and no response is written to the dead client.
func (s *Server) serve(ctx context.Context, w http.ResponseWriter, req *BatchRequest) {
	if err := s.validate(req); err != nil {
		// Over-budget requests are a payload-size problem, not a
		// malformed one: 413 tells a well-behaved client to shrink the
		// request rather than fix it.
		status := http.StatusBadRequest
		if errors.Is(err, query.ErrOverBudget) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	worlds := s.worlds(req.Worlds)
	seed := s.requestSeed(req, worlds)
	tol := s.Tolerance
	if req.Tolerance != nil {
		tol = *req.Tolerance
	}

	b := s.acquire()
	ids := make([]int, len(req.Queries))
	for i, q := range req.Queries {
		switch q.Op {
		case "reliability":
			ids[i] = b.AddReliability(q.S, q.T)
		case "distance":
			ids[i] = b.AddDistance(q.S, q.T)
		case "knn":
			ids[i] = b.AddKNearest(q.S, q.K)
		}
	}
	b.Worlds = worlds
	b.Seed = seed
	b.Workers = s.Workers
	// Always stamped, never merely defaulted: the batch is pooled, so a
	// previous request's tolerance must not leak into this one.
	b.Tolerance = tol
	if err := b.Run(ctx); err != nil {
		s.pool.Put(b)
		// The usual cause: the client dropped (or the server is
		// shutting down) and the request context cancelled — abandon
		// the answer, nobody is listening.
		if ctx.Err() != nil {
			return
		}
		// Any other failure must reach the live client — e.g. Run's
		// own budget check catching a worker-count drift between
		// validate's pricing and the run (GOMAXPROCS can change).
		status := http.StatusInternalServerError
		if errors.Is(err, query.ErrOverBudget) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}

	// Worlds reports what the run actually sampled — bit-identical to a
	// prefix of the full-budget stream when adaptive stopping kicked in.
	resp := BatchResponse{Worlds: b.WorldsRun(), Seed: seed, Results: make([]QueryResult, len(req.Queries))}
	if tol > 0 {
		resp.Tolerance = tol
		resp.Converged = b.Converged()
	}
	for i, q := range req.Queries {
		res := QueryResult{Op: q.Op, S: q.S}
		switch q.Op {
		case "reliability", "distance":
			res.T = &q.T
		case "knn":
			res.K = &q.K
		}
		switch q.Op {
		case "reliability":
			rel := b.Reliability(ids[i])
			res.Reliability = &rel
		case "distance":
			dist, disc := b.DistanceDistribution(ids[i])
			med := b.MedianDistance(ids[i])
			res.Distances = dist
			res.Disconnected = &disc
			res.Median = &med
		case "knn":
			neighbors := b.KNearestWithMedians(ids[i])
			res.Neighbors = make([]NeighborResult, len(neighbors))
			for j, nb := range neighbors {
				res.Neighbors[j] = NeighborResult{V: nb.V, Median: nb.Median}
			}
		}
		resp.Results[i] = res
	}
	s.pool.Put(b)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) validate(req *BatchRequest) error {
	if len(req.Queries) == 0 {
		return fmt.Errorf("empty query list")
	}
	if max := s.maxQueries(); len(req.Queries) > max {
		return fmt.Errorf("%d queries exceed the per-request limit %d", len(req.Queries), max)
	}
	if max := s.maxWorlds(); req.Worlds > max {
		return fmt.Errorf("worlds %d exceeds the per-request limit %d", req.Worlds, max)
	}
	if req.Worlds < 0 {
		return fmt.Errorf("negative worlds %d", req.Worlds)
	}
	// Tolerance shapes when a run may stop, not what it may cost: the
	// memory pricing below stays against the full worlds budget, so a
	// tolerant request that never converges is still within its quota.
	if req.Tolerance != nil {
		if t := *req.Tolerance; t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("tolerance %v must be a finite non-negative number", t)
		}
	}
	n := s.G.NumVertices()
	knnSources := make(map[int]struct{})
	for i, q := range req.Queries {
		if q.S < 0 || q.S >= n {
			return fmt.Errorf("query %d: vertex s=%d out of range [0,%d)", i, q.S, n)
		}
		switch q.Op {
		case "reliability", "distance":
			if q.T < 0 || q.T >= n {
				return fmt.Errorf("query %d: vertex t=%d out of range [0,%d)", i, q.T, n)
			}
		case "knn":
			if q.K < 1 {
				return fmt.Errorf("query %d: k=%d must be positive", i, q.K)
			}
			knnSources[q.S] = struct{}{}
		default:
			return fmt.Errorf("query %d: unknown op %q", i, q.Op)
		}
	}
	// Memory budget: price the request's worst-case accumulator
	// footprint before any buffer grows. Distinct k-NN sources dominate
	// — each can fill an n² int32 histogram per worker — so they are
	// both capped outright and charged against the byte budget.
	if max := s.maxKNNSources(); len(knnSources) > max {
		return fmt.Errorf("%w: %d distinct k-NN sources exceed the per-request cap %d",
			query.ErrOverBudget, len(knnSources), max)
	}
	workers := query.EffectiveWorkers(s.Workers, s.worlds(req.Worlds))
	if need, budget := query.WorstCaseAccumBytes(n, len(knnSources), workers), s.memoryBudget(); need > budget {
		return fmt.Errorf("%w: worst case %d bytes (%d k-NN sources × %d² vertices × 4 bytes × %d workers) > budget %d bytes",
			query.ErrOverBudget, need, len(knnSources), n, workers, budget)
	}
	return nil
}

func (s *Server) worlds(requested int) int {
	w := requested
	if w <= 0 {
		w = s.Worlds
	}
	if w <= 0 {
		w = query.DefaultWorlds()
	}
	// The cap bounds every request, including ones that fall back to a
	// misconfigured server default larger than MaxWorlds; explicit
	// over-cap requests were already rejected by validate.
	if max := s.maxWorlds(); w > max {
		w = max
	}
	return w
}

func (s *Server) maxWorlds() int {
	if s.MaxWorlds > 0 {
		return s.MaxWorlds
	}
	return DefaultMaxWorlds
}

func (s *Server) maxQueries() int {
	if s.MaxQueries > 0 {
		return s.MaxQueries
	}
	return DefaultMaxQueries
}

func (s *Server) memoryBudget() int64 {
	if s.MemoryBudget > 0 {
		return s.MemoryBudget
	}
	return DefaultMemoryBudget
}

func (s *Server) maxKNNSources() int {
	if s.MaxKNNSources > 0 {
		return s.MaxKNNSources
	}
	return DefaultMaxKNNSources
}

// requestSeed maps a request to its world-stream seed: the pinned seed
// when given, otherwise a derivation from the server's base seed and
// the request content, so identical requests return identical answers.
// Tolerance is deliberately excluded from the derivation: an adaptive
// run is a prefix of the fixed run's world stream, so requests that
// differ only in tolerance should share one stream — the tighter run
// extends the looser one rather than resampling.
func (s *Server) requestSeed(req *BatchRequest, worlds int) int64 {
	if req.Seed != nil {
		return *req.Seed
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", worlds)
	for _, q := range req.Queries {
		fmt.Fprintf(h, "|%s:%d:%d:%d", q.Op, q.S, q.T, q.K)
	}
	return randx.Derive(s.Seed, h.Sum64())
}

// acquire returns a reset batch from the pool, or a fresh one when the
// pool is empty. The server's memory budget is stamped before Reset so
// a pooled batch sheds high-water accumulators from a previous request
// right here, and never retains more than the budget across requests.
func (s *Server) acquire() *query.Batch {
	if b, ok := s.pool.Get().(*query.Batch); ok {
		b.MemoryBudget = s.memoryBudget()
		b.Reset()
		return b
	}
	return query.NewBatch(s.G, query.Config{MemoryBudget: s.memoryBudget()})
}

func intParam(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing parameter %s", name)
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %w", name, err)
	}
	return i, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
