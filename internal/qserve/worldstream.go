package qserve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"uncertaingraph/internal/query"
)

// streamKey names one shareable world stream: requests on the same
// graph release with the same effective seed sample the same worlds in
// the same order (randx.FillWorldSeeds is prefix-stable), so their
// batches can ride one sampler tick regardless of their world budgets
// or tolerances — each batch stops consuming the stream where its own
// configuration says to.
type streamKey struct {
	name string
	gen  uint64
	seed int64
}

// errPromoted is the sentinel a queued waiter receives when it is
// drafted to *run* the next cohort rather than have its batch run by
// someone else.
var errPromoted = errors.New("qserve: promoted to cohort runner")

// streamWaiter is one request queued for the next shared run.
type streamWaiter struct {
	b    *query.Batch
	ctx  context.Context
	done chan error // buffered; receives errPromoted or the run's error

	// cohort is set on the promoted waiter only, before errPromoted is
	// sent: the full membership (itself included) it must run.
	cohort []*streamWaiter
}

// streamGroup is the per-key state: whether a run is in progress, and
// the requests queued to share the next one.
type streamGroup struct {
	running bool
	waiters []*streamWaiter
}

// streamCoord merges concurrent batch computations on the same stream
// key into shared world streams. The first request on an idle key runs
// solo immediately (no latency tax on the uncontended path); requests
// arriving while a run is in progress queue up, and when the run
// finishes the whole queue is drafted as one cohort whose batches
// execute over a single sampled world stream (query.RunShared). A
// mid-flight arrival cannot join the current run — it needs the stream
// from world 0 — which is exactly what the cohort barrier provides.
type streamCoord struct {
	mu     sync.Mutex
	groups map[streamKey]*streamGroup

	sharedRuns    uint64 // streams that served > 1 batch
	sharedBatches uint64 // batches those streams served
}

// run executes b against key's stream: immediately and solo when the
// key is idle, otherwise as part of the next cohort. It returns when
// b's computation finished (successfully or not). ctx cancellation
// before the cohort starts withdraws the request; after the cohort is
// drafted the run itself is only cancelled once every member's ctx is
// done (the merged cohort context), so one impatient client never
// aborts its cohort-mates' shared computation.
func (c *streamCoord) run(ctx context.Context, key streamKey, b *query.Batch) error {
	c.mu.Lock()
	if c.groups == nil {
		c.groups = make(map[streamKey]*streamGroup)
	}
	g := c.groups[key]
	if g == nil {
		g = &streamGroup{}
		c.groups[key] = g
	}
	if !g.running {
		g.running = true
		c.mu.Unlock()
		err := b.Run(ctx)
		c.finish(key, g)
		return err
	}
	w := &streamWaiter{b: b, ctx: ctx, done: make(chan error, 1)}
	g.waiters = append(g.waiters, w)
	c.mu.Unlock()

	select {
	case err := <-w.done:
		return c.settle(key, g, w, err)
	case <-ctx.Done():
		c.mu.Lock()
		if removeWaiter(g, w) {
			c.mu.Unlock()
			return ctx.Err()
		}
		c.mu.Unlock()
		// Already drafted into a cohort: the shared run owns the batch
		// (its goroutines may be scanning it right now), so wait for the
		// cohort to finish — the merged context aborts it promptly once
		// the last member cancels.
		return c.settle(key, g, w, <-w.done)
	}
}

// settle resolves a waiter's outcome; a promoted waiter runs its cohort
// here, on the requester's own goroutine.
func (c *streamCoord) settle(key streamKey, g *streamGroup, w *streamWaiter, err error) error {
	if err != errPromoted {
		return err
	}
	myErr := c.runCohort(w)
	c.finish(key, g)
	return myErr
}

// runCohort executes one drafted cohort over shared world streams and
// delivers each member's error. Eviction-reload can hand cohort
// members different resident copies of the same release, and RunShared
// requires one graph value — so the cohort partitions by graph pointer
// and each partition shares one stream (answers are bit-identical
// either way; reloads parse identical bytes).
func (c *streamCoord) runCohort(self *streamWaiter) error {
	cohort := self.cohort
	rctx, cancel := mergedCtx(cohort)
	defer cancel()

	var parts [][]*streamWaiter
	for _, w := range cohort {
		placed := false
		for i, p := range parts {
			if p[0].b.Graph() == w.b.Graph() {
				parts[i] = append(p, w)
				placed = true
				break
			}
		}
		if !placed {
			parts = append(parts, []*streamWaiter{w})
		}
	}

	var myErr error
	for _, p := range parts {
		batches := make([]*query.Batch, len(p))
		for i, w := range p {
			batches[i] = w.b
		}
		_, err := query.RunShared(rctx, batches)
		if len(batches) > 1 {
			c.mu.Lock()
			c.sharedRuns++
			c.sharedBatches += uint64(len(batches))
			c.mu.Unlock()
		}
		for _, w := range p {
			if w == self {
				myErr = err
				continue
			}
			w.done <- err
		}
	}
	return myErr
}

// finish retires a completed run: if requests queued up meanwhile they
// become the next cohort (its first member is promoted to run it),
// otherwise the key goes idle and its group is dropped.
func (c *streamCoord) finish(key streamKey, g *streamGroup) {
	c.mu.Lock()
	if len(g.waiters) == 0 {
		g.running = false
		if c.groups[key] == g {
			delete(c.groups, key)
		}
		c.mu.Unlock()
		return
	}
	cohort := g.waiters
	g.waiters = nil
	c.mu.Unlock()
	cohort[0].cohort = cohort
	cohort[0].done <- errPromoted
}

// removeWaiter unqueues w if it is still waiting to be drafted,
// reporting whether it was found (false means a cohort already owns
// it).
func removeWaiter(g *streamGroup, w *streamWaiter) bool {
	for i, x := range g.waiters {
		if x == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// stats reports the coordinator's counters.
func (c *streamCoord) stats() (runs, batches uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sharedRuns, c.sharedBatches
}

// mergedCtx returns a context that cancels only when every member's
// context has cancelled: the shared run outlives any single impatient
// client but stops promptly when nobody is left waiting. The watcher
// goroutines exit when the merged context dies (cancelled or released
// by the caller's defer).
func mergedCtx(ws []*streamWaiter) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	var live atomic.Int32
	live.Store(int32(len(ws)))
	for _, w := range ws {
		go func(member context.Context) {
			select {
			case <-member.Done():
				if live.Add(-1) == 0 {
					cancel()
				}
			case <-ctx.Done():
			}
		}(w.ctx)
	}
	return ctx, cancel
}
