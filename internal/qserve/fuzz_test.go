package qserve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"uncertaingraph/internal/uncertain"
)

// FuzzBatchRequestJSON drives arbitrary bytes through the POST /batch
// decoder, validate and (for accepted requests) a full batch run. The
// invariants: the handler never panics, every response is 200/400/413
// JSON, and no request body can push the server past its configured
// resource limits — worlds clamp to MaxWorlds, k-NN sources to
// MaxKNNSources, and the accumulator worst case to MemoryBudget, so
// malformed JSON, negative ids and huge k/worlds values can neither
// crash the server nor make it over-allocate.
func FuzzBatchRequestJSON(f *testing.F) {
	for _, seed := range []string{
		`{"queries":[{"op":"reliability","s":0,"t":4}]}`,
		`{"worlds":16,"queries":[{"op":"distance","s":0,"t":3},{"op":"knn","s":1,"k":2}]}`,
		`{"worlds":16,"seed":7,"queries":[{"op":"knn","s":0,"k":3}]}`,
		`{"queries":[{"op":"knn","s":-1,"k":2}]}`,
		`{"queries":[{"op":"knn","s":0,"k":-5}]}`,
		`{"queries":[{"op":"reliability","s":0,"t":-9000000}]}`,
		`{"queries":[{"op":"knn","s":0,"k":9223372036854775807}]}`,
		`{"worlds":9223372036854775807,"queries":[{"op":"reliability","s":0,"t":1}]}`,
		`{"worlds":-3,"queries":[{"op":"reliability","s":0,"t":1}]}`,
		`{"queries":[{"op":"pagerank","s":0}]}`,
		`{"queries":[]}`,
		`{"queries":[{"op":"knn","s":0,"k":2},{"op":"knn","s":1,"k":2},{"op":"knn","s":2,"k":2}]}`,
		`{"seed":null,"queries":[{"op":"reliability","s":0,"t":1}]}`,
		`{"unknown_field":1,"queries":[{"op":"reliability","s":0,"t":1}]}`,
		`{"queries":[{"op":"reliability","s":1e309,"t":1}]}`,
		`not json at all`,
		`{"queries":`,
		`[]`,
		`{}`,
		"",
		`{"queries":[{"op":"reliability","s":0.5,"t":1}]}`,
	} {
		f.Add(seed)
	}

	g, err := uncertain.New(5, []uncertain.Pair{
		{U: 0, V: 1, P: 0.8}, {U: 1, V: 2, P: 0.8}, {U: 2, V: 3, P: 0.8},
		{U: 3, V: 4, P: 1},
	})
	if err != nil {
		f.Fatal(err)
	}
	// Tight limits so accepted requests stay cheap and every rejection
	// path (worlds cap, query cap, k-NN source cap, byte budget) is
	// reachable by the fuzzer.
	srv := &Server{
		G: g, Worlds: 8, MaxWorlds: 32, MaxQueries: 16,
		Workers: 1, Seed: 1, MemoryBudget: 2 * 5 * 5 * 4, MaxKNNSources: 2,
	}
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/batch", strings.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("unexpected status %d for body %q: %s", rec.Code, body, rec.Body.Bytes())
		}
		if rec.Code != http.StatusOK {
			var e errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("rejection without a JSON error for body %q: %s", body, rec.Body.Bytes())
			}
			return
		}
		var resp BatchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("accepted request returned non-JSON for body %q: %v", body, err)
		}
		if resp.Worlds < 1 || resp.Worlds > 32 {
			t.Fatalf("served worlds %d escaped the [1, MaxWorlds=32] clamp for body %q", resp.Worlds, body)
		}
		if len(resp.Results) == 0 || len(resp.Results) > 16 {
			t.Fatalf("served %d results outside (0, MaxQueries=16] for body %q", len(resp.Results), body)
		}
	})
}

// FuzzGraphRouting drives arbitrary graph names through the /graphs/
// routing layer on a two-tenant registry whose global budget fits only
// one graph, so the fuzzer churns evictions as a side effect. Each
// name is tried both path-escaped and raw (when it still parses as a
// URL, covering traversal shapes like ../a). The invariants: the
// handler never panics, every status is 200/400/404/413, rejections
// carry a JSON error, and — the anti-leakage pin — every 200 body is
// byte-identical to one of the two precomputed per-graph references,
// so no name can ever be answered from the other tenant's structure.
func FuzzGraphRouting(f *testing.F) {
	for _, seed := range []string{
		"a", "b", "", ".", "..", "../a", "a/b", "a\\b",
		"café", "%61", "%2e%2e", "a%00b", "a b",
		strings.Repeat("x", 200), "nosuch", "a?x=1", "a#frag",
		"\x00", "‮", "a\n",
	} {
		f.Add(seed)
	}

	mk := func(pairs []uncertain.Pair) *uncertain.Graph {
		g, err := uncertain.New(5, pairs)
		if err != nil {
			f.Fatal(err)
		}
		return g
	}
	ga := mk([]uncertain.Pair{
		{U: 0, V: 1, P: 0.8}, {U: 1, V: 2, P: 0.8}, {U: 2, V: 3, P: 0.8}, {U: 3, V: 4, P: 1},
	})
	gb := mk([]uncertain.Pair{
		{U: 0, V: 1, P: 1}, {U: 0, V: 2, P: 1}, {U: 0, V: 3, P: 1}, {U: 0, V: 4, P: 0.5},
	})
	srv := &Server{
		Worlds: 8, MaxWorlds: 32, MaxQueries: 16, Workers: 1, Seed: 1,
		// One graph resident at a time: every a/b alternation evicts.
		GlobalMemBudget: ga.FootprintBytes() + ga.FootprintBytes()/2,
	}
	for name, g := range map[string]*uncertain.Graph{"a": ga, "b": gb} {
		if _, err := srv.PublishGraph(name, g, GraphConfig{}); err != nil {
			f.Fatal(err)
		}
	}
	handler := srv.Handler()
	const query = "/reliability?s=0&t=3"

	// Per-graph reference bodies: determinism (and evict/reload bit-
	// identity) make these the only legal 200 responses for the fuzzed
	// query, whichever name shape reached them.
	ref := map[string]string{}
	for _, name := range []string{"a", "b"} {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/graphs/"+name+query, nil))
		if rec.Code != http.StatusOK {
			f.Fatalf("reference request for %q: status %d: %s", name, rec.Code, rec.Body.Bytes())
		}
		ref[name] = rec.Body.String()
	}

	check := func(t *testing.T, target string) {
		req, err := http.NewRequest("GET", "http://qserve.test"+target, nil)
		if err != nil {
			return // not a parseable URL; nothing reaches the handler
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
			var resp BatchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 with non-JSON body for %q: %v", target, err)
			}
			if len(resp.Results) == 0 {
				// A raw name with a '?' truncates the path and lands on
				// a stats/list endpoint — a legal 200 that is not a
				// query answer, so the leakage pin does not apply.
				return
			}
			want, ok := ref[resp.Graph]
			if !ok {
				t.Fatalf("200 for %q served unknown graph %q", target, resp.Graph)
			}
			if rec.Body.String() != want {
				t.Fatalf("cross-graph leakage for %q: got\n%s\nwant %q's reference\n%s",
					target, rec.Body.Bytes(), resp.Graph, want)
			}
		case http.StatusBadRequest, http.StatusNotFound, http.StatusRequestEntityTooLarge:
			var e errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("rejection without a JSON error for %q: %d %s", target, rec.Code, rec.Body.Bytes())
			}
		default:
			t.Fatalf("unexpected status %d for %q: %s", rec.Code, target, rec.Body.Bytes())
		}
	}

	f.Fuzz(func(t *testing.T, name string) {
		check(t, "/graphs/"+url.PathEscape(name)+query)
		check(t, "/graphs/"+name+query) // raw: traversal/extra-segment shapes
	})
}

// cacheKeyNorm is the semantic content resultCacheKey must be a
// bijection over: two valid requests map to the same key exactly when
// their fully resolved forms agree. Tolerance is normalized to its
// float bits — exactly the equality the key uses — and the query list
// to a rendering with separators unrelated to the key's, so a
// separator-injection bug in the key cannot hide in the norm too.
type cacheKeyNorm struct {
	name    string
	worlds  int
	seed    int64
	tolBits uint64
	queries string
}

// FuzzResultCacheKey fuzzes the cache key's canonicalization and
// injectivity: semantically equal request bodies — whatever their JSON
// field order, whitespace, or default-vs-explicit fields — must
// collide, any semantic difference (ids, k, ops, worlds, tolerance,
// seed, graph name) must not, and nothing panics on hostile input,
// including graph names containing the key's separator byte.
func FuzzResultCacheKey(f *testing.F) {
	const q1 = `{"op":"reliability","s":0,"t":4}`
	f.Add("g", "g", `{"queries":[`+q1+`]}`, `{"queries":[{"t":4,"s":0,"op":"reliability"}]}`) // field order
	f.Add("g", "g", `{"queries":[`+q1+`]}`, ` {  "queries" : [ `+q1+` ] } `)                  // whitespace
	f.Add("g", "g", `{"worlds":400,"queries":[`+q1+`]}`, `{"queries":[`+q1+`]}`)              // explicit default worlds
	f.Add("g", "g", `{"tolerance":0,"queries":[`+q1+`]}`, `{"queries":[`+q1+`]}`)             // explicit default tolerance
	f.Add("g", "g", `{"queries":[`+q1+`]}`, `{"queries":[{"op":"reliability","s":0,"t":3}]}`) // different target
	f.Add("g", "g", `{"queries":[`+q1+`]}`, `{"queries":[{"op":"distance","s":0,"t":4}]}`)    // different op
	f.Add("g", "g", `{"queries":[{"op":"knn","s":0,"k":2}]}`, `{"queries":[{"op":"knn","s":0,"k":3}]}`)
	f.Add("g", "g", `{"worlds":16,"queries":[`+q1+`]}`, `{"worlds":17,"queries":[`+q1+`]}`)
	f.Add("g", "g", `{"seed":7,"queries":[`+q1+`]}`, `{"queries":[`+q1+`]}`)
	f.Add("g", "h", `{"queries":[`+q1+`]}`, `{"queries":[`+q1+`]}`)   // different graphs
	f.Add("a|b", "a", `{"queries":[`+q1+`]}`, `{"queries":[`+q1+`]}`) // separator in the name
	f.Add("g|0", "g", `{"worlds":16,"queries":[`+q1+`]}`, `{"queries":[`+q1+`]}`)
	f.Add("café", "café", `{"queries":[`+q1+`]}`, `{"queries":[`+q1+`]}`)

	// The derivation context: a 5-vertex graph with no per-graph
	// overrides. Generation is held fixed — its role in the key is
	// pinned by TestCacheInvalidatedOnRepublish.
	srv := &Server{Worlds: 400, Seed: 11, Workers: 1}
	const vertices = 5
	cfg := GraphConfig{}

	decode := func(body string) (*BatchRequest, bool) {
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		var req BatchRequest
		if err := dec.Decode(&req); err != nil {
			return nil, false
		}
		if err := srv.validate(vertices, cfg, &req); err != nil {
			return nil, false
		}
		return &req, true
	}
	derive := func(name string, req *BatchRequest) (string, cacheKeyNorm) {
		worlds := srv.resolveWorlds(cfg, req.Worlds)
		seed := srv.requestSeed(name, req, worlds)
		tol := srv.effTolerance(cfg)
		if req.Tolerance != nil {
			tol = *req.Tolerance
		}
		var qs strings.Builder
		for _, q := range req.Queries {
			fmt.Fprintf(&qs, "<%s,%d,%d,%d>", q.Op, q.S, q.T, q.K)
		}
		key := resultCacheKey(name, 1, worlds, seed, tol, req.Queries)
		return key, cacheKeyNorm{name, worlds, seed, math.Float64bits(tol), qs.String()}
	}

	f.Fuzz(func(t *testing.T, name1, name2, a, b string) {
		if validateGraphName(name1) != nil || validateGraphName(name2) != nil {
			return
		}
		ra, ok := decode(a)
		if !ok {
			return
		}
		rb, ok := decode(b)
		if !ok {
			return
		}
		k1, n1 := derive(name1, ra)
		k2, n2 := derive(name2, rb)
		if n1 == n2 && k1 != k2 {
			t.Fatalf("semantically equal requests got distinct keys:\n%q (%q)\n%q (%q)\nnorm %+v", a, k1, b, k2, n1)
		}
		if n1 != n2 && k1 == k2 {
			t.Fatalf("distinct requests collide on key %q:\n%q on %q (norm %+v)\n%q on %q (norm %+v)",
				k1, a, name1, n1, b, name2, n2)
		}
	})
}
