package qserve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// slowCachedServer hosts one n-vertex benchGraph on a cache-enabled
// server: big enough that batch runs take long enough for concurrent
// requests to overlap deliberately.
func slowCachedServer(t *testing.T, n int) (*Server, *httptest.Server) {
	t.Helper()
	srv := &Server{Worlds: 400, Workers: 1, Seed: 3, ResultCacheBudget: DefaultResultCacheBudget}
	if _, err := srv.PublishGraph("big", benchGraph(t, n), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// asyncPost fires a batch request on its own goroutine; the returned
// function joins it (goroutine-safe: no t.Fatal off the test
// goroutine).
func asyncPost(url, body string) func() (int, []byte, error) {
	type result struct {
		status int
		body   []byte
		err    error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			ch <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		ch <- result{resp.StatusCode, b, err}
	}()
	return func() (int, []byte, error) {
		r := <-ch
		return r.status, r.body, r.err
	}
}

// waitForStats polls GET /graphs until pred accepts the result-cache
// stats (the deadline failing the test).
func waitForStats(t *testing.T, baseURL string, pred func(ResultCacheStats) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if pred(cacheStatsOf(t, baseURL)) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s (stats %+v)", what, cacheStatsOf(t, baseURL))
}

// TestSingleFlightCoalesces is the race exercise of the single-flight
// layer (run it under -race): N concurrent identical requests plus N
// near-identical ones (same stream, different tolerance) produce
// exactly one computation per distinct key, every response within a
// group byte-identical, whatever the interleaving — late arrivals
// either join the flight or hit the cache it filled.
func TestSingleFlightCoalesces(t *testing.T) {
	_, ts := slowCachedServer(t, 300)
	const queries = `"queries":[{"op":"reliability","s":0,"t":150},{"op":"distance","s":1,"t":200}]`
	const ident = `{"worlds":600,` + queries + `}`
	const tolVariant = `{"worlds":600,"tolerance":0.5,` + queries + `}`
	url := ts.URL + "/graphs/big/batch"

	const n = 8
	joins := make([]func() (int, []byte, error), 0, 2*n)
	for i := 0; i < 2*n; i++ {
		body := ident
		if i%2 == 1 {
			body = tolVariant
		}
		joins = append(joins, asyncPost(url, body))
	}

	var identBodies, tolBodies [][]byte
	for i, join := range joins {
		status, body, err := join()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, body)
		}
		if i%2 == 0 {
			identBodies = append(identBodies, body)
		} else {
			tolBodies = append(tolBodies, body)
		}
	}
	for name, group := range map[string][][]byte{"identical": identBodies, "tolerance": tolBodies} {
		for i, b := range group {
			if !bytes.Equal(b, group[0]) {
				t.Errorf("%s request %d diverges:\n%s\nvs\n%s", name, i, b, group[0])
			}
		}
	}

	st := cacheStatsOf(t, ts.URL)
	if st.Computations != 2 {
		t.Errorf("computations = %d over %d requests with 2 distinct keys, want 2", st.Computations, 2*n)
	}
	if st.Hits+st.Coalesced != 2*n-2 {
		t.Errorf("hits %d + coalesced %d != %d non-leader requests", st.Hits, st.Coalesced, 2*n-2)
	}

	// And the coalesced answer is the recomputation's answer: a fresh
	// cache-disabled server agrees byte-for-byte.
	ref := &Server{Worlds: 400, Workers: 1, Seed: 3}
	if _, err := ref.PublishGraph("big", benchGraph(t, 300), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	tsRef := httptest.NewServer(ref.Handler())
	t.Cleanup(tsRef.Close)
	_, want := postBody(t, tsRef.URL+"/graphs/big/batch", ident)
	if !bytes.Equal(identBodies[0], want) {
		t.Errorf("coalesced answer diverges from fresh recomputation:\n%s\nvs\n%s", identBodies[0], want)
	}
}

// TestSharedWorldStreamCohort forces the cohort path: a long
// fixed-worlds run holds the stream while three tolerance-variant
// requests (distinct cache keys, same stream key) queue behind it;
// they must be drafted into one shared run and still answer
// byte-identically to solo recomputation on a cache-disabled server.
func TestSharedWorldStreamCohort(t *testing.T) {
	const n = 1000
	_, ts := slowCachedServer(t, n)
	url := ts.URL + "/graphs/big/batch"
	const queries = `"queries":[{"op":"reliability","s":0,"t":500}]`
	slow := `{"worlds":3000,"tolerance":0,` + queries + `}`
	variants := []string{
		`{"worlds":3000,"tolerance":0.2,` + queries + `}`,
		`{"worlds":3000,"tolerance":0.3,` + queries + `}`,
		`{"worlds":3000,"tolerance":0.4,` + queries + `}`,
	}

	joinSlow := asyncPost(url, slow)
	// Wait until the slow flight's computation has actually started, so
	// the variants are guaranteed to arrive mid-run and queue.
	waitForStats(t, ts.URL, func(st ResultCacheStats) bool { return st.Computations >= 1 }, "the slow flight to start")
	joins := make([]func() (int, []byte, error), len(variants))
	for i, body := range variants {
		joins[i] = asyncPost(url, body)
	}

	bodies := make([][]byte, len(variants))
	for i, join := range joins {
		status, body, err := join()
		if err != nil || status != http.StatusOK {
			t.Fatalf("variant %d: status %d err %v: %s", i, status, err, body)
		}
		bodies[i] = body
	}
	if status, body, err := joinSlow(); err != nil || status != http.StatusOK {
		t.Fatalf("slow request: status %d err %v: %s", status, err, body)
	}

	st := cacheStatsOf(t, ts.URL)
	if st.SharedRuns < 1 || st.SharedBatches < 2 {
		t.Errorf("shared runs %d / batches %d: the cohort never shared a stream", st.SharedRuns, st.SharedBatches)
	}

	// Shared execution must be invisible in the answers.
	ref := &Server{Worlds: 400, Workers: 1, Seed: 3}
	if _, err := ref.PublishGraph("big", benchGraph(t, n), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	tsRef := httptest.NewServer(ref.Handler())
	t.Cleanup(tsRef.Close)
	for i, body := range variants {
		_, want := postBody(t, tsRef.URL+"/graphs/big/batch", body)
		if !bytes.Equal(bodies[i], want) {
			t.Errorf("shared-run variant %d diverges from solo recomputation:\n%s\nvs\n%s", i, bodies[i], want)
		}
	}
}

// TestAbandonedFlightStopsAndGoroutinesSettle pins mid-flight
// cancellation: when the only attached request drops, the flight's
// computation is cancelled, nothing is cached, the goroutine count
// returns to its pre-request baseline, and the same request afterwards
// recomputes a correct answer.
func TestAbandonedFlightStopsAndGoroutinesSettle(t *testing.T) {
	const n = 1000
	_, ts := slowCachedServer(t, n)
	url := ts.URL + "/graphs/big/batch"
	const body = `{"worlds":6000,"tolerance":0,"queries":[{"op":"reliability","s":0,"t":500}]}`

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	waitForStats(t, ts.URL, func(st ResultCacheStats) bool { return st.Computations >= 1 }, "the flight to start")
	cancel()
	if err := <-done; err == nil {
		t.Error("cancelled request completed with a response")
	}

	// The abandoned flight and its run wind down; no goroutine leaks.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline+3 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+3 {
		t.Errorf("goroutines %d after cancellation, baseline was %d", got, baseline)
	}
	if st := cacheStatsOf(t, ts.URL); st.Entries != 0 {
		t.Errorf("cancelled flight stored %d cache entries", st.Entries)
	}

	// The identical request recomputes from scratch and matches the
	// cache-disabled reference: errors and aborts never stick.
	status, got := postBody(t, url, body)
	if status != http.StatusOK {
		t.Fatalf("post-cancel request: status %d: %s", status, got)
	}
	ref := &Server{Worlds: 400, Workers: 1, Seed: 3}
	if _, err := ref.PublishGraph("big", benchGraph(t, n), GraphConfig{}); err != nil {
		t.Fatal(err)
	}
	tsRef := httptest.NewServer(ref.Handler())
	t.Cleanup(tsRef.Close)
	if _, want := postBody(t, tsRef.URL+"/graphs/big/batch", body); !bytes.Equal(got, want) {
		t.Errorf("post-cancel answer diverges from fresh recomputation:\n%s\nvs\n%s", got, want)
	}
}
