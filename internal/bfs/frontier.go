package bfs

// Direction-optimizing frontier traversal (Beamer et al., SC'12; the
// Ligra/GBBS edge-map formulation): one possible world's BFS spread
// across cores, complementing the across-worlds parallelism the rest
// of the engine already has.
//
// The traversal is level-synchronous. Each level is an edge-map over
// fixed 512-wide chunks (the same deterministic chunk discipline the
// adversary entropy scan established): chunk boundaries depend only on
// the input size, never on the worker count or the schedule. In push
// direction the chunks tile the sparse frontier list and discovery is
// a CAS on the distance slot, so exactly one worker wins each vertex;
// in pull direction the chunks tile the vertex range and each chunk
// owns its vertices' distance slots and bitmap words outright (512 is
// a multiple of 64), so no two workers ever write the same word.
//
// Determinism argument: BFS distances are a function of the level sets
// alone — every vertex discovered in level k has distance k no matter
// which in-level edge found it first — and the level sets are fixed by
// the graph and source. The per-level totals that drive the direction
// heuristic (frontier size, frontier out-arc count, targets resolved)
// are sums of per-chunk integers, so they too are schedule-independent.
// Hence the resulting distance array, the visited count and the switch
// count are bit-identical for every worker count, including the
// sequential walk (pinned by the property tests in frontier_test.go).

import (
	mbits "math/bits"
	"sync/atomic"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/parallel"
)

// direction forces one traversal mode, for the push-vs-pull benchmarks;
// the zero value lets the density heuristic choose per level.
type direction uint8

const (
	dirAuto direction = iota
	dirPushOnly
	dirPullOnly
)

const (
	// frontierChunk is the fixed work-decomposition width, matching the
	// adversary scan's 512-element discipline. It must stay a multiple
	// of 64: pull chunks then own whole bitmap words, so next-frontier
	// bits are set with plain stores.
	frontierChunk = 512

	// pullDen: switch to pull when the frontier's out-arc count exceeds
	// DirectedEdgeCount/pullDen — with 2m directed arcs that is the
	// ISSUE's "~m/20" in undirected-edge units, the same order as
	// Beamer's alpha. A dense frontier reaches most unvisited vertices
	// within a hop or two, so scanning the unvisited side and stopping
	// at the first frontier neighbor examines far fewer arcs.
	pullDen = 20

	// pushDen: switch back to push when the frontier shrinks below
	// NumVertices/pushDen — a sparse frontier makes the pull side's
	// full vertex sweep the dominant cost again.
	pushDen = 20
)

// orBit sets bit v in words with an atomic read-or-CAS loop. (The
// package-level atomic.OrUint64 needs a go directive >= 1.23; this
// module pins 1.22.) Only the CAS winner for a vertex calls orBit on
// it, so the loop retries only on word-level contention.
func orBit(words []uint64, v int32) {
	w := &words[v>>6]
	mask := uint64(1) << (uint(v) & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// appendBits appends the set bit positions of words to dst in
// ascending order — the deterministic sparse-frontier rebuild.
func appendBits(dst []int32, words []uint64) []int32 {
	for w, word := range words {
		for word != 0 {
			b := mbits.TrailingZeros64(word)
			dst = append(dst, int32(w<<6|b))
			word &= word - 1
		}
	}
	return dst
}

// ensureFrontier grows and clears the frontier buffers for an n-vertex
// walk; warm calls allocate nothing.
func (s *Scratch) ensureFrontier(n int) {
	words := (n + 63) / 64
	if cap(s.currBits) < words {
		s.currBits = make([]uint64, words)
		s.nextBits = make([]uint64, words)
	}
	s.currBits = s.currBits[:words]
	s.nextBits = s.nextBits[:words]
	for i := range s.currBits {
		s.currBits[i] = 0
	}
	for i := range s.nextBits {
		s.nextBits[i] = 0
	}
	if cap(s.curr) < n {
		s.curr = make([]int32, 0, n)
	}
}

// frontierWalk runs the direction-optimizing level-synchronous
// traversal from src on up to `workers` goroutines. On entry s.dist
// must hold -1 everywhere except dist[src] == 0. When remaining > 0
// the walk is target-resolved: s.mark flags that many distinct
// non-source targets and the walk stops at the first level barrier
// where all of them are resolved (the sequential walk stops mid-level,
// so non-target entries may differ — target entries cannot, because
// BFS fixes a distance at discovery). s.visited and s.switches are set
// on return.
func (s *Scratch) frontierWalk(g *graph.Graph, src, workers, remaining int) {
	n := g.NumVertices()
	s.ensureFrontier(n)
	dist := s.dist
	mark := s.mark
	tracking := remaining > 0

	curr := append(s.curr[:0], int32(src))
	currBits, nextBits := s.currBits, s.nextBits
	currBits[src>>6] |= 1 << (uint(src) & 63)
	currSize := 1
	currEdges := int64(g.Degree(src))
	dirEdges := g.DirectedEdgeCount()
	visited := 1
	usePull := s.forceDir == dirPullOnly
	listStale := false // curr mirrors currBits unless a level elapsed
	s.switches = 0

	for level := int32(1); currSize > 0 && (!tracking || remaining > 0); level++ {
		wantPull := usePull
		switch s.forceDir {
		case dirPushOnly:
			wantPull = false
		case dirPullOnly:
			wantPull = true
		default:
			if !usePull && currEdges > dirEdges/pullDen {
				wantPull = true
			} else if usePull && currSize < n/pushDen {
				wantPull = false
			}
		}
		if wantPull != usePull {
			s.switches++
			usePull = wantPull
		}

		var nextSize, nextEdges, hits int64
		if usePull {
			// Pull: every unvisited vertex scans its arcs for a current
			// frontier member. Chunks own their distance slots and
			// next-bitmap words, so all stores are plain; currBits is
			// read-only this level.
			parallel.ForChunks(n, frontierChunk, workers, func(lo, hi int) {
				var size, edges, hit int64
				for v := lo; v < hi; v++ {
					if dist[v] >= 0 {
						continue
					}
					for _, u := range g.Neighbors(v) {
						if currBits[u>>6]&(1<<(uint(u)&63)) == 0 {
							continue
						}
						dist[v] = level
						nextBits[v>>6] |= 1 << (uint(v) & 63)
						size++
						edges += int64(g.Degree(v))
						if tracking && mark[v] {
							hit++
						}
						break
					}
				}
				atomic.AddInt64(&nextSize, size)
				atomic.AddInt64(&nextEdges, edges)
				atomic.AddInt64(&hits, hit)
			})
		} else {
			// Push: the sparse frontier list scans its out-arcs; a CAS
			// on the distance slot arbitrates discovery, and only the
			// winner marks the next-frontier bit.
			if listStale {
				curr = appendBits(curr[:0], currBits)
			}
			parallel.ForChunks(len(curr), frontierChunk, workers, func(lo, hi int) {
				var size, edges, hit int64
				for _, u := range curr[lo:hi] {
					for _, v := range g.Neighbors(int(u)) {
						if atomic.LoadInt32(&dist[v]) >= 0 {
							continue
						}
						if !atomic.CompareAndSwapInt32(&dist[v], -1, level) {
							continue
						}
						orBit(nextBits, v)
						size++
						edges += int64(g.Degree(int(v)))
						if tracking && mark[v] {
							hit++
						}
					}
				}
				atomic.AddInt64(&nextSize, size)
				atomic.AddInt64(&nextEdges, edges)
				atomic.AddInt64(&hits, hit)
			})
		}

		// Level barrier: ForChunks has joined its workers, so the plain
		// reads below (and the next level's plain reads of dist) are
		// ordered after every store above.
		currSize = int(nextSize)
		currEdges = nextEdges
		visited += currSize
		remaining -= int(hits)
		currBits, nextBits = nextBits, currBits
		for i := range nextBits {
			nextBits[i] = 0
		}
		listStale = true
	}

	s.curr = curr[:0]
	s.currBits, s.nextBits = currBits, nextBits
	s.visited = visited
}

// frontierInto runs the frontier engine unconditionally (even at one
// worker) — the entry the push/pull benchmarks drive so forceDir takes
// effect regardless of core count.
func (s *Scratch) frontierInto(g *graph.Graph, src, workers int) []int32 {
	s.ensure(g.NumVertices())
	dist := s.dist
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	s.frontierWalk(g, src, workers, 0)
	return dist
}

// Switches returns how many push<->pull direction changes the most
// recent frontier walk on s made (0 for sequential walks). It feeds
// the frontier-switches/op benchmark metric.
func (s *Scratch) Switches() int { return s.switches }

// FromSourceParallelInto is FromSourceInto with the traversal itself
// parallelized: a direction-optimizing frontier walk on up to
// `workers` goroutines (workers <= 0 means GOMAXPROCS; workers <= 1
// delegates to the sequential walk). The returned distances are
// bit-identical to FromSourceInto for every worker count — see the
// determinism argument at the top of this file. The slice aliases the
// scratch and is valid only until the next call on s.
func (s *Scratch) FromSourceParallelInto(g *graph.Graph, src, workers int) []int32 {
	if workers <= 0 {
		workers = maxProcs()
	}
	if workers <= 1 {
		return s.FromSourceInto(g, src)
	}
	return s.frontierInto(g, src, workers)
}

// FromSourceTargetsParallelInto is FromSourceTargetsInto with the
// traversal parallelized (workers semantics as in
// FromSourceParallelInto). Early exit works in both directions: the
// walk stops at the first level barrier where every target is
// resolved. Target entries are bit-identical to the sequential walk;
// non-target entries hold -1 or their true distance depending on where
// the walk stopped, exactly as the sequential contract allows.
func (s *Scratch) FromSourceTargetsParallelInto(g *graph.Graph, src int, targets []int32, workers int) []int32 {
	if workers <= 0 {
		workers = maxProcs()
	}
	if workers <= 1 {
		return s.FromSourceTargetsInto(g, src, targets)
	}
	n := g.NumVertices()
	s.ensure(n)
	if cap(s.mark) < n {
		s.mark = make([]bool, n)
	}
	mark := s.mark[:n]
	dist := s.dist
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	remaining := 0
	for _, t := range targets {
		if int(t) != src && !mark[t] {
			mark[t] = true
			remaining++
		}
	}
	if remaining == 0 {
		s.visited = 1
	} else {
		s.frontierWalk(g, src, workers, remaining)
	}
	for _, t := range targets {
		mark[t] = false
	}
	return dist
}
