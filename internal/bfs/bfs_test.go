package bfs

import (
	"math"
	"testing"

	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

func TestFromSourcePath(t *testing.T) {
	// 0-1-2-3 path.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	d := FromSource(g, 0)
	want := []int{0, 1, 2, 3}
	for v := range want {
		if d[v] != want[v] {
			t.Errorf("dist(0,%d) = %d, want %d", v, d[v], want[v])
		}
	}
}

func TestFromSourceUnreachable(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}})
	d := FromSource(g, 0)
	if d[2] != -1 || d[3] != -1 {
		t.Errorf("unreachable vertices should be -1, got %v", d)
	}
}

func TestFromSourceIntoMatchesFromSource(t *testing.T) {
	g := gen.HolmeKim(randx.New(6), 300, 3, 0.3)
	s := NewScratch()
	for _, src := range []int{0, 7, 150, 299} {
		want := FromSource(g, src)
		got := s.FromSourceInto(g, src)
		for v := range want {
			if int(got[v]) != want[v] {
				t.Fatalf("src %d: dist[%d] = %d, want %d", src, v, got[v], want[v])
			}
		}
	}
	// Disconnected structure: distances stay -1, across reuse.
	g2 := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}})
	d := s.FromSourceInto(g2, 0)
	if d[0] != 0 || d[1] != 1 || d[2] != -1 || d[3] != -1 {
		t.Errorf("got %v, want [0 1 -1 -1]", d)
	}
}

// TestFromSourceTargetsIntoMatchesFull pins the early-exit contract:
// for every registered target the distance is bit-identical to the
// full walk, across reachable targets, unreachable targets, duplicate
// targets and targets equal to the source.
func TestFromSourceTargetsIntoMatchesFull(t *testing.T) {
	g := gen.HolmeKim(randx.New(6), 300, 3, 0.3)
	s := NewScratch()
	full := NewScratch()
	rng := randx.New(99)
	for _, src := range []int{0, 7, 150, 299} {
		want := append([]int32(nil), full.FromSourceInto(g, src)...)
		for trial := 0; trial < 20; trial++ {
			targets := make([]int32, 1+rng.Intn(6))
			for i := range targets {
				targets[i] = int32(rng.Intn(300))
			}
			if trial%5 == 0 {
				targets = append(targets, int32(src), targets[0]) // src + duplicate
			}
			got := s.FromSourceTargetsInto(g, src, targets)
			for _, tv := range targets {
				if got[tv] != want[tv] {
					t.Fatalf("src %d targets %v: dist[%d] = %d, want %d", src, targets, tv, got[tv], want[tv])
				}
			}
		}
	}
	// A component-disconnected target exhausts the walk and stays -1,
	// and a target list containing only the source terminates at once.
	g2 := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	d := s.FromSourceTargetsInto(g2, 0, []int32{1, 3})
	if d[0] != 0 || d[1] != 1 || d[3] != -1 {
		t.Errorf("disconnected walk: got [%d %d _ %d], want [0 1 _ -1]", d[0], d[1], d[3])
	}
	d = s.FromSourceTargetsInto(g2, 2, []int32{2, 2})
	if d[2] != 0 {
		t.Errorf("self-target walk: dist[2] = %d, want 0", d[2])
	}
}

// TestFromSourceTargetsIntoStopsEarly asserts the exit is real: on a
// long path with the target next to the source, the walk must leave
// the far end untouched (-1), which a full BFS would have reached.
func TestFromSourceTargetsIntoStopsEarly(t *testing.T) {
	n := 1000
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	g := graph.FromEdges(n, edges)
	s := NewScratch()
	d := s.FromSourceTargetsInto(g, 0, []int32{1})
	if d[1] != 1 {
		t.Fatalf("dist[1] = %d, want 1", d[1])
	}
	if d[n-1] != -1 {
		t.Errorf("walk reached the far end (dist[%d] = %d); early exit did not fire", n-1, d[n-1])
	}
}

func TestFromSourceTargetsIntoZeroAllocsWhenWarm(t *testing.T) {
	g := gen.HolmeKim(randx.New(8), 200, 3, 0.3)
	s := NewScratch()
	targets := []int32{13, 44, 170}
	s.FromSourceTargetsInto(g, 0, targets) // grow buffers
	src := 0
	allocs := testing.AllocsPerRun(50, func() {
		s.FromSourceTargetsInto(g, src, targets)
		src = (src + 17) % 200
	})
	if allocs != 0 {
		t.Errorf("warm FromSourceTargetsInto allocates %v times, want 0", allocs)
	}
}

func TestFromSourceIntoZeroAllocsWhenWarm(t *testing.T) {
	g := gen.HolmeKim(randx.New(8), 200, 3, 0.3)
	s := NewScratch()
	s.FromSourceInto(g, 0) // grow buffers
	src := 0
	allocs := testing.AllocsPerRun(50, func() {
		s.FromSourceInto(g, src)
		src = (src + 17) % 200
	})
	if allocs != 0 {
		t.Errorf("warm FromSourceInto allocates %v times, want 0", allocs)
	}
}

func TestDistanceDistributionPath(t *testing.T) {
	// Path on 4 vertices: distances 1x3, 2x2, 3x1.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	d := DistanceDistribution(g)
	want := []float64{0, 3, 2, 1}
	for dist := 1; dist < len(want); dist++ {
		if d.Counts[dist] != want[dist] {
			t.Errorf("count(%d) = %v, want %v", dist, d.Counts[dist], want[dist])
		}
	}
	if d.Disconnected != 0 {
		t.Errorf("Disconnected = %v, want 0", d.Disconnected)
	}
	if d.Diameter() != 3 {
		t.Errorf("Diameter = %d, want 3", d.Diameter())
	}
}

func TestDistanceDistributionDisconnected(t *testing.T) {
	// Two disjoint edges on 4 vertices: 2 pairs at distance 1, 4
	// disconnected pairs.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	d := DistanceDistribution(g)
	if d.Counts[1] != 2 {
		t.Errorf("count(1) = %v, want 2", d.Counts[1])
	}
	if d.Disconnected != 4 {
		t.Errorf("Disconnected = %v, want 4", d.Disconnected)
	}
	if d.TotalPairs() != 6 {
		t.Errorf("TotalPairs = %v, want 6", d.TotalPairs())
	}
}

func TestDistanceDistributionCompleteGraph(t *testing.T) {
	g := gen.ErdosRenyiGNP(randx.New(1), 20, 1)
	d := DistanceDistribution(g)
	if d.Counts[1] != 190 || d.Diameter() != 1 {
		t.Errorf("K20: counts %v", d.Counts)
	}
}

func TestSampledApproximatesExact(t *testing.T) {
	g := gen.HolmeKim(randx.New(2), 800, 3, 0.3)
	exact := DistanceDistribution(g)
	sampled := SampledDistanceDistribution(g, 200, randx.New(3))
	// Average distance from a quarter of sources should be close.
	if math.Abs(exact.AvgDistance()-sampled.AvgDistance()) > 0.15*exact.AvgDistance() {
		t.Errorf("APD exact %v vs sampled %v", exact.AvgDistance(), sampled.AvgDistance())
	}
	// Total pair mass approximately preserved by scaling.
	if math.Abs(exact.ConnectedPairs()-sampled.ConnectedPairs()) > 0.1*exact.ConnectedPairs() {
		t.Errorf("connected pairs exact %v vs sampled %v", exact.ConnectedPairs(), sampled.ConnectedPairs())
	}
}

func TestSampledFallsBackToExact(t *testing.T) {
	g := gen.ErdosRenyiGNM(randx.New(4), 50, 120)
	a := DistanceDistribution(g)
	b := SampledDistanceDistribution(g, 50, randx.New(5))
	for d := range a.Counts {
		if a.Counts[d] != b.Counts[d] {
			t.Fatal("samples >= n should be exact")
		}
	}
}

func TestDistanceDistributionMatchesHandCount(t *testing.T) {
	// Star graph: center at distance 1 from k leaves; leaves pairwise 2.
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	d := DistanceDistribution(g)
	if d.Counts[1] != 4 || d.Counts[2] != 6 {
		t.Errorf("star counts = %v, want [_, 4, 6]", d.Counts)
	}
	if got := d.AvgDistance(); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("star APD = %v, want 1.6", got)
	}
}
