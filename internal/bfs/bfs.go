// Package bfs computes exact shortest-path distance distributions by
// breadth-first search. It is the validation oracle for the HyperANF
// estimator (internal/anf) and the exact path for the small and
// mid-sized graphs used in tests, examples and scaled-down experiments.
package bfs

import (
	"math/rand"
	"runtime"
	"sync"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/stats"
)

// FromSource returns the distances from src to every vertex (-1 for
// unreachable vertices).
func FromSource(g *graph.Graph, src int) []int {
	n := g.NumVertices()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// DistanceDistribution returns the exact distribution of pairwise
// distances by running a BFS from every vertex (O(n*m) time), counting
// each unordered pair once. Sources are processed in parallel.
func DistanceDistribution(g *graph.Graph) stats.DistanceDistribution {
	n := g.NumVertices()
	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	counts, reachable := scan(g, sources)
	// Ordered counts halve to unordered; every pair was seen twice.
	for i := range counts {
		counts[i] /= 2
	}
	totalPairs := float64(n) * float64(n-1) / 2
	return stats.DistanceDistribution{
		Counts:       counts,
		Disconnected: totalPairs - reachable/2,
	}
}

// SampledDistanceDistribution estimates the distance distribution from
// BFS trees of `samples` uniformly chosen sources (the sampling
// approach of Lipton–Naughton cited in §6.3), scaling ordered counts by
// n/samples. With samples >= n it falls back to the exact computation.
func SampledDistanceDistribution(g *graph.Graph, samples int, rng *rand.Rand) stats.DistanceDistribution {
	n := g.NumVertices()
	if samples >= n {
		return DistanceDistribution(g)
	}
	perm := rng.Perm(n)[:samples]
	counts, reachable := scan(g, perm)
	scale := float64(n) / float64(samples) / 2
	for i := range counts {
		counts[i] *= scale
	}
	totalPairs := float64(n) * float64(n-1) / 2
	disconnected := totalPairs - reachable*scale
	if disconnected < 0 {
		disconnected = 0
	}
	return stats.DistanceDistribution{Counts: counts, Disconnected: disconnected}
}

// scan runs BFS from each source and accumulates ordered distance
// counts (source, other) and the number of ordered reachable pairs.
func scan(g *graph.Graph, sources []int) (counts []float64, reachable float64) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers < 1 {
		workers = 1
	}
	type result struct {
		counts    []float64
		reachable float64
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	chunk := (len(sources) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(sources) {
			hi = len(sources)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := make([]float64, 0, 64)
			var reach float64
			for _, src := range sources[lo:hi] {
				for _, d := range FromSource(g, src) {
					if d <= 0 {
						continue
					}
					for d >= len(local) {
						local = append(local, 0)
					}
					local[d]++
					reach++
				}
			}
			results[w] = result{counts: local, reachable: reach}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, r := range results {
		for d, c := range r.counts {
			for d >= len(counts) {
				counts = append(counts, 0)
			}
			counts[d] += c
		}
		reachable += r.reachable
	}
	if counts == nil {
		counts = []float64{0}
	}
	return counts, reachable
}
