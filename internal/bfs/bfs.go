// Package bfs computes exact shortest-path distance distributions by
// breadth-first search. It is the validation oracle for the HyperANF
// estimator (internal/anf) and the exact path for the small and
// mid-sized graphs used in tests, examples and scaled-down experiments.
//
// Two entry styles are provided: the package-level functions
// parallelize the source scan across CPUs (for one-shot evaluation of
// a large graph), while a Scratch runs sequentially against reusable
// dist/queue/count buffers — the shape the possible-world engine wants,
// where worlds are already evaluated in parallel and each worker owns
// one Scratch across its whole run. Both produce bit-identical
// distributions: every count is an exact small integer, so summation
// order cannot perturb the result.
package bfs

import (
	"math/rand"
	"runtime"
	"sync"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/stats"
)

// FromSource returns the distances from src to every vertex (-1 for
// unreachable vertices).
func FromSource(g *graph.Graph, src int) []int {
	n := g.NumVertices()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Scratch holds the per-worker BFS state — distance array, frontier
// queue and distance-count accumulator — so repeated distribution
// computations (one per sampled possible world) allocate nothing once
// the buffers have grown to the graph size.
type Scratch struct {
	dist   []int32
	queue  []int32
	counts []float64
	// mark flags the unresolved targets of a FromSourceTargetsInto
	// walk. It is all-false between calls: each call marks exactly its
	// targets and unmarks them before returning, so no O(n) clear is
	// ever needed.
	mark []bool
	// visited records how many vertices the most recent FromSourceInto
	// or FromSourceTargetsInto walk enqueued (including the source).
	visited int
}

// Visited returns the number of vertices the most recent FromSourceInto
// or FromSourceTargetsInto walk on s enqueued, source included. It
// exists so tests can assert that a target-resolved walk genuinely
// pruned its component scan.
func (s *Scratch) Visited() int { return s.visited }

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

func (s *Scratch) ensure(n int) {
	if cap(s.dist) < n {
		s.dist = make([]int32, n)
		s.queue = make([]int32, 0, n)
	}
	s.dist = s.dist[:n]
}

// FromSourceInto computes the distances from src to every vertex (-1
// for unreachable vertices) into the scratch's distance buffer and
// returns it. The slice aliases the scratch and is valid only until
// the next call on s; once the buffers have grown to the graph size,
// repeated calls allocate nothing. This is the single-source entry the
// batched query engine drives: one BFS per distinct source per sampled
// world, shared across every query with that source.
func (s *Scratch) FromSourceInto(g *graph.Graph, src int) []int32 {
	s.ensure(g.NumVertices())
	dist := s.dist
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := append(s.queue[:0], int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u] + 1
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du
				queue = append(queue, v)
			}
		}
	}
	s.visited = len(queue)
	s.queue = queue[:0]
	return dist
}

// FromSourceTargetsInto is FromSourceInto restricted to a target set:
// the walk stops as soon as every vertex in targets has been assigned
// its distance, so queries over close targets cost a frontier
// expansion instead of a whole-component scan. Only the entries for
// src and the targets are meaningful in the returned slice; any other
// vertex holds -1 or its true distance depending on where the walk
// stopped. The target entries are bit-identical to a full
// FromSourceInto walk — BFS assigns final distances at discovery, so
// stopping after the last target is discovered cannot change them, and
// a target still -1 when the frontier exhausts is genuinely
// unreachable. Duplicate targets and targets equal to src are allowed.
// The slice aliases the scratch and is valid only until the next call
// on s; warm calls allocate nothing.
func (s *Scratch) FromSourceTargetsInto(g *graph.Graph, src int, targets []int32) []int32 {
	n := g.NumVertices()
	s.ensure(n)
	if cap(s.mark) < n {
		s.mark = make([]bool, n)
	}
	mark := s.mark[:n]
	dist := s.dist
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	remaining := 0
	for _, t := range targets {
		if int(t) != src && !mark[t] {
			mark[t] = true
			remaining++
		}
	}
	queue := append(s.queue[:0], int32(src))
scan:
	for head := 0; head < len(queue) && remaining > 0; head++ {
		u := queue[head]
		du := dist[u] + 1
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du
				queue = append(queue, v)
				if mark[v] {
					if remaining--; remaining == 0 {
						break scan
					}
				}
			}
		}
	}
	for _, t := range targets {
		mark[t] = false
	}
	s.visited = len(queue)
	s.queue = queue[:0]
	return dist
}

// run accumulates the ordered distance counts of a BFS from src into
// s.counts and returns the number of vertices reached (excluding src).
func (s *Scratch) run(g *graph.Graph, src int) float64 {
	dist := s.dist
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := append(s.queue[:0], int32(src))
	var reach float64
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u] + 1
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du
				queue = append(queue, v)
				for int(du) >= len(s.counts) {
					s.counts = append(s.counts, 0)
				}
				s.counts[du]++
				reach++
			}
		}
	}
	s.queue = queue[:0]
	return reach
}

// reset prepares the count accumulator for a fresh distribution.
func (s *Scratch) reset() {
	s.counts = append(s.counts[:0], 0)
}

// DistanceDistribution computes the exact pairwise distance
// distribution sequentially, reusing s's buffers. The returned Counts
// alias the scratch and are valid only until the next call on s.
func (s *Scratch) DistanceDistribution(g *graph.Graph) stats.DistanceDistribution {
	n := g.NumVertices()
	s.ensure(n)
	s.reset()
	var reachable float64
	for src := 0; src < n; src++ {
		reachable += s.run(g, src)
	}
	for i := range s.counts {
		s.counts[i] /= 2
	}
	totalPairs := float64(n) * float64(n-1) / 2
	return stats.DistanceDistribution{
		Counts:       s.counts,
		Disconnected: totalPairs - reachable/2,
	}
}

// SampledDistanceDistribution is the scratch form of the package-level
// estimator; the returned Counts alias the scratch.
func (s *Scratch) SampledDistanceDistribution(g *graph.Graph, samples int, rng *rand.Rand) stats.DistanceDistribution {
	n := g.NumVertices()
	if samples >= n {
		return s.DistanceDistribution(g)
	}
	perm := rng.Perm(n)[:samples]
	s.ensure(n)
	s.reset()
	var reachable float64
	for _, src := range perm {
		reachable += s.run(g, src)
	}
	scale := float64(n) / float64(samples) / 2
	for i := range s.counts {
		s.counts[i] *= scale
	}
	totalPairs := float64(n) * float64(n-1) / 2
	disconnected := totalPairs - reachable*scale
	if disconnected < 0 {
		disconnected = 0
	}
	return stats.DistanceDistribution{Counts: s.counts, Disconnected: disconnected}
}

// DistanceDistribution returns the exact distribution of pairwise
// distances by running a BFS from every vertex (O(n*m) time), counting
// each unordered pair once. Sources are processed in parallel.
func DistanceDistribution(g *graph.Graph) stats.DistanceDistribution {
	n := g.NumVertices()
	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	counts, reachable := scan(g, sources)
	// Ordered counts halve to unordered; every pair was seen twice.
	for i := range counts {
		counts[i] /= 2
	}
	totalPairs := float64(n) * float64(n-1) / 2
	return stats.DistanceDistribution{
		Counts:       counts,
		Disconnected: totalPairs - reachable/2,
	}
}

// SampledDistanceDistribution estimates the distance distribution from
// BFS trees of `samples` uniformly chosen sources (the sampling
// approach of Lipton–Naughton cited in §6.3), scaling ordered counts by
// n/samples. With samples >= n it falls back to the exact computation.
func SampledDistanceDistribution(g *graph.Graph, samples int, rng *rand.Rand) stats.DistanceDistribution {
	n := g.NumVertices()
	if samples >= n {
		return DistanceDistribution(g)
	}
	perm := rng.Perm(n)[:samples]
	counts, reachable := scan(g, perm)
	scale := float64(n) / float64(samples) / 2
	for i := range counts {
		counts[i] *= scale
	}
	totalPairs := float64(n) * float64(n-1) / 2
	disconnected := totalPairs - reachable*scale
	if disconnected < 0 {
		disconnected = 0
	}
	return stats.DistanceDistribution{Counts: counts, Disconnected: disconnected}
}

// scan runs BFS from each source and accumulates ordered distance
// counts (source, other) and the number of ordered reachable pairs.
// Each worker owns one Scratch for its whole source range; partial
// counts are exact integers, so the merge is order-insensitive.
func scan(g *graph.Graph, sources []int) (counts []float64, reachable float64) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers < 1 {
		workers = 1
	}
	type result struct {
		counts    []float64
		reachable float64
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	chunk := (len(sources) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(sources) {
			hi = len(sources)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := NewScratch()
			s.ensure(g.NumVertices())
			var reach float64
			for _, src := range sources[lo:hi] {
				reach += s.run(g, src)
			}
			results[w] = result{counts: s.counts, reachable: reach}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, r := range results {
		for d, c := range r.counts {
			for d >= len(counts) {
				counts = append(counts, 0)
			}
			counts[d] += c
		}
		reachable += r.reachable
	}
	if counts == nil {
		counts = []float64{0}
	}
	return counts, reachable
}
