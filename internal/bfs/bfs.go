// Package bfs computes exact shortest-path distance distributions by
// breadth-first search. It is the validation oracle for the HyperANF
// estimator (internal/anf) and the exact path for the small and
// mid-sized graphs used in tests, examples and scaled-down experiments.
//
// Two entry styles are provided: the package-level functions
// parallelize the source scan (for one-shot evaluation of a large
// graph; the *Workers variants take an explicit budget), while a
// Scratch runs against reusable dist/queue/count buffers — the shape
// the possible-world engine wants, where each worker owns one Scratch
// across its whole run. Every entry produces bit-identical
// distributions for every worker count: counts are exact small
// integers, so summation order cannot perturb the result.
//
// Two axes of parallelism compose: scanSources spreads many sources
// over workers (across-source), and the frontier engine (frontier.go)
// spreads one traversal over workers (within-source,
// direction-optimizing push/pull) for the regime where sources are
// scarcer than cores.
package bfs

import (
	"context"
	"math/rand"
	"runtime"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/parallel"
	"uncertaingraph/internal/stats"
)

// maxProcs is the workers default when a caller passes <= 0.
func maxProcs() int { return runtime.GOMAXPROCS(0) }

// FromSource returns the distances from src to every vertex (-1 for
// unreachable vertices). It is a convenience wrapper over the single
// traversal core (Scratch.FromSourceInto) that widens the result to
// []int; allocation-sensitive callers use a Scratch directly.
func FromSource(g *graph.Graph, src int) []int {
	d32 := NewScratch().FromSourceInto(g, src)
	dist := make([]int, len(d32))
	for i, d := range d32 {
		dist[i] = int(d)
	}
	return dist
}

// Scratch holds the per-worker BFS state — distance array, frontier
// queue and distance-count accumulator — so repeated distribution
// computations (one per sampled possible world) allocate nothing once
// the buffers have grown to the graph size.
type Scratch struct {
	dist   []int32
	queue  []int32
	counts []float64
	// mark flags the unresolved targets of a FromSourceTargetsInto
	// walk. It is all-false between calls: each call marks exactly its
	// targets and unmarks them before returning, so no O(n) clear is
	// ever needed.
	mark []bool
	// visited records how many vertices the most recent FromSourceInto
	// or FromSourceTargetsInto walk enqueued (including the source).
	visited int

	// Frontier-engine state (frontier.go): the sparse frontier list,
	// the current/next level bitmaps, the direction-switch counter of
	// the last walk, and a bench/test knob forcing one direction.
	curr     []int32
	currBits []uint64
	nextBits []uint64
	switches int
	forceDir direction

	// pool holds the extra per-worker scratches scanSources spins up
	// when a distance-distribution scan runs with workers > 1; worker 0
	// always uses s itself, so the sequential path touches no pool.
	pool []*Scratch
}

// Visited returns the number of vertices the most recent FromSourceInto
// or FromSourceTargetsInto walk on s enqueued, source included. It
// exists so tests can assert that a target-resolved walk genuinely
// pruned its component scan.
func (s *Scratch) Visited() int { return s.visited }

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

func (s *Scratch) ensure(n int) {
	if cap(s.dist) < n {
		s.dist = make([]int32, n)
		s.queue = make([]int32, 0, n)
	}
	s.dist = s.dist[:n]
}

// FromSourceInto computes the distances from src to every vertex (-1
// for unreachable vertices) into the scratch's distance buffer and
// returns it. The slice aliases the scratch and is valid only until
// the next call on s; once the buffers have grown to the graph size,
// repeated calls allocate nothing. This is the single-source entry the
// batched query engine drives: one BFS per distinct source per sampled
// world, shared across every query with that source.
func (s *Scratch) FromSourceInto(g *graph.Graph, src int) []int32 {
	s.ensure(g.NumVertices())
	dist := s.dist
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := append(s.queue[:0], int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u] + 1
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du
				queue = append(queue, v)
			}
		}
	}
	s.visited = len(queue)
	s.queue = queue[:0]
	return dist
}

// FromSourceTargetsInto is FromSourceInto restricted to a target set:
// the walk stops as soon as every vertex in targets has been assigned
// its distance, so queries over close targets cost a frontier
// expansion instead of a whole-component scan. Only the entries for
// src and the targets are meaningful in the returned slice; any other
// vertex holds -1 or its true distance depending on where the walk
// stopped. The target entries are bit-identical to a full
// FromSourceInto walk — BFS assigns final distances at discovery, so
// stopping after the last target is discovered cannot change them, and
// a target still -1 when the frontier exhausts is genuinely
// unreachable. Duplicate targets and targets equal to src are allowed.
// The slice aliases the scratch and is valid only until the next call
// on s; warm calls allocate nothing.
func (s *Scratch) FromSourceTargetsInto(g *graph.Graph, src int, targets []int32) []int32 {
	n := g.NumVertices()
	s.ensure(n)
	if cap(s.mark) < n {
		s.mark = make([]bool, n)
	}
	mark := s.mark[:n]
	dist := s.dist
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	remaining := 0
	for _, t := range targets {
		if int(t) != src && !mark[t] {
			mark[t] = true
			remaining++
		}
	}
	queue := append(s.queue[:0], int32(src))
scan:
	for head := 0; head < len(queue) && remaining > 0; head++ {
		u := queue[head]
		du := dist[u] + 1
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du
				queue = append(queue, v)
				if mark[v] {
					if remaining--; remaining == 0 {
						break scan
					}
				}
			}
		}
	}
	for _, t := range targets {
		mark[t] = false
	}
	s.visited = len(queue)
	s.queue = queue[:0]
	return dist
}

// run accumulates the ordered distance counts of a BFS from src into
// s.counts and returns the number of vertices reached (excluding src).
func (s *Scratch) run(g *graph.Graph, src int) float64 {
	dist := s.dist
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := append(s.queue[:0], int32(src))
	var reach float64
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u] + 1
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du
				queue = append(queue, v)
				for int(du) >= len(s.counts) {
					s.counts = append(s.counts, 0)
				}
				s.counts[du]++
				reach++
			}
		}
	}
	s.queue = queue[:0]
	return reach
}

// reset prepares the count accumulator for a fresh distribution.
func (s *Scratch) reset() {
	s.counts = append(s.counts[:0], 0)
}

// scanSources runs BFS from nsrc sources (sources nil means vertices
// 0..nsrc-1) and accumulates ordered distance counts into s.counts,
// returning the number of ordered reachable pairs. With workers > 1
// the sources are dealt out in fixed 512-wide chunks to per-worker
// scratches (worker 0 reuses s; the rest come from s.pool, grown once
// and kept warm) and the per-worker counts are merged afterwards.
// Chunk boundaries depend only on nsrc, every count is an exact small
// integer, and the merge is order-insensitive — so the result is
// bit-identical to the sequential scan for every worker count.
func (s *Scratch) scanSources(g *graph.Graph, sources []int32, nsrc, workers int) float64 {
	s.ensure(g.NumVertices())
	s.reset()
	if workers > nsrc {
		workers = nsrc
	}
	if workers < 1 {
		workers = 1
	}
	srcAt := func(i int) int {
		if sources == nil {
			return i
		}
		return int(sources[i])
	}
	if workers == 1 {
		var reach float64
		for i := 0; i < nsrc; i++ {
			reach += s.run(g, srcAt(i))
		}
		return reach
	}
	for len(s.pool) < workers-1 {
		s.pool = append(s.pool, NewScratch())
	}
	nchunks := (nsrc + frontierChunk - 1) / frontierChunk
	reach := make([]float64, workers)
	prepared := make([]bool, workers)
	parallel.ForWorkers(context.Background(), nchunks, workers, func(w, c int) {
		sc := s
		if w > 0 {
			sc = s.pool[w-1]
		}
		if !prepared[w] {
			sc.ensure(g.NumVertices())
			sc.reset()
			prepared[w] = true
		}
		lo, hi := c*frontierChunk, (c+1)*frontierChunk
		if hi > nsrc {
			hi = nsrc
		}
		for i := lo; i < hi; i++ {
			reach[w] += sc.run(g, srcAt(i))
		}
	})
	// ForWorkers has joined its goroutines, so the merge below is
	// ordered after every worker's accumulation.
	total := reach[0] // worker 0's counts are already in s.counts
	for w := 1; w < workers; w++ {
		if !prepared[w] {
			continue
		}
		sub := s.pool[w-1]
		for d, c := range sub.counts {
			for d >= len(s.counts) {
				s.counts = append(s.counts, 0)
			}
			s.counts[d] += c
		}
		total += reach[w]
	}
	return total
}

// DistanceDistribution computes the exact pairwise distance
// distribution sequentially, reusing s's buffers. The returned Counts
// alias the scratch and are valid only until the next call on s.
func (s *Scratch) DistanceDistribution(g *graph.Graph) stats.DistanceDistribution {
	return s.DistanceDistributionParallel(g, 1)
}

// DistanceDistributionParallel is DistanceDistribution with the source
// scan spread over up to `workers` goroutines (<= 0 means GOMAXPROCS).
// The result is bit-identical for every worker count; see scanSources.
func (s *Scratch) DistanceDistributionParallel(g *graph.Graph, workers int) stats.DistanceDistribution {
	if workers <= 0 {
		workers = maxProcs()
	}
	n := g.NumVertices()
	reachable := s.scanSources(g, nil, n, workers)
	// Ordered counts halve to unordered; every pair was seen twice.
	for i := range s.counts {
		s.counts[i] /= 2
	}
	totalPairs := float64(n) * float64(n-1) / 2
	return stats.DistanceDistribution{
		Counts:       s.counts,
		Disconnected: totalPairs - reachable/2,
	}
}

// SampledDistanceDistribution is the scratch form of the package-level
// estimator; the returned Counts alias the scratch.
func (s *Scratch) SampledDistanceDistribution(g *graph.Graph, samples int, rng *rand.Rand) stats.DistanceDistribution {
	return s.SampledDistanceDistributionParallel(g, samples, rng, 1)
}

// SampledDistanceDistributionParallel is SampledDistanceDistribution
// with the source scan spread over up to `workers` goroutines (<= 0
// means GOMAXPROCS). The rng draws happen up front on the calling
// goroutine, so the sampled sources — and with them the result — are
// bit-identical for every worker count.
func (s *Scratch) SampledDistanceDistributionParallel(g *graph.Graph, samples int, rng *rand.Rand, workers int) stats.DistanceDistribution {
	n := g.NumVertices()
	if samples >= n {
		return s.DistanceDistributionParallel(g, workers)
	}
	srcs := sampleSources(rng, n, samples)
	reachable := s.scanSources(g, srcs, samples, workers)
	scale := float64(n) / float64(samples) / 2
	for i := range s.counts {
		s.counts[i] *= scale
	}
	totalPairs := float64(n) * float64(n-1) / 2
	disconnected := totalPairs - reachable*scale
	if disconnected < 0 {
		disconnected = 0
	}
	return stats.DistanceDistribution{Counts: s.counts, Disconnected: disconnected}
}

// sampleSources draws `samples` distinct vertices of [0, n) uniformly
// without replacement: a partial Fisher–Yates shuffle over a sparse
// displacement map, costing exactly `samples` rng.Intn draws and
// O(samples) memory instead of the n draws and n ints the historical
// rng.Perm(n)[:samples] cost. The RNG stream therefore differs from
// the pre-PR-7 code (fewer draws, different order) — a seed-visible
// change, pinned once by TestSampleSourcesDrawOrder and absorbed by
// the re-pinned DistanceSampledBFS regression values in
// internal/sampling.
func sampleSources(rng *rand.Rand, n, samples int) []int32 {
	out := make([]int32, 0, samples)
	disp := make(map[int]int, samples)
	for i := 0; i < samples; i++ {
		j := i + rng.Intn(n-i)
		vj, ok := disp[j]
		if !ok {
			vj = j
		}
		out = append(out, int32(vj))
		if j > i {
			vi, ok := disp[i]
			if !ok {
				vi = i
			}
			disp[j] = vi
			delete(disp, i)
		}
	}
	return out
}

// DistanceDistribution returns the exact distribution of pairwise
// distances by running a BFS from every vertex (O(n*m) time), counting
// each unordered pair once. Sources are processed on GOMAXPROCS
// goroutines; DistanceDistributionWorkers takes an explicit budget.
func DistanceDistribution(g *graph.Graph) stats.DistanceDistribution {
	return DistanceDistributionWorkers(g, 0)
}

// DistanceDistributionWorkers is DistanceDistribution on up to
// `workers` goroutines (<= 0 means GOMAXPROCS); workers == 1 is fully
// sequential — this is the hook that lets the facade's WithWorkers
// reach the one-shot scan instead of it always fanning out.
func DistanceDistributionWorkers(g *graph.Graph, workers int) stats.DistanceDistribution {
	return NewScratch().DistanceDistributionParallel(g, workers)
}

// SampledDistanceDistribution estimates the distance distribution from
// BFS trees of `samples` uniformly chosen sources (the sampling
// approach of Lipton–Naughton cited in §6.3), scaling ordered counts by
// n/samples. With samples >= n it falls back to the exact computation.
// Sources are processed on GOMAXPROCS goroutines;
// SampledDistanceDistributionWorkers takes an explicit budget.
func SampledDistanceDistribution(g *graph.Graph, samples int, rng *rand.Rand) stats.DistanceDistribution {
	return SampledDistanceDistributionWorkers(g, samples, rng, 0)
}

// SampledDistanceDistributionWorkers is SampledDistanceDistribution on
// up to `workers` goroutines (<= 0 means GOMAXPROCS); workers == 1 is
// fully sequential.
func SampledDistanceDistributionWorkers(g *graph.Graph, samples int, rng *rand.Rand, workers int) stats.DistanceDistribution {
	return NewScratch().SampledDistanceDistributionParallel(g, samples, rng, workers)
}
