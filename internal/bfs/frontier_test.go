package bfs

import (
	"reflect"
	"testing"

	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

// propertyCorpus builds the randomized-graph corpus of the frontier
// property tests: ≥ 40 graphs spanning paths (deep, sparse frontiers),
// stars (one dense level), disconnected structures, scale-free graphs
// and Erdős–Rényi graphs, so both traversal directions and the switch
// between them are exercised.
func propertyCorpus(tb testing.TB) []*graph.Graph {
	tb.Helper()
	var gs []*graph.Graph
	path := func(n int) *graph.Graph {
		edges := make([]graph.Edge, n-1)
		for i := range edges {
			edges[i] = graph.Edge{U: i, V: i + 1}
		}
		return graph.FromEdges(n, edges)
	}
	star := func(n int) *graph.Graph {
		edges := make([]graph.Edge, n-1)
		for i := range edges {
			edges[i] = graph.Edge{U: 0, V: i + 1}
		}
		return graph.FromEdges(n, edges)
	}
	for trial := 0; trial < 9; trial++ {
		seed := int64(1000 + trial)
		rng := randx.New(seed)
		n := 60 + trial*30
		gs = append(gs,
			path(n),
			star(n),
			// Disconnected: a sparse G(n, p) below the connectivity
			// threshold plus an isolated block of vertices.
			gen.ErdosRenyiGNP(rng, n+20, 0.8/float64(n)),
			gen.HolmeKim(randx.New(seed+50), n, 3, 0.3),
			gen.ErdosRenyiGNP(randx.New(seed+100), n, 4.0/float64(n)),
		)
	}
	// Degenerate and dense shapes.
	gs = append(gs,
		graph.FromEdges(1, nil),
		graph.FromEdges(5, nil),
		gen.ErdosRenyiGNP(randx.New(7), 40, 1), // complete graph
	)
	if len(gs) < 40 {
		tb.Fatalf("property corpus has %d graphs, want >= 40", len(gs))
	}
	return gs
}

// TestFrontierPropertyBitIdentity is the tentpole pin, in the style of
// query's TestBatchEarlyExitPropertyBitIdentity: across the corpus,
// the parallel frontier walk must produce distances bit-identical to
// the sequential walk for Workers ∈ {1, 2, 4} — including the forced
// frontier engine at one worker, so the engine itself (not just the
// workers<=1 delegation) is pinned against the oracle.
func TestFrontierPropertyBitIdentity(t *testing.T) {
	seq := NewScratch()
	par := NewScratch()
	for gi, g := range propertyCorpus(t) {
		n := g.NumVertices()
		for _, src := range []int{0, n / 2, n - 1} {
			if src >= n {
				continue
			}
			want := append([]int32(nil), seq.FromSourceInto(g, src)...)
			for _, workers := range []int{1, 2, 4} {
				if got := par.FromSourceParallelInto(g, src, workers); !reflect.DeepEqual(append([]int32(nil), got...), want) {
					t.Fatalf("graph %d src %d workers %d: parallel distances diverge", gi, src, workers)
				}
				if got := par.frontierInto(g, src, workers); !reflect.DeepEqual(append([]int32(nil), got...), want) {
					t.Fatalf("graph %d src %d workers %d: forced frontier distances diverge", gi, src, workers)
				}
			}
		}
	}
}

// TestDistanceDistributionParallelBitIdentity pins distribution
// bit-identity across worker counts: exact and sampled, scratch and
// package level. Counts are float64 but integer-valued before scaling,
// so equality must be exact, not approximate.
func TestDistanceDistributionParallelBitIdentity(t *testing.T) {
	seq := NewScratch()
	par := NewScratch()
	for gi, g := range propertyCorpus(t) {
		n := g.NumVertices()
		wantExact := seq.DistanceDistribution(g)
		wantCounts := append([]float64(nil), wantExact.Counts...)
		samples := n / 3
		var wantSampled []float64
		var wantSampledDisc float64
		if samples > 0 {
			ds := seq.SampledDistanceDistribution(g, samples, randx.New(int64(gi)))
			wantSampled = append([]float64(nil), ds.Counts...)
			wantSampledDisc = ds.Disconnected
		}
		for _, workers := range []int{1, 2, 4} {
			got := par.DistanceDistributionParallel(g, workers)
			if !reflect.DeepEqual(append([]float64(nil), got.Counts...), wantCounts) || got.Disconnected != wantExact.Disconnected {
				t.Fatalf("graph %d workers %d: exact distribution diverges", gi, workers)
			}
			pkg := DistanceDistributionWorkers(g, workers)
			if !reflect.DeepEqual(append([]float64(nil), pkg.Counts...), wantCounts) || pkg.Disconnected != wantExact.Disconnected {
				t.Fatalf("graph %d workers %d: package-level exact distribution diverges", gi, workers)
			}
			if samples > 0 {
				gs := par.SampledDistanceDistributionParallel(g, samples, randx.New(int64(gi)), workers)
				if !reflect.DeepEqual(append([]float64(nil), gs.Counts...), wantSampled) || gs.Disconnected != wantSampledDisc {
					t.Fatalf("graph %d workers %d: sampled distribution diverges", gi, workers)
				}
			}
		}
	}
}

// TestFrontierTargetsMatchesFull extends the early-exit contract to
// the parallel walk: every registered target's entry is bit-identical
// to the full walk, across reachable, unreachable, duplicate and
// source-equal targets, in both traversal directions.
func TestFrontierTargetsMatchesFull(t *testing.T) {
	full := NewScratch()
	par := NewScratch()
	rng := randx.New(99)
	for gi, g := range propertyCorpus(t) {
		n := g.NumVertices()
		if n < 2 {
			continue
		}
		for _, src := range []int{0, n - 1} {
			want := append([]int32(nil), full.FromSourceInto(g, src)...)
			for trial := 0; trial < 6; trial++ {
				targets := make([]int32, 1+rng.Intn(5))
				for i := range targets {
					targets[i] = int32(rng.Intn(n))
				}
				if trial%3 == 0 {
					targets = append(targets, int32(src), targets[0])
				}
				for _, workers := range []int{2, 4} {
					got := par.FromSourceTargetsParallelInto(g, src, targets, workers)
					for _, tv := range targets {
						if got[tv] != want[tv] {
							t.Fatalf("graph %d src %d workers %d targets %v: dist[%d] = %d, want %d",
								gi, src, workers, targets, tv, got[tv], want[tv])
						}
					}
				}
			}
		}
	}
}

// TestFrontierTargetsStopsEarly asserts the parallel early exit is
// real: with the target adjacent to the source on a long path, the
// walk must stop at the first level barrier and leave the far end
// untouched.
func TestFrontierTargetsStopsEarly(t *testing.T) {
	n := 1000
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	g := graph.FromEdges(n, edges)
	s := NewScratch()
	d := s.FromSourceTargetsParallelInto(g, 0, []int32{1}, 4)
	if d[1] != 1 {
		t.Fatalf("dist[1] = %d, want 1", d[1])
	}
	if d[n-1] != -1 {
		t.Errorf("parallel walk reached the far end (dist[%d] = %d); early exit did not fire", n-1, d[n-1])
	}
	if v := s.Visited(); v != 2 {
		t.Errorf("visited = %d, want 2 (source + level-1 frontier)", v)
	}
}

// TestDirectionSwitchFires pins that the density heuristic actually
// changes direction on a low-diameter graph — the frontier of a
// scale-free graph blows past 2m/pullDen within a hop or two — and
// that forcing either single direction still reproduces the oracle
// distances.
func TestDirectionSwitchFires(t *testing.T) {
	g := gen.HolmeKim(randx.New(42), 2000, 4, 0.3)
	seq := NewScratch()
	want := append([]int32(nil), seq.FromSourceInto(g, 0)...)
	s := NewScratch()
	s.frontierInto(g, 0, 2)
	if s.Switches() < 1 {
		t.Errorf("auto walk made %d direction switches, want >= 1", s.Switches())
	}
	for _, dir := range []direction{dirPushOnly, dirPullOnly} {
		s.forceDir = dir
		got := s.frontierInto(g, 0, 2)
		if !reflect.DeepEqual(append([]int32(nil), got...), want) {
			t.Errorf("forced direction %d distances diverge", dir)
		}
		if s.Switches() != 0 {
			t.Errorf("forced direction %d reports %d switches, want 0", dir, s.Switches())
		}
	}
	s.forceDir = dirAuto
}

// TestFrontierDblpFixtureBitIdentity runs the acceptance check on the
// dblp stand-in: parallel distances and distributions bit-identical to
// sequential for Workers ∈ {1, 2, 4}.
func TestFrontierDblpFixtureBitIdentity(t *testing.T) {
	d, err := datasets.Generate(datasets.Specs[0], datasets.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph
	if n, m := g.NumVertices(), g.NumEdges(); n != 566 || m != 1679 {
		t.Fatalf("fixture drifted: n=%d m=%d, want 566/1679", n, m)
	}
	seq := NewScratch()
	par := NewScratch()
	wantDD := seq.DistanceDistribution(g)
	wantCounts := append([]float64(nil), wantDD.Counts...)
	for _, src := range []int{0, 283, 565} {
		want := append([]int32(nil), seq.FromSourceInto(g, src)...)
		for _, workers := range []int{1, 2, 4} {
			if got := par.FromSourceParallelInto(g, src, workers); !reflect.DeepEqual(append([]int32(nil), got...), want) {
				t.Fatalf("dblp src %d workers %d: distances diverge", src, workers)
			}
		}
	}
	for _, workers := range []int{1, 2, 4} {
		got := par.DistanceDistributionParallel(g, workers)
		if !reflect.DeepEqual(append([]float64(nil), got.Counts...), wantCounts) || got.Disconnected != wantDD.Disconnected {
			t.Fatalf("dblp workers %d: distance distribution diverges", workers)
		}
	}
}

// TestSampleSourcesDrawOrder pins the partial-Fisher–Yates draw order
// introduced in PR 7 (the seed-visible replacement for
// rng.Perm(n)[:samples]): the exact sources, and that they are
// distinct, in range, and cost exactly `samples` Intn draws.
func TestSampleSourcesDrawOrder(t *testing.T) {
	got := sampleSources(randx.New(123), 100, 10)
	want := []int32{35, 1, 17, 56, 87, 54, 19, 62, 53, 94}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sampleSources(seed 123, n=100, k=10) = %v, want %v", got, want)
	}
	// Stream-length pin: after k draws of sampleSources, the generator
	// must be exactly where k Intn calls leave it — the property that
	// makes the draw count (not just the order) part of the contract.
	rngA := randx.New(456)
	sampleSources(rngA, 1000, 25)
	rngB := randx.New(456)
	for i := 0; i < 25; i++ {
		rngB.Intn(1000 - i)
	}
	if a, b := rngA.Int63(), rngB.Int63(); a != b {
		t.Errorf("sampleSources consumed a different stream length: next draws %d vs %d", a, b)
	}
	// Distinctness and range over many seeds.
	for seed := int64(0); seed < 20; seed++ {
		n, k := 50, 20
		srcs := sampleSources(randx.New(seed), n, k)
		seen := make(map[int32]bool, k)
		for _, v := range srcs {
			if v < 0 || int(v) >= n {
				t.Fatalf("seed %d: source %d out of range [0,%d)", seed, v, n)
			}
			if seen[v] {
				t.Fatalf("seed %d: duplicate source %d", seed, v)
			}
			seen[v] = true
		}
	}
}

// TestFrontierConcurrentChunks is the -race exercise of the edge-map:
// repeated frontier walks with more workers than cores, in both
// directions and with targets, so the CAS discovery path, the
// bitmap-OR loop and the pull chunk ownership all run under the race
// detector (make race).
func TestFrontierConcurrentChunks(t *testing.T) {
	g := gen.HolmeKim(randx.New(11), 3000, 3, 0.3)
	seq := NewScratch()
	want := append([]int32(nil), seq.FromSourceInto(g, 17)...)
	s := NewScratch()
	for rep := 0; rep < 3; rep++ {
		if got := s.FromSourceParallelInto(g, 17, 8); !reflect.DeepEqual(append([]int32(nil), got...), want) {
			t.Fatal("concurrent walk distances diverge")
		}
		s.FromSourceTargetsParallelInto(g, 17, []int32{1, 2999, 17}, 8)
		s.forceDir = dirPushOnly
		s.frontierInto(g, 17, 8)
		s.forceDir = dirPullOnly
		s.frontierInto(g, 17, 8)
		s.forceDir = dirAuto
	}
	// The across-source axis under contention, too.
	a := NewScratch().DistanceDistributionParallel(g, 8)
	b := NewScratch().DistanceDistributionParallel(g, 1)
	if !reflect.DeepEqual(append([]float64(nil), a.Counts...), append([]float64(nil), b.Counts...)) {
		t.Fatal("concurrent source scan diverges")
	}
}
