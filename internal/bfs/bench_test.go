package bfs

import (
	"runtime"
	"sync"
	"testing"

	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

// benchGraph is the ≥100k-edge synthetic graph the direction-switching
// acceptance criterion measures on: a scale-free Holme–Kim graph whose
// middle BFS levels blow past the pull threshold, so direction
// optimization has density to exploit. Built once, shared by the three
// benchmarks so their numbers are comparable.
var benchGraph = struct {
	once sync.Once
	g    *graph.Graph
}{}

func frontierBenchGraph(b *testing.B) *graph.Graph {
	benchGraph.once.Do(func() {
		benchGraph.g = gen.HolmeKim(randx.New(42), 40000, 3, 0.3)
	})
	g := benchGraph.g
	if g.NumEdges() < 100000 {
		b.Fatalf("bench graph has %d edges, want >= 100k", g.NumEdges())
	}
	return g
}

// benchFrontier drives the frontier engine itself (frontierInto, so a
// forced direction takes effect even on one core) from rotating
// sources and reports the mean frontier-switches/op — the benchfmt
// metrics map records it alongside ns/op in BENCH_bfs.json.
func benchFrontier(b *testing.B, dir direction) {
	g := frontierBenchGraph(b)
	s := NewScratch()
	s.forceDir = dir
	workers := runtime.GOMAXPROCS(0)
	s.frontierInto(g, 0, workers) // warm buffers outside the timer
	switches := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.frontierInto(g, (i*7919)%g.NumVertices(), workers)
		switches += s.Switches()
	}
	b.ReportMetric(float64(switches)/float64(b.N), "frontier-switches/op")
}

func BenchmarkBFSPush(b *testing.B)         { benchFrontier(b, dirPushOnly) }
func BenchmarkBFSPull(b *testing.B)         { benchFrontier(b, dirPullOnly) }
func BenchmarkBFSDirectionOpt(b *testing.B) { benchFrontier(b, dirAuto) }
