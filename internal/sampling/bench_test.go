package sampling

// Benchmarks for the possible-world engine. `make bench-sampling` runs
// these and records the results in BENCH_sampling.json, next to the
// pre-refactor baseline, so the perf trajectory of the evaluation hot
// path stays visible across PRs.

import (
	"context"
	"testing"

	"uncertaingraph/internal/core"
	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/uncertain"
)

func benchPublished(b *testing.B) *uncertain.Graph {
	b.Helper()
	d, err := datasets.Generate(datasets.Specs[0], datasets.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Obfuscate(context.Background(), d.Graph, core.Params{
		K: 5, Eps: 0.3, Trials: 2, Delta: 1e-4, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.G
}

func benchSeeds() []int64 {
	master := randx.New(7)
	seeds := make([]int64, 100)
	for i := range seeds {
		seeds[i] = master.Int63()
	}
	return seeds
}

// BenchmarkSampleWorlds measures materializing 100 possible worlds
// (the paper's r) through one reused Sampler — the steady-state
// per-world loop of the estimation pipeline, which performs zero heap
// allocations per world.
func BenchmarkSampleWorlds(b *testing.B) {
	ug := benchPublished(b)
	seeds := benchSeeds()
	sampler := ug.NewSampler()
	rng := randx.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range seeds {
			rng.Seed(s)
			sampler.Sample(rng)
		}
	}
}

// BenchmarkSampleWorldsNaive is the pre-engine form — a fresh graph
// materialized per world — kept as the in-tree comparison point for
// the Sampler's allocation savings.
func BenchmarkSampleWorldsNaive(b *testing.B) {
	ug := benchPublished(b)
	seeds := benchSeeds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range seeds {
			ug.SampleWorld(randx.New(s))
		}
	}
}

// BenchmarkEstimateStatistics measures the full Section 6.1 pipeline:
// sample 20 worlds and evaluate all ten statistics on each (exact BFS
// distances, so the work is deterministic).
func BenchmarkEstimateStatistics(b *testing.B) {
	ug := benchPublished(b)
	cfg := Config{Worlds: 20, Seed: 7, Distances: DistanceExactBFS}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), ug, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateStatisticsANF is the same pipeline under the
// paper's HyperANF distance estimator, exercising the reused counter
// registers.
func BenchmarkEstimateStatisticsANF(b *testing.B) {
	ug := benchPublished(b)
	cfg := Config{Worlds: 20, Seed: 7, Distances: DistanceANF}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), ug, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateAdaptive measures the adaptive pipeline on the
// published dblp fixture at the acceptance tolerance 0.05 — an
// easy-statistic mix where every relative SEM tightens fast — with a
// 100-world budget (the fixed estimation default). The worlds/op
// metric records how many worlds the run actually needed; the history
// in BENCH_sampling.json keeps it next to ns/op so the throughput win
// over the fixed default stays visible.
func BenchmarkEstimateAdaptive(b *testing.B) {
	ug := benchPublished(b)
	cfg := Config{Seed: 7, Distances: DistanceANF, Tolerance: 0.05, MaxWorlds: 100}
	b.ReportAllocs()
	b.ResetTimer()
	worlds := 0
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), ug, cfg)
		if err != nil {
			b.Fatal(err)
		}
		worlds = rep.WorldsUsed
	}
	b.ReportMetric(float64(worlds), "worlds/op")
}
