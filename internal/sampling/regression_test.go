package sampling_test

// Regression pins for the CSR/world-engine refactor: the obfuscation
// output (σ, ε̃) and every Table-4 statistic mean and Table-5 relative
// SEM must be bit-for-bit identical to the pre-refactor representation
// (per-vertex adjacency slices, fresh graph per world). The constants
// below were produced by the pre-refactor code at commit "PR 1" with
// the exact configs used here; any divergence means the RNG draw
// order, the adjacency order, or a float summation order changed.

import (
	"context"
	"reflect"
	"testing"

	"uncertaingraph/internal/core"
	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/sampling"
	"uncertaingraph/internal/uncertain"
)

// regressionPublished rebuilds the pinned scenario: tiny dblp stand-in,
// k=5 eps=0.3 t=2 delta=1e-4 seed=42.
func regressionPublished(t *testing.T) *uncertain.Graph {
	t.Helper()
	d, err := datasets.Generate(datasets.Specs[0], datasets.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if n, m := d.Graph.NumVertices(), d.Graph.NumEdges(); n != 566 || m != 1679 {
		t.Fatalf("fixture drifted: n=%d m=%d, want 566/1679", n, m)
	}
	res, err := core.Obfuscate(context.Background(), d.Graph, core.Params{
		K: 5, Eps: 0.3, Trials: 2, Delta: 1e-4, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sigma != 6.103515625e-05 {
		t.Errorf("sigma = %.17g, want 6.103515625e-05", res.Sigma)
	}
	if res.EpsTilde != 0.10070671378091872 {
		t.Errorf("epsTilde = %.17g, want 0.10070671378091872", res.EpsTilde)
	}
	if res.G.NumPairs() != 3358 {
		t.Errorf("pairs = %d, want 3358", res.G.NumPairs())
	}
	return res.G
}

type pinnedStat struct {
	mean, relsem float64
}

var regressionPins = []struct {
	cfg   sampling.Config
	exact [2]float64 // ExactNE, ExactAD
	stats map[string]pinnedStat
}{
	{
		cfg:   sampling.Config{Worlds: 24, Seed: 7, Distances: sampling.DistanceExactBFS},
		exact: [2]float64{1667.8738815315087, 5.8935472845636347},
		stats: map[string]pinnedStat{
			"S_NE":     {1668, 0},
			"S_AD":     {5.8939929328621927, 6.2842967364053465e-17},
			"S_MD":     {83, 0},
			"S_DV":     {125.20431020489684, 4.7333323259260647e-17},
			"S_PL":     {-1.010691591818585, 9.1619443686414162e-17},
			"S_APD":    {3.3689587477074898, 8.2457823008934375e-17},
			"S_DiamLB": {8, 0},
			"S_EDiam":  {3.9417973062486182, 1.1745784243416737e-16},
			"S_CL":     {3.2099249137142603, 5.769543143226189e-17},
			"S_CC":     {0.090092041147807236, 3.2119582998539699e-17},
		},
	},
	{
		cfg:   sampling.Config{Worlds: 16, Seed: 9, Distances: sampling.DistanceANF},
		exact: [2]float64{1667.8738815315087, 5.8935472845636347},
		stats: map[string]pinnedStat{
			"S_NE":     {1667.875, 5.1197635544028569e-05},
			"S_AD":     {5.8935512367491167, 5.1197635544028915e-05},
			"S_MD":     {83, 0},
			"S_DV":     {125.17417966262506, 0.00017660547937815388},
			"S_PL":     {-1.0093300786258188, 0.0032850892990042638},
			"S_APD":    {3.355537417435968, 0.0035600835091244083},
			"S_DiamLB": {7.25, 0.01542115846551579},
			"S_EDiam":  {3.9291966292689975, 0.0020706293423706037},
			"S_CL":     {3.2716959345881409, 0.015169462552010385},
			"S_CC":     {0.090060167897790061, 0.00038129652748135828},
		},
	},
	{
		// The distance-derived pins (S_APD, S_DiamLB, S_EDiam, S_CL)
		// were re-pinned once in PR 7: bfs source sampling moved from
		// rng.Perm(n)[:samples] to a partial Fisher–Yates (exactly
		// `samples` Intn draws instead of n), a seed-visible RNG-stream
		// change. The new draw order is itself pinned by
		// TestSampleSourcesDrawOrder in internal/bfs; every
		// non-distance statistic is untouched, as is every pin of the
		// exact-BFS and ANF configs above.
		cfg: sampling.Config{
			Worlds: 12, Seed: 11,
			Distances: sampling.DistanceSampledBFS, BFSSources: 64,
		},
		exact: [2]float64{1667.8738815315087, 5.8935472845636347},
		stats: map[string]pinnedStat{
			"S_NE":     {1667.9166666666667, 4.996252810392205e-05},
			"S_AD":     {5.8936984687868081, 4.9962528103922423e-05},
			"S_MD":     {83, 0},
			"S_DV":     {125.18893460192179, 0.00012281918544882226},
			"S_PL":     {-1.0082291294088139, 0.0024423638813285357},
			"S_APD":    {3.353386034739847, 0.0069821783073091967},
			"S_DiamLB": {7.25, 0.018008033374727367},
			"S_EDiam":  {3.9455892794173804, 0.0082118431632953355},
			"S_CL":     {3.2037968963286745, 0.010200374795099897},
			"S_CC":     {0.090080870126105231, 0.00012401103237982619},
		},
	},
}

// TestRegressionPinnedStatistics checks bit-exact agreement with the
// pre-refactor pipeline for all three distance estimators.
func TestRegressionPinnedStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("obfuscation fixture is slow; run without -short")
	}
	ug := regressionPublished(t)
	for _, pin := range regressionPins {
		rep, err := sampling.Run(context.Background(), ug, pin.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ExactNE != pin.exact[0] || rep.ExactAD != pin.exact[1] {
			t.Errorf("cfg %+v: exact (%.17g, %.17g), want (%.17g, %.17g)",
				pin.cfg, rep.ExactNE, rep.ExactAD, pin.exact[0], pin.exact[1])
		}
		for _, name := range sampling.StatNames {
			want := pin.stats[name]
			if got := rep.Mean(name); got != want.mean {
				t.Errorf("cfg %+v: mean %s = %.17g, want %.17g", pin.cfg, name, got, want.mean)
			}
			if got := rep.RelSEM(name); got != want.relsem {
				t.Errorf("cfg %+v: relsem %s = %.17g, want %.17g", pin.cfg, name, got, want.relsem)
			}
		}
	}
}

// TestRunWorkerCountBitIdentity checks the satellite requirement that
// Config.Workers ∈ {1, 4} produce identical Table-4/Table-5 outputs —
// the full per-world sample arrays, hence every derived mean, SEM and
// relative error — for a fixed seed.
func TestRunWorkerCountBitIdentity(t *testing.T) {
	ug := smallUncertain(t)
	for _, cfg := range []sampling.Config{
		{Worlds: 10, Seed: 3, Distances: sampling.DistanceExactBFS},
		{Worlds: 10, Seed: 3, Distances: sampling.DistanceANF},
	} {
		cfg1 := cfg
		cfg1.Workers = 1
		cfg4 := cfg
		cfg4.Workers = 4
		rep1, err1 := sampling.Run(context.Background(), ug, cfg1)
		rep4, err4 := sampling.Run(context.Background(), ug, cfg4)
		if err1 != nil || err4 != nil {
			t.Fatal(err1, err4)
		}
		if !reflect.DeepEqual(rep1.Samples, rep4.Samples) {
			t.Errorf("dist=%d: Workers=1 and Workers=4 sample arrays differ", cfg.Distances)
		}
		for _, name := range sampling.StatNames {
			if m1, m4 := rep1.Mean(name), rep4.Mean(name); m1 != m4 {
				t.Errorf("dist=%d: %s mean %v != %v across worker counts", cfg.Distances, name, m1, m4)
			}
			if s1, s4 := rep1.RelSEM(name), rep4.RelSEM(name); s1 != s4 {
				t.Errorf("dist=%d: %s relsem %v != %v across worker counts", cfg.Distances, name, s1, s4)
			}
		}
	}
}

// TestRunVectorWorkerCountBitIdentity extends the worker-equivalence
// check to the vector pipeline behind Figures 2 and 3.
func TestRunVectorWorkerCountBitIdentity(t *testing.T) {
	ug := smallUncertain(t)
	fn := func(g *graph.Graph, _ int64) []float64 {
		deg := g.Degrees()
		out := make([]float64, len(deg))
		for i, d := range deg {
			out[i] = float64(d)
		}
		return out
	}
	rows1, err1 := sampling.RunVector(context.Background(), ug, sampling.Config{Worlds: 8, Seed: 5, Workers: 1}, fn)
	rows4, err4 := sampling.RunVector(context.Background(), ug, sampling.Config{Worlds: 8, Seed: 5, Workers: 4}, fn)
	if err1 != nil || err4 != nil {
		t.Fatal(err1, err4)
	}
	if !reflect.DeepEqual(rows1, rows4) {
		t.Error("RunVector rows differ across worker counts")
	}
}

// smallUncertain builds a fast deterministic uncertain graph fixture.
func smallUncertain(t *testing.T) *uncertain.Graph {
	t.Helper()
	var pairs []uncertain.Pair
	n := 40
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			// Deterministic pseudo-probabilities spanning [0, 1].
			h := (u*2654435761 + v*40503) % 97
			if h%3 == 0 {
				continue
			}
			pairs = append(pairs, uncertain.Pair{U: u, V: v, P: float64(h) / 96})
		}
	}
	ug, err := uncertain.New(n, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return ug
}
