package sampling_test

import (
	"context"
	"reflect"
	"testing"

	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/sampling"
)

// TestRunIntraWorldBitIdentity pins the worlds-scarce regime of the
// worker-budget split: with fewer worlds than workers the leftover
// budget runs inside each world's BFS distance scans, and the report
// must stay bit-identical to the sequential configuration for both
// BFS estimators.
func TestRunIntraWorldBitIdentity(t *testing.T) {
	ug := smallUncertain(t)
	for _, cfg := range []sampling.Config{
		{Worlds: 3, Seed: 21, Distances: sampling.DistanceExactBFS},
		{Worlds: 3, Seed: 21, Distances: sampling.DistanceSampledBFS, BFSSources: 16},
	} {
		var reps []*sampling.Report
		for _, workers := range []int{1, 2, 8} {
			c := cfg
			c.Workers = workers
			rep, err := sampling.Run(context.Background(), ug, c)
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, rep)
		}
		for i := 1; i < len(reps); i++ {
			if !reflect.DeepEqual(reps[0].Samples, reps[i].Samples) {
				t.Errorf("dist=%d: sample arrays diverge between worker configs 0 and %d", cfg.Distances, i)
			}
		}
	}
}

// TestScalarsOfHonorsWorkers pins the satellite fix: the one-shot
// evaluation's BFS scans now follow cfg.Workers (1 is fully
// sequential, larger values fan out) with bit-identical results.
func TestScalarsOfHonorsWorkers(t *testing.T) {
	g := gen.HolmeKim(randx.New(3), 120, 3, 0.3)
	for _, distances := range []sampling.DistanceMethod{sampling.DistanceExactBFS, sampling.DistanceSampledBFS} {
		base := sampling.ScalarsOf(g, sampling.Config{Distances: distances, BFSSources: 16, Workers: 1}, 5)
		for _, workers := range []int{0, 2, 8} {
			got := sampling.ScalarsOf(g, sampling.Config{Distances: distances, BFSSources: 16, Workers: workers}, 5)
			if !reflect.DeepEqual(got, base) {
				t.Errorf("dist=%d workers=%d: scalars diverge from sequential", distances, workers)
			}
		}
	}
}
