// Package sampling implements the Monte-Carlo estimation pipeline of
// paper Section 6.1: sample r possible worlds of an uncertain graph,
// evaluate every statistic of Section 6 on each world, and aggregate
// into sample means, relative standard errors (Table 5) and relative
// errors against the original graph (Table 4). Hoeffding bounds
// (Lemma 2 / Corollary 1) are re-exported through mathx.
package sampling

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"uncertaingraph/internal/anf"
	"uncertaingraph/internal/bfs"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/mathx"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/stats"
	"uncertaingraph/internal/uncertain"
)

// StatNames lists the ten scalar statistics of paper Table 4, in the
// paper's column order.
var StatNames = []string{
	"S_NE", "S_AD", "S_MD", "S_DV", "S_PL",
	"S_APD", "S_DiamLB", "S_EDiam", "S_CL", "S_CC",
}

// DistanceMethod selects how per-world distance distributions are
// computed.
type DistanceMethod int

const (
	// DistanceANF uses HyperANF, the paper's method — scalable,
	// approximate.
	DistanceANF DistanceMethod = iota
	// DistanceExactBFS runs a BFS from every vertex — exact, for small
	// worlds and validation.
	DistanceExactBFS
	// DistanceSampledBFS scales up BFS trees from a subset of sources.
	DistanceSampledBFS
)

// Config tunes the estimation run.
type Config struct {
	// Worlds is the number r of sampled possible worlds (paper: 100).
	Worlds int
	// Seed makes the run reproducible.
	Seed int64
	// Distances selects the per-world distance estimator.
	Distances DistanceMethod
	// ANFBits is the HyperANF register exponent (0 -> 7).
	ANFBits int
	// BFSSources is the source count for DistanceSampledBFS (0 -> 256).
	BFSSources int
	// PowerLawMinDegree is the S_PL fit cutoff (0 -> stats default).
	PowerLawMinDegree int
	// EffectiveDiameterQ is the S_EDiam quantile (0 -> 0.9).
	EffectiveDiameterQ float64
}

func (c Config) withDefaults() Config {
	if c.Worlds <= 0 {
		c.Worlds = 100
	}
	if c.BFSSources <= 0 {
		c.BFSSources = 256
	}
	if c.EffectiveDiameterQ == 0 {
		c.EffectiveDiameterQ = 0.9
	}
	return c
}

// Report aggregates per-world statistic values.
type Report struct {
	// Samples[name][i] is the statistic value on the i-th world, keyed
	// by StatNames.
	Samples map[string][]float64
	// ExactNE and ExactAD are the closed-form expectations of S_NE and
	// S_AD (Section 6.2), available without sampling.
	ExactNE, ExactAD float64
}

// Mean returns the sample mean of a named statistic.
func (r *Report) Mean(name string) float64 {
	m, _ := mathx.MeanStd(r.Samples[name])
	return m
}

// RelSEM returns the relative standard error of the mean (Table 5).
func (r *Report) RelSEM(name string) float64 {
	return mathx.RelativeSEM(r.Samples[name])
}

// RelErr returns |mean - real|/|real| (Table 4) for a named statistic.
func (r *Report) RelErr(name string, real float64) float64 {
	return mathx.RelAbsErr(r.Mean(name), real)
}

// ScalarsOf evaluates the ten paper statistics on a single certain
// graph (used both per-world and on originals for the "real" rows).
func ScalarsOf(g *graph.Graph, cfg Config, seed int64) map[string]float64 {
	cfg = cfg.withDefaults()
	out := make(map[string]float64, len(StatNames))
	out["S_NE"] = stats.NumEdges(g)
	out["S_AD"] = stats.AvgDegree(g)
	out["S_MD"] = stats.MaxDegree(g)
	out["S_DV"] = stats.DegreeVariance(g)
	out["S_PL"] = stats.PowerLawExponent(g, cfg.PowerLawMinDegree)
	var dd stats.DistanceDistribution
	switch cfg.Distances {
	case DistanceExactBFS:
		dd = bfs.DistanceDistribution(g)
	case DistanceSampledBFS:
		dd = bfs.SampledDistanceDistribution(g, cfg.BFSSources, randx.New(seed))
	default:
		dd = anf.DistanceDistribution(g, anf.Options{Bits: cfg.ANFBits, Seed: uint64(seed)})
	}
	out["S_APD"] = dd.AvgDistance()
	out["S_DiamLB"] = float64(dd.Diameter())
	out["S_EDiam"] = dd.EffectiveDiameter(cfg.EffectiveDiameterQ)
	out["S_CL"] = dd.ConnectivityLength()
	out["S_CC"] = stats.ClusteringCoefficient(g)
	return out
}

// Run samples cfg.Worlds possible worlds of ug and evaluates all ten
// statistics on each, in parallel across worlds. Results are
// deterministic for a fixed Config.
func Run(ug *uncertain.Graph, cfg Config) *Report {
	cfg = cfg.withDefaults()
	report := &Report{
		Samples: make(map[string][]float64, len(StatNames)),
		ExactNE: ug.ExpectedNumEdges(),
		ExactAD: ug.ExpectedAverageDegree(),
	}
	for _, name := range StatNames {
		report.Samples[name] = make([]float64, cfg.Worlds)
	}
	// Pre-derive one seed per world from the master seed so that the
	// parallel schedule cannot affect results.
	master := randx.New(cfg.Seed)
	seeds := make([]int64, cfg.Worlds)
	for i := range seeds {
		seeds[i] = master.Int63()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Worlds {
		workers = cfg.Worlds
	}
	var wg sync.WaitGroup
	next := make(chan int)
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				world := ug.SampleWorld(randx.New(seeds[i]))
				vals := ScalarsOf(world, cfg, seeds[i])
				mu.Lock()
				for name, v := range vals {
					report.Samples[name][i] = v
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Worlds; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return report
}

// VectorFn maps a certain graph to a vector statistic (degree
// distribution, distance distribution fractions, ...).
type VectorFn func(g *graph.Graph, seed int64) []float64

// RunVector evaluates a vector statistic on each sampled world,
// returning one row per world (rows may have different lengths; callers
// typically pad or box-summarize).
func RunVector(ug *uncertain.Graph, cfg Config, fn VectorFn) [][]float64 {
	cfg = cfg.withDefaults()
	master := randx.New(cfg.Seed)
	seeds := make([]int64, cfg.Worlds)
	for i := range seeds {
		seeds[i] = master.Int63()
	}
	rows := make([][]float64, cfg.Worlds)
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Worlds {
		workers = cfg.Worlds
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				world := ug.SampleWorld(randx.New(seeds[i]))
				rows[i] = fn(world, seeds[i])
			}
		}()
	}
	for i := 0; i < cfg.Worlds; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return rows
}

// Box summarizes one coordinate of a vector statistic across worlds:
// the five-number summary drawn as a boxplot in paper Figures 2 and 3.
type Box struct {
	Min, Q1, Median, Q3, Max float64
}

// Boxes computes per-index five-number summaries over world rows; rows
// shorter than the longest are treated as zero beyond their length.
func Boxes(rows [][]float64) []Box {
	maxLen := 0
	for _, r := range rows {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	out := make([]Box, maxLen)
	col := make([]float64, 0, len(rows))
	for i := 0; i < maxLen; i++ {
		col = col[:0]
		for _, r := range rows {
			if i < len(r) {
				col = append(col, r[i])
			} else {
				col = append(col, 0)
			}
		}
		out[i] = boxOf(col)
	}
	return out
}

func boxOf(xs []float64) Box {
	s := append([]float64(nil), xs...)
	sortFloats(s)
	q := func(p float64) float64 {
		if len(s) == 1 {
			return s[0]
		}
		pos := p * float64(len(s)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= len(s) {
			return s[len(s)-1]
		}
		return s[lo]*(1-frac) + s[lo+1]*frac
	}
	return Box{Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1]}
}

func sortFloats(s []float64) { sort.Float64s(s) }

// String renders a Box compactly for reports.
func (b Box) String() string {
	return fmt.Sprintf("[%.4g %.4g %.4g %.4g %.4g]", b.Min, b.Q1, b.Median, b.Q3, b.Max)
}
