// Package sampling implements the Monte-Carlo estimation pipeline of
// paper Section 6.1: sample r possible worlds of an uncertain graph,
// evaluate every statistic of Section 6 on each world, and aggregate
// into sample means, relative standard errors (Table 5) and relative
// errors against the original graph (Table 4). Hoeffding bounds
// (Lemma 2 / Corollary 1) are re-exported through mathx.
//
// Estimation is adaptive when Config.Tolerance is set: worlds are
// sampled in fixed-size blocks on a deterministic schedule, and the
// run stops at the first block barrier where every statistic's
// relative SEM — the Table 5 machinery, used online — is inside the
// tolerance, with the world budget as backstop. A stopped run is
// bit-identical to the same-length prefix of a full fixed-budget run.
//
// The r-world loop is the evaluation hot path, and it runs against
// per-worker buffer pools: each worker owns one uncertain.Sampler
// (preallocated CSR world buffers), one reseedable RNG, and one
// statistic Scratch (BFS dist/queue arrays, HyperANF registers), so
// the steady-state loop materializes and measures worlds without
// per-world graph allocations. Results are bit-identical for every
// worker count: world seeds are pre-derived from the master seed, each
// world's statistics depend only on its seed, and every world writes
// its own slot of the sample arrays.
package sampling

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"

	"uncertaingraph/internal/anf"
	"uncertaingraph/internal/bfs"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/mathx"
	"uncertaingraph/internal/parallel"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/stats"
	"uncertaingraph/internal/uncertain"
)

// StatNames lists the ten scalar statistics of paper Table 4, in the
// paper's column order.
var StatNames = []string{
	"S_NE", "S_AD", "S_MD", "S_DV", "S_PL",
	"S_APD", "S_DiamLB", "S_EDiam", "S_CL", "S_CC",
}

// DistanceMethod selects how per-world distance distributions are
// computed.
type DistanceMethod int

const (
	// DistanceANF uses HyperANF, the paper's method — scalable,
	// approximate.
	DistanceANF DistanceMethod = iota
	// DistanceExactBFS runs a BFS from every vertex — exact, for small
	// worlds and validation.
	DistanceExactBFS
	// DistanceSampledBFS scales up BFS trees from a subset of sources.
	DistanceSampledBFS
)

// DefaultBlockSize is the number of worlds sampled between the
// convergence checks of an adaptive run (selected by BlockSize = 0).
const DefaultBlockSize = 32

// Config tunes the estimation run.
type Config struct {
	// Worlds is the number r of sampled possible worlds (paper: 100).
	// When Tolerance is set it is the world budget an adaptive run may
	// stop short of (MaxWorlds, when positive, overrides it).
	Worlds int
	// Seed makes the run reproducible.
	Seed int64
	// Workers bounds the number of concurrent world evaluations
	// (<= 0 selects GOMAXPROCS). Each worker owns one set of sampling
	// and statistic buffers; results are bit-identical for every value.
	Workers int
	// Distances selects the per-world distance estimator.
	Distances DistanceMethod
	// ANFBits is the HyperANF register exponent (0 -> 7).
	ANFBits int
	// BFSSources is the source count for DistanceSampledBFS (0 -> 256).
	BFSSources int
	// PowerLawMinDegree is the S_PL fit cutoff (0 -> stats default).
	PowerLawMinDegree int
	// EffectiveDiameterQ is the S_EDiam quantile (0 -> 0.9).
	EffectiveDiameterQ float64
	// Progress, when non-nil, is invoked after each world completes
	// with the number of finished worlds and the total. Workers invoke
	// it concurrently; implementations must be safe for concurrent use
	// and must not block for long. Progress observation never affects
	// results.
	Progress func(done, total int)
	// Tolerance, when positive, enables adaptive-precision estimation:
	// worlds are sampled in BlockSize blocks, and the run stops at the
	// first block barrier where every statistic's relative SEM
	// (mathx.RelativeSEM, paper Table 5) is at most Tolerance — easy
	// statistics stop after a block or two, hard ones run to the world
	// budget. Zero disables adaptive stopping: the run samples exactly
	// its fixed world budget, bit-identical to the pre-adaptive Run.
	Tolerance float64
	// MaxWorlds, when positive, overrides Worlds as the world budget —
	// the cap an adaptive run may stop short of. Seeds for the whole
	// budget are pre-derived up front, so a run stopped at block b is
	// bit-identical to the first b blocks of an uncancelled full-budget
	// run, for every Workers value.
	MaxWorlds int
	// BlockSize is the number of worlds sampled between convergence
	// checks of an adaptive run (0 selects DefaultBlockSize). The block
	// schedule is deterministic: block boundaries depend only on the
	// configuration, never on timing or the worker count.
	BlockSize int
}

func (c Config) withDefaults() Config {
	if c.Worlds <= 0 {
		c.Worlds = 100
	}
	if c.BFSSources <= 0 {
		c.BFSSources = 256
	}
	if c.EffectiveDiameterQ == 0 {
		c.EffectiveDiameterQ = 0.9
	}
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultBlockSize
	}
	return c
}

// budget resolves the run's world budget: the cap an adaptive run may
// stop short of, and the exact length of a fixed run.
func (c Config) budget() int {
	if c.MaxWorlds > 0 {
		return c.MaxWorlds
	}
	return c.Worlds
}

func (c Config) workerCount(jobs int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Report aggregates per-world statistic values.
type Report struct {
	// Samples[name][i] is the statistic value on the i-th world, keyed
	// by StatNames. Arrays are WorldsUsed long — an adaptive run that
	// stopped early carries exactly the worlds it sampled.
	Samples map[string][]float64
	// ExactNE and ExactAD are the closed-form expectations of S_NE and
	// S_AD (Section 6.2), available without sampling.
	ExactNE, ExactAD float64
	// WorldsUsed is the number of worlds actually sampled: the full
	// budget for a fixed run, possibly fewer for an adaptive one.
	WorldsUsed int
	// Converged[name] reports whether the statistic's relative SEM was
	// inside the run's Tolerance when sampling stopped. Nil for fixed
	// runs (Tolerance 0), where no convergence target exists. A
	// statistic can be unconverged in a completed adaptive run — the
	// budget ran out first — and callers deciding whether to trust a
	// mean should check its flag, not just WorldsUsed.
	Converged map[string]bool
}

// Mean returns the sample mean of a named statistic.
func (r *Report) Mean(name string) float64 {
	m, _ := mathx.MeanStd(r.Samples[name])
	return m
}

// RelSEM returns the relative standard error of the mean (Table 5).
func (r *Report) RelSEM(name string) float64 {
	return mathx.RelativeSEM(r.Samples[name])
}

// RelErr returns |mean - real|/|real| (Table 4) for a named statistic.
func (r *Report) RelErr(name string, real float64) float64 {
	return mathx.RelAbsErr(r.Mean(name), real)
}

// Scratch bundles the reusable statistic-evaluation state of one
// worker: the BFS distance/queue/count buffers and the HyperANF
// counter registers, both of which grow to the graph size once and are
// reused for every subsequent world.
type Scratch struct {
	bfs     *bfs.Scratch
	anf     *anf.Engine
	anfBits int
	// intra is the worker budget for the BFS distance scans inside one
	// ScalarsInto call (0 or 1 means sequential). The world loop raises
	// it only when queued worlds cannot absorb the whole Workers budget
	// (see forEachWorld); ScalarsOf sets it from cfg.Workers directly.
	// The parallel scans are bit-identical to the sequential ones, so
	// the value never affects results.
	intra int
}

// intraWorkers resolves the scratch's intra-scan budget (>= 1).
func (s *Scratch) intraWorkers() int {
	if s.intra < 1 {
		return 1
	}
	return s.intra
}

// NewScratch returns scratch buffers for evaluating statistics under
// cfg; buffers grow on first use.
func NewScratch(cfg Config) *Scratch {
	cfg = cfg.withDefaults()
	return &Scratch{
		bfs:     bfs.NewScratch(),
		anf:     anf.NewEngine(anf.Options{Bits: cfg.ANFBits}),
		anfBits: cfg.ANFBits,
	}
}

func (s *Scratch) engine(cfg Config) *anf.Engine {
	if s.anfBits != cfg.ANFBits {
		s.anf = anf.NewEngine(anf.Options{Bits: cfg.ANFBits})
		s.anfBits = cfg.ANFBits
	}
	return s.anf
}

// ScalarsOf evaluates the ten paper statistics on a single certain
// graph (used both per-world and on originals for the "real" rows).
// The one-shot BFS distance scans honor cfg.Workers (<= 0 selects
// GOMAXPROCS, 1 is fully sequential); results are bit-identical for
// every value.
func ScalarsOf(g *graph.Graph, cfg Config, seed int64) map[string]float64 {
	var vals [10]float64
	sc := NewScratch(cfg)
	sc.intra = cfg.Workers
	if sc.intra <= 0 {
		sc.intra = runtime.GOMAXPROCS(0)
	}
	ScalarsInto(g, cfg, seed, sc, &vals)
	out := make(map[string]float64, len(StatNames))
	for i, name := range StatNames {
		out[name] = vals[i]
	}
	return out
}

// ScalarsInto evaluates the ten statistics into vals (indexed by
// StatNames order) against caller-owned scratch buffers — the reuse
// form of ScalarsOf that the world loop drives.
func ScalarsInto(g *graph.Graph, cfg Config, seed int64, sc *Scratch, vals *[10]float64) {
	cfg = cfg.withDefaults()
	vals[0] = stats.NumEdges(g)
	vals[1] = stats.AvgDegree(g)
	vals[2] = stats.MaxDegree(g)
	vals[3] = stats.DegreeVariance(g)
	vals[4] = stats.PowerLawExponent(g, cfg.PowerLawMinDegree)
	var dd stats.DistanceDistribution
	switch cfg.Distances {
	case DistanceExactBFS:
		dd = sc.bfs.DistanceDistributionParallel(g, sc.intraWorkers())
	case DistanceSampledBFS:
		dd = sc.bfs.SampledDistanceDistributionParallel(g, cfg.BFSSources, randx.New(seed), sc.intraWorkers())
	default:
		dd = sc.engine(cfg).DistanceDistribution(g, uint64(seed))
	}
	vals[5] = dd.AvgDistance()
	vals[6] = float64(dd.Diameter())
	vals[7] = dd.EffectiveDiameter(cfg.EffectiveDiameterQ)
	vals[8] = dd.ConnectivityLength()
	vals[9] = stats.ClusteringCoefficient(g)
}

// worldSeeds pre-derives one seed per world of the whole budget from
// the master seed so that neither the worker count, the block schedule
// nor an early stop can affect any world's stream: world i always
// samples the same world, whether or not the run reaches it.
func worldSeeds(cfg Config, budget int) []int64 {
	seeds := make([]int64, budget)
	randx.FillWorldSeeds(seeds, randx.New(cfg.Seed))
	return seeds
}

// forEachWorld runs fn(worldIndex, world, seed, scratch) for up to
// budget sampled worlds, fanning the worlds out over cfg.Workers
// workers on a deterministic block schedule. Each worker owns one
// Sampler, one reseedable RNG and one Scratch for the whole run, so the
// per-world loop allocates nothing; the world passed to fn aliases the
// worker's sampler buffers and is valid only for that call.
//
// stop, when non-nil, turns the run adaptive: after each block of
// cfg.BlockSize worlds completes (a barrier — every world of the block
// has been evaluated, none of the next block has started), stop(done)
// is consulted with the number of worlds finished so far, and a true
// return ends the run. The returned count is the number of worlds
// evaluated. Because world seeds are pre-derived for the full budget
// and every world writes only its own slot, a run stopped at block b is
// bit-identical to the first b blocks of an uncancelled full-budget
// run, for every Workers value. A nil stop samples the whole budget in
// one block — the fixed-r fast path, with no barriers.
//
// Cancelling ctx stops the loop at world granularity: no new world is
// dispatched or evaluated once ctx is done, in-flight worlds finish,
// every worker goroutine is joined before forEachWorld returns, and
// the context's error is returned. A nil ctx never cancels.
func forEachWorld(ctx context.Context, ug *uncertain.Graph, cfg Config, budget int, stop func(done int) bool, fn func(i int, world *graph.Graph, seed int64, sc *Scratch)) (int, error) {
	seeds := worldSeeds(cfg, budget)
	workers := cfg.workerCount(budget)
	// Per-worker buffer sets, built lazily on first use: ForWorkers runs
	// every call for worker w on w's own goroutine, so construction is
	// race-free and stays parallel. States persist across blocks — the
	// worker id is a buffer-pool index, never a determinism input.
	type wstate struct {
		sampler *uncertain.Sampler
		rng     *rand.Rand
		sc      *Scratch
	}
	states := make([]*wstate, workers)
	// intra is the within-world BFS worker budget of the current
	// dispatch: 1 while the queued worlds can absorb the whole Workers
	// budget, the leftover budget per world-worker once they cannot (a
	// short adaptive tail block, a tiny fixed run). It is written only
	// between dispatch barriers, so worker reads are ordered after it;
	// the parallel scans are bit-identical, so results never depend on
	// the split.
	total := cfg.Workers
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	intra := 1
	setIntra := func(jobs int) {
		intra = 1
		if jobs < total {
			bw := workers
			if bw > jobs {
				bw = jobs
			}
			if intra = total / bw; intra < 1 {
				intra = 1
			}
		}
	}
	var finished atomic.Int64
	body := func(w, i int) {
		st := states[w]
		if st == nil {
			st = &wstate{sampler: ug.NewSampler(), rng: randx.New(0), sc: NewScratch(cfg)}
			states[w] = st
		}
		st.sc.intra = intra
		// Reseeding replays exactly the stream randx.New(seed) would
		// produce, without constructing a new generator.
		st.rng.Seed(seeds[i])
		world := st.sampler.Sample(st.rng)
		fn(i, world, seeds[i], st.sc)
		if cfg.Progress != nil {
			cfg.Progress(int(finished.Add(1)), budget)
		}
	}
	if stop == nil {
		setIntra(budget)
		return budget, parallel.ForWorkers(ctx, budget, workers, body)
	}
	done := 0
	for done < budget {
		blockLen := cfg.BlockSize
		if blockLen > budget-done {
			blockLen = budget - done
		}
		base := done
		bw := workers
		if bw > blockLen {
			bw = blockLen
		}
		setIntra(blockLen)
		if err := parallel.ForWorkers(ctx, blockLen, bw, func(w, j int) { body(w, base+j) }); err != nil {
			return base, err
		}
		done += blockLen
		// Never stop on fewer than two worlds: a single sample has no
		// spread, so every statistic would spuriously report SEM 0.
		if done >= 2 && stop(done) {
			break
		}
	}
	return done, nil
}

// Run samples possible worlds of ug and evaluates all ten statistics
// on each, in parallel across worlds. Results are deterministic for a
// fixed Config and identical for every Workers value. Cancelling ctx
// aborts between worlds with no goroutine leaks and returns ctx.Err();
// a nil ctx never cancels, and a run that returns a Report is
// bit-identical to an uncancelled run.
//
// With Tolerance set, Run is adaptive: it samples in BlockSize blocks
// and stops at the first barrier where every statistic's relative SEM
// is inside the tolerance (see Config.Tolerance). The report's sample
// arrays then hold exactly the WorldsUsed worlds evaluated, and they
// are bit-identical to the same-length prefix of a full fixed-budget
// run — adaptive stopping changes how many worlds are measured, never
// what any world measures.
func Run(ctx context.Context, ug *uncertain.Graph, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	budget := cfg.budget()
	report := &Report{
		Samples: make(map[string][]float64, len(StatNames)),
		ExactNE: ug.ExpectedNumEdges(),
		ExactAD: ug.ExpectedAverageDegree(),
	}
	samples := make([][]float64, len(StatNames))
	for i := range samples {
		samples[i] = make([]float64, budget)
	}
	var stop func(done int) bool
	if cfg.Tolerance > 0 {
		stop = func(done int) bool {
			for _, s := range samples {
				// The fixed RelativeSEM makes this safe on sparse worlds:
				// a zero-mean statistic with spread reports +Inf, never
				// the pre-fix 0 that would have stopped the run after one
				// block.
				if !(mathx.RelativeSEM(s[:done]) <= cfg.Tolerance) {
					return false
				}
			}
			return true
		}
	}
	used, err := forEachWorld(ctx, ug, cfg, budget, stop, func(i int, world *graph.Graph, seed int64, sc *Scratch) {
		var vals [10]float64
		ScalarsInto(world, cfg, seed, sc, &vals)
		for s := range samples {
			samples[s][i] = vals[s]
		}
	})
	if err != nil {
		return nil, err
	}
	report.WorldsUsed = used
	for i, name := range StatNames {
		report.Samples[name] = samples[i][:used:used]
	}
	if cfg.Tolerance > 0 {
		report.Converged = make(map[string]bool, len(StatNames))
		for i, name := range StatNames {
			report.Converged[name] = mathx.RelativeSEM(samples[i][:used]) <= cfg.Tolerance
		}
	}
	return report, nil
}

// VectorFn maps a certain graph to a vector statistic (degree
// distribution, distance distribution fractions, ...). The graph
// passed to fn is only valid for the duration of the call; the
// returned slice must not alias it.
type VectorFn func(g *graph.Graph, seed int64) []float64

// RunVector evaluates a vector statistic on each sampled world,
// returning one row per world (rows may have different lengths; callers
// typically pad or box-summarize). Cancellation follows the same
// contract as Run: abort between worlds, join all workers, return
// ctx.Err() and no rows.
//
// With Tolerance set, RunVector stops early once every coordinate's
// relative SEM is inside the tolerance, under the same zero-padding
// convention as Boxes (rows shorter than the longest contribute 0
// beyond their length) and the same block-prefix determinism as Run:
// the returned rows are bit-identical to the same-length prefix of a
// full fixed-budget run.
func RunVector(ctx context.Context, ug *uncertain.Graph, cfg Config, fn VectorFn) ([][]float64, error) {
	cfg = cfg.withDefaults()
	budget := cfg.budget()
	rows := make([][]float64, budget)
	var stop func(done int) bool
	if cfg.Tolerance > 0 {
		var col []float64
		stop = func(done int) bool {
			maxLen := 0
			for _, r := range rows[:done] {
				if len(r) > maxLen {
					maxLen = len(r)
				}
			}
			for c := 0; c < maxLen; c++ {
				col = col[:0]
				for _, r := range rows[:done] {
					if c < len(r) {
						col = append(col, r[c])
					} else {
						col = append(col, 0)
					}
				}
				if !(mathx.RelativeSEM(col) <= cfg.Tolerance) {
					return false
				}
			}
			return true
		}
	}
	used, err := forEachWorld(ctx, ug, cfg, budget, stop, func(i int, world *graph.Graph, seed int64, _ *Scratch) {
		rows[i] = fn(world, seed)
	})
	if err != nil {
		return nil, err
	}
	return rows[:used:used], nil
}

// Box summarizes one coordinate of a vector statistic across worlds:
// the five-number summary drawn as a boxplot in paper Figures 2 and 3.
type Box struct {
	Min, Q1, Median, Q3, Max float64
}

// Boxes computes per-index five-number summaries over world rows; rows
// shorter than the longest are treated as zero beyond their length.
func Boxes(rows [][]float64) []Box {
	maxLen := 0
	for _, r := range rows {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	out := make([]Box, maxLen)
	col := make([]float64, 0, len(rows))
	for i := 0; i < maxLen; i++ {
		col = col[:0]
		for _, r := range rows {
			if i < len(r) {
				col = append(col, r[i])
			} else {
				col = append(col, 0)
			}
		}
		out[i] = boxOf(col)
	}
	return out
}

func boxOf(xs []float64) Box {
	s := append([]float64(nil), xs...)
	sortFloats(s)
	q := func(p float64) float64 {
		if len(s) == 1 {
			return s[0]
		}
		pos := p * float64(len(s)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= len(s) {
			return s[len(s)-1]
		}
		return s[lo]*(1-frac) + s[lo+1]*frac
	}
	return Box{Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1]}
}

func sortFloats(s []float64) { sort.Float64s(s) }

// String renders a Box compactly for reports.
func (b Box) String() string {
	return fmt.Sprintf("[%.4g %.4g %.4g %.4g %.4g]", b.Min, b.Q1, b.Median, b.Q3, b.Max)
}
