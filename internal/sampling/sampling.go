// Package sampling implements the Monte-Carlo estimation pipeline of
// paper Section 6.1: sample r possible worlds of an uncertain graph,
// evaluate every statistic of Section 6 on each world, and aggregate
// into sample means, relative standard errors (Table 5) and relative
// errors against the original graph (Table 4). Hoeffding bounds
// (Lemma 2 / Corollary 1) are re-exported through mathx.
//
// The r-world loop is the evaluation hot path, and it runs against
// per-worker buffer pools: each worker owns one uncertain.Sampler
// (preallocated CSR world buffers), one reseedable RNG, and one
// statistic Scratch (BFS dist/queue arrays, HyperANF registers), so
// the steady-state loop materializes and measures worlds without
// per-world graph allocations. Results are bit-identical for every
// worker count: world seeds are pre-derived from the master seed, each
// world's statistics depend only on its seed, and every world writes
// its own slot of the sample arrays.
package sampling

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"

	"uncertaingraph/internal/anf"
	"uncertaingraph/internal/bfs"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/mathx"
	"uncertaingraph/internal/parallel"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/stats"
	"uncertaingraph/internal/uncertain"
)

// StatNames lists the ten scalar statistics of paper Table 4, in the
// paper's column order.
var StatNames = []string{
	"S_NE", "S_AD", "S_MD", "S_DV", "S_PL",
	"S_APD", "S_DiamLB", "S_EDiam", "S_CL", "S_CC",
}

// DistanceMethod selects how per-world distance distributions are
// computed.
type DistanceMethod int

const (
	// DistanceANF uses HyperANF, the paper's method — scalable,
	// approximate.
	DistanceANF DistanceMethod = iota
	// DistanceExactBFS runs a BFS from every vertex — exact, for small
	// worlds and validation.
	DistanceExactBFS
	// DistanceSampledBFS scales up BFS trees from a subset of sources.
	DistanceSampledBFS
)

// Config tunes the estimation run.
type Config struct {
	// Worlds is the number r of sampled possible worlds (paper: 100).
	Worlds int
	// Seed makes the run reproducible.
	Seed int64
	// Workers bounds the number of concurrent world evaluations
	// (<= 0 selects GOMAXPROCS). Each worker owns one set of sampling
	// and statistic buffers; results are bit-identical for every value.
	Workers int
	// Distances selects the per-world distance estimator.
	Distances DistanceMethod
	// ANFBits is the HyperANF register exponent (0 -> 7).
	ANFBits int
	// BFSSources is the source count for DistanceSampledBFS (0 -> 256).
	BFSSources int
	// PowerLawMinDegree is the S_PL fit cutoff (0 -> stats default).
	PowerLawMinDegree int
	// EffectiveDiameterQ is the S_EDiam quantile (0 -> 0.9).
	EffectiveDiameterQ float64
	// Progress, when non-nil, is invoked after each world completes
	// with the number of finished worlds and the total. Workers invoke
	// it concurrently; implementations must be safe for concurrent use
	// and must not block for long. Progress observation never affects
	// results.
	Progress func(done, total int)
}

func (c Config) withDefaults() Config {
	if c.Worlds <= 0 {
		c.Worlds = 100
	}
	if c.BFSSources <= 0 {
		c.BFSSources = 256
	}
	if c.EffectiveDiameterQ == 0 {
		c.EffectiveDiameterQ = 0.9
	}
	return c
}

func (c Config) workerCount(jobs int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Report aggregates per-world statistic values.
type Report struct {
	// Samples[name][i] is the statistic value on the i-th world, keyed
	// by StatNames.
	Samples map[string][]float64
	// ExactNE and ExactAD are the closed-form expectations of S_NE and
	// S_AD (Section 6.2), available without sampling.
	ExactNE, ExactAD float64
}

// Mean returns the sample mean of a named statistic.
func (r *Report) Mean(name string) float64 {
	m, _ := mathx.MeanStd(r.Samples[name])
	return m
}

// RelSEM returns the relative standard error of the mean (Table 5).
func (r *Report) RelSEM(name string) float64 {
	return mathx.RelativeSEM(r.Samples[name])
}

// RelErr returns |mean - real|/|real| (Table 4) for a named statistic.
func (r *Report) RelErr(name string, real float64) float64 {
	return mathx.RelAbsErr(r.Mean(name), real)
}

// Scratch bundles the reusable statistic-evaluation state of one
// worker: the BFS distance/queue/count buffers and the HyperANF
// counter registers, both of which grow to the graph size once and are
// reused for every subsequent world.
type Scratch struct {
	bfs     *bfs.Scratch
	anf     *anf.Engine
	anfBits int
}

// NewScratch returns scratch buffers for evaluating statistics under
// cfg; buffers grow on first use.
func NewScratch(cfg Config) *Scratch {
	cfg = cfg.withDefaults()
	return &Scratch{
		bfs:     bfs.NewScratch(),
		anf:     anf.NewEngine(anf.Options{Bits: cfg.ANFBits}),
		anfBits: cfg.ANFBits,
	}
}

func (s *Scratch) engine(cfg Config) *anf.Engine {
	if s.anfBits != cfg.ANFBits {
		s.anf = anf.NewEngine(anf.Options{Bits: cfg.ANFBits})
		s.anfBits = cfg.ANFBits
	}
	return s.anf
}

// ScalarsOf evaluates the ten paper statistics on a single certain
// graph (used both per-world and on originals for the "real" rows).
func ScalarsOf(g *graph.Graph, cfg Config, seed int64) map[string]float64 {
	var vals [10]float64
	ScalarsInto(g, cfg, seed, NewScratch(cfg), &vals)
	out := make(map[string]float64, len(StatNames))
	for i, name := range StatNames {
		out[name] = vals[i]
	}
	return out
}

// ScalarsInto evaluates the ten statistics into vals (indexed by
// StatNames order) against caller-owned scratch buffers — the reuse
// form of ScalarsOf that the world loop drives.
func ScalarsInto(g *graph.Graph, cfg Config, seed int64, sc *Scratch, vals *[10]float64) {
	cfg = cfg.withDefaults()
	vals[0] = stats.NumEdges(g)
	vals[1] = stats.AvgDegree(g)
	vals[2] = stats.MaxDegree(g)
	vals[3] = stats.DegreeVariance(g)
	vals[4] = stats.PowerLawExponent(g, cfg.PowerLawMinDegree)
	var dd stats.DistanceDistribution
	switch cfg.Distances {
	case DistanceExactBFS:
		dd = sc.bfs.DistanceDistribution(g)
	case DistanceSampledBFS:
		dd = sc.bfs.SampledDistanceDistribution(g, cfg.BFSSources, randx.New(seed))
	default:
		dd = sc.engine(cfg).DistanceDistribution(g, uint64(seed))
	}
	vals[5] = dd.AvgDistance()
	vals[6] = float64(dd.Diameter())
	vals[7] = dd.EffectiveDiameter(cfg.EffectiveDiameterQ)
	vals[8] = dd.ConnectivityLength()
	vals[9] = stats.ClusteringCoefficient(g)
}

// worldSeeds pre-derives one seed per world from the master seed so
// that neither the worker count nor the schedule can affect results.
func worldSeeds(cfg Config) []int64 {
	seeds := make([]int64, cfg.Worlds)
	randx.FillWorldSeeds(seeds, randx.New(cfg.Seed))
	return seeds
}

// forEachWorld runs fn(worldIndex, world, seed, scratch) for every
// sampled world, fanning the worlds out over cfg.Workers workers. Each
// worker owns one Sampler, one reseedable RNG and one Scratch for its
// whole range, so the per-world loop allocates nothing; the world
// passed to fn aliases the worker's sampler buffers and is valid only
// for that call.
//
// Cancelling ctx stops the loop at world granularity: no new world is
// dispatched or evaluated once ctx is done, in-flight worlds finish,
// every worker goroutine is joined before forEachWorld returns, and
// the context's error is returned. A nil ctx never cancels.
func forEachWorld(ctx context.Context, ug *uncertain.Graph, cfg Config, fn func(i int, world *graph.Graph, seed int64, sc *Scratch)) error {
	seeds := worldSeeds(cfg)
	workers := cfg.workerCount(cfg.Worlds)
	// Per-worker buffer sets, built lazily on first use: ForWorkers runs
	// every call for worker w on w's own goroutine, so construction is
	// race-free and stays parallel.
	type wstate struct {
		sampler *uncertain.Sampler
		rng     *rand.Rand
		sc      *Scratch
	}
	states := make([]*wstate, workers)
	var finished atomic.Int64
	return parallel.ForWorkers(ctx, cfg.Worlds, workers, func(w, i int) {
		st := states[w]
		if st == nil {
			st = &wstate{sampler: ug.NewSampler(), rng: randx.New(0), sc: NewScratch(cfg)}
			states[w] = st
		}
		// Reseeding replays exactly the stream randx.New(seed) would
		// produce, without constructing a new generator.
		st.rng.Seed(seeds[i])
		world := st.sampler.Sample(st.rng)
		fn(i, world, seeds[i], st.sc)
		if cfg.Progress != nil {
			cfg.Progress(int(finished.Add(1)), cfg.Worlds)
		}
	})
}

// Run samples cfg.Worlds possible worlds of ug and evaluates all ten
// statistics on each, in parallel across worlds. Results are
// deterministic for a fixed Config and identical for every Workers
// value. Cancelling ctx aborts between worlds with no goroutine leaks
// and returns ctx.Err(); a nil ctx never cancels, and a run that
// returns a Report is bit-identical to an uncancelled run.
func Run(ctx context.Context, ug *uncertain.Graph, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	report := &Report{
		Samples: make(map[string][]float64, len(StatNames)),
		ExactNE: ug.ExpectedNumEdges(),
		ExactAD: ug.ExpectedAverageDegree(),
	}
	samples := make([][]float64, len(StatNames))
	for i, name := range StatNames {
		samples[i] = make([]float64, cfg.Worlds)
		report.Samples[name] = samples[i]
	}
	err := forEachWorld(ctx, ug, cfg, func(i int, world *graph.Graph, seed int64, sc *Scratch) {
		var vals [10]float64
		ScalarsInto(world, cfg, seed, sc, &vals)
		for s := range samples {
			samples[s][i] = vals[s]
		}
	})
	if err != nil {
		return nil, err
	}
	return report, nil
}

// VectorFn maps a certain graph to a vector statistic (degree
// distribution, distance distribution fractions, ...). The graph
// passed to fn is only valid for the duration of the call; the
// returned slice must not alias it.
type VectorFn func(g *graph.Graph, seed int64) []float64

// RunVector evaluates a vector statistic on each sampled world,
// returning one row per world (rows may have different lengths; callers
// typically pad or box-summarize). Cancellation follows the same
// contract as Run: abort between worlds, join all workers, return
// ctx.Err() and no rows.
func RunVector(ctx context.Context, ug *uncertain.Graph, cfg Config, fn VectorFn) ([][]float64, error) {
	cfg = cfg.withDefaults()
	rows := make([][]float64, cfg.Worlds)
	err := forEachWorld(ctx, ug, cfg, func(i int, world *graph.Graph, seed int64, _ *Scratch) {
		rows[i] = fn(world, seed)
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Box summarizes one coordinate of a vector statistic across worlds:
// the five-number summary drawn as a boxplot in paper Figures 2 and 3.
type Box struct {
	Min, Q1, Median, Q3, Max float64
}

// Boxes computes per-index five-number summaries over world rows; rows
// shorter than the longest are treated as zero beyond their length.
func Boxes(rows [][]float64) []Box {
	maxLen := 0
	for _, r := range rows {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	out := make([]Box, maxLen)
	col := make([]float64, 0, len(rows))
	for i := 0; i < maxLen; i++ {
		col = col[:0]
		for _, r := range rows {
			if i < len(r) {
				col = append(col, r[i])
			} else {
				col = append(col, 0)
			}
		}
		out[i] = boxOf(col)
	}
	return out
}

func boxOf(xs []float64) Box {
	s := append([]float64(nil), xs...)
	sortFloats(s)
	q := func(p float64) float64 {
		if len(s) == 1 {
			return s[0]
		}
		pos := p * float64(len(s)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= len(s) {
			return s[len(s)-1]
		}
		return s[lo]*(1-frac) + s[lo+1]*frac
	}
	return Box{Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1]}
}

func sortFloats(s []float64) { sort.Float64s(s) }

// String renders a Box compactly for reports.
func (b Box) String() string {
	return fmt.Sprintf("[%.4g %.4g %.4g %.4g %.4g]", b.Min, b.Q1, b.Median, b.Q3, b.Max)
}
