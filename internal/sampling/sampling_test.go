package sampling

import (
	"context"
	"math"
	"reflect"
	"testing"

	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/stats"
	"uncertaingraph/internal/uncertain"
)

// runBG runs Run under a background context, failing the test on the
// impossible error path.
func runBG(t testing.TB, ug *uncertain.Graph, cfg Config) *Report {
	t.Helper()
	rep, err := Run(context.Background(), ug, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func testUncertain(t testing.TB) *uncertain.Graph {
	g := gen.HolmeKim(randx.New(1), 300, 3, 0.3)
	pairs := make([]uncertain.Pair, 0, g.NumEdges()+200)
	g.ForEachEdge(func(u, v int) {
		pairs = append(pairs, uncertain.Pair{U: u, V: v, P: 0.9})
	})
	// A few uncertain non-edges.
	rng := randx.New(2)
	added := 0
	for added < 200 {
		u, v := rng.Intn(300), rng.Intn(300)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		dup := false
		for _, pr := range pairs {
			if (pr.U == u && pr.V == v) || (pr.U == v && pr.V == u) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		pairs = append(pairs, uncertain.Pair{U: u, V: v, P: 0.1})
		added++
	}
	ug, err := uncertain.New(300, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return ug
}

func TestRunProducesAllStatistics(t *testing.T) {
	ug := testUncertain(t)
	rep := runBG(t, ug, Config{Worlds: 10, Seed: 3, Distances: DistanceExactBFS})
	for _, name := range StatNames {
		vals, ok := rep.Samples[name]
		if !ok || len(vals) != 10 {
			t.Fatalf("statistic %s missing or wrong length", name)
		}
		for _, v := range vals {
			if math.IsNaN(v) {
				t.Fatalf("statistic %s has NaN sample", name)
			}
		}
	}
}

func TestSampledNEMatchesExactExpectation(t *testing.T) {
	// Footnote 5 of the paper: the sampled S_NE and S_AD agree with the
	// closed forms of Section 6.2.
	ug := testUncertain(t)
	rep := runBG(t, ug, Config{Worlds: 60, Seed: 4, Distances: DistanceExactBFS})
	if rel := math.Abs(rep.Mean("S_NE")-rep.ExactNE) / rep.ExactNE; rel > 0.02 {
		t.Errorf("sampled S_NE %v vs exact %v", rep.Mean("S_NE"), rep.ExactNE)
	}
	if rel := math.Abs(rep.Mean("S_AD")-rep.ExactAD) / rep.ExactAD; rel > 0.02 {
		t.Errorf("sampled S_AD %v vs exact %v", rep.Mean("S_AD"), rep.ExactAD)
	}
}

func TestRunDeterministic(t *testing.T) {
	ug := testUncertain(t)
	cfg := Config{Worlds: 5, Seed: 9, Distances: DistanceExactBFS}
	a, b := runBG(t, ug, cfg), runBG(t, ug, cfg)
	for _, name := range StatNames {
		if !reflect.DeepEqual(a.Samples[name], b.Samples[name]) {
			t.Fatalf("statistic %s not deterministic", name)
		}
	}
}

func TestCertainGraphHasZeroSEM(t *testing.T) {
	g := gen.HolmeKim(randx.New(5), 200, 3, 0.3)
	ug := uncertain.FromCertain(g)
	rep := runBG(t, ug, Config{Worlds: 8, Seed: 6, Distances: DistanceExactBFS})
	// Every world is the original graph: SEM must be 0 and the mean must
	// equal the true statistic.
	for _, name := range []string{"S_NE", "S_AD", "S_MD", "S_DV", "S_CC"} {
		if sem := rep.RelSEM(name); sem > 1e-12 {
			t.Errorf("%s: SEM = %v on certain graph", name, sem)
		}
	}
	if got, want := rep.Mean("S_CC"), stats.ClusteringCoefficient(g); math.Abs(got-want) > 1e-12 {
		t.Errorf("S_CC mean %v, want %v", got, want)
	}
	if got := rep.RelErr("S_NE", float64(g.NumEdges())); got != 0 {
		t.Errorf("S_NE relative error %v on certain graph", got)
	}
}

func TestScalarsOfKnownGraph(t *testing.T) {
	// Path 0-1-2-3: NE=3, AD=1.5, MD=2, APD=(3*1+2*2+1*3)/6=5/3, Diam=3.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	vals := ScalarsOf(g, Config{Distances: DistanceExactBFS}, 1)
	if vals["S_NE"] != 3 || vals["S_AD"] != 1.5 || vals["S_MD"] != 2 {
		t.Errorf("degree scalars wrong: %v", vals)
	}
	if math.Abs(vals["S_APD"]-5.0/3) > 1e-12 {
		t.Errorf("S_APD = %v, want 5/3", vals["S_APD"])
	}
	if vals["S_DiamLB"] != 3 {
		t.Errorf("S_DiamLB = %v, want 3", vals["S_DiamLB"])
	}
	if vals["S_CC"] != 0 {
		t.Errorf("S_CC = %v, want 0", vals["S_CC"])
	}
}

func TestRunVectorDegreeDistribution(t *testing.T) {
	ug := testUncertain(t)
	rows, err := RunVector(context.Background(), ug, Config{Worlds: 6, Seed: 7}, func(g *graph.Graph, _ int64) []float64 {
		return stats.DegreeDistribution(g)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatal("row count")
	}
	for _, row := range rows {
		var sum float64
		for _, f := range row {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("world degree distribution sums to %v", sum)
		}
	}
}

func TestBoxes(t *testing.T) {
	rows := [][]float64{
		{1, 10},
		{2, 20},
		{3, 30},
		{4, 40},
		{5}, // short row: second coord treated as 0
	}
	boxes := Boxes(rows)
	if len(boxes) != 2 {
		t.Fatal("box count")
	}
	if boxes[0].Min != 1 || boxes[0].Max != 5 || boxes[0].Median != 3 {
		t.Errorf("box 0 = %+v", boxes[0])
	}
	if boxes[1].Min != 0 || boxes[1].Max != 40 {
		t.Errorf("box 1 = %+v", boxes[1])
	}
	if boxes[0].Q1 != 2 || boxes[0].Q3 != 4 {
		t.Errorf("quartiles = %+v", boxes[0])
	}
}

func TestBoxString(t *testing.T) {
	b := Box{Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5}
	if b.String() == "" {
		t.Error("empty render")
	}
}
