package sampling_test

// Adaptive-precision tests: the block-scheduled run must stop early
// exactly when every statistic's relative SEM is inside the tolerance,
// and stopping must never change what any world measures — a stopped
// run is bit-identical to the same-length prefix of a full fixed-budget
// run, for every worker count (PR 5's early-exit test discipline).

import (
	"context"
	"math"
	"reflect"
	"testing"

	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/sampling"
	"uncertaingraph/internal/uncertain"
)

// TestAdaptiveNeverConvergingMatchesFixedRun pins the core property:
// an adaptive run whose tolerance is unreachably tight walks the block
// schedule to the full budget and must reproduce the fixed-r run
// bit-identically — the barriers may cost time, never bits.
func TestAdaptiveNeverConvergingMatchesFixedRun(t *testing.T) {
	ug := smallUncertain(t)
	for _, dist := range []sampling.DistanceMethod{sampling.DistanceExactBFS, sampling.DistanceANF} {
		fixed := sampling.Config{Worlds: 70, Seed: 3, Distances: dist}
		adaptive := fixed
		adaptive.Tolerance = math.SmallestNonzeroFloat64
		repF, errF := sampling.Run(context.Background(), ug, fixed)
		repA, errA := sampling.Run(context.Background(), ug, adaptive)
		if errF != nil || errA != nil {
			t.Fatal(errF, errA)
		}
		if repA.WorldsUsed != 70 {
			t.Fatalf("dist=%d: never-converging run used %d worlds, want the full 70", dist, repA.WorldsUsed)
		}
		if !reflect.DeepEqual(repF.Samples, repA.Samples) {
			t.Errorf("dist=%d: block-scheduled full run differs from fixed run", dist)
		}
		if repF.WorldsUsed != 70 || repF.Converged != nil {
			t.Errorf("dist=%d: fixed run WorldsUsed=%d Converged=%v, want 70/nil", dist, repF.WorldsUsed, repF.Converged)
		}
	}
}

// nearCertain builds a convergence-friendly fixture: the tiny dblp
// stand-in's power-law topology (so the S_PL fit is meaningful — on
// small random graphs like smallUncertain its relative SEM stays ≈0.47
// even after 400 worlds) with high edge probabilities in [0.9, 1), so
// worlds differ only slightly and every statistic's relative SEM
// shrinks fast. The slow obfuscation step is deliberately skipped; the
// probabilities are synthetic.
func nearCertain(t *testing.T) *uncertain.Graph {
	t.Helper()
	d, err := datasets.Generate(datasets.Specs[0], datasets.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph
	pairs := make([]uncertain.Pair, 0, g.NumEdges())
	g.ForEachEdge(func(u, v int) {
		h := (u*2654435761 + v*40503) % 97
		pairs = append(pairs, uncertain.Pair{U: u, V: v, P: 0.9 + float64(h)/970})
	})
	ug, err := uncertain.New(g.NumVertices(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	return ug
}

// TestAdaptiveStopsEarlyPrefixBitIdentity checks that a converging
// adaptive run stops short of its budget and that its sample arrays
// are bit-identical to the same-length prefix of the fixed full-budget
// run, for Workers ∈ {1, 4}.
func TestAdaptiveStopsEarlyPrefixBitIdentity(t *testing.T) {
	ug := nearCertain(t)
	base := sampling.Config{Seed: 3, Distances: sampling.DistanceANF, Tolerance: 0.05, MaxWorlds: 200}

	cfg1 := base
	cfg1.Workers = 1
	cfg4 := base
	cfg4.Workers = 4
	rep1, err1 := sampling.Run(context.Background(), ug, cfg1)
	rep4, err4 := sampling.Run(context.Background(), ug, cfg4)
	if err1 != nil || err4 != nil {
		t.Fatal(err1, err4)
	}
	if rep1.WorldsUsed >= 200 || rep1.WorldsUsed < 2 {
		t.Fatalf("adaptive run used %d worlds, want an early stop within [2, 200)", rep1.WorldsUsed)
	}
	if rep1.WorldsUsed != rep4.WorldsUsed {
		t.Fatalf("stopping point differs across worker counts: %d vs %d", rep1.WorldsUsed, rep4.WorldsUsed)
	}
	if !reflect.DeepEqual(rep1.Samples, rep4.Samples) {
		t.Error("adaptive sample arrays differ across worker counts")
	}
	for _, name := range sampling.StatNames {
		if !rep1.Converged[name] {
			t.Errorf("%s unconverged in a run that stopped early", name)
		}
	}

	full := sampling.Config{Worlds: 200, Seed: 3, Distances: sampling.DistanceANF}
	repFull, err := sampling.Run(context.Background(), ug, full)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sampling.StatNames {
		prefix := repFull.Samples[name][:rep1.WorldsUsed]
		if !reflect.DeepEqual(rep1.Samples[name], prefix) {
			t.Errorf("%s: stopped-run samples are not a bit-identical prefix of the fixed run", name)
		}
	}
}

// TestAdaptiveDBLPStopsUnderFixedDefault is the acceptance pin on the
// published dblp fixture: a WithTolerance(0.05)-style run stops with
// measurably fewer worlds than the fixed default (100), and the
// stopped run is a bit-identical prefix of the fixed-budget run for
// Workers ∈ {1, 4}.
func TestAdaptiveDBLPStopsUnderFixedDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("obfuscation fixture is slow; run without -short")
	}
	ug := regressionPublished(t)
	base := sampling.Config{Seed: 9, Distances: sampling.DistanceANF, Tolerance: 0.05, MaxWorlds: 100}

	cfg1 := base
	cfg1.Workers = 1
	cfg4 := base
	cfg4.Workers = 4
	rep1, err1 := sampling.Run(context.Background(), ug, cfg1)
	rep4, err4 := sampling.Run(context.Background(), ug, cfg4)
	if err1 != nil || err4 != nil {
		t.Fatal(err1, err4)
	}
	// The pinned 16-world run already has every relative SEM below
	// 0.0155, so the first barrier (32 worlds) must satisfy 0.05 — far
	// under the fixed default of 100 worlds.
	if rep1.WorldsUsed >= 100 || rep1.WorldsUsed < 2 {
		t.Fatalf("dblp adaptive run used %d worlds, want an early stop within [2, 100)", rep1.WorldsUsed)
	}
	if rep1.WorldsUsed != rep4.WorldsUsed || !reflect.DeepEqual(rep1.Samples, rep4.Samples) {
		t.Error("dblp adaptive run differs across worker counts")
	}
	for _, name := range sampling.StatNames {
		if !rep1.Converged[name] {
			t.Errorf("%s unconverged in the early-stopped dblp run", name)
		}
	}

	repFull, err := sampling.Run(context.Background(), ug, sampling.Config{Worlds: 100, Seed: 9, Distances: sampling.DistanceANF})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sampling.StatNames {
		prefix := repFull.Samples[name][:rep1.WorldsUsed]
		if !reflect.DeepEqual(rep1.Samples[name], prefix) {
			t.Errorf("%s: dblp stopped-run samples are not a bit-identical prefix of the fixed run", name)
		}
	}
}

// TestAdaptiveCancelRerunIdentity extends PR 4's cancel contract to
// adaptive runs: a cancelled adaptive run returns ctx.Err() with no
// report, and a subsequent uncancelled run with the same config is
// bit-identical to one that was never preceded by a cancellation.
func TestAdaptiveCancelRerunIdentity(t *testing.T) {
	ug := nearCertain(t)
	cfg := sampling.Config{Seed: 3, Distances: sampling.DistanceANF, Tolerance: 0.05, MaxWorlds: 200}

	ref, err := sampling.Run(context.Background(), ug, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancelCfg := cfg
	cancelCfg.Progress = func(done, total int) {
		if done >= 5 {
			cancel()
		}
	}
	if rep, err := sampling.Run(ctx, ug, cancelCfg); err == nil || rep != nil {
		t.Fatalf("cancelled run returned rep=%v err=%v, want nil report and ctx error", rep, err)
	}

	again, err := sampling.Run(context.Background(), ug, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.WorldsUsed != ref.WorldsUsed || !reflect.DeepEqual(again.Samples, ref.Samples) {
		t.Error("re-run after cancellation differs from a never-cancelled run")
	}
}

// TestAdaptiveBudgetExhaustedReportsUnconverged drives a tolerance no
// finite sample can meet into a tiny budget: the run must use the full
// budget and mark the noisy statistics unconverged rather than lying.
func TestAdaptiveBudgetExhaustedReportsUnconverged(t *testing.T) {
	ug := smallUncertain(t)
	cfg := sampling.Config{Seed: 3, Distances: sampling.DistanceExactBFS, Tolerance: 1e-18, MaxWorlds: 40}
	rep, err := sampling.Run(context.Background(), ug, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorldsUsed != 40 {
		t.Fatalf("budget-bound run used %d worlds, want 40", rep.WorldsUsed)
	}
	anyUnconverged := false
	for _, name := range sampling.StatNames {
		if !rep.Converged[name] {
			anyUnconverged = true
		}
	}
	if !anyUnconverged {
		t.Error("every statistic claims convergence at an impossible tolerance")
	}
}

// TestAdaptiveRunVectorPrefixBitIdentity mirrors the scalar prefix
// property on the vector pipeline, including the worker-count check.
func TestAdaptiveRunVectorPrefixBitIdentity(t *testing.T) {
	ug := smallUncertain(t)
	fn := func(g *graph.Graph, _ int64) []float64 {
		deg := g.Degrees()
		out := make([]float64, len(deg))
		for i, d := range deg {
			out[i] = float64(d)
		}
		return out
	}
	base := sampling.Config{Seed: 5, Tolerance: 0.05, MaxWorlds: 400}
	cfg1 := base
	cfg1.Workers = 1
	cfg4 := base
	cfg4.Workers = 4
	rows1, err1 := sampling.RunVector(context.Background(), ug, cfg1, fn)
	rows4, err4 := sampling.RunVector(context.Background(), ug, cfg4, fn)
	if err1 != nil || err4 != nil {
		t.Fatal(err1, err4)
	}
	if len(rows1) >= 400 || len(rows1) < 2 {
		t.Fatalf("adaptive RunVector used %d worlds, want an early stop within [2, 400)", len(rows1))
	}
	if !reflect.DeepEqual(rows1, rows4) {
		t.Error("adaptive RunVector rows differ across worker counts")
	}
	full, err := sampling.RunVector(context.Background(), ug, sampling.Config{Worlds: 400, Seed: 5}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows1, full[:len(rows1)]) {
		t.Error("stopped RunVector rows are not a bit-identical prefix of the fixed run")
	}
}

// TestAdaptiveCertainGraphStopsAtFirstBarrier is the degenerate
// fast-path: on a certain graph every world is identical, every SEM is
// 0, and the run must stop at the first block barrier.
func TestAdaptiveCertainGraphStopsAtFirstBarrier(t *testing.T) {
	pairs := []uncertain.Pair{
		{U: 0, V: 1, P: 1}, {U: 1, V: 2, P: 1}, {U: 2, V: 3, P: 1}, {U: 3, V: 0, P: 1},
	}
	ug, err := uncertain.New(4, pairs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampling.Config{Seed: 1, Distances: sampling.DistanceExactBFS, Tolerance: 0.05, MaxWorlds: 300}
	rep, err := sampling.Run(context.Background(), ug, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorldsUsed != sampling.DefaultBlockSize {
		t.Errorf("certain graph used %d worlds, want one block (%d)", rep.WorldsUsed, sampling.DefaultBlockSize)
	}
	for _, name := range sampling.StatNames {
		if !rep.Converged[name] {
			t.Errorf("%s unconverged on a certain graph", name)
		}
	}
}
