// Package stats implements the graph statistics of paper Section 6 used
// to measure the utility of published graphs: the degree-based scalars
// S_NE, S_AD, S_MD, S_DV and the power-law exponent S_PL (§6.2), the
// degree distribution S_DD, the clustering coefficient S_CC with the
// paper's triangle/connected-triple definition (§6.4), and the
// distance-based family S_APD, S_EDiam, S_CL, S_PDD, S_Diam (§6.3)
// expressed over a DistanceDistribution that either exact BFS
// (internal/bfs) or HyperANF (internal/anf) produces.
package stats

import (
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/mathx"
)

// NumEdges returns S_NE.
func NumEdges(g *graph.Graph) float64 { return float64(g.NumEdges()) }

// AvgDegree returns S_AD = 2m/n.
func AvgDegree(g *graph.Graph) float64 { return g.AverageDegree() }

// MaxDegree returns S_MD.
func MaxDegree(g *graph.Graph) float64 { return float64(g.MaxDegree()) }

// DegreeVariance returns S_DV = (1/n) Σ (d_v - S_AD)^2, the graph
// heterogeneity index of Snijders cited by the paper.
func DegreeVariance(g *graph.Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	avg := g.AverageDegree()
	var ss float64
	for v := 0; v < n; v++ {
		d := float64(g.Degree(v)) - avg
		ss += d * d
	}
	return ss / float64(n)
}

// DegreeDistribution returns S_DD: ∆(d) = fraction of vertices with
// degree d, for 0 <= d <= MaxDegree.
func DegreeDistribution(g *graph.Graph) []float64 {
	n := g.NumVertices()
	hist := g.DegreeHistogram()
	out := make([]float64, len(hist))
	if n == 0 {
		return out
	}
	for d, c := range hist {
		out[d] = float64(c) / float64(n)
	}
	return out
}

// DefaultPowerLawMinDegree is the lower cutoff for the S_PL fit; the
// paper fits "ignoring smaller degrees" where the power law is poor.
const DefaultPowerLawMinDegree = 4

// PowerLawExponent returns S_PL: the least-squares slope of the log-log
// degree frequency plot over degrees >= minDegree (0 selects the
// default cutoff). Graphs whose usable histogram has fewer than two
// points yield 0.
func PowerLawExponent(g *graph.Graph, minDegree int) float64 {
	if minDegree <= 0 {
		minDegree = DefaultPowerLawMinDegree
	}
	slope, err := mathx.PowerLawExponent(DegreeDistribution(g), minDegree)
	if err != nil {
		return 0
	}
	return slope
}
