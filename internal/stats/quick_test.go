package stats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
)

func randomGraph(seed int64, maxN int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(maxN-2)
	return gen.ErdosRenyiGNP(rng, n, 0.05+0.3*rng.Float64())
}

// Property: the degree-ordered triangle counter agrees with brute force
// on arbitrary random graphs.
func TestQuickTrianglesMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 40)
		var want int64
		n := g.NumVertices()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if !g.HasEdge(a, b) {
					continue
				}
				for c := b + 1; c < n; c++ {
					if g.HasEdge(a, c) && g.HasEdge(b, c) {
						want++
					}
				}
			}
		}
		return CountTriangles(g) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: 0 <= S_CC <= 1 and T2 >= 0 under the paper's definition.
func TestQuickClusteringCoefficientBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 50)
		t3 := CountTriangles(g)
		t2 := ConnectedTriplesGiven(g, t3)
		if t2 < 0 || t3 < 0 || t3 > t2 && t2 > 0 {
			return false
		}
		cc := ClusteringCoefficient(g)
		return cc >= 0 && cc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: degree variance is non-negative and zero exactly for
// regular graphs.
func TestQuickDegreeVariance(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 40)
		dv := DegreeVariance(g)
		if dv < 0 {
			return false
		}
		regular := true
		d0 := g.Degree(0)
		for v := 1; v < g.NumVertices(); v++ {
			if g.Degree(v) != d0 {
				regular = false
				break
			}
		}
		if regular {
			return dv < 1e-9
		}
		return dv > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: distance-distribution invariants hold for any graph:
// counts plus disconnected equals C(n,2); Diameter bounds EffectiveDiameter.
func TestQuickDistanceDistributionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 40)
		// Use the exact oracle via bfs would import-cycle here; derive
		// the distribution manually from per-source BFS.
		n := g.NumVertices()
		counts := []float64{0}
		var reach float64
		for s := 0; s < n; s++ {
			dist := bfsFrom(g, s)
			for v, d := range dist {
				if v == s || d < 0 {
					continue
				}
				for d >= len(counts) {
					counts = append(counts, 0)
				}
				counts[d] += 0.5 // each unordered pair seen twice
				reach += 0.5
			}
		}
		dd := DistanceDistribution{
			Counts:       counts,
			Disconnected: float64(n*(n-1))/2 - reach,
		}
		if dd.Disconnected < -1e-9 {
			return false
		}
		if dd.TotalPairs() < float64(n*(n-1))/2-1e-6 ||
			dd.TotalPairs() > float64(n*(n-1))/2+1e-6 {
			return false
		}
		return dd.EffectiveDiameter(0.9) <= float64(dd.Diameter())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func bfsFrom(g *graph.Graph, s int) []int {
	n := g.NumVertices()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int32{int32(s)}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
