package stats

import "math"

// DistanceDistribution is S_PDD: Counts[d] holds the (possibly
// estimated) number of unordered vertex pairs at shortest-path distance
// d (Counts[0] is unused and zero), and Disconnected the number of
// pairs with no path. Exact BFS (internal/bfs) and HyperANF
// (internal/anf) both produce this shape; all distance-based scalar
// statistics of §6.3 derive from it.
type DistanceDistribution struct {
	Counts       []float64
	Disconnected float64
}

// ConnectedPairs returns the number of path-connected unordered pairs.
func (d DistanceDistribution) ConnectedPairs() float64 {
	var total float64
	for _, c := range d.Counts {
		total += c
	}
	return total
}

// TotalPairs returns connected plus disconnected pairs.
func (d DistanceDistribution) TotalPairs() float64 {
	return d.ConnectedPairs() + d.Disconnected
}

// AvgDistance returns S_APD: the mean distance over path-connected
// pairs, or 0 if there are none.
func (d DistanceDistribution) AvgDistance() float64 {
	total := d.ConnectedPairs()
	if total == 0 {
		return 0
	}
	var sum float64
	for dist, c := range d.Counts {
		sum += float64(dist) * c
	}
	return sum / total
}

// EffectiveDiameter returns S_EDiam at quantile q (the paper uses 0.9):
// the linearly-interpolated distance at which a q-fraction of the finite
// pairwise distances is covered.
func (d DistanceDistribution) EffectiveDiameter(q float64) float64 {
	total := d.ConnectedPairs()
	if total == 0 {
		return 0
	}
	target := q * total
	var cum float64
	for dist := 1; dist < len(d.Counts); dist++ {
		next := cum + d.Counts[dist]
		if next >= target {
			if d.Counts[dist] == 0 {
				return float64(dist)
			}
			// Interpolate within this distance bucket.
			return float64(dist-1) + (target-cum)/d.Counts[dist]
		}
		cum = next
	}
	return float64(len(d.Counts) - 1)
}

// ConnectivityLength returns S_CL: the harmonic mean of pairwise
// distances over all pairs, with 1/dist = 0 for disconnected pairs
// (Marchiori–Latora), so it is defined even for disconnected graphs.
func (d DistanceDistribution) ConnectivityLength() float64 {
	var invSum float64
	for dist := 1; dist < len(d.Counts); dist++ {
		invSum += d.Counts[dist] / float64(dist)
	}
	if invSum == 0 {
		return math.Inf(1)
	}
	return d.TotalPairs() / invSum
}

// Diameter returns the largest distance with positive (estimated)
// count: exact on BFS-derived distributions, the lower bound S_DiamLB
// on HyperANF-derived ones.
func (d DistanceDistribution) Diameter() int {
	for dist := len(d.Counts) - 1; dist >= 1; dist-- {
		if d.Counts[dist] > 0 {
			return dist
		}
	}
	return 0
}

// Fractions returns Counts normalized by the number of connected pairs
// (the series plotted in paper Figure 2).
func (d DistanceDistribution) Fractions() []float64 {
	total := d.ConnectedPairs()
	out := make([]float64, len(d.Counts))
	if total == 0 {
		return out
	}
	for i, c := range d.Counts {
		out[i] = c / total
	}
	return out
}
