package stats

import (
	"math"
	"testing"

	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

func k3() *graph.Graph {
	return graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}})
}

func path3() *graph.Graph {
	return graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
}

func TestDegreeScalars(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 2, V: 3}})
	if NumEdges(g) != 4 {
		t.Error("NumEdges")
	}
	if AvgDegree(g) != 2 {
		t.Error("AvgDegree")
	}
	if MaxDegree(g) != 3 {
		t.Error("MaxDegree")
	}
	// Degrees 3,1,2,2; mean 2; variance = (1+1+0+0)/4 = 0.5.
	if got := DegreeVariance(g); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("DegreeVariance = %v, want 0.5", got)
	}
}

func TestDegreeDistributionSumsToOne(t *testing.T) {
	g := gen.HolmeKim(randx.New(1), 500, 3, 0.3)
	dd := DegreeDistribution(g)
	var sum float64
	for _, f := range dd {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("degree distribution sums to %v", sum)
	}
}

func TestClusteringCoefficientPaperExample3(t *testing.T) {
	// S_CC[K3] = 1 and S_CC[path] = 0, exactly as in Example 3.
	if got := ClusteringCoefficient(k3()); got != 1 {
		t.Errorf("S_CC[K3] = %v, want 1", got)
	}
	if got := ClusteringCoefficient(path3()); got != 0 {
		t.Errorf("S_CC[path] = %v, want 0", got)
	}
}

func TestCountTrianglesKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"K3", k3(), 1},
		{"path", path3(), 0},
		{"K4", gen.ErdosRenyiGNP(randx.New(1), 4, 1), 4},
		{"K5", gen.ErdosRenyiGNP(randx.New(1), 5, 1), 10},
		{"C5", graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0}}), 0},
	}
	for _, c := range cases {
		if got := CountTriangles(c.g); got != c.want {
			t.Errorf("%s: T3 = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCountTrianglesMatchesBruteForce(t *testing.T) {
	g := gen.ErdosRenyiGNP(randx.New(2), 60, 0.15)
	var want int64
	n := g.NumVertices()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < n; c++ {
				if g.HasEdge(a, c) && g.HasEdge(b, c) {
					want++
				}
			}
		}
	}
	if got := CountTriangles(g); got != want {
		t.Errorf("T3 = %d, brute force %d", got, want)
	}
}

func TestConnectedTriples(t *testing.T) {
	// K3: sum C(2,2) = 3 paths, minus 2*1 = 1.
	if got := ConnectedTriples(k3()); got != 1 {
		t.Errorf("T2[K3] = %d, want 1", got)
	}
	if got := ConnectedTriples(path3()); got != 1 {
		t.Errorf("T2[path] = %d, want 1", got)
	}
	// Star on 5 vertices: C(4,2) = 6 open triples, no triangles.
	star := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	if got := ConnectedTriples(star); got != 6 {
		t.Errorf("T2[star] = %d, want 6", got)
	}
}

func TestPowerLawExponentOnGeneratedGraph(t *testing.T) {
	// A BA graph has a clear decreasing power-law tail: the fitted slope
	// must be markedly negative; an ER graph's Poisson tail decays
	// faster than any power law over the same range.
	ba := gen.BarabasiAlbert(randx.New(3), 8000, 3)
	slope := PowerLawExponent(ba, 4)
	if slope >= -1 {
		t.Errorf("BA power-law slope = %v, want < -1", slope)
	}
	if PowerLawExponent(graph.NewBuilder(5).Build(), 1) != 0 {
		t.Error("degenerate graph should yield 0")
	}
}

func TestDistanceDistributionScalars(t *testing.T) {
	// Path 0-1-2: distances 1 (x2), 2 (x1).
	d := DistanceDistribution{Counts: []float64{0, 2, 1}}
	if got := d.AvgDistance(); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("APD = %v, want 4/3", got)
	}
	if got := d.Diameter(); got != 2 {
		t.Errorf("Diameter = %d, want 2", got)
	}
	if got := d.ConnectedPairs(); got != 3 {
		t.Errorf("ConnectedPairs = %v", got)
	}
	// Harmonic mean over all pairs: 3 / (2/1 + 1/2) = 1.2.
	if got := d.ConnectivityLength(); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("S_CL = %v, want 1.2", got)
	}
}

func TestConnectivityLengthWithDisconnected(t *testing.T) {
	// Two pairs at distance 1, one disconnected pair: total pairs 3,
	// invSum = 2, S_CL = 1.5.
	d := DistanceDistribution{Counts: []float64{0, 2}, Disconnected: 1}
	if got := d.ConnectivityLength(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("S_CL = %v, want 1.5", got)
	}
	empty := DistanceDistribution{Counts: []float64{0}, Disconnected: 3}
	if !math.IsInf(empty.ConnectivityLength(), 1) {
		t.Error("no connected pairs should give +Inf connectivity length")
	}
}

func TestEffectiveDiameter(t *testing.T) {
	// 10 pairs at distance 1, 10 at distance 2: the 90% point falls
	// inside the second bucket: 1 + (18-10)/10 = 1.8.
	d := DistanceDistribution{Counts: []float64{0, 10, 10}}
	if got := d.EffectiveDiameter(0.9); math.Abs(got-1.8) > 1e-12 {
		t.Errorf("S_EDiam = %v, want 1.8", got)
	}
	// All mass at distance 1: quantile inside first bucket.
	d1 := DistanceDistribution{Counts: []float64{0, 10}}
	if got := d1.EffectiveDiameter(0.9); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("S_EDiam = %v, want 0.9", got)
	}
}

func TestFractions(t *testing.T) {
	d := DistanceDistribution{Counts: []float64{0, 3, 1}}
	f := d.Fractions()
	if math.Abs(f[1]-0.75) > 1e-12 || math.Abs(f[2]-0.25) > 1e-12 {
		t.Errorf("fractions = %v", f)
	}
}
