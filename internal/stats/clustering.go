package stats

import (
	"sort"

	"uncertaingraph/internal/graph"
)

// CountTriangles returns T3: the number of 3-cliques. It uses the
// forward (degree-ordered) algorithm, O(m^{3/2}) time.
func CountTriangles(g *graph.Graph) int64 {
	n := g.NumVertices()
	// Rank vertices by (degree, id); orient each edge from lower to
	// higher rank so every triangle is counted exactly once, at its
	// lowest-rank corner pair.
	rank := make([]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	for r, v := range order {
		rank[v] = r
	}
	// forward[v] = neighbors of higher rank, sorted by rank.
	forward := make([][]int32, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if rank[u] > rank[v] {
				forward[v] = append(forward[v], int32(u))
			}
		}
		nbrs := forward[v]
		sort.Slice(nbrs, func(a, b int) bool { return rank[nbrs[a]] < rank[nbrs[b]] })
	}
	var t3 int64
	for v := 0; v < n; v++ {
		for _, u := range forward[v] {
			// Count common forward neighbors of v and u by merge.
			a, b := forward[v], forward[u]
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				ra, rb := rank[a[i]], rank[b[j]]
				switch {
				case ra == rb:
					t3++
					i++
					j++
				case ra < rb:
					i++
				default:
					j++
				}
			}
		}
	}
	return t3
}

// ConnectedTriples returns T2 under the paper's definition: the number
// of vertex triples inducing at least two edges (a path or a triangle,
// each counted once). Σ_v C(d_v, 2) counts each open triple once and
// each triangle three times, so T2 = Σ_v C(d_v, 2) - 2*T3; this makes
// S_CC[K3] = 1 as in paper Example 3.
func ConnectedTriples(g *graph.Graph) int64 {
	return ConnectedTriplesGiven(g, CountTriangles(g))
}

// ConnectedTriplesGiven is ConnectedTriples for callers that already
// know T3.
func ConnectedTriplesGiven(g *graph.Graph, t3 int64) int64 {
	var paths int64
	for v := 0; v < g.NumVertices(); v++ {
		d := int64(g.Degree(v))
		paths += d * (d - 1) / 2
	}
	return paths - 2*t3
}

// ClusteringCoefficient returns S_CC = T3/T2 (paper §6.4), or 0 when
// the graph has no connected triples.
func ClusteringCoefficient(g *graph.Graph) float64 {
	t3 := CountTriangles(g)
	t2 := ConnectedTriplesGiven(g, t3)
	if t2 == 0 {
		return 0
	}
	return float64(t3) / float64(t2)
}
