package stats

import (
	"sort"

	"uncertaingraph/internal/graph"
)

// CountTriangles returns T3: the number of 3-cliques. It uses the
// forward (degree-ordered) algorithm, O(m^{3/2}) time, over a flat
// CSR scratch of forward adjacencies.
func CountTriangles(g *graph.Graph) int64 {
	n := g.NumVertices()
	// Rank vertices by (degree, id); orient each edge from lower to
	// higher rank so every triangle is counted exactly once, at its
	// lowest-rank corner pair.
	rank := make([]int32, n)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(int(order[a])), g.Degree(int(order[b]))
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	for r, v := range order {
		rank[v] = int32(r)
	}
	// Forward adjacency in CSR form: foff[v]..foff[v+1] indexes v's
	// higher-rank neighbors within fnbr. Visiting vertices in rank
	// order while appending each to its lower-rank neighbors' lists
	// leaves every list sorted by rank with no per-vertex sort.
	foff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if rank[u] > rank[v] {
				foff[v+1]++
			}
		}
	}
	for v := 0; v < n; v++ {
		foff[v+1] += foff[v]
	}
	fnbr := make([]int32, foff[n])
	fill := make([]int64, n)
	for _, v := range order {
		for _, u := range g.Neighbors(int(v)) {
			if rank[u] < rank[v] {
				fnbr[foff[u]+fill[u]] = v
				fill[u]++
			}
		}
	}
	var t3 int64
	for v := 0; v < n; v++ {
		a := fnbr[foff[v]:foff[v+1]]
		for _, u := range a {
			// Count common forward neighbors of v and u by merge.
			b := fnbr[foff[u]:foff[u+1]]
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				ra, rb := rank[a[i]], rank[b[j]]
				switch {
				case ra == rb:
					t3++
					i++
					j++
				case ra < rb:
					i++
				default:
					j++
				}
			}
		}
	}
	return t3
}

// ConnectedTriples returns T2 under the paper's definition: the number
// of vertex triples inducing at least two edges (a path or a triangle,
// each counted once). Σ_v C(d_v, 2) counts each open triple once and
// each triangle three times, so T2 = Σ_v C(d_v, 2) - 2*T3; this makes
// S_CC[K3] = 1 as in paper Example 3.
func ConnectedTriples(g *graph.Graph) int64 {
	return ConnectedTriplesGiven(g, CountTriangles(g))
}

// ConnectedTriplesGiven is ConnectedTriples for callers that already
// know T3.
func ConnectedTriplesGiven(g *graph.Graph, t3 int64) int64 {
	var paths int64
	for v := 0; v < g.NumVertices(); v++ {
		d := int64(g.Degree(v))
		paths += d * (d - 1) / 2
	}
	return paths - 2*t3
}

// ClusteringCoefficient returns S_CC = T3/T2 (paper §6.4), or 0 when
// the graph has no connected triples.
func ClusteringCoefficient(g *graph.Graph) float64 {
	t3 := CountTriangles(g)
	t2 := ConnectedTriplesGiven(g, t3)
	if t2 == 0 {
		return 0
	}
	return float64(t3) / float64(t2)
}
