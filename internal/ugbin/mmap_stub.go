//go:build !unix

package ugbin

import (
	"errors"
	"os"
)

const mmapSupported = false

var errNoMmap = errors.New("memory mapping is not supported on this platform")

func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, errNoMmap
}
