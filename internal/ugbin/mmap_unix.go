//go:build unix

package ugbin

import (
	"os"
	"syscall"
)

// mmapSupported selects the ModeAuto fast path at build time; unix
// builds map, everything else falls back to the heap reader.
const mmapSupported = true

// mapFile maps size bytes of f read-only and shared (one page-cache
// copy serves every process mapping the same file). The returned
// release func unmaps; callers must not touch the slice afterwards.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
