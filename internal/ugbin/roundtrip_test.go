package ugbin

import (
	"bytes"
	"context"
	"path/filepath"
	"slices"
	"testing"

	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/sampling"
	"uncertaingraph/internal/uncertain"
)

// dblpUncertain builds the round-trip fixture: the tiny dblp stand-in
// (566 vertices / 1679 edges, same certain graph the sampling
// regression suite pins) lifted to an uncertain graph with
// hash-derived probabilities — deterministic and cheap, no obfuscation
// search required.
func dblpUncertain(t testing.TB) *uncertain.Graph {
	t.Helper()
	d, err := datasets.Generate(datasets.Specs[0], datasets.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if n, m := d.Graph.NumVertices(), d.Graph.NumEdges(); n != 566 || m != 1679 {
		t.Fatalf("fixture drifted: n=%d m=%d, want 566/1679", n, m)
	}
	pairs := make([]uncertain.Pair, 0, d.Graph.NumEdges())
	d.Graph.ForEachEdge(func(u, v int) {
		h := (u*31 + v*17) % 97
		pairs = append(pairs, uncertain.Pair{U: u, V: v, P: float64(h+1) / 98})
	})
	g, err := uncertain.New(d.Graph.NumVertices(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTextBinaryRoundTrip drives the full conversion chain on the dblp
// fixture: Write (text) → Read → WriteFile (.ugb) → Load (mmap where
// supported), asserting the loaded graph is column-identical to the
// text-parsed one.
func TestTextBinaryRoundTrip(t *testing.T) {
	orig := dblpUncertain(t)

	var buf bytes.Buffer
	if err := uncertain.Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	fromText, err := uncertain.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "dblp.ugb")
	if err := WriteFile(path, fromText); err != nil {
		t.Fatal(err)
	}
	fromBin, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	tc, bc := fromText.Columns(), fromBin.Columns()
	if !slices.Equal(tc.PairU, bc.PairU) || !slices.Equal(tc.PairV, bc.PairV) ||
		!slices.Equal(tc.PairP, bc.PairP) || !slices.Equal(tc.IncOff, bc.IncOff) ||
		!slices.Equal(tc.IncIdx, bc.IncIdx) {
		t.Fatal("binary-loaded columns differ from text-parsed columns")
	}
	if mmapSupported && fromBin.MappedBytes() == 0 {
		t.Error("Load did not mmap on a platform that supports it")
	}
}

// TestMmapPathPinnedStatistics runs the Monte-Carlo estimation pipeline
// over the mmap-loaded dblp fixture for Workers 1 and 4 and pins the
// answers two ways: bit-identical to the text-parsed graph's run, and
// bit-identical to the recorded constants below (produced by the text
// path when this test was written). Any divergence means the binary
// load path changed the candidate order, the RNG draw order, or a
// float summation order.
func TestMmapPathPinnedStatistics(t *testing.T) {
	orig := dblpUncertain(t)
	path := filepath.Join(t.TempDir(), "dblp.ugb")
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	mapped, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	pins := map[string]float64{
		"S_NE":  825.5,
		"S_AD":  2.9169611307420489,
		"S_MD":  44.875,
		"S_DV":  31.884846857870595,
		"S_APD": 3.5789996808555666,
		"S_CC":  0.04155943940117926,
	}
	const pinnedExactNE = 829.21428571428714

	for _, workers := range []int{1, 4} {
		cfg := sampling.Config{Worlds: 8, Seed: 21, Workers: workers, Distances: sampling.DistanceExactBFS}
		refRep, err := sampling.Run(context.Background(), orig, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotRep, err := sampling.Run(context.Background(), mapped, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if gotRep.ExactNE != refRep.ExactNE || gotRep.ExactNE != pinnedExactNE {
			t.Errorf("workers=%d: ExactNE = %.17g (text %.17g, pinned %.17g)",
				workers, gotRep.ExactNE, refRep.ExactNE, pinnedExactNE)
		}
		for _, name := range sampling.StatNames {
			got, ref := gotRep.Mean(name), refRep.Mean(name)
			if got != ref {
				t.Errorf("workers=%d: %s mean %.17g via mmap, %.17g via text", workers, name, got, ref)
			}
			if gotRep.RelSEM(name) != refRep.RelSEM(name) {
				t.Errorf("workers=%d: %s relSEM diverges between load paths", workers, name)
			}
			if want, ok := pins[name]; ok && got != want {
				t.Errorf("workers=%d: %s mean = %.17g, pinned %.17g", workers, name, got, want)
			}
		}
	}
}
