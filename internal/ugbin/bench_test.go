package ugbin

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"uncertaingraph/internal/uncertain"
)

// Cold-start fixtures: one ~40k-pair graph serialized both ways, built
// once per test process. The pair of benchmarks below is the record
// `make bench-io` appends to BENCH_io.json — the price of a daemon
// restart (or a registry eviction miss) under each on-disk format.
var (
	benchOnce sync.Once
	benchDir  string
	benchErr  error
)

func benchFixtures(b *testing.B) (ugPath, ugbPath string) {
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "ugbinbench")
		if benchErr != nil {
			return
		}
		g := testGraph(b, 20000)
		ugPath := filepath.Join(benchDir, "cold.ug")
		f, err := os.Create(ugPath)
		if err != nil {
			benchErr = err
			return
		}
		if err := uncertain.Write(f, g); err != nil {
			benchErr = err
			return
		}
		if err := f.Close(); err != nil {
			benchErr = err
			return
		}
		benchErr = WriteFile(filepath.Join(benchDir, "cold.ugb"), g)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return filepath.Join(benchDir, "cold.ug"), filepath.Join(benchDir, "cold.ugb")
}

// BenchmarkColdLoadText is the seed ingest path: open the "u v p" text
// file and parse every line back into a graph.
func BenchmarkColdLoadText(b *testing.B) {
	path, _ := benchFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		g, err := uncertain.Read(f)
		f.Close()
		if err != nil {
			b.Fatal(err)
		}
		if g.NumVertices() != 20000 {
			b.Fatal("wrong graph")
		}
	}
}

// BenchmarkColdLoadUGB is the binary path: mmap the file, verify the
// checksum and structure, adopt the sections. No parsing, no per-pair
// allocation.
func BenchmarkColdLoadUGB(b *testing.B) {
	_, path := benchFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := Load(path)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumVertices() != 20000 {
			b.Fatal("wrong graph")
		}
	}
}
