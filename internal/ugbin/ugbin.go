// Package ugbin is the versioned binary on-disk format for uncertain
// graphs (".ugb"): a 64-byte header followed by 8-byte-aligned sections
// holding exactly the five columnar arrays an uncertain.Graph keeps in
// memory (pairU, pairV, pairP, incOff, incIdx — see uncertain.Columns).
// Because the file layout *is* the in-memory layout, loading is one
// mmap plus validation: no parsing, no per-pair allocation, and the
// page cache shares one copy of a graph across every process serving
// it. A portable read-into-heap fallback is selected automatically on
// platforms without mmap (or on mmap failure) and can be forced with
// ModeHeap.
//
// # Format (version 1, little-endian)
//
//	offset  size  field
//	     0     8  magic "UGB1\r\n\x1a\n" (CR/LF/^Z catch text-mode mangling)
//	     8     4  version (uint32, = 1)
//	    12     4  endianness marker (uint32, = 0x01020304 encoded little-endian)
//	    16     8  n: vertex count (int64)
//	    24     8  m: candidate-pair count (int64)
//	    32     4  CRC-32C (Castagnoli) of every byte after the header
//	    36    28  reserved, must be zero
//	    64     —  sections, in order, each padded to an 8-byte boundary:
//	              pairU  m×int32   lower endpoints
//	              pairV  m×int32   upper endpoints
//	              pairP  m×float64 probabilities
//	              incOff (n+1)×int64  CSR offsets into incIdx
//	              incIdx 2m×int32  incident pair indices
//
// The file ends exactly where the last section's padding ends; readers
// reject any other size before touching a section. Every count is
// validated against the file size before a single byte of section data
// is interpreted, the checksum is verified, and the arrays then pass
// uncertain.FromColumns's full structural validation (zero-allocation),
// so corrupt or hostile files produce errors, never panics and never
// attacker-sized allocations.
package ugbin

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"

	"uncertaingraph/internal/uncertain"
)

// Magic is the 8-byte file signature every .ugb file starts with.
const Magic = "UGB1\r\n\x1a\n"

// Version is the current format version.
const Version = 1

const (
	headerSize = 64
	endianMark = 0x01020304
	// maxCount bounds n and m: pair indices and vertex ids are int32 on
	// disk and in memory.
	maxCount = math.MaxInt32
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrFormat wraps every malformed-file error so callers can distinguish
// "not a valid .ugb" from I/O failures.
var ErrFormat = errors.New("ugbin: invalid file")

// Mode selects how Load brings a file into memory.
type Mode int

const (
	// ModeAuto memory-maps when the platform supports it and falls back
	// to a heap read otherwise (or when mapping fails).
	ModeAuto Mode = iota
	// ModeMmap requires mmap; Load fails where it is unsupported.
	ModeMmap
	// ModeHeap always reads the file into the heap.
	ModeHeap
)

// ParseMode converts a flag string (auto|mmap|heap) to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "mmap":
		return ModeMmap, nil
	case "heap":
		return ModeHeap, nil
	}
	return ModeAuto, fmt.Errorf("ugbin: unknown load mode %q (want auto, mmap or heap)", s)
}

func (m Mode) String() string {
	switch m {
	case ModeMmap:
		return "mmap"
	case ModeHeap:
		return "heap"
	}
	return "auto"
}

// Sniff reports whether prefix begins with the .ugb magic. Callers use
// it to route a file or upload between the binary and text readers;
// prefixes shorter than the magic are never binary.
func Sniff(prefix []byte) bool {
	return len(prefix) >= len(Magic) && string(prefix[:len(Magic)]) == Magic
}

// sections is the byte layout derived from (n, m): start offset and
// byte length of each array section, plus the exact total file size.
type sections struct {
	pairU, pairV, pairP, incOff, incIdx span
	total                               int64
}

type span struct{ off, size int64 }

func (s span) end() int64 { return s.off + s.size }

func align8(x int64) int64 { return (x + 7) &^ 7 }

// layoutFor computes the section layout for n vertices and m pairs.
// Counts are validated first, so all arithmetic below stays far from
// int64 overflow (n, m <= 2^31-1 bounds the total under 2^36).
func layoutFor(n, m int64) (sections, error) {
	if n < 0 || n > maxCount {
		return sections{}, fmt.Errorf("%w: vertex count %d outside [0,%d]", ErrFormat, n, int64(maxCount))
	}
	if m < 0 || m > maxCount {
		return sections{}, fmt.Errorf("%w: pair count %d outside [0,%d]", ErrFormat, m, int64(maxCount))
	}
	var s sections
	cur := int64(headerSize)
	place := func(size int64) span {
		sp := span{off: cur, size: size}
		cur = align8(cur + size)
		return sp
	}
	s.pairU = place(4 * m)
	s.pairV = place(4 * m)
	s.pairP = place(8 * m)
	s.incOff = place(8 * (n + 1))
	s.incIdx = place(8 * m) // 2m entries × 4 bytes
	s.total = cur
	return s, nil
}

// Write serializes g in the .ugb format. The graph's columnar arrays
// are written directly (they are already the on-disk section layout),
// so the cost is one checksum pass plus sequential writes.
func Write(w io.Writer, g *uncertain.Graph) error {
	if !hostLittleEndian {
		return errors.New("ugbin: writing requires a little-endian host")
	}
	c := g.Columns()
	lay, err := layoutFor(int64(g.NumVertices()), int64(g.NumPairs()))
	if err != nil {
		return err
	}

	secs := [][]byte{
		int32Bytes(c.PairU),
		int32Bytes(c.PairV),
		float64Bytes(c.PairP),
		int64Bytes(c.IncOff),
		int32Bytes(c.IncIdx),
	}
	spans := []span{lay.pairU, lay.pairV, lay.pairP, lay.incOff, lay.incIdx}

	var pad [8]byte
	crc := uint32(0)
	cur := int64(headerSize)
	for i, sec := range secs {
		crc = crc32.Update(crc, crcTable, sec)
		if p := align8(spans[i].end()) - spans[i].end(); p > 0 {
			crc = crc32.Update(crc, crcTable, pad[:p])
		}
		cur = align8(spans[i].end())
	}
	if cur != lay.total {
		return fmt.Errorf("ugbin: internal layout mismatch (%d != %d)", cur, lay.total)
	}

	var hdr [headerSize]byte
	copy(hdr[0:8], Magic)
	putU32(hdr[8:12], Version)
	putU32(hdr[12:16], endianMark)
	putU64(hdr[16:24], uint64(g.NumVertices()))
	putU64(hdr[24:32], uint64(g.NumPairs()))
	putU32(hdr[32:36], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for i, sec := range secs {
		if _, err := w.Write(sec); err != nil {
			return err
		}
		if p := align8(spans[i].end()) - spans[i].end(); p > 0 {
			if _, err := w.Write(pad[:p]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFile writes g to path atomically-enough for tooling: a direct
// create-and-write (partial files fail the checksum on load).
func WriteFile(path string, g *uncertain.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// decode validates data as a complete .ugb image and adopts its
// sections as a Graph without copying. mappedBytes flows into the
// graph's footprint accounting (len(data) when data is an mmap region,
// 0 when it is heap memory). data must be 8-byte aligned.
func decode(data []byte, mappedBytes int64) (*uncertain.Graph, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, smaller than the %d-byte header", ErrFormat, len(data), headerSize)
	}
	if !Sniff(data) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, data[:len(Magic)])
	}
	if v := getU32(data[8:12]); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d (reader supports %d)", ErrFormat, v, Version)
	}
	if em := getU32(data[12:16]); em != endianMark {
		return nil, fmt.Errorf("%w: endianness marker %#x, want %#x (big-endian file?)", ErrFormat, em, endianMark)
	}
	if !hostLittleEndian {
		return nil, errors.New("ugbin: loading requires a little-endian host")
	}
	n := int64(getU64(data[16:24]))
	m := int64(getU64(data[24:32]))
	lay, err := layoutFor(n, m)
	if err != nil {
		return nil, err
	}
	for _, b := range data[36:headerSize] {
		if b != 0 {
			return nil, fmt.Errorf("%w: reserved header bytes not zero", ErrFormat)
		}
	}
	if int64(len(data)) != lay.total {
		return nil, fmt.Errorf("%w: file is %d bytes, layout for n=%d m=%d requires exactly %d",
			ErrFormat, len(data), n, m, lay.total)
	}
	if want, got := getU32(data[32:36]), crc32.Checksum(data[headerSize:], crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (header %#08x, content %#08x)", ErrFormat, want, got)
	}
	for _, sp := range []span{lay.pairU, lay.pairV, lay.pairP, lay.incOff, lay.incIdx} {
		for _, b := range data[sp.end():align8(sp.end())] {
			if b != 0 {
				return nil, fmt.Errorf("%w: section padding not zero", ErrFormat)
			}
		}
	}
	sec := func(sp span) []byte { return data[sp.off:sp.end():sp.end()] }
	cols := uncertain.Columns{
		PairU:  bytesInt32(sec(lay.pairU)),
		PairV:  bytesInt32(sec(lay.pairV)),
		PairP:  bytesFloat64(sec(lay.pairP)),
		IncOff: bytesInt64(sec(lay.incOff)),
		IncIdx: bytesInt32(sec(lay.incIdx)),
	}
	g, err := uncertain.FromColumns(int(n), cols, mappedBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return g, nil
}

// Decode parses a .ugb image held in memory. The returned graph aliases
// data — zero copies — so the caller must keep data alive and unmodified
// for the graph's lifetime (a registry retaining the uploaded bytes as
// the graph's durable source does exactly that). Because the arrays
// alias caller-owned memory, the graph reports len(data) as MappedBytes
// and 0 exclusive heap bytes: dropping the graph frees nothing the
// caller isn't already holding. If data is not 8-byte aligned it is
// copied once into an aligned buffer first (and the copy, being
// graph-owned, is charged as heap).
func Decode(data []byte) (*uncertain.Graph, error) {
	if !aligned8(data) {
		return decode(alignedCopy(data), 0)
	}
	return decode(data, int64(len(data)))
}

// Load brings the .ugb file at path into memory with ModeAuto.
func Load(path string) (*uncertain.Graph, error) { return LoadMode(path, ModeAuto) }

// LoadMode loads path with an explicit mode. Under ModeMmap (and
// ModeAuto where supported) the returned graph's arrays alias the
// mapped file — the mapping is released when the graph is
// garbage-collected, and MappedBytes reports the file size. Under
// ModeHeap (and ModeAuto fallback) the file is read into one aligned
// heap buffer.
func LoadMode(path string, mode Mode) (*uncertain.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, fmt.Errorf("%w: %s is %d bytes, smaller than the %d-byte header", ErrFormat, path, size, headerSize)
	}
	if size > math.MaxInt64/2 || int64(int(size)) != size {
		return nil, fmt.Errorf("%w: %s is too large to map (%d bytes)", ErrFormat, path, size)
	}

	if mode == ModeMmap || (mode == ModeAuto && mmapSupported) {
		data, unmap, merr := mapFile(f, size)
		if merr == nil {
			g, derr := decode(data, size)
			if derr != nil {
				unmap()
				return nil, fmt.Errorf("%s: %w", path, derr)
			}
			// The arrays alias the mapping; release it only once the
			// graph itself is unreachable. (Eviction from a serving
			// registry just drops the reference — the GC unmaps later,
			// so in-flight requests holding the graph stay safe.)
			runtime.SetFinalizer(g, func(*uncertain.Graph) { unmap() })
			return g, nil
		}
		if mode == ModeMmap {
			return nil, fmt.Errorf("ugbin: mmap %s: %w", path, merr)
		}
	}

	buf := make([]uint64, (size+7)/8) // 8-byte-aligned backing
	data := uint64Bytes(buf)[:size]
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, fmt.Errorf("ugbin: reading %s: %w", path, err)
	}
	g, derr := decode(data, 0)
	if derr != nil {
		return nil, fmt.Errorf("%s: %w", path, derr)
	}
	return g, nil
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	putU32(b[:4], uint32(v))
	putU32(b[4:8], uint32(v>>32))
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b[:4])) | uint64(getU32(b[4:8]))<<32
}
