package ugbin

import "unsafe"

// The zero-copy casts between typed arrays and their byte images. The
// format is host-endian-restricted to little-endian (checked against
// the header's marker), so a typed view over file bytes is exact. Every
// byte slice handed to a bytesX helper is produced by layoutFor, whose
// section offsets are 8-byte aligned over an allocation that is itself
// 8-byte aligned (mmap returns page-aligned memory; heap buffers are
// allocated as []uint64), so the alignment asserts never fire on the
// load paths and guard only future callers.

var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

func aligned8(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

// alignedCopy copies b into an 8-byte-aligned buffer.
func alignedCopy(b []byte) []byte {
	buf := make([]uint64, (len(b)+7)/8)
	dst := uint64Bytes(buf)[:len(b)]
	copy(dst, b)
	return dst
}

func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func int64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func float64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func uint64Bytes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func bytesInt32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if !aligned8(b) {
		panic("ugbin: misaligned int32 section")
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func bytesInt64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if !aligned8(b) {
		panic("ugbin: misaligned int64 section")
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func bytesFloat64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if !aligned8(b) {
		panic("ugbin: misaligned float64 section")
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}
