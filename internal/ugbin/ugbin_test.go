package ugbin

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"strings"
	"testing"

	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/uncertain"
)

// testGraph builds a deterministic uncertain graph: a ring of n
// vertices plus hash-derived chords, probabilities spread over (0, 1].
func testGraph(t testing.TB, n int) *uncertain.Graph {
	t.Helper()
	pairs := make([]uncertain.Pair, 0, 2*n)
	if n == 2 {
		pairs = append(pairs, uncertain.Pair{U: 0, V: 1, P: 0.5})
	}
	for u := 0; n >= 3 && u < n; u++ {
		h := (u*2654435761 + 12345) % 97
		pairs = append(pairs, uncertain.Pair{U: u, V: (u + 1) % n, P: float64(h+1) / 98})
		if chord := (u * 7) % n; chord != u && chord != (u+1)%n && chord != (u+n-1)%n && u < chord {
			pairs = append(pairs, uncertain.Pair{U: u, V: chord, P: float64((h*31)%97+1) / 98})
		}
	}
	g, err := uncertain.New(n, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func encode(t testing.TB, g *uncertain.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeTemp(t testing.TB, g *uncertain.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.ugb")
	if err := WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

// sameGraph asserts two graphs are semantically identical: same
// dimensions, same columns, same sampling stream.
func sameGraph(t *testing.T, got, want *uncertain.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumPairs() != want.NumPairs() {
		t.Fatalf("dimensions: got %d/%d, want %d/%d",
			got.NumVertices(), got.NumPairs(), want.NumVertices(), want.NumPairs())
	}
	gc, wc := got.Columns(), want.Columns()
	if !slices.Equal(gc.PairU, wc.PairU) || !slices.Equal(gc.PairV, wc.PairV) ||
		!slices.Equal(gc.PairP, wc.PairP) || !slices.Equal(gc.IncOff, wc.IncOff) ||
		!slices.Equal(gc.IncIdx, wc.IncIdx) {
		t.Fatal("columns differ")
	}
	sg, sw := got.NewSampler(), want.NewSampler()
	for seed := int64(1); seed <= 3; seed++ {
		a := sg.Sample(randx.New(seed))
		b := sw.Sample(randx.New(seed))
		if !reflect.DeepEqual(a.Edges(), b.Edges()) {
			t.Fatalf("seed %d: sampled worlds differ", seed)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 300} {
		g := testGraph(t, n)
		got, err := Decode(encode(t, g))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sameGraph(t, got, g)
	}
}

func TestLoadModes(t *testing.T) {
	g := testGraph(t, 200)
	path := writeTemp(t, g)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	heap, err := LoadMode(path, ModeHeap)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, heap, g)
	if heap.MappedBytes() != 0 {
		t.Errorf("heap load: MappedBytes = %d, want 0", heap.MappedBytes())
	}
	if heap.FootprintBytes() == 0 {
		t.Error("heap load: FootprintBytes = 0, want heap bytes")
	}

	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	mapped, err := LoadMode(path, ModeMmap)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, mapped, g)
	if mapped.MappedBytes() != st.Size() {
		t.Errorf("mmap load: MappedBytes = %d, want file size %d", mapped.MappedBytes(), st.Size())
	}
	if mapped.FootprintBytes() != 0 {
		t.Errorf("mmap load: FootprintBytes = %d, want 0 (file-backed)", mapped.FootprintBytes())
	}

	auto, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, auto, g)
	if auto.MappedBytes() != st.Size() {
		t.Errorf("auto load on unix: MappedBytes = %d, want %d", auto.MappedBytes(), st.Size())
	}
}

func TestSniff(t *testing.T) {
	g := testGraph(t, 5)
	enc := encode(t, g)
	if !Sniff(enc) {
		t.Error("Sniff rejected a valid encoding")
	}
	for _, b := range [][]byte{nil, []byte("UGB"), []byte("# uncertain graph: vertices=3 pairs=0\n")} {
		if Sniff(b) {
			t.Errorf("Sniff accepted %q", b)
		}
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"": ModeAuto, "auto": ModeAuto, "mmap": ModeMmap, "heap": ModeHeap} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) succeeded")
	}
}

// refreshCRC recomputes the content checksum after a deliberate section
// mutation, so the test reaches the structural validation layer rather
// than stopping at the checksum.
func refreshCRC(enc []byte) {
	putU32(enc[32:36], crc32.Checksum(enc[headerSize:], crcTable))
}

func TestDecodeRejectsCorruption(t *testing.T) {
	g := testGraph(t, 50)
	enc := encode(t, g)

	mutate := func(name string, fn func(b []byte)) {
		b := bytes.Clone(enc)
		fn(b)
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: decode succeeded on corrupt input", name)
		}
	}

	mutate("bad-magic", func(b []byte) { b[0] = 'X' })
	mutate("bad-version", func(b []byte) { putU32(b[8:12], 99) })
	mutate("bad-endianness", func(b []byte) { putU32(b[12:16], 0x04030201) })
	mutate("reserved-nonzero", func(b []byte) { b[40] = 1 })
	mutate("flipped-content-byte", func(b []byte) { b[headerSize+5] ^= 0xff })
	mutate("flipped-checksum", func(b []byte) { b[33] ^= 0xff })
	mutate("negative-n", func(b []byte) { putU64(b[16:24], ^uint64(0)) })
	mutate("negative-m", func(b []byte) { putU64(b[24:32], ^uint64(0)) })
	mutate("oversized-n", func(b []byte) { putU64(b[16:24], 1<<40) })
	mutate("oversized-m", func(b []byte) { putU64(b[24:32], 1<<40) })
	// Counts that pass the range check but disagree with the file size
	// must be caught before any section is touched.
	mutate("n-size-mismatch", func(b []byte) { putU64(b[16:24], uint64(g.NumVertices()+1)); refreshCRC(b) })
	mutate("m-size-mismatch", func(b []byte) { putU64(b[24:32], uint64(g.NumPairs()-1)); refreshCRC(b) })

	for _, cut := range []int{0, 4, headerSize - 1, headerSize, len(enc) / 2, len(enc) - 1} {
		b := enc[:cut]
		if _, err := Decode(b); err == nil {
			t.Errorf("truncation to %d bytes: decode succeeded", cut)
		}
	}
	if _, err := Decode(append(bytes.Clone(enc), 0)); err == nil {
		t.Error("trailing byte: decode succeeded")
	}
}

// TestDecodeRejectsStructuralCorruption mutates section *content* (with
// a refreshed checksum) and expects the columnar validation to refuse
// cleanly: out-of-range indices, denormalized pairs, bad probabilities,
// broken CSR offsets.
func TestDecodeRejectsStructuralCorruption(t *testing.T) {
	g := testGraph(t, 50)
	enc := encode(t, g)
	lay, err := layoutFor(int64(g.NumVertices()), int64(g.NumPairs()))
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, fn func(b []byte)) {
		b := bytes.Clone(enc)
		fn(b)
		refreshCRC(b)
		_, err := Decode(b)
		if err == nil {
			t.Errorf("%s: decode succeeded on structurally corrupt input", name)
			return
		}
		if !strings.Contains(err.Error(), "uncertain:") {
			t.Errorf("%s: error did not come from structural validation: %v", name, err)
		}
	}

	mutate("pairU-out-of-range", func(b []byte) { putU32(b[lay.pairU.off:], 1<<30) })
	mutate("pair-denormalized", func(b []byte) {
		// Swap U and V of pair 0: still in range, but U > V.
		u, v := getU32(b[lay.pairU.off:]), getU32(b[lay.pairV.off:])
		putU32(b[lay.pairU.off:], v)
		putU32(b[lay.pairV.off:], u)
	})
	mutate("probability-above-one", func(b []byte) {
		putU64(b[lay.pairP.off:], 0x4000000000000000) // float64(2.0)
	})
	mutate("probability-nan", func(b []byte) {
		putU64(b[lay.pairP.off:], 0x7ff8000000000001)
	})
	mutate("incOff-nonzero-start", func(b []byte) { putU64(b[lay.incOff.off:], 1) })
	mutate("incOff-decreasing", func(b []byte) {
		putU64(b[lay.incOff.off+8:], ^uint64(0)) // incOff[1] = -1
	})
	mutate("incIdx-out-of-range", func(b []byte) { putU32(b[lay.incIdx.off:], 1<<30) })
	mutate("incIdx-wrong-vertex", func(b []byte) {
		// Point vertex 0's first incident slot at a pair not touching 0
		// (the last pair in a 50-ring touches 48/49 only).
		putU32(b[lay.incIdx.off:], uint32(getU64(b[24:32])-1))
	})
}

// TestLoadAllocationsConstant pins the "zero allocation proportional to
// graph size" contract of the mmap path: loading a graph 8× larger must
// not change the (small, constant) allocation count.
func TestLoadAllocationsConstant(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	allocsFor := func(n int) float64 {
		path := writeTemp(t, testGraph(t, n))
		return testing.AllocsPerRun(10, func() {
			g, err := LoadMode(path, ModeMmap)
			if err != nil {
				t.Fatal(err)
			}
			if g.NumVertices() != n {
				t.Fatal("wrong graph")
			}
		})
	}
	small, large := allocsFor(500), allocsFor(4000)
	if small != large {
		t.Errorf("allocations grew with graph size: %v at n=500, %v at n=4000", small, large)
	}
	if small > 32 {
		t.Errorf("mmap load performs %v allocations, want a small constant", small)
	}
}

func TestWriteFileRejectsBadPath(t *testing.T) {
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "g.ugb"), testGraph(t, 3)); err == nil {
		t.Error("WriteFile into a missing directory succeeded")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.ugb")); err == nil {
		t.Error("loading a missing file succeeded")
	}
	short := filepath.Join(t.TempDir(), "short.ugb")
	if err := os.WriteFile(short, []byte(Magic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(short); err == nil {
		t.Error("loading a header-truncated file succeeded")
	}
}

// TestDecodeMisalignedInput checks the aligned-copy fallback: a Decode
// over bytes at an odd offset still round-trips.
func TestDecodeMisalignedInput(t *testing.T) {
	g := testGraph(t, 30)
	enc := encode(t, g)
	buf := make([]byte, len(enc)+1)
	copy(buf[1:], enc)
	got, err := Decode(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, got, g)
}
