package ugbin

import (
	"bytes"
	"testing"

	"uncertaingraph/internal/randx"
)

// FuzzReadUGB throws arbitrary bytes at the binary reader. The
// contract under attack: truncated, corrupt, oversized-length-header
// and misaligned inputs must produce a clean error — never a panic,
// never an allocation sized by an unvalidated header count (Decode is
// zero-copy, so the only way it could allocate attacker-sized memory
// is by trusting n/m before checking them against len(data)).
//
// Inputs that do decode must behave as full graphs: sampling a world
// and touching every accessor must not fault, and re-encoding must
// reproduce the input byte-for-byte (a decoded graph aliases the very
// sections it was decoded from).
func FuzzReadUGB(f *testing.F) {
	for _, n := range []int{0, 2, 17} {
		f.Add(encode(f, testGraph(f, n)))
	}
	// Hostile headers over a valid prefix: oversized counts, absurd
	// version, truncations, trailing garbage.
	valid := encode(f, testGraph(f, 9))
	big := bytes.Clone(valid)
	putU64(big[24:32], 1<<62)
	f.Add(big)
	ver := bytes.Clone(valid)
	putU32(ver[8:12], 7)
	f.Add(ver)
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-3])
	f.Add(append(bytes.Clone(valid), 1, 2, 3))
	f.Add([]byte(Magic))
	f.Add([]byte("# uncertain graph: vertices=3 pairs=1\n0 1 0.5\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Decode(data)
		if err != nil {
			return
		}
		// A decode that succeeded must yield a fully usable graph.
		rng := randx.New(3)
		w := g.SampleWorld(rng)
		if w.NumVertices() != g.NumVertices() {
			t.Fatalf("world has %d vertices, graph %d", w.NumVertices(), g.NumVertices())
		}
		for v := 0; v < g.NumVertices(); v++ {
			g.IncidentCount(v)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("re-encoding a decoded graph: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatal("re-encoded bytes differ from the accepted input")
		}
	})
}
