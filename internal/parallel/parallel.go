// Package parallel provides the one concurrency primitive the
// obfuscation engine needs: a work-stealing loop over an index range.
// Iterations are claimed in order but may complete in any order, so
// callers that need determinism must make each iteration independent
// (write to its own slot, or merge under a deterministic rule).
package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// For invokes fn(i) for every i in [0, n), on up to workers goroutines
// (workers <= 1 runs inline). aborted, when non-nil, is polled before
// each claim; once it reports true the remaining iterations may be
// skipped — callers use this to reap cancelled speculative work. All
// spawned goroutines have returned when For does.
func For(n, workers int, aborted func() bool, fn func(i int)) {
	if aborted == nil {
		aborted = func() bool { return false }
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n && !aborted(); i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !aborted() {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForChunks partitions [0, n) into fixed size-chunk ranges and invokes
// fn(lo, hi) once per range, on up to `workers` goroutines (claimed in
// order, work-stealing, like For). Chunk boundaries depend only on
// (n, chunk) — never on the worker count or the schedule — which is
// the determinism discipline the adversary entropy scan established:
// callers that merge per-chunk contributions under an order-insensitive
// rule (exact integer counts, idempotent maxima) get bit-identical
// results for every worker count. fn must be safe for concurrent
// invocation on disjoint ranges.
func ForChunks(n, chunk, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	nchunks := (n + chunk - 1) / chunk
	For(nchunks, workers, nil, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// ForCtx is For with context-based abortion: iteration claims stop at
// the first claim after ctx is done (in-flight iterations run to
// completion — cancellation lands within one iteration of work), and
// the context's error is returned. A nil ctx never aborts. All spawned
// goroutines have returned when ForCtx does, so a cancelled loop leaks
// nothing.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx == nil {
		For(n, workers, nil, fn)
		return nil
	}
	For(n, workers, func() bool { return ctx.Err() != nil }, fn)
	return ctx.Err()
}

// ForWorkers dispatches the indices [0, n) to exactly `workers`
// long-lived goroutines over an unbuffered channel, invoking
// fn(worker, i) with the stable worker id — the shape the world-loop
// engines need, where each worker owns heavy reusable state (samplers,
// BFS scratch) addressed by that id. fn's first call for a given
// worker id happens on that worker's goroutine, so per-worker state
// may be built lazily and in parallel without synchronization.
//
// Cancelling ctx stops dispatch at the next index and makes workers
// skip (drain) anything already queued, so cancellation lands within
// one in-flight iteration per worker; all goroutines are joined before
// ForWorkers returns, and the context's error is returned. A nil ctx
// never cancels.
func ForWorkers(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 1 {
		// Inline like For(): without this guard a non-positive worker
		// count would leave the unbuffered send below blocked forever.
		for i := 0; i < n && ctx.Err() == nil; i++ {
			fn(0, i)
		}
		return ctx.Err()
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain the channel without doing work
				}
				fn(w, i)
			}
		}(w)
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}
