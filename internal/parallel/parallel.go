// Package parallel provides the one concurrency primitive the
// obfuscation engine needs: a work-stealing loop over an index range.
// Iterations are claimed in order but may complete in any order, so
// callers that need determinism must make each iteration independent
// (write to its own slot, or merge under a deterministic rule).
package parallel

import (
	"sync"
	"sync/atomic"
)

// For invokes fn(i) for every i in [0, n), on up to workers goroutines
// (workers <= 1 runs inline). aborted, when non-nil, is polled before
// each claim; once it reports true the remaining iterations may be
// skipped — callers use this to reap cancelled speculative work. All
// spawned goroutines have returned when For does.
func For(n, workers int, aborted func() bool, fn func(i int)) {
	if aborted == nil {
		aborted = func() bool { return false }
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n && !aborted(); i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !aborted() {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
