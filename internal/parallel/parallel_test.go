package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		For(n, workers, nil, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForZeroIterations(t *testing.T) {
	For(0, 4, nil, func(int) { t.Error("fn called for n=0") })
}

func TestForAbortSkipsRemainingWork(t *testing.T) {
	var ran atomic.Int32
	aborted := func() bool { return ran.Load() >= 5 }
	For(1000, 1, aborted, func(int) { ran.Add(1) })
	if got := ran.Load(); got < 5 || got == 1000 {
		t.Errorf("abort after 5 iterations ran %d", got)
	}
}

func TestForJoinsBeforeReturning(t *testing.T) {
	// Writes from fn must be visible without further synchronization.
	sum := make([]int, 200)
	For(len(sum), 4, nil, func(i int) { sum[i] = i })
	for i, v := range sum {
		if v != i {
			t.Fatalf("slot %d = %d: For returned before workers finished", i, v)
		}
	}
}

func TestForCtxNilContextRunsEverything(t *testing.T) {
	var ran atomic.Int32
	if err := ForCtx(nil, 50, 4, func(int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Errorf("ran %d of 50", ran.Load())
	}
}

func TestForCtxCancelStopsClaimsAndReturnsErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForCtx(ctx, 1000, 1, func(int) {
		if ran.Add(1) == 5 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Claims are polled per iteration: at most the in-flight iteration
	// completes after cancellation.
	if got := ran.Load(); got != 5 {
		t.Errorf("cancel after 5 iterations ran %d", got)
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForCtx(ctx, 10, 3, func(int) { t.Error("fn ran under a dead context") }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForChunksCoversEveryIndexOnceWithFixedBoundaries(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		for _, n := range []int{0, 1, 7, 8, 17, 64} {
			const chunk = 8
			var hits [64]atomic.Int32
			ForChunks(n, chunk, workers, func(lo, hi int) {
				if lo%chunk != 0 {
					t.Errorf("workers=%d n=%d: chunk start %d not a multiple of %d", workers, n, lo, chunk)
				}
				if hi != lo+chunk && hi != n {
					t.Errorf("workers=%d n=%d: chunk [%d,%d) is neither full nor final", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := 0; i < n; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForChunksClampsChunkToOne(t *testing.T) {
	var count atomic.Int32
	ForChunks(5, 0, 2, func(lo, hi int) {
		if hi != lo+1 {
			t.Errorf("chunk [%d,%d), want width 1", lo, hi)
		}
		count.Add(1)
	})
	if count.Load() != 5 {
		t.Errorf("got %d chunks, want 5", count.Load())
	}
}
