// Package degreetrail implements the degree-trail attack of Medforth
// and Wang (ICDM'11) against sequential graph releases, which the
// paper's Section 8 raises as an open question for probabilistic
// publication: "The applicability of the degree-trail attack to our
// probabilistic graph release is an open research question."
//
// The setting: a network evolves and the publisher releases a snapshot
// after each growth phase. The adversary knows the target's degree at
// every release time (its degree trail) and intersects the candidate
// sets across releases. Against certain releases the candidate set is
// an exact trail match; against uncertain releases each release
// contributes a likelihood X^t_u(ω_t) and the adversary's belief is the
// normalized product — the natural sequential extension of the paper's
// Y_ω machinery, so the entropy/(k, ε) framework applies unchanged.
package degreetrail

import (
	"math"
	"math/rand"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/mathx"
)

// Evolve produces `releases` growing snapshots of g: each step adds
// approximately growth*|E| new edges by preferential attachment among
// the existing vertices, modelling an evolving social network with a
// fixed user base.
func Evolve(g *graph.Graph, releases int, growth float64, rng *rand.Rand) []*graph.Graph {
	n := g.NumVertices()
	b := graph.NewBuilder(n)
	var repeated []int
	g.ForEachEdge(func(u, v int) {
		b.AddEdge(u, v)
		repeated = append(repeated, u, v)
	})
	out := make([]*graph.Graph, 0, releases)
	out = append(out, b.Build())
	for t := 1; t < releases; t++ {
		add := int(growth * float64(g.NumEdges()))
		for added := 0; added < add; {
			u := repeated[rng.Intn(len(repeated))]
			var v int
			if rng.Float64() < 0.3 {
				v = rng.Intn(n)
			} else {
				v = repeated[rng.Intn(len(repeated))]
			}
			if u != v && b.AddEdge(u, v) {
				repeated = append(repeated, u, v)
				added++
			}
		}
		out = append(out, b.Build())
	}
	return out
}

// Trails returns trails[v][t] = degree of v in snapshot t.
func Trails(snapshots []*graph.Graph) [][]int {
	if len(snapshots) == 0 {
		return nil
	}
	n := snapshots[0].NumVertices()
	out := make([][]int, n)
	for v := 0; v < n; v++ {
		trail := make([]int, len(snapshots))
		for t, g := range snapshots {
			trail[t] = g.Degree(v)
		}
		out[v] = trail
	}
	return out
}

// CertainCrowdSizes returns, per vertex, the number of vertices sharing
// its exact degree trail across certain releases — the candidate-set
// size of the Medforth–Wang attack. A crowd of 1 is full
// re-identification.
func CertainCrowdSizes(snapshots []*graph.Graph) []int {
	trails := Trails(snapshots)
	counts := make(map[string]int, len(trails))
	keys := make([]string, len(trails))
	for v, trail := range trails {
		k := trailKey(trail)
		keys[v] = k
		counts[k]++
	}
	out := make([]int, len(trails))
	for v := range trails {
		out[v] = counts[keys[v]]
	}
	return out
}

func trailKey(trail []int) string {
	buf := make([]byte, 0, 4*len(trail))
	for _, d := range trail {
		buf = append(buf, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
	}
	return string(buf)
}

// SequentialLevels runs the degree-trail attack against a sequence of
// published models (uncertain graphs or baseline transition models, one
// per release). For each target vertex v it forms the adversary's
// combined belief over published vertices,
//
//	W_u = Π_t X^t_u(trail_v[t]),
//
// and returns the entropy-based obfuscation level 2^H(W) — the
// sequential generalization of Definition 2. Targets indexes the
// vertices to attack (nil = all).
func SequentialLevels(models []adversary.Model, trails [][]int, targets []int) []float64 {
	if len(models) == 0 {
		return nil
	}
	n := models[0].NumVertices()
	if targets == nil {
		targets = make([]int, n)
		for i := range targets {
			targets[i] = i
		}
	}
	// Materialize, per release, the X columns needed by the attacked
	// trails, sharing work across targets.
	columns := make([]map[int][]float64, len(models))
	for t, m := range models {
		need := make([]int, 0, len(targets))
		seen := map[int]struct{}{}
		for _, v := range targets {
			w := trails[v][t]
			if _, ok := seen[w]; !ok {
				seen[w] = struct{}{}
				need = append(need, w)
			}
		}
		columns[t] = materializeColumns(m, need)
	}
	out := make([]float64, len(targets))
	weights := make([]float64, n)
	for i, v := range targets {
		for u := range weights {
			weights[u] = 1
		}
		for t := range models {
			col := columns[t][trails[v][t]]
			for u := range weights {
				weights[u] *= col[u]
			}
		}
		out[i] = math.Exp2(mathx.Entropy2(weights))
	}
	return out
}

// materializeColumns evaluates X_.(ω) for each requested ω over all
// vertices of the model.
func materializeColumns(m adversary.Model, omegas []int) map[int][]float64 {
	if prep, ok := m.(adversary.Preparer); ok {
		prep.Prepare(omegas)
	}
	n := m.NumVertices()
	out := make(map[int][]float64, len(omegas))
	for _, w := range omegas {
		out[w] = make([]float64, n)
	}
	for u := 0; u < n; u++ {
		x := m.VertexX(u)
		for _, w := range omegas {
			out[w][u] = x.Prob(w)
		}
	}
	return out
}
