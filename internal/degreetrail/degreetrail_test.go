package degreetrail

import (
	"math"
	"sort"
	"testing"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/core"
	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/uncertain"
)

func evolveBase(t testing.TB) []*graph.Graph {
	g := gen.HolmeKim(randx.New(1), 500, 3, 0.3)
	snaps := Evolve(g, 3, 0.15, randx.New(2))
	if len(snaps) != 3 {
		t.Fatal("snapshot count")
	}
	return snaps
}

func TestEvolveGrowsMonotonically(t *testing.T) {
	snaps := evolveBase(t)
	for i := 1; i < len(snaps); i++ {
		if snaps[i].NumEdges() <= snaps[i-1].NumEdges() {
			t.Fatalf("release %d did not grow: %d vs %d", i, snaps[i].NumEdges(), snaps[i-1].NumEdges())
		}
		// Growth only adds: every earlier edge persists.
		snaps[i-1].ForEachEdge(func(u, v int) {
			if !snaps[i].HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) vanished in release %d", u, v, i)
			}
		})
	}
}

func TestTrails(t *testing.T) {
	snaps := evolveBase(t)
	trails := Trails(snaps)
	if len(trails) != 500 {
		t.Fatal("trail count")
	}
	for v, trail := range trails {
		for s := 1; s < len(trail); s++ {
			if trail[s] < trail[s-1] {
				t.Fatalf("vertex %d degree decreased along trail %v", v, trail)
			}
		}
		if trail[0] != snaps[0].Degree(v) {
			t.Fatal("trail misaligned")
		}
	}
}

func TestCertainTrailAttackShrinksCrowds(t *testing.T) {
	// The Medforth-Wang observation: more releases mean smaller trail
	// crowds, i.e. the sequence leaks much more than one snapshot.
	snaps := evolveBase(t)
	one := CertainCrowdSizes(snaps[:1])
	three := CertainCrowdSizes(snaps)
	if medianInt(three) >= medianInt(one) {
		t.Errorf("trail attack did not shrink crowds: median %d -> %d",
			medianInt(one), medianInt(three))
	}
	reident1, reident3 := 0, 0
	for v := range one {
		if one[v] == 1 {
			reident1++
		}
		if three[v] == 1 {
			reident3++
		}
	}
	if reident3 <= reident1 {
		t.Errorf("re-identified %d with one release but %d with three", reident1, reident3)
	}
}

func TestSequentialLevelsCertainMatchesCrowds(t *testing.T) {
	// Against certain releases, the probabilistic attack degenerates to
	// exact trail matching: level = crowd size.
	snaps := evolveBase(t)
	models := make([]adversary.Model, len(snaps))
	for i, s := range snaps {
		models[i] = adversary.UncertainModel{G: uncertain.FromCertain(s)}
	}
	trails := Trails(snaps)
	targets := []int{0, 7, 42, 99, 313}
	levels := SequentialLevels(models, trails, targets)
	crowds := CertainCrowdSizes(snaps)
	for i, v := range targets {
		if math.Abs(levels[i]-float64(crowds[v])) > 1e-6 {
			t.Errorf("target %d: level %v vs crowd %d", v, levels[i], crowds[v])
		}
	}
}

func TestUncertainReleasesResistTrailAttack(t *testing.T) {
	// The open question of Section 8, answered empirically: publishing
	// each release as an uncertain graph leaves substantially larger
	// effective crowds under the degree-trail attack than publishing
	// certain snapshots.
	snaps := evolveBase(t)
	trails := Trails(snaps)

	certain := make([]adversary.Model, len(snaps))
	obf := make([]adversary.Model, len(snaps))
	for i, s := range snaps {
		certain[i] = adversary.UncertainModel{G: uncertain.FromCertain(s)}
		att := core.GenerateObfuscation(s, 0.15, core.Params{
			K: 5, Eps: 0.5, Trials: 1, Rng: randx.New(int64(10 + i)),
		})
		if att.Failed() {
			t.Fatal("obfuscation failed")
		}
		obf[i] = adversary.UncertainModel{G: att.G}
	}
	targets := make([]int, 0, 100)
	for v := 0; v < 500; v += 5 {
		targets = append(targets, v)
	}
	certLevels := SequentialLevels(certain, trails, targets)
	obfLevels := SequentialLevels(obf, trails, targets)
	if medianFloat(obfLevels) <= medianFloat(certLevels) {
		t.Errorf("uncertain releases gave median level %v, certain %v",
			medianFloat(obfLevels), medianFloat(certLevels))
	}
}

func TestSequentialLevelsNilTargets(t *testing.T) {
	snaps := evolveBase(t)[:1]
	models := []adversary.Model{adversary.UncertainModel{G: uncertain.FromCertain(snaps[0])}}
	levels := SequentialLevels(models, Trails(snaps), nil)
	if len(levels) != 500 {
		t.Fatalf("nil targets should attack everyone, got %d", len(levels))
	}
}

func TestSequentialLevelsEmpty(t *testing.T) {
	if SequentialLevels(nil, nil, nil) != nil {
		t.Error("no models should give nil")
	}
}

func medianInt(xs []int) int {
	s := append([]int(nil), xs...)
	sort.Ints(s)
	return s[len(s)/2]
}

func medianFloat(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
