package mathx

import (
	"math"
	"math/rand"
)

// TruncNormal is the [0,1]-truncated half-normal distribution R_sigma of
// paper Eq. 6: the density of |N(0, sigma^2)| restricted to [0,1] and
// renormalized. Small sigma concentrates mass near 0 (little injected
// uncertainty); large sigma spreads mass towards 1.
type TruncNormal struct {
	Sigma float64
	// mass is the normalizing constant: P(0 <= |N(0,sigma)| <= 1)
	// relative to the positive half, i.e. erf(1/(sigma*sqrt2)).
	mass float64
}

// NewTruncNormal returns the R_sigma distribution for the given standard
// deviation. sigma must be positive; a sigma of zero degenerates to the
// point mass at 0 and is handled by Sample.
func NewTruncNormal(sigma float64) TruncNormal {
	if sigma <= 0 {
		return TruncNormal{Sigma: 0, mass: 1}
	}
	return TruncNormal{Sigma: sigma, mass: math.Erf(1 / (sigma * math.Sqrt2))}
}

// PDF returns the density of R_sigma at r.
func (t TruncNormal) PDF(r float64) float64 {
	if r < 0 || r > 1 {
		return 0
	}
	if t.Sigma == 0 {
		if r == 0 {
			return math.Inf(1)
		}
		return 0
	}
	// Density of the positive half-normal is 2*phi(r/sigma)/sigma; the
	// truncation to [0,1] divides by mass. Equivalently this is
	// Phi_{0,sigma}(r) / integral_0^1 Phi_{0,sigma}, as in the paper.
	return 2 * NormalPDF(r, 0, t.Sigma) / t.mass
}

// CDF returns P(R <= r) for R ~ R_sigma.
func (t TruncNormal) CDF(r float64) float64 {
	switch {
	case r < 0:
		return 0
	case r >= 1:
		return 1
	case t.Sigma == 0:
		return 1
	}
	return math.Erf(r/(t.Sigma*math.Sqrt2)) / t.mass
}

// Mean returns E[R] for R ~ R_sigma (closed form for the truncated
// half-normal).
func (t TruncNormal) Mean() float64 {
	if t.Sigma == 0 {
		return 0
	}
	s := t.Sigma
	// E[R] = (2*phi(0) - 2*phi(1/s)) * s^2 / mass where phi is the
	// standard normal pdf scaled appropriately; derived from
	// integral r*2/(s)*phi(r/s) dr on [0,1].
	return 2 * s * InvSqrt2Pi * (1 - math.Exp(-1/(2*s*s))) / t.mass
}

// Sample draws one perturbation value r in [0,1].
//
// For sigma <= 1 rejection against the half-normal accepts with
// probability erf(1/(sigma*sqrt2)) >= erf(1/sqrt2) ~ 0.68, so rejection is
// cheap; for very large sigma we fall back to inverse-CDF sampling to keep
// the cost bounded.
func (t TruncNormal) Sample(rng *rand.Rand) float64 {
	if t.Sigma == 0 {
		return 0
	}
	if t.Sigma <= 2 {
		for {
			r := math.Abs(rng.NormFloat64() * t.Sigma)
			if r <= 1 {
				return r
			}
		}
	}
	// Inverse CDF: r = sigma*sqrt2 * erfinv(u * mass).
	u := rng.Float64()
	return t.Sigma * math.Sqrt2 * erfinv(u*t.mass)
}

// erfinv computes the inverse error function on (-1, 1) using the
// rational approximation of Giles (2012) refined by one Newton step,
// accurate to ~1e-12 over the needed range.
func erfinv(x float64) float64 {
	if x <= -1 || x >= 1 {
		if x == 1 {
			return math.Inf(1)
		}
		if x == -1 {
			return math.Inf(-1)
		}
		return math.NaN()
	}
	w := -math.Log((1 - x) * (1 + x))
	var p float64
	if w < 5 {
		w -= 2.5
		p = 2.81022636e-08
		p = 3.43273939e-07 + p*w
		p = -3.5233877e-06 + p*w
		p = -4.39150654e-06 + p*w
		p = 0.00021858087 + p*w
		p = -0.00125372503 + p*w
		p = -0.00417768164 + p*w
		p = 0.246640727 + p*w
		p = 1.50140941 + p*w
	} else {
		w = math.Sqrt(w) - 3
		p = -0.000200214257
		p = 0.000100950558 + p*w
		p = 0.00134934322 + p*w
		p = -0.00367342844 + p*w
		p = 0.00573950773 + p*w
		p = -0.0076224613 + p*w
		p = 0.00943887047 + p*w
		p = 1.00167406 + p*w
		p = 2.83297682 + p*w
	}
	y := p * x
	// One Newton iteration: f(y) = erf(y) - x.
	y -= (math.Erf(y) - x) / (2 * InvSqrt2Pi * math.Sqrt2 * math.Exp(-y*y))
	return y
}
