// Package mathx provides the numerical substrate used throughout the
// obfuscation system: Gaussian densities and CDFs, the [0,1]-truncated
// normal distribution R_sigma used to draw edge perturbations (paper
// Eq. 6), Shannon entropy, log-log regression for power-law fitting,
// Hoeffding sample-size bounds, and jackknife error estimation.
package mathx

import "math"

// InvSqrt2Pi is 1/sqrt(2*pi), the normalizing constant of the standard
// normal density.
const InvSqrt2Pi = 0.3989422804014326779399460599343818684758586311649346576659258296

// NormalPDF returns the density of the normal distribution with mean mu
// and standard deviation sigma at x (paper Eq. 5). sigma must be positive.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return InvSqrt2Pi / sigma * math.Exp(-0.5*z*z)
}

// StdNormalPDF returns the standard normal density at x.
func StdNormalPDF(x float64) float64 {
	return InvSqrt2Pi * math.Exp(-0.5*x*x)
}

// NormalCDF returns P(X <= x) for X ~ N(mu, sigma^2).
func NormalCDF(x, mu, sigma float64) float64 {
	return StdNormalCDF((x - mu) / sigma)
}

// StdNormalCDF returns the standard normal cumulative distribution
// function at x, computed via the error function.
func StdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalIntervalMass returns P(lo <= X <= hi) for X ~ N(mu, sigma^2).
// It is used for the CLT approximation of the Poisson-binomial degree
// distribution: Pr(d = w) ~ NormalIntervalMass(w-1/2, w+1/2, mu, sigma).
func NormalIntervalMass(lo, hi, mu, sigma float64) float64 {
	if hi < lo {
		return 0
	}
	// Difference of complementary error functions is more stable in the
	// tails than a difference of CDFs near 1.
	a := (lo - mu) / (sigma * math.Sqrt2)
	b := (hi - mu) / (sigma * math.Sqrt2)
	return 0.5 * (math.Erfc(a) - math.Erfc(b))
}
