package mathx

import "math"

// Entropy2 returns the Shannon entropy, in bits, of the distribution
// whose (unnormalized) weights are given. Zero weights contribute
// nothing (0*log 0 = 0). If the total weight is zero, the entropy is 0.
//
// Passing unnormalized weights is deliberate: the adversary model works
// with columns X_.(w) of the X matrix and normalizes them into Y_w on the
// fly (paper Eq. 3); doing the normalization inside the entropy avoids
// materializing each Y column.
func Entropy2(weights []float64) float64 {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		return 0
	}
	var h float64
	for _, w := range weights {
		if w > 0 {
			p := w / sum
			h -= p * math.Log2(p)
		}
	}
	return h
}

// EntropyAccumulator incrementally computes the entropy of an
// unnormalized distribution without storing it. It exploits
//
//	H = -sum p_i log2 p_i = log2(S) - (1/S) sum w_i log2 w_i
//
// where S = sum w_i, so a single pass over the weights suffices and the
// weights may be streamed column-wise out of the adversary's X matrix.
type EntropyAccumulator struct {
	sum     float64 // S
	sumWLog float64 // sum w_i*log2(w_i)
}

// Add accumulates a weight w >= 0.
func (a *EntropyAccumulator) Add(w float64) {
	if w <= 0 {
		return
	}
	a.sum += w
	a.sumWLog += w * math.Log2(w)
}

// Sum returns the total accumulated weight.
func (a *EntropyAccumulator) Sum() float64 { return a.sum }

// Entropy returns the Shannon entropy, in bits, of the accumulated
// distribution after normalization.
func (a *EntropyAccumulator) Entropy() float64 {
	if a.sum <= 0 {
		return 0
	}
	return math.Log2(a.sum) - a.sumWLog/a.sum
}

// Reset clears the accumulator for reuse.
func (a *EntropyAccumulator) Reset() { a.sum, a.sumWLog = 0, 0 }

// Merge folds another accumulator into a. Because both tracked sums are
// plain additive, accumulators built on disjoint weight subsets merge
// exactly — this is what lets the adversary compute column entropies
// over vertex ranges in parallel.
func (a *EntropyAccumulator) Merge(b EntropyAccumulator) {
	a.sum += b.sum
	a.sumWLog += b.sumWLog
}
