package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestHoeffdingSampleSize(t *testing.T) {
	// Clustering coefficient case from Section 6.4: a=0, b=1.
	// r = (1/(2*eps^2)) * ln(2/delta).
	got := HoeffdingSampleSize(0, 1, 0.05, 0.05)
	want := int(math.Ceil(0.5 / (0.05 * 0.05) * math.Log(2/0.05)))
	if got != want {
		t.Errorf("HoeffdingSampleSize = %d, want %d", got, want)
	}
	if HoeffdingSampleSize(0, 1, 0, 0.1) != 0 {
		t.Error("eps=0 should yield 0")
	}
	if HoeffdingSampleSize(1, 0, 0.1, 0.1) != 0 {
		t.Error("b<=a should yield 0")
	}
}

func TestHoeffdingSampleSizeTinyEpsOverflowRegression(t *testing.T) {
	// Regression: for eps small enough the float bound is +Inf, and
	// int(math.Ceil(+Inf)) is a spec-undefined conversion that produced
	// -9223372036854775808 on this platform — a negative world count
	// that flowed into DefaultWorlds-style callers. The size must
	// saturate at math.MaxInt instead.
	got := HoeffdingSampleSize(0, 1, 1e-200, 0.5)
	if got <= 0 {
		t.Fatalf("HoeffdingSampleSize(0,1,1e-200,0.5) = %d, want a positive (saturated) count", got)
	}
	if got != math.MaxInt {
		t.Errorf("HoeffdingSampleSize(0,1,1e-200,0.5) = %d, want math.MaxInt", got)
	}
	// A merely-huge finite bound must also stay positive.
	if got := HoeffdingSampleSize(0, 1, 1e-12, 0.05); got <= 0 {
		t.Errorf("HoeffdingSampleSize(0,1,1e-12,0.05) = %d, want > 0", got)
	}
}

func TestHoeffdingRoundTrip(t *testing.T) {
	// Using the computed r, the failure bound must be at most delta.
	a, b, eps, delta := 0.0, 5.0, 0.2, 0.01
	r := HoeffdingSampleSize(a, b, eps, delta)
	if bound := HoeffdingFailureBound(a, b, eps, r); bound > delta+1e-12 {
		t.Errorf("bound %v exceeds delta %v at r=%d", bound, delta, r)
	}
	if bound := HoeffdingFailureBound(a, b, eps, r-10); bound <= delta {
		t.Errorf("bound at r-10 should exceed delta, got %v", bound)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(mean, 5, 1e-12) {
		t.Errorf("mean = %v, want 5", mean)
	}
	// Sample (Bessel) std of this classic dataset: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almostEq(std, want, 1e-12) {
		t.Errorf("std = %v, want %v", std, want)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("empty input should give 0,0")
	}
	if m, s := MeanStd([]float64{3}); m != 3 || s != 0 {
		t.Error("single value should give value,0")
	}
}

func TestRelativeSEM(t *testing.T) {
	xs := []float64{10, 12, 8, 11, 9}
	mean, std := MeanStd(xs)
	want := std / math.Sqrt(5) / mean
	if got := RelativeSEM(xs); !almostEq(got, want, 1e-12) {
		t.Errorf("RelativeSEM = %v, want %v", got, want)
	}
	if RelativeSEM([]float64{0, 0}) != 0 {
		t.Error("zero-mean zero-spread input should yield 0")
	}
}

func TestRelativeSEMZeroMeanNonzeroSpreadRegression(t *testing.T) {
	// Regression: a zero mean with nonzero spread used to return 0 —
	// "perfectly converged" — which would make adaptive stopping quit
	// after one block on any statistic whose samples straddle zero.
	// The relative error of a zero-mean estimate is unbounded: +Inf.
	if got := RelativeSEM([]float64{1, -1}); !math.IsInf(got, 1) {
		t.Fatalf("RelativeSEM({1,-1}) = %v, want +Inf", got)
	}
	if got := RelativeSEM([]float64{0, 3, -3, 0}); !math.IsInf(got, 1) {
		t.Errorf("RelativeSEM({0,3,-3,0}) = %v, want +Inf", got)
	}
	// Degenerate cases keep returning 0.
	if got := RelativeSEM(nil); got != 0 {
		t.Errorf("RelativeSEM(nil) = %v, want 0", got)
	}
	if got := RelativeSEM([]float64{0}); got != 0 {
		t.Errorf("RelativeSEM({0}) = %v, want 0", got)
	}
}

func TestRelativeSEMFromMomentsAgrees(t *testing.T) {
	for _, xs := range [][]float64{
		{10, 12, 8, 11, 9},
		{1, 1, 1, 1},
		{0.25},
		{0, 1, 0, 1, 1},
	} {
		var sum, sumsq float64
		for _, x := range xs {
			sum += x
			sumsq += x * x
		}
		want := RelativeSEM(xs)
		if got := RelativeSEMFromMoments(sum, sumsq, len(xs)); !almostEq(got, want, 1e-9) {
			t.Errorf("moments form on %v = %v, want %v", xs, got, want)
		}
	}
	// The zero-mean semantics must match the fixed RelativeSEM: spread
	// without mean is +Inf, degenerate samples are 0.
	if got := RelativeSEMFromMoments(0, 2, 2); !math.IsInf(got, 1) {
		t.Errorf("moments form zero-mean with spread = %v, want +Inf", got)
	}
	if got := RelativeSEMFromMoments(0, 0, 3); got != 0 {
		t.Errorf("moments form degenerate = %v, want 0", got)
	}
	if got := RelativeSEMFromMoments(0, 0, 0); got != 0 {
		t.Errorf("moments form empty = %v, want 0", got)
	}
}

func TestRelAbsErr(t *testing.T) {
	if got := RelAbsErr(110, 100); !almostEq(got, 0.1, 1e-12) {
		t.Errorf("RelAbsErr(110,100) = %v, want 0.1", got)
	}
	if got := RelAbsErr(-3, 0); !almostEq(got, 3, 1e-12) {
		t.Errorf("RelAbsErr(-3,0) = %v, want 3", got)
	}
}

func TestJackknifeMeanMatchesClassicSE(t *testing.T) {
	// For the sample mean, the jackknife SE equals the classic SEM
	// s/sqrt(r) exactly.
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	meanStat := func(v []float64) float64 {
		m, _ := MeanStd(v)
		return m
	}
	est, se := Jackknife(xs, meanStat)
	mean, std := MeanStd(xs)
	if !almostEq(est, mean, 1e-12) {
		t.Errorf("jackknife estimate %v != mean %v", est, mean)
	}
	if want := std / math.Sqrt(float64(len(xs))); !almostEq(se, want, 1e-9) {
		t.Errorf("jackknife SE %v != classic SEM %v", se, want)
	}
}

func TestJackknifeDegenerate(t *testing.T) {
	stat := func(v []float64) float64 { m, _ := MeanStd(v); return m }
	if _, se := Jackknife([]float64{5}, stat); se != 0 {
		t.Error("single measurement should have zero SE")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x+1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) || !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1 R2 1", fit)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{2}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := FitLine([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("expected error for constant x")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{2}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

func TestPowerLawExponentRecovery(t *testing.T) {
	// Exact power law: freq[d] = d^-2.5 for d in [5, 200].
	freq := make([]float64, 201)
	for d := 1; d <= 200; d++ {
		freq[d] = math.Pow(float64(d), -2.5)
	}
	gamma, err := PowerLawExponent(freq, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(gamma, -2.5, 1e-9) {
		t.Errorf("recovered exponent %v, want -2.5", gamma)
	}
	// Cutoff must matter: contaminate low degrees heavily.
	freq[1], freq[2] = 100, 100
	gammaLow, err := PowerLawExponent(freq, 1)
	if err != nil {
		t.Fatal(err)
	}
	gammaHigh, err := PowerLawExponent(freq, 5)
	if err != nil {
		t.Fatal(err)
	}
	if almostEq(gammaLow, gammaHigh, 1e-6) {
		t.Error("cutoff had no effect on contaminated data")
	}
	if !almostEq(gammaHigh, -2.5, 1e-9) {
		t.Errorf("cutoff fit %v, want -2.5", gammaHigh)
	}
}

func TestPowerLawExponentErrors(t *testing.T) {
	if _, err := PowerLawExponent([]float64{0, 1}, 1); err == nil {
		t.Error("expected error with a single usable point")
	}
}
