package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalPDFStandardValues(t *testing.T) {
	// phi(0) = 1/sqrt(2*pi).
	if got := NormalPDF(0, 0, 1); !almostEq(got, InvSqrt2Pi, 1e-15) {
		t.Errorf("NormalPDF(0,0,1) = %v, want %v", got, InvSqrt2Pi)
	}
	// phi(1) = exp(-1/2)/sqrt(2*pi).
	want := math.Exp(-0.5) * InvSqrt2Pi
	if got := NormalPDF(1, 0, 1); !almostEq(got, want, 1e-15) {
		t.Errorf("NormalPDF(1,0,1) = %v, want %v", got, want)
	}
	// Scaling: phi_{mu,sigma}(x) = phi((x-mu)/sigma)/sigma.
	if got, want := NormalPDF(3, 1, 2), StdNormalPDF(1)/2; !almostEq(got, want, 1e-15) {
		t.Errorf("NormalPDF(3,1,2) = %v, want %v", got, want)
	}
}

func TestStdNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-8, 6.22096057427178e-16},
	}
	for _, c := range cases {
		if got := StdNormalCDF(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("StdNormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 20)
		return almostEq(StdNormalCDF(x)+StdNormalCDF(-x), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalIntervalMass(t *testing.T) {
	// Whole line has mass ~1.
	if got := NormalIntervalMass(-50, 50, 0, 1); !almostEq(got, 1, 1e-12) {
		t.Errorf("mass(-50,50) = %v, want 1", got)
	}
	// Central interval of +-1 sigma ~ 0.6827.
	if got := NormalIntervalMass(-1, 1, 0, 1); !almostEq(got, 0.6826894921370859, 1e-12) {
		t.Errorf("mass(-1,1) = %v", got)
	}
	// Degenerate interval.
	if got := NormalIntervalMass(2, 1, 0, 1); got != 0 {
		t.Errorf("mass(2,1) = %v, want 0", got)
	}
	// Consistency with CDF difference.
	if got, want := NormalIntervalMass(0.3, 2.2, 1, 0.7), NormalCDF(2.2, 1, 0.7)-NormalCDF(0.3, 1, 0.7); !almostEq(got, want, 1e-12) {
		t.Errorf("interval mass %v != cdf diff %v", got, want)
	}
}

func TestNormalIntervalMassPartitionsUnity(t *testing.T) {
	// Summing masses of unit bins centered at integers covers the line.
	mu, sigma := 7.3, 2.1
	var total float64
	for w := -40; w <= 60; w++ {
		total += NormalIntervalMass(float64(w)-0.5, float64(w)+0.5, mu, sigma)
	}
	if !almostEq(total, 1, 1e-10) {
		t.Errorf("unit-bin masses sum to %v, want 1", total)
	}
}

func TestTruncNormalPDFIntegratesToOne(t *testing.T) {
	for _, sigma := range []float64{0.05, 0.3, 1, 5} {
		tn := NewTruncNormal(sigma)
		const steps = 200000
		var integral float64
		h := 1.0 / steps
		for i := 0; i < steps; i++ {
			integral += tn.PDF((float64(i) + 0.5) * h)
		}
		integral *= h
		if !almostEq(integral, 1, 1e-6) {
			t.Errorf("sigma=%v: integral of PDF = %v, want 1", sigma, integral)
		}
	}
}

func TestTruncNormalCDFMatchesPDF(t *testing.T) {
	tn := NewTruncNormal(0.4)
	for _, r := range []float64{0, 0.1, 0.5, 0.9, 1} {
		// Numerical integral of PDF up to r.
		const steps = 100000
		var integral float64
		h := r / steps
		for i := 0; i < steps; i++ {
			integral += tn.PDF((float64(i) + 0.5) * h)
		}
		integral *= h
		if !almostEq(integral, tn.CDF(r), 1e-6) {
			t.Errorf("CDF(%v) = %v, numeric integral = %v", r, tn.CDF(r), integral)
		}
	}
}

func TestTruncNormalSampleSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sigma := range []float64{1e-8, 0.01, 0.5, 3, 50} {
		tn := NewTruncNormal(sigma)
		for i := 0; i < 2000; i++ {
			r := tn.Sample(rng)
			if r < 0 || r > 1 || math.IsNaN(r) {
				t.Fatalf("sigma=%v: sample %v outside [0,1]", sigma, r)
			}
		}
	}
}

func TestTruncNormalSampleMean(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sigma := range []float64{0.1, 0.5, 2} {
		tn := NewTruncNormal(sigma)
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += tn.Sample(rng)
		}
		got := sum / n
		want := tn.Mean()
		if !almostEq(got, want, 0.005) {
			t.Errorf("sigma=%v: sample mean %v, analytic mean %v", sigma, got, want)
		}
	}
}

func TestTruncNormalMeanMonotoneInSigma(t *testing.T) {
	prev := -1.0
	for _, sigma := range []float64{0.01, 0.05, 0.1, 0.3, 0.7, 1.5, 4} {
		m := NewTruncNormal(sigma).Mean()
		if m <= prev {
			t.Fatalf("mean not increasing at sigma=%v: %v <= %v", sigma, m, prev)
		}
		prev = m
	}
	// As sigma -> infinity the distribution tends to uniform, mean -> 1/2.
	if m := NewTruncNormal(1e6).Mean(); !almostEq(m, 0.5, 1e-3) {
		t.Errorf("mean at huge sigma = %v, want ~0.5", m)
	}
}

func TestTruncNormalZeroSigma(t *testing.T) {
	tn := NewTruncNormal(0)
	rng := rand.New(rand.NewSource(7))
	if got := tn.Sample(rng); got != 0 {
		t.Errorf("zero-sigma sample = %v, want 0", got)
	}
	if got := tn.Mean(); got != 0 {
		t.Errorf("zero-sigma mean = %v, want 0", got)
	}
	if got := tn.CDF(0.5); got != 1 {
		t.Errorf("zero-sigma CDF(0.5) = %v, want 1", got)
	}
}

func TestErfinvRoundTrip(t *testing.T) {
	for _, x := range []float64{-0.999, -0.9, -0.5, -0.1, 0, 1e-6, 0.1, 0.5, 0.9, 0.99, 0.99999} {
		y := erfinv(x)
		if back := math.Erf(y); !almostEq(back, x, 1e-10) {
			t.Errorf("erf(erfinv(%v)) = %v", x, back)
		}
	}
	if !math.IsInf(erfinv(1), 1) || !math.IsInf(erfinv(-1), -1) {
		t.Error("erfinv at +-1 should be infinite")
	}
}
