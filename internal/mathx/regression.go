package mathx

import (
	"errors"
	"math"
)

// LinearFit holds the result of an ordinary-least-squares line fit
// y = Slope*x + Intercept, together with the coefficient of
// determination R2.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// ErrTooFewPoints is returned when a regression is attempted on fewer
// than two points.
var ErrTooFewPoints = errors.New("mathx: regression needs at least two points")

// FitLine fits y = a*x + b by ordinary least squares.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("mathx: mismatched regression inputs")
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrTooFewPoints
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("mathx: degenerate regression (constant x)")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1 // all residuals are zero on a constant y
	}
	return fit, nil
}

// PowerLawExponent estimates the exponent of a power-law frequency
// distribution freq[d] ~ d^gamma by least squares on the log-log plot,
// using only degrees d with minDegree <= d and freq[d] > 0. It returns
// the slope gamma (the paper's S_PL statistic, an estimate of -gamma in
// their sign convention: they report the fitted slope directly).
//
// The paper fits "focusing on higher degrees where the power law fits
// better ... ignoring smaller degrees"; minDegree implements that cutoff.
func PowerLawExponent(freq []float64, minDegree int) (float64, error) {
	if minDegree < 1 {
		minDegree = 1
	}
	var xs, ys []float64
	for d := minDegree; d < len(freq); d++ {
		if freq[d] > 0 {
			xs = append(xs, math.Log(float64(d)))
			ys = append(ys, math.Log(freq[d]))
		}
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		return 0, err
	}
	return fit.Slope, nil
}
