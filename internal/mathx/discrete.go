package mathx

import "math"

// BinomialPMF returns the probability mass function of Binomial(n, p) as
// a slice of length n+1. Entries are computed in log space (via the log
// gamma function), so rows remain accurate for n in the thousands where
// the naive recurrence underflows.
func BinomialPMF(n int, p float64) []float64 {
	pmf := make([]float64, n+1)
	switch {
	case n < 0:
		return nil
	case p <= 0:
		pmf[0] = 1
		return pmf
	case p >= 1:
		pmf[n] = 1
		return pmf
	}
	lp, lq := math.Log(p), math.Log1p(-p)
	lgN, _ := math.Lgamma(float64(n + 1))
	for k := 0; k <= n; k++ {
		lgK, _ := math.Lgamma(float64(k + 1))
		lgNK, _ := math.Lgamma(float64(n - k + 1))
		pmf[k] = math.Exp(lgN - lgK - lgNK + float64(k)*lp + float64(n-k)*lq)
	}
	return pmf
}

// Convolve returns the distribution of X+Y for independent X ~ a and
// Y ~ b given as PMFs; the result has length len(a)+len(b)-1.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] += ai * bj
		}
	}
	return out
}
