package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEntropy2KnownValues(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		want    float64
	}{
		{"uniform2", []float64{1, 1}, 1},
		{"uniform4", []float64{0.25, 0.25, 0.25, 0.25}, 2},
		{"uniform4-unnormalized", []float64{3, 3, 3, 3}, 2},
		{"point-mass", []float64{0, 5, 0}, 0},
		{"empty", nil, 0},
		{"all-zero", []float64{0, 0}, 0},
		// Paper Example 2: column deg=3 of Table 1 is Y=(0.9, 0.1) with
		// entropy ~0.469.
		{"paper-deg3", []float64{0.504, 0.056, 0, 0}, 0.4689955935892812},
	}
	for _, c := range cases {
		if got := Entropy2(c.weights); !almostEq(got, c.want, 1e-12) {
			t.Errorf("%s: Entropy2 = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEntropyAccumulatorMatchesEntropy2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		weights := make([]float64, n)
		for i := range weights {
			if rng.Float64() < 0.2 {
				weights[i] = 0
			} else {
				weights[i] = rng.ExpFloat64()
			}
		}
		var acc EntropyAccumulator
		for _, w := range weights {
			acc.Add(w)
		}
		if got, want := acc.Entropy(), Entropy2(weights); !almostEq(got, want, 1e-9) {
			t.Fatalf("accumulator entropy %v != direct %v (weights %v)", got, want, weights)
		}
	}
}

func TestEntropyBounds(t *testing.T) {
	// Property: 0 <= H <= log2(n) for any distribution on n outcomes.
	f := func(raw []float64) bool {
		weights := make([]float64, 0, len(raw))
		for _, w := range raw {
			if !math.IsNaN(w) && !math.IsInf(w, 0) {
				// Weights in practice are probabilities or counts; keep
				// the generated magnitudes in a range whose sum cannot
				// overflow.
				weights = append(weights, math.Mod(math.Abs(w), 1e6))
			}
		}
		h := Entropy2(weights)
		if h < -1e-12 {
			return false
		}
		n := 0
		for _, w := range weights {
			if w > 0 {
				n++
			}
		}
		if n == 0 {
			return h == 0
		}
		return h <= math.Log2(float64(n))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEntropyScaleInvariance(t *testing.T) {
	// Entropy of unnormalized weights must not depend on a global scale.
	w := []float64{0.1, 2, 3.5, 0, 7}
	h1 := Entropy2(w)
	scaled := make([]float64, len(w))
	for i := range w {
		scaled[i] = w[i] * 1e6
	}
	if h2 := Entropy2(scaled); !almostEq(h1, h2, 1e-12) {
		t.Errorf("entropy not scale invariant: %v vs %v", h1, h2)
	}
}

func TestEntropyAccumulatorReset(t *testing.T) {
	var acc EntropyAccumulator
	acc.Add(1)
	acc.Add(1)
	acc.Reset()
	if acc.Entropy() != 0 || acc.Sum() != 0 {
		t.Error("reset accumulator should be empty")
	}
	acc.Add(2)
	acc.Add(2)
	if got := acc.Entropy(); !almostEq(got, 1, 1e-12) {
		t.Errorf("entropy after reset = %v, want 1", got)
	}
}
