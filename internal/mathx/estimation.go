package mathx

import "math"

// HoeffdingSampleSize returns the minimal number of sampled possible
// worlds r that guarantees Pr(|E(S) - mean| >= eps) <= delta for a
// statistic bounded in [a, b] (paper Corollary 1):
//
//	r >= (1/2) * ((b-a)/eps)^2 * ln(2/delta).
//
// The result saturates at math.MaxInt: for eps small enough the float
// bound overflows to +Inf, and converting a float beyond the int range
// is undefined in the Go spec (on this platform it produced the
// negative minint, which then flowed into world-count defaults).
func HoeffdingSampleSize(a, b, eps, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 || b <= a {
		return 0
	}
	r := math.Ceil(0.5 * math.Pow((b-a)/eps, 2) * math.Log(2/delta))
	// float64(math.MaxInt) is exactly 2^63; any float strictly below it
	// converts safely. The negated comparison also routes NaN (possible
	// only from Inf/Inf argument combinations) to the saturated value
	// rather than through another undefined conversion.
	if !(r < float64(math.MaxInt)) {
		return math.MaxInt
	}
	return int(r)
}

// HoeffdingFailureBound returns the right-hand side of paper Lemma 2:
// the probability that the sample mean of r draws of a statistic bounded
// in [a, b] deviates from its expectation by at least eps,
//
//	2 * exp(-2*eps^2*r / (b-a)^2).
func HoeffdingFailureBound(a, b, eps float64, r int) float64 {
	if b <= a || r <= 0 {
		return 1
	}
	return 2 * math.Exp(-2*eps*eps*float64(r)/((b-a)*(b-a)))
}

// MeanStd returns the sample mean and the sample standard deviation
// (Bessel-corrected) of xs. For fewer than two values the standard
// deviation is 0.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// RelativeSEM returns the relative sample standard error of the mean used
// in paper Table 5: the sample standard deviation divided by sqrt(len)
// and normalized by the absolute sample mean.
//
// A zero mean with nonzero spread returns +Inf — the relative error of
// a zero-mean estimate is unbounded, and returning 0 here would declare
// the statistic perfectly converged (adaptive stopping would quit after
// one block on sparse worlds where e.g. S_CC samples are all 0 except
// a few). Only a degenerate sample — zero mean and zero spread, or no
// samples at all — reports 0.
func RelativeSEM(xs []float64) float64 {
	mean, std := MeanStd(xs)
	if mean == 0 {
		if std == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return std / math.Sqrt(float64(len(xs))) / math.Abs(mean)
}

// RelativeSEMFromMoments is RelativeSEM computed from running moments
// instead of a sample slice: sum and sumsq are Σx and Σx² over n
// samples. It shares RelativeSEM's semantics exactly — +Inf for a
// zero-mean sample with spread, 0 only for a degenerate one — so
// engines that accumulate integer counts (the query batch) apply the
// same convergence rule as engines that keep per-world sample arrays.
func RelativeSEMFromMoments(sum, sumsq float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	mean := sum / float64(n)
	var std float64
	if n >= 2 {
		// The ss difference can round slightly negative for constant
		// samples; clamp rather than emit NaN from Sqrt.
		if ss := sumsq - float64(n)*mean*mean; ss > 0 {
			std = math.Sqrt(ss / float64(n-1))
		}
	}
	if mean == 0 {
		if std == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return std / math.Sqrt(float64(n)) / math.Abs(mean)
}

// RelAbsErr returns |est-real| / |real|, the per-statistic relative error
// of paper Table 4; if real is 0 it returns |est|.
func RelAbsErr(est, real float64) float64 {
	if real == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-real) / math.Abs(real)
}

// Jackknife estimates the standard error of a statistic computed from r
// independent replicated measurements (e.g. repeated HyperANF runs, as
// the paper does in Section 6.3) using the delete-one jackknife:
// for each i the statistic is recomputed on the sample with element i
// removed, and the jackknife variance is (r-1)/r * sum (t_i - t_bar)^2.
//
// stat maps a slice of measurements to the derived scalar.
func Jackknife(measurements []float64, stat func([]float64) float64) (estimate, stderr float64) {
	r := len(measurements)
	estimate = stat(measurements)
	if r < 2 {
		return estimate, 0
	}
	loo := make([]float64, 0, r)
	buf := make([]float64, 0, r-1)
	for i := range measurements {
		buf = buf[:0]
		buf = append(buf, measurements[:i]...)
		buf = append(buf, measurements[i+1:]...)
		loo = append(loo, stat(buf))
	}
	mean, _ := MeanStd(loo)
	var ss float64
	for _, t := range loo {
		d := t - mean
		ss += d * d
	}
	stderr = math.Sqrt(float64(r-1) / float64(r) * ss)
	return estimate, stderr
}
