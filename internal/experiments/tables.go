package experiments

import (
	"math/rand"

	"uncertaingraph/internal/baseline"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/mathx"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/sampling"
)

// Table2 reproduces paper Table 2: the minimal σ found by Algorithm 1
// for every dataset × k × ε combination.
func Table2(s *Suite) ([]*ObfRun, error) {
	var out []*ObfRun
	for _, name := range []string{"dblp", "flickr", "y360"} {
		for _, k := range s.Opt.Ks {
			for _, eps := range s.Opt.Epsilons {
				run, err := s.tryObfuscate(name, k, eps)
				if err != nil {
					return nil, err
				}
				if run != nil {
					out = append(out, run)
				}
			}
		}
	}
	return out, nil
}

// Table3 reproduces paper Table 3: throughput in edges/sec for the same
// grid as Table 2 (the two tables are two views of the same runs).
func Table3(s *Suite) ([]*ObfRun, error) { return Table2(s) }

// UtilityRow is one row of Table 4 (sample means) or Table 5 (relative
// SEMs): a dataset, a label ("real" or "k = 20"), and per-statistic
// values. AvgLast holds the trailing aggregate column (average relative
// error for Table 4, average relative SEM for Table 5).
type UtilityRow struct {
	Dataset string
	Label   string
	Values  map[string]float64
	AvgLast float64
}

// utilityReal evaluates the ten statistics on the original graph with
// exact or ANF distances per the suite options.
func (s *Suite) utilityReal(name string) (map[string]float64, error) {
	d, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	return sampling.ScalarsOf(d.Graph, s.samplingConfig(0), s.Opt.Seed), nil
}

// Table4 reproduces paper Table 4: for each dataset, the real statistic
// values followed by the sample means over obfuscated worlds at each k
// (with the strict ε), ending with the average relative error.
func Table4(s *Suite) ([]UtilityRow, error) {
	eps := s.Opt.Epsilons[len(s.Opt.Epsilons)-1]
	var out []UtilityRow
	for _, name := range []string{"dblp", "flickr", "y360"} {
		real, err := s.utilityReal(name)
		if err != nil {
			return nil, err
		}
		out = append(out, UtilityRow{Dataset: name, Label: "real", Values: real})
		for _, k := range s.Opt.Ks {
			run, err := s.tryObfuscate(name, k, eps)
			if err != nil {
				return nil, err
			}
			if run == nil {
				continue
			}
			rep, err := sampling.Run(s.ctx(), run.G, s.samplingConfig(int64(k)))
			if err != nil {
				return nil, err
			}
			means := make(map[string]float64, len(sampling.StatNames))
			for _, stat := range sampling.StatNames {
				means[stat] = rep.Mean(stat)
			}
			out = append(out, UtilityRow{
				Dataset: name,
				Label:   kLabel(k),
				Values:  means,
				AvgLast: avgRelErr(means, real),
			})
		}
	}
	return out, nil
}

// Table5 reproduces paper Table 5: the relative sample standard error
// of the mean per statistic, for the same runs as Table 4.
func Table5(s *Suite) ([]UtilityRow, error) {
	eps := s.Opt.Epsilons[len(s.Opt.Epsilons)-1]
	var out []UtilityRow
	for _, name := range []string{"dblp", "flickr", "y360"} {
		for _, k := range s.Opt.Ks {
			run, err := s.tryObfuscate(name, k, eps)
			if err != nil {
				return nil, err
			}
			if run == nil {
				continue
			}
			rep, err := sampling.Run(s.ctx(), run.G, s.samplingConfig(int64(k)))
			if err != nil {
				return nil, err
			}
			sems := make(map[string]float64, len(sampling.StatNames))
			var sum float64
			for _, stat := range sampling.StatNames {
				sems[stat] = rep.RelSEM(stat)
				sum += sems[stat]
			}
			out = append(out, UtilityRow{
				Dataset: name,
				Label:   kLabel(k),
				Values:  sems,
				AvgLast: sum / float64(len(sampling.StatNames)),
			})
		}
	}
	return out, nil
}

// Table6Setting describes one comparison row of paper Table 6: a
// baseline mechanism at parameter P matched against our obfuscation at
// (K, Eps).
type Table6Setting struct {
	Dataset string
	Method  string // "rand.pert." or "rand.spars."
	P       float64
	K       float64
	Eps     float64
}

// Table6Settings mirrors the paper's four comparisons, with the matched
// (k, ε) re-expressed on the suite's scaled grids: the paper pairs
// dblp/p=0.04 random perturbation with (k=60, loose ε) — the middle k —
// and dblp/p=0.64 sparsification plus both flickr baselines with
// (k=20, strict ε) — the smallest k.
func Table6Settings(s *Suite) []Table6Setting {
	loose := s.Opt.Epsilons[0]
	strict := s.Opt.Epsilons[len(s.Opt.Epsilons)-1]
	kLow := s.Opt.Ks[0]
	kMid := s.Opt.Ks[len(s.Opt.Ks)/2]
	return []Table6Setting{
		{Dataset: "dblp", Method: "rand.pert.", P: 0.04, K: kMid, Eps: loose},
		{Dataset: "dblp", Method: "rand.spars.", P: 0.64, K: kLow, Eps: strict},
		{Dataset: "flickr", Method: "rand.pert.", P: 0.32, K: kLow, Eps: strict},
		{Dataset: "flickr", Method: "rand.spars.", P: 0.64, K: kLow, Eps: strict},
	}
}

// Table6Row is one output row: the statistics of a publication method
// on a dataset and its average relative error against the original.
type Table6Row struct {
	Dataset string
	Label   string
	Values  map[string]float64
	AvgLast float64
}

// Table6 reproduces paper Table 6: for each comparison setting, the
// baseline's mean statistics over BaselineSamples published graphs and
// the uncertainty-obfuscation means at the matched (k, ε).
func Table6(s *Suite) ([]Table6Row, error) {
	var out []Table6Row
	done := map[string]bool{}
	emitted := map[string]bool{}
	for _, setting := range Table6Settings(s) {
		d, err := s.Dataset(setting.Dataset)
		if err != nil {
			return nil, err
		}
		real, err := s.utilityReal(setting.Dataset)
		if err != nil {
			return nil, err
		}
		if !done[setting.Dataset] {
			out = append(out, Table6Row{Dataset: setting.Dataset, Label: "original", Values: real})
			done[setting.Dataset] = true
		}
		// Baseline: average statistics over sampled publications.
		publish := func(rng *rand.Rand) *graph.Graph {
			if setting.Method == "rand.spars." {
				return baseline.Sparsify(d.Graph, setting.P, rng)
			}
			return baseline.Perturb(d.Graph, setting.P, rng)
		}
		baseMeans, err := s.baselineMeans(publish, setting.Dataset)
		if err != nil {
			return nil, err
		}
		out = append(out, Table6Row{
			Dataset: setting.Dataset,
			Label:   settingLabel(setting),
			Values:  baseMeans,
			AvgLast: avgRelErr(baseMeans, real),
		})
		// Our method at the matched parameters (once per distinct
		// setting; the paper's flickr block lists it a single time).
		obfKey := setting.Dataset + obfLabel(setting.K, setting.Eps)
		if emitted[obfKey] {
			continue
		}
		emitted[obfKey] = true
		run, err := s.tryObfuscate(setting.Dataset, setting.K, setting.Eps)
		if err != nil {
			return nil, err
		}
		if run == nil {
			continue
		}
		rep, err := sampling.Run(s.ctx(), run.G, s.samplingConfig(7000+int64(setting.K)))
		if err != nil {
			return nil, err
		}
		obfMeans := make(map[string]float64, len(sampling.StatNames))
		for _, stat := range sampling.StatNames {
			obfMeans[stat] = rep.Mean(stat)
		}
		out = append(out, Table6Row{
			Dataset: setting.Dataset,
			Label:   obfLabel(setting.K, setting.Eps),
			Values:  obfMeans,
			AvgLast: avgRelErr(obfMeans, real),
		})
	}
	return out, nil
}

// baselineMeans averages the ten statistics over BaselineSamples
// published graphs of a randomized baseline.
func (s *Suite) baselineMeans(publish func(*rand.Rand) *graph.Graph, dataset string) (map[string]float64, error) {
	cfg := s.samplingConfig(5000)
	samples := make(map[string][]float64, len(sampling.StatNames))
	for i := 0; i < s.Opt.BaselineSamples; i++ {
		rng := randx.New(s.Opt.Seed + 9000 + int64(i))
		g := publish(rng)
		vals := sampling.ScalarsOf(g, cfg, s.Opt.Seed+int64(i))
		for name, v := range vals {
			samples[name] = append(samples[name], v)
		}
	}
	means := make(map[string]float64, len(samples))
	for name, vals := range samples {
		m, _ := mathx.MeanStd(vals)
		means[name] = m
	}
	return means, nil
}
