package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"uncertaingraph/internal/sampling"
)

func kLabel(k float64) string { return fmt.Sprintf("k = %g", k) }

func obfLabel(k, eps float64) string {
	return fmt.Sprintf("obf. (k=%g, eps=%g)", k, eps)
}

func settingLabel(st Table6Setting) string {
	return fmt.Sprintf("%s (p=%g)", st.Method, st.P)
}

// RenderTable2 formats Table 2 rows like the paper: dataset, k, and the
// σ found per ε (a (*) marks c=3 fallbacks).
func RenderTable2(s *Suite, runs []*ObfRun) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Table 2: minimal sigma for (k,eps)-obfuscation [scale=%s]\n", s.Opt.Scale)
	fmt.Fprint(w, "dataset\tk")
	for _, eps := range s.Opt.Epsilons {
		fmt.Fprintf(w, "\teps = %g", eps)
	}
	fmt.Fprintln(w)
	type key struct {
		ds string
		k  float64
	}
	cells := map[key]map[float64]*ObfRun{}
	for _, r := range runs {
		kk := key{r.Dataset, r.K}
		if cells[kk] == nil {
			cells[kk] = map[float64]*ObfRun{}
		}
		cells[kk][r.Eps] = r
	}
	for _, ds := range []string{"dblp", "flickr", "y360"} {
		for _, k := range s.Opt.Ks {
			row, ok := cells[key{ds, k}]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%s\t%g", ds, k)
			for _, eps := range s.Opt.Epsilons {
				if r, ok := row[eps]; ok {
					star := ""
					if r.C > s.Opt.C {
						star = " (*)"
					}
					fmt.Fprintf(w, "\t%.4e%s", r.Sigma, star)
				} else {
					fmt.Fprint(w, "\t-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
	return b.String()
}

// RenderTable3 formats the throughput view (edges/sec) of the same runs.
func RenderTable3(s *Suite, runs []*ObfRun) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Table 3: computation time in edges/sec [scale=%s]\n", s.Opt.Scale)
	fmt.Fprint(w, "dataset\tk")
	for _, eps := range s.Opt.Epsilons {
		fmt.Fprintf(w, "\teps = %g", eps)
	}
	fmt.Fprintln(w)
	type key struct {
		ds string
		k  float64
	}
	cells := map[key]map[float64]*ObfRun{}
	for _, r := range runs {
		kk := key{r.Dataset, r.K}
		if cells[kk] == nil {
			cells[kk] = map[float64]*ObfRun{}
		}
		cells[kk][r.Eps] = r
	}
	for _, ds := range []string{"dblp", "flickr", "y360"} {
		for _, k := range s.Opt.Ks {
			row, ok := cells[key{ds, k}]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%s\t%g", ds, k)
			for _, eps := range s.Opt.Epsilons {
				if r, ok := row[eps]; ok {
					star := ""
					if r.C > s.Opt.C {
						star = " (*)"
					}
					fmt.Fprintf(w, "\t%.2f%s", r.EdgesPerSec, star)
				} else {
					fmt.Fprint(w, "\t-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
	return b.String()
}

// renderUtility renders Table 4/5/6-shaped rows.
func renderUtility(title, lastCol string, rows []UtilityRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, title)
	fmt.Fprint(w, "graph\t")
	for _, name := range sampling.StatNames {
		fmt.Fprintf(w, "%s\t", name)
	}
	fmt.Fprintf(w, "%s\n", lastCol)
	for _, row := range rows {
		fmt.Fprintf(w, "%s %s\t", row.Dataset, row.Label)
		for _, name := range sampling.StatNames {
			fmt.Fprintf(w, "%.4g\t", row.Values[name])
		}
		if row.Label == "real" || row.Label == "original" {
			fmt.Fprintln(w)
		} else {
			fmt.Fprintf(w, "%.3f\n", row.AvgLast)
		}
	}
	w.Flush()
	return b.String()
}

// RenderTable4 formats the sample-mean utility table.
func RenderTable4(s *Suite, rows []UtilityRow) string {
	return renderUtility(
		fmt.Sprintf("Table 4: sample means over %d worlds, strict eps [scale=%s]", s.Opt.Worlds, s.Opt.Scale),
		"rel.err.", rows)
}

// RenderTable5 formats the relative-SEM table.
func RenderTable5(s *Suite, rows []UtilityRow) string {
	return renderUtility(
		fmt.Sprintf("Table 5: relative sample standard error of the mean [scale=%s]", s.Opt.Scale),
		"average", rows)
}

// RenderTable6 formats the baseline-comparison table.
func RenderTable6(s *Suite, rows []Table6Row) string {
	conv := make([]UtilityRow, len(rows))
	for i, r := range rows {
		conv[i] = UtilityRow(r)
	}
	return renderUtility(
		fmt.Sprintf("Table 6: obfuscation vs random perturbation/sparsification [scale=%s]", s.Opt.Scale),
		"rel.err.", conv)
}

// RenderFigure formats a boxplot series (Figures 2 and 3) as one line
// per coordinate: reference value then min/Q1/median/Q3/max.
func RenderFigure(series []FigureSeries, maxCoords int) string {
	var b strings.Builder
	for _, fs := range series {
		fmt.Fprintf(&b, "%s\n", fs.Title)
		w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "x\toriginal\tmin\tQ1\tmedian\tQ3\tmax")
		limit := len(fs.Boxes)
		if maxCoords > 0 && limit > maxCoords {
			limit = maxCoords
		}
		for i := 0; i < limit; i++ {
			ref := 0.0
			if i < len(fs.Reference) {
				ref = fs.Reference[i]
			}
			box := fs.Boxes[i]
			fmt.Fprintf(w, "%d\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\n",
				i, ref, box.Min, box.Q1, box.Median, box.Q3, box.Max)
		}
		w.Flush()
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFigure4 formats the anonymity CDF curves at selected k values.
func RenderFigure4(series []CDFSeries) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	ks := []int{1, 5, 10, 20, 30, 40, 60, 80, 90}
	fmt.Fprint(w, "Figure 4: #vertices with obfuscation level <= k\nseries")
	for _, k := range ks {
		fmt.Fprintf(w, "\tk<=%d", k)
	}
	fmt.Fprintln(w)
	for _, cs := range series {
		fmt.Fprint(w, cs.Title)
		for _, k := range ks {
			v := 0
			if k < len(cs.CDF) {
				v = cs.CDF[k]
			}
			fmt.Fprintf(w, "\t%d", v)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}
