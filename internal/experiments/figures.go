package experiments

import (
	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/anf"
	"uncertaingraph/internal/baseline"
	"uncertaingraph/internal/bfs"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/sampling"
	"uncertaingraph/internal/stats"
	"uncertaingraph/internal/uncertain"
)

// FigureSeries is one boxplot series of Figures 2 or 3: per-coordinate
// five-number summaries across sampled worlds, plus the original
// graph's reference values (the red dots of the paper's plots).
type FigureSeries struct {
	// Title identifies the obfuscation setting, e.g. "dblp k=20 eps=0.02".
	Title string
	// Boxes[i] summarizes coordinate i (distance i for Figure 2, degree
	// i for Figure 3) across worlds.
	Boxes []sampling.Box
	// Reference[i] is the original graph's value at coordinate i.
	Reference []float64
}

// figureSettings returns the two (k, ε) pairs the paper plots: the
// mildest (k=min, loose ε) and the harshest (k=max, strict ε).
func (s *Suite) figureSettings() [2][2]float64 {
	kLo, kHi := s.Opt.Ks[0], s.Opt.Ks[len(s.Opt.Ks)-1]
	loose := s.Opt.Epsilons[0]
	strict := s.Opt.Epsilons[len(s.Opt.Epsilons)-1]
	return [2][2]float64{{kLo, loose}, {kHi, strict}}
}

// distanceFractions computes the S_PDD fractions of one certain graph.
func (s *Suite) distanceFractions(g *graph.Graph, seed int64) []float64 {
	var dd stats.DistanceDistribution
	if s.Opt.Distances == sampling.DistanceExactBFS {
		dd = bfs.DistanceDistribution(g)
	} else {
		dd = anf.DistanceDistribution(g, anf.Options{Seed: uint64(seed)})
	}
	return dd.Fractions()
}

// Figure2 reproduces paper Figure 2 on the dblp stand-in: the
// distribution of pairwise distances, original vs obfuscated, at the
// mild and harsh settings.
func Figure2(s *Suite) ([]FigureSeries, error) {
	d, err := s.Dataset("dblp")
	if err != nil {
		return nil, err
	}
	ref := s.distanceFractions(d.Graph, s.Opt.Seed)
	var out []FigureSeries
	for _, ke := range s.figureSettings() {
		run, err := s.tryObfuscate("dblp", ke[0], ke[1])
		if err != nil {
			return nil, err
		}
		if run == nil {
			continue
		}
		rows, err := sampling.RunVector(s.ctx(), run.G, s.samplingConfig(3000+int64(ke[0])),
			func(w *graph.Graph, seed int64) []float64 {
				return s.distanceFractions(w, seed)
			})
		if err != nil {
			return nil, err
		}
		out = append(out, FigureSeries{
			Title:     "dblp " + obfLabel(ke[0], ke[1]) + " S_PDD",
			Boxes:     sampling.Boxes(rows),
			Reference: ref,
		})
	}
	return out, nil
}

// Figure3 reproduces paper Figure 3 on the dblp stand-in: the degree
// distribution, original vs obfuscated, at the same two settings.
func Figure3(s *Suite) ([]FigureSeries, error) {
	d, err := s.Dataset("dblp")
	if err != nil {
		return nil, err
	}
	ref := stats.DegreeDistribution(d.Graph)
	var out []FigureSeries
	for _, ke := range s.figureSettings() {
		run, err := s.tryObfuscate("dblp", ke[0], ke[1])
		if err != nil {
			return nil, err
		}
		if run == nil {
			continue
		}
		rows, err := sampling.RunVector(s.ctx(), run.G, s.samplingConfig(4000+int64(ke[0])),
			func(w *graph.Graph, _ int64) []float64 {
				return stats.DegreeDistribution(w)
			})
		if err != nil {
			return nil, err
		}
		out = append(out, FigureSeries{
			Title:     "dblp " + obfLabel(ke[0], ke[1]) + " S_DD",
			Boxes:     sampling.Boxes(rows),
			Reference: ref,
		})
	}
	return out, nil
}

// CDFSeries is one curve of Figure 4: the number of vertices whose
// obfuscation level is at most k, for k = 0..MaxK.
type CDFSeries struct {
	Title string
	CDF   []int
}

// Figure4MaxK is the largest anonymity level plotted (the paper's x
// axis runs to ~90).
const Figure4MaxK = 90

// Figure4 reproduces paper Figure 4: anonymity-level CDFs of the
// original graph, our obfuscations, and the matched random-perturbation
// and sparsification baselines, on dblp and flickr.
func Figure4(s *Suite) ([]CDFSeries, error) {
	var out []CDFSeries
	for _, name := range []string{"dblp", "flickr"} {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		degrees := d.Graph.Degrees()

		// Original graph: levels are crowd sizes.
		orig := adversary.ObfuscationLevels(
			adversary.UncertainModel{G: uncertain.FromCertain(d.Graph)}, degrees)
		out = append(out, CDFSeries{
			Title: name + " original",
			CDF:   adversary.AnonymityCDF(orig, Figure4MaxK),
		})

		// Our obfuscations at the paper's plotted settings.
		var settings []Table6Setting
		for _, st := range Table6Settings(s) {
			if st.Dataset == name {
				settings = append(settings, st)
			}
		}
		seen := map[string]bool{}
		for _, st := range settings {
			label := obfLabel(st.K, st.Eps)
			if !seen[label] {
				seen[label] = true
				run, err := s.tryObfuscate(name, st.K, st.Eps)
				if err != nil {
					return nil, err
				}
				if run == nil {
					continue
				}
				levels := adversary.ObfuscationLevels(
					adversary.UncertainModel{G: run.G}, degrees)
				out = append(out, CDFSeries{
					Title: name + " " + label,
					CDF:   adversary.AnonymityCDF(levels, Figure4MaxK),
				})
			}
			// Matched baseline curve.
			rng := randx.New(s.Opt.Seed + 777)
			var m adversary.Model
			if st.Method == "rand.spars." {
				pub := baseline.Sparsify(d.Graph, st.P, rng)
				m = baseline.NewSparsifyModel(pub, st.P)
			} else {
				pub := baseline.Perturb(d.Graph, st.P, rng)
				m = baseline.NewPerturbModel(pub, d.Graph.NumVertices(), st.P,
					baseline.AddProbability(d.Graph, st.P))
			}
			levels := adversary.ObfuscationLevels(m, degrees)
			out = append(out, CDFSeries{
				Title: name + " " + settingLabel(st),
				CDF:   adversary.AnonymityCDF(levels, Figure4MaxK),
			})
		}
	}
	return out, nil
}
