package experiments

import (
	"strings"
	"testing"

	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/sampling"
)

// testSuite returns a fast suite: tiny scale, exact BFS distances, few
// worlds/trials, coarse binary search.
func testSuite(t testing.TB) *Suite {
	s, err := NewSuite(Options{
		Scale:           datasets.ScaleTiny,
		Worlds:          8,
		Trials:          2,
		Delta:           1e-4,
		BaselineSamples: 4,
		Distances:       sampling.DistanceExactBFS,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteDefaults(t *testing.T) {
	s, err := NewSuite(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Opt.Scale != datasets.ScaleMedium {
		t.Error("default scale should be medium")
	}
	if len(s.Opt.Ks) != 3 || s.Opt.Ks[0] != 20 {
		t.Errorf("default ks = %v", s.Opt.Ks)
	}
	if s.Opt.Trials != 5 || s.Opt.Q != 0.01 || s.Opt.C != 2 {
		t.Error("paper defaults not applied")
	}
	tiny, err := NewSuite(Options{Scale: datasets.ScaleTiny})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Opt.Ks[len(tiny.Opt.Ks)-1] > 20 {
		t.Errorf("tiny-scale k grid %v too ambitious", tiny.Opt.Ks)
	}
	if _, err := NewSuite(Options{Scale: "galactic"}); err == nil {
		t.Error("bad scale should error")
	}
}

func TestObfuscateCachesRuns(t *testing.T) {
	s := testSuite(t)
	a, err := s.Obfuscate("dblp", 5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Obfuscate("dblp", 5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second call should return the cached run")
	}
	if a.Sigma <= 0 || a.EpsTilde > 0.08 || a.G == nil {
		t.Errorf("run looks wrong: %+v", a)
	}
	if a.EdgesPerSec <= 0 || a.Seconds <= 0 {
		t.Error("timing not recorded")
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	s := testSuite(t)
	runs, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets x 3 ks x 2 epsilons.
	if len(runs) != 18 {
		t.Fatalf("got %d runs", len(runs))
	}
	byKey := map[string]*ObfRun{}
	for _, r := range runs {
		byKey[r.Dataset+kLabel(r.K)+obfLabel(r.K, r.Eps)] = r
		if r.Sigma <= 0 {
			t.Errorf("%s k=%g eps=%g: sigma = %v", r.Dataset, r.K, r.Eps, r.Sigma)
		}
	}
	// Paper trends: for a fixed dataset and eps, sigma rises with k; for
	// fixed k, the strict eps needs at least as much noise. Aggregate
	// over the grid (individual cells are stochastic).
	violations := 0
	comparisons := 0
	for _, ds := range []string{"dblp", "flickr", "y360"} {
		for _, eps := range s.Opt.Epsilons {
			var prev float64
			for _, k := range s.Opt.Ks {
				r := byKey[ds+kLabel(k)+obfLabel(k, eps)]
				comparisons++
				if r.Sigma < prev/4 { // allow stochastic wiggle
					violations++
				}
				prev = r.Sigma
			}
		}
	}
	if violations > comparisons/4 {
		t.Errorf("sigma-vs-k trend violated in %d/%d comparisons", violations, comparisons)
	}
	// y360 (sparsest, most uniform crowd sizes) must be the easiest
	// dataset at the smallest k, as in the paper.
	loose := s.Opt.Epsilons[0]
	kMin := s.Opt.Ks[0]
	y := byKey["y360"+kLabel(kMin)+obfLabel(kMin, loose)]
	d := byKey["dblp"+kLabel(kMin)+obfLabel(kMin, loose)]
	if y.Sigma > d.Sigma {
		t.Errorf("y360 sigma %v should be <= dblp sigma %v", y.Sigma, d.Sigma)
	}
}

func TestRenderTables2And3(t *testing.T) {
	s := testSuite(t)
	runs, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	out2 := RenderTable2(s, runs)
	if !strings.Contains(out2, "dblp") || !strings.Contains(out2, "Table 2") {
		t.Errorf("Table 2 render incomplete:\n%s", out2)
	}
	out3 := RenderTable3(s, runs)
	if !strings.Contains(out3, "edges/sec") {
		t.Errorf("Table 3 render incomplete:\n%s", out3)
	}
}

func TestTable4UtilityDegradesWithK(t *testing.T) {
	s := testSuite(t)
	rows, err := Table4(s)
	if err != nil {
		t.Fatal(err)
	}
	// Per dataset: one real row + one row per k.
	if len(rows) != 3*(1+len(s.Opt.Ks)) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Label == "real" {
			if row.AvgLast != 0 {
				t.Error("real rows carry no error")
			}
			continue
		}
		if row.AvgLast < 0 || row.AvgLast > 2 {
			t.Errorf("%s %s: avg rel err %v implausible", row.Dataset, row.Label, row.AvgLast)
		}
	}
	// The paper's qualitative claims: y360 errors stay tiny (easiest
	// dataset), and within each dataset the largest k is at least as
	// lossy as the smallest.
	get := func(ds, label string) UtilityRow {
		for _, r := range rows {
			if r.Dataset == ds && r.Label == label {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", ds, label)
		return UtilityRow{}
	}
	kLo, kHi := s.Opt.Ks[0], s.Opt.Ks[len(s.Opt.Ks)-1]
	for _, ds := range []string{"dblp", "flickr"} {
		lo, hi := get(ds, kLabel(kLo)), get(ds, kLabel(kHi))
		if hi.AvgLast < lo.AvgLast/2 {
			t.Errorf("%s: error at k=%g (%v) much below k=%g (%v)", ds, kHi, hi.AvgLast, kLo, lo.AvgLast)
		}
	}
	if y := get("y360", kLabel(kLo)); y.AvgLast > 0.25 {
		t.Errorf("y360 error %v should be small", y.AvgLast)
	}
}

func TestTable5SEMsAreSmall(t *testing.T) {
	s := testSuite(t)
	rows, err := Table5(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		// The paper reports average SEMs of ~3%; tolerate up to 10% on
		// our far smaller world samples.
		if row.AvgLast > 0.10 {
			t.Errorf("%s %s: average SEM %v too large", row.Dataset, row.Label, row.AvgLast)
		}
	}
	out := RenderTable5(s, rows)
	if !strings.Contains(out, "Table 5") {
		t.Error("render incomplete")
	}
}

func TestTable6ObfuscationBeatsBaselines(t *testing.T) {
	s := testSuite(t)
	rows, err := Table6(s)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: at matched obfuscation levels, the
	// uncertain-graph method has lower utility error than the baseline
	// in every comparison. Compare each baseline row with the obf row
	// that follows its setting.
	type pair struct{ base, obf float64 }
	var pairs []pair
	var lastBase *Table6Row
	for i := range rows {
		r := rows[i]
		switch {
		case strings.HasPrefix(r.Label, "rand."):
			lastBase = &rows[i]
		case strings.HasPrefix(r.Label, "obf.") && lastBase != nil:
			pairs = append(pairs, pair{lastBase.AvgLast, r.AvgLast})
			lastBase = nil
		}
	}
	if len(pairs) < 3 {
		t.Fatalf("found only %d comparison pairs", len(pairs))
	}
	wins := 0
	for _, p := range pairs {
		if p.obf < p.base {
			wins++
		}
	}
	if wins < len(pairs)-1 {
		t.Errorf("obfuscation won only %d/%d comparisons", wins, len(pairs))
	}
	out := RenderTable6(s, rows)
	if !strings.Contains(out, "rand.spars.") {
		t.Error("render incomplete")
	}
}

func TestFigures2And3(t *testing.T) {
	s := testSuite(t)
	f2, err := Figure2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2) != 2 {
		t.Fatalf("Figure 2: got %d series", len(f2))
	}
	for _, fs := range f2 {
		if len(fs.Boxes) == 0 || len(fs.Reference) == 0 {
			t.Fatalf("%s: empty series", fs.Title)
		}
		for _, b := range fs.Boxes {
			if b.Min > b.Q1 || b.Q1 > b.Median || b.Median > b.Q3 || b.Q3 > b.Max {
				t.Fatalf("%s: malformed box %+v", fs.Title, b)
			}
		}
	}
	f3, err := Figure3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3) != 2 {
		t.Fatalf("Figure 3: got %d series", len(f3))
	}
	out := RenderFigure(f3, 10)
	if !strings.Contains(out, "median") {
		t.Error("figure render incomplete")
	}
}

func TestFigure4CDFs(t *testing.T) {
	s := testSuite(t)
	series, err := Figure4(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 6 {
		t.Fatalf("got %d series", len(series))
	}
	for _, cs := range series {
		if len(cs.CDF) != Figure4MaxK+1 {
			t.Fatalf("%s: CDF length %d", cs.Title, len(cs.CDF))
		}
		for k := 1; k < len(cs.CDF); k++ {
			if cs.CDF[k] < cs.CDF[k-1] {
				t.Fatalf("%s: CDF not monotone at %d", cs.Title, k)
			}
		}
	}
	// Obfuscation must push the dblp curve right (fewer poorly-hidden
	// vertices at low k) versus the original.
	var orig, obf *CDFSeries
	for i := range series {
		if series[i].Title == "dblp original" {
			orig = &series[i]
		}
		if orig != nil && obf == nil && strings.HasPrefix(series[i].Title, "dblp obf.") {
			obf = &series[i]
		}
	}
	if orig == nil || obf == nil {
		t.Fatal("missing dblp curves")
	}
	if obf.CDF[2] > orig.CDF[2] {
		t.Errorf("obfuscation left more level<=2 vertices (%d) than original (%d)", obf.CDF[2], orig.CDF[2])
	}
	out := RenderFigure4(series)
	if !strings.Contains(out, "dblp original") {
		t.Error("figure 4 render incomplete")
	}
}
