// Package experiments reproduces the paper's evaluation (Section 7):
// one driver per table and figure, sharing a Suite that caches datasets
// and obfuscation runs. Every driver returns typed rows/series that the
// render functions format as text tables, so the same code feeds unit
// tests, benchmarks, and the cmd/experiments CLI.
//
// Parameter translation (documented in DESIGN.md / EXPERIMENTS.md): the
// paper's graphs have 2.2e5..1.2e6 vertices and use ε of 1e-3/1e-4. At
// the reduced scales used here the structurally-unobfuscatable hub tail
// is a larger *fraction* of the graph, so the default ε pair grows with
// the scale divisor; k keeps the paper's {20, 60, 100}.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"uncertaingraph/internal/core"
	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/sampling"
	"uncertaingraph/internal/uncertain"
)

// Options configures a Suite.
type Options struct {
	// Scale selects dataset sizes (default medium).
	Scale datasets.Scale
	// Ks are the obfuscation levels (default paper's {20, 60, 100}).
	Ks []float64
	// Epsilons is the tolerance pair (loose, strict); zero selects a
	// scale-appropriate default (see package comment).
	Epsilons []float64
	// Worlds is the possible-world sample size for utility estimation
	// (0 -> scale default; the paper uses 100).
	Worlds int
	// BaselineSamples is the number of published baseline graphs
	// averaged in Table 6 (0 -> 50, as in the paper).
	BaselineSamples int
	// Trials, Q, C, Delta mirror core.Params (zero -> paper defaults
	// t=5, q=0.01, c=2, delta=1e-8).
	Trials int
	Q      float64
	C      float64
	Delta  float64
	// Distances selects the per-world distance estimator (default
	// HyperANF, the paper's choice).
	Distances sampling.DistanceMethod
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the obfuscation engine's concurrency per run
	// (0 selects GOMAXPROCS); results are identical for every value.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Scale == "" {
		o.Scale = datasets.ScaleMedium
	}
	if len(o.Ks) == 0 {
		// k is an effective crowd size; the paper's {20, 60, 100} are
		// only attainable when degree crowds are large, so the smaller
		// scales shrink k along with n (see EXPERIMENTS.md).
		switch o.Scale {
		case datasets.ScaleTiny:
			o.Ks = []float64{5, 10, 20}
		case datasets.ScaleSmall:
			o.Ks = []float64{10, 20, 40}
		default:
			o.Ks = []float64{20, 60, 100}
		}
	}
	if len(o.Epsilons) == 0 {
		switch o.Scale {
		case datasets.ScaleTiny:
			o.Epsilons = []float64{0.08, 0.04}
		case datasets.ScaleSmall:
			o.Epsilons = []float64{0.04, 0.015}
		case datasets.ScaleMedium:
			o.Epsilons = []float64{0.02, 0.004}
		default: // large
			o.Epsilons = []float64{0.01, 0.002}
		}
	}
	if o.Worlds == 0 {
		switch o.Scale {
		case datasets.ScaleTiny:
			o.Worlds = 100
		case datasets.ScaleSmall:
			o.Worlds = 50
		default:
			o.Worlds = 20
		}
	}
	if o.BaselineSamples == 0 {
		o.BaselineSamples = 50
	}
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.Q == 0 {
		o.Q = 0.01
	}
	if o.C == 0 {
		o.C = 2
	}
	if o.Delta == 0 {
		o.Delta = 1e-8
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// ObfRun is one (dataset, k, ε) obfuscation outcome: the σ of Table 2
// and the throughput of Table 3.
type ObfRun struct {
	Dataset  string
	K        float64
	Eps      float64
	Sigma    float64
	EpsTilde float64
	// C is the candidate multiplier that succeeded (the paper marks
	// c=3 fallbacks with an asterisk).
	C float64
	// Seconds is the wall time of the full Algorithm 1 run and
	// EdgesPerSec the |E|/Seconds throughput reported in Table 3.
	Seconds     float64
	EdgesPerSec float64
	G           *uncertain.Graph
}

// Suite caches datasets and obfuscation runs across drivers.
type Suite struct {
	Opt Options
	// Ctx, when non-nil, scopes every driver's long-running work
	// (obfuscation searches, world sampling): cancelling it makes the
	// in-flight driver return the context's error. cmd/experiments wires
	// SIGINT/SIGTERM into it so half-day table runs die cleanly.
	Ctx context.Context

	mu     sync.Mutex
	data   map[string]datasets.Dataset
	runs   map[string]*ObfRun
	failed map[string]bool
}

// ctx resolves the suite's context for engine calls.
func (s *Suite) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// NewSuite validates options and prepares an empty cache.
func NewSuite(opt Options) (*Suite, error) {
	opt = opt.withDefaults()
	if _, err := opt.Scale.Divisor(); err != nil {
		return nil, err
	}
	return &Suite{
		Opt:    opt,
		data:   make(map[string]datasets.Dataset),
		runs:   make(map[string]*ObfRun),
		failed: make(map[string]bool),
	}, nil
}

// Dataset returns (and caches) the named dataset at the suite's scale.
func (s *Suite) Dataset(name string) (datasets.Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.data[name]; ok {
		return d, nil
	}
	spec, err := datasets.ByName(name)
	if err != nil {
		return datasets.Dataset{}, err
	}
	d, err := datasets.Generate(spec, s.Opt.Scale)
	if err != nil {
		return datasets.Dataset{}, err
	}
	s.data[name] = d
	return d, nil
}

// Obfuscate returns (and caches) the obfuscation of a dataset at
// (k, ε), retrying with c=3 when c=2 fails, exactly as the paper's two
// (*) cases.
func (s *Suite) Obfuscate(dataset string, k, eps float64) (*ObfRun, error) {
	key := fmt.Sprintf("%s/k=%g/eps=%g", dataset, k, eps)
	s.mu.Lock()
	if r, ok := s.runs[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	if s.failed[key] {
		s.mu.Unlock()
		return nil, fmt.Errorf("experiments: %s unobtainable (cached): %w", key, core.ErrNoObfuscation)
	}
	s.mu.Unlock()

	d, err := s.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	run := &ObfRun{Dataset: dataset, K: k, Eps: eps}
	for _, c := range []float64{s.Opt.C, s.Opt.C + 1} {
		params := core.Params{
			K: k, Eps: eps, C: c, Q: s.Opt.Q,
			Trials: s.Opt.Trials, Delta: s.Opt.Delta,
			Workers: s.Opt.Workers,
			Seed:    s.Opt.Seed + int64(k)*1000 + int64(eps*1e7),
		}
		start := time.Now()
		res, err := core.Obfuscate(s.ctx(), d.Graph, params)
		elapsed := time.Since(start)
		if err == nil {
			run.Sigma = res.Sigma
			run.EpsTilde = res.EpsTilde
			run.C = c
			run.Seconds = elapsed.Seconds()
			run.EdgesPerSec = float64(d.Graph.NumEdges()) / run.Seconds
			run.G = res.G
			s.mu.Lock()
			s.runs[key] = run
			s.mu.Unlock()
			return run, nil
		}
		if err != core.ErrNoObfuscation {
			return nil, err
		}
	}
	s.mu.Lock()
	s.failed[key] = true
	s.mu.Unlock()
	return nil, fmt.Errorf("experiments: %s unobtainable even with c=%g: %w",
		key, s.Opt.C+1, core.ErrNoObfuscation)
}

// tryObfuscate is Obfuscate with infeasibility folded into the result:
// a (k, ε) that is structurally unobtainable at the current scale
// yields (nil, nil) so grid drivers can record the gap and continue —
// on the reduced stand-ins some of the paper's settings exceed the
// attainable crowd sizes, and a partial table beats an aborted run.
func (s *Suite) tryObfuscate(dataset string, k, eps float64) (*ObfRun, error) {
	run, err := s.Obfuscate(dataset, k, eps)
	if errors.Is(err, core.ErrNoObfuscation) {
		return nil, nil
	}
	return run, err
}

// samplingConfig derives the per-run sampling configuration.
func (s *Suite) samplingConfig(seedOffset int64) sampling.Config {
	return sampling.Config{
		Worlds:    s.Opt.Worlds,
		Seed:      s.Opt.Seed + seedOffset,
		Distances: s.Opt.Distances,
	}
}

// avgRelErr averages |est-real|/|real| over the ten statistics (the
// "rel.err." column of Tables 4 and 6). Statistics whose real value is
// zero are skipped, mirroring the paper's relative measure.
func avgRelErr(est, real map[string]float64) float64 {
	var sum float64
	var count int
	for _, name := range sampling.StatNames {
		r := real[name]
		if r == 0 {
			continue
		}
		sum += math.Abs(est[name]-r) / math.Abs(r)
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
