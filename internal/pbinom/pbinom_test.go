package pbinom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce enumerates all 2^L outcomes; usable for L <= ~20.
func bruteForce(probs []float64) []float64 {
	L := len(probs)
	dist := make([]float64, L+1)
	for mask := 0; mask < 1<<L; mask++ {
		p := 1.0
		ones := 0
		for i := 0; i < L; i++ {
			if mask&(1<<i) != 0 {
				p *= probs[i]
				ones++
			} else {
				p *= 1 - probs[i]
			}
		}
		dist[ones] += p
	}
	return dist
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		L := 1 + rng.Intn(12)
		probs := make([]float64, L)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		want := bruteForce(probs)
		d := Exact(probs)
		for k := 0; k <= L; k++ {
			if math.Abs(d.Prob(k)-want[k]) > 1e-12 {
				t.Fatalf("L=%d k=%d: exact %v, brute force %v", L, k, d.Prob(k), want[k])
			}
		}
	}
}

func TestExactMatchesBinomialClosedForm(t *testing.T) {
	// Equal probabilities reduce to Binomial(L, p).
	L, p := 25, 0.37
	probs := make([]float64, L)
	for i := range probs {
		probs[i] = p
	}
	d := Exact(probs)
	for k := 0; k <= L; k++ {
		logC := lgamma(L+1) - lgamma(k+1) - lgamma(L-k+1)
		want := math.Exp(logC + float64(k)*math.Log(p) + float64(L-k)*math.Log(1-p))
		if math.Abs(d.Prob(k)-want) > 1e-12 {
			t.Fatalf("k=%d: %v vs binomial %v", k, d.Prob(k), want)
		}
	}
}

func lgamma(x int) float64 {
	v, _ := math.Lgamma(float64(x))
	return v
}

func TestExactSumsToOneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		probs := make([]float64, 0, len(raw))
		for _, p := range raw {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				continue
			}
			probs = append(probs, math.Abs(math.Mod(p, 1)))
			if len(probs) == 60 {
				break
			}
		}
		d := Exact(probs)
		var sum float64
		for k := 0; k <= len(probs); k++ {
			if d.Prob(k) < 0 {
				return false
			}
			sum += d.Prob(k)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPaperExample1(t *testing.T) {
	// Vertex v1 of Figure 1(b) has incident probabilities 0.7, 0.9, 0.8.
	// Table 1 row: X_v1 = (0.006, 0.092, 0.398, 0.504).
	d := Exact([]float64{0.7, 0.9, 0.8})
	want := []float64{0.006, 0.092, 0.398, 0.504}
	for k, w := range want {
		if math.Abs(d.Prob(k)-w) > 1e-12 {
			t.Errorf("X_v1(%d) = %v, want %v", k, d.Prob(k), w)
		}
	}
	// Vertex v4: incident probabilities 0.8, 0.1, 0 -> (0.18, 0.74, 0.08, 0).
	d4 := Exact([]float64{0.8, 0.1, 0})
	want4 := []float64{0.18, 0.74, 0.08, 0}
	for k, w := range want4 {
		if math.Abs(d4.Prob(k)-w) > 1e-12 {
			t.Errorf("X_v4(%d) = %v, want %v", k, d4.Prob(k), w)
		}
	}
}

func TestMeanAndSigma(t *testing.T) {
	probs := []float64{0.2, 0.5, 0.9}
	d := Exact(probs)
	if got, want := d.Mean(), 1.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	wantVar := 0.2*0.8 + 0.5*0.5 + 0.9*0.1
	if got := d.Sigma(); math.Abs(got-math.Sqrt(wantVar)) > 1e-12 {
		t.Errorf("Sigma = %v, want %v", got, math.Sqrt(wantVar))
	}
	// Mean via the distribution must agree.
	var mean float64
	for k := 0; k <= 3; k++ {
		mean += float64(k) * d.Prob(k)
	}
	if math.Abs(mean-1.6) > 1e-12 {
		t.Errorf("distribution mean = %v", mean)
	}
}

func TestApproxCloseToExactForLargeL(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	L := 300
	probs := make([]float64, L)
	for i := range probs {
		probs[i] = 0.05 + 0.9*rng.Float64()
	}
	exact := Exact(probs)
	approx := Approx(probs)
	// Total variation distance between exact and CLT approximations
	// should be small at L=300.
	var tv float64
	for k := 0; k <= L; k++ {
		tv += math.Abs(exact.Prob(k) - approx.Prob(k))
	}
	tv /= 2
	if tv > 0.01 {
		t.Errorf("total variation %v too large for L=%d", tv, L)
	}
}

func TestNewAdaptive(t *testing.T) {
	small := make([]float64, 10)
	large := make([]float64, 100)
	for i := range small {
		small[i] = 0.5
	}
	for i := range large {
		large[i] = 0.5
	}
	if !New(small, 0).IsExact() {
		t.Error("10 terms should use exact DP")
	}
	if New(large, 0).IsExact() {
		t.Error("100 terms should use approximation")
	}
	if !New(large, 200).IsExact() {
		t.Error("explicit threshold should force exact")
	}
}

func TestDegenerateCases(t *testing.T) {
	// No terms: point mass at 0.
	d := Exact(nil)
	if d.Prob(0) != 1 || d.Prob(1) != 0 {
		t.Error("empty distribution should be point mass at 0")
	}
	// All certain: point mass at count of ones, both representations.
	probs := []float64{1, 1, 0, 1}
	for _, d := range []Dist{Exact(probs), Approx(probs)} {
		if math.Abs(d.Prob(3)-1) > 1e-12 {
			t.Errorf("P(3) = %v, want 1 (exact=%v)", d.Prob(3), d.IsExact())
		}
		if d.Prob(2) != 0 || d.Prob(4) != 0 {
			t.Errorf("mass leaked off the point (exact=%v)", d.IsExact())
		}
	}
	// Out of range.
	if d.Prob(-1) != 0 || d.Prob(10) != 0 {
		t.Error("out-of-range k should have zero mass")
	}
}

func TestSupportBounds(t *testing.T) {
	probs := make([]float64, 500)
	for i := range probs {
		probs[i] = 0.3
	}
	d := Approx(probs)
	lo, hi := d.SupportBounds()
	if lo < 0 || hi > 500 || lo >= hi {
		t.Fatalf("bad bounds [%d, %d]", lo, hi)
	}
	// Mass outside the bounds must be negligible.
	var outside float64
	for k := 0; k < lo; k++ {
		outside += d.Prob(k)
	}
	for k := hi + 1; k <= 500; k++ {
		outside += d.Prob(k)
	}
	if outside > 1e-10 {
		t.Errorf("mass outside bounds = %v", outside)
	}
	// Exact dist returns full support.
	e := Exact([]float64{0.5, 0.5})
	if lo, hi := e.SupportBounds(); lo != 0 || hi != 2 {
		t.Errorf("exact bounds = [%d, %d]", lo, hi)
	}
}

func BenchmarkExactDP(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	probs := make([]float64, 200)
	for i := range probs {
		probs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(probs)
	}
}
