// Package pbinom computes the Poisson-binomial distribution: the law of
// the sum of independent, non-identical Bernoulli variables.
//
// In the paper, the degree of a vertex v in the uncertain graph G̃ is
// exactly such a sum over the candidate pairs incident to v (Eq. 4).
// Section 4 gives two evaluation routes, both implemented here:
//
//   - Lemma 1: an exact O(L^2) dynamic program over the L incident
//     probabilities;
//   - a CLT/normal approximation Pr(d = w) ~ integral of the Gaussian
//     N(sum p_i, sum p_i(1-p_i)) over [w-1/2, w+1/2], accurate once L is
//     a few tens ("n ~ 30" per the paper).
package pbinom

import (
	"math"

	"uncertaingraph/internal/mathx"
)

// DefaultExactThreshold is the number of Bernoulli terms above which New
// switches from the exact DP to the normal approximation. Thirty is the
// paper's own rule of thumb for CLT accuracy.
const DefaultExactThreshold = 30

// Dist is the distribution of a sum of independent Bernoulli variables,
// represented either exactly or by its normal approximation.
type Dist struct {
	exact []float64 // exact[k] = P(X=k); nil when approximated
	mu    float64
	sigma float64
	n     int // number of Bernoulli terms (support is 0..n)
}

// Exact computes the full distribution by the Lemma 1 dynamic program in
// O(len(probs)^2) time.
func Exact(probs []float64) Dist {
	dist := make([]float64, len(probs)+1)
	dist[0] = 1
	// After processing l terms, dist[0..l] is the law of the partial sum.
	for l, p := range probs {
		// Walk downward so dist[j-1] is still the previous iteration's
		// value when updating dist[j].
		for j := l + 1; j >= 1; j-- {
			dist[j] = dist[j-1]*p + dist[j]*(1-p)
		}
		dist[0] *= 1 - p
	}
	mu, sigma2 := meanVar(probs)
	return Dist{exact: dist, mu: mu, sigma: sqrt(sigma2), n: len(probs)}
}

// Approx builds the normal approximation of the distribution without
// computing it exactly; evaluation of Prob is O(1) per point.
func Approx(probs []float64) Dist {
	mu, sigma2 := meanVar(probs)
	return Dist{mu: mu, sigma: sqrt(sigma2), n: len(probs)}
}

// New picks the representation adaptively: exact DP up to threshold
// terms (0 means DefaultExactThreshold), normal approximation beyond.
func New(probs []float64, threshold int) Dist {
	if threshold <= 0 {
		threshold = DefaultExactThreshold
	}
	if len(probs) <= threshold {
		return Exact(probs)
	}
	return Approx(probs)
}

// Prob returns P(X = k).
func (d Dist) Prob(k int) float64 {
	if k < 0 || k > d.n {
		return 0
	}
	if d.exact != nil {
		return d.exact[k]
	}
	if d.sigma == 0 {
		// Degenerate: all probabilities 0 or 1, X is constant at mu.
		if float64(k) == d.mu {
			return 1
		}
		return 0
	}
	return mathx.NormalIntervalMass(float64(k)-0.5, float64(k)+0.5, d.mu, d.sigma)
}

// Mean returns E[X] = sum p_i.
func (d Dist) Mean() float64 { return d.mu }

// Sigma returns the standard deviation sqrt(sum p_i (1-p_i)).
func (d Dist) Sigma() float64 { return d.sigma }

// NumTerms returns the number of Bernoulli terms; the support of X is
// {0, ..., NumTerms()}.
func (d Dist) NumTerms() int { return d.n }

// IsExact reports whether the distribution holds the exact DP table.
func (d Dist) IsExact() bool { return d.exact != nil }

// SupportBounds returns a conservative [lo, hi] integer range outside of
// which P(X = k) is below ~1e-12; useful to skip negligible matrix
// entries. For exact distributions it is the full support.
func (d Dist) SupportBounds() (lo, hi int) {
	if d.exact != nil {
		return 0, d.n
	}
	// 8 standard deviations cover mass 1 - ~1e-15.
	span := 8*d.sigma + 1
	lo = int(d.mu - span)
	hi = int(d.mu + span + 1)
	if lo < 0 {
		lo = 0
	}
	if hi > d.n {
		hi = d.n
	}
	return lo, hi
}

func meanVar(probs []float64) (mu, sigma2 float64) {
	for _, p := range probs {
		mu += p
		sigma2 += p * (1 - p)
	}
	return mu, sigma2
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
