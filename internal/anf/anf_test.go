package anf

import (
	"math"
	"testing"

	"uncertaingraph/internal/bfs"
	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/stats"
)

func TestNeighbourhoodFunctionMonotone(t *testing.T) {
	g := gen.HolmeKim(randx.New(1), 500, 3, 0.3)
	nf := NeighbourhoodFunction(g, Options{Bits: 8, Seed: 1})
	for i := 1; i < len(nf); i++ {
		if nf[i] < nf[i-1]-1e-9 {
			t.Fatalf("N(%d) = %v < N(%d) = %v", i, nf[i], i-1, nf[i-1])
		}
	}
	// N(0) ~ n.
	if math.Abs(nf[0]-500)/500 > 0.15 {
		t.Errorf("N(0) = %v, want ~500", nf[0])
	}
}

func TestNeighbourhoodFunctionCompleteGraph(t *testing.T) {
	g := gen.ErdosRenyiGNP(randx.New(2), 64, 1)
	nf := NeighbourhoodFunction(g, Options{Bits: 10, Seed: 3})
	// Diameter 1: the function must stabilize at ~n^2 after one step.
	last := nf[len(nf)-1]
	if math.Abs(last-64*64)/(64*64) > 0.1 {
		t.Errorf("N(inf) = %v, want ~4096", last)
	}
	if len(nf) > 3 {
		t.Errorf("K64 should stabilize after ~1 iteration, got %d points", len(nf))
	}
}

func TestDistanceDistributionMatchesBFS(t *testing.T) {
	g := gen.HolmeKim(randx.New(4), 1000, 3, 0.3)
	exact := bfs.DistanceDistribution(g)
	est := DistanceDistribution(g, Options{Bits: 9, Seed: 7})
	// Scalar statistics should agree within HLL error.
	if rel := math.Abs(est.AvgDistance()-exact.AvgDistance()) / exact.AvgDistance(); rel > 0.1 {
		t.Errorf("APD est %v vs exact %v (rel %v)", est.AvgDistance(), exact.AvgDistance(), rel)
	}
	if rel := math.Abs(est.EffectiveDiameter(0.9)-exact.EffectiveDiameter(0.9)) / exact.EffectiveDiameter(0.9); rel > 0.15 {
		t.Errorf("EDiam est %v vs exact %v", est.EffectiveDiameter(0.9), exact.EffectiveDiameter(0.9))
	}
	// Diameter estimate is a lower bound up to HLL noise; it must be in
	// the right ballpark.
	if est.Diameter() < exact.Diameter()-3 || est.Diameter() > exact.Diameter()+3 {
		t.Errorf("DiamLB est %d vs exact %d", est.Diameter(), exact.Diameter())
	}
}

func TestDistanceDistributionDisconnectedComponents(t *testing.T) {
	// Two separate cliques: half of all pairs are disconnected.
	b := graph.NewBuilder(40)
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+20, v+20)
		}
	}
	g := b.Build()
	est := DistanceDistribution(g, Options{Bits: 10, Seed: 9})
	wantDisc := float64(20 * 20)
	if math.Abs(est.Disconnected-wantDisc)/wantDisc > 0.2 {
		t.Errorf("Disconnected = %v, want ~%v", est.Disconnected, wantDisc)
	}
}

func TestJackknifedErrorSmall(t *testing.T) {
	g := gen.HolmeKim(randx.New(5), 600, 3, 0.3)
	exact := bfs.DistanceDistribution(g).AvgDistance()
	est, se := Jackknifed(g, Options{Bits: 8, Seed: 20}, 8, func(d stats.DistanceDistribution) float64 {
		return d.AvgDistance()
	})
	if math.Abs(est-exact)/exact > 0.08 {
		t.Errorf("jackknifed APD %v vs exact %v", est, exact)
	}
	if se <= 0 || se/est > 0.05 {
		t.Errorf("standard error %v implausible (paper reports 0.2%%-2%%)", se/est)
	}
}

func TestSeedChangesEstimatesSlightly(t *testing.T) {
	g := gen.HolmeKim(randx.New(6), 400, 3, 0.3)
	a := DistanceDistribution(g, Options{Bits: 7, Seed: 1}).AvgDistance()
	b := DistanceDistribution(g, Options{Bits: 7, Seed: 2}).AvgDistance()
	if a == b {
		t.Error("different seeds should perturb the estimate")
	}
	if math.Abs(a-b)/a > 0.2 {
		t.Errorf("seeds disagree too much: %v vs %v", a, b)
	}
}

func TestMaxIterCapsRun(t *testing.T) {
	// A long path needs ~n iterations; capping must stop early.
	b := graph.NewBuilder(200)
	for i := 0; i < 199; i++ {
		b.AddEdge(i, i+1)
	}
	nf := NeighbourhoodFunction(b.Build(), Options{Bits: 6, MaxIter: 5, Seed: 1})
	if len(nf) != 6 { // N(0) plus 5 iterations
		t.Errorf("got %d points, want 6", len(nf))
	}
}
