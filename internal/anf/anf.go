// Package anf implements HyperANF (Boldi–Rosa–Vigna, WWW'11): an
// estimator of the neighbourhood function N(t) — the number of ordered
// vertex pairs within distance t — using one HyperLogLog counter per
// vertex, iteratively unioned over neighbourhoods until stabilization.
//
// The paper uses HyperANF to compute the distance-based statistics of
// §6.3 on each sampled possible world, repeating runs and jackknifing
// to bound the estimation error. DistanceDistribution and Jackknifed
// reproduce that pipeline.
package anf

import (
	"runtime"
	"sync"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/hll"
	"uncertaingraph/internal/mathx"
	"uncertaingraph/internal/stats"
)

// Options configures a HyperANF run.
type Options struct {
	// Bits is the per-counter register exponent (m = 2^Bits registers);
	// 0 selects 7 (m = 128, ~9% per-counter RSD, far smaller after
	// summing over vertices).
	Bits int
	// MaxIter caps the number of BFS-like iterations; 0 selects 256.
	MaxIter int
	// Seed decorrelates the hash functions of repeated runs.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Bits == 0 {
		o.Bits = 7
	}
	if o.MaxIter == 0 {
		o.MaxIter = 256
	}
	return o
}

// NeighbourhoodFunction estimates N(t) for t = 0, 1, ... until no
// counter changes (or MaxIter). N(0) = n; N(t) counts ordered pairs
// (u, v) with dist(u,v) <= t, including u = v.
func NeighbourhoodFunction(g *graph.Graph, opt Options) []float64 {
	opt = opt.withDefaults()
	n := g.NumVertices()
	cur := make([]hll.Counter, n)
	next := make([]hll.Counter, n)
	for v := 0; v < n; v++ {
		cur[v] = hll.New(opt.Bits)
		cur[v].AddHash(hll.Hash64(uint64(v), opt.Seed))
		next[v] = hll.New(opt.Bits)
	}
	nf := []float64{sumEstimates(cur)}
	for t := 1; t <= opt.MaxIter; t++ {
		changed := iterate(g, cur, next)
		cur, next = next, cur
		nf = append(nf, sumEstimates(cur))
		if !changed {
			break
		}
	}
	return nf
}

// Engine runs HyperANF repeatedly against reusable state: every
// counter register of every vertex lives in one flat byte array that
// is zeroed — not reallocated — between runs, and the neighbourhood
// function and distance-count buffers are reused likewise. The
// possible-world estimation pipeline holds one Engine per worker and
// reuses it across all that worker's sampled worlds. An Engine runs
// its iterations sequentially (the worlds are the parallel axis) and
// produces bit-identical results to the package-level functions:
// register unions are idempotent maxima, so the iteration schedule
// cannot affect any estimate.
type Engine struct {
	opt       Options
	regs      []byte
	cur, next []hll.Counter
	nf        []float64
	counts    []float64
}

// NewEngine returns an engine with the given options; buffers grow on
// first use.
func NewEngine(opt Options) *Engine {
	return &Engine{opt: opt.withDefaults()}
}

func (e *Engine) ensure(n int) {
	m := hll.RegisterCount(e.opt.Bits)
	if need := 2 * n * m; cap(e.regs) < need {
		e.regs = make([]byte, need)
		e.cur = make([]hll.Counter, 0, n)
		e.next = make([]hll.Counter, 0, n)
	} else {
		for i := range e.regs[:need] {
			e.regs[i] = 0
		}
	}
	e.cur, e.next = e.cur[:0], e.next[:0]
	for v := 0; v < n; v++ {
		e.cur = append(e.cur, hll.FromRegisters(e.regs[2*v*m:(2*v+1)*m]))
		e.next = append(e.next, hll.FromRegisters(e.regs[(2*v+1)*m:(2*v+2)*m]))
	}
}

// NeighbourhoodFunction is the buffer-reusing form of the package
// function; the returned slice aliases the engine and is valid until
// the next call. seed overrides the engine options' Seed.
func (e *Engine) NeighbourhoodFunction(g *graph.Graph, seed uint64) []float64 {
	n := g.NumVertices()
	e.ensure(n)
	for v := 0; v < n; v++ {
		e.cur[v].AddHash(hll.Hash64(uint64(v), seed))
	}
	e.nf = append(e.nf[:0], sumEstimates(e.cur))
	for t := 1; t <= e.opt.MaxIter; t++ {
		changed := iterateRange(g, e.cur, e.next, 0, n)
		e.cur, e.next = e.next, e.cur
		e.nf = append(e.nf, sumEstimates(e.cur))
		if !changed {
			break
		}
	}
	return e.nf
}

// DistanceDistribution is the buffer-reusing form of the package
// function; the returned Counts alias the engine and are valid until
// the next call.
func (e *Engine) DistanceDistribution(g *graph.Graph, seed uint64) stats.DistanceDistribution {
	nf := e.NeighbourhoodFunction(g, seed)
	n := float64(g.NumVertices())
	e.counts = e.counts[:0]
	var connected float64
	e.counts = append(e.counts, 0)
	for d := 1; d < len(nf); d++ {
		inc := (nf[d] - nf[d-1]) / 2
		if inc < 0 {
			inc = 0
		}
		e.counts = append(e.counts, inc)
		connected += inc
	}
	total := n * (n - 1) / 2
	disconnected := total - connected
	if disconnected < 0 {
		disconnected = 0
	}
	return stats.DistanceDistribution{Counts: e.counts, Disconnected: disconnected}
}

// iterate computes next[v] = cur[v] ∪ (∪_{u ~ v} cur[u]) for all v in
// parallel and reports whether any counter changed.
func iterate(g *graph.Graph, cur, next []hll.Counter) bool {
	n := g.NumVertices()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	changedBy := make([]bool, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if iterateRange(g, cur, next, lo, hi) {
				changedBy[w] = true
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, c := range changedBy {
		if c {
			return true
		}
	}
	return false
}

// iterateRange updates next[v] for v in [lo, hi) and reports whether
// any counter in the range changed.
func iterateRange(g *graph.Graph, cur, next []hll.Counter, lo, hi int) bool {
	anyChanged := false
	for v := lo; v < hi; v++ {
		// Start from the previous value of v's counter.
		next[v].CopyFrom(cur[v])
		changed := false
		for _, u := range g.Neighbors(v) {
			if next[v].Union(cur[u]) {
				changed = true
			}
		}
		if changed {
			anyChanged = true
		}
	}
	return anyChanged
}

func sumEstimates(counters []hll.Counter) float64 {
	var sum float64
	for _, c := range counters {
		sum += c.Estimate()
	}
	return sum
}

// DistanceDistribution converts a HyperANF run into the S_PDD shape:
// Counts[d] ~ (N(d) - N(d-1))/2 unordered pairs at distance d (negative
// increments from estimation noise are clamped to zero), and
// Disconnected = C(n,2) - connected. The distribution's Diameter() is
// the paper's lower bound S_DiamLB.
func DistanceDistribution(g *graph.Graph, opt Options) stats.DistanceDistribution {
	nf := NeighbourhoodFunction(g, opt)
	n := float64(g.NumVertices())
	counts := make([]float64, len(nf))
	var connected float64
	for d := 1; d < len(nf); d++ {
		inc := (nf[d] - nf[d-1]) / 2
		if inc < 0 {
			inc = 0
		}
		counts[d] = inc
		connected += inc
	}
	total := n * (n - 1) / 2
	disconnected := total - connected
	if disconnected < 0 {
		disconnected = 0
	}
	return stats.DistanceDistribution{Counts: counts, Disconnected: disconnected}
}

// Jackknifed runs HyperANF `runs` times with different hash seeds,
// derives a scalar statistic from each run's distance distribution, and
// returns the jackknife estimate and standard error — the paper's §6.3
// error-control procedure.
func Jackknifed(g *graph.Graph, opt Options, runs int, stat func(stats.DistanceDistribution) float64) (estimate, stderr float64) {
	if runs < 1 {
		runs = 1
	}
	vals := make([]float64, runs)
	for r := 0; r < runs; r++ {
		o := opt
		o.Seed = opt.Seed + uint64(r)*0x5DEECE66D + 1
		vals[r] = stat(DistanceDistribution(g, o))
	}
	return mathx.Jackknife(vals, func(xs []float64) float64 {
		m, _ := mathx.MeanStd(xs)
		return m
	})
}
