// Package anf implements HyperANF (Boldi–Rosa–Vigna, WWW'11): an
// estimator of the neighbourhood function N(t) — the number of ordered
// vertex pairs within distance t — using one HyperLogLog counter per
// vertex, iteratively unioned over neighbourhoods until stabilization.
//
// The paper uses HyperANF to compute the distance-based statistics of
// §6.3 on each sampled possible world, repeating runs and jackknifing
// to bound the estimation error. DistanceDistribution and Jackknifed
// reproduce that pipeline.
package anf

import (
	"runtime"
	"sync"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/hll"
	"uncertaingraph/internal/mathx"
	"uncertaingraph/internal/stats"
)

// Options configures a HyperANF run.
type Options struct {
	// Bits is the per-counter register exponent (m = 2^Bits registers);
	// 0 selects 7 (m = 128, ~9% per-counter RSD, far smaller after
	// summing over vertices).
	Bits int
	// MaxIter caps the number of BFS-like iterations; 0 selects 256.
	MaxIter int
	// Seed decorrelates the hash functions of repeated runs.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Bits == 0 {
		o.Bits = 7
	}
	if o.MaxIter == 0 {
		o.MaxIter = 256
	}
	return o
}

// NeighbourhoodFunction estimates N(t) for t = 0, 1, ... until no
// counter changes (or MaxIter). N(0) = n; N(t) counts ordered pairs
// (u, v) with dist(u,v) <= t, including u = v.
func NeighbourhoodFunction(g *graph.Graph, opt Options) []float64 {
	opt = opt.withDefaults()
	n := g.NumVertices()
	cur := make([]hll.Counter, n)
	next := make([]hll.Counter, n)
	for v := 0; v < n; v++ {
		cur[v] = hll.New(opt.Bits)
		cur[v].AddHash(hll.Hash64(uint64(v), opt.Seed))
		next[v] = hll.New(opt.Bits)
	}
	nf := []float64{sumEstimates(cur)}
	for t := 1; t <= opt.MaxIter; t++ {
		changed := iterate(g, cur, next)
		cur, next = next, cur
		nf = append(nf, sumEstimates(cur))
		if !changed {
			break
		}
	}
	return nf
}

// iterate computes next[v] = cur[v] ∪ (∪_{u ~ v} cur[u]) for all v in
// parallel and reports whether any counter changed.
func iterate(g *graph.Graph, cur, next []hll.Counter) bool {
	n := g.NumVertices()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	changedBy := make([]bool, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				// Start from the previous value of v's counter.
				copyRegisters(next[v], cur[v])
				changed := false
				for _, u := range g.Neighbors(v) {
					if next[v].Union(cur[u]) {
						changed = true
					}
				}
				if changed {
					changedBy[w] = true
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, c := range changedBy {
		if c {
			return true
		}
	}
	return false
}

func copyRegisters(dst, src hll.Counter) {
	dst.CopyFrom(src)
}

func sumEstimates(counters []hll.Counter) float64 {
	var sum float64
	for _, c := range counters {
		sum += c.Estimate()
	}
	return sum
}

// DistanceDistribution converts a HyperANF run into the S_PDD shape:
// Counts[d] ~ (N(d) - N(d-1))/2 unordered pairs at distance d (negative
// increments from estimation noise are clamped to zero), and
// Disconnected = C(n,2) - connected. The distribution's Diameter() is
// the paper's lower bound S_DiamLB.
func DistanceDistribution(g *graph.Graph, opt Options) stats.DistanceDistribution {
	nf := NeighbourhoodFunction(g, opt)
	n := float64(g.NumVertices())
	counts := make([]float64, len(nf))
	var connected float64
	for d := 1; d < len(nf); d++ {
		inc := (nf[d] - nf[d-1]) / 2
		if inc < 0 {
			inc = 0
		}
		counts[d] = inc
		connected += inc
	}
	total := n * (n - 1) / 2
	disconnected := total - connected
	if disconnected < 0 {
		disconnected = 0
	}
	return stats.DistanceDistribution{Counts: counts, Disconnected: disconnected}
}

// Jackknifed runs HyperANF `runs` times with different hash seeds,
// derives a scalar statistic from each run's distance distribution, and
// returns the jackknife estimate and standard error — the paper's §6.3
// error-control procedure.
func Jackknifed(g *graph.Graph, opt Options, runs int, stat func(stats.DistanceDistribution) float64) (estimate, stderr float64) {
	if runs < 1 {
		runs = 1
	}
	vals := make([]float64, runs)
	for r := 0; r < runs; r++ {
		o := opt
		o.Seed = opt.Seed + uint64(r)*0x5DEECE66D + 1
		vals[r] = stat(DistanceDistribution(g, o))
	}
	return mathx.Jackknife(vals, func(xs []float64) float64 {
		m, _ := mathx.MeanStd(xs)
		return m
	})
}
