package hll

import (
	"math"
	"testing"
)

func TestEstimateAccuracy(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 50000} {
		c := New(10) // 1024 registers, ~3.25% RSD
		for i := 0; i < n; i++ {
			c.AddHash(Hash64(uint64(i), 7))
		}
		est := c.Estimate()
		if rel := math.Abs(est-float64(n)) / float64(n); rel > 0.12 {
			t.Errorf("n=%d: estimate %v, relative error %v", n, est, rel)
		}
	}
}

func TestEstimateEmpty(t *testing.T) {
	c := New(6)
	if got := c.Estimate(); got != 0 {
		t.Errorf("empty estimate = %v, want 0 (linear counting of all-zero registers)", got)
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	c := New(8)
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 100; i++ {
			c.AddHash(Hash64(uint64(i), 3))
		}
	}
	est := c.Estimate()
	if est > 130 || est < 70 {
		t.Errorf("estimate with duplicates = %v, want ~100", est)
	}
}

func TestUnionEqualsUnionOfSets(t *testing.T) {
	a, b, ab := New(9), New(9), New(9)
	for i := 0; i < 500; i++ {
		h := Hash64(uint64(i), 11)
		a.AddHash(h)
		ab.AddHash(h)
	}
	for i := 400; i < 1000; i++ {
		h := Hash64(uint64(i), 11)
		b.AddHash(h)
		ab.AddHash(h)
	}
	u := a.Clone()
	u.Union(b)
	// Union of sketches must equal the sketch of the union, exactly.
	for i := range u.reg {
		if u.reg[i] != ab.reg[i] {
			t.Fatal("union sketch differs from sketch of union")
		}
	}
}

func TestUnionChangeReporting(t *testing.T) {
	a, b := New(6), New(6)
	for i := 0; i < 50; i++ {
		b.AddHash(Hash64(uint64(i), 5))
	}
	if !a.Union(b) {
		t.Error("union with larger sketch should report change")
	}
	if a.Union(b) {
		t.Error("repeated union should be a no-op")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(6)
	a.AddHash(Hash64(1, 1))
	b := a.Clone()
	b.AddHash(Hash64(999, 1))
	if a.Estimate() == b.Estimate() {
		// They could coincide by hashing to the same register/rank;
		// check registers directly.
		same := true
		for i := range a.reg {
			if a.reg[i] != b.reg[i] {
				same = false
			}
		}
		if same {
			t.Skip("hash collision made registers identical; acceptable")
		}
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(6), New(6)
	for i := 0; i < 100; i++ {
		a.AddHash(Hash64(uint64(i), 9))
	}
	b.CopyFrom(a)
	for i := range a.reg {
		if a.reg[i] != b.reg[i] {
			t.Fatal("CopyFrom must copy all registers")
		}
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on size mismatch")
		}
	}()
	a, b := New(6), New(7)
	a.Union(b)
}

func TestNewValidation(t *testing.T) {
	for _, b := range []int{0, 3, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", b)
				}
			}()
			New(b)
		}()
	}
}

func TestHash64SeedDecorrelates(t *testing.T) {
	same := 0
	for i := 0; i < 1000; i++ {
		if Hash64(uint64(i), 1) == Hash64(uint64(i), 2) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/1000 hashes collide across seeds", same)
	}
}
