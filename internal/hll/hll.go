// Package hll implements HyperLogLog cardinality counters with
// register-wise union — the primitive underlying HyperANF
// (Boldi–Rosa–Vigna, WWW'11), which the paper uses to estimate distance
// distributions on large graphs (§6.3).
//
// A counter with 2^b byte registers estimates set cardinality with
// relative standard deviation ~1.04/sqrt(2^b); unions are exact
// (register-wise max), which is what makes the ANF iteration sound.
package hll

import (
	"math"
	"math/bits"
)

// Counter is a HyperLogLog sketch. The zero value is unusable; create
// counters with New.
type Counter struct {
	reg []byte
	b   uint
}

// New returns a counter with 2^b registers, 4 <= b <= 16.
func New(b int) Counter {
	if b < 4 || b > 16 {
		panic("hll: register exponent must be in [4, 16]")
	}
	return Counter{reg: make([]byte, 1<<b), b: uint(b)}
}

// RegisterCount returns the number of registers of a counter with
// exponent b — the per-counter slice size FromRegisters expects.
func RegisterCount(b int) int {
	if b < 4 || b > 16 {
		panic("hll: register exponent must be in [4, 16]")
	}
	return 1 << b
}

// FromRegisters wraps an externally allocated register slice as a
// counter without copying: the caller owns the memory, so many
// counters can share one flat backing array (the layout HyperANF wants
// — one allocation for all vertices, reusable across runs). The slice
// length must be a power of two in [16, 65536].
func FromRegisters(reg []byte) Counter {
	n := len(reg)
	if n == 0 || n&(n-1) != 0 {
		panic("hll: register slice length must be a power of two")
	}
	b := uint(bits.TrailingZeros(uint(n)))
	if b < 4 || b > 16 {
		panic("hll: register exponent must be in [4, 16]")
	}
	return Counter{reg: reg, b: b}
}

// Clone returns an independent copy.
func (c Counter) Clone() Counter {
	out := Counter{reg: make([]byte, len(c.reg)), b: c.b}
	copy(out.reg, c.reg)
	return out
}

// AddHash inserts an element represented by a 64-bit hash. Use a
// high-quality hash (see Hash64) — register index and rank are both
// carved from it.
func (c Counter) AddHash(h uint64) {
	idx := h >> (64 - c.b)
	rest := h<<c.b | 1<<(c.b-1) // guard bit bounds the rank
	rank := byte(bits.LeadingZeros64(rest)) + 1
	if rank > c.reg[idx] {
		c.reg[idx] = rank
	}
}

// CopyFrom overwrites c's registers with src's. Counters must have
// equal size.
func (c Counter) CopyFrom(src Counter) {
	if len(c.reg) != len(src.reg) {
		panic("hll: copy between differently sized counters")
	}
	copy(c.reg, src.reg)
}

// Union folds other into c (register-wise max) and reports whether any
// register changed. Counters must have equal size.
func (c Counter) Union(other Counter) bool {
	if len(c.reg) != len(other.reg) {
		panic("hll: union of differently sized counters")
	}
	changed := false
	for i, r := range other.reg {
		if r > c.reg[i] {
			c.reg[i] = r
			changed = true
		}
	}
	return changed
}

// Estimate returns the cardinality estimate with the standard bias
// correction and the small-range (linear counting) correction.
func (c Counter) Estimate() float64 {
	m := float64(len(c.reg))
	var invSum float64
	zeros := 0
	for _, r := range c.reg {
		invSum += math.Exp2(-float64(r))
		if r == 0 {
			zeros++
		}
	}
	est := alpha(len(c.reg)) * m * m / invSum
	if est <= 2.5*m && zeros > 0 {
		// Linear counting is more accurate in the small range.
		return m * math.Log(m/float64(zeros))
	}
	return est
}

// alpha returns the HyperLogLog bias-correction constant for m
// registers.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(m))
}

// Hash64 mixes a 64-bit input into a well-distributed 64-bit hash
// (the splitmix64 finalizer); seed decorrelates repeated ANF runs for
// jackknife error estimation.
func Hash64(x, seed uint64) uint64 {
	z := x + seed*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
