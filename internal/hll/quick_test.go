package hll

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sketchOf(items []uint64, seed uint64) Counter {
	c := New(7)
	for _, x := range items {
		c.AddHash(Hash64(x, seed))
	}
	return c
}

func regsEqual(a, b Counter) bool {
	for i := range a.reg {
		if a.reg[i] != b.reg[i] {
			return false
		}
	}
	return true
}

// Property: union is commutative, associative and idempotent at the
// register level — the algebra HyperANF's fixed-point iteration relies
// on.
func TestQuickUnionAlgebra(t *testing.T) {
	f := func(rawA, rawB, rawC []uint64) bool {
		a, b, c := sketchOf(rawA, 1), sketchOf(rawB, 1), sketchOf(rawC, 1)

		// Commutativity: a∪b == b∪a.
		ab := a.Clone()
		ab.Union(b)
		ba := b.Clone()
		ba.Union(a)
		if !regsEqual(ab, ba) {
			return false
		}
		// Associativity: (a∪b)∪c == a∪(b∪c).
		abc1 := ab.Clone()
		abc1.Union(c)
		bc := b.Clone()
		bc.Union(c)
		abc2 := a.Clone()
		abc2.Union(bc)
		if !regsEqual(abc1, abc2) {
			return false
		}
		// Idempotence: a∪a == a, and union reports no change.
		aa := a.Clone()
		if aa.Union(a) {
			return false
		}
		return regsEqual(aa, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: adding elements (almost) never decreases the estimate.
// Registers are monotone, and the estimate is monotone within each
// regime of the estimator; the only permitted dip is the bounded
// discontinuity where it switches from linear counting to the raw
// HyperLogLog formula (ANF's distance distribution clamps any
// resulting negative increment). Empirically the dip bottoms out near
// a 0.61 ratio for b = 6 (measured over 4000 seeds), so the property
// asserts it never exceeds half. The quick RNG is pinned: with the
// default time seed this test would flake on the rare deep-dip seeds.
func TestQuickEstimateMonotone(t *testing.T) {
	f := func(seed int64, extra uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(6)
		prev := c.Estimate()
		for i := 0; i < int(extra)+1; i++ {
			c.AddHash(Hash64(rng.Uint64(), 3))
			est := c.Estimate()
			if est < prev*0.5-1e-9 {
				return false
			}
			if est > prev {
				prev = est
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: union estimate is at least the max of the operands' and at
// most their sum (for these sketches: subadditivity holds through the
// register max).
func TestQuickUnionEstimateBounds(t *testing.T) {
	f := func(rawA, rawB []uint64) bool {
		a, b := sketchOf(rawA, 5), sketchOf(rawB, 5)
		u := a.Clone()
		u.Union(b)
		ea, eb, eu := a.Estimate(), b.Estimate(), u.Estimate()
		max := ea
		if eb > max {
			max = eb
		}
		return eu >= max-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
