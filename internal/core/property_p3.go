package core

import (
	"sort"

	"uncertaingraph/internal/graph"
)

// RadiusOneProperty is the paper's P3: the adversary knows the target's
// radius-one induced subgraph (the subgraph on the vertex and its
// neighbours — Zhou–Pei style knowledge). Section 5.2 prescribes "the
// edit distance between two subgraphs" as the metric on Ω_P3.
//
// Exact graph edit distance is NP-hard, so this implementation uses the
// standard canonical-signature + lower-bound construction: a
// neighbourhood is summarized by (vertex count, edge count, sorted
// within-neighbourhood degree sequence), identical signatures intern to
// the same value, and the distance between two signatures is the edit
// lower bound |Δ vertices| + |Δ edges| + L1 distance of the padded
// degree sequences — zero iff the signatures coincide, and never
// exceeding the true edit distance by construction of each term. As
// with P2, the property drives uniqueness scoring; (k, ε) verification
// remains degree-based as in the paper's experiments.
type RadiusOneProperty struct {
	dict []r1Signature
}

type r1Signature struct {
	vertices int
	edges    int
	// degSeq is the sorted (descending) degree sequence of the induced
	// radius-one subgraph, including the center.
	degSeq []int
}

// NewRadiusOneProperty returns an empty-dictionary P3 property.
func NewRadiusOneProperty() *RadiusOneProperty { return &RadiusOneProperty{} }

// Name implements Property.
func (p *RadiusOneProperty) Name() string { return "radius-one-subgraph" }

// Values implements Property: it computes every vertex's radius-one
// signature and interns it into dense ids.
func (p *RadiusOneProperty) Values(g *graph.Graph) []int {
	n := g.NumVertices()
	out := make([]int, n)
	index := make(map[string]int, n)
	for v := 0; v < n; v++ {
		sig := radiusOneSignature(g, v)
		key := r1Key(sig)
		id, ok := index[key]
		if !ok {
			id = len(p.dict)
			index[key] = id
			p.dict = append(p.dict, sig)
		}
		out[v] = id
	}
	return out
}

// Distance implements Property: the edit-distance lower bound between
// the two interned signatures.
func (p *RadiusOneProperty) Distance(a, b int) float64 {
	if a == b {
		return 0
	}
	sa, sb := p.dict[a], p.dict[b]
	dist := absInt(sa.vertices-sb.vertices) + absInt(sa.edges-sb.edges)
	la, lb := len(sa.degSeq), len(sb.degSeq)
	max := la
	if lb > max {
		max = lb
	}
	for i := 0; i < max; i++ {
		var va, vb int
		if i < la {
			va = sa.degSeq[i]
		}
		if i < lb {
			vb = sb.degSeq[i]
		}
		dist += absInt(va - vb)
	}
	return float64(dist)
}

// radiusOneSignature builds the canonical summary of the subgraph
// induced by v and its neighbours.
func radiusOneSignature(g *graph.Graph, v int) r1Signature {
	nbrs := g.Neighbors(v)
	members := make(map[int32]int, len(nbrs)+1) // vertex -> local index
	members[int32(v)] = 0
	for i, u := range nbrs {
		members[u] = i + 1
	}
	deg := make([]int, len(members))
	edges := 0
	for u, iu := range members {
		for _, w := range g.Neighbors(int(u)) {
			if iw, ok := members[w]; ok {
				deg[iu]++
				if iu < iw {
					edges++
				}
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	return r1Signature{vertices: len(members), edges: edges, degSeq: deg}
}

func r1Key(s r1Signature) string {
	buf := make([]byte, 0, 8+4*len(s.degSeq))
	push := func(d int) {
		buf = append(buf, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
	}
	push(s.vertices)
	push(s.edges)
	for _, d := range s.degSeq {
		push(d)
	}
	return string(buf)
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
