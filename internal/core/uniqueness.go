package core

import (
	"sort"

	"uncertaingraph/internal/mathx"
)

// thetaExactCutoff: below this θ the Gaussian kernel is effectively an
// indicator at distance zero, so commonness degenerates to the count of
// vertices sharing the value; computing it that way avoids overflow of
// the 1/θ density prefactor.
const thetaExactCutoff = 1e-12

// CommonnessScores returns the θ-commonness C_θ(ω) (Definition 3) for
// each distinct property value, as a map from value to commonness:
//
//	C_θ(ω) = Σ_v φ_{0,θ}(d(ω, P(v))).
//
// values are the per-vertex property values; dist the metric on Ω_P.
// Only values present in the graph are returned — the paper evaluates
// commonness exactly at those points.
func CommonnessScores(values []int, dist func(a, b int) float64, theta float64) map[int]float64 {
	// Histogram over distinct values: the sum over vertices groups into
	// a sum over distinct values weighted by multiplicity.
	counts := make(map[int]int, 64)
	for _, v := range values {
		counts[v]++
	}
	out := make(map[int]float64, len(counts))
	if theta < thetaExactCutoff {
		// Degenerate kernel: only exact matches contribute; the common
		// positive prefactor is irrelevant because commonness is used as
		// a relative measure.
		for w, c := range counts {
			out[w] = float64(c)
		}
		return out
	}
	// Accumulate in sorted value order: summing in map iteration order
	// would let float rounding differ from run to run, and the scores
	// seed the sampling distribution of every obfuscation trial — any
	// bit drift here would break the engine's reproducibility guarantee.
	vals := make([]int, 0, len(counts))
	for w := range counts {
		vals = append(vals, w)
	}
	sort.Ints(vals)
	for _, w := range vals {
		var sum float64
		for _, wp := range vals {
			sum += float64(counts[wp]) * mathx.NormalPDF(dist(w, wp), 0, theta)
		}
		out[w] = sum
	}
	return out
}

// UniquenessScores returns U_θ(P(v)) = 1/C_θ(P(v)) for every vertex
// (Definition 3): how atypical each vertex's property value is, hence
// how much uncertainty it needs to blend in.
func UniquenessScores(values []int, dist func(a, b int) float64, theta float64) []float64 {
	common := CommonnessScores(values, dist, theta)
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = 1 / common[v]
	}
	return out
}
