package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/mathx"
	"uncertaingraph/internal/parallel"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/uncertain"
)

// Attempt is the outcome of one GenerateObfuscation call.
type Attempt struct {
	// EpsTilde is the achieved fraction of non-k-obfuscated vertices;
	// math.Inf(1) when no trial met the ε bound.
	EpsTilde float64
	// G is the best uncertain graph found, nil on failure.
	G *uncertain.Graph
}

// Failed reports whether the attempt found no (k, ε)-obfuscation.
func (a Attempt) Failed() bool { return math.IsInf(a.EpsTilde, 1) }

// GenerateObfuscation is Algorithm 2: it tries (up to t times) to build
// a (k, ε)-obfuscation of g with uncertainty parameter sigma, returning
// the best attempt.
//
// Trials run on up to params.Workers goroutines, each driving an RNG
// stream derived from (params.Seed, σ, trial index), and the winner is
// the success with the lowest ε̃, ties broken by the lower trial index —
// the same attempt the sequential best-of-t loop keeps. All t trials
// are examined (a later trial may beat an earlier success), so the
// result is bit-identical for every Workers value (including 1).
func GenerateObfuscation(g *graph.Graph, sigma float64, params Params) Attempt {
	params = params.withDefaults()
	params.Seed = params.resolveSeed()
	att, _ := generateObfuscation(nil, g, sigma, params)
	return att
}

// generateObfuscation runs Algorithm 2 with a pre-resolved params.Seed.
// Cancelling ctx abandons the whole probe (used by Obfuscate to discard
// speculative σ candidates and to propagate caller cancellation); a nil
// ctx never cancels. The second return value reports how many trials
// the probe examines — always t, since best-of-t selection must look at
// every trial — the work measure behind Result.Trials.
func generateObfuscation(ctx context.Context, g *graph.Graph, sigma float64, params Params) (Attempt, int) {
	n := g.NumVertices()
	values := params.Property.Values(g)
	dist := params.Property.Distance

	// Line 1: σ-uniqueness of every vertex (θ = σ, Section 5.2).
	uniq := UniquenessScores(values, dist, sigma)

	// Line 2: exclude the ⌈ε/2·n⌉ most unique vertices from perturbation.
	hSize := int(math.Ceil(params.Eps / 2 * float64(n)))
	if params.DisableHExclusion {
		hSize = 0
	}
	inH := topUniqueSet(uniq, hSize)

	// Line 3: sampling distribution Q(v) ∝ U_σ(P(v)) on V \ H.
	weights := make([]float64, n)
	for v, u := range uniq {
		if !inH[v] {
			weights[v] = u
		}
	}
	aliasQ := randx.NewAlias(weights)

	failed := Attempt{EpsTilde: math.Inf(1)}
	if aliasQ == nil {
		// All mass excluded (tiny graphs with large ε) — cannot sample.
		return failed, params.Trials
	}

	degrees := g.Degrees()
	targetEC := int(math.Round(params.C * float64(g.NumEdges())))
	if max := n * (n - 1) / 2; targetEC > max {
		targetEC = max
	}

	// Split the worker budget between the two parallel levels: up to
	// trialWorkers trials in flight, each scanning with scanWorkers, so
	// one probe stays within ~params.Workers busy goroutines. (Obfuscate
	// may hold a few speculative probes in flight on top — see Params.)
	workers := params.workerCount()
	trialWorkers := workers
	if trialWorkers > params.Trials {
		trialWorkers = params.Trials
	}
	scanWorkers := workers / trialWorkers
	if scanWorkers < 1 {
		scanWorkers = 1
	}

	// runTrial is a pure function of its trial index: all randomness
	// comes from the (seed, σ, trial) stream, so results are independent
	// of scheduling. It bails out between stages — and per scan chunk —
	// when the probe was cancelled.
	runTrial := func(trial int) Attempt {
		if cancelled(ctx) {
			return failed
		}
		rng := trialRng(params.Seed, sigma, trial)
		ec, ok := selectCandidates(g, aliasQ, inH, targetEC, rng)
		if !ok {
			return failed
		}
		pairs := assignProbabilities(ec, uniq, sigma, params, rng)
		ug, err := uncertain.New(n, pairs)
		if err != nil {
			// Candidate construction guarantees validity; a failure here
			// is a programming error worth surfacing loudly.
			panic(err)
		}
		if cancelled(ctx) {
			return failed
		}
		// Line 20: fraction of vertices not k-obfuscated.
		model := adversary.UncertainModel{
			G:              ug,
			ExactThreshold: params.ExactThreshold,
			Workers:        scanWorkers,
			Ctx:            ctx,
		}
		epsPrime := adversary.NotObfuscatedFraction(model, degrees, params.K)
		if cancelled(ctx) {
			// The scan aborted early; its ε' is not the pure probe value.
			return failed
		}
		// Line 21: the trial succeeds when ε' stays within the budget.
		if epsPrime <= params.Eps {
			return Attempt{EpsTilde: epsPrime, G: ug}
		}
		return failed
	}

	// Deterministic winner under any completion order: the success with
	// the lowest ε̃, ties broken by the lower trial index — the attempt
	// the sequential best-of-t loop (strict `<` against the running
	// best) keeps. Folding into a running best as trials finish, rather
	// than collecting all t attempts, lets loser graphs (each ~c·|E|
	// pairs) be reclaimed while later trials still run.
	win := winner{att: failed, idx: params.Trials}
	_ = parallel.ForCtx(ctx, params.Trials, trialWorkers, func(i int) {
		win.offer(runTrial(i), i)
	})
	return win.att, params.Trials
}

// winner folds trial outcomes into the deterministic best-of-t choice:
// lexicographic minimum of (ε̃, trial index) over the successes.
type winner struct {
	mu  sync.Mutex
	att Attempt
	idx int
}

func (w *winner) offer(att Attempt, trial int) {
	if att.Failed() {
		return
	}
	w.mu.Lock()
	if att.EpsTilde < w.att.EpsTilde ||
		(att.EpsTilde == w.att.EpsTilde && trial < w.idx) {
		w.att, w.idx = att, trial
	}
	w.mu.Unlock()
}

// cancelled reports whether the probe's context has been cancelled; a
// nil context never is.
func cancelled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// candidate is one pair of E_C, flagged by whether it is an original edge.
type candidate struct {
	u, v   int32
	isEdge bool
}

// selectCandidates implements lines 6-12 of Algorithm 2: E_C starts as E;
// pairs drawn from Q×Q are removed from E_C when they are original edges
// and added when they are non-edges, until |E_C| = target.
func selectCandidates(g *graph.Graph, aliasQ *randx.Alias, inH map[int]bool, target int, rng *rand.Rand) ([]candidate, bool) {
	n := g.NumVertices()
	ec := make([]candidate, 0, target+16)
	index := make(map[int64]int32, target+16)
	g.ForEachEdge(func(u, v int) {
		index[graph.PairKey(u, v, n)] = int32(len(ec))
		ec = append(ec, candidate{u: int32(u), v: int32(v), isEdge: true})
	})
	// Give up after a generous number of draws; with c a small constant
	// and |E| << |V2| the loop normally ends after ~(c-1)|E| additions.
	maxDraws := 400*(target+16) + 4096
	for draws := 0; len(ec) != target; draws++ {
		if draws > maxDraws {
			return nil, false
		}
		u := aliasQ.Draw(rng)
		v := aliasQ.Draw(rng)
		if u == v || inH[u] || inH[v] {
			continue
		}
		key := graph.PairKey(u, v, n)
		if g.HasEdge(u, v) {
			// Line 10: remove the original edge from E_C if still there.
			if pos, ok := index[key]; ok {
				last := int32(len(ec) - 1)
				moved := ec[last]
				ec[pos] = moved
				index[graph.PairKey(int(moved.u), int(moved.v), n)] = pos
				ec = ec[:last]
				delete(index, key)
			}
		} else {
			// Line 11: add the non-edge if new.
			if _, ok := index[key]; !ok {
				index[key] = int32(len(ec))
				uu, vv := u, v
				if uu > vv {
					uu, vv = vv, uu
				}
				ec = append(ec, candidate{u: int32(uu), v: int32(vv), isEdge: false})
			}
		}
	}
	return ec, true
}

// assignProbabilities implements lines 13-19: redistribute σ over E_C in
// proportion to pair uniqueness (Eq. 7), draw perturbations r_e from
// R_σ(e) (or uniformly, for the q white-noise fraction), and convert
// them to edge probabilities. rng is the calling trial's private stream.
func assignProbabilities(ec []candidate, uniq []float64, sigma float64, params Params, rng *rand.Rand) []uncertain.Pair {
	// U_σ(e) = (U_σ(P(u)) + U_σ(P(v))) / 2; Eq. 7 scales so the mean of
	// σ(e) over E_C equals σ.
	pairUniq := make([]float64, len(ec))
	var total float64
	for i, c := range ec {
		pairUniq[i] = (uniq[c.u] + uniq[c.v]) / 2
		total += pairUniq[i]
	}
	pairs := make([]uncertain.Pair, len(ec))
	for i, c := range ec {
		sigmaE := 0.0
		if total > 0 {
			sigmaE = sigma * float64(len(ec)) * pairUniq[i] / total
		}
		var re float64
		if params.Q > 0 && rng.Float64() < params.Q {
			re = rng.Float64()
		} else {
			re = mathx.NewTruncNormal(sigmaE).Sample(rng)
		}
		p := re
		if c.isEdge {
			p = 1 - re
		}
		pairs[i] = uncertain.Pair{U: int(c.u), V: int(c.v), P: p}
	}
	return pairs
}

// topUniqueSet returns the indices of the count largest uniqueness
// scores (ties broken by lower index, making runs reproducible).
func topUniqueSet(uniq []float64, count int) map[int]bool {
	set := make(map[int]bool, count)
	if count <= 0 {
		return set
	}
	if count > len(uniq) {
		count = len(uniq)
	}
	idx := make([]int, len(uniq))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if uniq[idx[a]] != uniq[idx[b]] {
			return uniq[idx[a]] > uniq[idx[b]]
		}
		return idx[a] < idx[b]
	})
	for _, v := range idx[:count] {
		set[v] = true
	}
	return set
}
