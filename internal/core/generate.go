package core

import (
	"math"
	"math/rand"
	"sort"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/mathx"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/uncertain"
)

// Params collects the inputs of Algorithms 1 and 2 with the paper's
// experimental defaults.
type Params struct {
	// K is the obfuscation level k >= 1 (paper uses 20, 60, 100).
	K float64
	// Eps is the tolerated fraction of non-obfuscated vertices
	// (paper uses 1e-3 and 1e-4).
	Eps float64
	// C is the candidate-set multiplier: |E_C| = C*|E| (zero selects
	// the paper's 2; their fallback cases use 3). Values below 1 are
	// raised to 1.
	C float64
	// Q is the white-noise fraction: each candidate pair draws its
	// perturbation uniformly from [0,1] with this probability
	// (paper: 0.01).
	Q float64
	// Trials is the number t of attempts per GenerateObfuscation call
	// (paper: 5). Zero selects 5.
	Trials int
	// Delta terminates the binary search once the σ interval is shorter
	// than this (zero selects 1e-8, matching the resolution implied by
	// the paper's reported σ values).
	Delta float64
	// SigmaInit is the initial upper bound of the search (zero selects
	// the paper's 1).
	SigmaInit float64
	// MaxSigma aborts the doubling phase when σ_u exceeds it (zero
	// selects 1024).
	MaxSigma float64
	// ExactThreshold is the incident-pair count up to which the degree
	// distribution is computed by the exact DP (<= 0 selects
	// pbinom.DefaultExactThreshold).
	ExactThreshold int
	// Property scores vertex uniqueness; nil selects DegreeProperty.
	Property Property
	// DisableHExclusion skips line 2 of Algorithm 2 (the removal of the
	// ⌈ε/2·n⌉ most unique vertices from the perturbation): an ablation
	// knob showing why spending noise on hopeless hubs wastes the
	// budget. Off (false) reproduces the paper.
	DisableHExclusion bool
	// Rng drives every random choice; nil selects a fixed-seed source so
	// runs are reproducible by default.
	Rng *rand.Rand
}

func (p Params) withDefaults() Params {
	if p.C == 0 {
		p.C = 2
	}
	if p.C < 1 {
		p.C = 1
	}
	if p.Trials <= 0 {
		p.Trials = 5
	}
	if p.Delta <= 0 {
		p.Delta = 1e-8
	}
	if p.SigmaInit <= 0 {
		p.SigmaInit = 1
	}
	if p.MaxSigma <= 0 {
		p.MaxSigma = 1024
	}
	if p.Property == nil {
		p.Property = DegreeProperty{}
	}
	if p.Rng == nil {
		p.Rng = randx.New(1)
	}
	return p
}

// Attempt is the outcome of one GenerateObfuscation call.
type Attempt struct {
	// EpsTilde is the achieved fraction of non-k-obfuscated vertices;
	// math.Inf(1) when no trial met the ε bound.
	EpsTilde float64
	// G is the best uncertain graph found, nil on failure.
	G *uncertain.Graph
}

// Failed reports whether the attempt found no (k, ε)-obfuscation.
func (a Attempt) Failed() bool { return math.IsInf(a.EpsTilde, 1) }

// GenerateObfuscation is Algorithm 2: it tries (up to t times) to build
// a (k, ε)-obfuscation of g with uncertainty parameter sigma, returning
// the best attempt.
func GenerateObfuscation(g *graph.Graph, sigma float64, params Params) Attempt {
	params = params.withDefaults()
	n := g.NumVertices()
	values := params.Property.Values(g)
	dist := params.Property.Distance

	// Line 1: σ-uniqueness of every vertex (θ = σ, Section 5.2).
	uniq := UniquenessScores(values, dist, sigma)

	// Line 2: exclude the ⌈ε/2·n⌉ most unique vertices from perturbation.
	hSize := int(math.Ceil(params.Eps / 2 * float64(n)))
	if params.DisableHExclusion {
		hSize = 0
	}
	inH := topUniqueSet(uniq, hSize)

	// Line 3: sampling distribution Q(v) ∝ U_σ(P(v)) on V \ H.
	weights := make([]float64, n)
	for v, u := range uniq {
		if !inH[v] {
			weights[v] = u
		}
	}
	aliasQ := randx.NewAlias(weights)

	best := Attempt{EpsTilde: math.Inf(1)}
	if aliasQ == nil {
		// All mass excluded (tiny graphs with large ε) — cannot sample.
		return best
	}

	degrees := g.Degrees()
	targetEC := int(math.Round(params.C * float64(g.NumEdges())))
	if max := n * (n - 1) / 2; targetEC > max {
		targetEC = max
	}

	for trial := 0; trial < params.Trials; trial++ {
		ec, ok := selectCandidates(g, aliasQ, inH, targetEC, params.Rng)
		if !ok {
			continue
		}
		pairs := assignProbabilities(ec, values, uniq, sigma, params, g)
		ug, err := uncertain.New(n, pairs)
		if err != nil {
			// Candidate construction guarantees validity; a failure here
			// is a programming error worth surfacing loudly.
			panic(err)
		}
		// Line 20: fraction of vertices not k-obfuscated.
		model := adversary.UncertainModel{G: ug, ExactThreshold: params.ExactThreshold}
		epsPrime := adversary.NotObfuscatedFraction(model, degrees, params.K)
		// Line 21.
		if epsPrime <= params.Eps && epsPrime < best.EpsTilde {
			best = Attempt{EpsTilde: epsPrime, G: ug}
		}
	}
	return best
}

// candidate is one pair of E_C, flagged by whether it is an original edge.
type candidate struct {
	u, v   int32
	isEdge bool
}

// selectCandidates implements lines 6-12 of Algorithm 2: E_C starts as E;
// pairs drawn from Q×Q are removed from E_C when they are original edges
// and added when they are non-edges, until |E_C| = target.
func selectCandidates(g *graph.Graph, aliasQ *randx.Alias, inH map[int]bool, target int, rng *rand.Rand) ([]candidate, bool) {
	n := g.NumVertices()
	ec := make([]candidate, 0, target+16)
	index := make(map[int64]int32, target+16)
	g.ForEachEdge(func(u, v int) {
		index[graph.PairKey(u, v, n)] = int32(len(ec))
		ec = append(ec, candidate{u: int32(u), v: int32(v), isEdge: true})
	})
	// Give up after a generous number of draws; with c a small constant
	// and |E| << |V2| the loop normally ends after ~(c-1)|E| additions.
	maxDraws := 400*(target+16) + 4096
	for draws := 0; len(ec) != target; draws++ {
		if draws > maxDraws {
			return nil, false
		}
		u := aliasQ.Draw(rng)
		v := aliasQ.Draw(rng)
		if u == v || inH[u] || inH[v] {
			continue
		}
		key := graph.PairKey(u, v, n)
		if g.HasEdge(u, v) {
			// Line 10: remove the original edge from E_C if still there.
			if pos, ok := index[key]; ok {
				last := int32(len(ec) - 1)
				moved := ec[last]
				ec[pos] = moved
				index[graph.PairKey(int(moved.u), int(moved.v), n)] = pos
				ec = ec[:last]
				delete(index, key)
			}
		} else {
			// Line 11: add the non-edge if new.
			if _, ok := index[key]; !ok {
				index[key] = int32(len(ec))
				uu, vv := u, v
				if uu > vv {
					uu, vv = vv, uu
				}
				ec = append(ec, candidate{u: int32(uu), v: int32(vv), isEdge: false})
			}
		}
	}
	return ec, true
}

// assignProbabilities implements lines 13-19: redistribute σ over E_C in
// proportion to pair uniqueness (Eq. 7), draw perturbations r_e from
// R_σ(e) (or uniformly, for the q white-noise fraction), and convert
// them to edge probabilities.
func assignProbabilities(ec []candidate, values []int, uniq []float64, sigma float64, params Params, g *graph.Graph) []uncertain.Pair {
	// U_σ(e) = (U_σ(P(u)) + U_σ(P(v))) / 2; Eq. 7 scales so the mean of
	// σ(e) over E_C equals σ.
	pairUniq := make([]float64, len(ec))
	var total float64
	for i, c := range ec {
		pairUniq[i] = (uniq[c.u] + uniq[c.v]) / 2
		total += pairUniq[i]
	}
	pairs := make([]uncertain.Pair, len(ec))
	for i, c := range ec {
		sigmaE := 0.0
		if total > 0 {
			sigmaE = sigma * float64(len(ec)) * pairUniq[i] / total
		}
		var re float64
		if params.Q > 0 && params.Rng.Float64() < params.Q {
			re = params.Rng.Float64()
		} else {
			re = mathx.NewTruncNormal(sigmaE).Sample(params.Rng)
		}
		p := re
		if c.isEdge {
			p = 1 - re
		}
		pairs[i] = uncertain.Pair{U: int(c.u), V: int(c.v), P: p}
	}
	return pairs
}

// topUniqueSet returns the indices of the count largest uniqueness
// scores (ties broken by lower index, making runs reproducible).
func topUniqueSet(uniq []float64, count int) map[int]bool {
	set := make(map[int]bool, count)
	if count <= 0 {
		return set
	}
	if count > len(uniq) {
		count = len(uniq)
	}
	idx := make([]int, len(uniq))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if uniq[idx[a]] != uniq[idx[b]] {
			return uniq[idx[a]] > uniq[idx[b]]
		}
		return idx[a] < idx[b]
	})
	for _, v := range idx[:count] {
		set[v] = true
	}
	return set
}
