package core

import (
	"context"
	"testing"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

func TestP2InterningAndDistance(t *testing.T) {
	// Path 0-1-2-3: end vertices share the signature (1; [2]); middle
	// vertices share (2; [2,1]).
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	p := NewNeighborhoodDegreeProperty()
	vals := p.Values(g)
	if vals[0] != vals[3] {
		t.Error("symmetric end vertices must share a P2 value")
	}
	if vals[1] != vals[2] {
		t.Error("symmetric middle vertices must share a P2 value")
	}
	if vals[0] == vals[1] {
		t.Error("ends and middles must differ under P2")
	}
	if p.Distance(vals[0], vals[0]) != 0 {
		t.Error("identical values have distance 0")
	}
	// (1;[2]) vs (2;[2,1]): padded L1 = |1-2| + |2-2| + |0-1| = 2.
	if d := p.Distance(vals[0], vals[1]); d != 2 {
		t.Errorf("distance = %v, want 2", d)
	}
}

func TestP2RefinesDegreeProperty(t *testing.T) {
	// Star + pendant: vertices 1..4 all have degree 1 (identical under
	// P1), but vertex 5 hangs off a degree-1 neighbor... build: hub 0
	// with leaves 1,2,3; path 4-5.
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 4, V: 5}})
	p1vals := DegreeProperty{}.Values(g)
	if p1vals[1] != p1vals[4] {
		t.Fatal("setup: both should have degree 1")
	}
	p2 := NewNeighborhoodDegreeProperty()
	p2vals := p2.Values(g)
	if p2vals[1] == p2vals[4] {
		t.Error("P2 must distinguish a star leaf from a path end")
	}
	if p2vals[1] != p2vals[2] || p2vals[2] != p2vals[3] {
		t.Error("star leaves share P2 value")
	}
}

func TestP2UniquenessHubsMoreUnique(t *testing.T) {
	g := testGraph(21, 300)
	p := NewNeighborhoodDegreeProperty()
	vals := p.Values(g)
	uniq := UniquenessScores(vals, p.Distance, 1.0)
	// The max-degree hub must be among the most unique vertices.
	hub, maxDeg := 0, -1
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(v) > maxDeg {
			maxDeg, hub = g.Degree(v), v
		}
	}
	above := 0
	for _, u := range uniq {
		if u > uniq[hub] {
			above++
		}
	}
	if above > g.NumVertices()/10 {
		t.Errorf("hub uniqueness rank too low: %d vertices above it", above)
	}
}

func TestObfuscateWithP2Property(t *testing.T) {
	// End-to-end: P2 drives uniqueness, degree drives verification.
	g := testGraph(22, 250)
	res, err := Obfuscate(context.Background(), g, Params{
		K: 5, Eps: 0.12, Trials: 2, Delta: 1e-3,
		Property: NewNeighborhoodDegreeProperty(),
		Rng:      randx.New(23),
	})
	if err != nil {
		t.Fatal(err)
	}
	model := adversary.UncertainModel{G: res.G}
	if !adversary.IsKEpsObfuscation(model, g.Degrees(), 5, 0.12) {
		t.Error("P2-scored obfuscation fails degree verification")
	}
}
