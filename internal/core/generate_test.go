package core

import (
	"math"
	"testing"

	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

func TestSelectCandidatesExactTarget(t *testing.T) {
	g := testGraph(31, 200)
	values := DegreeProperty{}.Values(g)
	uniq := UniquenessScores(values, DegreeProperty{}.Distance, 0.5)
	alias := randx.NewAlias(uniq)
	if alias == nil {
		t.Fatal("alias construction failed")
	}
	for _, target := range []int{g.NumEdges(), 2 * g.NumEdges(), 3 * g.NumEdges()} {
		ec, ok := selectCandidates(g, alias, map[int]bool{}, target, randx.New(32))
		if !ok {
			t.Fatalf("selection failed for target %d", target)
		}
		if len(ec) != target {
			t.Errorf("|E_C| = %d, want %d", len(ec), target)
		}
		// No duplicates and flags must match the graph.
		seen := map[int64]bool{}
		for _, c := range ec {
			key := graph.PairKey(int(c.u), int(c.v), g.NumVertices())
			if seen[key] {
				t.Fatal("duplicate candidate")
			}
			seen[key] = true
			if c.isEdge != g.HasEdge(int(c.u), int(c.v)) {
				t.Fatal("isEdge flag wrong")
			}
		}
	}
}

func TestGenerateObfuscationAllWhiteNoise(t *testing.T) {
	// q=1: every perturbation is uniform; probabilities stay valid and
	// heavy noise is injected.
	g := testGraph(33, 150)
	att := GenerateObfuscation(g, 0.01, Params{K: 2, Eps: 0.5, Q: 1, Trials: 1, Rng: randx.New(34)})
	if att.Failed() {
		t.Skip("all-white-noise attempt can miss a strict target; not the point here")
	}
	var sum float64
	for _, pr := range att.G.Pairs() {
		if pr.P < 0 || pr.P > 1 {
			t.Fatalf("invalid probability %v", pr.P)
		}
		sum += pr.P
	}
	// Uniform perturbations mean the expected edge probability over
	// original edges is ~0.5, far below the low-sigma regime.
	avg := sum / float64(att.G.NumPairs())
	if avg > 0.6 || avg < 0.2 {
		t.Errorf("average probability %v, want ~0.4 under pure white noise", avg)
	}
}

func TestGenerateObfuscationCompleteGraphClampsTarget(t *testing.T) {
	// On (nearly) complete graphs, c|E| exceeds C(n,2); the target must
	// clamp instead of looping forever.
	g := gen.ErdosRenyiGNP(randx.New(35), 14, 1)
	att := GenerateObfuscation(g, 0.3, Params{K: 2, Eps: 0.4, C: 3, Trials: 1, Rng: randx.New(36)})
	if att.Failed() {
		t.Skip("tiny complete graph may not be obfuscatable; the loop-termination is what matters")
	}
	if att.G.NumPairs() > 14*13/2 {
		t.Fatalf("|E_C| = %d exceeds pair count", att.G.NumPairs())
	}
}

func TestGenerateObfuscationZeroEps(t *testing.T) {
	// eps = 0: H is empty and every vertex must be obfuscated. On a
	// graph of clones that is satisfiable even at low k.
	b := graph.NewBuilder(40)
	for i := 0; i < 40; i += 2 {
		b.AddEdge(i, i+1)
	}
	g := b.Build() // perfect matching: all degrees 1
	att := GenerateObfuscation(g, 0.2, Params{K: 4, Eps: 0, Trials: 2, Rng: randx.New(37)})
	if att.Failed() {
		t.Fatal("matching graph should obfuscate at k=4 eps=0")
	}
	if att.EpsTilde != 0 {
		t.Errorf("EpsTilde = %v, want 0", att.EpsTilde)
	}
}

func TestWithDefaultsPaperValues(t *testing.T) {
	p := Params{}.withDefaults()
	if p.C != 2 || p.Trials != 5 || p.Delta != 1e-8 || p.SigmaInit != 1 {
		t.Errorf("defaults = %+v", p)
	}
	if p.Property == nil {
		t.Error("nil property not defaulted")
	}
	if got := p.resolveSeed(); got != 1 {
		t.Errorf("zero-value params resolve seed %d, want the historical 1", got)
	}
	if got := (Params{Seed: 7}).resolveSeed(); got != 7 {
		t.Errorf("explicit seed resolves to %d, want 7", got)
	}
	// The legacy Rng field still pins the run: same Rng seed, same resolved seed.
	a := Params{Rng: randx.New(5)}.resolveSeed()
	b := Params{Rng: randx.New(5)}.resolveSeed()
	if a != b || a == 1 {
		t.Errorf("legacy Rng seeds resolve to %d/%d, want equal and non-default", a, b)
	}
	// Explicit sub-1 C clamps to 1, not to the default.
	if got := (Params{C: 0.5}).withDefaults().C; got != 1 {
		t.Errorf("C=0.5 clamps to %v, want 1", got)
	}
}

func TestAttemptFailed(t *testing.T) {
	if !(Attempt{EpsTilde: math.Inf(1)}).Failed() {
		t.Error("infinite EpsTilde should mean failure")
	}
	if (Attempt{EpsTilde: 0.01}).Failed() {
		t.Error("finite EpsTilde is success")
	}
}
