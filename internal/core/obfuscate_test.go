package core

import (
	"context"
	"math"
	"testing"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

// testGraph returns a small power-law-ish graph that is cheap to
// obfuscate in tests.
func testGraph(seed int64, n int) *graph.Graph {
	return gen.HolmeKim(randx.New(seed), n, 3, 0.3)
}

func TestGenerateObfuscationCandidateSetSize(t *testing.T) {
	g := testGraph(1, 300)
	params := Params{K: 5, Eps: 0.05, C: 2, Q: 0.01, Trials: 1, Rng: randx.New(2)}
	att := GenerateObfuscation(g, 0.5, params)
	if att.Failed() {
		t.Fatal("expected success at sigma=0.5")
	}
	want := int(math.Round(2 * float64(g.NumEdges())))
	if got := att.G.NumPairs(); got != want {
		t.Errorf("|E_C| = %d, want %d", got, want)
	}
}

func TestGenerateObfuscationProbabilitiesValid(t *testing.T) {
	g := testGraph(3, 200)
	params := Params{K: 4, Eps: 0.05, C: 2, Q: 0.05, Trials: 1, Rng: randx.New(4)}
	att := GenerateObfuscation(g, 0.3, params)
	if att.Failed() {
		t.Fatal("expected success")
	}
	nEdgesKept := 0
	for _, pr := range att.G.Pairs() {
		if pr.P < 0 || pr.P > 1 {
			t.Fatalf("probability %v outside [0,1]", pr.P)
		}
		if g.HasEdge(pr.U, pr.V) {
			nEdgesKept++
		}
	}
	// E_C starts as E; with c=2 and few removals, nearly all original
	// edges remain candidates.
	if float64(nEdgesKept) < 0.8*float64(g.NumEdges()) {
		t.Errorf("only %d/%d original edges in E_C", nEdgesKept, g.NumEdges())
	}
}

func TestGenerateObfuscationEdgeProbsSkewHigh(t *testing.T) {
	// With small sigma, original edges should keep p close to 1 and
	// added pairs close to 0 (modulo the q white-noise fraction).
	g := testGraph(5, 300)
	params := Params{K: 2, Eps: 0.2, C: 2, Q: 0.01, Trials: 1, Rng: randx.New(6)}
	att := GenerateObfuscation(g, 0.05, params)
	if att.Failed() {
		t.Fatal("expected success")
	}
	var edgeP, nonEdgeP float64
	var edges, nonEdges int
	for _, pr := range att.G.Pairs() {
		if g.HasEdge(pr.U, pr.V) {
			edgeP += pr.P
			edges++
		} else {
			nonEdgeP += pr.P
			nonEdges++
		}
	}
	if edges == 0 || nonEdges == 0 {
		t.Fatal("expected both edges and non-edges in E_C")
	}
	if avg := edgeP / float64(edges); avg < 0.9 {
		t.Errorf("average p over original edges = %v, want > 0.9", avg)
	}
	if avg := nonEdgeP / float64(nonEdges); avg > 0.1 {
		t.Errorf("average p over added pairs = %v, want < 0.1", avg)
	}
}

func TestObfuscateSatisfiesIndependentVerifier(t *testing.T) {
	// On a 400-vertex graph the structurally unobfuscatable hub tail is
	// a few percent of vertices (in the paper's million-vertex graphs
	// the same tail is ~1e-4 of n), so eps must be sized accordingly.
	g := testGraph(7, 400)
	params := Params{K: 10, Eps: 0.08, C: 2, Q: 0.01, Trials: 3, Delta: 1e-4, Rng: randx.New(8)}
	res, err := Obfuscate(context.Background(), g, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpsTilde > params.Eps {
		t.Errorf("EpsTilde = %v > eps = %v", res.EpsTilde, params.Eps)
	}
	// Re-verify with the adversary model, independently of the
	// algorithm's own bookkeeping.
	model := adversary.UncertainModel{G: res.G}
	if !adversary.IsKEpsObfuscation(model, g.Degrees(), params.K, params.Eps) {
		t.Error("returned graph fails independent (k,eps) verification")
	}
	if res.Sigma <= 0 || res.Sigma > 1 {
		t.Errorf("sigma = %v outside (0, 1]", res.Sigma)
	}
	if res.Generations == 0 || res.Trials < res.Generations {
		t.Errorf("bookkeeping: generations=%d trials=%d", res.Generations, res.Trials)
	}
}

func TestObfuscateHarderRequirementNeedsMoreNoise(t *testing.T) {
	// Larger k (or smaller eps) must not yield smaller sigma, the trend
	// of paper Table 2. Randomness can blur single comparisons, so
	// compare a low and a high requirement far apart.
	g := testGraph(9, 400)
	easy, err := Obfuscate(context.Background(), g, Params{K: 3, Eps: 0.1, C: 2, Q: 0.01, Trials: 2, Delta: 1e-4, Rng: randx.New(10)})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Obfuscate(context.Background(), g, Params{K: 40, Eps: 0.1, C: 2, Q: 0.01, Trials: 2, Delta: 1e-4, Rng: randx.New(10)})
	if err != nil {
		t.Fatal(err)
	}
	if hard.Sigma < easy.Sigma {
		t.Errorf("sigma(k=40) = %v < sigma(k=3) = %v", hard.Sigma, easy.Sigma)
	}
}

func TestObfuscateParamValidation(t *testing.T) {
	g := testGraph(11, 50)
	if _, err := Obfuscate(context.Background(), g, Params{K: 0.5, Eps: 0.1}); err == nil {
		t.Error("k < 1 should error")
	}
	if _, err := Obfuscate(context.Background(), g, Params{K: 2, Eps: 1.5}); err == nil {
		t.Error("eps >= 1 should error")
	}
	empty := graph.NewBuilder(10).Build()
	if _, err := Obfuscate(context.Background(), empty, Params{K: 2, Eps: 0.1}); err == nil {
		t.Error("empty graph should error")
	}
}

func TestObfuscateImpossibleRequirementFails(t *testing.T) {
	// k larger than the vertex count is unattainable: H(Y) <= log2(n).
	g := testGraph(12, 60)
	_, err := Obfuscate(context.Background(), g, Params{K: 1000, Eps: 0, C: 2, Trials: 1, Delta: 1e-2, MaxSigma: 8, Rng: randx.New(13)})
	if err == nil {
		t.Fatal("expected ErrNoObfuscation")
	}
}

func TestObfuscateDeterministicForSeed(t *testing.T) {
	g := testGraph(14, 200)
	run := func() *Result {
		res, err := Obfuscate(context.Background(), g, Params{K: 5, Eps: 0.02, C: 2, Q: 0.01, Trials: 2, Delta: 1e-3, Rng: randx.New(99)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Sigma != b.Sigma || a.EpsTilde != b.EpsTilde || a.G.NumPairs() != b.G.NumPairs() {
		t.Error("same seed must reproduce the same result")
	}
}

func TestTopUniqueSet(t *testing.T) {
	uniq := []float64{0.1, 5, 3, 5, 0.2}
	set := topUniqueSet(uniq, 2)
	if !set[1] || !set[3] || len(set) != 2 {
		t.Errorf("top-2 = %v, want {1,3}", set)
	}
	if len(topUniqueSet(uniq, 0)) != 0 {
		t.Error("count 0 should give empty set")
	}
	if len(topUniqueSet(uniq, 10)) != 5 {
		t.Error("count > len should cap")
	}
}

func TestHExclusionRespected(t *testing.T) {
	// Pairs incident to H vertices must not be touched: all candidate
	// pairs added beyond E avoid H, and original edges incident to H
	// stay in E_C with their perturbation drawn as usual. We verify the
	// weaker, directly-specified property: no *added* pair touches H.
	g := testGraph(15, 300)
	values := DegreeProperty{}.Values(g)
	params := Params{K: 5, Eps: 0.2, C: 2, Q: 0.01, Trials: 1, Rng: randx.New(16)}
	sigma := 0.3
	uniq := UniquenessScores(values, DegreeProperty{}.Distance, sigma)
	hSize := int(math.Ceil(params.Eps / 2 * float64(g.NumVertices())))
	inH := topUniqueSet(uniq, hSize)
	att := GenerateObfuscation(g, sigma, params)
	if att.Failed() {
		t.Fatal("expected success")
	}
	for _, pr := range att.G.Pairs() {
		if !g.HasEdge(pr.U, pr.V) && (inH[pr.U] || inH[pr.V]) {
			t.Fatalf("added pair (%d,%d) touches excluded vertex", pr.U, pr.V)
		}
	}
}
