// Package core implements the paper's primary contribution: the
// (k, ε)-obfuscation algorithm of Section 5, which injects a minimal
// amount of edge uncertainty into a graph so that the published
// uncertain graph k-obfuscates all but an ε-fraction of vertices.
//
// Algorithm 1 (Obfuscate) binary-searches the noise parameter σ;
// Algorithm 2 (GenerateObfuscation) attempts one obfuscation at a given
// σ: it scores vertex uniqueness (Definition 3), excludes the hardest
// ⌈ε/2·n⌉ vertices, grows a candidate pair set E_C by
// uniqueness-weighted sampling, spreads the uncertainty budget over E_C
// in proportion to pair uniqueness (Eq. 7), draws perturbations from the
// truncated normal R_σ(e) (with a q-fraction of uniform white noise),
// and verifies the result with the adversary model.
package core

import "uncertaingraph/internal/graph"

// Property is a vertex property P: V -> Ω_P with a distance on Ω_P,
// used for uniqueness scoring (paper Definition 3). The paper evaluates
// the degree property (P1); richer properties (degrees of neighbors,
// radius-one subgraphs) can be plugged in for scoring, while the
// obfuscation *check* in this package is degree-based, as in the paper's
// experiments.
type Property interface {
	// Name identifies the property in logs and reports.
	Name() string
	// Values returns P(v) for every vertex of g.
	Values(g *graph.Graph) []int
	// Distance returns d(a, b) >= 0 between two property values.
	Distance(a, b int) float64
}

// DegreeProperty is the paper's property P1: P(v) = deg(v) with
// d(ω, ω') = |ω - ω'|.
type DegreeProperty struct{}

// Name implements Property.
func (DegreeProperty) Name() string { return "degree" }

// Values implements Property.
func (DegreeProperty) Values(g *graph.Graph) []int { return g.Degrees() }

// Distance implements Property.
func (DegreeProperty) Distance(a, b int) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}
