package core

import (
	"math"
	"math/rand"
	"runtime"

	"uncertaingraph/internal/randx"
)

// Params collects the inputs of Algorithms 1 and 2 with the paper's
// experimental defaults.
type Params struct {
	// K is the obfuscation level k >= 1 (paper uses 20, 60, 100).
	K float64
	// Eps is the tolerated fraction of non-obfuscated vertices
	// (paper uses 1e-3 and 1e-4).
	Eps float64
	// C is the candidate-set multiplier: |E_C| = C*|E| (zero selects
	// the paper's 2; their fallback cases use 3). Values below 1 are
	// raised to 1.
	C float64
	// Q is the white-noise fraction: each candidate pair draws its
	// perturbation uniformly from [0,1] with this probability
	// (paper: 0.01).
	Q float64
	// Trials is the number t of attempts per GenerateObfuscation call
	// (paper: 5). Zero selects 5.
	Trials int
	// Delta terminates the binary search once the σ interval is shorter
	// than this (zero selects 1e-8, matching the resolution implied by
	// the paper's reported σ values).
	Delta float64
	// SigmaInit is the initial upper bound of the search (zero selects
	// the paper's 1).
	SigmaInit float64
	// MaxSigma aborts the doubling phase when σ_u exceeds it (zero
	// selects 1024).
	MaxSigma float64
	// ExactThreshold is the incident-pair count up to which the degree
	// distribution is computed by the exact DP (<= 0 selects
	// pbinom.DefaultExactThreshold).
	ExactThreshold int
	// Property scores vertex uniqueness; nil selects DegreeProperty.
	Property Property
	// DisableHExclusion skips line 2 of Algorithm 2 (the removal of the
	// ⌈ε/2·n⌉ most unique vertices from the perturbation): an ablation
	// knob showing why spending noise on hopeless hubs wastes the
	// budget. Off (false) reproduces the paper.
	DisableHExclusion bool
	// Workers bounds one probe's concurrency: trials of one
	// GenerateObfuscation call run on up to Workers goroutines, the
	// adversary's vertex scan inside each trial gets the remaining
	// budget (Workers / concurrent trials), and Obfuscate additionally
	// holds up to three speculative σ probes in flight when Workers > 1
	// (so peak concurrency is a small multiple of Workers, not Workers
	// exactly). Zero selects GOMAXPROCS. The result is bit-identical for
	// every Workers value: each (σ, trial) pair owns a seed-derived RNG
	// stream and the winner is the best-ε̃ trial (ties to the lower
	// index), so Workers trades wall-clock time only.
	Workers int
	// Seed is the base seed from which every per-probe, per-trial RNG
	// stream is derived (randx.Derive). Zero falls back to Rng (drawn
	// once), then to 1.
	Seed int64
	// Rng is the legacy seed source: when Seed is zero and Rng is set,
	// one value is drawn from it to derive Seed, so pre-Workers callers
	// remain reproducible. The engine never shares Rng across trials —
	// per-trial streams are always derived from the resolved seed.
	//
	// Deprecated: set Seed (or use the facade's WithSeed option). Rng
	// exists for one release of compatibility with pre-Seed callers.
	Rng *rand.Rand
	// Progress, when non-nil, is invoked from the search goroutine after
	// each consumed σ probe with the number of probes consumed so far
	// and an estimated total (0 while the doubling phase has not yet
	// bounded the search). It must not block for long: the search waits
	// on it. Progress observation never affects results.
	Progress func(done, total int)
}

func (p Params) withDefaults() Params {
	if p.C == 0 {
		p.C = 2
	}
	if p.C < 1 {
		p.C = 1
	}
	if p.Trials <= 0 {
		p.Trials = 5
	}
	if p.Delta <= 0 {
		p.Delta = 1e-8
	}
	if p.SigmaInit <= 0 {
		p.SigmaInit = 1
	}
	if p.MaxSigma <= 0 {
		p.MaxSigma = 1024
	}
	if p.Property == nil {
		p.Property = DegreeProperty{}
	}
	return p
}

// workerCount resolves Workers to an effective positive worker count.
func (p Params) workerCount() int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// resolveSeed fixes the base seed for a run: an explicit Seed wins, then
// one draw from the legacy Rng, then the historical default of 1. It is
// called once per top-level entry so that every derived stream — and
// therefore every result — is a pure function of the resolved value.
func (p Params) resolveSeed() int64 {
	s := p.Seed
	if s == 0 && p.Rng != nil {
		s = p.Rng.Int63()
	}
	if s == 0 {
		s = 1
	}
	return s
}

// trialRng returns the RNG stream owned by one trial of one σ probe.
// Keying the derivation on the σ bits (rather than on probe visit order)
// makes every probe a pure function of (graph, σ, params): Obfuscate can
// then evaluate probes speculatively and out of order without changing
// any result.
func trialRng(seed int64, sigma float64, trial int) *rand.Rand {
	return randx.New(randx.Derive(seed, sigmaBits(sigma), uint64(trial)))
}

func sigmaBits(sigma float64) uint64 {
	// Normalize -0 so the derivation cannot split on a distinction the
	// search never makes.
	if sigma == 0 {
		sigma = 0
	}
	return math.Float64bits(sigma)
}
