package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/uncertain"
)

// Result is the output of Algorithm 1.
type Result struct {
	// G is the published (k, ε̃)-obfuscation.
	G *uncertain.Graph
	// Sigma is the smallest noise level at which an obfuscation was
	// found (the value reported in paper Table 2).
	Sigma float64
	// EpsTilde is the achieved non-obfuscated fraction (ε̃ <= ε).
	EpsTilde float64
	// Generations counts the GenerateObfuscation probes the sequential
	// search consumes, and Trials the inner attempts those probes
	// examine (t per probe — best-of-t selection looks at every trial) —
	// the work measure behind the paper's Table 3 throughput.
	// Speculative probes whose results are discarded are not counted,
	// so both numbers are identical for every Workers value.
	Generations int
	Trials      int
}

// ErrNoObfuscation is returned when the doubling phase exhausts MaxSigma
// without finding any (k, ε)-obfuscation; the paper's remedy is to raise
// the candidate multiplier c (their two (*) cases use c = 3).
var ErrNoObfuscation = errors.New("core: no (k,eps)-obfuscation found up to MaxSigma; consider increasing C")

// doublingLookahead is how many σ candidates beyond the current one the
// feasibility phase probes speculatively (2 extra = 3 in flight, the
// doubling phase rarely runs longer before succeeding).
const doublingLookahead = 2

// Obfuscate is Algorithm 1: it finds, by binary search over the noise
// parameter σ, a minimal-uncertainty (k, ε)-obfuscation of g.
//
// Every σ probe is a pure function of (g, σ, params.Seed): the per-trial
// RNG streams are derived from the σ bits, not from probe visit order.
// When params.Workers > 1 the search exploits that purity by probing
// speculatively — the next doubling candidates during the feasibility
// phase, and the two quartile midpoints alongside each binary-search
// midpoint — and cancels speculative probes the sequential search would
// never visit. The returned Result (σ, ε̃, published pairs, and both
// work counters) is bit-identical for every Workers value.
//
// Cancelling ctx aborts the search: in-flight probes observe the
// derived per-probe contexts at trial and scan-chunk granularity, every
// probe goroutine is joined, and ctx.Err() is returned. A nil ctx never
// cancels. Cancellation cannot perturb results — a run that completes
// returns exactly what an uncancelled run would have.
func Obfuscate(ctx context.Context, g *graph.Graph, params Params) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	params = params.withDefaults()
	if params.K < 1 {
		return nil, fmt.Errorf("core: k = %v must be >= 1", params.K)
	}
	if params.Eps < 0 || params.Eps >= 1 {
		return nil, fmt.Errorf("core: eps = %v must be in [0, 1)", params.Eps)
	}
	if g.NumEdges() == 0 {
		return nil, errors.New("core: graph has no edges to obfuscate")
	}
	params.Seed = params.resolveSeed()
	params.Rng = nil

	pr := newProber(ctx, g, params)
	speculate := params.workerCount() > 1

	res := &Result{EpsTilde: math.Inf(1)}
	fail := func(err error) (*Result, error) {
		pr.shutdown()
		return nil, err
	}
	consume := func(sigma float64, total int) (Attempt, error) {
		att, examined, err := pr.get(sigma)
		if err != nil {
			return Attempt{}, err
		}
		res.Generations++
		res.Trials += examined
		if params.Progress != nil {
			params.Progress(res.Generations, total)
		}
		return att, nil
	}

	// Doubling phase (lines 1-6): find a feasible upper bound σ_u. The
	// probe total is unknown until this phase bounds the search, so
	// Progress reports total 0 here.
	sigmaU := params.SigmaInit
	var found Attempt
	for {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		pr.ensure(sigmaU)
		if speculate {
			for i, s := 0, sigmaU*2; i < doublingLookahead && s <= params.MaxSigma; i, s = i+1, s*2 {
				pr.ensure(s)
			}
		}
		var err error
		found, err = consume(sigmaU, 0)
		if err != nil {
			return fail(err)
		}
		if !found.Failed() {
			// The binary search stays below σ_u: speculative probes at
			// larger σ are dead.
			pr.cancelAbove(sigmaU)
			break
		}
		sigmaU *= 2
		if sigmaU > params.MaxSigma {
			pr.shutdown()
			return nil, ErrNoObfuscation
		}
	}
	res.G, res.Sigma, res.EpsTilde = found.G, sigmaU, found.EpsTilde

	// Binary search (lines 8-12) on [0, σ_u], keeping the last success.
	sigmaL := 0.0
	for sigmaL+params.Delta < sigmaU {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		sigma := (sigmaL + sigmaU) / 2
		pr.ensure(sigma)
		// Speculate on the two quartiles: whichever way this midpoint
		// resolves, the next midpoint is one of them (guarded by the
		// same termination test the loop itself uses).
		lowQ, highQ := (sigmaL+sigma)/2, (sigma+sigmaU)/2
		if speculate {
			if sigmaL+params.Delta < sigma {
				pr.ensure(lowQ)
			}
			if sigma+params.Delta < sigmaU {
				pr.ensure(highQ)
			}
		}
		attempt, err := consume(sigma, res.Generations+binarySteps(sigmaU-sigmaL, params.Delta))
		if err != nil {
			return fail(err)
		}
		if attempt.Failed() {
			sigmaL = sigma
			pr.cancel(lowQ) // the search moved above σ; [σ_l, σ) is dead
		} else {
			sigmaU = sigma
			res.G, res.Sigma, res.EpsTilde = attempt.G, sigma, attempt.EpsTilde
			pr.cancel(highQ) // the search moved below σ; (σ, σ_u] is dead
		}
	}
	pr.shutdown()
	return res, nil
}

// binarySteps returns how many more midpoint probes the binary search
// consumes before an interval of the given width shrinks below delta —
// the remaining-work estimate behind Params.Progress totals.
func binarySteps(width, delta float64) int {
	steps := 0
	for width > delta && steps < 64 {
		width /= 2
		steps++
	}
	return steps
}

// probeTask is one in-flight or finished evaluation of a σ probe. Each
// task owns a context derived from the search's: cancelling it reaps
// the probe (speculation gone dead, or the whole search cancelled) at
// trial and scan-chunk granularity.
type probeTask struct {
	sigma    float64
	done     chan struct{}
	ctx      context.Context
	cancel   context.CancelFunc
	att      Attempt
	examined int
	// aborted records that the task observed its context cancelled and
	// bailed out early; its att is not the pure probe value and must
	// never be consumed.
	aborted bool
}

// prober evaluates σ probes asynchronously and memoizes them by σ value.
// Because probes are pure, a memoized result is exactly what re-running
// the probe would produce, so speculative evaluation cannot perturb the
// search path.
type prober struct {
	ctx    context.Context
	g      *graph.Graph
	params Params

	mu    sync.Mutex
	tasks map[float64]*probeTask
}

func newProber(ctx context.Context, g *graph.Graph, params Params) *prober {
	return &prober{ctx: ctx, g: g, params: params, tasks: make(map[float64]*probeTask)}
}

// ensure starts evaluating σ if no live task exists for it.
func (p *prober) ensure(sigma float64) *probeTask {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ensureLocked(sigma)
}

func (p *prober) ensureLocked(sigma float64) *probeTask {
	if t, ok := p.tasks[sigma]; ok {
		return t
	}
	taskCtx, cancel := context.WithCancel(p.ctx)
	t := &probeTask{
		sigma:  sigma,
		done:   make(chan struct{}),
		ctx:    taskCtx,
		cancel: cancel,
	}
	p.tasks[sigma] = t
	go func() {
		t.att, t.examined = generateObfuscation(taskCtx, p.g, sigma, p.params)
		t.aborted = taskCtx.Err() != nil
		close(t.done)
	}()
	return t
}

// get blocks until the probe at σ is available and returns its attempt
// and examined-trial count. A task cancelled before finishing is
// discarded and re-evaluated (purity makes the retry exact) unless the
// search context itself is done, in which case get returns its error;
// the re-evaluation path is defensive — the search only cancels probes
// it never revisits.
func (p *prober) get(sigma float64) (Attempt, int, error) {
	for {
		t := p.ensure(sigma)
		<-t.done
		if !t.aborted {
			t.cancel() // release the task's derived context
			return t.att, t.examined, nil
		}
		if err := p.ctx.Err(); err != nil {
			return Attempt{}, 0, err
		}
		p.mu.Lock()
		if p.tasks[sigma] == t {
			delete(p.tasks, sigma)
		}
		p.mu.Unlock()
	}
}

// cancel abandons the probe at σ, if one is in flight.
func (p *prober) cancel(sigma float64) {
	p.mu.Lock()
	t, ok := p.tasks[sigma]
	p.mu.Unlock()
	if ok {
		t.cancel()
	}
}

// cancelAbove abandons every probe with σ strictly greater than bound —
// used when the feasibility phase settles an upper bound (speculative
// doublings beyond it are dead).
func (p *prober) cancelAbove(bound float64) {
	p.mu.Lock()
	var doomed []*probeTask
	for s, t := range p.tasks {
		if s > bound {
			doomed = append(doomed, t)
		}
	}
	p.mu.Unlock()
	for _, t := range doomed {
		t.cancel()
	}
}

// shutdown cancels every remaining probe and joins their goroutines, so
// no speculative work is still reading the graph — or stealing cores
// from the caller's next run — after Obfuscate returns. Cancellation is
// observed between trial stages and per scan chunk, which bounds the
// wait; every task's derived context is released.
func (p *prober) shutdown() {
	p.mu.Lock()
	tasks := make([]*probeTask, 0, len(p.tasks))
	for _, t := range p.tasks {
		tasks = append(tasks, t)
	}
	p.mu.Unlock()
	for _, t := range tasks {
		t.cancel()
	}
	for _, t := range tasks {
		<-t.done
	}
}
