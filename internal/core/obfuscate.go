package core

import (
	"errors"
	"fmt"
	"math"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/uncertain"
)

// Result is the output of Algorithm 1.
type Result struct {
	// G is the published (k, ε̃)-obfuscation.
	G *uncertain.Graph
	// Sigma is the smallest noise level at which an obfuscation was
	// found (the value reported in paper Table 2).
	Sigma float64
	// EpsTilde is the achieved non-obfuscated fraction (ε̃ <= ε).
	EpsTilde float64
	// Generations counts GenerateObfuscation invocations, and Trials the
	// total number of inner attempts — the work measure behind the
	// paper's Table 3 throughput.
	Generations int
	Trials      int
}

// ErrNoObfuscation is returned when the doubling phase exhausts MaxSigma
// without finding any (k, ε)-obfuscation; the paper's remedy is to raise
// the candidate multiplier c (their two (*) cases use c = 3).
var ErrNoObfuscation = errors.New("core: no (k,eps)-obfuscation found up to MaxSigma; consider increasing C")

// Obfuscate is Algorithm 1: it finds, by binary search over the noise
// parameter σ, a minimal-uncertainty (k, ε)-obfuscation of g.
func Obfuscate(g *graph.Graph, params Params) (*Result, error) {
	params = params.withDefaults()
	if params.K < 1 {
		return nil, fmt.Errorf("core: k = %v must be >= 1", params.K)
	}
	if params.Eps < 0 || params.Eps >= 1 {
		return nil, fmt.Errorf("core: eps = %v must be in [0, 1)", params.Eps)
	}
	if g.NumEdges() == 0 {
		return nil, errors.New("core: graph has no edges to obfuscate")
	}

	res := &Result{EpsTilde: math.Inf(1)}
	run := func(sigma float64) Attempt {
		res.Generations++
		res.Trials += params.Trials
		return GenerateObfuscation(g, sigma, params)
	}

	// Doubling phase (lines 1-6): find a feasible upper bound σ_u.
	sigmaU := params.SigmaInit
	var found Attempt
	for {
		found = run(sigmaU)
		if !found.Failed() {
			break
		}
		sigmaU *= 2
		if sigmaU > params.MaxSigma {
			return nil, ErrNoObfuscation
		}
	}
	res.G, res.Sigma, res.EpsTilde = found.G, sigmaU, found.EpsTilde

	// Binary search (lines 8-12) on [0, σ_u], keeping the last success.
	sigmaL := 0.0
	for sigmaL+params.Delta < sigmaU {
		sigma := (sigmaL + sigmaU) / 2
		attempt := run(sigma)
		if attempt.Failed() {
			sigmaL = sigma
		} else {
			sigmaU = sigma
			res.G, res.Sigma, res.EpsTilde = attempt.G, sigma, attempt.EpsTilde
		}
	}
	return res, nil
}
