package core

import (
	"sort"

	"uncertaingraph/internal/graph"
)

// NeighborhoodDegreeProperty is the paper's P2: the adversary knows the
// degree of the target and the degrees of its neighbours (Thompson–Yao
// style knowledge, Section 3's property list). A vertex's value is the
// descending multiset (deg(v), deg(n_1), deg(n_2), ...).
//
// Values are interned into dense ids (the dictionary lives in the
// property instance), and Distance is the L1 distance between the
// zero-padded sorted degree vectors — the natural specialization of the
// paper's "edit distance between subgraphs" remark for P2. Values must
// be called before Distance, which is the order every caller in this
// package uses; a fresh instance should be used per graph.
//
// The (k, ε) *verification* in this package remains degree-based, as in
// the paper's experiments; P2 refines the uniqueness scores that decide
// where the uncertainty budget is spent.
type NeighborhoodDegreeProperty struct {
	dict [][]int
}

// NewNeighborhoodDegreeProperty returns an empty-dictionary P2 property.
func NewNeighborhoodDegreeProperty() *NeighborhoodDegreeProperty {
	return &NeighborhoodDegreeProperty{}
}

// Name implements Property.
func (p *NeighborhoodDegreeProperty) Name() string { return "neighborhood-degrees" }

// Values implements Property: it computes each vertex's signature and
// interns it, returning dictionary ids.
func (p *NeighborhoodDegreeProperty) Values(g *graph.Graph) []int {
	n := g.NumVertices()
	degs := g.Degrees()
	index := make(map[string]int, n)
	out := make([]int, n)
	for v := 0; v < n; v++ {
		sig := make([]int, 0, 1+degs[v])
		sig = append(sig, degs[v])
		for _, u := range g.Neighbors(v) {
			sig = append(sig, degs[u])
		}
		sort.Sort(sort.Reverse(sort.IntSlice(sig[1:])))
		key := sigKey(sig)
		id, ok := index[key]
		if !ok {
			id = len(p.dict)
			index[key] = id
			p.dict = append(p.dict, sig)
		}
		out[v] = id
	}
	return out
}

// Distance implements Property: L1 distance between the two signatures,
// zero-padded to equal length.
func (p *NeighborhoodDegreeProperty) Distance(a, b int) float64 {
	if a == b {
		return 0
	}
	sa, sb := p.dict[a], p.dict[b]
	var dist float64
	la, lb := len(sa), len(sb)
	max := la
	if lb > max {
		max = lb
	}
	for i := 0; i < max; i++ {
		var va, vb int
		if i < la {
			va = sa[i]
		}
		if i < lb {
			vb = sb[i]
		}
		if va > vb {
			dist += float64(va - vb)
		} else {
			dist += float64(vb - va)
		}
	}
	return dist
}

func sigKey(sig []int) string {
	buf := make([]byte, 0, 4*len(sig))
	for _, d := range sig {
		buf = append(buf, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
	}
	return string(buf)
}
