package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/uncertain"
)

// equivFamilies spans the degree regimes the engine sees in practice:
// heavy-tailed with clustering (the dblp-like stand-in), homogeneous
// Erdős–Rényi, and a small-world lattice.
func equivFamilies(seed int64) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"holmekim": gen.HolmeKim(randx.New(seed), 220, 3, 0.3),
		"erdos":    gen.ErdosRenyiGNM(randx.New(seed+1), 200, 500),
		"watts":    gen.WattsStrogatz(randx.New(seed+2), 180, 3, 0.1),
	}
}

// samePairs asserts two published uncertain graphs are bit-identical:
// same pair list in the same order with exactly equal probabilities.
func samePairs(t *testing.T, a, b *uncertain.Graph) {
	t.Helper()
	if a == nil || b == nil {
		if a != b {
			t.Fatalf("one published graph is nil: %v vs %v", a, b)
		}
		return
	}
	ap, bp := a.Pairs(), b.Pairs()
	if len(ap) != len(bp) {
		t.Fatalf("pair counts differ: %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, ap[i], bp[i])
		}
	}
}

// TestObfuscateWorkerEquivalence is the regression contract of the
// parallel engine: for every graph family and seed, Obfuscate with
// Workers: 1 and Workers: N returns identical σ, ε̃, work counters, and
// published pair sets — parallelism must trade wall-clock time only.
func TestObfuscateWorkerEquivalence(t *testing.T) {
	for name, g := range equivFamilies(17) {
		for _, seed := range []int64{1, 42} {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				run := func(workers int) *Result {
					res, err := Obfuscate(context.Background(), g, Params{
						K: 4, Eps: 0.1, C: 2, Q: 0.01,
						Trials: 3, Delta: 1e-3,
						Workers: workers, Seed: seed,
					})
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					return res
				}
				base := run(1)
				for _, workers := range []int{2, 4, 7} {
					got := run(workers)
					if got.Sigma != base.Sigma {
						t.Errorf("workers=%d: sigma %v != %v", workers, got.Sigma, base.Sigma)
					}
					if got.EpsTilde != base.EpsTilde {
						t.Errorf("workers=%d: eps~ %v != %v", workers, got.EpsTilde, base.EpsTilde)
					}
					if got.Generations != base.Generations || got.Trials != base.Trials {
						t.Errorf("workers=%d: counters (%d,%d) != (%d,%d)", workers,
							got.Generations, got.Trials, base.Generations, base.Trials)
					}
					samePairs(t, got.G, base.G)
				}
			})
		}
	}
}

// TestGenerateObfuscationWorkerEquivalence pins the same contract one
// level down, on a single Algorithm 2 probe.
func TestGenerateObfuscationWorkerEquivalence(t *testing.T) {
	g := gen.HolmeKim(randx.New(5), 250, 3, 0.3)
	for _, sigma := range []float64{0.05, 0.3} {
		base := GenerateObfuscation(g, sigma, Params{
			K: 4, Eps: 0.2, Trials: 4, Workers: 1, Seed: 9,
		})
		for _, workers := range []int{3, 8} {
			got := GenerateObfuscation(g, sigma, Params{
				K: 4, Eps: 0.2, Trials: 4, Workers: workers, Seed: 9,
			})
			if got.EpsTilde != base.EpsTilde {
				t.Errorf("sigma=%g workers=%d: eps~ %v != %v", sigma, workers, got.EpsTilde, base.EpsTilde)
			}
			if base.Failed() != got.Failed() {
				t.Fatalf("sigma=%g workers=%d: success disagree", sigma, workers)
			}
			if !base.Failed() {
				samePairs(t, got.G, base.G)
			}
		}
	}
}

// TestGenerateObfuscationBestOfT pins the selection semantics inherited
// from the sequential engine: Algorithm 2 keeps the best (lowest-ε̃) of
// its t trials, not the first success. Trial streams are keyed on
// (seed, σ, trial), so a Trials: 1 run is exactly trial 0 of the
// Trials: 5 run, and with this seed trial 0 succeeds at ε̃ = 0.04 while
// a later trial reaches 0.028 — first-success-wins would return 0.04.
func TestGenerateObfuscationBestOfT(t *testing.T) {
	g := gen.HolmeKim(randx.New(5), 250, 3, 0.3)
	p := func(trials, workers int) Params {
		return Params{K: 4, Eps: 0.3, Trials: trials, Workers: workers, Seed: 1}
	}
	first := GenerateObfuscation(g, 0.1, p(1, 1))
	best := GenerateObfuscation(g, 0.1, p(5, 1))
	if first.Failed() || best.Failed() {
		t.Fatalf("setup: both runs should succeed (eps~ %v, %v)", first.EpsTilde, best.EpsTilde)
	}
	if best.EpsTilde >= first.EpsTilde {
		t.Errorf("best-of-5 eps~ %v not better than trial 0's %v: first-success selection?",
			best.EpsTilde, first.EpsTilde)
	}
	par := GenerateObfuscation(g, 0.1, p(5, 4))
	if par.EpsTilde != best.EpsTilde {
		t.Errorf("parallel best-of-5 eps~ %v != sequential %v", par.EpsTilde, best.EpsTilde)
	}
	samePairs(t, par.G, best.G)
	// Adding trials can only improve the winner (prefix property of the
	// per-trial streams).
	prev := math.Inf(1)
	for trials := 1; trials <= 5; trials++ {
		cur := GenerateObfuscation(g, 0.1, p(trials, 3)).EpsTilde
		if cur > prev {
			t.Errorf("eps~ worsened from %v to %v when raising Trials to %d", prev, cur, trials)
		}
		prev = cur
	}
}

// TestProbePurity pins the property the speculative σ search relies on:
// a probe's outcome is a pure function of (g, σ, seed), independent of
// which probes ran before it.
func TestProbePurity(t *testing.T) {
	g := gen.HolmeKim(randx.New(3), 200, 3, 0.2)
	p := Params{K: 3, Eps: 0.15, Trials: 2, Workers: 2, Seed: 11}
	a := GenerateObfuscation(g, 0.2, p)
	GenerateObfuscation(g, 0.7, p) // unrelated probe in between
	b := GenerateObfuscation(g, 0.2, p)
	if a.EpsTilde != b.EpsTilde {
		t.Fatalf("probe not pure: eps~ %v vs %v", a.EpsTilde, b.EpsTilde)
	}
	if !a.Failed() {
		samePairs(t, a.G, b.G)
	}
}

// TestLegacyRngStillDeterministic keeps the pre-Workers call shape
// (seeding via Params.Rng) reproducible.
func TestLegacyRngStillDeterministic(t *testing.T) {
	g := gen.HolmeKim(randx.New(8), 200, 3, 0.2)
	run := func(r *rand.Rand) *Result {
		res, err := Obfuscate(context.Background(), g, Params{K: 3, Eps: 0.15, Trials: 2, Delta: 1e-3, Rng: r})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(randx.New(77)), run(randx.New(77))
	if a.Sigma != b.Sigma || a.EpsTilde != b.EpsTilde {
		t.Fatalf("legacy Rng seeding not reproducible: (%v,%v) vs (%v,%v)",
			a.Sigma, a.EpsTilde, b.Sigma, b.EpsTilde)
	}
	samePairs(t, a.G, b.G)
}
