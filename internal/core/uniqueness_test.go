package core

import (
	"math"
	"testing"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/mathx"
)

func degDist(a, b int) float64 { return DegreeProperty{}.Distance(a, b) }

func TestCommonnessDegenerateThetaCountsMatches(t *testing.T) {
	values := []int{1, 1, 1, 2, 5}
	c := CommonnessScores(values, degDist, 0)
	if c[1] != 3 || c[2] != 1 || c[5] != 1 {
		t.Errorf("degenerate commonness = %v", c)
	}
}

func TestCommonnessGaussianWeighting(t *testing.T) {
	values := []int{0, 10}
	theta := 2.0
	c := CommonnessScores(values, degDist, theta)
	want0 := mathx.NormalPDF(0, 0, theta) + mathx.NormalPDF(10, 0, theta)
	if math.Abs(c[0]-want0) > 1e-15 {
		t.Errorf("C(0) = %v, want %v", c[0], want0)
	}
	// Symmetric situation: both values equally common.
	if math.Abs(c[0]-c[10]) > 1e-15 {
		t.Errorf("C(0)=%v != C(10)=%v", c[0], c[10])
	}
}

func TestCommonnessMultiplicityWeighting(t *testing.T) {
	// Value 3 appears twice; its contribution to any commonness doubles.
	a := CommonnessScores([]int{3, 7}, degDist, 1.5)
	b := CommonnessScores([]int{3, 3, 7}, degDist, 1.5)
	phi0 := mathx.NormalPDF(0, 0, 1.5)
	if math.Abs((b[7]-a[7])-mathx.NormalPDF(4, 0, 1.5)) > 1e-15 {
		t.Errorf("extra copy of 3 should add phi(4) to C(7)")
	}
	if math.Abs((b[3]-a[3])-phi0) > 1e-15 {
		t.Errorf("extra copy of 3 should add phi(0) to C(3)")
	}
}

func TestUniquenessOrdering(t *testing.T) {
	// A hub degree (one vertex at 50) must be far more unique than the
	// crowd degree (many vertices at 3).
	values := make([]int, 101)
	for i := 0; i < 100; i++ {
		values[i] = 3
	}
	values[100] = 50
	u := UniquenessScores(values, degDist, 1.0)
	if u[100] <= u[0] {
		t.Errorf("hub uniqueness %v should exceed crowd uniqueness %v", u[100], u[0])
	}
	if u[100]/u[0] < 10 {
		t.Errorf("uniqueness ratio %v suspiciously small", u[100]/u[0])
	}
	// All vertices with the same value share the same score.
	for i := 1; i < 100; i++ {
		if u[i] != u[0] {
			t.Fatal("equal values must have equal uniqueness")
		}
	}
}

func TestUniquenessNearbyValuesRaiseCommonness(t *testing.T) {
	// With a wide kernel, a value surrounded by near values is more
	// common than an isolated one at the same multiplicity.
	values := []int{10, 11, 12, 40}
	u := UniquenessScores(values, degDist, 3.0)
	if u[3] <= u[0] {
		t.Errorf("isolated 40 (%v) should be more unique than 10 (%v)", u[3], u[0])
	}
}

func TestDegreePropertyBasics(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	p := DegreeProperty{}
	if p.Name() != "degree" {
		t.Error("name")
	}
	vals := p.Values(g)
	if vals[0] != 1 || vals[1] != 2 || vals[2] != 1 {
		t.Errorf("values = %v", vals)
	}
	if p.Distance(3, 7) != 4 || p.Distance(7, 3) != 4 || p.Distance(5, 5) != 0 {
		t.Error("distance")
	}
}
