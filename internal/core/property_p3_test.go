package core

import (
	"context"
	"testing"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

func TestP3SignaturesDistinguishStructure(t *testing.T) {
	// Triangle 0-1-2 plus path 3-4-5: vertex 1 (in triangle) and vertex
	// 4 (path middle) both have degree 2, same neighbor degrees under
	// P2? v1 neighbors have degrees 2,2; v4 neighbors have 1,1 — P2
	// separates them too. Use a case only P3 separates: a closed vs
	// open triple with matched neighbor degrees.
	//
	//   0-1, 0-2, 1-2 (triangle)          center 0: nbr degs 2,2, closed
	//   3-4, 3-5, 4-6, 5-7                center 3: nbr degs 2,2, open
	g := graph.FromEdges(8, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2},
		{U: 3, V: 4}, {U: 3, V: 5}, {U: 4, V: 6}, {U: 5, V: 7},
	})
	p2 := NewNeighborhoodDegreeProperty()
	v2 := p2.Values(g)
	if v2[0] != v2[3] {
		t.Fatal("setup: P2 must see 0 and 3 as equivalent (degree 2, neighbor degrees {2,2})")
	}
	p3 := NewRadiusOneProperty()
	v3 := p3.Values(g)
	if v3[0] == v3[3] {
		t.Error("P3 must separate a closed triangle center from an open one")
	}
	if p3.Distance(v3[0], v3[3]) <= 0 {
		t.Error("distinct signatures must have positive distance")
	}
}

func TestP3SymmetricVerticesShareValue(t *testing.T) {
	// Cycle: every vertex has an isomorphic radius-one subgraph.
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 0},
	})
	p := NewRadiusOneProperty()
	vals := p.Values(g)
	for v := 1; v < 6; v++ {
		if vals[v] != vals[0] {
			t.Fatalf("cycle vertices must share the P3 value, got %v", vals)
		}
	}
	if p.Distance(vals[0], vals[0]) != 0 {
		t.Error("identity distance")
	}
}

func TestP3DistanceTriangleLowerBoundSanity(t *testing.T) {
	// K3 center vs path center: signatures (3 vertices, 3 edges,
	// [2 2 2]) vs (3, 2, [2 1 1]) -> |0| + |1| + (0+1+1) = 3.
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2},
		{U: 3, V: 4}, {U: 3, V: 5},
	})
	p := NewRadiusOneProperty()
	vals := p.Values(g)
	if got := p.Distance(vals[0], vals[3]); got != 3 {
		t.Errorf("distance = %v, want 3", got)
	}
}

func TestObfuscateWithP3Property(t *testing.T) {
	g := testGraph(41, 200)
	res, err := Obfuscate(context.Background(), g, Params{
		K: 4, Eps: 0.15, Trials: 2, Delta: 1e-3,
		Property: NewRadiusOneProperty(),
		Rng:      randx.New(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	model := adversary.UncertainModel{G: res.G}
	if !adversary.IsKEpsObfuscation(model, g.Degrees(), 4, 0.15) {
		t.Error("P3-scored obfuscation fails degree verification")
	}
}
