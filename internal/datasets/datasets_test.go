package datasets

import (
	"math"
	"testing"

	"uncertaingraph/internal/stats"
)

func TestAllSpecsGenerateAtTiny(t *testing.T) {
	ds, err := All(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("got %d datasets", len(ds))
	}
	for _, d := range ds {
		if err := d.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", d.Spec.Name, err)
		}
		wantN := d.Spec.PaperN / 400
		if d.Graph.NumVertices() != wantN {
			t.Errorf("%s: n = %d, want %d", d.Spec.Name, d.Graph.NumVertices(), wantN)
		}
	}
}

func TestAverageDegreesMatchPaperOrdering(t *testing.T) {
	ds, err := All(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 4: dblp 6.33, flickr 19.73, y360 4.27. The stand-ins
	// must land near those (HK avg degree ~ 2M) and preserve ordering.
	avg := map[string]float64{}
	for _, d := range ds {
		avg[d.Spec.Name] = d.Graph.AverageDegree()
	}
	if math.Abs(avg["dblp"]-6.33) > 1.5 {
		t.Errorf("dblp avg degree %v, want ~6.3", avg["dblp"])
	}
	if math.Abs(avg["flickr"]-19.73) > 2.5 {
		t.Errorf("flickr avg degree %v, want ~19.7", avg["flickr"])
	}
	if math.Abs(avg["y360"]-4.27) > 1.0 {
		t.Errorf("y360 avg degree %v, want ~4.3", avg["y360"])
	}
	if !(avg["flickr"] > avg["dblp"] && avg["dblp"] > avg["y360"]) {
		t.Errorf("density ordering broken: %v", avg)
	}
}

func TestClusteringRegimeOrdering(t *testing.T) {
	ds, err := All(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	cc := map[string]float64{}
	for _, d := range ds {
		cc[d.Spec.Name] = stats.ClusteringCoefficient(d.Graph)
	}
	// Paper: dblp 0.38 >> flickr 0.12 > y360 0.04.
	if !(cc["dblp"] > cc["flickr"] && cc["flickr"] > cc["y360"]) {
		t.Errorf("clustering ordering broken: %v", cc)
	}
	// Under the strict T3/T2 definition, the stand-ins land lower than
	// the paper's reals (finite-size hub dilution; see DESIGN.md) but
	// must keep a clear co-authorship-vs-friendship separation.
	if cc["dblp"] < 0.08 {
		t.Errorf("dblp stand-in clustering %v too low for a co-authorship regime", cc["dblp"])
	}
	if cc["y360"] > 0.12 {
		t.Errorf("y360 stand-in clustering %v too high for a sparse regime", cc["y360"])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, err := ByName("dblp")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(spec, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(spec, ScaleTiny)
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Error("generation must be deterministic")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("orkut"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestScaleDivisors(t *testing.T) {
	for scale, want := range map[Scale]int{ScaleTiny: 400, ScaleSmall: 100, ScaleMedium: 20, ScaleLarge: 10} {
		got, err := scale.Divisor()
		if err != nil || got != want {
			t.Errorf("scale %s: divisor %d err %v", scale, got, err)
		}
	}
	if _, err := Scale("huge").Divisor(); err == nil {
		t.Error("unknown scale should error")
	}
}

func TestHeavyTailPresent(t *testing.T) {
	ds, err := All(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Graph.MaxDegree() < 5*int(d.Graph.AverageDegree()) {
			t.Errorf("%s: max degree %d not heavy-tailed vs avg %.1f",
				d.Spec.Name, d.Graph.MaxDegree(), d.Graph.AverageDegree())
		}
	}
}
