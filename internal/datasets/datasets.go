// Package datasets synthesizes stand-ins for the paper's three
// proprietary evaluation graphs. The real snapshots (a DBLP
// co-authorship crawl, a Flickr contact crawl, and the Yahoo! 360
// friendship graph) are not redistributable; per the reproduction plan
// (DESIGN.md §2) we substitute clique-affiliation graphs
// (gen.Affiliation) whose average degree, hub-tail regime and
// clustering ordering match the paper's Table 4 "real" rows:
//
//	dataset   paper n     avg deg   S_CC    stand-in
//	dblp      226,413     6.33      0.38    small co-author cliques, heavy repeat collaboration
//	flickr    588,166     19.73     0.12    wider pools, moderate repeat, heavy hub tail
//	y360    1,226,311     4.27      0.04    mostly pairwise events, little repeat
//
// Sizes scale by a named factor so tests, benchmarks and full
// experiment runs can trade fidelity for time; the degree *shape*
// (heavy tail) and relative density ordering — which drive both the
// obfuscation difficulty and the utility statistics — are preserved at
// every scale.
package datasets

import (
	"fmt"

	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

// Spec describes one synthetic dataset. All three stand-ins use the
// clique-affiliation model (gen.Affiliation): overlapping "event"
// cliques with preferential membership, which reproduces both the heavy
// degree tail and a non-trivial clustering coefficient under the
// paper's strict S_CC = T3/T2 definition.
type Spec struct {
	// Name matches the paper's dataset name.
	Name string
	// PaperN is the vertex count of the paper's real graph.
	PaperN int
	// GroupFactor sets the number of affiliation events: nGroups =
	// GroupFactor * n; together with SizePMF it tunes the average
	// degree.
	GroupFactor float64
	// SizePMF is the event-size distribution (index = members per
	// event): small co-author-like groups for dblp, wider pools for
	// flickr, mostly pairwise links for y360.
	SizePMF []float64
	// MaxDegreeFactor caps the hub tail at MaxDegreeFactor times the
	// target average degree, matching each dataset's max-degree regime
	// (paper Table 4: dblp 238/6.33~38x, flickr 6660/19.7~340x, y360
	// 258/4.27~60x, moderated for the reduced scales).
	MaxDegreeFactor float64
	// RepeatP is the repeat-collaboration probability (see
	// gen.Affiliation): high for co-authorship-like clustering, low for
	// sparse friendship graphs.
	RepeatP float64
	// CliqueP is the within-group link density (1 = clique semantics,
	// lower for contact-graph semantics; see gen.Affiliation).
	CliqueP float64
	// AvgDegree is the paper's average degree target.
	AvgDegree float64
	// Seed fixes the generator stream per dataset.
	Seed int64
}

// Specs lists the three stand-ins in the paper's order, tuned so the
// tiny/medium-scale graphs land near the paper's average degrees
// (6.33 / 19.73 / 4.27) and preserve the clustering ordering
// dblp >> flickr > y360.
var Specs = []Spec{
	{
		Name: "dblp", PaperN: 226413, GroupFactor: 1.26,
		SizePMF:         []float64{0, 0, 0.45, 0.30, 0.15, 0.07, 0.03},
		MaxDegreeFactor: 20, AvgDegree: 6.33, RepeatP: 0.65, CliqueP: 1,
		Seed: 101,
	},
	{
		Name: "flickr", PaperN: 588166, GroupFactor: 3.60,
		SizePMF:         []float64{0, 0, 0.30, 0.20, 0.15, 0.10, 0.08, 0.06, 0.05, 0.03, 0.03},
		MaxDegreeFactor: 60, AvgDegree: 19.73, RepeatP: 0.30, CliqueP: 0.35,
		Seed: 102,
	},
	{
		Name: "y360", PaperN: 1226311, GroupFactor: 1.38,
		SizePMF:         []float64{0, 0, 0.85, 0.12, 0.03},
		MaxDegreeFactor: 30, AvgDegree: 4.27, RepeatP: 0.08, CliqueP: 1,
		Seed: 103,
	},
}

// Scale names a size reduction relative to the paper's graphs.
type Scale string

const (
	// ScaleTiny (~1/400) suits unit tests and -short runs.
	ScaleTiny Scale = "tiny"
	// ScaleSmall (~1/100) suits benchmarks.
	ScaleSmall Scale = "small"
	// ScaleMedium (~1/20) is the default for experiment regeneration.
	ScaleMedium Scale = "medium"
	// ScaleLarge (~1/10) approaches the paper sizes and timing shape.
	ScaleLarge Scale = "large"
)

// Divisor returns the size divisor of a scale.
func (s Scale) Divisor() (int, error) {
	switch s {
	case ScaleTiny:
		return 400, nil
	case ScaleSmall:
		return 100, nil
	case ScaleMedium:
		return 20, nil
	case ScaleLarge:
		return 10, nil
	}
	return 0, fmt.Errorf("datasets: unknown scale %q (want tiny|small|medium|large)", s)
}

// Dataset is a generated stand-in.
type Dataset struct {
	Spec  Spec
	Scale Scale
	Graph *graph.Graph
}

// Generate builds one dataset at the given scale.
func Generate(spec Spec, scale Scale) (Dataset, error) {
	div, err := scale.Divisor()
	if err != nil {
		return Dataset{}, err
	}
	n := spec.PaperN / div
	if n < len(spec.SizePMF) {
		return Dataset{}, fmt.Errorf("datasets: scale %s leaves %s with %d vertices", scale, spec.Name, n)
	}
	nGroups := int(spec.GroupFactor * float64(n))
	maxDeg := int(spec.MaxDegreeFactor * spec.AvgDegree)
	g := gen.Affiliation(randx.New(spec.Seed), n, nGroups, spec.SizePMF, maxDeg, spec.RepeatP, spec.CliqueP)
	return Dataset{Spec: spec, Scale: scale, Graph: g}, nil
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q (want dblp|flickr|y360)", name)
}

// All generates every stand-in at the given scale.
func All(scale Scale) ([]Dataset, error) {
	out := make([]Dataset, 0, len(Specs))
	for _, spec := range Specs {
		d, err := Generate(spec, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
