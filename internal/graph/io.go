package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list. Each non-empty
// line holds two vertex ids; lines starting with '#' or '%' are
// comments. Vertex ids need not be dense: they are remapped to 0..N-1 in
// first-appearance order, and the mapping from original id to dense id
// is returned.
//
// Duplicate edges and self-loops are ignored, matching the simple-graph
// model of the paper.
func ReadEdgeList(r io.Reader) (*Graph, map[string]int, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<16), 1<<22)
	ids := make(map[string]int)
	var edges [][2]int
	lookup := func(tok string) int {
		if id, ok := ids[tok]; ok {
			return id
		}
		id := len(ids)
		ids[tok] = id
		return id
	}
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: expected two vertex ids, got %q", lineNo, line)
		}
		edges = append(edges, [2]int{lookup(fields[0]), lookup(fields[1])})
	}
	if err := scanner.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	b := NewBuilder(len(ids))
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build(), ids, nil
}

// WriteEdgeList writes the graph as "u v" lines with u < v, preceded by
// a comment header with the vertex and edge counts.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices=%d edges=%d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var err error
	g.ForEachEdge(func(u, v int) {
		if err != nil {
			return
		}
		bw.WriteString(strconv.Itoa(u))
		bw.WriteByte(' ')
		bw.WriteString(strconv.Itoa(v))
		err = bw.WriteByte('\n')
	})
	if err != nil {
		return fmt.Errorf("graph: writing edge list: %w", err)
	}
	return bw.Flush()
}
