package graph

import (
	"bytes"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks that arbitrary input either fails cleanly or
// yields a valid graph whose serialization round-trips: re-reading
// WriteEdgeList output reproduces the same edge structure (isolated
// vertices are the one lossy case — the format only carries edges).
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 0\n"))
	f.Add([]byte("# comment\n% also comment\na b\nb a\nb c\n"))
	f.Add([]byte("7 7\nx y extra tokens ignored\n\n  \n"))
	f.Add([]byte("1000000 5\n5 1000000\n42 1000000\n"))
	f.Add([]byte("u\tv\nv\tw\n"))
	f.Add([]byte("only-one-token\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, ids, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v\ninput: %q", err, data)
		}
		if g.NumVertices() != len(ids) {
			t.Fatalf("vertices = %d, id map has %d entries", g.NumVertices(), len(ids))
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		g2, _, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\noutput: %q", err, buf.Bytes())
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip edges = %d, want %d", g2.NumEdges(), g.NumEdges())
		}
		if got, want := nonZeroDegrees(g2), nonZeroDegrees(g); !equalInts(got, want) {
			t.Fatalf("round-trip degree multiset %v, want %v", got, want)
		}
	})
}

func nonZeroDegrees(g *Graph) []int {
	var out []int
	for _, d := range g.Degrees() {
		if d > 0 {
			out = append(out, d)
		}
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEdgeListRoundTripRelabel exercises the documented parser behaviors —
// comments, duplicate edges, self-loops, reversed duplicates, sparse
// and non-numeric vertex ids — and checks the written form re-reads to
// the identical structure under the first-appearance relabeling.
func TestEdgeListRoundTripRelabel(t *testing.T) {
	in := strings.Join([]string{
		"# header comment",
		"% alternate comment style",
		"alice bob",
		"bob alice",    // duplicate, reversed
		"alice bob",    // duplicate, same order
		"carol carol",  // self-loop: ignored
		"9000000000 3", // sparse numeric ids, beyond int32
		"3 9000000000", // duplicate of the above
		"bob carol",
		"",
	}, "\n")
	g, ids, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Tokens in first-appearance order: alice bob carol 9000000000 3.
	if len(ids) != 5 {
		t.Fatalf("id map %v, want 5 entries", ids)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3 (duplicates and self-loop dropped)", g.NumEdges())
	}
	if !g.HasEdge(ids["alice"], ids["bob"]) || !g.HasEdge(ids["bob"], ids["carol"]) ||
		!g.HasEdge(ids["9000000000"], ids["3"]) {
		t.Fatal("expected edges missing after parse")
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# vertices=5 edges=3\n") {
		t.Errorf("unexpected header in %q", buf.String())
	}
	g2, ids2, err := ReadEdgeList(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round-trip shape (%d, %d), want (%d, %d)",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	// WriteEdgeList emits dense ids as decimal strings; every edge of g
	// must survive re-reading under that relabeling.
	g.ForEachEdge(func(u, v int) {
		u2, okU := ids2[strconv.Itoa(u)]
		v2, okV := ids2[strconv.Itoa(v)]
		if !okU || !okV || !g2.HasEdge(u2, v2) {
			t.Fatalf("edge (%d,%d) lost in round-trip", u, v)
		}
	})
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}
