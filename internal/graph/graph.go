// Package graph provides the undirected-graph substrate: a compact
// immutable compressed-sparse-row (CSR) adjacency representation, an
// incremental builder, degree utilities, and edge-list IO. All higher
// layers (uncertain graphs, obfuscation, statistics) are built on this
// package.
//
// The CSR layout stores every adjacency list back to back in one flat
// int32 array, with a per-vertex offset table: Neighbors(v) is the
// subslice neighbors[offsets[v]:offsets[v+1]], sorted ascending. One
// graph is therefore two allocations regardless of vertex count, walks
// are sequential in memory, and buffer-reuse engines (see
// internal/uncertain.Sampler) can rematerialize a graph into the same
// arrays with zero allocations.
//
// Vertices are dense integers 0..N-1. Self-loops and parallel edges are
// rejected at construction, matching the paper's simple-graph model.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Edge is an unordered pair of distinct vertices, stored with U < V.
type Edge struct {
	U, V int
}

// Canon returns e with endpoints ordered so that U < V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is an immutable simple undirected graph in CSR form: the
// neighbor lists of all vertices concatenated into one flat array,
// each list sorted ascending, with offsets[v] marking where vertex v's
// list begins (offsets has length n+1, so offsets[n] == 2m).
type Graph struct {
	offsets   []int64
	neighbors []int32
	m         int
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges map[int64]struct{}
	order []Edge // insertion order, for deterministic adjacency
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, edges: make(map[int64]struct{})}
}

// PairKey encodes the unordered pair (u, v) into a single int64 for use
// as a set key; u and v must be distinct vertices below n.
func PairKey(u, v, n int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)*int64(n) + int64(v)
}

// AddEdge records the undirected edge (u, v). It returns false if the
// edge is a self-loop, out of range, or already present.
func (b *Builder) AddEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return false
	}
	key := PairKey(u, v, b.n)
	if _, dup := b.edges[key]; dup {
		return false
	}
	b.edges[key] = struct{}{}
	b.order = append(b.order, Edge{U: u, V: v}.Canon())
	return true
}

// HasEdge reports whether (u, v) has been added.
func (b *Builder) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return false
	}
	_, ok := b.edges[PairKey(u, v, b.n)]
	return ok
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable graph. The builder may keep being used
// afterwards; subsequent Builds see later additions.
func (b *Builder) Build() *Graph {
	offsets := make([]int64, b.n+1)
	for _, e := range b.order {
		offsets[e.U+1]++
		offsets[e.V+1]++
	}
	for v := 0; v < b.n; v++ {
		offsets[v+1] += offsets[v]
	}
	neighbors := make([]int32, 2*len(b.order))
	fill := make([]int64, b.n)
	for _, e := range b.order {
		neighbors[offsets[e.U]+fill[e.U]] = int32(e.V)
		fill[e.U]++
		neighbors[offsets[e.V]+fill[e.V]] = int32(e.U)
		fill[e.V]++
	}
	g := &Graph{offsets: offsets, neighbors: neighbors, m: len(b.order)}
	for v := 0; v < b.n; v++ {
		slices.Sort(neighbors[offsets[v]:offsets[v+1]])
	}
	return g
}

// FromEdges constructs a graph on n vertices from the given edge list,
// ignoring duplicates and self-loops.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// NewCSR adopts the given CSR triple as a graph without copying:
// offsets must have length n+1 with offsets[0] == 0, and
// neighbors[offsets[v]:offsets[v+1]] must be vertex v's neighbor list,
// sorted ascending, with every edge mirrored. No validation is
// performed (call Validate in tests). The caller keeps ownership of the
// slices; this is the adoption hook for engines that rematerialize
// graphs into preallocated buffers (internal/uncertain.Sampler).
func NewCSR(offsets []int64, neighbors []int32, m int) *Graph {
	return &Graph{offsets: offsets, neighbors: neighbors, m: m}
}

// ResetCSR re-points g at the given CSR triple without copying, under
// the same contract as NewCSR. It exists so a world-sampling engine can
// reuse one Graph value — and the buffers behind it — across many
// materializations with zero allocations.
func (g *Graph) ResetCSR(offsets []int64, neighbors []int32, m int) {
	g.offsets = offsets
	g.neighbors = neighbors
	g.m = m
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return int(g.offsets[v+1] - g.offsets[v]) }

// DirectedEdgeCount returns 2m, the number of directed arcs in the CSR
// (every undirected edge is stored twice). It is the natural budget
// unit for frontier-density decisions in direction-optimizing
// traversals: a push step examines out-arcs of the frontier, a pull
// step examines in-arcs of the unvisited set, and both are bounded by
// this total.
func (g *Graph) DirectedEdgeCount() int64 { return 2 * int64(g.m) }

// Neighbors returns the sorted neighbor list of v: a subslice of the
// graph's flat CSR array. It is shared with the graph and must not be
// modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the edge (u, v) exists, by binary search on
// the shorter adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	n := g.NumVertices()
	if u == v || u < 0 || v < 0 || u >= n || v >= n {
		return false
	}
	if g.Degree(v) < g.Degree(u) {
		u, v = v, u
	}
	a := g.Neighbors(u)
	t := int32(v)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= t })
	return i < len(a) && a[i] == t
}

// Edges returns all edges with U < V, ordered by (U, V).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	g.ForEachEdge(func(u, v int) {
		edges = append(edges, Edge{U: u, V: v})
	})
	return edges
}

// ForEachEdge calls fn once per edge with u < v, in (u, v) order.
func (g *Graph) ForEachEdge(fn func(u, v int)) {
	for u, n := 0, g.NumVertices(); u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				fn(u, int(v))
			}
		}
	}
}

// Degrees returns the degree sequence indexed by vertex.
func (g *Graph) Degrees() []int {
	deg := make([]int, g.NumVertices())
	for v := range deg {
		deg[v] = g.Degree(v)
	}
	return deg
}

// MaxDegree returns the maximum degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v, n := 0, g.NumVertices(); v < n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AverageDegree returns 2m/n, or 0 for the empty graph.
func (g *Graph) AverageDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(n)
}

// DegreeHistogram returns counts[d] = number of vertices of degree d,
// for 0 <= d <= MaxDegree.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for v, n := 0, g.NumVertices(); v < n; v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// ConnectedComponents returns, for each vertex, the id of its component
// (ids are dense, assigned in discovery order) and the number of
// components.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	n := g.NumVertices()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if comp[v] == -1 {
					comp[v] = count
					queue = append(queue, int(v))
				}
			}
		}
		count++
	}
	return comp, count
}

// Validate checks internal invariants (offset monotonicity, sorted
// adjacency, symmetry, no self-loops, edge-count consistency) and
// returns a descriptive error on the first violation. It is used by
// tests, after deserialization, and to check buffers adopted via
// NewCSR/ResetCSR.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.offsets) > 0 && g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	for v := 0; v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	if n > 0 && int(g.offsets[n]) > len(g.neighbors) {
		return fmt.Errorf("graph: offsets[%d] = %d exceeds neighbor array length %d",
			n, g.offsets[n], len(g.neighbors))
	}
	total := 0
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		for i, v := range nbrs {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", u, v)
			}
			if int(v) == u {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if i > 0 && nbrs[i-1] >= v {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", u)
			}
			if !g.HasEdge(int(v), u) {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", u, v)
			}
		}
		total += len(nbrs)
	}
	if total != 2*g.m {
		return fmt.Errorf("graph: degree sum %d != 2m = %d", total, 2*g.m)
	}
	return nil
}
