// Package graph provides the undirected-graph substrate: a compact
// immutable adjacency representation, an incremental builder, degree
// utilities, and edge-list IO. All higher layers (uncertain graphs,
// obfuscation, statistics) are built on this package.
//
// Vertices are dense integers 0..N-1. Self-loops and parallel edges are
// rejected at construction, matching the paper's simple-graph model.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an unordered pair of distinct vertices, stored with U < V.
type Edge struct {
	U, V int
}

// Canon returns e with endpoints ordered so that U < V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is an immutable simple undirected graph.
type Graph struct {
	adj [][]int // sorted neighbor lists
	m   int     // number of edges
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges map[int64]struct{}
	order []Edge // insertion order, for deterministic adjacency
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, edges: make(map[int64]struct{})}
}

// PairKey encodes the unordered pair (u, v) into a single int64 for use
// as a set key; u and v must be distinct vertices below n.
func PairKey(u, v, n int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)*int64(n) + int64(v)
}

// AddEdge records the undirected edge (u, v). It returns false if the
// edge is a self-loop, out of range, or already present.
func (b *Builder) AddEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return false
	}
	key := PairKey(u, v, b.n)
	if _, dup := b.edges[key]; dup {
		return false
	}
	b.edges[key] = struct{}{}
	b.order = append(b.order, Edge{U: u, V: v}.Canon())
	return true
}

// HasEdge reports whether (u, v) has been added.
func (b *Builder) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return false
	}
	_, ok := b.edges[PairKey(u, v, b.n)]
	return ok
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable graph. The builder may keep being used
// afterwards; subsequent Builds see later additions.
func (b *Builder) Build() *Graph {
	deg := make([]int, b.n)
	for _, e := range b.order {
		deg[e.U]++
		deg[e.V]++
	}
	adj := make([][]int, b.n)
	for v, d := range deg {
		adj[v] = make([]int, 0, d)
	}
	for _, e := range b.order {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for v := range adj {
		sort.Ints(adj[v])
	}
	return &Graph{adj: adj, m: len(b.order)}
}

// FromEdges constructs a graph on n vertices from the given edge list,
// ignoring duplicates and self-loops.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// HasEdge reports whether the edge (u, v) exists, by binary search on
// the shorter adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, v = g.adj[v], u
	}
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// Edges returns all edges with U < V, ordered by (U, V).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
	}
	return edges
}

// ForEachEdge calls fn once per edge with u < v, in (u, v) order.
func (g *Graph) ForEachEdge(fn func(u, v int)) {
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// Degrees returns the degree sequence indexed by vertex.
func (g *Graph) Degrees() []int {
	deg := make([]int, len(g.adj))
	for v := range g.adj {
		deg[v] = len(g.adj[v])
	}
	return deg
}

// MaxDegree returns the maximum degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// AverageDegree returns 2m/n, or 0 for the empty graph.
func (g *Graph) AverageDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// DegreeHistogram returns counts[d] = number of vertices of degree d,
// for 0 <= d <= MaxDegree.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := range g.adj {
		counts[len(g.adj[v])]++
	}
	return counts
}

// ConnectedComponents returns, for each vertex, the id of its component
// (ids are dense, assigned in discovery order) and the number of
// components.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	n := len(g.adj)
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.adj[u] {
				if comp[v] == -1 {
					comp[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return comp, count
}

// Validate checks internal invariants (sorted adjacency, symmetry, no
// self-loops, edge-count consistency) and returns a descriptive error on
// the first violation. It is used by tests and after deserialization.
func (g *Graph) Validate() error {
	total := 0
	for u, nbrs := range g.adj {
		for i, v := range nbrs {
			if v < 0 || v >= len(g.adj) {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if i > 0 && nbrs[i-1] >= v {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", u)
			}
			if !g.HasEdge(v, u) {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", u, v)
			}
		}
		total += len(nbrs)
	}
	if total != 2*g.m {
		return fmt.Errorf("graph: degree sum %d != 2m = %d", total, 2*g.m)
	}
	return nil
}
