package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# a comment
% another comment
0 1
1 2

2 0
0 1
3 3
`
	g, ids, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Errorf("vertices = %d, want 4 (ids %v)", g.NumVertices(), ids)
	}
	// Duplicate "0 1" and self-loop "3 3" dropped: triangle on 0,1,2.
	if g.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReadEdgeListRemapsSparseIDs(t *testing.T) {
	in := "1000 42\nfoo 1000\n"
	g, ids, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if ids["1000"] != 0 || ids["42"] != 1 || ids["foo"] != 2 {
		t.Errorf("id map = %v", ids)
	}
}

func TestReadEdgeListMalformed(t *testing.T) {
	if _, _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Error("expected error for single-token line")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {0, 4}, {2, 3}, {1, 4}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	// Vertex 3 never appears as an endpoint before vertex 2 in output, so
	// ids may be remapped, but the degree multiset must be preserved.
	h1, h2 := g.DegreeHistogram(), g2.DegreeHistogram()
	for d := range h1 {
		if d < len(h2) && h1[d] != h2[d] {
			t.Fatalf("degree histograms differ at %d: %v vs %v", d, h1, h2)
		}
	}
}
