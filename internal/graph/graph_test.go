package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// paperGraph is the original 4-vertex graph of paper Figure 1(a):
// edges (v1,v2), (v1,v3), (v1,v4), (v3,v4), so deg(v1)=3, deg(v2)=1,
// deg(v3)=deg(v4)=2.
func paperGraph() *Graph {
	return FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}, {2, 3}})
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	if !b.AddEdge(0, 1) {
		t.Error("first add should succeed")
	}
	if b.AddEdge(1, 0) {
		t.Error("duplicate (reversed) edge accepted")
	}
	if b.AddEdge(2, 2) {
		t.Error("self-loop accepted")
	}
	if b.AddEdge(0, 4) || b.AddEdge(-1, 0) {
		t.Error("out-of-range edge accepted")
	}
	if !b.HasEdge(1, 0) {
		t.Error("HasEdge misses added edge")
	}
	if b.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", b.NumEdges())
	}
}

func TestPaperGraphShape(t *testing.T) {
	g := paperGraph()
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	wantDeg := []int{3, 1, 2, 2}
	if got := g.Degrees(); !reflect.DeepEqual(got, wantDeg) {
		t.Errorf("degrees = %v, want %v", got, wantDeg)
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if g.AverageDegree() != 2 {
		t.Errorf("AverageDegree = %v, want 2", g.AverageDegree())
	}
	if !g.HasEdge(2, 3) || g.HasEdge(1, 2) {
		t.Error("HasEdge wrong")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEdgesOrderAndForEach(t *testing.T) {
	g := paperGraph()
	want := []Edge{{0, 1}, {0, 2}, {0, 3}, {2, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("Edges = %v, want %v", got, want)
	}
	var seen []Edge
	g.ForEachEdge(func(u, v int) { seen = append(seen, Edge{u, v}) })
	if !reflect.DeepEqual(seen, want) {
		t.Errorf("ForEachEdge visited %v, want %v", seen, want)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := paperGraph()
	want := []int{0, 1, 2, 1} // one deg-1, two deg-2, one deg-3
	if got := g.DegreeHistogram(); !reflect.DeepEqual(got, want) {
		t.Errorf("histogram = %v, want %v", got, want)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	comp, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Error("3,4 should share a component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("isolated 5 in wrong component")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.MaxDegree() != 0 || g.AverageDegree() != 0 {
		t.Error("empty graph stats wrong")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPairKeyUniqueSymmetric(t *testing.T) {
	n := 50
	seen := map[int64][2]int{}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			k := PairKey(u, v, n)
			if k != PairKey(v, u, n) {
				t.Fatal("PairKey not symmetric")
			}
			if prev, dup := seen[k]; dup {
				t.Fatalf("collision: (%d,%d) and %v", u, v, prev)
			}
			seen[k] = [2]int{u, v}
		}
	}
}

// Property: a graph built from any random edge set validates, and its
// degree sum equals twice the edge count.
func TestGraphInvariantsProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%40) + 2
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			return false
		}
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*g.NumEdges() && g.NumEdges() == b.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNeighborsShared(t *testing.T) {
	g := paperGraph()
	nbrs := g.Neighbors(0)
	if !reflect.DeepEqual(nbrs, []int32{1, 2, 3}) {
		t.Errorf("Neighbors(0) = %v", nbrs)
	}
}

func TestBuilderRebuild(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g1 := b.Build()
	b.AddEdge(1, 2)
	g2 := b.Build()
	if g1.NumEdges() != 1 || g2.NumEdges() != 2 {
		t.Error("builds should snapshot builder state")
	}
}

func TestDirectedEdgeCount(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	if got := g.DirectedEdgeCount(); got != 6 {
		t.Errorf("DirectedEdgeCount = %d, want 6", got)
	}
	if got := FromEdges(3, nil).DirectedEdgeCount(); got != 0 {
		t.Errorf("empty graph DirectedEdgeCount = %d, want 0", got)
	}
	// Consistency with the degree sum on a generated graph.
	var deg int64
	for v := 0; v < g.NumVertices(); v++ {
		deg += int64(g.Degree(v))
	}
	if got := g.DirectedEdgeCount(); got != deg {
		t.Errorf("DirectedEdgeCount = %d, degree sum = %d", got, deg)
	}
}
