package baseline

import (
	"sync"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/mathx"
)

// transitionModel is the shared adversary implementation for both
// mechanisms: X_u(ω) depends only on the *published* degree of u, via a
// per-ω distribution over published degrees. Columns are prepared in
// bulk (one transition PMF per requested ω) and vertex lookups are then
// lock-free reads.
type transitionModel struct {
	pubDegrees []int
	// column maps an original degree ω to the PMF of the published
	// degree under the mechanism.
	column map[int][]float64
	// pmfFor computes that PMF for a given ω.
	pmfFor func(omega int) []float64
	mu     sync.Mutex
}

// NumVertices implements adversary.Model.
func (m *transitionModel) NumVertices() int { return len(m.pubDegrees) }

// Prepare implements adversary.Preparer: it computes the transition PMF
// of every requested original degree once.
func (m *transitionModel) Prepare(omegas []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range omegas {
		if _, ok := m.column[w]; !ok {
			m.column[w] = m.pmfFor(w)
		}
	}
}

// vertexDist evaluates X_u(ω) = P(published degree | original ω).
type vertexDist struct {
	m   *transitionModel
	pub int
}

// Prob implements adversary.Dist. ω values not covered by Prepare are
// computed on demand under the model lock (slow path, used only by
// direct probing in tests and examples).
func (d vertexDist) Prob(omega int) float64 {
	if omega < 0 {
		return 0
	}
	pmf, ok := d.m.column[omega]
	if !ok {
		d.m.Prepare([]int{omega})
		pmf = d.m.column[omega]
	}
	if d.pub >= len(pmf) {
		return 0
	}
	return pmf[d.pub]
}

// VertexX implements adversary.Model.
func (m *transitionModel) VertexX(v int) adversary.Dist {
	return vertexDist{m: m, pub: m.pubDegrees[v]}
}

// NewSparsifyModel returns the adversary model for a graph published by
// Sparsify(g, p): a vertex of original degree ω has published degree
// Binomial(ω, 1-p).
func NewSparsifyModel(published interface{ Degrees() []int }, p float64) adversary.Model {
	m := &transitionModel{
		pubDegrees: published.Degrees(),
		column:     make(map[int][]float64),
	}
	m.pmfFor = func(omega int) []float64 {
		return mathx.BinomialPMF(omega, 1-p)
	}
	return m
}

// NewPerturbModel returns the adversary model for a graph published by
// Perturb(g, p): published degree = Binomial(ω, 1-p) + Binomial(n-1-ω,
// padd), the survivals of the ω original edges plus additions among the
// n-1-ω non-neighbors. padd must be AddProbability(original, p); n is
// the vertex count.
func NewPerturbModel(published interface{ Degrees() []int }, n int, p, padd float64) adversary.Model {
	m := &transitionModel{
		pubDegrees: published.Degrees(),
		column:     make(map[int][]float64),
	}
	m.pmfFor = func(omega int) []float64 {
		if omega > n-1 {
			omega = n - 1
		}
		kept := mathx.BinomialPMF(omega, 1-p)
		// The additions PMF has negligible mass beyond a few standard
		// deviations above its small mean; truncate to keep the
		// convolution cheap on large n.
		add := truncatedBinomialPMF(n-1-omega, padd)
		return mathx.Convolve(kept, add)
	}
	return m
}

// truncatedBinomialPMF returns the Binomial(n, p) PMF truncated to the
// smallest prefix holding all but ~1e-12 of the mass; for the tiny padd
// of random perturbation this is a few dozen entries instead of n.
func truncatedBinomialPMF(n int, p float64) []float64 {
	if n <= 0 || p <= 0 {
		return []float64{1}
	}
	full := mathx.BinomialPMF(n, p)
	var cum float64
	for i, v := range full {
		cum += v
		if cum >= 1-1e-12 {
			return full[:i+1]
		}
	}
	return full
}
