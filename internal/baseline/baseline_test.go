package baseline

import (
	"math"
	"testing"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/mathx"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/uncertain"
)

func uncertainFrom(g *graph.Graph) *uncertain.Graph { return uncertain.FromCertain(g) }

func TestSparsifyRemovalRate(t *testing.T) {
	g := gen.ErdosRenyiGNM(randx.New(1), 500, 5000)
	p := 0.3
	var kept float64
	const reps = 30
	for i := int64(0); i < reps; i++ {
		s := Sparsify(g, p, randx.New(100+i))
		kept += float64(s.NumEdges())
	}
	kept /= reps
	want := (1 - p) * float64(g.NumEdges())
	if math.Abs(kept-want)/want > 0.02 {
		t.Errorf("kept %v edges on average, want %v", kept, want)
	}
}

func TestSparsifySubsetOfOriginal(t *testing.T) {
	g := gen.HolmeKim(randx.New(2), 300, 3, 0.2)
	s := Sparsify(g, 0.5, randx.New(3))
	s.ForEachEdge(func(u, v int) {
		if !g.HasEdge(u, v) {
			t.Fatalf("sparsified graph invented edge (%d,%d)", u, v)
		}
	})
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSparsifyExtremes(t *testing.T) {
	g := gen.ErdosRenyiGNM(randx.New(4), 100, 300)
	if got := Sparsify(g, 0, randx.New(5)).NumEdges(); got != 300 {
		t.Errorf("p=0 kept %d edges, want all", got)
	}
	if got := Sparsify(g, 1, randx.New(5)).NumEdges(); got != 0 {
		t.Errorf("p=1 kept %d edges, want none", got)
	}
}

func TestPerturbPreservesExpectedEdgeCount(t *testing.T) {
	g := gen.ErdosRenyiGNM(randx.New(6), 400, 3000)
	p := 0.4
	var edges float64
	const reps = 30
	for i := int64(0); i < reps; i++ {
		w := Perturb(g, p, randx.New(200+i))
		edges += float64(w.NumEdges())
	}
	edges /= reps
	want := float64(g.NumEdges())
	if math.Abs(edges-want)/want > 0.02 {
		t.Errorf("perturbed edge count %v, want ~%v", edges, want)
	}
}

func TestPerturbAddsAndRemoves(t *testing.T) {
	g := gen.ErdosRenyiGNM(randx.New(7), 300, 2000)
	w := Perturb(g, 0.5, randx.New(8))
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	added, removed := 0, 0
	w.ForEachEdge(func(u, v int) {
		if !g.HasEdge(u, v) {
			added++
		}
	})
	g.ForEachEdge(func(u, v int) {
		if !w.HasEdge(u, v) {
			removed++
		}
	})
	if added == 0 || removed == 0 {
		t.Errorf("added=%d removed=%d; both should be positive at p=0.5", added, removed)
	}
}

func TestAddProbability(t *testing.T) {
	g := gen.ErdosRenyiGNM(randx.New(9), 100, 450)
	p := 0.2
	got := AddProbability(g, p)
	want := p * 450 / (100*99/2 - 450)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("AddProbability = %v, want %v", got, want)
	}
	// Complete graph: no non-edges to add.
	k := gen.ErdosRenyiGNP(randx.New(10), 10, 1)
	if AddProbability(k, 0.5) != 0 {
		t.Error("complete graph should have padd = 0")
	}
}

func TestSparsifyModelColumnsAreBinomial(t *testing.T) {
	g := gen.ErdosRenyiGNM(randx.New(11), 50, 200)
	p := 0.3
	pub := Sparsify(g, p, randx.New(12))
	m := NewSparsifyModel(pub, p)
	// X_u(ω) must equal the Binomial(ω, 1-p) pmf at u's published degree.
	x := m.VertexX(7)
	pubDeg := pub.Degree(7)
	for _, omega := range []int{pubDeg, pubDeg + 1, pubDeg + 5} {
		want := mathx.BinomialPMF(omega, 1-p)[pubDeg]
		if got := x.Prob(omega); math.Abs(got-want) > 1e-12 {
			t.Errorf("X(%d) = %v, want %v", omega, got, want)
		}
	}
	// Published degree above ω is impossible under pure deletion.
	if pubDeg > 0 && x.Prob(pubDeg-1) != 0 {
		t.Error("X(ω < published degree) must be 0 for sparsification")
	}
}

func TestPerturbModelColumnIsConvolution(t *testing.T) {
	n := 60
	g := gen.ErdosRenyiGNM(randx.New(13), n, 300)
	p, padd := 0.4, AddProbability(g, 0.4)
	pub := Perturb(g, p, randx.New(14))
	m := NewPerturbModel(pub, n, p, padd)
	omega := 5
	kept := mathx.BinomialPMF(omega, 1-p)
	add := mathx.BinomialPMF(n-1-omega, padd)
	conv := mathx.Convolve(kept, add)
	x := m.VertexX(3)
	d := pub.Degree(3)
	if d < len(conv) {
		if got := x.Prob(omega); math.Abs(got-conv[d]) > 1e-9 {
			t.Errorf("X(%d) = %v, want %v", omega, got, conv[d])
		}
	}
	// A perturbed vertex can exceed its original degree via additions.
	if got := x.Prob(0); d > 0 && got <= 0 {
		t.Error("X(0) should be positive when additions can explain the published degree")
	}
}

func TestBaselineModelsPlugIntoAdversary(t *testing.T) {
	g := gen.HolmeKim(randx.New(15), 400, 3, 0.3)
	p := 0.3
	pub := Sparsify(g, p, randx.New(16))
	m := NewSparsifyModel(pub, p)
	levels := adversary.ObfuscationLevels(m, g.Degrees())
	if len(levels) != 400 {
		t.Fatal("level count")
	}
	for v, level := range levels {
		if level < 1-1e-9 || math.IsNaN(level) {
			t.Fatalf("vertex %d has invalid level %v", v, level)
		}
	}
	// Sparsification must raise anonymity over the identity publication
	// for typical vertices: compare medians.
	orig := adversary.ObfuscationLevels(
		adversary.UncertainModel{G: uncertainFrom(g)}, g.Degrees())
	if median(levels) < median(orig) {
		t.Errorf("sparsification median level %v below original %v", median(levels), median(orig))
	}
}

func TestStrongerPerturbationRaisesMatchedK(t *testing.T) {
	g := gen.HolmeKim(randx.New(17), 600, 3, 0.3)
	eps := 0.05
	var prev float64
	for _, p := range []float64{0.05, 0.3, 0.7} {
		pub := Perturb(g, p, randx.New(18))
		m := NewPerturbModel(pub, g.NumVertices(), p, AddProbability(g, p))
		k := adversary.MatchedK(adversary.ObfuscationLevels(m, g.Degrees()), eps)
		if k < prev {
			t.Errorf("matched k decreased from %v to %v at p=%v", prev, k, p)
		}
		prev = k
	}
	if prev < 2 {
		t.Errorf("heavy perturbation should reach matched k >= 2, got %v", prev)
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestPairFromIndexBaseline(t *testing.T) {
	n := 6
	idx := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gu, gv := pairFromIndex(idx, n)
			if gu != u || gv != v {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}
