package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"uncertaingraph/internal/gen"
)

// Property: every transition column is a probability distribution over
// published degrees, for both mechanisms and arbitrary parameters.
func TestQuickTransitionColumnsAreDistributions(t *testing.T) {
	f := func(seed int64, rawP float64, rawOmega uint8) bool {
		p := math.Mod(math.Abs(rawP), 0.98) + 0.01
		omega := int(rawOmega % 60)
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyiGNM(rng, 80, 300)
		pub := Sparsify(g, p, rng)

		// Sparsification: Binomial(omega, 1-p) over published degrees.
		sm := NewSparsifyModel(pub, p)
		if sum := columnMass(sm, omega); math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Perturbation: convolution of survivals and (truncated)
		// additions; truncation may shave ~1e-12 of mass.
		pm := NewPerturbModel(pub, 80, p, AddProbability(g, p))
		sum := columnMass(pm, omega)
		return sum <= 1+1e-9 && sum >= 1-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// columnMass sums Pr(published degree = d | original = omega) over all
// possible published degrees by probing the prepared transition PMF.
func columnMass(m interface{}, omega int) float64 {
	tm := m.(*transitionModel)
	tm.Prepare([]int{omega})
	var sum float64
	for _, v := range tm.column[omega] {
		sum += v
	}
	return sum
}

// Property: under sparsification the published degree never exceeds the
// original: Prob(omega) must be zero whenever omega < published degree.
func TestQuickSparsifyMonotoneSupport(t *testing.T) {
	f := func(seed int64, rawP float64) bool {
		p := math.Mod(math.Abs(rawP), 0.9) + 0.05
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyiGNM(rng, 60, 250)
		pub := Sparsify(g, p, rng)
		m := NewSparsifyModel(pub, p)
		for v := 0; v < 60; v += 7 {
			d := pub.Degree(v)
			x := m.VertexX(v)
			for omega := 0; omega < d; omega++ {
				if x.Prob(omega) != 0 {
					return false
				}
			}
			if d <= 59 && x.Prob(d) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
