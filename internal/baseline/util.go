package baseline

import (
	"math"
	"math/rand"
)

func log1p(x float64) float64 { return math.Log1p(x) }

// geometric returns a Geometric(p) sample (failures before first
// success) given lnq = ln(1-p).
func geometric(rng *rand.Rand, lnq float64) int {
	if lnq == 0 {
		return math.MaxInt32
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return int(math.Log(u) / lnq)
}

// pairFromIndex maps a lexicographic pair index to (u, v), u < v.
func pairFromIndex(idx, n int) (int, int) {
	u := 0
	rowLen := n - 1
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return u, u + 1 + idx
}
