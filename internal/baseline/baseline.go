// Package baseline implements the random-perturbation methods the paper
// compares against in Section 7.3 (following Hay et al. and Bonchi et
// al. [4]), together with their adversary models under the same entropy
// measure of identity obfuscation:
//
//   - random sparsification: each edge is deleted independently with
//     probability p;
//   - random perturbation: each edge is deleted with probability p, and
//     each non-edge is added with probability p|E|/(C(n,2)-|E|), keeping
//     the expected edge count unchanged.
//
// Both publish a *certain* graph. The adversary, knowing the mechanism
// and p, computes X_u(ω) = Pr(published degree of u | original degree
// ω) from the degree-transition law of the mechanism (Binomial thinning,
// plus Binomial additions for perturbation); normalizing columns and
// taking entropies is then exactly the machinery of package adversary,
// which is how Figure 4 matches a perturbation p to an obfuscation
// (k, ε).
package baseline

import (
	"math/rand"

	"uncertaingraph/internal/graph"
)

// Sparsify publishes g with each edge independently removed with
// probability p.
func Sparsify(g *graph.Graph, p float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices())
	g.ForEachEdge(func(u, v int) {
		if rng.Float64() >= p {
			b.AddEdge(u, v)
		}
	})
	return b.Build()
}

// AddProbability returns the non-edge addition probability of random
// perturbation, p*|E| / (C(n,2) - |E|), which keeps the expected number
// of edges equal to |E|.
func AddProbability(g *graph.Graph, p float64) float64 {
	n := g.NumVertices()
	nonEdges := float64(n)*float64(n-1)/2 - float64(g.NumEdges())
	if nonEdges <= 0 {
		return 0
	}
	return p * float64(g.NumEdges()) / nonEdges
}

// Perturb publishes g with each edge removed with probability p and
// each non-edge added with probability AddProbability(g, p). Non-edge
// enumeration uses geometric skipping over the C(n,2) pair indices, so
// the cost is O(m + added) rather than O(n^2).
func Perturb(g *graph.Graph, p float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices())
	g.ForEachEdge(func(u, v int) {
		if rng.Float64() >= p {
			b.AddEdge(u, v)
		}
	})
	padd := AddProbability(g, p)
	if padd <= 0 {
		return b.Build()
	}
	n := g.NumVertices()
	total := n * (n - 1) / 2
	// Visit each pair with probability padd; pairs that are original
	// edges are skipped, so every non-edge is added independently with
	// exactly padd.
	lnq := log1p(-padd)
	idx := -1
	for {
		idx += 1 + geometric(rng, lnq)
		if idx >= total {
			break
		}
		u, v := pairFromIndex(idx, n)
		if !g.HasEdge(u, v) {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}
