package query

import (
	"fmt"
	"slices"
)

// Results is a completed Run's answer set, detached from the Batch that
// computed it: the registered query list, the merged integer
// accumulators and the run's worlds/convergence outcome. A Batch's own
// accessors delegate to a live (aliasing) view; Snapshot returns a deep
// copy that stays valid after the batch is Reset or returned to a
// BatchPool — the serving layer snapshots a pooled batch's results,
// releases the batch immediately, and renders (or caches) the answer
// from the snapshot. All accessors are read-only, so a snapshot is safe
// for concurrent use; the ranking scratch makes KNearest* the one
// exception (serialize those per Results value).
type Results struct {
	queries   []qmeta
	n         int // graph vertex count (k-NN histograms are d-major over it)
	relHits   []int64
	distDisc  []int64
	distHist  [][]int32
	knnHist   [][]int32
	worldsRun int
	converged bool

	cands []cand // ranking scratch, reused across KNearest* calls
}

// Snapshot deep-copies the last successful Run's results out of the
// batch. It panics before the first Run (or after a cancelled one),
// exactly like the result accessors.
func (b *Batch) Snapshot() *Results {
	v := b.view()
	s := &Results{
		queries:   slices.Clone(v.queries),
		n:         v.n,
		relHits:   slices.Clone(v.relHits),
		distDisc:  slices.Clone(v.distDisc),
		worldsRun: v.worldsRun,
		converged: v.converged,
	}
	s.distHist = cloneHists(v.distHist)
	s.knnHist = cloneHists(v.knnHist)
	return s
}

func cloneHists(hs [][]int32) [][]int32 {
	out := make([][]int32, len(hs))
	for i, h := range hs {
		out[i] = slices.Clone(h)
	}
	return out
}

// view refreshes the batch's embedded results view to alias the current
// merged accumulators and returns it. The view is only valid until the
// next Run or Reset; Snapshot copies it out.
func (b *Batch) view() *Results {
	if !b.ran {
		panic("query: result accessed before Run")
	}
	b.res.queries = b.queries
	b.res.n = b.g.NumVertices()
	b.res.relHits = b.relHits
	b.res.distDisc = b.distDisc
	b.res.distHist = b.distHist
	b.res.knnHist = b.knnHist
	b.res.worldsRun = b.worldsRun
	b.res.converged = b.converged
	return &b.res
}

// MemoryBytes reports the payload bytes the snapshot retains — what a
// result cache should charge an entry that stores it.
func (r *Results) MemoryBytes() int64 {
	total := int64(len(r.queries))*16 + int64(len(r.relHits))*8 + int64(len(r.distDisc))*8
	for _, h := range r.distHist {
		total += int64(len(h)) * 4
	}
	for _, h := range r.knnHist {
		total += int64(len(h)) * 4
	}
	return total
}

// NumQueries returns the number of registered queries the run answered.
func (r *Results) NumQueries() int { return len(r.queries) }

// WorldsRun returns the number of worlds the run sampled: the fixed
// count, or fewer when Tolerance stopped it early.
func (r *Results) WorldsRun() int { return r.worldsRun }

// Converged reports whether every query's relative SEM was inside the
// run's tolerance when it stopped (always false for fixed runs and
// batches carrying a k-NN query).
func (r *Results) Converged() bool { return r.converged }

func (r *Results) query(id int, kind qkind) *qmeta {
	if id < 0 || id >= len(r.queries) {
		panic(fmt.Sprintf("query: id %d out of range", id))
	}
	q := &r.queries[id]
	if q.kind != kind {
		panic(fmt.Sprintf("query: id %d is not a %v query", id, kind))
	}
	return q
}

// Reliability returns the estimated two-terminal reliability of query
// id (registered via AddReliability).
func (r *Results) Reliability(id int) float64 {
	q := r.query(id, qReliability)
	return float64(r.relHits[q.slot]) / float64(r.worldsRun)
}

// DistanceDistribution returns the estimated distribution of
// dist(s, t) — dist[d] = Pr(dist = d) — plus the disconnection
// probability, for query id (registered via AddDistance).
func (r *Results) DistanceDistribution(id int) (dist map[int]float64, disconnected float64) {
	q := r.query(id, qDistance)
	h := r.distHist[q.slot]
	rr := float64(r.worldsRun)
	dist = make(map[int]float64)
	for d, c := range h {
		if c > 0 {
			dist[d] = float64(c) / rr
		}
	}
	return dist, float64(r.distDisc[q.slot]) / rr
}

// MedianDistance returns the count-rule median of dist(s, t) for query
// id (registered via AddDistance); see Batch.MedianDistance.
func (r *Results) MedianDistance(id int) int {
	q := r.query(id, qDistance)
	return medianOfCounts(r.distHist[q.slot], r.worldsRun)
}

// KNearest returns the k vertices with the smallest median distance to
// the query source (excluding the source), ties broken by vertex id,
// for query id (registered via AddKNearest).
func (r *Results) KNearest(id int) []int {
	cands := r.knnRank(id)
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.v
	}
	return out
}

// KNearestWithMedians is KNearest with each neighbour's median distance
// attached.
func (r *Results) KNearestWithMedians(id int) []Neighbor {
	cands := r.knnRank(id)
	out := make([]Neighbor, len(cands))
	for i, c := range cands {
		out[i] = Neighbor{V: c.v, Median: c.median}
	}
	return out
}

// knnRank extracts per-vertex count-rule medians from the query's
// d-major histogram and returns the top k candidates; the returned
// slice aliases the results' ranking scratch.
func (r *Results) knnRank(id int) []cand {
	q := r.query(id, qKNearest)
	h := r.knnHist[q.slot]
	n := r.n
	half := (r.worldsRun + 1) / 2
	maxD := len(h) / n
	r.cands = r.cands[:0]
	for v := 0; v < n; v++ {
		if v == int(q.s) {
			continue
		}
		cum := 0
		for d := 0; d < maxD; d++ {
			if cum += int(h[d*n+v]); cum >= half {
				r.cands = append(r.cands, cand{v: v, median: d})
				break
			}
		}
	}
	sortCands(r.cands)
	if k := int(q.k); k < len(r.cands) {
		return r.cands[:k]
	}
	return r.cands
}
