package query

import (
	"context"
	"testing"

	"uncertaingraph/internal/uncertain"
)

// TestBatchPoolReuseAndBinding covers the serving-layer contract: Get
// hands out batches bound to the pool's graph with the template config
// stamped, Put recycles them, and a recycled batch answers the next
// request identically to a fresh one.
func TestBatchPoolReuseAndBinding(t *testing.T) {
	g := chainGraph(t, 6, 0.7)
	cfg := Config{Worlds: 200, Seed: 9}
	p := NewBatchPool(g, cfg)
	if p.Graph() != g {
		t.Fatal("pool not bound to its graph")
	}

	run := func(b *Batch) float64 {
		t.Helper()
		b.Worlds, b.Seed = cfg.Worlds, cfg.Seed
		i := b.AddReliability(0, 5)
		if err := b.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return b.Reliability(i)
	}

	b1 := p.Get()
	if b1.Graph() != g || b1.Worlds != cfg.Worlds || b1.Seed != cfg.Seed {
		t.Fatalf("Get: graph/config not stamped: worlds=%d seed=%d", b1.Worlds, b1.Seed)
	}
	fresh := run(b1)
	p.Put(b1)

	b2 := p.Get() // very likely b1 recycled; either way must be reset + identical
	if n := b2.NumQueries(); n != 0 {
		t.Fatalf("recycled batch carries %d stale queries", n)
	}
	if got := run(b2); got != fresh {
		t.Errorf("recycled batch answered %v, fresh answered %v", got, fresh)
	}
	p.Put(b2)
}

// TestBatchPoolDropsForeignBatch pins the anti-leakage guard: a batch
// bound to a different graph is never pooled, so Get can only ever
// return batches over this pool's graph.
func TestBatchPoolDropsForeignBatch(t *testing.T) {
	gA := chainGraph(t, 5, 0.5)
	gB := chainGraph(t, 7, 0.5)
	p := NewBatchPool(gA, Config{Worlds: 8, Seed: 1})

	p.Put(nil) // no-op, must not panic
	p.Put(NewBatch(gB, Config{Worlds: 8, Seed: 1}))
	for i := 0; i < 8; i++ {
		if b := p.Get(); b.Graph() != gA {
			t.Fatalf("Get #%d returned a batch bound to a foreign graph", i)
		}
	}
}

// TestBatchPoolShedsOverBudgetOnGet pins that pooling cannot hoard
// memory past the graph's budget: Get stamps the template MemoryBudget
// before Reset, so accumulators a previous request grew above it are
// shed right there, not retained across requests.
func TestBatchPoolShedsOverBudgetOnGet(t *testing.T) {
	g := chainGraph(t, 16, 0.5)
	budget := WorstCaseAccumBytes(16, 1, 1)
	p := NewBatchPool(g, Config{Worlds: 16, Seed: 3, MemoryBudget: budget})

	// Grow a batch's accumulators well past the budget by bypassing the
	// template (as a request with a pinned larger budget would).
	b := p.Get()
	b.MemoryBudget = 0 // unlimited for this request
	for s := 0; s < 8; s++ {
		b.AddKNearest(s, 3)
	}
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if grown := b.AccumulatorBytes(); grown <= budget {
		t.Fatalf("fixture too small: grew only %d bytes, budget %d", grown, budget)
	}
	p.Put(b)

	got := p.Get()
	if got.MemoryBudget != budget {
		t.Errorf("Get stamped MemoryBudget %d, want template %d", got.MemoryBudget, budget)
	}
	if kept := got.AccumulatorBytes(); kept > budget {
		t.Errorf("recycled batch retains %d accumulator bytes, budget %d", kept, budget)
	}
}

// TestFootprintBytesMatchesLayout ties the serving layer's residency
// accounting to the columnar graph layout: pairs are 16 bytes
// (4+4 endpoints + 8 probability), incidence offsets 8, incidence
// entries 4 (two per pair).
func TestFootprintBytesMatchesLayout(t *testing.T) {
	g, err := uncertain.New(5, []uncertain.Pair{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.5}, {U: 2, V: 3, P: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 pairs ×16 + (5+1) offsets ×8 + 6 incidence entries ×4.
	if got, want := g.FootprintBytes(), int64(3*16+6*8+6*4); got != want {
		t.Errorf("FootprintBytes = %d, want %d", got, want)
	}
	if got := g.MappedBytes(); got != 0 {
		t.Errorf("heap graph MappedBytes = %d, want 0", got)
	}
	empty, err := uncertain.New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := empty.FootprintBytes(), int64(3*8); got != want {
		t.Errorf("empty graph FootprintBytes = %d, want %d (offsets only)", got, want)
	}
}
