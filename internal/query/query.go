// Package query answers analytical queries on published uncertain
// graphs, the consumption side of the paper's proposal: Section 1
// argues an uncertain publication is useful precisely because the
// uncertain-graph literature (reliability, k-nearest-neighbours,
// shortest paths — Potamias et al., Jin et al., cited in §1 and §6)
// can run on it directly.
//
// All queries are possible-world Monte Carlo with Hoeffding-bounded
// sample sizes (paper Lemma 2 / Corollary 1): indicators and bounded
// statistics concentrate after r = ln(2/δ)/(2ε²) worlds.
package query

import (
	"math/rand"
	"sort"

	"uncertaingraph/internal/bfs"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/mathx"
	"uncertaingraph/internal/uncertain"
)

// Engine runs world-sampling queries over one uncertain graph.
type Engine struct {
	G *uncertain.Graph
	// Worlds is the Monte-Carlo sample size (0 selects the Hoeffding
	// size for ±0.05 at 95% confidence on indicator statistics, 738).
	Worlds int
	// Rng drives the sampling; nil selects a fixed seed.
	Rng *rand.Rand

	// sampler lazily holds the reusable world buffers: queries walk
	// each world transiently, so one set of CSR buffers serves every
	// world of every query on this engine.
	sampler *uncertain.Sampler
}

// world materializes the next possible world into the engine's
// reusable buffers; the result is valid until the next call. The
// sampler is rebuilt if the caller re-points G at a different graph.
func (e *Engine) world(rng *rand.Rand) *graph.Graph {
	if e.sampler == nil || e.sampler.Graph() != e.G {
		e.sampler = e.G.NewSampler()
	}
	return e.sampler.Sample(rng)
}

func (e *Engine) worlds() int {
	if e.Worlds > 0 {
		return e.Worlds
	}
	return mathx.HoeffdingSampleSize(0, 1, 0.05, 0.05)
}

func (e *Engine) rng() *rand.Rand {
	if e.Rng != nil {
		return e.Rng
	}
	return rand.New(rand.NewSource(1))
}

// Reliability estimates the two-terminal reliability Pr(s ~ t): the
// probability that s and t are connected in a possible world.
func (e *Engine) Reliability(s, t int) float64 {
	rng := e.rng()
	r := e.worlds()
	hits := 0
	for i := 0; i < r; i++ {
		w := e.world(rng)
		if connected(w, s, t) {
			hits++
		}
	}
	return float64(hits) / float64(r)
}

// DistanceDistribution estimates the distribution of dist(s, t) over
// possible worlds: dist[d] = Pr(dist(s,t) = d), plus the probability of
// disconnection. This is the primitive behind the median-distance and
// majority-distance semantics used for k-NN on uncertain graphs.
func (e *Engine) DistanceDistribution(s, t int) (dist map[int]float64, disconnected float64) {
	rng := e.rng()
	r := e.worlds()
	counts := make(map[int]int)
	discon := 0
	for i := 0; i < r; i++ {
		w := e.world(rng)
		d := bfs.FromSource(w, s)[t]
		if d < 0 {
			discon++
		} else {
			counts[d]++
		}
	}
	dist = make(map[int]float64, len(counts))
	for d, c := range counts {
		dist[d] = float64(c) / float64(r)
	}
	return dist, float64(discon) / float64(r)
}

// MedianDistance returns the median of dist(s, t) over possible worlds,
// with disconnection treated as +infinity (returned as -1 when the
// median itself is a disconnection) — the robust distance of Potamias
// et al.
func (e *Engine) MedianDistance(s, t int) int {
	dist, _ := e.DistanceDistribution(s, t)
	// Walk distances in increasing order until half the mass is covered.
	maxD := 0
	for d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	var cum float64
	for d := 0; d <= maxD; d++ {
		cum += dist[d]
		if cum >= 0.5 {
			return d
		}
	}
	return -1
}

// ExpectedDegree returns E[deg(v)], exact (sum of incident
// probabilities).
func (e *Engine) ExpectedDegree(v int) float64 { return e.G.ExpectedDegree(v) }

// KNearest returns the k vertices with the smallest median distance to
// s (excluding s), breaking ties by vertex id — majority-distance k-NN
// over the uncertain graph. The implementation samples worlds once and
// reuses the per-world BFS trees for all candidates.
func (e *Engine) KNearest(s, k int) []int {
	rng := e.rng()
	r := e.worlds()
	n := e.G.NumVertices()
	// distSamples[v] collects dist(s,v) per world (-1 disconnected).
	counts := make([][]int, n) // counts[v][d] occurrences; index maxD+1 = disconnected
	for i := 0; i < r; i++ {
		w := e.world(rng)
		dists := bfs.FromSource(w, s)
		for v, d := range dists {
			if counts[v] == nil {
				counts[v] = make([]int, n+1)
			}
			if d < 0 {
				counts[v][n]++
			} else {
				counts[v][d]++
			}
		}
	}
	cands := make([]cand, 0, n-1)
	for v := 0; v < n; v++ {
		if v == s || counts[v] == nil {
			continue
		}
		med := medianOf(counts[v], r, n)
		if med >= 0 {
			cands = append(cands, cand{v: v, median: med})
		}
	}
	sortCands(cands)
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].v
	}
	return out
}

// medianOf returns the median distance given occurrence counts, with
// the disconnection bucket at index n sorted last; -1 when the median
// is a disconnection.
func medianOf(counts []int, r, n int) int {
	half := (r + 1) / 2
	cum := 0
	for d := 0; d < n; d++ {
		cum += counts[d]
		if cum >= half {
			return d
		}
	}
	return -1
}

// cand is a k-NN candidate: a vertex and its median distance.
type cand struct {
	v      int
	median int
}

func sortCands(cands []cand) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].median != cands[j].median {
			return cands[i].median < cands[j].median
		}
		return cands[i].v < cands[j].v
	})
}

func connected(w interface {
	Neighbors(int) []int32
	NumVertices() int
}, s, t int) bool {
	if s == t {
		return true
	}
	n := w.NumVertices()
	seen := make([]bool, n)
	stack := []int32{int32(s)}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range w.Neighbors(int(u)) {
			if int(v) == t {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}
