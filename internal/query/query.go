// Package query answers analytical queries on published uncertain
// graphs, the consumption side of the paper's proposal: Section 1
// argues an uncertain publication is useful precisely because the
// uncertain-graph literature (reliability, k-nearest-neighbours,
// shortest paths — Potamias et al., Jin et al., cited in §1 and §6)
// can run on it directly.
//
// All queries are possible-world Monte Carlo with Hoeffding-bounded
// sample sizes (paper Lemma 2 / Corollary 1): indicators and bounded
// statistics concentrate after r = ln(2/δ)/(2ε²) worlds.
//
// Two entry styles are provided. The Batch engine is the serving path:
// it samples each world once and evaluates many queries against it,
// sharing one BFS per distinct source per world, with zero heap
// allocations in the steady-state world loop. The Engine methods are
// the one-shot convenience layer; each call runs a single-query batch
// on its own derived world stream.
//
// Every median in this package — MedianDistance and the k-NN ranking
// alike — uses the same count-based rule: the smallest distance whose
// cumulative world count reaches ceil(r/2), with the disconnection
// bucket (+infinity) sorted last. The rule is exact integer
// arithmetic, so it cannot drift from float accumulation the way a
// "cumulative probability >= 0.5" walk does.
package query

import (
	"math/rand"

	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/uncertain"
)

// Engine runs world-sampling queries over one uncertain graph: the
// one-query-at-a-time layer on top of Batch. It is a documented shim —
// every method registers a single query on the engine's reusable Batch
// and runs it without cancellation; new code should drive a Batch
// directly (register queries, Run(ctx), read results) and gain
// request-scoped cancellation plus one-BFS-per-source sharing across
// queries.
//
// Deprecated: use Batch. Engine remains for one release of
// compatibility.
type Engine struct {
	G *uncertain.Graph
	// Worlds is the Monte-Carlo sample size (0 selects the Hoeffding
	// size for ±0.05 at 95% confidence on indicator statistics, 738).
	Worlds int
	// Rng, when non-nil, seeds each query's world stream by one Int63
	// draw per call, so a run is replayable from the generator's
	// initial state.
	Rng *rand.Rand
	// Seed is the base seed used when Rng is nil: the i-th query on
	// the engine samples the stream randx.Derive(Seed, i), so
	// successive queries are reproducible yet decorrelated instead of
	// replaying identical worlds.
	Seed int64
	// Workers bounds concurrent world evaluations per query (<= 0
	// selects GOMAXPROCS); results are identical for every value.
	Workers int

	// calls counts queries served, indexing the derived streams.
	calls uint64
	// batch is the reusable single-query batch: world buffers, BFS
	// scratch and accumulators persist across calls, so steady-state
	// scalar queries allocate nothing. Rebuilt if the caller re-points
	// G at a different graph.
	batch *Batch
}

// prepareBatch readies the engine's reusable batch for one fresh query
// with the next derived world stream.
func (e *Engine) prepareBatch() *Batch {
	if e.batch == nil || e.batch.g != e.G {
		e.batch = NewBatch(e.G, Config{})
	}
	b := e.batch
	b.Reset()
	b.Worlds = e.worlds()
	b.Workers = e.Workers
	b.Seed = e.nextSeed()
	return b
}

// nextSeed returns the world-stream seed for the next query: one Int63
// draw from the explicit Rng when set, otherwise the call-indexed
// derivation from the fixed engine seed.
func (e *Engine) nextSeed() int64 {
	if e.Rng != nil {
		return e.Rng.Int63()
	}
	seed := randx.Derive(e.Seed, e.calls)
	e.calls++
	return seed
}

func (e *Engine) worlds() int {
	if e.Worlds > 0 {
		return e.Worlds
	}
	return DefaultWorlds()
}

// Reliability estimates the two-terminal reliability Pr(s ~ t): the
// probability that s and t are connected in a possible world.
func (e *Engine) Reliability(s, t int) float64 {
	b := e.prepareBatch()
	id := b.AddReliability(s, t)
	b.MustRun()
	return b.Reliability(id)
}

// DistanceDistribution estimates the distribution of dist(s, t) over
// possible worlds: dist[d] = Pr(dist(s,t) = d), plus the probability of
// disconnection. This is the primitive behind the median-distance and
// majority-distance semantics used for k-NN on uncertain graphs.
func (e *Engine) DistanceDistribution(s, t int) (dist map[int]float64, disconnected float64) {
	b := e.prepareBatch()
	id := b.AddDistance(s, t)
	b.MustRun()
	return b.DistanceDistribution(id)
}

// MedianDistance returns the median of dist(s, t) over possible worlds,
// with disconnection treated as +infinity (returned as -1 when the
// median itself is a disconnection) — the robust distance of Potamias
// et al. The median follows the count rule shared with KNearest (see
// the package comment), not a float-mass walk.
func (e *Engine) MedianDistance(s, t int) int {
	b := e.prepareBatch()
	id := b.AddDistance(s, t)
	b.MustRun()
	return b.MedianDistance(id)
}

// ExpectedDegree returns E[deg(v)], exact (sum of incident
// probabilities).
func (e *Engine) ExpectedDegree(v int) float64 { return e.G.ExpectedDegree(v) }

// KNearest returns the k vertices with the smallest median distance to
// s (excluding s), breaking ties by vertex id — median-distance k-NN
// over the uncertain graph. The implementation samples worlds once and
// reuses the per-world BFS trees for all candidates.
func (e *Engine) KNearest(s, k int) []int {
	b := e.prepareBatch()
	id := b.AddKNearest(s, k)
	b.MustRun()
	return b.KNearest(id)
}
