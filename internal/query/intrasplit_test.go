package query

import (
	"context"
	"reflect"
	"testing"

	"uncertaingraph/internal/randx"
)

// TestIntraWorkersSplit pins the budget-split rule: the whole budget
// goes across worlds while distinct sources × queued worlds can absorb
// it, and spills inside the walks when they cannot.
func TestIntraWorkersSplit(t *testing.T) {
	ug := dblpUncertain(t)
	b := NewBatch(ug, Config{})
	b.AddReliability(0, 5) // one distinct source
	cases := []struct {
		total, segWorkers, jobs, want int
	}{
		{8, 8, 738, 1},  // worlds plentiful: all budget across worlds
		{8, 8, 4, 2},    // 1 source × 4 worlds < 8: 2 workers per walk
		{64, 64, 1, 64}, // single world: whole budget inside it
		{1, 1, 1, 1},    // no budget to spill
		{8, 8, 0, 1},    // empty segment degenerates safely
	}
	for _, c := range cases {
		if got := b.intraWorkers(c.total, c.segWorkers, c.jobs); got != c.want {
			t.Errorf("intraWorkers(total=%d, segWorkers=%d, jobs=%d) = %d, want %d",
				c.total, c.segWorkers, c.jobs, got, c.want)
		}
	}
	b.AddReliability(1, 5)
	b.AddReliability(2, 5) // three distinct sources now
	if got := b.intraWorkers(8, 8, 4); got != 1 {
		t.Errorf("3 sources × 4 worlds >= 8 should stay across-worlds, got intra %d", got)
	}
}

// TestBatchIntraWorldBitIdentity is the end-to-end pin for the
// worlds-scarce regime: a batch whose worker budget exceeds
// sources × worlds (so the frontier engine runs inside every walk)
// must answer bit-identically to the sequential configuration, across
// reliability, distance and k-NN queries.
func TestBatchIntraWorldBitIdentity(t *testing.T) {
	rng := randx.New(31)
	for trial := 0; trial < 8; trial++ {
		ug := randomUncertainGraph(t, rng, 40+rng.Intn(60))
		n := ug.NumVertices()
		type answers struct {
			rel, disc float64
			dd        map[int]float64
			med       int
			knn       []int
		}
		var got []answers
		for _, workers := range []int{1, 4, 16} {
			b := NewBatch(ug, Config{Worlds: 2, Seed: int64(trial), Workers: workers})
			r1 := b.AddReliability(0, n-1)
			d1 := b.AddDistance(0, n/2)
			k1 := b.AddKNearest(0, 5)
			if err := b.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if workers > 2 && b.intra < 2 {
				t.Fatalf("trial %d workers %d: intra = %d, split never engaged", trial, workers, b.intra)
			}
			dd, disc := b.DistanceDistribution(d1)
			got = append(got, answers{
				rel:  b.Reliability(r1),
				disc: disc,
				dd:   dd,
				med:  b.MedianDistance(d1),
				knn:  b.KNearest(k1),
			})
		}
		for i := 1; i < len(got); i++ {
			if !reflect.DeepEqual(got[0], got[i]) {
				t.Fatalf("trial %d: answers diverge between worker configs 0 and %d", trial, i)
			}
		}
	}
}
