package query

// Adaptive-stopping tests for the batch engine: with Tolerance set,
// Run walks a deterministic block schedule and stops at the first
// barrier where every registered query's relative SEM is inside the
// tolerance. Stopping must follow the same discipline as the sampling
// pipeline — the decision is computed from merged integer counts in a
// canonical order, so the stopping point and every answer are
// bit-identical for all Workers values, and a stopped run is the exact
// prefix of a fixed full-budget run.

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// adaptiveAnswers runs one reliability + one distance query under cfg
// and returns the comparable answers plus the run length.
func adaptiveAnswers(t *testing.T, cfg Config) (rel float64, dist map[int]float64, disc float64, worlds int, converged bool) {
	t.Helper()
	b := NewBatch(dblpUncertain(t), cfg)
	idRel := b.AddReliability(0, 13)
	idDist := b.AddDistance(0, 13)
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	d, dc := b.DistanceDistribution(idDist)
	return b.Reliability(idRel), d, dc, b.WorldsRun(), b.Converged()
}

// TestBatchAdaptiveNeverConvergingMatchesFixedRun: an unreachably
// tight tolerance walks the block schedule to the full budget and must
// reproduce the fixed run bit-identically.
func TestBatchAdaptiveNeverConvergingMatchesFixedRun(t *testing.T) {
	fixed := Config{Worlds: 70, Seed: 5}
	adaptive := fixed
	adaptive.Tolerance = math.SmallestNonzeroFloat64

	relF, distF, discF, worldsF, convF := adaptiveAnswers(t, fixed)
	relA, distA, discA, worldsA, convA := adaptiveAnswers(t, adaptive)
	if worldsF != 70 || worldsA != 70 {
		t.Fatalf("worlds run: fixed %d adaptive %d, want 70/70", worldsF, worldsA)
	}
	if relF != relA || discF != discA || !reflect.DeepEqual(distF, distA) {
		t.Error("block-scheduled full run differs from fixed run")
	}
	if convF || convA {
		t.Errorf("converged: fixed %v adaptive %v, want false/false", convF, convA)
	}
}

// TestBatchAdaptivePrefixBitIdentity: a converging adaptive run stops
// short of its budget at the same point for Workers ∈ {1, 4}, with
// identical answers, and a fixed run of exactly the prefix length
// reproduces them bit-for-bit.
func TestBatchAdaptivePrefixBitIdentity(t *testing.T) {
	base := Config{Worlds: 2000, Seed: 5, Tolerance: 0.3}

	cfg1 := base
	cfg1.Workers = 1
	cfg4 := base
	cfg4.Workers = 4
	rel1, dist1, disc1, worlds1, conv1 := adaptiveAnswers(t, cfg1)
	rel4, dist4, disc4, worlds4, conv4 := adaptiveAnswers(t, cfg4)
	if worlds1 >= 2000 || worlds1 < 2 {
		t.Fatalf("adaptive batch used %d worlds, want an early stop within [2, 2000)", worlds1)
	}
	if !conv1 {
		t.Error("early-stopped batch reports converged=false")
	}
	if worlds1 != worlds4 || rel1 != rel4 || disc1 != disc4 || conv1 != conv4 || !reflect.DeepEqual(dist1, dist4) {
		t.Errorf("adaptive batch differs across worker counts: worlds %d/%d", worlds1, worlds4)
	}

	relP, distP, discP, worldsP, _ := adaptiveAnswers(t, Config{Worlds: worlds1, Seed: 5})
	if worldsP != worlds1 {
		t.Fatalf("prefix run used %d worlds, want %d", worldsP, worlds1)
	}
	if relP != rel1 || discP != disc1 || !reflect.DeepEqual(distP, dist1) {
		t.Error("stopped batch is not a bit-identical prefix of the fixed run")
	}
}

// TestBatchAdaptiveKNNRunsFullBudget: a k-NN ranking has no scalar
// confidence interval, so a batch carrying one must run its whole
// budget and never report convergence.
func TestBatchAdaptiveKNNRunsFullBudget(t *testing.T) {
	b := NewBatch(dblpUncertain(t), Config{Worlds: 100, Seed: 5, Tolerance: 0.5})
	b.AddReliability(0, 13)
	b.AddKNearest(3, 5)
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if b.WorldsRun() != 100 {
		t.Errorf("k-NN batch used %d worlds, want the full 100", b.WorldsRun())
	}
	if b.Converged() {
		t.Error("k-NN batch reports converged=true")
	}
}

// TestBatchAdaptiveCancelRerunIdentity: cancelling an adaptive run
// mid-flight leaves the batch un-ran, and a subsequent Run reproduces
// a never-cancelled run bit-identically.
func TestBatchAdaptiveCancelRerunIdentity(t *testing.T) {
	g := dblpUncertain(t)
	cfg := Config{Worlds: 2000, Seed: 5, Tolerance: 0.05}

	ref := NewBatch(g, cfg)
	refID := ref.AddReliability(0, 13)
	if err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	b := NewBatch(g, cfg)
	id := b.AddReliability(0, 13)
	ctx, cancel := context.WithCancel(context.Background())
	b.Progress = func(done, total int) {
		if done >= 5 {
			cancel()
		}
	}
	if err := b.Run(ctx); err == nil {
		t.Fatal("cancelled adaptive run returned nil error")
	}
	if b.WorldsRun() != 0 || b.Converged() {
		t.Errorf("cancelled batch exposes results: worlds %d converged %v", b.WorldsRun(), b.Converged())
	}
	b.Progress = nil
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if b.WorldsRun() != ref.WorldsRun() || b.Reliability(id) != ref.Reliability(refID) {
		t.Error("re-run after cancellation differs from a never-cancelled run")
	}
}

// TestBatchResetClearsAdaptiveState: a pooled batch must not leak the
// previous request's run length or convergence flag through Reset.
func TestBatchResetClearsAdaptiveState(t *testing.T) {
	b := NewBatch(dblpUncertain(t), Config{Worlds: 2000, Seed: 5, Tolerance: 0.05})
	b.AddReliability(0, 13)
	b.MustRun()
	if b.WorldsRun() == 0 {
		t.Fatal("run did not record its world count")
	}
	b.Reset()
	if b.WorldsRun() != 0 || b.Converged() {
		t.Errorf("Reset kept adaptive state: worlds %d converged %v", b.WorldsRun(), b.Converged())
	}
}
