package query

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"

	"uncertaingraph/internal/bfs"
	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/mathx"
	"uncertaingraph/internal/parallel"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/uncertain"
)

// Config tunes a Batch run.
type Config struct {
	// Worlds is the Monte-Carlo sample size shared by every query in
	// the batch (0 selects the Hoeffding size for ±0.05 at 95%
	// confidence on indicator statistics, 738).
	Worlds int
	// Seed determines the sampled worlds: world i's RNG stream depends
	// only on (Seed, i), so results are reproducible and identical for
	// every Workers value.
	Seed int64
	// Workers is the total worker budget (<= 0 selects GOMAXPROCS),
	// spent across worlds while worlds are plentiful — each world
	// worker owns one sampler, one reseedable RNG and one BFS scratch —
	// and spilled into the worlds themselves (parallel
	// direction-optimizing BFS) once distinct sources × queued worlds
	// drops below it. Per-world contributions are integer counts and
	// the parallel walk is bit-identical to the sequential one, so the
	// merged results are bit-identical for every value.
	Workers int
	// MemoryBudget, when positive, bounds the batch's accumulator
	// memory in bytes: Run rejects a query set whose worst-case k-NN
	// histogram footprint exceeds it (see WorstCaseAccumBytes) with a
	// *BudgetError wrapping ErrOverBudget, and Reset sheds retained
	// high-water histograms above it so a pooled batch cannot pin one
	// huge request's buffers forever. Zero disables both checks.
	MemoryBudget int64
	// Tolerance, when positive, makes Run adaptive: worlds are sampled
	// in fixed blocks, and the run stops at the first block barrier
	// where every registered query's relative SEM is at most Tolerance
	// (Worlds stays the budget the run may stop short of). Reliability
	// queries converge on their indicator mean, distance queries on the
	// per-world distance with disconnection mapped to the vertex count
	// (a finite upper bound on any world distance); k-NN rankings have
	// no scalar confidence interval, so a batch carrying one never
	// stops early. Zero disables adaptive stopping entirely.
	Tolerance float64
	// Progress, when non-nil, is invoked after each world completes
	// with the number of finished worlds and the total. Workers invoke
	// it concurrently; implementations must be safe for concurrent use
	// and must not block for long. Progress observation never affects
	// results.
	Progress func(done, total int)
}

// Batch evaluates many queries against one shared set of sampled
// possible worlds: each world is materialized once, one BFS runs per
// distinct query source per world, and every query with that source
// consumes the same distance array. This is the serving shape — a
// request carrying q queries costs r worlds + r·|sources| BFS runs
// instead of the q·r worlds the one-query-at-a-time Engine methods
// would spend, and the per-world loop allocates nothing once the
// buffers have grown (every accumulator is an integer count).
//
// Each source's BFS is target-resolved: a source carrying only
// reliability and distance queries stops its walk as soon as every
// registered target has been assigned a distance (generalizing the
// pre-batch connected() early exit), while a source with a k-NN query
// still scans its whole component — the per-vertex histogram needs
// every distance. The early exit consumes no randomness and BFS
// assigns final distances at discovery, so answers are bit-identical
// to the full-component walk for every Workers value.
//
// A Batch is reusable: Reset clears the registered queries while
// keeping the sampling template, worker buffers and accumulators, so a
// long-lived server pools Batches across requests. A Batch must not be
// used concurrently; concurrency lives inside Run (the Workers fan-out)
// and across independent Batches.
type Batch struct {
	// Worlds, Seed, Workers, Progress, MemoryBudget and Tolerance may
	// be adjusted between Run calls; see Config for their meaning.
	Worlds       int
	Seed         int64
	Workers      int
	Progress     func(done, total int)
	MemoryBudget int64
	Tolerance    float64

	g *uncertain.Graph

	// Query registry.
	queries           []qmeta
	nrel, ndist, nknn int
	sources           []int32 // distinct BFS sources, first-appearance order
	srcIndex          map[int32]int
	srcQueries        [][]int32 // per source slot: attached rel/dist query ids
	srcTargets        [][]int32 // per source slot: rel/dist target vertices
	knnSlots          []int32   // per source slot: shared k-NN histogram slot, -1 if none

	// fullBFS forces every per-world BFS to scan the source's whole
	// component, disabling the target-resolved early exit. It exists so
	// tests can pin that early-exit results are bit-identical to the
	// full reference walk.
	fullBFS bool

	// Run machinery, lazily built and reused across runs.
	proto  *uncertain.Sampler
	master *rand.Rand
	seeds  []int64
	ws     []*worker

	// intra is the per-BFS worker budget of the current dispatch
	// segment: 1 (sequential walks) while distinct sources × queued
	// worlds can absorb the whole worker budget, and the leftover
	// budget per world-worker once they cannot — the regime adaptive
	// stopping creates, where a block's last worlds would otherwise
	// leave cores idle. Written only between dispatch barriers.
	intra int

	// Merged results of the last Run.
	relHits   []int64
	distDisc  []int64
	distHist  [][]int32
	knnHist   [][]int32 // d-major: hist[d*n + v]
	worldsRun int
	converged bool
	ran       bool

	// res is the live results view the accessors delegate through; its
	// ranking scratch (an O(n) buffer bounded by the graph, not the
	// request) persists across runs and Resets.
	res Results
}

type qkind uint8

const (
	qReliability qkind = iota
	qDistance
	qKNearest
)

// qmeta is one registered query: its kind, its slot in the per-kind
// accumulator arrays, and its arguments.
type qmeta struct {
	kind    qkind
	slot    int32
	s, t, k int32
}

// worker bundles the per-goroutine state of one Run: a world sampler
// cloned from the batch's template, a reseedable RNG, the shared BFS
// scratch, and integer accumulators for every registered query.
type worker struct {
	sampler *uncertain.Sampler
	rng     *rand.Rand
	scratch *bfs.Scratch
	rel     []int64
	disc    []int64
	distH   [][]int32
	knnH    [][]int32
}

// NewBatch returns an empty batch over g. The sampling template and
// all per-worker buffers are built lazily on the first Run.
func NewBatch(g *uncertain.Graph, cfg Config) *Batch {
	return &Batch{
		g:            g,
		Worlds:       cfg.Worlds,
		Seed:         cfg.Seed,
		Workers:      cfg.Workers,
		Progress:     cfg.Progress,
		MemoryBudget: cfg.MemoryBudget,
		Tolerance:    cfg.Tolerance,
		srcIndex:     make(map[int32]int),
	}
}

// Graph returns the uncertain graph the batch queries.
func (b *Batch) Graph() *uncertain.Graph { return b.g }

// NumQueries returns the number of registered queries.
func (b *Batch) NumQueries() int { return len(b.queries) }

// Reset clears the registered queries while keeping every buffer, so a
// serving loop can reuse one Batch across requests without
// re-allocating accumulators or re-sorting the sampling template.
// When a MemoryBudget is set and the retained accumulators exceed it —
// a pooled batch that served one huge k-NN request keeps its
// high-water histograms otherwise — Reset sheds them back to zero; the
// sampling template, BFS scratch and O(n) ranking buffers (all bounded
// by the graph, not the request) are always kept.
func (b *Batch) Reset() {
	b.queries = b.queries[:0]
	b.nrel, b.ndist, b.nknn = 0, 0, 0
	b.sources = b.sources[:0]
	clear(b.srcIndex)
	for i := range b.srcQueries {
		b.srcQueries[i] = b.srcQueries[i][:0]
	}
	for i := range b.srcTargets {
		b.srcTargets[i] = b.srcTargets[i][:0]
	}
	for i := range b.knnSlots {
		b.knnSlots[i] = -1
	}
	if b.MemoryBudget > 0 && b.AccumulatorBytes() > b.MemoryBudget {
		b.shed()
	}
	b.ran = false
}

// shed drops every request-shaped accumulator — the per-worker
// reliability/disconnection counters and distance/k-NN histograms,
// plus the merged views aliasing worker 0's — so a post-shed batch
// retains zero accumulator bytes. The next Run regrows exactly what
// its queries need.
func (b *Batch) shed() {
	for _, w := range b.ws {
		w.rel, w.disc = nil, nil
		w.distH, w.knnH = nil, nil
	}
	b.relHits, b.distDisc = nil, nil
	b.distHist, b.knnHist = nil, nil
}

// AccumulatorBytes reports the payload bytes currently retained by the
// batch's per-worker query accumulators — the quantity Reset compares
// against MemoryBudget.
func (b *Batch) AccumulatorBytes() int64 {
	var total int64
	for _, w := range b.ws {
		total += int64(cap(w.rel))*8 + int64(cap(w.disc))*8
		// Count up to the outer capacity: a shrunken run hides its
		// high-water histograms behind the truncated length, but they
		// are still retained.
		for _, h := range w.distH[:cap(w.distH)] {
			total += int64(cap(h)) * 4
		}
		for _, h := range w.knnH[:cap(w.knnH)] {
			total += int64(cap(h)) * 4
		}
	}
	return total
}

// AddReliability registers a two-terminal reliability query Pr(s ~ t)
// and returns its query id.
func (b *Batch) AddReliability(s, t int) int {
	b.checkVertex(s)
	b.checkVertex(t)
	slot := b.nrel
	b.nrel++
	return b.add(qmeta{kind: qReliability, slot: int32(slot), s: int32(s), t: int32(t)})
}

// AddDistance registers a distance-distribution query for the pair
// (s, t) and returns its query id; the result answers the full
// distribution, the disconnection probability and the count-rule
// median.
func (b *Batch) AddDistance(s, t int) int {
	b.checkVertex(s)
	b.checkVertex(t)
	slot := b.ndist
	b.ndist++
	return b.add(qmeta{kind: qDistance, slot: int32(slot), s: int32(s), t: int32(t)})
}

// AddKNearest registers a median-distance k-nearest-neighbour query
// from s and returns its query id. The per-vertex distance histogram
// depends only on the source, so k-NN queries sharing a source share
// one histogram slot (filled once per world) and differ only at
// ranking time.
func (b *Batch) AddKNearest(s, k int) int {
	b.checkVertex(s)
	if k < 0 {
		panic(fmt.Sprintf("query: negative k %d", k))
	}
	// A k beyond the vertex count returns every candidate anyway; clamp
	// before the int32 narrowing below, which a huge k (e.g. a JSON
	// 2^63-1 through qserve) would otherwise wrap negative — knnRank
	// would slice cands[:-1] and panic.
	if n := b.g.NumVertices(); k > n {
		k = n
	}
	si := b.sourceSlot(int32(s))
	slot := b.knnSlots[si]
	if slot < 0 {
		slot = int32(b.nknn)
		b.nknn++
		b.knnSlots[si] = slot
	}
	id := len(b.queries)
	b.queries = append(b.queries, qmeta{kind: qKNearest, slot: slot, s: int32(s), k: int32(k)})
	b.ran = false
	return id
}

func (b *Batch) checkVertex(v int) {
	if v < 0 || v >= b.g.NumVertices() {
		panic(fmt.Sprintf("query: vertex %d out of range [0,%d)", v, b.g.NumVertices()))
	}
}

func (b *Batch) add(q qmeta) int {
	id := len(b.queries)
	b.queries = append(b.queries, q)
	si := b.sourceSlot(q.s)
	b.srcQueries[si] = append(b.srcQueries[si], int32(id))
	b.srcTargets[si] = append(b.srcTargets[si], q.t)
	b.ran = false
	return id
}

// sourceSlot interns s into the distinct-source table; all queries
// sharing a source share one BFS per world.
func (b *Batch) sourceSlot(s int32) int {
	if si, ok := b.srcIndex[s]; ok {
		return si
	}
	si := len(b.sources)
	b.sources = append(b.sources, s)
	if len(b.srcQueries) <= si {
		b.srcQueries = append(b.srcQueries, nil)
	}
	if len(b.srcTargets) <= si {
		b.srcTargets = append(b.srcTargets, nil)
	}
	if len(b.knnSlots) <= si {
		b.knnSlots = append(b.knnSlots, -1)
	}
	b.srcIndex[s] = si
	return si
}

// ErrOverBudget reports a query set whose worst-case accumulator
// footprint exceeds the configured memory budget. Run returns it
// wrapped in a *BudgetError carrying the exact numbers; test with
// errors.Is.
var ErrOverBudget = errors.New("query: worst-case accumulator footprint exceeds the memory budget")

// BudgetError is the typed rejection of an over-budget Run: the
// registered queries could grow NeedBytes of accumulators, above the
// batch's BudgetBytes. It unwraps to ErrOverBudget.
type BudgetError struct {
	NeedBytes, BudgetBytes int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("%v: worst case %d bytes > budget %d bytes", ErrOverBudget, e.NeedBytes, e.BudgetBytes)
}

func (e *BudgetError) Unwrap() error { return ErrOverBudget }

// WorstCaseAccumBytes bounds the accumulator memory a query set can
// grow on an n-vertex graph: each distinct k-NN source fills one
// d-major histogram of (maxDist+1)·n int32 counters per worker, and
// maxDist+1 <= n, so knnSources × n² × 4 bytes × workers dominates.
// (Reliability and distance accumulators are O(1) and O(n) int32 per
// query — bounded by the query count, not worth budgeting.) qserve's
// validate and Batch.Run both price requests with this bound.
func WorstCaseAccumBytes(n, knnSources, workers int) int64 {
	return int64(knnSources) * int64(workers) * int64(n) * int64(n) * 4
}

// DefaultWorlds returns the Hoeffding sample size used when Worlds is
// unset: 738 worlds for ±0.05 at 95% confidence on indicator
// statistics (paper Lemma 2 / Corollary 1).
func DefaultWorlds() int { return mathx.HoeffdingSampleSize(0, 1, 0.05, 0.05) }

func (b *Batch) worlds() int {
	if b.Worlds > 0 {
		return b.Worlds
	}
	return DefaultWorlds()
}

func (b *Batch) workerCount(jobs int) int { return EffectiveWorkers(b.Workers, jobs) }

// EffectiveWorkers resolves a configured worker bound against a world
// count: <= 0 selects GOMAXPROCS, and a run never uses more workers
// than worlds. Batch.Run and qserve's request pricing share this one
// clamp, so the worker factor validate charges against the memory
// budget is the count Run will actually use.
func EffectiveWorkers(configured, worlds int) int {
	w := configured
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > worlds {
		w = worlds
	}
	if w < 1 {
		w = 1
	}
	return w
}

// adaptiveBlockSize is the number of worlds scanned between the
// convergence checks of an adaptive (Tolerance > 0) Run. Block
// boundaries depend only on the configuration, so the schedule — and
// therefore the stopping point — is deterministic for every Workers
// value.
const adaptiveBlockSize = 32

// Run samples the batch's worlds and evaluates every registered query
// against each, following the same determinism discipline as the
// sampling pipeline: world seeds are pre-derived from Seed for the
// whole world budget (randx.FillWorldSeeds), each world's contribution
// depends only on its seed, and all accumulators are integer counts,
// so results are bit-identical for every Workers value. Run may be
// called again — the same Seed reproduces the same answers, a new Seed
// resamples.
//
// With Tolerance set, Run is adaptive: worlds are scanned in
// adaptiveBlockSize blocks, and the run stops at the first block
// barrier where every registered query's relative SEM is inside the
// tolerance (see Config.Tolerance for the per-kind rules). The
// convergence decision is computed from the merged integer counts in a
// canonical order, so it — and hence WorldsRun — is identical for
// every Workers value, and a stopped run's accumulators are
// bit-identical to the same-length prefix of a fixed full-budget run.
//
// Cancelling ctx aborts the run at world granularity: no new world is
// scanned once ctx is done, in-flight worlds finish, every worker
// goroutine is joined, and ctx.Err() is returned with the batch left
// un-ran (result accessors stay unavailable, no buffers leak). A
// subsequent Run on the same batch re-derives the world seeds and
// resets every accumulator, so it produces results bit-identical to a
// never-cancelled run. A nil ctx never cancels.
func (b *Batch) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Mark the batch un-ran before touching any accumulator: a
	// cancelled re-Run must leave the previous run's (now wiped)
	// results unavailable, not silently readable.
	b.ran = false
	r := b.worlds()
	workers := b.workerCount(r)
	if b.MemoryBudget > 0 {
		if need := WorstCaseAccumBytes(b.g.NumVertices(), b.nknn, workers); need > b.MemoryBudget {
			return &BudgetError{NeedBytes: need, BudgetBytes: b.MemoryBudget}
		}
	}
	b.prepare(workers, r)
	// total is the full configured worker budget, before the
	// worlds-count clamp: the spillover that funds intra-world
	// parallelism when worlds (or sources) are too few to use it.
	total := b.Workers
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	adaptive := b.Tolerance > 0
	block := r
	if adaptive {
		block = adaptiveBlockSize
	}
	done := 0
	for done < r {
		end := done + block
		if end > r {
			end = r
		}
		b.intra = b.intraWorkers(total, workers, end-done)
		if workers == 1 {
			// The serving hot path: kept closure- and channel-free
			// (worker fan-out lives in runParallel, whose closures would
			// otherwise force ctx to escape here) so the steady-state
			// loop performs zero heap allocations.
			w := b.ws[0]
			for i := done; i < end; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				b.scanWorld(w, i)
				if b.Progress != nil {
					b.Progress(i+1, r)
				}
			}
		} else {
			b.runParallel(ctx, workers, done, end, r)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		done = end
		// Never stop on fewer than two worlds: a single sample has no
		// spread, so every query would spuriously report SEM 0.
		if adaptive && done >= 2 && done < r && b.allConverged(workers, done) {
			break
		}
	}
	b.merge(workers)
	b.worldsRun = done
	b.converged = adaptive && b.allConverged(1, done)
	b.ran = true
	return nil
}

// intraWorkers splits the worker budget between the across-worlds and
// within-world axes for one dispatch segment of `jobs` worlds run on
// segWorkers world-goroutines. While distinct sources × queued worlds
// can absorb the whole budget, every BFS stays sequential (intra 1 —
// across-worlds parallelism is contention-free and the per-world loop
// is allocation-free). When it cannot — one large query converging in
// a single adaptive block, a single-world run — the leftover budget
// per world-goroutine goes into each walk via the direction-optimizing
// frontier engine. The split depends only on the configuration and the
// segment shape, never on the schedule, and the frontier walk is
// bit-identical to the sequential one, so answers are unchanged.
func (b *Batch) intraWorkers(total, segWorkers, jobs int) int {
	if jobs < 1 {
		return 1
	}
	if segWorkers > jobs {
		segWorkers = jobs
	}
	if segWorkers < 1 {
		segWorkers = 1
	}
	if len(b.sources)*jobs >= total {
		return 1
	}
	intra := total / segWorkers
	if intra < 1 {
		intra = 1
	}
	return intra
}

// runParallel fans the worlds [base, end) out over the prepared
// workers via the shared ctx-aware dispatch loop: cancellation stops
// dispatch and skips queued worlds, and all worker goroutines have
// exited when it returns — which is what makes the block boundary a
// barrier for the adaptive convergence check.
func (b *Batch) runParallel(ctx context.Context, workers, base, end, total int) {
	var finished atomic.Int64
	_ = parallel.ForWorkers(ctx, end-base, workers, func(k, j int) {
		b.scanWorld(b.ws[k], base+j)
		if b.Progress != nil {
			b.Progress(base+int(finished.Add(1)), total)
		}
	})
}

// allConverged reports whether every registered query's relative SEM
// over the first done worlds is inside b.Tolerance. It reads the live
// per-worker accumulators, so it must only run at a block barrier.
//
// Determinism: every scalar entering a float is first totalled across
// workers in exact integer arithmetic, and the float accumulation then
// walks distances in ascending order — the decision depends only on
// the merged counts, never on which worker scanned which world, so
// identical for every Workers value.
func (b *Batch) allConverged(workers, done int) bool {
	// A k-NN ranking has no scalar confidence interval to test against
	// the tolerance; a batch carrying one runs its full budget.
	if b.nknn > 0 {
		return false
	}
	for slot := 0; slot < b.nrel; slot++ {
		var hits int64
		for k := 0; k < workers; k++ {
			hits += b.ws[k].rel[slot]
		}
		// An indicator's moments coincide: Σx = Σx² = the hit count.
		h := float64(hits)
		if !(mathx.RelativeSEMFromMoments(h, h, done) <= b.Tolerance) {
			return false
		}
	}
	n := float64(b.g.NumVertices())
	for slot := 0; slot < b.ndist; slot++ {
		var disc int64
		maxLen := 0
		for k := 0; k < workers; k++ {
			w := b.ws[k]
			disc += w.disc[slot]
			if l := len(w.distH[slot]); l > maxLen {
				maxLen = l
			}
		}
		var sum, sumsq float64
		for d := 0; d < maxLen; d++ {
			var c int64
			for k := 0; k < workers; k++ {
				if h := b.ws[k].distH[slot]; d < len(h) {
					c += int64(h[d])
				}
			}
			if c == 0 {
				continue
			}
			fd, fc := float64(d), float64(c)
			sum += fd * fc
			sumsq += fd * fd * fc
		}
		// Disconnections enter as distance n — a finite upper bound on
		// any world distance, keeping the statistic Hoeffding-bounded.
		sum += n * float64(disc)
		sumsq += n * n * float64(disc)
		if !(mathx.RelativeSEMFromMoments(sum, sumsq, done) <= b.Tolerance) {
			return false
		}
	}
	return true
}

// WorldsRun returns the number of worlds the last successful Run
// sampled: the fixed count, or fewer when Tolerance stopped the run
// early. It returns 0 before the first Run.
func (b *Batch) WorldsRun() int {
	if !b.ran {
		return 0
	}
	return b.worldsRun
}

// Converged reports whether every registered query's relative SEM was
// inside Tolerance when the last successful Run stopped — false for
// fixed runs (Tolerance 0), for adaptive runs that exhausted their
// world budget short of the tolerance, and for any batch carrying a
// k-NN query.
func (b *Batch) Converged() bool {
	if !b.ran {
		return false
	}
	return b.converged
}

// MustRun is Run without cancellation, for callers that predate the
// context-first API; it cannot fail.
//
// Deprecated: use Run(ctx). MustRun remains for one release of
// compatibility with the pre-context Run() signature.
func (b *Batch) MustRun() { _ = b.Run(context.Background()) }

// prepare refreshes the world-seed table and the per-worker samplers
// and accumulators, reusing every buffer from previous runs.
func (b *Batch) prepare(workers, r int) {
	if cap(b.seeds) < r {
		b.seeds = make([]int64, r)
	}
	b.seeds = b.seeds[:r]
	if b.master == nil {
		b.master = randx.New(b.Seed)
	} else {
		b.master.Seed(b.Seed)
	}
	randx.FillWorldSeeds(b.seeds, b.master)
	b.intra = 1 // Run sets the real split before each dispatch segment
	if b.proto == nil {
		b.proto = b.g.NewSampler()
		b.ws = append(b.ws, &worker{
			sampler: b.proto, rng: randx.New(0), scratch: bfs.NewScratch(),
		})
	}
	for len(b.ws) < workers {
		b.ws = append(b.ws, &worker{
			sampler: b.proto.Clone(), rng: randx.New(0), scratch: bfs.NewScratch(),
		})
	}
	for k := 0; k < workers; k++ {
		b.ws[k].prepare(b.nrel, b.ndist, b.nknn)
	}
}

func (w *worker) prepare(nrel, ndist, nknn int) {
	w.rel = resetCounts64(w.rel, nrel)
	w.disc = resetCounts64(w.disc, ndist)
	w.distH = resetHists(w.distH, ndist)
	w.knnH = resetHists(w.knnH, nknn)
}

func resetCounts64(xs []int64, n int) []int64 {
	if cap(xs) < n {
		xs = make([]int64, n)
	}
	xs = xs[:n]
	clear(xs)
	return xs
}

// resetHists truncates every histogram to empty after zeroing its full
// capacity, establishing the invariant growCounts relies on: any
// region re-exposed by reslicing within capacity is already zero.
// Growth within the outer capacity reslices rather than appends, so
// histograms retained beyond a shrunken run (a pooled batch serving a
// smaller request) are recovered, not overwritten.
func resetHists(hs [][]int32, n int) [][]int32 {
	if n <= cap(hs) {
		hs = hs[:n]
	} else {
		hs = append(hs[:cap(hs)], make([][]int32, n-cap(hs))...)
	}
	for i := range hs {
		h := hs[i][:cap(hs[i])]
		clear(h)
		hs[i] = h[:0]
	}
	return hs
}

// growCounts extends h to length need. Entries exposed within the
// existing capacity were pre-zeroed by resetHists; entries in a grown
// backing array are fresh zero memory.
func growCounts(h []int32, need int) []int32 {
	if need <= len(h) {
		return h
	}
	for cap(h) < need {
		h = append(h, 0)
	}
	return h[:need]
}

// scanWorld materializes world i into w's sampler buffers and scans
// it. Steady-state cost: zero heap allocations.
func (b *Batch) scanWorld(w *worker, i int) {
	// Reseeding replays exactly the stream randx.New(seed) would
	// produce, without constructing a new generator.
	w.rng.Seed(b.seeds[i])
	b.scanSampled(w, w.sampler.Sample(w.rng))
}

// scanSampled runs one BFS per distinct source over an
// already-materialized world and folds every query's observation into
// w's integer accumulators. It is the per-world half RunShared reuses:
// a shared stream samples each world once and hands the same
// materialized world to every attached batch.
func (b *Batch) scanSampled(w *worker, world *graph.Graph) {
	n := world.NumVertices()
	for si, s := range b.sources {
		// A source whose queries all name explicit targets stops its
		// BFS once the last target resolves; a k-NN source needs every
		// component distance, so it runs the full walk. Both walks
		// agree bit-for-bit on every registered target.
		var dist []int32
		if b.knnSlots[si] >= 0 || b.fullBFS {
			dist = w.scratch.FromSourceParallelInto(world, int(s), b.intra)
		} else {
			dist = w.scratch.FromSourceTargetsParallelInto(world, int(s), b.srcTargets[si], b.intra)
		}
		for _, id := range b.srcQueries[si] {
			q := &b.queries[id]
			switch q.kind {
			case qReliability:
				if dist[q.t] >= 0 {
					w.rel[q.slot]++
				}
			case qDistance:
				if d := dist[q.t]; d < 0 {
					w.disc[q.slot]++
				} else {
					h := growCounts(w.distH[q.slot], int(d)+1)
					h[d]++
					w.distH[q.slot] = h
				}
			}
		}
		// The k-NN histogram is a property of the source alone; fill it
		// once per world, shared by every k-NN query with this source.
		if slot := b.knnSlots[si]; slot >= 0 {
			maxd := int32(-1)
			for _, d := range dist {
				if d > maxd {
					maxd = d
				}
			}
			if maxd >= 0 {
				h := growCounts(w.knnH[slot], (int(maxd)+1)*n)
				for v, d := range dist {
					if d >= 0 {
						h[int(d)*n+v]++
					}
				}
				w.knnH[slot] = h
			}
		}
	}
}

// merge folds every worker's accumulators into worker 0's; all
// contributions are integer counts, so the result does not depend on
// how worlds were distributed across workers.
func (b *Batch) merge(workers int) {
	w0 := b.ws[0]
	for k := 1; k < workers; k++ {
		w := b.ws[k]
		for i, v := range w.rel {
			w0.rel[i] += v
		}
		for i, v := range w.disc {
			w0.disc[i] += v
		}
		for i, h := range w.distH {
			w0.distH[i] = addCounts(w0.distH[i], h)
		}
		for i, h := range w.knnH {
			w0.knnH[i] = addCounts(w0.knnH[i], h)
		}
	}
	b.relHits = w0.rel
	b.distDisc = w0.disc
	b.distHist = w0.distH
	b.knnHist = w0.knnH
}

func addCounts(dst, src []int32) []int32 {
	dst = growCounts(dst, len(src))
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Reliability returns the estimated two-terminal reliability of query
// id (registered via AddReliability).
func (b *Batch) Reliability(id int) float64 {
	return b.view().Reliability(id)
}

// DistanceDistribution returns the estimated distribution of
// dist(s, t) — dist[d] = Pr(dist = d) — plus the disconnection
// probability, for query id (registered via AddDistance).
func (b *Batch) DistanceDistribution(id int) (dist map[int]float64, disconnected float64) {
	return b.view().DistanceDistribution(id)
}

// MedianDistance returns the count-rule median of dist(s, t) for query
// id (registered via AddDistance): the smallest d whose cumulative
// world count reaches ceil(r/2), with the disconnection bucket last
// (-1 when the median itself is a disconnection). This is the same
// rule k-NN ranking applies, so both APIs provably agree on shared
// worlds.
func (b *Batch) MedianDistance(id int) int {
	return b.view().MedianDistance(id)
}

// medianOfCounts returns the count-rule median distance given
// per-distance occurrence counts over r worlds: the disconnection
// bucket (the r - sum(counts) worlds where the target was unreached,
// i.e. at distance +infinity) sorts last, and -1 reports that the
// median is a disconnection.
func medianOfCounts(counts []int32, r int) int {
	half := (r + 1) / 2
	cum := 0
	for d, c := range counts {
		cum += int(c)
		if cum >= half {
			return d
		}
	}
	return -1
}

// Neighbor is one ranked k-NN result: a vertex and its count-rule
// median distance from the query source.
type Neighbor struct {
	V      int
	Median int
}

// KNearest returns the k vertices with the smallest median distance to
// the query source (excluding the source), ties broken by vertex id,
// for query id (registered via AddKNearest).
func (b *Batch) KNearest(id int) []int {
	return b.view().KNearest(id)
}

// KNearestWithMedians is KNearest with each neighbour's median
// distance attached.
func (b *Batch) KNearestWithMedians(id int) []Neighbor {
	return b.view().KNearestWithMedians(id)
}

// cand is a k-NN candidate: a vertex and its median distance.
type cand struct {
	v      int
	median int
}

func sortCands(cands []cand) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].median != cands[j].median {
			return cands[i].median < cands[j].median
		}
		return cands[i].v < cands[j].v
	})
}
