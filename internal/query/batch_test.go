package query

import (
	"math"
	"reflect"
	"testing"

	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/uncertain"
)

// dblpUncertain builds the query-side dblp fixture: the tiny dblp
// stand-in graph (566 vertices, 1679 edges) with deterministic
// pseudo-probabilities spanning (0, 1) on every edge.
func dblpUncertain(tb testing.TB) *uncertain.Graph {
	d, err := datasets.Generate(datasets.Specs[0], datasets.ScaleTiny)
	if err != nil {
		tb.Fatal(err)
	}
	if n, m := d.Graph.NumVertices(), d.Graph.NumEdges(); n != 566 || m != 1679 {
		tb.Fatalf("fixture drifted: n=%d m=%d, want 566/1679", n, m)
	}
	pairs := make([]uncertain.Pair, 0, d.Graph.NumEdges())
	d.Graph.ForEachEdge(func(u, v int) {
		h := (u*2654435761 + v*40503) % 97
		pairs = append(pairs, uncertain.Pair{U: u, V: v, P: float64(h+1) / 98})
	})
	g, err := uncertain.New(d.Graph.NumVertices(), pairs)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// floatRuleMedian reimplements the pre-fix MedianDistance walk — float
// probability mass accumulated until cum >= 0.5 — so the regression
// test can demonstrate where it diverges from the count rule.
func floatRuleMedian(dist map[int]float64) int {
	maxD := 0
	for d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	var cum float64
	for d := 0; d <= maxD; d++ {
		cum += dist[d]
		if cum >= 0.5 {
			return d
		}
	}
	return -1
}

// TestMedianRuleDivergenceRegression is the headline bugfix pin. The
// fixture has four vertex-disjoint s-t paths of lengths 1..4, the
// lengths 1..3 gated by a probabilistic first edge and the length-4
// path certain, so a world's distance is the length of the shortest
// open path. With even r = 12 and empirical counts {1:1, 2:4, 3:1,
// 4:6}, the old float rule accumulates 1/12 + 4/12 + 1/12 =
// 0.49999999999999994 < 0.5 and walks past the true median to 4,
// while the count rule (cum = 6 >= (12+1)/2 = 6) correctly stops at
// 3. MedianDistance must follow the count rule.
func TestMedianRuleDivergenceRegression(t *testing.T) {
	const s, target, r = 0, 7, 12
	g, err := uncertain.New(8, []uncertain.Pair{
		{U: 0, V: 7, P: 0.1}, // gate: d = 1 when open
		{U: 0, V: 1, P: 0.4}, // gate of the two-hop path 0-1-7
		{U: 1, V: 7, P: 1},
		{U: 0, V: 2, P: 0.15}, // gate of the three-hop path 0-2-3-7
		{U: 2, V: 3, P: 1},
		{U: 3, V: 7, P: 1},
		{U: 0, V: 4, P: 1}, // certain four-hop path 0-4-5-6-7
		{U: 4, V: 5, P: 1},
		{U: 5, V: 6, P: 1},
		{U: 6, V: 7, P: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// First, confirm the rounding the bug rides on (computed at runtime;
	// as untyped constants the sum would fold to exactly 0.5).
	divergent := []float64{1, 4, 1}
	var cum float64
	for _, c := range divergent {
		cum += c / r
	}
	if cum >= 0.5 {
		t.Fatal("float accumulation of 1/12 + 4/12 + 1/12 reached 0.5; divergence scenario impossible")
	}
	// Find the first engine seed whose 12 sampled worlds produce the
	// divergent counts. The search is deterministic, so the test is
	// stable.
	for seed := int64(0); seed < 5000; seed++ {
		e := &Engine{G: g, Worlds: r, Seed: seed}
		dist, disc := e.DistanceDistribution(s, target)
		if disc != 0 {
			t.Fatalf("seed %d: certain path cannot disconnect (disc=%v)", seed, disc)
		}
		if dist[1] != 1.0/r || dist[2] != 4.0/r || dist[3] != 1.0/r || dist[4] != 6.0/r {
			continue
		}
		if old := floatRuleMedian(dist); old != 4 {
			t.Fatalf("seed %d: old float rule returned %d; expected the buggy 4", seed, old)
		}
		// A fresh engine with the same seed replays the same worlds for
		// its first query, so MedianDistance sees exactly this
		// distribution.
		e2 := &Engine{G: g, Worlds: r, Seed: seed}
		if got := e2.MedianDistance(s, target); got != 3 {
			t.Fatalf("seed %d: MedianDistance = %d, want count-rule median 3", seed, got)
		}
		return
	}
	t.Fatal("no seed under 5000 produced the divergent counts; loosen the search")
}

// TestMedianDistanceAgreesWithKNearest pins the unified median rule on
// the tiny dblp fixture: for every source s and every target t, the
// median MedianDistance reports must equal the median KNearest ranks
// by, evaluated on the same sampled worlds (one shared batch per
// source, both even and odd r).
func TestMedianDistanceAgreesWithKNearest(t *testing.T) {
	g := dblpUncertain(t)
	n := g.NumVertices()
	if testing.Short() {
		n = 64 // cover a prefix of sources in -short mode
	}
	b := NewBatch(g, Config{Workers: 1})
	distIDs := make([]int, g.NumVertices())
	for s := 0; s < n; s++ {
		b.Reset()
		b.Seed = int64(1000 + s)
		if s%2 == 0 {
			b.Worlds = 24 // even r: the old float rule's failure domain
		} else {
			b.Worlds = 25
		}
		knnID := b.AddKNearest(s, g.NumVertices())
		for v := 0; v < g.NumVertices(); v++ {
			if v != s {
				distIDs[v] = b.AddDistance(s, v)
			}
		}
		b.MustRun()
		medians := make(map[int]int, g.NumVertices())
		for _, nb := range b.KNearestWithMedians(knnID) {
			medians[nb.V] = nb.Median
		}
		for v := 0; v < g.NumVertices(); v++ {
			if v == s {
				continue
			}
			want, ok := medians[v]
			if !ok {
				want = -1 // not a k-NN candidate: median is disconnection
			}
			if got := b.MedianDistance(distIDs[v]); got != want {
				t.Fatalf("s=%d t=%d: MedianDistance %d != k-NN median %d", s, v, got, want)
			}
		}
	}
}

// batchResults collects every query answer of one configured run into
// comparable values.
type batchResults struct {
	rel     []float64
	medians []int
	discs   []float64
	dists   []map[int]float64
	knn     [][]int
}

func runDblpBatch(g *uncertain.Graph, workers int) batchResults {
	return runDblpBatchBFS(g, workers, false)
}

func runDblpBatchBFS(g *uncertain.Graph, workers int, fullBFS bool) batchResults {
	pairs := [][2]int{{0, 13}, {7, 200}, {99, 100}, {250, 251}, {3, 565}}
	sources := []struct{ s, k int }{{0, 5}, {42, 8}, {123, 3}}
	b := NewBatch(g, Config{Worlds: 40, Seed: 17, Workers: workers})
	b.fullBFS = fullBFS
	var relIDs, distIDs, knnIDs []int
	for _, p := range pairs {
		relIDs = append(relIDs, b.AddReliability(p[0], p[1]))
		distIDs = append(distIDs, b.AddDistance(p[0], p[1]))
	}
	for _, q := range sources {
		knnIDs = append(knnIDs, b.AddKNearest(q.s, q.k))
	}
	b.MustRun()
	var res batchResults
	for i := range pairs {
		res.rel = append(res.rel, b.Reliability(relIDs[i]))
		res.medians = append(res.medians, b.MedianDistance(distIDs[i]))
		dist, disc := b.DistanceDistribution(distIDs[i])
		res.dists = append(res.dists, dist)
		res.discs = append(res.discs, disc)
	}
	for i := range sources {
		res.knn = append(res.knn, b.KNearest(knnIDs[i]))
	}
	return res
}

// TestBatchWorkerCountBitIdentity checks, in the style of
// TestRunWorkerCountBitIdentity, that Workers ∈ {1, 4} produce
// bit-identical query answers on the dblp fixture — with and without
// the target-resolved early exit — and pins the Workers=1 values so
// the engine cannot silently drift.
// (TestBatchEarlyExitPropertyBitIdentity extends the same property to
// randomized graphs and query mixes.)
func TestBatchWorkerCountBitIdentity(t *testing.T) {
	g := dblpUncertain(t)
	r1 := runDblpBatch(g, 1)
	r4 := runDblpBatch(g, 4)
	if !reflect.DeepEqual(r1, r4) {
		t.Errorf("Workers=1 and Workers=4 answers differ:\n%+v\nvs\n%+v", r1, r4)
	}
	for _, workers := range []int{1, 4} {
		if full := runDblpBatchBFS(g, workers, true); !reflect.DeepEqual(full, r1) {
			t.Errorf("Workers=%d full-BFS reference diverged from early-exit answers:\n%+v\nvs\n%+v", workers, full, r1)
		}
	}

	wantRel := []float64{0.975, 0, 0.275, 0.1, 0.675}
	wantMed := []int{4, -1, -1, -1, 4}
	wantKNN := [][]int{
		{564, 30, 63, 88, 96},
		{28, 64, 172, 208, 287, 321, 344, 380},
		{173, 380, 495},
	}
	if !reflect.DeepEqual(r1.rel, wantRel) {
		t.Errorf("pinned reliabilities drifted:\ngot  %v\nwant %v", r1.rel, wantRel)
	}
	if !reflect.DeepEqual(r1.medians, wantMed) {
		t.Errorf("pinned medians drifted:\ngot  %v\nwant %v", r1.medians, wantMed)
	}
	if !reflect.DeepEqual(r1.knn, wantKNN) {
		t.Errorf("pinned k-NN drifted:\ngot  %v\nwant %v", r1.knn, wantKNN)
	}
	for i, dist := range r1.dists {
		var total float64
		for _, p := range dist {
			total += p
		}
		if math.Abs(total+r1.discs[i]-1) > 1e-12 {
			t.Errorf("pair %d: distribution mass %v + disc %v != 1", i, total, r1.discs[i])
		}
	}
}

// TestBatchMatchesEngine pins that the batch and the one-shot engine
// agree when given the same world stream: an engine's first query uses
// the stream randx.Derive(Seed, 0), which a batch can select directly.
func TestBatchMatchesEngine(t *testing.T) {
	g := dblpUncertain(t)
	e := &Engine{G: g, Worlds: 60, Seed: 5, Workers: 1}
	got := e.Reliability(3, 77)

	b := NewBatch(g, Config{Worlds: 60, Seed: e.batch.Seed, Workers: 1})
	id := b.AddReliability(3, 77)
	b.MustRun()
	if want := b.Reliability(id); got != want {
		t.Errorf("engine %v != batch %v on the same stream", got, want)
	}
}

// TestBatchSharedWorldsConsistency checks cross-query coherence inside
// one batch: a reliability query and a distance query on the same pair
// see the same worlds, so Pr(connected) must equal 1 - Pr(disconnected)
// exactly, and the distance histogram mass must equal the hit count.
func TestBatchSharedWorldsConsistency(t *testing.T) {
	g := dblpUncertain(t)
	b := NewBatch(g, Config{Worlds: 80, Seed: 23})
	type q struct{ rel, dist int }
	var qs []q
	for _, p := range [][2]int{{0, 9}, {10, 400}, {77, 78}} {
		qs = append(qs, q{rel: b.AddReliability(p[0], p[1]), dist: b.AddDistance(p[0], p[1])})
	}
	b.MustRun()
	for i, quer := range qs {
		rel := b.Reliability(quer.rel)
		dist, disc := b.DistanceDistribution(quer.dist)
		var mass float64
		for _, p := range dist {
			mass += p
		}
		if math.Abs(rel-(1-disc)) > 1e-15 || math.Abs(rel-mass) > 1e-12 {
			t.Errorf("query %d: reliability %v vs disconnection %v / mass %v", i, rel, disc, mass)
		}
	}
}

// TestBatchSharedSourceKNN pins the per-source histogram sharing: two
// k-NN queries with the same source share one accumulator (the larger
// k's result must extend the smaller's), and a duplicated query cannot
// double-count worlds — the medians stay identical to a batch carrying
// the query once.
func TestBatchSharedSourceKNN(t *testing.T) {
	g := dblpUncertain(t)
	b := NewBatch(g, Config{Worlds: 30, Seed: 9, Workers: 1})
	small := b.AddKNearest(0, 3)
	big := b.AddKNearest(0, 8)
	b.MustRun()
	smallRes := append([]Neighbor(nil), b.KNearestWithMedians(small)...)
	bigRes := b.KNearestWithMedians(big)
	if len(smallRes) != 3 || len(bigRes) != 8 {
		t.Fatalf("result sizes %d/%d, want 3/8", len(smallRes), len(bigRes))
	}
	if !reflect.DeepEqual(smallRes, bigRes[:3]) {
		t.Errorf("shared-source k-NN prefixes differ: %v vs %v", smallRes, bigRes[:3])
	}
	solo := NewBatch(g, Config{Worlds: 30, Seed: 9, Workers: 1})
	id := solo.AddKNearest(0, 8)
	solo.MustRun()
	if got := solo.KNearestWithMedians(id); !reflect.DeepEqual(got, bigRes) {
		t.Errorf("duplicated query changed the answer: %v vs %v", bigRes, got)
	}
}

// TestBatchShrinkRegrowKeepsBuffers pins the pooled-serving memory
// contract under mixed traffic: after a large request, a smaller one,
// and the large shape again, the regrown run recovers the histograms
// it had already grown instead of re-allocating them — steady state
// stays zero-alloc across changing request shapes.
func TestBatchShrinkRegrowKeepsBuffers(t *testing.T) {
	g := dblpUncertain(t)
	b := NewBatch(g, Config{Worlds: 30, Workers: 1})
	large := func(seed int64) {
		b.Reset()
		b.Seed = seed
		for i := 0; i < 4; i++ {
			b.AddDistance(11*i, 13*i+7)
			b.AddKNearest(11*i, 5)
		}
		b.MustRun()
	}
	large(1)
	// A smaller request truncates the per-kind accumulator tables...
	b.Reset()
	b.Seed = 2
	b.AddDistance(0, 7)
	b.MustRun()
	large(1) // ...and the regrown shape warms any newly-seen distances.
	allocs := testing.AllocsPerRun(10, func() {
		large(1)
	})
	if allocs != 0 {
		t.Errorf("shrink/regrow cycle allocates %v times per request, want 0", allocs)
	}
}

// TestAddKNearestHugeK is the regression for the int32 narrowing bug
// FuzzBatchRequestJSON uncovered: a k near MaxInt64 used to wrap to a
// negative int32 slot and panic the ranking slice. Oversized k must
// behave exactly like k = n.
func TestAddKNearestHugeK(t *testing.T) {
	g := dblpUncertain(t)
	huge := NewBatch(g, Config{Worlds: 20, Seed: 3, Workers: 1})
	hid := huge.AddKNearest(0, int(^uint(0)>>1)) // MaxInt
	huge.MustRun()
	all := NewBatch(g, Config{Worlds: 20, Seed: 3, Workers: 1})
	aid := all.AddKNearest(0, g.NumVertices())
	all.MustRun()
	if got, want := huge.KNearest(hid), all.KNearest(aid); !reflect.DeepEqual(got, want) {
		t.Errorf("huge k diverged from k = n: %d vs %d neighbours", len(got), len(want))
	}
}

// TestBatchResetReuse drives the serving pattern: one batch, many
// Reset/Run cycles with different queries, answers identical to a
// fresh batch each time.
func TestBatchResetReuse(t *testing.T) {
	g := dblpUncertain(t)
	reused := NewBatch(g, Config{Worlds: 30, Workers: 1})
	for round := 0; round < 5; round++ {
		s := 17 * round
		reused.Reset()
		reused.Seed = int64(round)
		relID := reused.AddReliability(s, s+31)
		knnID := reused.AddKNearest(s, 4)
		reused.MustRun()

		fresh := NewBatch(g, Config{Worlds: 30, Seed: int64(round), Workers: 1})
		fRel := fresh.AddReliability(s, s+31)
		fKnn := fresh.AddKNearest(s, 4)
		fresh.MustRun()

		if got, want := reused.Reliability(relID), fresh.Reliability(fRel); got != want {
			t.Errorf("round %d: reused reliability %v != fresh %v", round, got, want)
		}
		if got, want := reused.KNearest(knnID), fresh.KNearest(fKnn); !reflect.DeepEqual(got, want) {
			t.Errorf("round %d: reused knn %v != fresh %v", round, got, want)
		}
	}
}
