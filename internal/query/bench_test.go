package query

import "testing"

// benchSink keeps the compiler from eliding result extraction.
var benchSink float64

// BenchmarkBatchQueries measures the serving hot path: one reusable
// batch carrying a request-shaped mix of queries (8 sources, each with
// a reliability, a distance and a k-NN query), re-run with a fresh
// seed per iteration. After the first Run has grown the buffers, the
// per-world loop — reseed, sample, one BFS per source, integer
// accumulation — performs zero heap allocations, which ReportAllocs
// pins in BENCH_query.json via `make bench-query`.
func BenchmarkBatchQueries(b *testing.B) {
	g := dblpUncertain(b)
	batch := NewBatch(g, Config{Worlds: 64, Workers: 1})
	var relIDs, distIDs, knnIDs []int
	for i := 0; i < 8; i++ {
		s, t := 17*i, 23*i+31
		relIDs = append(relIDs, batch.AddReliability(s, t))
		distIDs = append(distIDs, batch.AddDistance(s, t))
		knnIDs = append(knnIDs, batch.AddKNearest(s, 10))
	}
	// Warm up over the whole seed cycle: histograms grow once per
	// never-seen max distance, so visiting every seed beforehand leaves
	// the measured loop allocation-free.
	const seedCycle = 16
	for i := 0; i < seedCycle; i++ {
		batch.Seed = int64(i)
		batch.MustRun()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Seed = int64(i % seedCycle)
		batch.MustRun()
		benchSink = batch.Reliability(relIDs[0]) + float64(batch.MedianDistance(distIDs[0]))
	}
	_ = knnIDs
}

// reliabilityOnlyBatch builds the early-exit showcase batch: 8 sources
// carrying one reliability query each and nothing else, so every
// per-world BFS may stop at its single target instead of scanning the
// source's whole component.
func reliabilityOnlyBatch(b *testing.B, fullBFS bool) *Batch {
	g := dblpUncertain(b)
	batch := NewBatch(g, Config{Worlds: 64, Workers: 1})
	batch.fullBFS = fullBFS
	for i := 0; i < 8; i++ {
		batch.AddReliability(17*i, 23*i+31)
	}
	const seedCycle = 16
	for i := 0; i < seedCycle; i++ {
		batch.Seed = int64(i)
		batch.MustRun()
	}
	return batch
}

// BenchmarkBatchReliabilityOnly measures the target-resolved early
// exit on a reliability-only mix (the ROADMAP's "restore the
// connected() fast path" item): each of the 8 per-world BFS walks
// stops as soon as its target resolves. Compare against
// BenchmarkBatchReliabilityOnlyFullBFS — the identical batch with the
// exit disabled — in BENCH_query.json; the answers are bit-identical.
func BenchmarkBatchReliabilityOnly(b *testing.B) {
	batch := reliabilityOnlyBatch(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Seed = int64(i % 16)
		batch.MustRun()
		benchSink = batch.Reliability(0)
	}
}

// BenchmarkBatchReliabilityOnlyFullBFS is the early-exit contrast
// case: the same reliability-only mix forced through whole-component
// walks, i.e. the pre-early-exit engine.
func BenchmarkBatchReliabilityOnlyFullBFS(b *testing.B) {
	batch := reliabilityOnlyBatch(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Seed = int64(i % 16)
		batch.MustRun()
		benchSink = batch.Reliability(0)
	}
}

// BenchmarkSingleQueries is the contrast case: the same 24 queries
// served one at a time through the one-shot Engine layer, each call
// sampling its own 64 worlds. The gap against BenchmarkBatchQueries is
// the point of the batch engine — shared worlds and shared BFS trees.
func BenchmarkSingleQueries(b *testing.B) {
	g := dblpUncertain(b)
	e := &Engine{G: g, Worlds: 64, Workers: 1}
	e.Reliability(0, 31) // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc float64
		for j := 0; j < 8; j++ {
			s, t := 17*j, 23*j+31
			acc += e.Reliability(s, t)
			acc += float64(e.MedianDistance(s, t))
			e.KNearest(s, 10)
		}
		benchSink = acc
	}
}
