package query

import (
	"math"
	"reflect"
	"testing"

	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/uncertain"
)

// chainGraph builds an uncertain path 0 -p- 1 -p- 2 ... with uniform
// edge probability p.
func chainGraph(t testing.TB, n int, p float64) *uncertain.Graph {
	pairs := make([]uncertain.Pair, 0, n-1)
	for i := 0; i+1 < n; i++ {
		pairs = append(pairs, uncertain.Pair{U: i, V: i + 1, P: p})
	}
	g, err := uncertain.New(n, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReliabilityChain(t *testing.T) {
	// Pr(0 ~ 2) on a 3-chain = p^2.
	p := 0.7
	e := &Engine{G: chainGraph(t, 3, p), Worlds: 40000, Rng: randx.New(1)}
	got := e.Reliability(0, 2)
	want := p * p
	if math.Abs(got-want) > 0.01 {
		t.Errorf("reliability = %v, want %v", got, want)
	}
	if e.Reliability(1, 1) != 1 {
		t.Error("self reliability must be 1")
	}
}

func TestReliabilityWithAlternativePath(t *testing.T) {
	// Triangle with all p=0.5: Pr(0~1) = p + (1-p)*p^2 = 0.625.
	g, err := uncertain.New(3, []uncertain.Pair{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.5}, {U: 0, V: 2, P: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{G: g, Worlds: 60000, Rng: randx.New(2)}
	if got := e.Reliability(0, 1); math.Abs(got-0.625) > 0.01 {
		t.Errorf("reliability = %v, want 0.625", got)
	}
}

func TestDistanceDistributionChain(t *testing.T) {
	// 0 to 2 on a 3-chain with p=0.8: dist 2 w.p. 0.64, else disconnected.
	e := &Engine{G: chainGraph(t, 3, 0.8), Worlds: 40000, Rng: randx.New(3)}
	dist, disc := e.DistanceDistribution(0, 2)
	if math.Abs(dist[2]-0.64) > 0.01 {
		t.Errorf("P(d=2) = %v, want 0.64", dist[2])
	}
	if math.Abs(disc-0.36) > 0.01 {
		t.Errorf("P(disconnected) = %v, want 0.36", disc)
	}
	var total float64
	for _, p := range dist {
		total += p
	}
	if math.Abs(total+disc-1) > 1e-9 {
		t.Error("distribution must sum to 1")
	}
}

func TestMedianDistance(t *testing.T) {
	// High-probability chain: median = exact distance.
	e := &Engine{G: chainGraph(t, 5, 0.95), Worlds: 2000, Rng: randx.New(4)}
	if got := e.MedianDistance(0, 3); got != 3 {
		t.Errorf("median distance = %d, want 3", got)
	}
	// Low-probability chain: median is disconnection.
	e2 := &Engine{G: chainGraph(t, 5, 0.2), Worlds: 2000, Rng: randx.New(5)}
	if got := e2.MedianDistance(0, 4); got != -1 {
		t.Errorf("median distance = %d, want -1 (disconnected)", got)
	}
}

func TestKNearestDeterministicStructure(t *testing.T) {
	// Star with strong spokes to 1,2 and weak to 3: nearest two are 1,2.
	g, err := uncertain.New(5, []uncertain.Pair{
		{U: 0, V: 1, P: 0.99},
		{U: 0, V: 2, P: 0.99},
		{U: 0, V: 3, P: 0.05},
		{U: 3, V: 4, P: 0.99},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{G: g, Worlds: 3000, Rng: randx.New(6)}
	got := e.KNearest(0, 2)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("KNearest = %v, want [1 2]", got)
	}
	// Asking for more neighbours than reachable returns what exists.
	all := e.KNearest(0, 10)
	if len(all) > 4 {
		t.Errorf("KNearest returned %d candidates", len(all))
	}
}

func TestExpectedDegreeExact(t *testing.T) {
	e := &Engine{G: chainGraph(t, 3, 0.5)}
	if got := e.ExpectedDegree(1); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("E[deg] = %v, want 1", got)
	}
}

func TestDefaultWorldsIsHoeffding(t *testing.T) {
	e := &Engine{G: chainGraph(t, 3, 0.5)}
	if got := e.worlds(); got != 738 {
		t.Errorf("default worlds = %d, want 738 (Hoeffding 0.05/0.05)", got)
	}
}

func TestReliabilityCertainEdges(t *testing.T) {
	// Probability-one and probability-zero pairs make reliability
	// deterministic: the estimate must be exactly 1 or 0.
	g, err := uncertain.New(4, []uncertain.Pair{
		{U: 0, V: 1, P: 1}, {U: 2, V: 3, P: 1}, {U: 1, V: 2, P: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{G: g, Worlds: 50}
	if got := e.Reliability(0, 1); got != 1 {
		t.Errorf("Pr(0~1) = %v, want 1", got)
	}
	if got := e.Reliability(0, 2); got != 0 {
		t.Errorf("Pr(0~2) = %v, want 0", got)
	}
}

// TestEngineDerivedStreamsDecorrelate pins the fix for the seed-reuse
// bug: with Rng == nil the engine used to rebuild rand.New(NewSource(1))
// on every call, so successive queries replayed identical worlds. Now
// each call derives its own stream from the fixed engine seed, and two
// engines with the same seed still agree call-for-call.
func TestEngineDerivedStreamsDecorrelate(t *testing.T) {
	g := chainGraph(t, 3, 0.5)
	e1 := &Engine{G: g, Worlds: 200}
	e2 := &Engine{G: g, Worlds: 200}
	first := e1.Reliability(0, 2)
	second := e1.Reliability(0, 2)
	if first == second {
		t.Errorf("successive queries replayed identical worlds: both %v", first)
	}
	if got := e2.Reliability(0, 2); got != first {
		t.Errorf("call #0 differs across same-seed engines: %v vs %v", got, first)
	}
	if got := e2.Reliability(0, 2); got != second {
		t.Errorf("call #1 differs across same-seed engines: %v vs %v", got, second)
	}
	// A different engine seed selects different streams.
	e3 := &Engine{G: g, Worlds: 200, Seed: 99}
	if got := e3.Reliability(0, 2); got == first {
		t.Log("seed 99 call #0 coincided with seed 0; tolerated (same estimator)")
	}
}

// TestEngineExplicitRngReplayable pins the explicit-Rng contract: each
// query draws one seed from the caller's generator, so resetting the
// generator replays the whole query sequence.
func TestEngineExplicitRngReplayable(t *testing.T) {
	g := chainGraph(t, 4, 0.6)
	run := func() []float64 {
		e := &Engine{G: g, Worlds: 300, Rng: randx.New(7)}
		return []float64{e.Reliability(0, 3), e.Reliability(0, 3), e.Reliability(1, 3)}
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("explicit-Rng runs differ: %v vs %v", a, b)
	}
}

// TestEngineZeroAllocSteadyState is the query-side companion of
// uncertain's TestSamplerZeroAllocs: once the engine's batch, sampler
// and BFS scratch have warmed up, a scalar query performs zero heap
// allocations — reliability no longer allocates a fresh seen/stack per
// sampled world.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	e := &Engine{G: chainGraph(t, 30, 0.5), Worlds: 40, Workers: 1}
	e.Reliability(0, 29) // warm up buffers
	allocs := testing.AllocsPerRun(20, func() {
		e.Reliability(0, 29)
	})
	if allocs != 0 {
		t.Errorf("steady-state Reliability allocates %v times per query, want 0", allocs)
	}
	id := -1
	b := NewBatch(e.G, Config{Worlds: 40, Workers: 1})
	id = b.AddReliability(0, 29)
	b.AddDistance(0, 15)
	b.AddKNearest(0, 5)
	b.MustRun() // warm up batch buffers
	seed := int64(1)
	allocs = testing.AllocsPerRun(20, func() {
		b.Seed = seed
		b.MustRun()
		seed++
	})
	if allocs != 0 {
		t.Errorf("steady-state batch Run allocates %v times, want 0", allocs)
	}
	_ = b.Reliability(id)
}
