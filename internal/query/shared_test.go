package query

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// sharedSpec is one batch shape of the shared-stream identity tests:
// its own worlds budget and tolerance, plus a query mix.
type sharedSpec struct {
	worlds int
	tol    float64
	ops    []string
	args   [][2]int // (s,t) for rel/dist, (s,k) for knn
}

// sharedSpecs deliberately mixes budgets (none a multiple of another),
// tolerances (fixed, loose-adaptive, tight-adaptive) and query kinds —
// including a k-NN batch, which never stops early — so the stream must
// retire members at different barriers.
var sharedSpecs = []sharedSpec{
	{worlds: 200, tol: 0, ops: []string{"rel", "dist"}, args: [][2]int{{0, 50}, {3, 200}}},
	{worlds: 96, tol: 0.05, ops: []string{"rel"}, args: [][2]int{{0, 50}}},
	{worlds: 64, tol: 0, ops: []string{"knn", "rel"}, args: [][2]int{{7, 10}, {2, 400}}},
	{worlds: 200, tol: 0.01, ops: []string{"dist"}, args: [][2]int{{3, 200}}},
}

func (sp sharedSpec) build(tb testing.TB, g *Batch) []int {
	tb.Helper()
	ids := make([]int, len(sp.ops))
	for i, op := range sp.ops {
		switch op {
		case "rel":
			ids[i] = g.AddReliability(sp.args[i][0], sp.args[i][1])
		case "dist":
			ids[i] = g.AddDistance(sp.args[i][0], sp.args[i][1])
		case "knn":
			ids[i] = g.AddKNearest(sp.args[i][0], sp.args[i][1])
		}
	}
	return ids
}

// collect reads every answer of a completed batch into one comparable
// value.
func (sp sharedSpec) collect(b *Batch, ids []int) []any {
	out := []any{b.WorldsRun(), b.Converged()}
	for i, op := range sp.ops {
		switch op {
		case "rel":
			out = append(out, b.Reliability(ids[i]))
		case "dist":
			d, disc := b.DistanceDistribution(ids[i])
			out = append(out, d, disc, b.MedianDistance(ids[i]))
		case "knn":
			out = append(out, b.KNearestWithMedians(ids[i]))
		}
	}
	return out
}

// TestRunSharedBitIdentityVsSolo is the shared-stream contract: every
// member of a shared run answers bit-identically to running the same
// batch alone, whatever its own budget/tolerance and whatever the
// stream's worker count.
func TestRunSharedBitIdentityVsSolo(t *testing.T) {
	g := dblpUncertain(t)
	const seed = 42

	// Solo references, sequential (the canonical answers).
	refs := make([][]any, len(sharedSpecs))
	for i, sp := range sharedSpecs {
		b := NewBatch(g, Config{Worlds: sp.worlds, Seed: seed, Workers: 1, Tolerance: sp.tol})
		ids := sp.build(t, b)
		if err := b.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		refs[i] = sp.collect(b, ids)
	}

	for _, workers := range []int{1, 4} {
		batches := make([]*Batch, len(sharedSpecs))
		allIDs := make([][]int, len(sharedSpecs))
		for i, sp := range sharedSpecs {
			batches[i] = NewBatch(g, Config{Worlds: sp.worlds, Seed: seed, Workers: workers, Tolerance: sp.tol})
			allIDs[i] = sp.build(t, batches[i])
		}
		sampled, err := RunShared(context.Background(), batches)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sampled < 2 {
			t.Fatalf("workers=%d: stream sampled %d worlds", workers, sampled)
		}
		for i, sp := range sharedSpecs {
			got := sp.collect(batches[i], allIDs[i])
			if !reflect.DeepEqual(got, refs[i]) {
				t.Errorf("workers=%d batch=%d: shared answers diverge from solo\n got %v\nwant %v",
					workers, i, got, refs[i])
			}
		}
	}
}

// TestRunSharedSingleDelegates pins that a one-member stream is
// exactly a solo run.
func TestRunSharedSingleDelegates(t *testing.T) {
	g := dblpUncertain(t)
	sp := sharedSpecs[1]
	solo := NewBatch(g, Config{Worlds: sp.worlds, Seed: 7, Tolerance: sp.tol})
	soloIDs := sp.build(t, solo)
	if err := solo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	shared := NewBatch(g, Config{Worlds: sp.worlds, Seed: 7, Tolerance: sp.tol})
	sharedIDs := sp.build(t, shared)
	sampled, err := RunShared(context.Background(), []*Batch{shared})
	if err != nil {
		t.Fatal(err)
	}
	if sampled != solo.WorldsRun() {
		t.Errorf("sampled %d worlds, solo ran %d", sampled, solo.WorldsRun())
	}
	if got, want := sp.collect(shared, sharedIDs), sp.collect(solo, soloIDs); !reflect.DeepEqual(got, want) {
		t.Errorf("single-member shared run diverges: got %v want %v", got, want)
	}
}

func TestRunSharedRejectsMismatch(t *testing.T) {
	g := dblpUncertain(t)
	mk := func(seed int64) *Batch {
		b := NewBatch(g, Config{Worlds: 16, Seed: seed})
		b.AddReliability(0, 1)
		return b
	}
	if _, err := RunShared(context.Background(), []*Batch{mk(1), mk(2)}); !errors.Is(err, ErrSharedMismatch) {
		t.Errorf("mixed seeds: err = %v, want ErrSharedMismatch", err)
	}
	b := mk(1)
	if _, err := RunShared(context.Background(), []*Batch{b, b}); !errors.Is(err, ErrSharedMismatch) {
		t.Errorf("duplicate batch: err = %v, want ErrSharedMismatch", err)
	}
	g2 := dblpUncertain(t)
	b2 := NewBatch(g2, Config{Worlds: 16, Seed: 1})
	b2.AddReliability(0, 1)
	if _, err := RunShared(context.Background(), []*Batch{mk(1), b2}); !errors.Is(err, ErrSharedMismatch) {
		t.Errorf("mixed graphs: err = %v, want ErrSharedMismatch", err)
	}
}

// TestRunSharedCancelRerunIdentity mirrors the solo cancellation
// contract: a cancelled shared run leaves its unfinished members
// un-ran, and re-running them (shared again) answers bit-identically
// to never having been cancelled.
func TestRunSharedCancelRerunIdentity(t *testing.T) {
	g := dblpUncertain(t)
	const seed = 5
	mk := func(workers int) []*Batch {
		out := make([]*Batch, 2)
		for i := range out {
			out[i] = NewBatch(g, Config{Worlds: 96, Seed: seed, Workers: workers})
			out[i].AddReliability(i, 50+i)
			out[i].AddDistance(i, 200)
		}
		return out
	}
	ref := mk(1)
	if _, err := RunShared(context.Background(), ref); err != nil {
		t.Fatal(err)
	}

	batches := mk(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunShared(ctx, batches); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
	for i, b := range batches {
		if b.WorldsRun() != 0 {
			t.Errorf("batch %d: WorldsRun = %d after pre-cancelled run, want 0", i, b.WorldsRun())
		}
	}
	if _, err := RunShared(context.Background(), batches); err != nil {
		t.Fatal(err)
	}
	for i := range batches {
		if got, want := batches[i].Reliability(0), ref[i].Reliability(0); got != want {
			t.Errorf("batch %d: post-cancel rerun reliability %v, want %v", i, got, want)
		}
		if got, want := batches[i].MedianDistance(1), ref[i].MedianDistance(1); got != want {
			t.Errorf("batch %d: post-cancel rerun median %v, want %v", i, got, want)
		}
	}
}

// TestSnapshotOutlivesBatchReuse pins what the serving layer relies on
// to cache answers: a Snapshot keeps answering identically after its
// batch is Reset and reused for a different request.
func TestSnapshotOutlivesBatchReuse(t *testing.T) {
	g := dblpUncertain(t)
	b := NewBatch(g, Config{Worlds: 64, Seed: 3})
	rel := b.AddReliability(0, 50)
	dist := b.AddDistance(3, 200)
	knn := b.AddKNearest(3, 5)
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := b.Snapshot()
	wantRel := b.Reliability(rel)
	wantDist, wantDisc := b.DistanceDistribution(dist)
	wantMed := b.MedianDistance(dist)
	wantKNN := append(make([]Neighbor, 0), b.KNearestWithMedians(knn)...)
	if len(wantKNN) != 5 {
		t.Fatalf("fixture: knn(3, 5) found %d neighbours, want 5", len(wantKNN))
	}
	wantWorlds := b.WorldsRun()

	// Reuse the batch for a different request and run it — the snapshot
	// must not notice.
	b.Reset()
	b.AddReliability(9, 11)
	b.Seed = 999
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	if got := snap.Reliability(rel); got != wantRel {
		t.Errorf("snapshot reliability %v, want %v", got, wantRel)
	}
	gotDist, gotDisc := snap.DistanceDistribution(dist)
	if !reflect.DeepEqual(gotDist, wantDist) || gotDisc != wantDisc {
		t.Errorf("snapshot distance (%v, %v), want (%v, %v)", gotDist, gotDisc, wantDist, wantDisc)
	}
	if got := snap.MedianDistance(dist); got != wantMed {
		t.Errorf("snapshot median %v, want %v", got, wantMed)
	}
	if got := snap.KNearestWithMedians(knn); !reflect.DeepEqual(got, wantKNN) {
		t.Errorf("snapshot knn %v, want %v", got, wantKNN)
	}
	if got := snap.WorldsRun(); got != wantWorlds {
		t.Errorf("snapshot worlds %d, want %d", got, wantWorlds)
	}
	if snap.NumQueries() != 3 {
		t.Errorf("snapshot queries %d, want 3", snap.NumQueries())
	}
	if snap.MemoryBytes() <= 0 {
		t.Errorf("snapshot MemoryBytes %d, want > 0", snap.MemoryBytes())
	}
}
