package query

import (
	"context"
	"errors"
	"sync/atomic"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/parallel"
)

// ErrSharedMismatch reports a RunShared call whose batches cannot share
// one world stream: they must all query the same graph value with the
// same Seed (and each batch may appear only once).
var ErrSharedMismatch = errors.New("query: shared run requires distinct batches on one graph with one seed")

// sharedState tracks one batch's position in a shared stream.
type sharedState struct {
	limit    int  // the batch's own world budget r_i
	adaptive bool // Tolerance > 0
	finished bool
	progress atomic.Int64
}

// RunShared evaluates several batches over one shared world stream:
// each world is sampled once per tick and every still-running batch's
// BFS pass scans the same materialized world, instead of each batch
// sampling its own copy. It returns the number of worlds the stream
// sampled.
//
// The stream preserves the solo bit-identity contract for every member.
// World seeds are pre-derived from the shared Seed exactly as each
// batch's own Run would derive them, so world i of the stream IS world
// i of every batch (randx.FillWorldSeeds is prefix-stable: a batch with
// a smaller world budget sees exactly the prefix its seed derivation
// promises). Batches keep their own accumulators, world budgets,
// memory budgets and tolerances: a batch stops consuming the stream at
// its own budget, and an adaptive batch checks convergence at the same
// adaptiveBlockSize barriers — over the same merged integer counts —
// as a solo adaptive run, so each member's results (including WorldsRun
// and Converged) are bit-identical to running it alone, for every
// Workers value. The stream's worker count is the minimum of the
// members' solo effective worker counts, so no member's accumulator
// footprint exceeds what its own Run (and qserve's validate) priced.
//
// Requirements: every batch must query the same graph value with the
// same Seed, and appear at most once (ErrSharedMismatch otherwise); a
// batch over its MemoryBudget rejects the whole stream with a
// *BudgetError before any world is sampled. Cancelling ctx stops the
// stream at world granularity: batches that already finished keep
// their results, the rest are left un-ran, and ctx.Err() is returned.
func RunShared(ctx context.Context, batches []*Batch) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch len(batches) {
	case 0:
		return 0, nil
	case 1:
		b := batches[0]
		if err := b.Run(ctx); err != nil {
			return 0, err
		}
		return b.worldsRun, nil
	}

	g, seed := batches[0].g, batches[0].Seed
	for i, b := range batches {
		if b == nil || b.g != g || b.Seed != seed {
			return 0, ErrSharedMismatch
		}
		for _, prev := range batches[:i] {
			if prev == b {
				return 0, ErrSharedMismatch
			}
		}
	}

	// One worker count for the whole stream: the minimum of the members'
	// solo clamps, so WorstCaseAccumBytes here never exceeds any
	// member's solo pricing.
	workers := 0
	states := make([]*sharedState, len(batches))
	maxIdx := 0
	for i, b := range batches {
		b.ran = false
		r := b.worlds()
		states[i] = &sharedState{limit: r, adaptive: b.Tolerance > 0}
		if w := b.workerCount(r); workers == 0 || w < workers {
			workers = w
		}
		if r > states[maxIdx].limit {
			maxIdx = i
		}
	}
	for _, b := range batches {
		if b.MemoryBudget > 0 {
			if need := WorstCaseAccumBytes(b.g.NumVertices(), b.nknn, workers); need > b.MemoryBudget {
				return 0, &BudgetError{NeedBytes: need, BudgetBytes: b.MemoryBudget}
			}
		}
	}
	for i, b := range batches {
		b.prepare(workers, states[i].limit)
	}

	// The longest member's seed table covers the whole stream; every
	// shorter member's table is its prefix.
	seeds := batches[maxIdx].seeds
	sw := batches[0].ws // sampling workers: sampler + reseedable RNG per lane

	done := 0
	for {
		target := 0
		for _, st := range states {
			if !st.finished && st.limit > target {
				target = st.limit
			}
		}
		if target <= done {
			break
		}
		end := done + adaptiveBlockSize
		if end > target {
			end = target
		}
		base := done
		if workers == 1 {
			w := sw[0]
			for i := base; i < end; i++ {
				if err := ctx.Err(); err != nil {
					return done, err
				}
				w.rng.Seed(seeds[i])
				world := w.sampler.Sample(w.rng)
				scanShared(batches, states, 0, world, i)
			}
		} else {
			_ = parallel.ForWorkers(ctx, end-base, workers, func(k, j int) {
				i := base + j
				w := sw[k]
				w.rng.Seed(seeds[i])
				world := w.sampler.Sample(w.rng)
				scanShared(batches, states, k, world, i)
			})
		}
		if err := ctx.Err(); err != nil {
			return done, err
		}
		done = end
		// Barrier: retire members that exhausted their budget or (for
		// adaptive members, never on fewer than two worlds) converged at
		// this block boundary — the same schedule their solo Run follows.
		for i, st := range states {
			if st.finished {
				continue
			}
			b := batches[i]
			scanned := done
			if st.limit < scanned {
				scanned = st.limit
			}
			if scanned == st.limit ||
				(st.adaptive && scanned >= 2 && b.allConverged(workers, scanned)) {
				b.merge(workers)
				b.worldsRun = scanned
				b.converged = st.adaptive && b.allConverged(1, scanned)
				b.ran = true
				st.finished = true
			}
		}
	}
	return done, nil
}

// scanShared folds one materialized world into every batch still
// consuming the stream at index i, using each batch's lane-k worker
// accumulators. finished flags are only written at block barriers, so
// reading them here is race-free.
func scanShared(batches []*Batch, states []*sharedState, k int, world *graph.Graph, i int) {
	for bi, b := range batches {
		st := states[bi]
		if st.finished || i >= st.limit {
			continue
		}
		b.scanSampled(b.ws[k], world)
		if b.Progress != nil {
			b.Progress(int(st.progress.Add(1)), st.limit)
		}
	}
}
