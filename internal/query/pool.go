package query

import (
	"sync"

	"uncertaingraph/internal/uncertain"
)

// BatchPool is a concurrency-safe pool of Batches bound to one graph —
// the serving-layer reuse hook. A long-lived server keeps one BatchPool
// per published graph so steady-state requests reuse world samplers,
// BFS scratch and integer accumulators instead of reallocating them,
// while the pool's Config template keeps every acquired batch inside
// the graph's memory budget (Get stamps MemoryBudget before Reset, so
// a pooled batch sheds high-water accumulators from a previous request
// right there and never retains more than the budget across requests).
type BatchPool struct {
	g    *uncertain.Graph
	cfg  Config
	pool sync.Pool
}

// NewBatchPool returns a pool of batches over g. cfg is the template
// stamped onto every batch Get returns; per-request fields (Worlds,
// Seed, Tolerance, Workers) are typically overwritten by the caller
// after Get.
func NewBatchPool(g *uncertain.Graph, cfg Config) *BatchPool {
	return &BatchPool{g: g, cfg: cfg}
}

// Graph returns the graph every pooled batch is bound to.
func (p *BatchPool) Graph() *uncertain.Graph { return p.g }

// Get returns a reset batch from the pool, or a fresh one when the
// pool is empty. The template's MemoryBudget is stamped before Reset
// so retained high-water accumulators above it are shed on the way
// out.
func (p *BatchPool) Get() *Batch {
	if b, ok := p.pool.Get().(*Batch); ok {
		b.MemoryBudget = p.cfg.MemoryBudget
		b.Reset()
		return b
	}
	return NewBatch(p.g, p.cfg)
}

// Put returns a batch to the pool for reuse. A batch bound to a
// different graph is dropped instead of pooled: handing it out later
// would answer this pool's requests from the wrong graph's structure,
// so the guard turns a caller bug into a missed reuse rather than
// cross-graph answer leakage.
func (p *BatchPool) Put(b *Batch) {
	if b == nil || b.Graph() != p.g {
		return
	}
	p.pool.Put(b)
}
