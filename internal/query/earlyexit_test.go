package query

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"uncertaingraph/internal/uncertain"
)

// randomUncertainGraph draws a connected-ish random uncertain graph:
// n vertices, a scattering of distinct random pairs with probabilities
// spanning (0, 1), plus a few certain and a few zero-probability edges
// so worlds mix reachable, unreachable and deterministic structure.
func randomUncertainGraph(t testing.TB, rng *rand.Rand, n int) *uncertain.Graph {
	type key struct{ u, v int }
	seen := make(map[key]struct{})
	var pairs []uncertain.Pair
	m := n + rng.Intn(2*n)
	for len(pairs) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if _, dup := seen[key{u, v}]; dup {
			continue
		}
		seen[key{u, v}] = struct{}{}
		var p float64
		switch rng.Intn(10) {
		case 0:
			p = 1 // certain edge
		case 1:
			p = 0 // never-present edge
		default:
			p = float64(1+rng.Intn(97)) / 98
		}
		pairs = append(pairs, uncertain.Pair{U: u, V: v, P: p})
	}
	g, err := uncertain.New(n, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mixQuery is one randomly drawn query of a property-test mix.
type mixQuery struct {
	op      qkind
	s, t, k int
}

// randomMix draws a query mix biased toward the early-exit shapes:
// mostly reliability and distance queries (whose sources stop their
// BFS at target resolution), a few k-NN queries (full component
// scans), deliberately overlapping sources and occasional s == t.
func randomMix(rng *rand.Rand, n int) []mixQuery {
	qcount := 1 + rng.Intn(12)
	mix := make([]mixQuery, qcount)
	for i := range mix {
		s := rng.Intn(n)
		if i > 0 && rng.Intn(3) == 0 {
			s = mix[rng.Intn(i)].s // shared source: one BFS, many queries
		}
		switch rng.Intn(8) {
		case 0:
			mix[i] = mixQuery{op: qKNearest, s: s, k: 1 + rng.Intn(n)}
		case 1:
			mix[i] = mixQuery{op: qDistance, s: s, t: rng.Intn(n)}
		case 2:
			mix[i] = mixQuery{op: qReliability, s: s, t: s} // self target
		default:
			mix[i] = mixQuery{op: qReliability, s: s, t: rng.Intn(n)}
		}
	}
	return mix
}

// mixResults collects every answer of one configured run.
type mixResults struct {
	rel     []float64
	discs   []float64
	dists   []map[int]float64
	medians []int
	knn     [][]Neighbor
}

func runMix(t testing.TB, g *uncertain.Graph, mix []mixQuery, seed int64, workers int, full bool) mixResults {
	b := NewBatch(g, Config{Worlds: 20 + int(seed%2), Seed: seed, Workers: workers})
	b.fullBFS = full
	ids := make([]int, len(mix))
	for i, q := range mix {
		switch q.op {
		case qReliability:
			ids[i] = b.AddReliability(q.s, q.t)
		case qDistance:
			ids[i] = b.AddDistance(q.s, q.t)
		case qKNearest:
			ids[i] = b.AddKNearest(q.s, q.k)
		}
	}
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var res mixResults
	for i, q := range mix {
		switch q.op {
		case qReliability:
			res.rel = append(res.rel, b.Reliability(ids[i]))
		case qDistance:
			dist, disc := b.DistanceDistribution(ids[i])
			res.dists = append(res.dists, dist)
			res.discs = append(res.discs, disc)
			res.medians = append(res.medians, b.MedianDistance(ids[i]))
		case qKNearest:
			res.knn = append(res.knn, b.KNearestWithMedians(ids[i]))
		}
	}
	return res
}

// TestBatchEarlyExitPropertyBitIdentity is the property layer locking
// the tentpole down: for randomized graphs and query mixes, the
// early-exit batch must answer bit-identically to a full-BFS reference
// run on the same seeds, for Workers ∈ {1, 4} — extending
// TestBatchWorkerCountBitIdentity from one pinned mix to an arbitrary
// family. Any divergence (a target read before resolution, a stale
// distance entry, a mark leak across sources) fails with the trial's
// reproduction parameters.
func TestBatchEarlyExitPropertyBitIdentity(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	rng := rand.New(rand.NewSource(20260730))
	for trial := 0; trial < trials; trial++ {
		n := 8 + rng.Intn(56)
		g := randomUncertainGraph(t, rng, n)
		mix := randomMix(rng, n)
		seed := rng.Int63()
		ref := runMix(t, g, mix, seed, 1, true)
		for _, workers := range []int{1, 4} {
			for _, full := range []bool{false, true} {
				if workers == 1 && full {
					continue // the reference itself
				}
				got := runMix(t, g, mix, seed, workers, full)
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("trial %d (n=%d seed=%d workers=%d fullBFS=%v): results diverged from the full-BFS reference\nmix  %+v\ngot  %+v\nwant %+v",
						trial, n, seed, workers, full, mix, got, ref)
				}
			}
		}
	}
}

// TestBatchEarlyExitSkipsComponentScan asserts the fast path is real
// at the engine level, not just in bfs: a reliability-only batch on a
// long certain path with an adjacent target must prune its per-world
// walks, observable as the enqueue count of the worker's last BFS.
func TestBatchEarlyExitSkipsComponentScan(t *testing.T) {
	n := 500
	pairs := make([]uncertain.Pair, n-1)
	for i := range pairs {
		pairs[i] = uncertain.Pair{U: i, V: i + 1, P: 1}
	}
	g, err := uncertain.New(n, pairs)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(g, Config{Worlds: 4, Seed: 1, Workers: 1})
	id := b.AddReliability(0, 1)
	b.MustRun()
	if got := b.Reliability(id); got != 1 {
		t.Fatalf("Pr(0~1) = %v on a certain edge, want 1", got)
	}
	// Every world of a certain path is the full path: the last walk
	// must have stopped after discovering the adjacent target (2
	// enqueues), where a full walk enqueues all n vertices.
	if got := b.ws[0].scratch.Visited(); got != 2 {
		t.Errorf("early-exit walk enqueued %d vertices, want 2", got)
	}
	b.fullBFS = true
	b.MustRun()
	if got := b.ws[0].scratch.Visited(); got != n {
		t.Errorf("fullBFS reference enqueued %d vertices, want %d; test observable is broken", got, n)
	}
}

// TestBatchMemoryBudgetRejects pins the typed over-budget rejection:
// a k-NN query set whose worst-case accumulators exceed MemoryBudget
// fails Run with a *BudgetError wrapping ErrOverBudget before any
// buffer grows, leaves the batch un-ran, and succeeds unchanged once
// the budget allows it.
func TestBatchMemoryBudgetRejects(t *testing.T) {
	g := dblpUncertain(t)
	n := g.NumVertices()
	b := NewBatch(g, Config{Worlds: 10, Seed: 3, Workers: 1, MemoryBudget: 1024})
	id := b.AddKNearest(0, 5)
	err := b.Run(context.Background())
	if !errors.Is(err, ErrOverBudget) {
		t.Fatalf("err = %v, want ErrOverBudget", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %T does not unwrap to *BudgetError", err)
	}
	if want := WorstCaseAccumBytes(n, 1, 1); be.NeedBytes != want || be.BudgetBytes != 1024 {
		t.Errorf("BudgetError = %+v, want need %d budget 1024", be, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("results readable after an over-budget Run")
			}
		}()
		_ = b.KNearest(id)
	}()
	// Raising the budget admits the identical request; answers match an
	// unbudgeted batch bit-for-bit.
	b.MemoryBudget = WorstCaseAccumBytes(n, 1, 1)
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	free := NewBatch(g, Config{Worlds: 10, Seed: 3, Workers: 1})
	fid := free.AddKNearest(0, 5)
	free.MustRun()
	if got, want := b.KNearestWithMedians(id), free.KNearestWithMedians(fid); !reflect.DeepEqual(got, want) {
		t.Errorf("budgeted run diverged: %v vs %v", got, want)
	}
}

// TestBatchResetShedsHighWaterBuffers pins the pooled-serving side of
// the budget: after a k-NN-heavy request grows the accumulators past
// the budget, the next Reset sheds them, and the batch still answers
// subsequent requests correctly.
func TestBatchResetShedsHighWaterBuffers(t *testing.T) {
	g := dblpUncertain(t)
	b := NewBatch(g, Config{Worlds: 10, Seed: 7, Workers: 1})
	for i := 0; i < 4; i++ {
		b.AddKNearest(i*7, 5)
	}
	b.MustRun()
	high := b.AccumulatorBytes()
	if high == 0 {
		t.Fatal("k-NN run retained no accumulator bytes; observable broken")
	}

	// Without a budget, Reset keeps the high-water buffers (the
	// steady-state zero-alloc contract)...
	b.Reset()
	if got := b.AccumulatorBytes(); got != high {
		t.Errorf("budgetless Reset changed retained bytes: %d -> %d", high, got)
	}
	// ...with one, it sheds every accumulator.
	b.MemoryBudget = high / 2
	b.Reset()
	if got := b.AccumulatorBytes(); got != 0 {
		t.Errorf("Reset retained %d accumulator bytes over budget %d, want 0 after shed", got, high/2)
	}
	// The shed batch still serves: a reliability request (worst case 0
	// bytes) runs under the tiny budget and matches a fresh batch.
	b.Seed = 11
	id := b.AddReliability(0, 9)
	b.MustRun()
	fresh := NewBatch(g, Config{Worlds: 10, Seed: 11, Workers: 1})
	fid := fresh.AddReliability(0, 9)
	fresh.MustRun()
	if got, want := b.Reliability(id), fresh.Reliability(fid); got != want {
		t.Errorf("post-shed reliability %v != fresh %v", got, want)
	}
}
