package gen

import (
	"testing"

	"uncertaingraph/internal/randx"
)

var coauthorSizes = []float64{0, 0, 0.5, 0.3, 0.15, 0.05}

func TestAffiliationBasicShape(t *testing.T) {
	g := Affiliation(randx.New(1), 800, 1000, coauthorSizes, 0, 0.4, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 800 {
		t.Fatal("vertex count")
	}
	// ~1000 groups with >= 1 edge each (minus dedup) must leave a
	// substantial edge set.
	if g.NumEdges() < 800 {
		t.Errorf("edges = %d, suspiciously few", g.NumEdges())
	}
}

func TestAffiliationDegreeCap(t *testing.T) {
	cap := 25
	g := Affiliation(randx.New(2), 500, 2000, coauthorSizes, cap, 0.3, 1)
	// The cap is checked before a member joins a group, so a vertex
	// just below the cap can still gain up to groupsize-1 edges.
	slack := len(coauthorSizes)
	if got := g.MaxDegree(); got > cap+slack {
		t.Errorf("max degree %d exceeds cap %d plus slack %d", got, cap, slack)
	}
}

func TestAffiliationRepeatRaisesClustering(t *testing.T) {
	lo := Affiliation(randx.New(3), 1500, 2000, coauthorSizes, 0, 0, 1)
	hi := Affiliation(randx.New(3), 1500, 2000, coauthorSizes, 0, 0.7, 1)
	ccLo, ccHi := clusteringCoeff(lo), clusteringCoeff(hi)
	if ccHi <= ccLo {
		t.Errorf("repeat collaboration did not raise clustering: %v vs %v", ccLo, ccHi)
	}
}

func TestAffiliationDeterministic(t *testing.T) {
	a := Affiliation(randx.New(4), 300, 400, coauthorSizes, 50, 0.5, 1)
	b := Affiliation(randx.New(4), 300, 400, coauthorSizes, 50, 0.5, 1)
	if a.NumEdges() != b.NumEdges() {
		t.Error("same seed must reproduce the same graph")
	}
}

func TestAffiliationCliquePThinsGroups(t *testing.T) {
	full := Affiliation(randx.New(7), 1200, 1500, coauthorSizes, 0, 0.3, 1)
	thin := Affiliation(randx.New(7), 1200, 1500, coauthorSizes, 0, 0.3, 0.3)
	if thin.NumEdges() >= full.NumEdges() {
		t.Errorf("cliqueP=0.3 should thin edges: %d vs %d", thin.NumEdges(), full.NumEdges())
	}
	// Thinning should land near the density ratio.
	ratio := float64(thin.NumEdges()) / float64(full.NumEdges())
	if ratio < 0.2 || ratio > 0.5 {
		t.Errorf("edge ratio %v, want ~0.3", ratio)
	}
	if clusteringCoeff(thin) >= clusteringCoeff(full) {
		t.Error("sparser groups should lower clustering")
	}
}

func TestAffiliationGroupLargerThanN(t *testing.T) {
	// Group sizes above n must clamp, not loop forever.
	sizes := []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 1} // always size 9
	g := Affiliation(randx.New(5), 5, 10, sizes, 0, 0, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Size clamps to 5: the graph converges to K5.
	if g.NumEdges() != 10 {
		t.Errorf("edges = %d, want 10 (K5)", g.NumEdges())
	}
}

func TestCumulativeSampling(t *testing.T) {
	cdf := cumulative([]float64{0, 1, 3})
	if cdf[2] != 1 {
		t.Error("cdf must end at 1")
	}
	rng := randx.New(6)
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[sampleCumulative(rng, cdf)]++
	}
	if counts[0] != 0 {
		t.Error("zero-mass size sampled")
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("size ratio %v, want ~3", ratio)
	}
}
