package gen

import (
	"math/rand"

	"uncertaingraph/internal/graph"
)

// Affiliation grows a collaboration graph from overlapping cliques: the
// model behind co-authorship networks such as DBLP. Each of nGroups
// "events" (papers, photo pools, chat rooms) selects a group of
// vertices — group sizes drawn from sizePMF (index = size), members
// drawn preferentially by current degree with uniform smoothing — and
// connects the group into a clique.
//
// Overlapping cliques produce simultaneously a heavy-tailed degree
// distribution (preferential membership) and high clustering under the
// paper's strict S_CC = T3/T2 definition, which pure
// preferential-attachment models cannot reach.
// maxDeg softly caps the degree tail: candidates at or above the cap
// are rejected during member selection (0 disables the cap). Real
// social datasets differ strongly in how heavy their hub tail is
// relative to the average degree (DBLP ~38x, Flickr ~340x), and without
// a cap preferential membership overshoots at small n.
//
// repeatP is the probability that a new member is recruited among the
// graph neighbours of the members already chosen — repeat
// collaboration, the mechanism that gives co-authorship networks their
// high clustering: it closes triangles against earlier groups instead
// of inflating degrees.
//
// cliqueP is the within-group link density: 1 connects every member
// pair (a true clique, the co-authorship semantics), lower values link
// each pair independently with that probability (contact/follow
// semantics such as Flickr, where shared-interest pools do not imply
// pairwise ties). Values <= 0 are treated as 1.
func Affiliation(rng *rand.Rand, n, nGroups int, sizePMF []float64, maxDeg int, repeatP, cliqueP float64) *graph.Graph {
	b := graph.NewBuilder(n)
	deg := make([]int, n)
	adj := make([][]int32, n)
	// repeated holds one entry per unit of degree for preferential
	// member selection; uniform smoothing keeps newcomers reachable.
	repeated := make([]int, 0, 8*nGroups)
	sizeCDF := cumulative(sizePMF)
	members := make([]int, 0, len(sizePMF))
	seen := make(map[int]bool, len(sizePMF))
	for gi := 0; gi < nGroups; gi++ {
		size := sampleCumulative(rng, sizeCDF)
		if size > n {
			size = n
		}
		members = members[:0]
		for k := range seen {
			delete(seen, k)
		}
		tries := 0
		for len(members) < size && tries < 50*size+100 {
			tries++
			v := -1
			if len(members) > 0 && rng.Float64() < repeatP {
				// Recruit a neighbour of a current member.
				m := members[rng.Intn(len(members))]
				if len(adj[m]) > 0 {
					v = int(adj[m][rng.Intn(len(adj[m]))])
				}
			}
			if v < 0 {
				if len(repeated) == 0 || rng.Float64() < 0.25 {
					v = rng.Intn(n)
				} else {
					v = repeated[rng.Intn(len(repeated))]
				}
			}
			if seen[v] || (maxDeg > 0 && deg[v] >= maxDeg) {
				continue
			}
			seen[v] = true
			members = append(members, v)
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if cliqueP > 0 && cliqueP < 1 && rng.Float64() >= cliqueP {
					continue
				}
				u, w := members[i], members[j]
				if b.AddEdge(u, w) {
					repeated = append(repeated, u, w)
					deg[u]++
					deg[w]++
					adj[u] = append(adj[u], int32(w))
					adj[w] = append(adj[w], int32(u))
				}
			}
		}
	}
	// Vertices of a social graph exist because they appear in at least
	// one relation; attach any vertex the event process missed via one
	// preferential pairwise link, as real crawls have no isolated ids.
	for v := 0; v < n; v++ {
		if deg[v] > 0 {
			continue
		}
		for tries := 0; tries < 100; tries++ {
			var u int
			if len(repeated) == 0 {
				u = rng.Intn(n)
			} else {
				u = repeated[rng.Intn(len(repeated))]
			}
			if u != v && b.AddEdge(v, u) {
				repeated = append(repeated, v, u)
				deg[v]++
				deg[u]++
				break
			}
		}
	}
	return b.Build()
}

// cumulative converts a PMF (index = value) to a CDF for inverse
// sampling.
func cumulative(pmf []float64) []float64 {
	cdf := make([]float64, len(pmf))
	var sum float64
	for i, p := range pmf {
		sum += p
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

func sampleCumulative(rng *rand.Rand, cdf []float64) int {
	u := rng.Float64()
	for i, c := range cdf {
		if u <= c {
			return i
		}
	}
	return len(cdf) - 1
}
