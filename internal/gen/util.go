package gen

import (
	"math"
	"math/rand"
)

// logOneMinus returns ln(1-p) computed stably.
func logOneMinus(p float64) float64 {
	return math.Log1p(-p)
}

// geometricSkip returns a Geometric(p) sample (number of failures before
// the first success), given lnq = ln(1-p).
func geometricSkip(rng *rand.Rand, lnq float64) int {
	if lnq == 0 {
		return math.MaxInt32
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return int(math.Log(u) / lnq)
}

// pairFromIndex maps a lexicographic index over the pairs
// (0,1), (0,2), ..., (0,n-1), (1,2), ... to the pair (u, v), u < v.
func pairFromIndex(idx, n int) (int, int) {
	u := 0
	rowLen := n - 1
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return u, u + 1 + idx
}

// powf is math.Pow, aliased for brevity in the power-law sampler, and
// tolerant of the a ~ 0 corner (gamma ~ 1) where the transform
// degenerates; callers keep gamma away from exactly 1.
func powf(x, a float64) float64 { return math.Pow(x, a) }
