// Package gen provides random-graph generators used to synthesize
// stand-ins for the paper's proprietary datasets (dblp, flickr, Y360)
// and workloads for tests and benchmarks.
//
// The generators cover the regimes the evaluation needs: Erdős–Rényi
// (homogeneous degrees), Barabási–Albert preferential attachment
// (heavy-tailed degrees, low clustering), Holme–Kim (heavy-tailed
// degrees with tunable clustering — the closest simple model to
// co-authorship and friendship networks), the configuration model
// (arbitrary degree sequences), and Watts–Strogatz (small-world, high
// clustering).
package gen

import (
	"math/rand"

	"uncertaingraph/internal/graph"
)

// ErdosRenyiGNM returns a uniform random simple graph with n vertices
// and exactly m edges (m is capped at n*(n-1)/2).
func ErdosRenyiGNM(rng *rand.Rand, n, m int) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	b := graph.NewBuilder(n)
	for b.NumEdges() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		b.AddEdge(u, v)
	}
	return b.Build()
}

// ErdosRenyiGNP returns a G(n, p) graph: each of the n*(n-1)/2 pairs is
// an edge independently with probability p. It uses geometric skipping,
// so the cost is O(n + m) rather than O(n^2).
func ErdosRenyiGNP(rng *rand.Rand, n int, p float64) *graph.Graph {
	b := graph.NewBuilder(n)
	if p <= 0 {
		return b.Build()
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		return b.Build()
	}
	// Iterate pairs in lexicographic order, skipping a Geometric(p)
	// number of non-edges between successive edges (Batagelj–Brandes).
	lnq := logOneMinus(p)
	idx := -1
	total := n * (n - 1) / 2
	for {
		skip := geometricSkip(rng, lnq)
		idx += 1 + skip
		if idx >= total {
			break
		}
		u, v := pairFromIndex(idx, n)
		b.AddEdge(u, v)
	}
	return b.Build()
}

// BarabasiAlbert grows a preferential-attachment graph: it starts from a
// clique on m0 = m+1 vertices, then each new vertex attaches to m
// distinct existing vertices chosen proportionally to degree.
func BarabasiAlbert(rng *rand.Rand, n, m int) *graph.Graph {
	return HolmeKim(rng, n, m, 0)
}

// HolmeKim grows a Barabási–Albert graph with triad formation: after
// each preferential attachment step, with probability pt the next link
// of the new vertex closes a triangle with a random neighbor of the
// previously attached vertex instead of doing a fresh preferential step.
// pt = 0 reduces to pure Barabási–Albert (low clustering); larger pt
// raises the clustering coefficient while keeping the power-law degree
// tail — matching co-authorship-like graphs such as dblp.
func HolmeKim(rng *rand.Rand, n, m int, pt float64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	m0 := m + 1
	if n < m0 {
		m0 = n
	}
	b := graph.NewBuilder(n)
	// adj mirrors the builder for O(1) neighbor sampling during growth.
	adj := make([][]int, n)
	link := func(u, v int) bool {
		if !b.AddEdge(u, v) {
			return false
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		return true
	}
	// repeated holds each vertex once per unit of degree; sampling a
	// uniform element is preferential attachment.
	repeated := make([]int, 0, 2*m*n)
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			link(u, v)
			repeated = append(repeated, u, v)
		}
	}
	for v := m0; v < n; v++ {
		added := 0
		last := -1
		// The new vertex can attach to at most v existing vertices.
		want := m
		if want > v {
			want = v
		}
		for added < want {
			target := -1
			if last >= 0 && pt > 0 && rng.Float64() < pt && len(adj[last]) > 0 {
				// Triad formation: connect to a random neighbor of the
				// last attached vertex, closing a triangle.
				target = adj[last][rng.Intn(len(adj[last]))]
			}
			if target < 0 {
				if len(repeated) == 0 {
					target = rng.Intn(v)
				} else {
					target = repeated[rng.Intn(len(repeated))]
				}
			}
			if target == v || !link(v, target) {
				// Already linked (or chose self); fall back to a fresh
				// preferential step next round.
				last = -1
				continue
			}
			repeated = append(repeated, v, target)
			last = target
			added++
		}
	}
	return b.Build()
}

// ConfigurationModel returns a simple graph whose degree sequence
// approximates the given one: stubs are matched uniformly at random and
// self-loops/multi-edges are discarded, so high-degree vertices may fall
// slightly short of their target degree (standard erased configuration
// model).
func ConfigurationModel(rng *rand.Rand, degrees []int) *graph.Graph {
	n := len(degrees)
	var stubs []int
	for v, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		b.AddEdge(stubs[i], stubs[i+1])
	}
	return b.Build()
}

// PowerLawDegrees samples n degrees from a discrete power law
// P(d) ~ d^-gamma on [dmin, dmax] by inverse-transform sampling of the
// continuous Pareto and rounding down.
func PowerLawDegrees(rng *rand.Rand, n int, gamma float64, dmin, dmax int) []int {
	degrees := make([]int, n)
	a := 1 - gamma
	lo := powf(float64(dmin), a)
	hi := powf(float64(dmax)+1, a)
	for i := range degrees {
		u := rng.Float64()
		x := powf(lo+u*(hi-lo), 1/a)
		d := int(x)
		if d < dmin {
			d = dmin
		}
		if d > dmax {
			d = dmax
		}
		degrees[i] = d
	}
	return degrees
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// vertex connects to its k nearest neighbors on each side, with each
// edge rewired to a uniform random endpoint with probability beta.
func WattsStrogatz(rng *rand.Rand, n, k int, beta float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				// Rewire: keep u, choose a random non-adjacent target.
				for tries := 0; tries < 2*n; tries++ {
					w := rng.Intn(n)
					if w != u && !b.HasEdge(u, w) {
						v = w
						break
					}
				}
			}
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}
