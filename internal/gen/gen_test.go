package gen

import (
	"math"
	"testing"

	"uncertaingraph/internal/graph"
	"uncertaingraph/internal/randx"
)

func TestErdosRenyiGNM(t *testing.T) {
	g := ErdosRenyiGNM(randx.New(1), 100, 300)
	if g.NumVertices() != 100 || g.NumEdges() != 300 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// m capped at complete graph size.
	g2 := ErdosRenyiGNM(randx.New(2), 5, 100)
	if g2.NumEdges() != 10 {
		t.Errorf("capped edges = %d, want 10", g2.NumEdges())
	}
}

func TestErdosRenyiGNPEdgeCount(t *testing.T) {
	n, p := 400, 0.05
	g := ErdosRenyiGNP(randx.New(3), n, p)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := p * float64(n*(n-1)/2)
	got := float64(g.NumEdges())
	// 5 sigma tolerance on a Binomial(n(n-1)/2, p).
	sigma := math.Sqrt(want * (1 - p))
	if math.Abs(got-want) > 5*sigma {
		t.Errorf("edges = %v, want %v +- %v", got, want, 5*sigma)
	}
}

func TestErdosRenyiGNPExtremes(t *testing.T) {
	if g := ErdosRenyiGNP(randx.New(4), 30, 0); g.NumEdges() != 0 {
		t.Error("p=0 should give empty graph")
	}
	if g := ErdosRenyiGNP(randx.New(4), 30, 1); g.NumEdges() != 435 {
		t.Errorf("p=1 should give complete graph, got %d edges", g.NumEdges())
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	n, m := 2000, 3
	g := BarabasiAlbert(randx.New(5), n, m)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != n {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Each of the n-m0 growth steps adds m edges plus the seed clique.
	m0 := m + 1
	wantEdges := m0*(m0-1)/2 + (n-m0)*m
	if g.NumEdges() != wantEdges {
		t.Errorf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	// Minimum degree is m; there must exist hubs far above average.
	minDeg := n
	for _, d := range g.Degrees() {
		if d < minDeg {
			minDeg = d
		}
	}
	if minDeg < m {
		t.Errorf("min degree %d < m = %d", minDeg, m)
	}
	if g.MaxDegree() < 5*m {
		t.Errorf("max degree %d suspiciously small for preferential attachment", g.MaxDegree())
	}
}

func TestBarabasiAlbertHeavyTail(t *testing.T) {
	// The BA degree distribution is ~ d^-3; verify the tail is much
	// heavier than an ER graph of the same density.
	n, m := 5000, 2
	ba := BarabasiAlbert(randx.New(6), n, m)
	er := ErdosRenyiGNM(randx.New(6), n, ba.NumEdges())
	if ba.MaxDegree() < 3*er.MaxDegree() {
		t.Errorf("BA max degree %d not >> ER max degree %d", ba.MaxDegree(), er.MaxDegree())
	}
}

func clusteringCoeff(g *graph.Graph) float64 {
	// Local check helper: global CC = 3*T3 / open+closed triples; only
	// used comparatively here, exact statistics live in internal/stats.
	triangles := 0
	triples := 0
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		d := len(nbrs)
		triples += d * (d - 1) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(int(nbrs[i]), int(nbrs[j])) {
					triangles++
				}
			}
		}
	}
	if triples == 0 {
		return 0
	}
	// Each triangle counted 3 times (once per corner).
	return float64(triangles) / float64(triples)
}

func TestHolmeKimRaisesClustering(t *testing.T) {
	n, m := 3000, 3
	ba := HolmeKim(randx.New(7), n, m, 0)
	hk := HolmeKim(randx.New(7), n, m, 0.8)
	ccBA, ccHK := clusteringCoeff(ba), clusteringCoeff(hk)
	if ccHK < 2*ccBA {
		t.Errorf("triad formation did not raise clustering: BA %v, HK %v", ccBA, ccHK)
	}
	if err := hk.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConfigurationModel(t *testing.T) {
	rng := randx.New(8)
	degrees := PowerLawDegrees(rng, 2000, 2.5, 2, 100)
	g := ConfigurationModel(rng, degrees)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The erased model discards few edges; total degree should be within
	// 10% of the target.
	target := 0
	for _, d := range degrees {
		target += d
	}
	got := 2 * g.NumEdges()
	if float64(got) < 0.9*float64(target/2*2) {
		t.Errorf("degree mass %d too far below target %d", got, target)
	}
}

func TestPowerLawDegreesRange(t *testing.T) {
	rng := randx.New(9)
	degrees := PowerLawDegrees(rng, 10000, 2.2, 3, 500)
	minD, maxD := 1<<30, 0
	for _, d := range degrees {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD < 3 || maxD > 500 {
		t.Errorf("degrees out of range: min %d max %d", minD, maxD)
	}
	// Heavy tail: some degree far above dmin must occur.
	if maxD < 30 {
		t.Errorf("max degree %d too small for gamma=2.2", maxD)
	}
	// Majority of mass near dmin.
	low := 0
	for _, d := range degrees {
		if d <= 6 {
			low++
		}
	}
	if float64(low)/10000 < 0.5 {
		t.Errorf("only %d/10000 degrees <= 6; tail too heavy", low)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(randx.New(10), 500, 3, 0.1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Fatal("vertex count")
	}
	// Ring lattice base: ~n*k edges (rewiring preserves count unless a
	// rewire target search fails, which is essentially impossible here).
	if g.NumEdges() < 1400 || g.NumEdges() > 1500 {
		t.Errorf("edges = %d, want ~1500", g.NumEdges())
	}
	// beta=0 is a deterministic lattice with high clustering.
	lattice := WattsStrogatz(randx.New(11), 500, 3, 0)
	if cc := clusteringCoeff(lattice); cc < 0.5 {
		t.Errorf("lattice clustering %v, want >= 0.5", cc)
	}
}

func TestGeneratorsDeterministicForSeed(t *testing.T) {
	a := HolmeKim(randx.New(42), 500, 3, 0.4)
	b := HolmeKim(randx.New(42), 500, 3, 0.4)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed must give identical edge lists")
		}
	}
}

func TestPairFromIndex(t *testing.T) {
	n := 7
	idx := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gu, gv := pairFromIndex(idx, n)
			if gu != u || gv != v {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}
