// Smoke tests for every cmd/ binary and examples/ program: build each
// one, run it on a tiny input, and assert the exit status and the key
// lines of its output. They catch wiring regressions (flag parsing, IO
// formats, panic on startup) that package-level unit tests cannot see.
// Skipped in -short mode: they exec the Go toolchain to link binaries.
package uncertaingraph_test

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	ug "uncertaingraph"
	ugen "uncertaingraph/internal/gen"
	"uncertaingraph/internal/randx"
)

var (
	smokeBuildOnce sync.Once
	smokeBinDir    string
	smokeBuildErr  error
)

// buildSmokeBinaries links every main package once per test run into a
// shared temp dir; the dir is removed by TestMain when the run ends.
func buildSmokeBinaries(t *testing.T) string {
	t.Helper()
	smokeBuildOnce.Do(func() {
		smokeBinDir, smokeBuildErr = os.MkdirTemp("", "smokebin")
		if smokeBuildErr != nil {
			return
		}
		out, err := exec.Command("go", "build", "-o", smokeBinDir+string(os.PathSeparator), "./cmd/...").CombinedOutput()
		if err != nil {
			smokeBuildErr = &buildError{string(out), err}
			return
		}
		for _, ex := range []string{
			"quickstart", "paperexample", "queries",
			"comparison", "socialnetwork", "sequentialrelease",
		} {
			out, err := exec.Command("go", "build",
				"-o", filepath.Join(smokeBinDir, "example-"+ex), "./examples/"+ex).CombinedOutput()
			if err != nil {
				smokeBuildErr = &buildError{string(out), err}
				return
			}
		}
	})
	if smokeBuildErr != nil {
		t.Fatalf("building smoke binaries: %v", smokeBuildErr)
	}
	return smokeBinDir
}

type buildError struct {
	output string
	err    error
}

func (e *buildError) Error() string { return e.err.Error() + "\n" + e.output }

// runSmoke executes a built binary and returns its combined output,
// failing the test on a non-zero exit status.
func runSmoke(t *testing.T, bin string, args ...string) string {
	t.Helper()
	dir := buildSmokeBinaries(t)
	cmd := exec.Command(filepath.Join(dir, bin), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", bin, strings.Join(args, " "), err, out)
	}
	return string(out)
}

func wantLines(t *testing.T, out string, needles ...string) {
	t.Helper()
	for _, needle := range needles {
		if !strings.Contains(out, needle) {
			t.Errorf("output missing %q:\n%s", needle, out)
		}
	}
}

// smokeEdges generates a small edge list via the gengraph binary itself
// (so the generator CLI is exercised on the way) and returns its path.
func smokeEdges(t *testing.T) string {
	path := filepath.Join(t.TempDir(), "smoke.edges")
	out := runSmoke(t, "gengraph", "-model", "ba", "-n", "150", "-m", "3", "-seed", "4", "-out", path)
	wantLines(t, out, "generated: 150 vertices")
	return path
}

func TestSmokeGengraph(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the toolchain")
	}
	path := filepath.Join(t.TempDir(), "dblp.edges")
	out := runSmoke(t, "gengraph", "-dataset", "dblp", "-scale", "tiny", "-out", path)
	wantLines(t, out, "generated:", "vertices")
	if st, err := os.Stat(path); err != nil || st.Size() == 0 {
		t.Errorf("gengraph wrote no edges: %v", err)
	}
}

func TestSmokeObfuscateAndEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the toolchain")
	}
	edges := smokeEdges(t)
	ugPath := filepath.Join(t.TempDir(), "smoke.ug")
	out := runSmoke(t, "obfuscate",
		"-in", edges, "-k", "3", "-eps", "0.2", "-t", "2",
		"-delta", "1e-3", "-workers", "2", "-seed", "1", "-out", ugPath)
	wantLines(t, out, "loaded: 150 vertices", "(k=3, eps=0.2)-obfuscation found")

	// The published file and a second run must agree bit-for-bit: the
	// CLI inherits the engine's Workers-independent determinism.
	first, err := os.ReadFile(ugPath)
	if err != nil {
		t.Fatal(err)
	}
	runSmoke(t, "obfuscate",
		"-in", edges, "-k", "3", "-eps", "0.2", "-t", "2",
		"-delta", "1e-3", "-workers", "5", "-seed", "1", "-out", ugPath)
	second, err := os.ReadFile(ugPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("obfuscate output differs between -workers 2 and -workers 5")
	}

	// -format binary publishes the identical graph in the .ugb
	// container: decoded and re-serialized as text it must reproduce
	// the text run byte for byte.
	binPath := filepath.Join(t.TempDir(), "smoke.ugb")
	runSmoke(t, "obfuscate",
		"-in", edges, "-k", "3", "-eps", "0.2", "-t", "2",
		"-delta", "1e-3", "-workers", "2", "-seed", "1",
		"-format", "binary", "-out", binPath)
	gBin, err := ug.LoadUncertainGraphBinary(binPath)
	if err != nil {
		t.Fatal(err)
	}
	var asText bytes.Buffer
	if err := ug.WriteUncertainGraph(&asText, gBin); err != nil {
		t.Fatal(err)
	}
	if asText.String() != string(first) {
		t.Error("obfuscate -format binary decodes to a different graph than the text output")
	}

	out = runSmoke(t, "evaluate",
		"-uncertain", ugPath, "-worlds", "5", "-exact-distances", "-ref", edges,
		"-workers", "1")
	wantLines(t, out, "sampling 5 worlds", "S_NE", "S_CC")

	// The sampling pipeline inherits the same Workers-independence: the
	// rendered statistics must agree bit-for-bit across worker counts.
	out3 := runSmoke(t, "evaluate",
		"-uncertain", ugPath, "-worlds", "5", "-exact-distances", "-ref", edges,
		"-workers", "3")
	if out != out3 {
		t.Error("evaluate output differs between -workers 1 and -workers 3")
	}
}

func TestSmokeEvaluateCertain(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the toolchain")
	}
	out := runSmoke(t, "evaluate", "-graph", smokeEdges(t), "-exact-distances")
	wantLines(t, out, "S_NE", "S_APD")
}

func TestSmokeTrailattack(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the toolchain")
	}
	out := runSmoke(t, "trailattack",
		"-n", "150", "-releases", "2", "-k", "3", "-eps", "0.2",
		"-t", "1", "-delta", "1e-3", "-targets", "20", "-workers", "2")
	wantLines(t, out, "degree-trail attack", "certain releases:", "uncertain releases:")
}

// TestSmokeQueryd boots the query-serving daemon on an ephemeral port,
// reads the advertised address from its stdout, and exercises the
// health, single-query and batch endpoints over real HTTP, including
// the identical-request determinism contract.
func TestSmokeQueryd(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the toolchain")
	}
	dir := buildSmokeBinaries(t)

	// Publish a small uncertain graph for the daemon to load.
	g := ugen.HolmeKim(randx.New(9), 120, 3, 0.3)
	var pairs []ug.Pair
	g.ForEachEdge(func(u, v int) {
		pairs = append(pairs, ug.Pair{U: u, V: v, P: float64((u+v)%9+1) / 10})
	})
	pub, err := ug.NewUncertainGraph(g.NumVertices(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	ugPath := filepath.Join(t.TempDir(), "published.ug")
	f, err := os.Create(ugPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ug.WriteUncertainGraph(f, pub); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cmd := exec.Command(filepath.Join(dir, "queryd"),
		"-graph", ugPath, "-addr", "127.0.0.1:0", "-worlds", "200", "-seed", "7")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("queryd printed no address line: %v", sc.Err())
	}
	line := sc.Text()
	wantLines(t, line, "queryd: serving 120 vertices")
	i := strings.Index(line, "http://")
	if i < 0 {
		t.Fatalf("no address in queryd output %q", line)
	}
	base := line[i:]

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	wantLines(t, get("/healthz"), `"vertices":120`, `"default_worlds":200`)
	wantLines(t, get("/reliability?s=0&t=50"), `"reliability":`, `"worlds":200`)
	wantLines(t, get("/knn?s=0&k=3"), `"neighbors":`, `"median":`)

	post := func() string {
		resp, err := http.Post(base+"/batch", "application/json", strings.NewReader(
			`{"queries":[{"op":"distance","s":0,"t":60},{"op":"reliability","s":0,"t":60}]}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /batch: status %d err %v: %s", resp.StatusCode, err, body)
		}
		return string(body)
	}
	first := post()
	wantLines(t, first, `"median":`, `"disconnected":`)
	if second := post(); second != first {
		t.Errorf("identical batch requests answered differently:\n%s\nvs\n%s", first, second)
	}

	// Graceful shutdown: SIGTERM drains and exits 0 (a supervisor's stop
	// is not an error), printing the shutdown breadcrumbs.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var rest strings.Builder
	for sc.Scan() {
		rest.WriteString(sc.Text())
		rest.WriteString("\n")
	}
	if err := cmd.Wait(); err != nil {
		t.Errorf("queryd exited non-zero after SIGTERM: %v", err)
	}
	wantLines(t, rest.String(), "queryd: shutting down", "queryd: shutdown complete")
}

// TestSmokeQuerydMultiGraph boots the daemon on a directory of
// published graphs and exercises the multi-tenant surface end to end:
// named query endpoints, the graph list, /healthz echoing -max-queries
// and the registry stats, uploading a new graph over HTTP, deleting
// it, and the 404 for unknown names.
func TestSmokeQuerydMultiGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the toolchain")
	}
	dir := buildSmokeBinaries(t)

	// Two published releases in one directory, named by basename.
	relDir := t.TempDir()
	writeGraph := func(name string, n int, seed int64) string {
		g := ugen.HolmeKim(randx.New(seed), n, 3, 0.3)
		var pairs []ug.Pair
		g.ForEachEdge(func(u, v int) {
			pairs = append(pairs, ug.Pair{U: u, V: v, P: float64((u+v)%9+1) / 10})
		})
		pub, err := ug.NewUncertainGraph(g.NumVertices(), pairs)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(relDir, name+".ug")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ug.WriteUncertainGraph(f, pub); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	writeGraph("epoch1", 80, 3)
	epoch2 := writeGraph("epoch2", 90, 4)

	cmd := exec.Command(filepath.Join(dir, "queryd"),
		"-graphs", relDir, "-addr", "127.0.0.1:0",
		"-worlds", "100", "-seed", "7", "-max-queries", "37")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("queryd printed no address line: %v", sc.Err())
	}
	line := sc.Text()
	wantLines(t, line, "across 2 graph(s)")
	i := strings.Index(line, "http://")
	if i < 0 {
		t.Fatalf("no address in queryd output %q", line)
	}
	base := line[i:]

	do := func(method, path string, body io.Reader, wantStatus int) string {
		t.Helper()
		req, err := http.NewRequest(method, base+path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s %s: status %d, want %d: %s", method, path, resp.StatusCode, wantStatus, b)
		}
		return string(b)
	}

	wantLines(t, do("GET", "/healthz", nil, 200),
		`"max_queries":37`, `"registry":`, `"epoch1"`, `"epoch2"`)
	wantLines(t, do("GET", "/graphs", nil, 200),
		`"epoch1"`, `"epoch2"`, `"resident_bytes":`, `"global_mem_budget":`)
	wantLines(t, do("GET", "/graphs/epoch1/reliability?s=0&t=40", nil, 200),
		`"reliability":`, `"graph":"epoch1"`)
	wantLines(t, do("GET", "/graphs/epoch2/knn?s=0&k=3", nil, 200),
		`"neighbors":`, `"graph":"epoch2"`)
	do("GET", "/graphs/nosuch/reliability?s=0&t=1", nil, 404)
	// No -graph and two graphs loaded: there is no default, so the
	// legacy alias 404s while the named endpoints serve.
	do("GET", "/reliability?s=0&t=1", nil, 404)

	// Publish a third graph over HTTP and query it, then delete it.
	src, err := os.ReadFile(epoch2)
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, do("PUT", "/graphs/epoch3?worlds=50", strings.NewReader(string(src)), 200),
		`"created":true`, `"worlds":50`)
	wantLines(t, do("GET", "/graphs/epoch3/reliability?s=0&t=40", nil, 200),
		`"worlds":50`)
	do("DELETE", "/graphs/epoch3", nil, 200)
	do("GET", "/graphs/epoch3/reliability?s=0&t=40", nil, 404)
}

// TestSmokeBinaryConvertAndQueryd drives the binary format end to end
// through the CLIs: gengraph -convert turns a text release into a
// .ugb (and back, byte-identically), and queryd boots from each,
// answering the same request bit-identically — the text daemon parsing
// its file, the binary daemon memory-mapping it.
func TestSmokeBinaryConvertAndQueryd(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the toolchain")
	}
	dir := buildSmokeBinaries(t)

	g := ugen.HolmeKim(randx.New(5), 100, 3, 0.3)
	var pairs []ug.Pair
	g.ForEachEdge(func(u, v int) {
		pairs = append(pairs, ug.Pair{U: u, V: v, P: float64((u+v)%9+1) / 10})
	})
	pub, err := ug.NewUncertainGraph(g.NumVertices(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	textDir, binDir := t.TempDir(), t.TempDir()
	textPath := filepath.Join(textDir, "release.ug")
	f, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ug.WriteUncertainGraph(f, pub); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Text → binary, then binary → text: the round trip must reproduce
	// the original file byte for byte (Write emits exact floats).
	binPath := filepath.Join(binDir, "release.ugb")
	wantLines(t, runSmoke(t, "gengraph", "-convert", textPath, "-o", binPath),
		"converted: 100 vertices", "to binary")
	if !ug.SniffUncertainGraphBinary(mustReadFile(t, binPath)) {
		t.Fatal("converted file does not carry the .ugb magic")
	}
	backPath := filepath.Join(t.TempDir(), "back.ug")
	wantLines(t, runSmoke(t, "gengraph", "-convert", binPath, "-format", "text", "-o", backPath),
		"to text")
	if string(mustReadFile(t, backPath)) != string(mustReadFile(t, textPath)) {
		t.Error("text → binary → text round trip is not byte-identical")
	}

	// Boot one daemon per format; both graphs are named "release", so
	// the content-derived request seeds coincide and the answers must
	// match bit for bit.
	boot := func(graphsDir, wantMem string) (base string, stop func()) {
		t.Helper()
		cmd := exec.Command(filepath.Join(dir, "queryd"),
			"-graphs", graphsDir, "-addr", "127.0.0.1:0", "-worlds", "150", "-seed", "7")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		stop = func() {
			cmd.Process.Kill()
			cmd.Wait()
		}
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			stop()
			t.Fatalf("queryd printed no address line: %v", sc.Err())
		}
		line := sc.Text()
		wantLines(t, line, "serving 100 vertices")
		if !sc.Scan() {
			stop()
			t.Fatalf("queryd printed no graph line: %v", sc.Err())
		}
		wantLines(t, sc.Text(), `graph "release"`, wantMem)
		i := strings.Index(line, "http://")
		if i < 0 {
			stop()
			t.Fatalf("no address in queryd output %q", line)
		}
		return line[i:], stop
	}
	textBase, stopText := boot(textDir, "resident bytes")
	defer stopText()
	binBase, stopBin := boot(binDir, "mapped bytes")
	defer stopBin()

	get := func(base, path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d err %v: %s", path, resp.StatusCode, err, body)
		}
		return string(body)
	}
	const q = "/graphs/release/reliability?s=0&t=40"
	textAns, binAns := get(textBase, q), get(binBase, q)
	wantLines(t, textAns, `"reliability":`, `"worlds":150`)
	if textAns != binAns {
		t.Errorf("binary-served answer diverges from text-served:\n%s\nvs\n%s", binAns, textAns)
	}
	wantLines(t, get(binBase, "/graphs/release"), `"mapped_bytes":`)
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSmokeExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the toolchain")
	}
	out := runSmoke(t, "experiments",
		"-exp", "table2", "-scale", "tiny", "-trials", "1",
		"-delta", "1e-3", "-workers", "2")
	wantLines(t, out, "dblp", "flickr", "y360", "done in")
}

func TestSmokeExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the toolchain")
	}
	// Key output lines pinned per example; each runs without arguments.
	cases := map[string][]string{
		"quickstart":        {"verified (k=5", "expected edges"},
		"paperexample":      {"(3, 0.25)-obfuscation: true", "H(Y_deg=3)"},
		"queries":           {"reliability", "nearest neighbours"},
		"comparison":        {"sparsification", "avg rel.err"},
		"socialnetwork":     {"k = 5", "rel.err"},
		"sequentialrelease": {"releases", "crowd"},
	}
	for name, needles := range cases {
		t.Run(name, func(t *testing.T) {
			out := runSmoke(t, "example-"+name)
			wantLines(t, out, needles...)
		})
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	if smokeBinDir != "" {
		os.RemoveAll(smokeBinDir)
	}
	os.Exit(code)
}
