# Developer and CI entry points. `make ci` is what the GitHub Actions
# workflow runs; each target also works standalone.

GO ?= go

# Label stamped onto bench-sampling runs in BENCH_sampling.json.
BENCH_LABEL ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo local)

.PHONY: build test race vet fmt-check seed-check lint cover bench bench-sampling bench-query bench-obfuscate bench-bfs bench-qserve bench-io ci

# Total-coverage floor enforced by `make cover`. 75.9% measured when
# the target was introduced (PR 5), raised to 78 with the result-cache
# test layer (PR 10); raise it as coverage grows, never lower it to
# paper over a regression.
COVER_MIN ?= 78.0

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short mode keeps the race run fast: the concurrency exercises in
# race_test.go and the parallel engine tests all run; only the
# toolchain-exec smoke tests and the 5k-vertex benchmark check skip.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt; prints the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt required for:"; echo "$$out"; exit 1; fi

# Seeding discipline behind the one determinism contract: every RNG
# stream must derive from internal/randx (randx.New / randx.Derive).
# An ad-hoc rand.New(rand.NewSource(...)) anywhere else forks the
# contract — results would stop being a pure function of the seed — so
# it fails CI. Tests are exempt (they may pin arbitrary streams).
seed-check:
	@out="$$(grep -rn 'rand\.New(rand\.NewSource' --include='*.go' . \
		| grep -v 'internal/randx/' | grep -v '_test\.go')"; \
	if [ -n "$$out" ]; then \
		echo "ad-hoc RNG seeding outside internal/randx (use randx.New / randx.Derive):"; \
		echo "$$out"; exit 1; fi

lint: vet fmt-check seed-check

# Coverage gate: writes coverage.out (uploaded as a CI artifact) and
# fails when total statement coverage drops below COVER_MIN.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }')"; \
	echo "total statement coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit (t+0 >= m+0) ? 0 : 1 }' || { \
		echo "coverage $$total% fell below the $(COVER_MIN)% floor"; exit 1; }

# The headline comparison: sequential vs parallel full Algorithm 1 runs
# on the ~5k-vertex stand-in (plus the rest of the benchmark suite via
# `go test -bench=. .`).
bench:
	$(GO) test -run TestObfuscateBenchConfigEquivalence \
		-bench 'BenchmarkObfuscate(Sequential|Parallel)' -benchtime 5x .

# Possible-world engine benchmarks, appended as a JSON record to
# BENCH_sampling.json (the first record is the pre-refactor baseline;
# see README "Graph representation & memory model"). A temp file, not a
# pipe, carries the output so a go-test failure fails the target
# (benchfmt additionally refuses runs whose output contains FAIL).
bench-sampling:
	@tmp="$$(mktemp)"; \
	$(GO) test -run '^$$' \
		-bench 'BenchmarkSampleWorlds$$|BenchmarkSampleWorldsNaive$$|BenchmarkEstimateStatistics$$|BenchmarkEstimateStatisticsANF$$|BenchmarkEstimateAdaptive$$' \
		-benchmem -benchtime 3x ./internal/sampling > "$$tmp" 2>&1; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat "$$tmp"; rm -f "$$tmp"; exit $$status; fi; \
	$(GO) run ./cmd/benchfmt -label "$(BENCH_LABEL)" -file BENCH_sampling.json < "$$tmp"; \
	status=$$?; rm -f "$$tmp"; exit $$status

# Query-serving engine benchmarks (batched vs one-shot serving of the
# same query mix, plus the reliability-only early-exit pair), appended
# as a JSON record to BENCH_query.json. The BatchQueries line must
# report 0 allocs/op: the per-world query loop is allocation-free once
# warm. ReliabilityOnly vs ReliabilityOnlyFullBFS is the
# target-resolved early exit, bit-identical answers.
bench-query:
	@tmp="$$(mktemp)"; \
	$(GO) test -run '^$$' \
		-bench 'BenchmarkBatchQueries$$|BenchmarkSingleQueries$$|BenchmarkBatchReliabilityOnly$$|BenchmarkBatchReliabilityOnlyFullBFS$$' \
		-benchmem -benchtime 3x ./internal/query > "$$tmp" 2>&1; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat "$$tmp"; rm -f "$$tmp"; exit $$status; fi; \
	$(GO) run ./cmd/benchfmt -label "$(BENCH_LABEL)" -file BENCH_query.json < "$$tmp"; \
	status=$$?; rm -f "$$tmp"; exit $$status

# Direction-optimizing frontier BFS benchmarks (pure push vs pure pull
# vs the density heuristic on a >= 100k-edge scale-free graph),
# appended as a JSON record to BENCH_bfs.json. DirectionOpt's
# frontier-switches/op lands in the record's metrics map; the
# acceptance bar is DirectionOpt beating Push at high-density
# frontiers.
bench-bfs:
	@tmp="$$(mktemp)"; \
	$(GO) test -run '^$$' \
		-bench 'BenchmarkBFSPush$$|BenchmarkBFSPull$$|BenchmarkBFSDirectionOpt$$' \
		-benchmem -benchtime 3x ./internal/bfs > "$$tmp" 2>&1; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat "$$tmp"; rm -f "$$tmp"; exit $$status; fi; \
	$(GO) run ./cmd/benchfmt -label "$(BENCH_LABEL)" -file BENCH_bfs.json < "$$tmp"; \
	status=$$?; rm -f "$$tmp"; exit $$status

# Full-Algorithm-1 obfuscation benchmarks (sequential vs parallel runs
# of the context-first engine on the ~5k-vertex stand-in), appended as
# a JSON record to BENCH_obfuscate.json so the search's perf trajectory
# stays visible across PRs, like bench-sampling/bench-query.
bench-obfuscate:
	@tmp="$$(mktemp)"; \
	$(GO) test -run '^$$' \
		-bench 'BenchmarkObfuscate(Sequential|Parallel)$$' \
		-benchmem -benchtime 3x . > "$$tmp" 2>&1; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat "$$tmp"; rm -f "$$tmp"; exit $$status; fi; \
	$(GO) run ./cmd/benchfmt -label "$(BENCH_LABEL)" -file BENCH_obfuscate.json < "$$tmp"; \
	status=$$?; rm -f "$$tmp"; exit $$status

# Multi-tenant serving benchmarks (steady-state hot request vs the
# post-eviction cold path that reloads a graph from its retained
# source, plus the result-cache triplet: stored-answer hit, miss
# against a resident graph, miss that also reloads), appended as a
# JSON record to BENCH_qserve.json. The gap between the first pair is
# the price of an LRU eviction miss under the global memory budget;
# the acceptance bar for the cache is hot-cache >= 10x faster than the
# cache-disabled hot request.
bench-qserve:
	@tmp="$$(mktemp)"; \
	$(GO) test -run '^$$' \
		-bench 'BenchmarkRegistryHotRequest$$|BenchmarkRegistryColdReload$$|BenchmarkRegistryCachedRequest$$' \
		-benchmem -benchtime 20x ./internal/qserve > "$$tmp" 2>&1; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat "$$tmp"; rm -f "$$tmp"; exit $$status; fi; \
	$(GO) run ./cmd/benchfmt -label "$(BENCH_LABEL)" -file BENCH_qserve.json < "$$tmp"; \
	status=$$?; rm -f "$$tmp"; exit $$status

# Cold-load benchmarks (text parse vs mmap'd .ugb of the same graph),
# appended as a JSON record to BENCH_io.json. The pair is the on-disk
# format's acceptance bar: UGB must cold-start >= 5x faster than the
# text parse with allocations independent of graph size.
bench-io:
	@tmp="$$(mktemp)"; \
	$(GO) test -run '^$$' \
		-bench 'BenchmarkColdLoadText$$|BenchmarkColdLoadUGB$$' \
		-benchmem -benchtime 10x ./internal/ugbin > "$$tmp" 2>&1; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat "$$tmp"; rm -f "$$tmp"; exit $$status; fi; \
	$(GO) run ./cmd/benchfmt -label "$(BENCH_LABEL)" -file BENCH_io.json < "$$tmp"; \
	status=$$?; rm -f "$$tmp"; exit $$status

ci: build lint test race
