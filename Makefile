# Developer and CI entry points. `make ci` is what the GitHub Actions
# workflow runs; each target also works standalone.

GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short mode keeps the race run fast: the concurrency exercises in
# race_test.go and the parallel engine tests all run; only the
# toolchain-exec smoke tests and the 5k-vertex benchmark check skip.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# The headline comparison: sequential vs parallel full Algorithm 1 runs
# on the ~5k-vertex stand-in (plus the rest of the benchmark suite via
# `go test -bench=. .`).
bench:
	$(GO) test -run TestObfuscateBenchConfigEquivalence \
		-bench 'BenchmarkObfuscate(Sequential|Parallel)' -benchtime 5x .

ci: build vet test race
