// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// benchmark reports, via custom metrics, the quantity the design choice
// trades off — utility error, achieved anonymity, or accuracy — next to
// the usual time/op, so `go test -bench=Ablation` doubles as an
// ablation study:
//
//   - uniqueness-proportional σ(e) redistribution (Eq. 7) vs uniform σ;
//   - the H-set exclusion of the ⌈ε/2·n⌉ most unique vertices;
//   - the white-noise fraction q;
//   - exact Poisson-binomial DP vs the CLT approximation;
//   - HyperANF vs exact BFS distance distributions;
//   - the entropy measure vs the a-posteriori belief measure.
package uncertaingraph_test

import (
	"math"
	"testing"

	ug "uncertaingraph"
	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/anf"
	"uncertaingraph/internal/bfs"
	"uncertaingraph/internal/core"
	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/pbinom"
	"uncertaingraph/internal/uncertain"
)

func ablationGraph(b *testing.B) *ug.Graph {
	d, err := datasets.Generate(datasets.Specs[0], datasets.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	return d.Graph
}

// notObfuscated returns the fraction of vertices not k-obfuscated.
func notObfuscated(g *ug.Graph, u *uncertain.Graph, k float64) float64 {
	return adversary.NotObfuscatedFraction(adversary.UncertainModel{G: u}, g.Degrees(), k)
}

// uniformProperty collapses every vertex to one property value, which
// makes all uniqueness scores equal: σ(e) redistribution (Eq. 7) and
// Q-weighted candidate sampling both degenerate to uniform. Comparing
// against the real degree property isolates the paper's
// uniqueness-guided noise placement.
type uniformProperty struct{}

func (uniformProperty) Name() string { return "uniform" }
func (uniformProperty) Values(g *ug.Graph) []int {
	return make([]int, g.NumVertices())
}
func (uniformProperty) Distance(a, b int) float64 { return float64(a - b) }

// BenchmarkAblationSigmaRedistribution compares the achieved
// non-obfuscated fraction at a fixed noise budget with and without
// uniqueness-proportional redistribution. The reported metrics
// eps_guided and eps_uniform show guided placement obfuscating more
// vertices for the same average σ.
func BenchmarkAblationSigmaRedistribution(b *testing.B) {
	g := ablationGraph(b)
	sigma := 0.05
	var guided, uniform float64
	n := 0
	for i := 0; i < b.N; i++ {
		pg := core.Params{K: 10, Eps: 0.99, Trials: 1, Rng: ug.NewRand(int64(i))}
		ag := core.GenerateObfuscation(g, sigma, pg)
		pu := pg
		pu.Property = uniformProperty{}
		pu.Rng = ug.NewRand(int64(i))
		au := core.GenerateObfuscation(g, sigma, pu)
		if !ag.Failed() && !au.Failed() {
			guided += ag.EpsTilde
			uniform += au.EpsTilde
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(guided/float64(n), "eps_guided")
		b.ReportMetric(uniform/float64(n), "eps_uniform")
	}
}

// BenchmarkAblationWhiteNoise sweeps the q parameter and reports the
// achieved eps and the expected edge distortion: more white noise helps
// privacy but costs utility (Section 5.1's q discussion).
func BenchmarkAblationWhiteNoise(b *testing.B) {
	g := ablationGraph(b)
	for _, q := range []float64{0, 0.01, 0.1} {
		b.Run(qLabel(q), func(b *testing.B) {
			var eps, distortion float64
			n := 0
			for i := 0; i < b.N; i++ {
				params := core.Params{K: 10, Eps: 0.99, Q: q, Trials: 1, Rng: ug.NewRand(int64(i))}
				att := core.GenerateObfuscation(g, 0.05, params)
				if att.Failed() {
					continue
				}
				eps += notObfuscated(g, att.G, 10)
				distortion += math.Abs(att.G.ExpectedNumEdges()-float64(g.NumEdges())) / float64(g.NumEdges())
				n++
			}
			if n > 0 {
				b.ReportMetric(eps/float64(n), "eps_achieved")
				b.ReportMetric(distortion/float64(n), "edge_distortion")
			}
		})
	}
}

func qLabel(q float64) string {
	switch q {
	case 0:
		return "q=0"
	case 0.01:
		return "q=0.01"
	default:
		return "q=0.10"
	}
}

// BenchmarkAblationExactVsApproxDegreeDist compares the exact Lemma 1
// DP against the CLT approximation on the adversary check: the
// approximation is faster per vertex at high incident counts with
// near-identical ε̃ (reported as eps_exact / eps_approx).
func BenchmarkAblationExactVsApproxDegreeDist(b *testing.B) {
	g := ablationGraph(b)
	att := core.GenerateObfuscation(g, 0.1, core.Params{K: 10, Eps: 0.99, Trials: 1, Rng: ug.NewRand(1)})
	if att.Failed() {
		b.Fatal("setup failed")
	}
	degrees := g.Degrees()
	b.Run("exact", func(b *testing.B) {
		m := adversary.UncertainModel{G: att.G, ExactThreshold: 1 << 20}
		var eps float64
		for i := 0; i < b.N; i++ {
			eps = adversary.NotObfuscatedFraction(m, degrees, 10)
		}
		b.ReportMetric(eps, "eps_exact")
	})
	b.Run("clt30", func(b *testing.B) {
		m := adversary.UncertainModel{G: att.G, ExactThreshold: pbinom.DefaultExactThreshold}
		var eps float64
		for i := 0; i < b.N; i++ {
			eps = adversary.NotObfuscatedFraction(m, degrees, 10)
		}
		b.ReportMetric(eps, "eps_approx")
	})
}

// BenchmarkAblationANFvsBFS compares the paper's HyperANF estimator
// against the exact BFS oracle: time/op shows the scalability gap, the
// apd_rel_err metric the accuracy cost.
func BenchmarkAblationANFvsBFS(b *testing.B) {
	g := ablationGraph(b)
	exact := bfs.DistanceDistribution(g).AvgDistance()
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bfs.DistanceDistribution(g)
		}
		b.ReportMetric(0, "apd_rel_err")
	})
	b.Run("anf", func(b *testing.B) {
		var err float64
		for i := 0; i < b.N; i++ {
			est := anf.DistanceDistribution(g, anf.Options{Seed: uint64(i)}).AvgDistance()
			err += math.Abs(est-exact) / exact
		}
		b.ReportMetric(err/float64(b.N), "apd_rel_err")
	})
}

// BenchmarkAblationEntropyVsBelief compares the paper's entropy measure
// against the a-posteriori belief measure on the same published graph:
// belief is strictly more pessimistic (level_belief <= level_entropy),
// which is why the entropy measure certifies more vertices at equal
// noise (the Bonchi et al. argument the paper builds on).
func BenchmarkAblationEntropyVsBelief(b *testing.B) {
	g := ablationGraph(b)
	att := core.GenerateObfuscation(g, 0.1, core.Params{K: 10, Eps: 0.99, Trials: 1, Rng: ug.NewRand(2)})
	if att.Failed() {
		b.Fatal("setup failed")
	}
	m := adversary.UncertainModel{G: att.G}
	degrees := g.Degrees()
	var entMed, belMed float64
	for i := 0; i < b.N; i++ {
		ent := adversary.ObfuscationLevels(m, degrees)
		bel := adversary.BeliefLevels(m, degrees)
		entMed = median(ent)
		belMed = median(bel)
	}
	b.ReportMetric(entMed, "median_entropy_level")
	b.ReportMetric(belMed, "median_belief_level")
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// BenchmarkAblationHExclusion compares Algorithm 2 with and without the
// H-set (the ⌈ε/2·n⌉ most unique vertices excluded from perturbation).
// The exclusion is designed for the paper's regime where ε·n is a
// handful of true outlier hubs; at the scaled-up ε of the reduced
// datasets it withdraws noise from a substantial vertex fraction, and
// the measured eps_with_H / eps_without_H metrics quantify that
// trade-off — an instance where a heuristic's benefit is
// regime-dependent, worth knowing before tuning ε.
func BenchmarkAblationHExclusion(b *testing.B) {
	g := ablationGraph(b)
	eps := 0.3
	var withH, withoutH float64
	n := 0
	for i := 0; i < b.N; i++ {
		pa := core.Params{K: 10, Eps: eps, Trials: 1, Rng: ug.NewRand(int64(i))}
		aa := core.GenerateObfuscation(g, 0.05, pa)
		pb := pa
		pb.DisableHExclusion = true
		pb.Rng = ug.NewRand(int64(i))
		ab := core.GenerateObfuscation(g, 0.05, pb)
		if !aa.Failed() && !ab.Failed() {
			withH += aa.EpsTilde
			withoutH += ab.EpsTilde
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(withH/float64(n), "eps_with_H")
		b.ReportMetric(withoutH/float64(n), "eps_without_H")
	}
}

// BenchmarkAblationCandidateMultiplier sweeps c: larger candidate sets
// spread noise across more pairs, trading run time for feasibility at
// hard settings (the paper's (*) cases).
func BenchmarkAblationCandidateMultiplier(b *testing.B) {
	g := ablationGraph(b)
	for _, c := range []float64{1.5, 2, 3} {
		b.Run(cLabel(c), func(b *testing.B) {
			var eps float64
			n := 0
			for i := 0; i < b.N; i++ {
				att := core.GenerateObfuscation(g, 0.05, core.Params{
					K: 10, Eps: 0.99, C: c, Trials: 1, Rng: ug.NewRand(int64(i)),
				})
				if !att.Failed() {
					eps += att.EpsTilde
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(eps/float64(n), "eps_achieved")
			}
		})
	}
}

func cLabel(c float64) string {
	switch c {
	case 1.5:
		return "c=1.5"
	case 2:
		return "c=2"
	default:
		return "c=3"
	}
}
