// Comparison pits uncertainty injection against the classic
// random-perturbation baselines at matched anonymity — the experiment
// behind the paper's Table 6 and Figure 4: at the same obfuscation
// level, publishing an uncertain graph preserves far more utility than
// publishing a sparsified or perturbed certain graph.
//
//	go run ./examples/comparison
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	ug "uncertaingraph"
	"uncertaingraph/internal/datasets"
)

func main() {
	spec, err := datasets.ByName("dblp")
	if err != nil {
		log.Fatal(err)
	}
	d, err := datasets.Generate(spec, datasets.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	g := d.Graph
	eps := 0.08
	fmt.Printf("dblp stand-in: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	ctx := context.Background()
	estOpts := []ug.Option{
		ug.WithWorlds(30), ug.WithSeed(7), ug.WithDistances(ug.DistanceExactBFS),
	}
	real, err := ug.Statistics(ctx, g, estOpts...)
	if err != nil {
		log.Fatal(err)
	}

	// Sparsify at the paper's p=0.64 and measure the anonymity it buys
	// under the entropy measure (Figure 4's matching rule).
	published := ug.Sparsify(g, 0.64, ug.NewRand(8))
	levels := ug.SparsifyAnonymity(g, published, 0.64)
	matchedK := matched(levels, eps)
	fmt.Printf("\nsparsification p=0.64 matches k=%.1f at eps=%g\n", matchedK, eps)

	// Its utility: statistics of the (certain) published graph.
	spStats, err := ug.Statistics(ctx, published, estOpts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparsified   avg rel.err = %.3f\n", avgErr(spStats, real))

	// Our method at the same (k, eps). On this tiny stand-in the
	// attainable k is bounded by the degree-crowd sizes, so cap it; the
	// comparison stays conservative (the baseline is granted a higher
	// anonymity credit than we claim for ourselves).
	k := matchedK
	if k < 2 {
		k = 2
	}
	if k > 20 {
		fmt.Printf("capping our k at 20 (tiny-scale crowds; baseline keeps credit for k=%.1f)\n", k)
		k = 20
	}
	res, err := ug.Obfuscate(ctx, g,
		ug.WithK(k), ug.WithEps(eps), ug.WithSeed(9),
		ug.WithObfuscation(ug.ObfuscationParams{Trials: 3, Delta: 1e-5}))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := ug.EstimateStatistics(ctx, res.G, estOpts...)
	if err != nil {
		log.Fatal(err)
	}
	means := map[string]float64{}
	for _, name := range ug.StatNames {
		means[name] = rep.Mean(name)
	}
	fmt.Printf("uncertainty  avg rel.err = %.3f  (k=%.1f, sigma=%.3g)\n",
		avgErr(means, real), k, res.Sigma)

	fmt.Println("\nstatistic      original  sparsified   uncertain")
	for _, name := range ug.StatNames {
		fmt.Printf("%-12s %10.4g %11.4g %11.4g\n", name, real[name], spStats[name], means[name])
	}
	fmt.Println("\nFiner-grained (partial) edge perturbation achieves the same")
	fmt.Println("anonymity with far smaller changes to the data — the paper's thesis.")
}

// matched implements the Section 7.3 rule: drop the eps*n least
// anonymous vertices, return the minimum level of the rest.
func matched(levels []float64, eps float64) float64 {
	s := append([]float64(nil), levels...)
	sort.Float64s(s)
	drop := int(eps * float64(len(s)))
	if drop >= len(s) {
		drop = len(s) - 1
	}
	return s[drop]
}

func avgErr(est, real map[string]float64) float64 {
	var sum float64
	var cnt int
	for _, name := range ug.StatNames {
		if real[name] != 0 {
			d := est[name] - real[name]
			if d < 0 {
				d = -d
			}
			sum += d / abs(real[name])
			cnt++
		}
	}
	return sum / float64(cnt)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
