// Queries demonstrates analyzing a *published* uncertain graph: the
// data consumer never sees the original, yet reliability, distances and
// nearest neighbours remain answerable (the paper's usefulness
// argument, Sections 1 and 6).
//
//	go run ./examples/queries
package main

import (
	"context"
	"fmt"
	"log"

	ug "uncertaingraph"
)

func main() {
	ctx := context.Background()

	// The publisher's side: obfuscate and release.
	g := ug.SocialGraph(ug.NewRand(1), 250, 320, []float64{0, 0, 0.6, 0.3, 0.1}, 0.4)
	res, err := ug.Obfuscate(ctx, g,
		ug.WithK(5), ug.WithEps(0.1), ug.WithSeed(2),
		ug.WithObfuscation(ug.ObfuscationParams{Trials: 2, Delta: 1e-3}))
	if err != nil {
		log.Fatal(err)
	}
	published := res.G
	fmt.Printf("published uncertain graph: %d vertices, %d candidate pairs\n",
		published.NumVertices(), published.NumPairs())

	// The consumer's side: only `published` from here on.
	engine := ug.NewQueryEngine(published, 1000, ug.NewRand(3))

	s, t := 0, 1
	fmt.Printf("\nreliability Pr(%d ~ %d) = %.3f\n", s, t, engine.Reliability(s, t))

	dist, disc := engine.DistanceDistribution(s, t)
	fmt.Printf("distance distribution %d -> %d (P(disconnected)=%.3f):\n", s, t, disc)
	for d := 1; d <= 6; d++ {
		if p, ok := dist[d]; ok {
			fmt.Printf("  d=%d: %.3f\n", d, p)
		}
	}
	fmt.Printf("median distance: %d\n", engine.MedianDistance(s, t))

	fmt.Printf("\n5 nearest neighbours of %d (median distance): %v\n",
		s, engine.KNearest(s, 5))
	fmt.Printf("expected degree of %d: %.2f\n", s, engine.ExpectedDegree(s))

	// The serving shape: a batch samples its worlds once and evaluates
	// every query against them — one BFS per distinct source per world,
	// shared by all queries with that source, zero allocations in the
	// steady-state loop. This is what cmd/queryd runs per request; the
	// daemon passes each request's context to Run, so a dropped client
	// stops the work mid-flight.
	batch, err := ug.NewQueryBatch(published, ug.WithWorlds(1000), ug.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	relID := batch.AddReliability(s, t)
	distID := batch.AddDistance(s, t)
	knnID := batch.AddKNearest(s, 5)
	if err := batch.Run(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatched (one world set for all three queries):\n")
	fmt.Printf("  reliability %.3f, median %d\n",
		batch.Reliability(relID), batch.MedianDistance(distID))
	fmt.Printf("  neighbours with medians: %v\n", batch.KNearestWithMedians(knnID))
}
