// Sequentialrelease explores the open question of the paper's Section
// 8: how does the Medforth–Wang degree-trail attack fare against
// probabilistic releases? A network evolves over three snapshots; we
// compare publishing each snapshot as-is against publishing a
// (k, ε)-obfuscated uncertain graph each time. The uncertain releases
// then go where a real publisher would put them: uploaded per epoch to
// one multi-tenant queryd daemon, which serves reliability queries for
// every epoch side by side.
//
//	go run ./examples/sequentialrelease
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"

	ug "uncertaingraph"
	"uncertaingraph/internal/qserve"
)

func main() {
	g := ug.SocialGraph(ug.NewRand(1), 600, 800, []float64{0, 0, 0.5, 0.3, 0.2}, 0.4)
	snapshots := ug.EvolveGraph(g, 3, 0.15, ug.NewRand(2))
	fmt.Println("three releases of an evolving network:")
	for t, s := range snapshots {
		fmt.Printf("  t=%d: %d edges\n", t, s.NumEdges())
	}
	trails := ug.DegreeTrails(snapshots)

	// Attack 1: certain releases, exact degree-trail matching.
	crowd1 := ug.DegreeTrailCrowds(snapshots[:1])
	crowd3 := ug.DegreeTrailCrowds(snapshots)
	fmt.Printf("\ncertain releases: median trail crowd %d (one release) -> %d (three releases)\n",
		medianInt(crowd1), medianInt(crowd3))
	fmt.Printf("fully re-identified vertices: %d -> %d\n",
		countOnes(crowd1), countOnes(crowd3))

	// Attack 2: each release is published as an uncertain graph.
	ctx := context.Background()
	published := make([]*ug.UncertainGraph, len(snapshots))
	for t, s := range snapshots {
		res, err := ug.Obfuscate(ctx, s,
			ug.WithK(5), ug.WithEps(0.1), ug.WithSeed(uint64(10+t)),
			ug.WithObfuscation(ug.ObfuscationParams{Trials: 2, Delta: 1e-3}))
		if err != nil {
			log.Fatal(err)
		}
		published[t] = res.G
	}
	targets := everyNth(600, 4)
	seqLevels := ug.SequentialObfuscationLevels(published, trails, targets)
	certLevels := make([]float64, len(targets))
	for i, v := range targets {
		certLevels[i] = float64(crowd3[v])
	}
	fmt.Printf("\ndegree-trail attack on three releases (sampled %d targets):\n", len(targets))
	fmt.Printf("  certain releases:   median effective crowd %.1f, %d targets below k=5\n",
		medianFloat(certLevels), below(certLevels, 5))
	fmt.Printf("  uncertain releases: median effective crowd %.1f, %d targets below k=5\n",
		medianFloat(seqLevels), below(seqLevels, 5))
	// The consumption side (paper §6): every epoch's uncertain release
	// is uploaded to the same daemon, named epoch0..epoch2, and queried
	// over HTTP — the serving story for a sequential publisher.
	serveEpochs(published)

	fmt.Println("\nFindings: the trail attack collapses certain releases (median")
	fmt.Println("crowd 332 -> 22 here). Per-release (k, eps)-obfuscation restores")
	fmt.Println("crowd sizes for the bulk of vertices, but the eps-tail excluded")
	fmt.Println("from protection in each release stays exposed under trail")
	fmt.Println("composition — per-release guarantees do not compose, so a")
	fmt.Println("sequential publisher must calibrate across releases. This is the")
	fmt.Println("empirical content of the paper's Section 8 open question.")
}

// serveEpochs boots an in-process multi-graph query daemon, PUTs each
// release to /graphs/epoch{t}, and asks every epoch the same
// reliability question. One daemon, one port, all releases.
func serveEpochs(published []*ug.UncertainGraph) {
	srv := &qserve.Server{Worlds: 300, Seed: 5}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	for t, rel := range published {
		var buf bytes.Buffer
		if err := ug.WriteUncertainGraph(&buf, rel); err != nil {
			log.Fatal(err)
		}
		req, err := http.NewRequest("PUT", fmt.Sprintf("%s/graphs/epoch%d", base, t), &buf)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("uploading epoch%d: %d: %s", t, resp.StatusCode, body)
		}
	}

	fmt.Printf("\nall %d releases published to one queryd daemon at %s:\n", len(published), base)
	for t := range published {
		resp, err := http.Get(fmt.Sprintf("%s/graphs/epoch%d/reliability?s=0&t=500", base, t))
		if err != nil {
			log.Fatal(err)
		}
		var ans struct {
			Worlds  int `json:"worlds"`
			Results []struct {
				Reliability float64 `json:"reliability"`
			} `json:"results"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ans)
		resp.Body.Close()
		if err != nil || len(ans.Results) == 0 {
			log.Fatalf("querying epoch%d: %v", t, err)
		}
		fmt.Printf("  epoch%d: Pr[0 ~ 500] = %.3f over %d sampled worlds\n",
			t, ans.Results[0].Reliability, ans.Worlds)
	}
}

func everyNth(n, step int) []int {
	var out []int
	for v := 0; v < n; v += step {
		out = append(out, v)
	}
	return out
}

func below(xs []float64, k float64) int {
	c := 0
	for _, x := range xs {
		if x < k {
			c++
		}
	}
	return c
}

func countOnes(xs []int) int {
	c := 0
	for _, x := range xs {
		if x == 1 {
			c++
		}
	}
	return c
}

func medianInt(xs []int) int {
	s := append([]int(nil), xs...)
	sort.Ints(s)
	return s[len(s)/2]
}

func medianFloat(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
