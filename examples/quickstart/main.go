// Quickstart: obfuscate a small social graph and query the published
// uncertain graph.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	ug "uncertaingraph"
)

func main() {
	// Real services pass a request- or signal-scoped context; cancelling
	// it aborts any entry point below mid-flight.
	ctx := context.Background()

	// A small collaboration network: 300 people, ~400 events of 2-4
	// participants, with repeat collaboration.
	rng := ug.NewRand(1)
	g := ug.SocialGraph(rng, 300, 400, []float64{0, 0, 0.5, 0.3, 0.2}, 0.4)
	fmt.Printf("original graph: %d vertices, %d edges, avg degree %.2f\n",
		g.NumVertices(), g.NumEdges(), g.AverageDegree())

	// Publish a (5, 0.1)-obfuscation: every vertex except at most 10%
	// hides in an entropy-measured crowd of 5. One seed drives every
	// derived RNG stream, so the result is bit-identical for any worker
	// count.
	res, err := ug.Obfuscate(ctx, g,
		ug.WithK(5), ug.WithEps(0.1), ug.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published: %d candidate pairs, sigma=%.4g, achieved eps=%.4f\n",
		res.G.NumPairs(), res.Sigma, res.EpsTilde)

	// Independent verification with the adversary model.
	fmt.Printf("verified (k=5, eps=0.1): %v\n",
		ug.VerifyObfuscation(res.G, g.Degrees(), 5, 0.1))

	// Exact expected statistics are closed-form ...
	fmt.Printf("expected edges: %.1f (original %d)\n",
		res.G.ExpectedNumEdges(), g.NumEdges())

	// ... everything else is estimated by sampling possible worlds.
	rep, err := ug.EstimateStatistics(ctx, res.G,
		ug.WithWorlds(50), ug.WithSeed(3), ug.WithDistances(ug.DistanceExactBFS))
	if err != nil {
		log.Fatal(err)
	}
	real, err := ug.Statistics(ctx, g, ug.WithDistances(ug.DistanceExactBFS))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstatistic      original   published  rel.err")
	for _, name := range ug.StatNames {
		fmt.Printf("%-12s %10.4g %10.4g  %6.3f\n",
			name, real[name], rep.Mean(name), rep.RelErr(name, real[name]))
	}
}
