// Socialnetwork runs the full publication pipeline on a DBLP-like
// co-authorship stand-in: generate, obfuscate at increasing k, and
// report how each statistic degrades — the workload behind the paper's
// Table 4.
//
//	go run ./examples/socialnetwork
package main

import (
	"context"
	"fmt"
	"log"

	ug "uncertaingraph"
	"uncertaingraph/internal/datasets"
)

func main() {
	spec, err := datasets.ByName("dblp")
	if err != nil {
		log.Fatal(err)
	}
	d, err := datasets.Generate(spec, datasets.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	g := d.Graph
	fmt.Printf("dblp stand-in (%s scale): %d vertices, %d edges, avg degree %.2f\n",
		d.Scale, g.NumVertices(), g.NumEdges(), g.AverageDegree())

	ctx := context.Background()
	estOpts := []ug.Option{
		ug.WithWorlds(30), ug.WithSeed(5), ug.WithDistances(ug.DistanceExactBFS),
	}
	real, err := ug.Statistics(ctx, g, estOpts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n         ", header())
	fmt.Println("real     ", row(real))

	for _, k := range []float64{5, 10, 20} {
		res, err := ug.Obfuscate(ctx, g,
			ug.WithK(k), ug.WithEps(0.08), ug.WithSeed(uint64(10*k)),
			ug.WithObfuscation(ug.ObfuscationParams{Trials: 3, Delta: 1e-5}))
		if err != nil {
			log.Fatalf("k=%g: %v", k, err)
		}
		rep, err := ug.EstimateStatistics(ctx, res.G, estOpts...)
		if err != nil {
			log.Fatal(err)
		}
		means := map[string]float64{}
		var avgErr float64
		var cnt int
		for _, name := range ug.StatNames {
			means[name] = rep.Mean(name)
			if real[name] != 0 {
				avgErr += rep.RelErr(name, real[name])
				cnt++
			}
		}
		fmt.Printf("k = %-4g  %s  rel.err=%.3f  (sigma=%.3g)\n",
			k, row(means), avgErr/float64(cnt), res.Sigma)
	}
	fmt.Println("\nLarger k buys more privacy at a growing utility cost; the")
	fmt.Println("sparse statistics (S_NE, S_AD, S_APD) hold up best, exactly as")
	fmt.Println("in the paper's Table 4.")
}

func header() string {
	s := ""
	for _, name := range ug.StatNames {
		s += fmt.Sprintf("%9s", name)
	}
	return s
}

func row(vals map[string]float64) string {
	s := ""
	for _, name := range ug.StatNames {
		s += fmt.Sprintf("%9.3g", vals[name])
	}
	return s
}
