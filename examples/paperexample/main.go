// Paperexample reproduces the paper's worked example end to end: the
// four-vertex graph of Figure 1, the X and Y matrices of Table 1, and
// the entropy calculations of Example 2 concluding that the uncertain
// graph is a (3, 0.25)-obfuscation.
//
//	go run ./examples/paperexample
package main

import (
	"fmt"
	"log"
	"math"

	ug "uncertaingraph"
	"uncertaingraph/internal/adversary"
)

func main() {
	// Figure 1(a): edges (v1,v2), (v1,v3), (v1,v4), (v3,v4).
	original := ug.GraphFromEdges(4, []ug.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 2, V: 3},
	})
	fmt.Println("Figure 1(a) degrees:", original.Degrees())

	// Figure 1(b): the published uncertain graph.
	published, err := ug.NewUncertainGraph(4, []ug.Pair{
		{U: 0, V: 1, P: 0.7},
		{U: 0, V: 2, P: 0.9},
		{U: 0, V: 3, P: 0.8},
		{U: 1, V: 2, P: 0.8},
		{U: 1, V: 3, P: 0.1},
		{U: 2, V: 3, P: 0},
	})
	if err != nil {
		log.Fatal(err)
	}

	model := adversary.UncertainModel{G: published}
	x := adversary.XMatrix(model, 3)
	y := adversary.YMatrix(x)

	fmt.Println("\nTable 1, X_v(w): rows v1..v4, columns deg=0..3")
	for v, row := range x {
		fmt.Printf("  v%d:", v+1)
		for _, p := range row {
			fmt.Printf(" %6.3f", p)
		}
		fmt.Println()
	}
	fmt.Println("\nTable 1, Y_w(v): rows v1..v4, columns deg=0..3")
	for v, row := range y {
		fmt.Printf("  v%d:", v+1)
		for _, p := range row {
			fmt.Printf(" %6.3f", p)
		}
		fmt.Println()
	}

	// Example 2: column entropies at the original degrees.
	ents := adversary.ColumnEntropies(model, []int{1, 2, 3})
	fmt.Println("\nExample 2 entropies:")
	fmt.Printf("  H(Y_deg=3) = %.3f (v1; paper: 0.469 — below log2(3)=%.3f, not obfuscated)\n",
		ents[3], math.Log2(3))
	fmt.Printf("  H(Y_deg=1) = %.3f (v2; paper: 1.688)\n", ents[1])
	fmt.Printf("  H(Y_deg=2) = %.3f (v3, v4; paper: 1.742)\n", ents[2])

	// Three of four vertices are 3-obfuscated.
	fmt.Printf("\n(3, 0.25)-obfuscation: %v (paper: yes)\n",
		ug.VerifyObfuscation(published, original.Degrees(), 3, 0.25))
	fmt.Printf("(3, 0.10)-obfuscation: %v (v1 is exposed)\n",
		ug.VerifyObfuscation(published, original.Degrees(), 3, 0.10))

	// Per-vertex effective crowd sizes.
	levels := ug.ObfuscationLevels(published, original.Degrees())
	for v, l := range levels {
		fmt.Printf("  v%d hides in an effective crowd of %.2f\n", v+1, l)
	}
}
