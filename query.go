package uncertaingraph

import (
	"math/rand"

	"uncertaingraph/internal/query"
)

// QueryEngine answers analytical queries over a published uncertain
// graph by possible-world Monte Carlo with Hoeffding-bounded sample
// sizes: two-terminal reliability, distance distributions, median
// distances and majority-distance k-nearest-neighbours — the
// consumption side of the paper's proposal.
type QueryEngine = query.Engine

// NewQueryEngine returns an engine over g sampling the given number of
// worlds (0 selects the Hoeffding default, 738 worlds for ±0.05 at 95%
// confidence on probability estimates).
func NewQueryEngine(g *UncertainGraph, worlds int, rng *rand.Rand) *QueryEngine {
	return &query.Engine{G: g, Worlds: worlds, Rng: rng}
}
