package uncertaingraph

import (
	"math/rand"

	"uncertaingraph/internal/query"
)

// QueryEngine answers analytical queries over a published uncertain
// graph one query at a time. It is a documented shim over QueryBatch:
// every method registers a single query on a reusable batch and runs
// it without cancellation, deriving a fresh decorrelated world stream
// per call.
//
// Deprecated: use QueryBatch (NewQueryBatch + Run(ctx)) — it shares
// worlds and BFS trees across queries and supports request-scoped
// cancellation. QueryEngine remains for one release of compatibility.
type QueryEngine = query.Engine

// NewQueryEngine returns an engine over g sampling the given number of
// worlds (0 selects the Hoeffding default, 738 worlds for ±0.05 at 95%
// confidence on probability estimates). With a nil rng the engine
// derives a reproducible, decorrelated world stream per query from its
// Seed field; an explicit rng seeds each query by one Int63 draw.
//
// Deprecated: use NewQueryBatch. NewQueryEngine remains for one
// release of compatibility.
func NewQueryEngine(g *UncertainGraph, worlds int, rng *rand.Rand) *QueryEngine {
	return &query.Engine{G: g, Worlds: worlds, Rng: rng}
}

// QueryBatch evaluates many queries against one shared set of sampled
// worlds: each world is materialized once, one BFS runs per distinct
// query source per world, and the steady-state world loop performs
// zero heap allocations. This is the serving path behind cmd/queryd;
// results are bit-identical for every Workers value, and Run takes the
// request's context so a dropped client stops the work mid-flight.
type QueryBatch = query.Batch

// QueryConfig tunes a QueryBatch: Worlds (0 selects the Hoeffding
// default), Seed, Workers (<= 0 selects GOMAXPROCS), MemoryBudget
// (0 disables the budget) and Progress.
type QueryConfig = query.Config

// ErrOverBudget is returned by QueryBatch.Run when the registered
// queries' worst-case accumulator footprint exceeds the batch's
// WithMemoryBudget bound. The returned error carries the exact need
// and budget in bytes; test with errors.Is.
var ErrOverBudget = query.ErrOverBudget

// QueryNeighbor is one ranked k-NN result: a vertex and its count-rule
// median distance from the query source.
type QueryNeighbor = query.Neighbor

// NewQueryBatch returns an empty batch of queries over g, configured by
// the shared options (WithWorlds, WithSeed, WithWorkers, WithProgress)
// plus the query-only WithMemoryBudget.
// Register queries with AddReliability/AddDistance/AddKNearest, call
// Run(ctx), then read results by query id; Reset reuses every buffer
// for the next request.
//
//	b, err := uncertaingraph.NewQueryBatch(g,
//	    uncertaingraph.WithWorlds(1000), uncertaingraph.WithSeed(7))
//	rel := b.AddReliability(0, 5)
//	if err := b.Run(ctx); err != nil { ... }
//	p := b.Reliability(rel)
//
// Option validation failures return an error wrapping ErrBadConfig.
func NewQueryBatch(g *UncertainGraph, opts ...Option) (*QueryBatch, error) {
	s, err := newSettings(opts)
	if err != nil {
		return nil, err
	}
	return query.NewBatch(g, s.queryConfig()), nil
}

// NewQueryBatchWithConfig is the v1 form of NewQueryBatch: all
// configuration through the config struct. Run the returned batch with
// Run(ctx) (or the deprecated MustRun).
//
// Deprecated: use NewQueryBatch(g, opts...). This wrapper remains for
// one release of compatibility.
func NewQueryBatchWithConfig(g *UncertainGraph, cfg QueryConfig) *QueryBatch {
	return query.NewBatch(g, cfg)
}
