package uncertaingraph

import (
	"math/rand"

	"uncertaingraph/internal/query"
)

// QueryEngine answers analytical queries over a published uncertain
// graph by possible-world Monte Carlo with Hoeffding-bounded sample
// sizes: two-terminal reliability, distance distributions, median
// distances and median-distance k-nearest-neighbours — the consumption
// side of the paper's proposal. Every median follows the count rule
// shared with k-NN ranking (cumulative world count >= ceil(r/2),
// disconnection bucket last), so the two APIs cannot disagree about a
// pair's median on the same worlds.
type QueryEngine = query.Engine

// NewQueryEngine returns an engine over g sampling the given number of
// worlds (0 selects the Hoeffding default, 738 worlds for ±0.05 at 95%
// confidence on probability estimates). With a nil rng the engine
// derives a reproducible, decorrelated world stream per query from its
// Seed field; an explicit rng seeds each query by one Int63 draw.
func NewQueryEngine(g *UncertainGraph, worlds int, rng *rand.Rand) *QueryEngine {
	return &query.Engine{G: g, Worlds: worlds, Rng: rng}
}

// QueryBatch evaluates many queries against one shared set of sampled
// worlds: each world is materialized once, one BFS runs per distinct
// query source per world, and the steady-state world loop performs
// zero heap allocations. This is the serving path behind cmd/queryd;
// results are bit-identical for every Workers value.
type QueryBatch = query.Batch

// QueryConfig tunes a QueryBatch: Worlds (0 selects the Hoeffding
// default), Seed, and Workers (<= 0 selects GOMAXPROCS).
type QueryConfig = query.Config

// QueryNeighbor is one ranked k-NN result: a vertex and its count-rule
// median distance from the query source.
type QueryNeighbor = query.Neighbor

// NewQueryBatch returns an empty batch of queries over g. Register
// queries with AddReliability/AddDistance/AddKNearest, call Run, then
// read results by query id; Reset reuses every buffer for the next
// request.
func NewQueryBatch(g *UncertainGraph, cfg QueryConfig) *QueryBatch {
	return query.NewBatch(g, cfg)
}
