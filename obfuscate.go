package uncertaingraph

import (
	"context"
	"math/rand"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/core"
	"uncertaingraph/internal/randx"
)

// ObfuscationParams configures the (k, ε)-obfuscation algorithm; zero
// fields select the paper's defaults (c=2, q=0.01, t=5, δ=1e-8).
//
// Workers bounds the engine's concurrency (0 = all CPUs): trials run in
// parallel, the adversary scan is parallel, and the σ search probes
// speculative candidates. Results are bit-identical for every Workers
// value — each (σ, trial) pair derives its own RNG stream from Seed, so
// parallelism trades wall-clock time only.
//
// New code passes the domain knobs via WithObfuscation (plus WithK,
// WithEps) and the shared Seed/Workers/Progress knobs via their
// options; the struct remains the exchange format between the two
// layers.
type ObfuscationParams = core.Params

// ObfuscationResult is the output of Obfuscate: the published uncertain
// graph, the minimal σ found, and the achieved ε̃.
type ObfuscationResult = core.Result

// ErrNoObfuscation is returned when no (k, ε)-obfuscation exists within
// the σ search range; raising C is the paper's remedy.
var ErrNoObfuscation = core.ErrNoObfuscation

// Obfuscate runs Algorithm 1 of the paper: a binary search over the
// noise parameter σ for the minimal uncertainty injection making g a
// (k, ε)-obfuscation with respect to the degree property.
//
//	res, err := uncertaingraph.Obfuscate(ctx, g,
//	    uncertaingraph.WithK(20), uncertaingraph.WithEps(1e-3),
//	    uncertaingraph.WithSeed(1), uncertaingraph.WithWorkers(8))
//
// The search runs on WithWorkers goroutines (default all CPUs) with one
// determinism contract: every RNG stream is derived from the WithSeed
// base seed, so the result is bit-identical for every worker count.
// Cancelling ctx aborts the search at trial/scan-chunk granularity,
// joins every probe goroutine, and returns ctx.Err(); option validation
// failures return an error wrapping ErrBadConfig before any work
// starts. A nil ctx never cancels.
func Obfuscate(ctx context.Context, g *Graph, opts ...Option) (*ObfuscationResult, error) {
	s, err := newSettings(opts)
	if err != nil {
		return nil, err
	}
	p := s.obfuscationParams()
	// Re-validate the merged params: k and eps may arrive through the
	// WithObfuscation bulk struct (or not at all), bypassing WithK and
	// WithEps — the ErrBadConfig contract must hold either way.
	if err := validateKEps(p.K, p.Eps); err != nil {
		return nil, err
	}
	return core.Obfuscate(ctx, g, p)
}

// ObfuscateWithParams is the v1 form of Obfuscate: no cancellation, all
// configuration through the params struct (including the legacy Rng
// seed source).
//
// Deprecated: use Obfuscate(ctx, g, opts...). This wrapper remains for
// one release of compatibility.
func ObfuscateWithParams(g *Graph, params ObfuscationParams) (*ObfuscationResult, error) {
	return core.Obfuscate(context.Background(), g, params)
}

// VerifyObfuscation independently checks whether the uncertain graph
// k-obfuscates all but an eps-fraction of the original vertices
// (Definition 2), given the original graph's degrees.
func VerifyObfuscation(ug *UncertainGraph, originalDegrees []int, k, eps float64) bool {
	return adversary.IsKEpsObfuscation(
		adversary.UncertainModel{G: ug}, originalDegrees, k, eps)
}

// ObfuscationLevels returns each original vertex's obfuscation level
// 2^H(Y_{deg(v)}) under the published uncertain graph: the effective
// crowd size it hides in.
func ObfuscationLevels(ug *UncertainGraph, originalDegrees []int) []float64 {
	return adversary.ObfuscationLevels(
		adversary.UncertainModel{G: ug}, originalDegrees)
}

// NewRand returns a reproducible random source for the package's
// remaining *rand.Rand-taking primitives (graph generators,
// SampleWorld, the perturbation baselines).
//
// Deprecated: the context-first entry points take WithSeed instead of a
// generator; NewRand remains for the primitives above and for one
// release of compatibility.
func NewRand(seed int64) *rand.Rand { return randx.New(seed) }
