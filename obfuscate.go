package uncertaingraph

import (
	"math/rand"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/core"
)

// ObfuscationParams configures the (k, ε)-obfuscation algorithm; zero
// fields select the paper's defaults (c=2, q=0.01, t=5, δ=1e-8).
//
// Workers bounds the engine's concurrency (0 = all CPUs): trials run in
// parallel, the adversary scan is parallel, and the σ search probes
// speculative candidates. Results are bit-identical for every Workers
// value — each (σ, trial) pair derives its own RNG stream from Seed, so
// parallelism trades wall-clock time only.
type ObfuscationParams = core.Params

// ObfuscationResult is the output of Obfuscate: the published uncertain
// graph, the minimal σ found, and the achieved ε̃.
type ObfuscationResult = core.Result

// ErrNoObfuscation is returned when no (k, ε)-obfuscation exists within
// the σ search range; raising C is the paper's remedy.
var ErrNoObfuscation = core.ErrNoObfuscation

// Obfuscate runs Algorithm 1 of the paper: a binary search over the
// noise parameter σ for the minimal uncertainty injection making g a
// (k, ε)-obfuscation with respect to the degree property. The search
// runs on params.Workers goroutines (0 = all CPUs) with a deterministic
// result: see ObfuscationParams.
func Obfuscate(g *Graph, params ObfuscationParams) (*ObfuscationResult, error) {
	return core.Obfuscate(g, params)
}

// VerifyObfuscation independently checks whether the uncertain graph
// k-obfuscates all but an eps-fraction of the original vertices
// (Definition 2), given the original graph's degrees.
func VerifyObfuscation(ug *UncertainGraph, originalDegrees []int, k, eps float64) bool {
	return adversary.IsKEpsObfuscation(
		adversary.UncertainModel{G: ug}, originalDegrees, k, eps)
}

// ObfuscationLevels returns each original vertex's obfuscation level
// 2^H(Y_{deg(v)}) under the published uncertain graph: the effective
// crowd size it hides in.
func ObfuscationLevels(ug *UncertainGraph, originalDegrees []int) []float64 {
	return adversary.ObfuscationLevels(
		adversary.UncertainModel{G: ug}, originalDegrees)
}

// NewRand returns a reproducible random source for the package's
// randomized APIs.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
