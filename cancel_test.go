package uncertaingraph_test

// TestCancellationPropagates is the acceptance suite for the
// context-first facade: cancelling mid-operation must surface ctx.Err()
// promptly (the engines poll cancellation per σ probe / trial stage /
// scan chunk / sampled world, so the wait is bounded by one chunk of
// work), every worker goroutine must be joined (no leaks), and
// cancellation must never perturb results — a re-run after a cancelled
// run is bit-identical to a never-cancelled one.

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	ug "uncertaingraph"
)

// settledGoroutines polls until the goroutine count stops above base or
// the deadline passes, returning the last observed count. Cancellation
// joins workers before returning, so the count should settle fast; the
// retry loop only absorbs runtime-internal stragglers.
func settledGoroutines(base int) int {
	deadline := time.Now().Add(3 * time.Second)
	n := runtime.NumGoroutine()
	for n > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func cancelTestGraph(t testing.TB) *ug.Graph {
	t.Helper()
	g := ug.SocialGraph(ug.NewRand(11), 900, 1200, []float64{0, 0, 0.5, 0.3, 0.2}, 0.4)
	if g.NumEdges() == 0 {
		t.Fatal("generator failed")
	}
	return g
}

func TestCancellationPropagates(t *testing.T) {
	g := cancelTestGraph(t)

	t.Run("obfuscate-mid-run", func(t *testing.T) {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		// The progress observer fires after the first consumed σ probe:
		// cancelling there guarantees the search is genuinely mid-flight
		// (speculative probes in the air) rather than racing startup.
		start := time.Now()
		res, err := ug.Obfuscate(ctx, g,
			ug.WithK(5), ug.WithEps(0.05), ug.WithSeed(1), ug.WithWorkers(4),
			ug.WithObfuscation(ug.ObfuscationParams{Trials: 3, Delta: 1e-9}),
			ug.WithProgress(func(p ug.Progress) {
				if p.Done == 1 {
					cancel()
				}
			}))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res != nil {
			t.Error("cancelled Obfuscate returned a result alongside the error")
		}
		// Promptness: a full run at delta=1e-9 consumes ~30 probes; the
		// cancelled run must stop after roughly one more probe of work.
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Errorf("cancelled Obfuscate took %v", elapsed)
		}
		if n := settledGoroutines(base); n > base {
			t.Errorf("goroutines: %d before, %d after cancellation", base, n)
		}
	})

	t.Run("obfuscate-pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := ug.Obfuscate(ctx, g, ug.WithK(3), ug.WithEps(0.1))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})

	t.Run("estimate-mid-run", func(t *testing.T) {
		pub := ug.CertainGraph(g)
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		rep, err := ug.EstimateStatistics(ctx, pub,
			ug.WithWorlds(500), ug.WithSeed(3), ug.WithWorkers(4),
			ug.WithDistances(ug.DistanceExactBFS),
			ug.WithProgress(func(p ug.Progress) {
				if p.Done == 2 {
					cancel()
				}
			}))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if rep != nil {
			t.Error("cancelled EstimateStatistics returned a partial report")
		}
		if n := settledGoroutines(base); n > base {
			t.Errorf("goroutines: %d before, %d after cancellation", base, n)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		pub := ug.CertainGraph(g)
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		_, err := ug.EstimateStatistics(ctx, pub,
			ug.WithWorlds(2000), ug.WithDistances(ug.DistanceExactBFS))
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	})

	t.Run("batch-rerun-bit-identical", func(t *testing.T) {
		pub := ug.CertainGraph(g)
		newBatch := func() *ug.QueryBatch {
			b, err := ug.NewQueryBatch(pub,
				ug.WithWorlds(300), ug.WithSeed(9), ug.WithWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		addQueries := func(b *ug.QueryBatch) (int, int, int) {
			return b.AddReliability(0, 200), b.AddDistance(0, 400), b.AddKNearest(3, 8)
		}

		// Reference: an uncancelled run.
		ref := newBatch()
		relID, distID, knnID := addQueries(ref)
		if err := ref.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		wantRel := ref.Reliability(relID)
		wantMed := ref.MedianDistance(distID)
		wantKNN := ref.KNearestWithMedians(knnID)

		// Cancel mid-run, then re-Run the same batch uncancelled.
		base := runtime.NumGoroutine()
		b := newBatch()
		r2, d2, k2 := addQueries(b)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b.Progress = func(done, total int) {
			if done == 1 {
				cancel()
			}
		}
		if err := b.Run(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Run err = %v, want context.Canceled", err)
		}
		if n := settledGoroutines(base); n > base {
			t.Errorf("goroutines: %d before, %d after cancellation", base, n)
		}
		b.Progress = nil
		if err := b.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if got := b.Reliability(r2); got != wantRel {
			t.Errorf("re-run Reliability = %v, want %v (bit-identical)", got, wantRel)
		}
		if got := b.MedianDistance(d2); got != wantMed {
			t.Errorf("re-run MedianDistance = %v, want %v", got, wantMed)
		}
		if got := b.KNearestWithMedians(k2); !reflect.DeepEqual(got, wantKNN) {
			t.Errorf("re-run KNearest = %v, want %v", got, wantKNN)
		}
	})

	t.Run("batch-early-exit-rerun-bit-identical", func(t *testing.T) {
		// Same contract as batch-rerun-bit-identical, but every source
		// carries only reliability/distance queries, so each per-world
		// BFS takes the target-resolved early-exit path: a cancel
		// between worlds must leave the batch re-runnable and the
		// re-run bit-identical to a never-cancelled reference.
		pub := ug.CertainGraph(g)
		newBatch := func() *ug.QueryBatch {
			b, err := ug.NewQueryBatch(pub,
				ug.WithWorlds(300), ug.WithSeed(13), ug.WithWorkers(4),
				ug.WithMemoryBudget(1<<20))
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		addQueries := func(b *ug.QueryBatch) (int, int, int) {
			return b.AddReliability(1, 250), b.AddReliability(5, 700), b.AddDistance(2, 300)
		}

		ref := newBatch()
		relID, rel2ID, distID := addQueries(ref)
		if err := ref.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		wantRel := ref.Reliability(relID)
		wantRel2 := ref.Reliability(rel2ID)
		wantMed := ref.MedianDistance(distID)

		base := runtime.NumGoroutine()
		b := newBatch()
		r2, r3, d2 := addQueries(b)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b.Progress = func(done, total int) {
			if done == 1 {
				cancel()
			}
		}
		if err := b.Run(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Run err = %v, want context.Canceled", err)
		}
		if n := settledGoroutines(base); n > base {
			t.Errorf("goroutines: %d before, %d after cancellation", base, n)
		}
		b.Progress = nil
		if err := b.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if got := b.Reliability(r2); got != wantRel {
			t.Errorf("re-run Reliability #1 = %v, want %v (bit-identical)", got, wantRel)
		}
		if got := b.Reliability(r3); got != wantRel2 {
			t.Errorf("re-run Reliability #2 = %v, want %v", got, wantRel2)
		}
		if got := b.MedianDistance(d2); got != wantMed {
			t.Errorf("re-run MedianDistance = %v, want %v", got, wantMed)
		}
	})

	t.Run("batch-pre-cancelled", func(t *testing.T) {
		pub := ug.CertainGraph(g)
		b, err := ug.NewQueryBatch(pub, ug.WithWorlds(50))
		if err != nil {
			t.Fatal(err)
		}
		id := b.AddReliability(0, 1)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := b.Run(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}

		// A cancelled re-Run of a previously successful batch must not
		// leave the (wiped) old results silently readable: accessors go
		// back to the un-ran state until a Run completes.
		if err := b.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		_ = b.Reliability(id) // available after the successful run
		if err := b.Run(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("re-run err = %v, want context.Canceled", err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Reliability readable after a cancelled re-Run (stale wiped results)")
				}
			}()
			_ = b.Reliability(id)
		}()
	})
}

// TestCancellationDoesNotPerturbResults pins the other half of the
// contract: a run that completes — even one sharing a process with
// cancelled runs, progress observers and varying worker counts — is
// bit-identical to the plain run.
func TestCancellationDoesNotPerturbResults(t *testing.T) {
	g := ug.SocialGraph(ug.NewRand(21), 300, 400, []float64{0, 0, 0.5, 0.3, 0.2}, 0.4)
	opts := func(extra ...ug.Option) []ug.Option {
		return append([]ug.Option{
			ug.WithK(4), ug.WithEps(0.1), ug.WithSeed(5),
			ug.WithObfuscation(ug.ObfuscationParams{Trials: 2, Delta: 1e-3}),
		}, extra...)
	}
	plain, err := ug.Obfuscate(context.Background(), g, opts()...)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := ug.Obfuscate(context.Background(), g,
		opts(ug.WithWorkers(3), ug.WithProgress(func(ug.Progress) {}))...)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Sigma != observed.Sigma || plain.EpsTilde != observed.EpsTilde ||
		plain.Generations != observed.Generations || plain.Trials != observed.Trials {
		t.Errorf("observed run diverged: (σ=%v ε̃=%v g=%d t=%d) vs (σ=%v ε̃=%v g=%d t=%d)",
			observed.Sigma, observed.EpsTilde, observed.Generations, observed.Trials,
			plain.Sigma, plain.EpsTilde, plain.Generations, plain.Trials)
	}
}
