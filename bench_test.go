// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 7), one benchmark per artifact, on the
// small-scale dataset stand-ins, plus component microbenchmarks for the
// pipeline's hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The printed tables of a full run come from cmd/experiments; these
// benchmarks measure the cost of producing each artifact.
package uncertaingraph_test

import (
	"context"
	"testing"

	ug "uncertaingraph"
	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/anf"
	"uncertaingraph/internal/bfs"
	"uncertaingraph/internal/core"
	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/experiments"
	"uncertaingraph/internal/sampling"
	"uncertaingraph/internal/stats"
	"uncertaingraph/internal/uncertain"
)

// benchSuite builds a suite sized for benchmarking: tiny datasets,
// exact-BFS distances (deterministic work), modest sampling.
func benchSuite(b *testing.B) *experiments.Suite {
	s, err := experiments.NewSuite(experiments.Options{
		Scale:           datasets.ScaleTiny,
		Worlds:          10,
		Trials:          2,
		Delta:           1e-4,
		BaselineSamples: 5,
		Distances:       sampling.DistanceExactBFS,
		Seed:            11,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable2Sigma regenerates Table 2: the minimal sigma grid over
// datasets x k x eps. (Table 3 reuses these same runs.)
func BenchmarkTable2Sigma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := experiments.Table2(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Throughput regenerates the Table 3 view (edges/sec),
// measuring one full Algorithm 1 run on the dblp stand-in.
func BenchmarkTable3Throughput(b *testing.B) {
	s := benchSuite(b)
	d, err := s.Dataset("dblp")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Obfuscate(context.Background(), d.Graph, core.Params{
			K: 10, Eps: 0.08, Trials: 2, Delta: 1e-4, Rng: ug.NewRand(int64(i)),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Sigma
	}
}

// BenchmarkTable4Utility regenerates Table 4: statistic means over
// sampled worlds for every dataset and k.
func BenchmarkTable4Utility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := experiments.Table4(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5SEM regenerates Table 5 (relative SEMs; same sampling
// pipeline as Table 4, different aggregation).
func BenchmarkTable5SEM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := experiments.Table5(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Baselines regenerates Table 6: utility of obfuscation
// vs random perturbation and sparsification at matched anonymity.
func BenchmarkTable6Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := experiments.Table6(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Distances regenerates Figure 2: boxplots of the
// pairwise-distance distribution across worlds.
func BenchmarkFigure2Distances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := experiments.Figure2(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Degrees regenerates Figure 3: boxplots of the degree
// distribution across worlds.
func BenchmarkFigure3Degrees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := experiments.Figure3(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Anonymity regenerates Figure 4: anonymity-level CDFs
// of original, obfuscated and baseline publications.
func BenchmarkFigure4Anonymity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := experiments.Figure4(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component microbenchmarks (pipeline hot paths) ---

func benchGraph(b *testing.B) *ug.Graph {
	d, err := datasets.Generate(datasets.Specs[0], datasets.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	return d.Graph
}

func benchUncertain(b *testing.B) *uncertain.Graph {
	g := benchGraph(b)
	att := core.GenerateObfuscation(g, 0.2, core.Params{
		K: 5, Eps: 0.3, Trials: 1, Rng: ug.NewRand(3),
	})
	if att.Failed() {
		b.Fatal("bench obfuscation failed")
	}
	return att.G
}

// BenchmarkGenerateObfuscation measures one Algorithm 2 attempt
// (candidate selection + probability assignment + adversary check).
func BenchmarkGenerateObfuscation(b *testing.B) {
	g := benchGraph(b)
	params := core.Params{K: 5, Eps: 0.3, Trials: 1, Rng: ug.NewRand(4)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GenerateObfuscation(g, 0.2, params)
	}
}

// BenchmarkAdversaryCheck measures the (k,eps) verification: per-vertex
// Poisson-binomial degree distributions + column entropies.
func BenchmarkAdversaryCheck(b *testing.B) {
	g := benchGraph(b)
	u := benchUncertain(b)
	degrees := g.Degrees()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adversary.NotObfuscatedFraction(adversary.UncertainModel{G: u}, degrees, 5)
	}
}

// BenchmarkSampleWorld measures possible-world materialization.
func BenchmarkSampleWorld(b *testing.B) {
	u := benchUncertain(b)
	rng := ug.NewRand(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.SampleWorld(rng)
	}
}

// BenchmarkHyperANF measures a full neighbourhood-function run.
func BenchmarkHyperANF(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		anf.DistanceDistribution(g, anf.Options{Seed: uint64(i)})
	}
}

// BenchmarkExactBFS measures the exact all-sources distance oracle.
func BenchmarkExactBFS(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bfs.DistanceDistribution(g)
	}
}

// BenchmarkTriangleCount measures S_CC's triangle counting.
func BenchmarkTriangleCount(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.CountTriangles(g)
	}
}

// BenchmarkWorldStatistics measures the full ten-statistic evaluation
// of one sampled world.
func BenchmarkWorldStatistics(b *testing.B) {
	u := benchUncertain(b)
	cfg := sampling.Config{Distances: sampling.DistanceExactBFS}
	rng := ug.NewRand(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := u.SampleWorld(rng)
		sampling.ScalarsOf(w, cfg, int64(i))
	}
}
