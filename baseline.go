package uncertaingraph

import (
	"math/rand"

	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/baseline"
)

// Sparsify publishes g with every edge independently deleted with
// probability p — the random-sparsification baseline of Section 7.3.
func Sparsify(g *Graph, p float64, rng *rand.Rand) *Graph {
	return baseline.Sparsify(g, p, rng)
}

// Perturb publishes g with edges deleted with probability p and
// non-edges added so the expected edge count is preserved — the
// random-perturbation baseline of Section 7.3.
func Perturb(g *Graph, p float64, rng *rand.Rand) *Graph {
	return baseline.Perturb(g, p, rng)
}

// SparsifyAnonymity returns per-vertex obfuscation levels of a graph
// published by Sparsify(original, p), under the entropy measure the
// paper uses to match baselines against (k, ε) settings (Figure 4).
func SparsifyAnonymity(original, published *Graph, p float64) []float64 {
	m := baseline.NewSparsifyModel(published, p)
	return adversary.ObfuscationLevels(m, original.Degrees())
}

// PerturbAnonymity is SparsifyAnonymity for the Perturb baseline.
func PerturbAnonymity(original, published *Graph, p float64) []float64 {
	m := baseline.NewPerturbModel(published, original.NumVertices(), p,
		baseline.AddProbability(original, p))
	return adversary.ObfuscationLevels(m, original.Degrees())
}
