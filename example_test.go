package uncertaingraph_test

import (
	"context"
	"fmt"

	ug "uncertaingraph"
)

// ExampleObfuscate publishes a (3, 0.25)-obfuscation of the paper's
// Figure 1(a) graph and verifies it with the adversary model.
func ExampleObfuscate() {
	g := ug.GraphFromEdges(4, []ug.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 2, V: 3},
	})
	res, err := ug.Obfuscate(context.Background(), g,
		ug.WithK(2), ug.WithEps(0.25), ug.WithSeed(7),
		ug.WithObfuscation(ug.ObfuscationParams{Trials: 3, Delta: 1e-3}))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("verified:", ug.VerifyObfuscation(res.G, g.Degrees(), 2, 0.25))
	// Output:
	// verified: true
}

// ExampleVerifyObfuscation checks the paper's own worked example: the
// uncertain graph of Figure 1(b) is a (3, 0.25)-obfuscation of the
// graph in Figure 1(a), but not a (3, 0.1)-obfuscation.
func ExampleVerifyObfuscation() {
	original := ug.GraphFromEdges(4, []ug.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 2, V: 3},
	})
	published, _ := ug.NewUncertainGraph(4, []ug.Pair{
		{U: 0, V: 1, P: 0.7}, {U: 0, V: 2, P: 0.9}, {U: 0, V: 3, P: 0.8},
		{U: 1, V: 2, P: 0.8}, {U: 1, V: 3, P: 0.1}, {U: 2, V: 3, P: 0},
	})
	fmt.Println(ug.VerifyObfuscation(published, original.Degrees(), 3, 0.25))
	fmt.Println(ug.VerifyObfuscation(published, original.Degrees(), 3, 0.10))
	// Output:
	// true
	// false
}

// ExampleObfuscationLevels computes the effective crowd size of each
// vertex of Figure 1(a) under the Figure 1(b) publication.
func ExampleObfuscationLevels() {
	original := ug.GraphFromEdges(4, []ug.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 2, V: 3},
	})
	published, _ := ug.NewUncertainGraph(4, []ug.Pair{
		{U: 0, V: 1, P: 0.7}, {U: 0, V: 2, P: 0.9}, {U: 0, V: 3, P: 0.8},
		{U: 1, V: 2, P: 0.8}, {U: 1, V: 3, P: 0.1}, {U: 2, V: 3, P: 0},
	})
	for v, level := range ug.ObfuscationLevels(published, original.Degrees()) {
		fmt.Printf("v%d: %.2f\n", v+1, level)
	}
	// Output:
	// v1: 1.38
	// v2: 3.22
	// v3: 3.34
	// v4: 3.34
}

// ExampleUncertainGraph_ExpectedNumEdges shows the closed-form expected
// statistics of Section 6.2 (no sampling needed).
func ExampleUncertainGraph_ExpectedNumEdges() {
	g, _ := ug.NewUncertainGraph(3, []ug.Pair{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.25},
	})
	fmt.Println(g.ExpectedNumEdges())
	fmt.Println(g.ExpectedAverageDegree())
	// Output:
	// 0.75
	// 0.5
}

// ExampleSampleWorld draws a possible world: every candidate pair
// materializes independently with its probability.
func ExampleSampleWorld() {
	g, _ := ug.NewUncertainGraph(3, []ug.Pair{
		{U: 0, V: 1, P: 1}, {U: 1, V: 2, P: 0},
	})
	w := ug.SampleWorld(g, ug.NewRand(1))
	fmt.Println(w.HasEdge(0, 1), w.HasEdge(1, 2))
	// Output:
	// true false
}

// ExampleNewQueryEngine answers a reliability query on a published
// uncertain graph.
func ExampleNewQueryEngine() {
	g, _ := ug.NewUncertainGraph(3, []ug.Pair{
		{U: 0, V: 1, P: 1}, {U: 1, V: 2, P: 1},
	})
	e := ug.NewQueryEngine(g, 100, ug.NewRand(2))
	fmt.Println(e.Reliability(0, 2))
	fmt.Println(e.MedianDistance(0, 2))
	// Output:
	// 1
	// 2
}

// ExampleSparsify shows the classic whole-edge baseline the paper
// compares against.
func ExampleSparsify() {
	g := ug.GraphFromEdges(4, []ug.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 2, V: 3},
	})
	published := ug.Sparsify(g, 0.99, ug.NewRand(3))
	fmt.Println(published.NumEdges() < g.NumEdges())
	// Output:
	// true
}

// ExampleDegreeTrailCrowds runs the sequential-release degree-trail
// attack of Section 8 against two certain snapshots.
func ExampleDegreeTrailCrowds() {
	g := ug.GraphFromEdges(4, []ug.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	snapshots := ug.EvolveGraph(g, 2, 0.5, ug.NewRand(4))
	crowds := ug.DegreeTrailCrowds(snapshots)
	fmt.Println(len(crowds))
	// Output:
	// 4
}
