// Concurrency exercise for `go test -race`: these tests drive every
// parallel component — the trial engine with speculative σ probing, the
// adversary's chunked entropy scan, the BFS distance sampler, and the
// possible-world sampling pipeline — from several goroutines at once
// over shared inputs, so the race detector sees the real interleavings.
// They are sized to stay cheap in -short mode.
package uncertaingraph_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	ug "uncertaingraph"
	"uncertaingraph/internal/adversary"
	"uncertaingraph/internal/bfs"
	"uncertaingraph/internal/core"
	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/qserve"
	"uncertaingraph/internal/randx"
	"uncertaingraph/internal/sampling"
)

func TestRaceConcurrentObfuscateTrials(t *testing.T) {
	g := gen.HolmeKim(randx.New(21), 200, 3, 0.3)
	var wg sync.WaitGroup
	results := make([]*core.Result, 3)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Workers > 1 turns on both concurrent trials and speculative
			// σ probing, even when the host has a single CPU.
			res, err := core.Obfuscate(context.Background(), g, core.Params{
				K: 3, Eps: 0.15, Trials: 3, Delta: 1e-3, Workers: 4, Seed: 5,
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] == nil || results[0] == nil {
			return // error already reported
		}
		if results[i].Sigma != results[0].Sigma || results[i].EpsTilde != results[0].EpsTilde {
			t.Errorf("concurrent run %d diverged: (%v,%v) vs (%v,%v)", i,
				results[i].Sigma, results[i].EpsTilde, results[0].Sigma, results[0].EpsTilde)
		}
	}
}

func TestRaceSharedAdversaryScan(t *testing.T) {
	g := gen.HolmeKim(randx.New(22), 300, 3, 0.3)
	att := core.GenerateObfuscation(g, 0.3, core.Params{K: 3, Eps: 0.3, Trials: 1, Seed: 2})
	if att.Failed() {
		t.Fatal("setup obfuscation failed")
	}
	degrees := g.Degrees()
	var wg sync.WaitGroup
	fracs := make([]float64, 4)
	for i := range fracs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct worker counts over one shared model: the chunked
			// scan must neither race nor change its answer.
			model := adversary.UncertainModel{G: att.G, Workers: i + 1}
			fracs[i] = adversary.NotObfuscatedFraction(model, degrees, 3)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(fracs); i++ {
		if fracs[i] != fracs[0] {
			t.Errorf("worker count %d changed the scan result: %v vs %v", i+1, fracs[i], fracs[0])
		}
	}
}

// TestRaceConcurrentQuerydRequests drives the query-serving engine the
// way queryd does in production: many goroutines posting batch
// requests (with per-request Workers fan-out) against one shared
// uncertain graph and one shared batch pool. Identical requests must
// return byte-identical responses — the content-derived seed contract
// — and the race detector sees pooled batches handed across
// goroutines.
func TestRaceConcurrentQuerydRequests(t *testing.T) {
	g := gen.HolmeKim(randx.New(24), 120, 3, 0.3)
	var pairs []ug.Pair
	g.ForEachEdge(func(u, v int) {
		pairs = append(pairs, ug.Pair{U: u, V: v, P: float64((u+v)%9+1) / 10})
	})
	pub, err := ug.NewUncertainGraph(g.NumVertices(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	srv := &qserve.Server{G: pub, Worlds: 60, Workers: 4, Seed: 3}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients, rounds = 6, 4
	bodies := make([][]string, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Half the clients send one shared request shape, the rest
				// send per-client shapes, so the pool sees mixed traffic.
				s := 0
				if c%2 == 1 {
					s = c
				}
				req := fmt.Sprintf(`{"queries":[{"op":"reliability","s":%d,"t":50},`+
					`{"op":"distance","s":%d,"t":51},{"op":"knn","s":%d,"k":5}]}`, s, s, s)
				resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(req))
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d err %v: %s", c, resp.StatusCode, err, body)
					return
				}
				bodies[c] = append(bodies[c], string(body))
			}
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		for i := 1; i < len(bodies[c]); i++ {
			if bodies[c][i] != bodies[c][0] {
				t.Errorf("client %d: identical requests answered differently:\n%s\nvs\n%s",
					c, bodies[c][i], bodies[c][0])
			}
		}
	}
	// Even-numbered clients all sent the same request; cross-check.
	if bodies[0][0] != bodies[2][0] || bodies[0][0] != bodies[4][0] {
		t.Error("shared request shape answered differently across clients")
	}
}

func TestRaceParallelScans(t *testing.T) {
	g := gen.HolmeKim(randx.New(23), 250, 3, 0.2)
	att := core.GenerateObfuscation(g, 0.2, core.Params{K: 2, Eps: 0.4, Trials: 1, Seed: 3})
	if att.Failed() {
		t.Fatal("setup obfuscation failed")
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// bfs fans the sampled sources out over GOMAXPROCS workers.
		dd := bfs.SampledDistanceDistribution(g, 32, ug.NewRand(4))
		if dd.AvgDistance() <= 0 {
			t.Error("sampled BFS produced no distances")
		}
	}()
	go func() {
		defer wg.Done()
		// sampling.Run materializes and scores worlds in parallel.
		rep, err := sampling.Run(context.Background(), att.G, sampling.Config{
			Worlds: 4, Seed: 5, Distances: sampling.DistanceExactBFS,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if len(rep.Samples["S_NE"]) != 4 {
			t.Error("sampling run lost worlds")
		}
	}()
	wg.Wait()
}
