// Package uncertaingraph implements identity obfuscation for social
// graphs by injecting edge uncertainty, reproducing Boldi, Bonchi,
// Gionis and Tassa, "Injecting Uncertainty in Graphs for Identity
// Obfuscation", PVLDB 5(11), 2012.
//
// Instead of deleting or adding edges outright, the published graph
// assigns each candidate edge a probability of existence. The package
// provides:
//
//   - the (k, ε)-obfuscation algorithm (Obfuscate) that finds the
//     minimal noise level σ at which all but an ε-fraction of vertices
//     hide in an entropy-measured crowd of size k;
//   - the uncertain-graph model (UncertainGraph) with possible-world
//     sampling and closed-form expected degree statistics;
//   - the adversary machinery (ObfuscationLevels, VerifyObfuscation)
//     shared with the random-perturbation baselines (Sparsify, Perturb)
//     the paper compares against;
//   - graph statistics (Statistics, EstimateStatistics) including
//     HyperANF-based distance distributions, for measuring the utility
//     of published graphs.
//
// The top-level API is a thin facade over the internal packages; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's tables and figures.
package uncertaingraph
