// Package uncertaingraph implements identity obfuscation for social
// graphs by injecting edge uncertainty, reproducing Boldi, Bonchi,
// Gionis and Tassa, "Injecting Uncertainty in Graphs for Identity
// Obfuscation", PVLDB 5(11), 2012.
//
// Instead of deleting or adding edges outright, the published graph
// assigns each candidate edge a probability of existence. The package
// provides:
//
//   - the (k, ε)-obfuscation algorithm (Obfuscate) that finds the
//     minimal noise level σ at which all but an ε-fraction of vertices
//     hide in an entropy-measured crowd of size k;
//   - the uncertain-graph model (UncertainGraph) with possible-world
//     sampling and closed-form expected degree statistics;
//   - the adversary machinery (ObfuscationLevels, VerifyObfuscation)
//     shared with the random-perturbation baselines (Sparsify, Perturb)
//     the paper compares against;
//   - graph statistics (Statistics, EstimateStatistics, RunVector)
//     including HyperANF-based distance distributions, for measuring
//     the utility of published graphs;
//   - query serving over published graphs (QueryBatch, the engine
//     behind cmd/queryd): reliability, distance distributions and
//     median-distance k-NN against one shared world sample, with
//     target-resolved early-exit BFS for reliability/distance-only
//     sources and a per-request memory budget (WithMemoryBudget).
//
// # API v2: context-first entry points
//
// Every long-running operation takes a context.Context first and is
// configured by functional options:
//
//	res, err := uncertaingraph.Obfuscate(ctx, g,
//	    uncertaingraph.WithK(20), uncertaingraph.WithEps(1e-3),
//	    uncertaingraph.WithSeed(1))
//	rep, err := uncertaingraph.EstimateStatistics(ctx, res.G,
//	    uncertaingraph.WithWorlds(100), uncertaingraph.WithSeed(7))
//	b, err := uncertaingraph.NewQueryBatch(res.G,
//	    uncertaingraph.WithWorlds(1000))
//	id := b.AddReliability(0, 5)
//	err = b.Run(ctx)
//
// Cancelling the context aborts the operation promptly — between σ
// probes and scan chunks in Obfuscate, between sampled worlds in
// EstimateStatistics and QueryBatch.Run — joins every worker goroutine
// (nothing leaks), and returns ctx.Err(). cmd/queryd wires each HTTP
// request's context into its batch run, so a dropped connection stops
// its BFS work mid-flight.
//
// One determinism contract covers all entry points: WithSeed fixes the
// base seed, every internal RNG stream is derived from it per (σ,
// trial) pair or per world (internal/randx.Derive), and WithWorkers
// only trades wall-clock time — results are bit-identical for every
// worker count, every schedule, and every cancellation that does not
// abort the run. Invalid option values (negative workers, non-positive
// worlds, k < 1, negative memory budgets) are rejected with errors
// wrapping ErrBadConfig rather than silently clamped.
//
// The worker budget has two composable axes. World-sampling operations
// spend it across sampled worlds while there are enough queued worlds
// to absorb it, and spill the leftover budget into each world's BFS
// when there are not (one large query over few worlds, the tail block
// of an adaptive run): the per-world traversal itself then runs as a
// direction-optimizing frontier walk — push over the sparse frontier
// list, pull over unvisited vertices once the frontier is dense —
// parallelized over fixed 512-vertex chunks. Because BFS distances are
// a function of the level sets alone and the direction heuristic is
// driven by integer totals, the split is invisible in results: the
// same bit-identity holds within a world as across worlds. See the
// README's "Intra-world parallelism" subsection.
//
// WithTolerance(tol) turns fixed-r Monte-Carlo runs adaptive: the
// estimation pipeline and query batches walk their world budget in
// fixed blocks and stop at the first block barrier where every
// statistic's (or query's) relative standard error of the mean is
// inside tol; WithMaxWorlds caps the adaptive budget. A stopped run
// is bit-identical to the same-length prefix of an uncancelled
// fixed-r run, for every worker count — the stopping decision is
// computed from canonically merged integer counts, so scheduling
// cannot move it. Report.WorldsUsed and Report.Converged (and
// Batch.WorldsRun/Batch.Converged) expose what a run spent and which
// estimates were inside tolerance. k-NN rankings carry no scalar
// confidence interval, so a batch containing one runs its full
// budget. See the README's "Adaptive precision" section.
//
// WithMemoryBudget bounds a query batch's accumulator memory: Run
// rejects a query set whose worst-case k-NN histogram footprint
// (distinct k-NN sources × n² int32 counters × workers) exceeds the
// budget with an error wrapping ErrOverBudget, and Reset sheds
// retained high-water buffers above it, so a pooled batch serving
// mixed traffic keeps bounded memory. qserve applies the same pricing
// per HTTP request (rejections are 413) plus a distinct-k-NN-source
// cap.
//
// Serving lives in cmd/queryd (HTTP daemon) over internal/qserve: a
// registry of named published graphs, each with its own batch pool
// and optional per-graph worlds/tolerance/memory-budget overrides,
// under a global memory budget with LRU eviction — an evicted graph
// reloads from its retained source on the next request and answers
// bit-identically. See the README's "Multi-tenant serving" section.
//
// Published graphs serialize two ways. WriteUncertainGraph emits the
// line-oriented "u v p" text format; WriteUncertainGraphBinary emits
// the versioned, checksummed binary .ugb container whose sections are
// exactly the graph's in-memory columnar arrays, so
// LoadUncertainGraphBinary brings a file up by memory-mapping it
// (falling back to a heap read where mmap is unavailable) with zero
// parsing and zero allocation proportional to graph size — cold starts
// and post-eviction reloads cost a page-table setup instead of a
// parse, and answers are bit-identical across both load paths.
// DecodeUncertainGraphBinary adopts in-memory .ugb bytes zero-copy and
// SniffUncertainGraphBinary routes between the formats by magic;
// cmd/queryd sniffs uploads and *.ug/*.ugb files the same way, and
// gengraph -convert / obfuscate -format binary produce the files. See
// the README's "On-disk format & cold start" section.
//
// The primary names carry the v2 signatures; each v1 behaviour stays
// reachable for one release through a thin deprecated wrapper
// (ObfuscateWithParams, StatisticsWithConfig,
// EstimateStatisticsWithConfig, NewQueryBatchWithConfig, NewQueryEngine,
// NewRand, QueryBatch.MustRun); see the README's "API v2" migration
// table.
//
// The top-level API is a thin facade over the internal packages; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's tables and figures.
package uncertaingraph
