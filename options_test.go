package uncertaingraph_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	ug "uncertaingraph"
)

// TestErrBadConfig pins the validation satellite: the option
// constructors reject nonsensical values with typed errors instead of
// silently clamping, hanging or degenerating.
func TestErrBadConfig(t *testing.T) {
	g := ug.GraphFromEdges(4, []ug.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	pub := ug.CertainGraph(g)
	ctx := context.Background()

	cases := []struct {
		name string
		err  error
	}{
		{"negative workers", func() error {
			_, err := ug.Obfuscate(ctx, g, ug.WithK(2), ug.WithEps(0.3), ug.WithWorkers(-1))
			return err
		}()},
		{"zero worlds", func() error {
			_, err := ug.EstimateStatistics(ctx, pub, ug.WithWorlds(0))
			return err
		}()},
		{"negative worlds", func() error {
			b, err := ug.NewQueryBatch(pub, ug.WithWorlds(-5))
			if b != nil {
				t.Error("NewQueryBatch returned a batch alongside the error")
			}
			return err
		}()},
		{"negative memory budget", func() error {
			b, err := ug.NewQueryBatch(pub, ug.WithMemoryBudget(-1))
			if b != nil {
				t.Error("NewQueryBatch returned a batch alongside the error")
			}
			return err
		}()},
		{"k below one", func() error {
			_, err := ug.Obfuscate(ctx, g, ug.WithK(0.5), ug.WithEps(0.3))
			return err
		}()},
		{"eps out of range", func() error {
			_, err := ug.Obfuscate(ctx, g, ug.WithK(2), ug.WithEps(1.5))
			return err
		}()},
		{"params negative workers", func() error {
			_, err := ug.Obfuscate(ctx, g, ug.WithK(2), ug.WithEps(0.3),
				ug.WithObfuscation(ug.ObfuscationParams{Workers: -3}))
			return err
		}()},
		{"params rng rejected", func() error {
			_, err := ug.Obfuscate(ctx, g, ug.WithK(2), ug.WithEps(0.3),
				ug.WithObfuscation(ug.ObfuscationParams{Rng: ug.NewRand(1)}))
			return err
		}()},
		{"k smuggled through params", func() error {
			_, err := ug.Obfuscate(ctx, g,
				ug.WithObfuscation(ug.ObfuscationParams{K: 0.5, Eps: 0.3}))
			return err
		}()},
		{"eps smuggled through params", func() error {
			_, err := ug.Obfuscate(ctx, g,
				ug.WithObfuscation(ug.ObfuscationParams{K: 2, Eps: 1.5}))
			return err
		}()},
		{"k missing entirely", func() error {
			_, err := ug.Obfuscate(ctx, g, ug.WithEps(0.3))
			return err
		}()},
		{"estimate negative workers", func() error {
			_, err := ug.EstimateStatistics(ctx, pub,
				ug.WithEstimate(ug.EstimateConfig{Workers: -1}))
			return err
		}()},
		{"unknown distance method", func() error {
			_, err := ug.Statistics(ctx, g, ug.WithDistances(ug.DistanceMethod(42)))
			return err
		}()},
		{"negative tolerance", func() error {
			_, err := ug.EstimateStatistics(ctx, pub, ug.WithTolerance(-0.1))
			return err
		}()},
		{"NaN tolerance", func() error {
			_, err := ug.EstimateStatistics(ctx, pub, ug.WithTolerance(math.NaN()))
			return err
		}()},
		{"zero max worlds", func() error {
			_, err := ug.EstimateStatistics(ctx, pub, ug.WithMaxWorlds(0))
			return err
		}()},
	}
	for _, c := range cases {
		if !errors.Is(c.err, ug.ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", c.name, c.err)
		}
	}
}

// TestOptionLegacyEquivalence pins the migration contract: the option
// form of every entry point produces results bit-identical to the
// deprecated struct form with the same seed — pinned regression values
// survive the API swap unchanged.
func TestOptionLegacyEquivalence(t *testing.T) {
	g := ug.SocialGraph(ug.NewRand(31), 250, 320, []float64{0, 0, 0.6, 0.3, 0.1}, 0.4)
	ctx := context.Background()

	t.Run("obfuscate", func(t *testing.T) {
		v2, err := ug.Obfuscate(ctx, g,
			ug.WithK(4), ug.WithEps(0.1), ug.WithSeed(5), ug.WithWorkers(2),
			ug.WithObfuscation(ug.ObfuscationParams{Trials: 2, Delta: 1e-3}))
		if err != nil {
			t.Fatal(err)
		}
		v1, err := ug.ObfuscateWithParams(g, ug.ObfuscationParams{
			K: 4, Eps: 0.1, Trials: 2, Delta: 1e-3, Seed: 5, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if v2.Sigma != v1.Sigma || v2.EpsTilde != v1.EpsTilde ||
			v2.G.NumPairs() != v1.G.NumPairs() {
			t.Errorf("option form (σ=%v ε̃=%v pairs=%d) != struct form (σ=%v ε̃=%v pairs=%d)",
				v2.Sigma, v2.EpsTilde, v2.G.NumPairs(), v1.Sigma, v1.EpsTilde, v1.G.NumPairs())
		}
	})

	t.Run("estimate", func(t *testing.T) {
		pub := ug.CertainGraph(g)
		v2, err := ug.EstimateStatistics(ctx, pub,
			ug.WithWorlds(8), ug.WithSeed(7), ug.WithDistances(ug.DistanceExactBFS))
		if err != nil {
			t.Fatal(err)
		}
		v1 := ug.EstimateStatisticsWithConfig(pub, ug.EstimateConfig{
			Worlds: 8, Seed: 7, Distances: ug.DistanceExactBFS,
		})
		if !reflect.DeepEqual(v2.Samples, v1.Samples) {
			t.Error("option form and struct form sample arrays differ")
		}
	})

	t.Run("statistics", func(t *testing.T) {
		v2, err := ug.Statistics(ctx, g, ug.WithDistances(ug.DistanceExactBFS), ug.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		v1 := ug.StatisticsWithConfig(g, ug.EstimateConfig{
			Distances: ug.DistanceExactBFS, Seed: 3,
		})
		if !reflect.DeepEqual(v2, v1) {
			t.Errorf("option form %v != struct form %v", v2, v1)
		}
	})

	t.Run("query-batch", func(t *testing.T) {
		pub := ug.CertainGraph(g)
		v2, err := ug.NewQueryBatch(pub, ug.WithWorlds(60), ug.WithSeed(4), ug.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		a := v2.AddReliability(0, 100)
		if err := v2.Run(ctx); err != nil {
			t.Fatal(err)
		}
		v1 := ug.NewQueryBatchWithConfig(pub, ug.QueryConfig{Worlds: 60, Seed: 4, Workers: 2})
		b := v1.AddReliability(0, 100)
		v1.MustRun()
		if v2.Reliability(a) != v1.Reliability(b) {
			t.Errorf("option form %v != struct form %v", v2.Reliability(a), v1.Reliability(b))
		}
	})
}

// TestSharedOptionsOverrideBulkStructs pins the option-merge rule:
// WithSeed/WithWorkers/WithWorlds win over the corresponding fields of
// a bulk struct regardless of argument order.
func TestSharedOptionsOverrideBulkStructs(t *testing.T) {
	g := ug.SocialGraph(ug.NewRand(41), 200, 260, []float64{0, 0, 0.6, 0.3, 0.1}, 0.4)
	pub := ug.CertainGraph(g)
	ctx := context.Background()

	// Seed 9 via shared option, stale seed 1 in the struct — the shared
	// option must win even though it appears first.
	a, err := ug.EstimateStatistics(ctx, pub,
		ug.WithSeed(9),
		ug.WithEstimate(ug.EstimateConfig{Worlds: 6, Seed: 1, Distances: ug.DistanceExactBFS}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ug.EstimateStatistics(ctx, pub,
		ug.WithWorlds(6), ug.WithSeed(9), ug.WithDistances(ug.DistanceExactBFS))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Error("shared option did not override the bulk struct's Seed")
	}
}

// TestAdaptiveOptionsPlumbing pins that WithTolerance/WithMaxWorlds
// reach the sampling engine through the facade: a certain graph's
// worlds are identical, so an adaptive run stops at the first block
// barrier with every statistic converged, while the plain fixed run
// burns its whole budget and reports no convergence map.
func TestAdaptiveOptionsPlumbing(t *testing.T) {
	g := ug.SocialGraph(ug.NewRand(61), 150, 200, []float64{0, 0, 0.6, 0.3, 0.1}, 0.4)
	pub := ug.CertainGraph(g)
	ctx := context.Background()

	adaptive, err := ug.EstimateStatistics(ctx, pub,
		ug.WithTolerance(0.05), ug.WithMaxWorlds(100), ug.WithSeed(7),
		ug.WithDistances(ug.DistanceExactBFS))
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.WorldsUsed >= 100 || adaptive.WorldsUsed < 2 {
		t.Fatalf("adaptive run used %d worlds, want an early stop within [2, 100)", adaptive.WorldsUsed)
	}
	for _, name := range ug.StatNames {
		if !adaptive.Converged[name] {
			t.Errorf("%s unconverged on a certain graph", name)
		}
	}

	fixed, err := ug.EstimateStatistics(ctx, pub,
		ug.WithWorlds(100), ug.WithSeed(7), ug.WithDistances(ug.DistanceExactBFS))
	if err != nil {
		t.Fatal(err)
	}
	if fixed.WorldsUsed != 100 || fixed.Converged != nil {
		t.Errorf("fixed run WorldsUsed=%d Converged=%v, want 100/nil", fixed.WorldsUsed, fixed.Converged)
	}

	// The adaptive run's samples must be the exact prefix of the fixed
	// run's — the facade preserves the block-prefix determinism contract.
	for _, name := range ug.StatNames {
		if !reflect.DeepEqual(adaptive.Samples[name], fixed.Samples[name][:adaptive.WorldsUsed]) {
			t.Errorf("%s: adaptive samples are not a prefix of the fixed run", name)
		}
	}

	rows, err := ug.RunVector(ctx, pub, func(w *ug.Graph, _ int64) []float64 {
		deg := w.Degrees()
		out := make([]float64, len(deg))
		for i, d := range deg {
			out[i] = float64(d)
		}
		return out
	}, ug.WithTolerance(0.05), ug.WithMaxWorlds(100), ug.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) >= 100 || len(rows) < 2 {
		t.Errorf("facade RunVector used %d worlds, want an early stop within [2, 100)", len(rows))
	}
}

// TestProgressReporting pins the observer contract: monotone Done, the
// configured Total for world-sampling stages, and the right stage name.
func TestProgressReporting(t *testing.T) {
	g := ug.SocialGraph(ug.NewRand(51), 150, 200, []float64{0, 0, 0.6, 0.3, 0.1}, 0.4)
	pub := ug.CertainGraph(g)
	var events []ug.Progress
	_, err := ug.EstimateStatistics(context.Background(), pub,
		ug.WithWorlds(5), ug.WithWorkers(1), ug.WithDistances(ug.DistanceExactBFS),
		ug.WithProgress(func(p ug.Progress) { events = append(events, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d progress events, want 5", len(events))
	}
	for i, p := range events {
		if p.Stage != ug.StageEstimate || p.Done != i+1 || p.Total != 5 {
			t.Errorf("event %d = %+v, want {estimate %d 5}", i, p, i+1)
		}
	}

	// A Progress callback riding in the bulk struct is honored too: the
	// merge only overrides it when WithProgress is given.
	bulkCalls := 0
	_, err = ug.EstimateStatistics(context.Background(), pub,
		ug.WithEstimate(ug.EstimateConfig{
			Worlds: 3, Workers: 1, Distances: ug.DistanceExactBFS,
			Progress: func(done, total int) { bulkCalls++ },
		}))
	if err != nil {
		t.Fatal(err)
	}
	if bulkCalls != 3 {
		t.Errorf("bulk-struct Progress fired %d times, want 3", bulkCalls)
	}
}
