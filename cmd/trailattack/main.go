// Command trailattack simulates the degree-trail attack (Medforth &
// Wang) against sequential releases of an evolving graph — the open
// question of the paper's Section 8 — comparing certain publication
// against per-release (k, ε)-obfuscation.
//
// Usage:
//
//	trailattack -in graph.edges -releases 3 -growth 0.15 -k 10 -eps 0.05
//	trailattack -n 800 -releases 3            # synthetic input
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"

	ug "uncertaingraph"
)

func main() {
	var (
		in       = flag.String("in", "", "input edge list (empty = synthetic social graph)")
		n        = flag.Int("n", 800, "synthetic graph size when -in is unset")
		releases = flag.Int("releases", 3, "number of published snapshots")
		growth   = flag.Float64("growth", 0.15, "edge growth per release (fraction of |E|)")
		k        = flag.Float64("k", 10, "per-release obfuscation level")
		eps      = flag.Float64("eps", 0.05, "per-release tolerance")
		trials   = flag.Int("t", 3, "obfuscation attempts per noise level")
		delta    = flag.Float64("delta", 1e-4, "binary search resolution")
		seed     = flag.Int64("seed", 1, "random seed")
		sample   = flag.Int("targets", 200, "number of attacked targets (0 = all)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "obfuscation worker goroutines per release (results are identical for every value)")
	)
	flag.Parse()

	var g *ug.Graph
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		var errRead error
		g, _, errRead = ug.ReadGraph(f)
		f.Close()
		if errRead != nil {
			fatal(errRead)
		}
	} else {
		g = ug.SocialGraph(ug.NewRand(*seed), *n, (*n*4)/3, []float64{0, 0, 0.5, 0.3, 0.2}, 0.4)
	}
	snaps := ug.EvolveGraph(g, *releases, *growth, ug.NewRand(*seed+1))
	fmt.Printf("evolving network, %d releases:", *releases)
	for _, s := range snaps {
		fmt.Printf(" %d", s.NumEdges())
	}
	fmt.Println(" edges")
	trails := ug.DegreeTrails(snaps)

	crowds := ug.DegreeTrailCrowds(snaps)
	fmt.Printf("\ncertain releases: %d/%d vertices fully re-identified, median crowd %d\n",
		countOnes(crowds), len(crowds), medianInt(crowds))

	// SIGINT/SIGTERM cancels the in-flight obfuscation search.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	published := make([]*ug.UncertainGraph, len(snaps))
	for t, s := range snaps {
		// Per-release seeds ride in the params struct rather than
		// WithSeed so the int64 flag keeps its exact v1 meaning
		// (including negative values, which the uint64 option would
		// remap).
		res, err := ug.Obfuscate(ctx, s,
			ug.WithK(*k), ug.WithEps(*eps),
			ug.WithObfuscation(ug.ObfuscationParams{
				Trials: *trials, Delta: *delta, Seed: *seed + 10 + int64(t),
			}),
			ug.WithWorkers(*workers))
		if err != nil {
			fatal(fmt.Errorf("release %d: %w", t, err))
		}
		published[t] = res.G
		fmt.Printf("release %d obfuscated: sigma=%.4g eps-achieved=%.4f\n", t, res.Sigma, res.EpsTilde)
	}

	var targets []int
	if *sample > 0 && *sample < g.NumVertices() {
		step := g.NumVertices() / *sample
		for v := 0; v < g.NumVertices(); v += step {
			targets = append(targets, v)
		}
	}
	levels := ug.SequentialObfuscationLevels(published, trails, targets)
	if targets == nil {
		targets = make([]int, g.NumVertices())
		for i := range targets {
			targets[i] = i
		}
	}
	certLevels := make([]float64, len(targets))
	for i, v := range targets {
		certLevels[i] = float64(crowds[v])
	}
	fmt.Printf("\ndegree-trail attack on %d targets:\n", len(targets))
	fmt.Printf("  certain releases:   median effective crowd %6.1f, %4d targets below k=%g\n",
		medianFloat(certLevels), below(certLevels, *k), *k)
	fmt.Printf("  uncertain releases: median effective crowd %6.1f, %4d targets below k=%g\n",
		medianFloat(levels), below(levels, *k), *k)
}

func countOnes(xs []int) int {
	c := 0
	for _, x := range xs {
		if x == 1 {
			c++
		}
	}
	return c
}

func below(xs []float64, k float64) int {
	c := 0
	for _, x := range xs {
		if x < k {
			c++
		}
	}
	return c
}

func medianInt(xs []int) int {
	s := append([]int(nil), xs...)
	sort.Ints(s)
	return s[len(s)/2]
}

func medianFloat(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trailattack:", err)
	os.Exit(1)
}
