// Command experiments regenerates the paper's tables and figures on
// the synthetic dataset stand-ins.
//
// Usage:
//
//	experiments -exp all -scale tiny
//	experiments -exp table2 -scale medium -worlds 100
//
// Experiments: table2 table3 table4 table5 table6 fig2 fig3 fig4 all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/experiments"
	"uncertaingraph/internal/sampling"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table2..table6, fig2..fig4, all)")
		scale   = flag.String("scale", "tiny", "dataset scale (tiny|small|medium|large)")
		worlds  = flag.Int("worlds", 0, "sampled worlds per estimate (0 = scale default)")
		trials  = flag.Int("trials", 0, "Algorithm 2 attempts per sigma (0 = paper's 5)")
		delta   = flag.Float64("delta", 0, "binary-search resolution (0 = 1e-8)")
		seed    = flag.Int64("seed", 42, "random seed")
		exact   = flag.Bool("exact-distances", false, "exact BFS distances instead of HyperANF")
		bsamp   = flag.Int("baseline-samples", 0, "published baseline graphs averaged in table6 (0 = 50)")
		workers = flag.Int("workers", 0, "parallel workers per obfuscation run (0 = all CPUs); results are identical for every value")
	)
	flag.Parse()

	opt := experiments.Options{
		Scale:           datasets.Scale(*scale),
		Worlds:          *worlds,
		Trials:          *trials,
		Delta:           *delta,
		Seed:            *seed,
		BaselineSamples: *bsamp,
		Workers:         *workers,
	}
	if *exact {
		opt.Distances = sampling.DistanceExactBFS
	}
	s, err := experiments.NewSuite(opt)
	if err != nil {
		fatal(err)
	}
	// SIGINT/SIGTERM cancels the in-flight driver: obfuscation searches
	// abort between σ probes, world sampling between worlds.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s.Ctx = ctx

	want := func(id string) bool { return *exp == "all" || *exp == id }
	start := time.Now()
	ran := false

	if want("table2") || want("table3") {
		runs, err := experiments.Table2(s)
		if err != nil {
			fatal(err)
		}
		if want("table2") {
			fmt.Println(experiments.RenderTable2(s, runs))
		}
		if want("table3") {
			fmt.Println(experiments.RenderTable3(s, runs))
		}
		ran = true
	}
	if want("table4") {
		rows, err := experiments.Table4(s)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderTable4(s, rows))
		ran = true
	}
	if want("table5") {
		rows, err := experiments.Table5(s)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderTable5(s, rows))
		ran = true
	}
	if want("table6") {
		rows, err := experiments.Table6(s)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderTable6(s, rows))
		ran = true
	}
	if want("fig2") {
		series, err := experiments.Figure2(s)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderFigure(series, 16))
		ran = true
	}
	if want("fig3") {
		series, err := experiments.Figure3(s)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderFigure(series, 12))
		ran = true
	}
	if want("fig4") {
		series, err := experiments.Figure4(s)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderFigure4(series))
		ran = true
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q (want %s)", *exp,
			strings.Join([]string{"table2", "table3", "table4", "table5", "table6", "fig2", "fig3", "fig4", "all"}, "|")))
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
