// Command gengraph generates synthetic graphs: the repository's
// dblp/flickr/y360 stand-ins at any scale, or generic random graphs.
//
// Usage:
//
//	gengraph -dataset dblp -scale tiny -out dblp.edges
//	gengraph -model ba -n 10000 -m 3 -out ba.edges
package main

import (
	"flag"
	"fmt"
	"os"

	ug "uncertaingraph"
	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/randx"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "dataset stand-in to generate (dblp|flickr|y360)")
		scale   = flag.String("scale", "tiny", "dataset scale (tiny|small|medium|large)")
		model   = flag.String("model", "", "generic model (er|ba|ws) when -dataset is unset")
		n       = flag.Int("n", 1000, "vertex count for generic models")
		m       = flag.Int("m", 3, "edges per vertex (ba), edge count (er), ring degree (ws)")
		beta    = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	var g *ug.Graph
	switch {
	case *dataset != "":
		spec, err := datasets.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		d, err := datasets.Generate(spec, datasets.Scale(*scale))
		if err != nil {
			fatal(err)
		}
		g = d.Graph
	case *model == "er":
		g = gen.ErdosRenyiGNM(randx.New(*seed), *n, *m)
	case *model == "ba":
		g = gen.BarabasiAlbert(randx.New(*seed), *n, *m)
	case *model == "ws":
		g = gen.WattsStrogatz(randx.New(*seed), *n, *m, *beta)
	default:
		fatal(fmt.Errorf("need -dataset or -model (er|ba|ws)"))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := ug.WriteGraph(w, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated: %d vertices, %d edges, avg degree %.2f\n",
		g.NumVertices(), g.NumEdges(), g.AverageDegree())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
