// Command gengraph generates synthetic graphs: the repository's
// dblp/flickr/y360 stand-ins at any scale, or generic random graphs.
// It also converts published uncertain graphs between the text (.ug)
// and binary (.ugb) on-disk formats.
//
// Usage:
//
//	gengraph -dataset dblp -scale tiny -out dblp.edges
//	gengraph -model ba -n 10000 -m 3 -out ba.edges
//	gengraph -convert published.ug -o published.ugb
//	gengraph -convert published.ugb -format text -o published.ug
//
// -convert reads an existing uncertain graph (text or binary, sniffed
// by magic) and rewrites it in -format, which defaults to binary in
// conversion mode — the common direction is text release → mmap-ready
// .ugb. Generation with -format binary lifts the certain graph to an
// uncertain one (every edge probability 1) and writes .ugb.
package main

import (
	"flag"
	"fmt"
	"os"

	ug "uncertaingraph"
	"uncertaingraph/internal/datasets"
	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/randx"
)

func main() {
	var out string
	var (
		dataset = flag.String("dataset", "", "dataset stand-in to generate (dblp|flickr|y360)")
		scale   = flag.String("scale", "tiny", "dataset scale (tiny|small|medium|large)")
		model   = flag.String("model", "", "generic model (er|ba|ws) when -dataset is unset")
		n       = flag.Int("n", 1000, "vertex count for generic models")
		m       = flag.Int("m", 3, "edges per vertex (ba), edge count (er), ring degree (ws)")
		beta    = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		seed    = flag.Int64("seed", 1, "random seed")
		convert = flag.String("convert", "", "uncertain graph to convert instead of generating (text .ug or binary .ugb, sniffed by magic)")
		format  = flag.String("format", "", "output format: text or binary (default text when generating, binary when converting)")
	)
	flag.StringVar(&out, "out", "", "output path (default stdout)")
	flag.StringVar(&out, "o", "", "output path (alias for -out)")
	flag.Parse()

	if *convert != "" {
		if *dataset != "" || *model != "" {
			fatal(fmt.Errorf("-convert excludes -dataset/-model"))
		}
		if err := runConvert(*convert, out, *format); err != nil {
			fatal(err)
		}
		return
	}

	var g *ug.Graph
	switch {
	case *dataset != "":
		spec, err := datasets.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		d, err := datasets.Generate(spec, datasets.Scale(*scale))
		if err != nil {
			fatal(err)
		}
		g = d.Graph
	case *model == "er":
		g = gen.ErdosRenyiGNM(randx.New(*seed), *n, *m)
	case *model == "ba":
		g = gen.BarabasiAlbert(randx.New(*seed), *n, *m)
	case *model == "ws":
		g = gen.WattsStrogatz(randx.New(*seed), *n, *m, *beta)
	default:
		fatal(fmt.Errorf("need -dataset, -model (er|ba|ws) or -convert"))
	}

	w, closeOut := outputWriter(out)
	defer closeOut()
	switch *format {
	case "", "text":
		if err := ug.WriteGraph(w, g); err != nil {
			fatal(err)
		}
	case "binary":
		// The binary format stores uncertain graphs; a generated
		// certain graph is lifted with all-probability-one edges.
		if err := ug.WriteUncertainGraphBinary(w, ug.CertainGraph(g)); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("-format %q: want text or binary", *format))
	}
	fmt.Fprintf(os.Stderr, "generated: %d vertices, %d edges, avg degree %.2f\n",
		g.NumVertices(), g.NumEdges(), g.AverageDegree())
}

// runConvert rewrites the uncertain graph at in (format sniffed by
// magic) to out in the requested format — binary unless -format text.
func runConvert(in, out, format string) error {
	switch format {
	case "":
		format = "binary"
	case "text", "binary":
	default:
		return fmt.Errorf("-format %q: want text or binary", format)
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	var g *ug.UncertainGraph
	if ug.SniffUncertainGraphBinary(data) {
		g, err = ug.DecodeUncertainGraphBinary(data)
	} else {
		f, ferr := os.Open(in)
		if ferr != nil {
			return ferr
		}
		g, err = ug.ReadUncertainGraph(f)
		f.Close()
	}
	if err != nil {
		return fmt.Errorf("reading %s: %w", in, err)
	}
	w, closeOut := outputWriter(out)
	defer closeOut()
	if format == "binary" {
		err = ug.WriteUncertainGraphBinary(w, g)
	} else {
		err = ug.WriteUncertainGraph(w, g)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "converted: %d vertices, %d candidate pairs to %s\n",
		g.NumVertices(), g.NumPairs(), format)
	return nil
}

// outputWriter opens path for writing, defaulting to stdout; the
// returned func flushes-by-closing and reports failures fatally, so
// short writes cannot masquerade as success.
func outputWriter(path string) (*os.File, func()) {
	if path == "" {
		return os.Stdout, func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	return f, func() {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
