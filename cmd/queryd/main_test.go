package main

import (
	"os"
	"path/filepath"
	"testing"

	"uncertaingraph/internal/qserve"
	"uncertaingraph/internal/uncertain"
)

// graphName is the only piece of routing logic the daemon owns (the
// rest lives in internal/qserve): both serializations of a release
// must map to one registry name, and a name containing dots must not
// lose anything but the format suffix.
func TestGraphName(t *testing.T) {
	for path, want := range map[string]string{
		"releases/d.ug":      "d",
		"releases/d.ugb":     "d",
		"d.ug":               "d",
		"/abs/path/epoch-3":  "epoch-3",
		"a/b/v1.2.ug":        "v1.2",
		"a/b/v1.2.ugb":       "v1.2",
		"plain":              "plain",
		"dir.ug/graph":       "graph",
		"releases/trail.ugb": "trail",
	} {
		if got := graphName(path); got != want {
			t.Errorf("graphName(%q) = %q, want %q", path, got, want)
		}
	}
}

// writeTestGraph publishes a tiny 4-vertex text graph to path.
func writeTestGraph(t *testing.T, path string) {
	t.Helper()
	g, err := uncertain.New(4, []uncertain.Pair{
		{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.8}, {U: 2, V: 3, P: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := uncertain.Write(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadGraphs pins the startup contract shared by -graph and
// -graphs: directory graphs are named by basename, a lone graph
// becomes the default whichever flag loaded it, an explicit -graph
// always wins the default, and an empty directory is a startup error
// rather than an empty registry.
func TestLoadGraphs(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, filepath.Join(dir, "alpha.ug"))
	writeTestGraph(t, filepath.Join(dir, "beta.ug"))
	single := filepath.Join(t.TempDir(), "solo.ug")
	writeTestGraph(t, single)

	t.Run("dir-two-graphs-no-default", func(t *testing.T) {
		srv := &qserve.Server{Worlds: 8, Seed: 1}
		if err := loadGraphs(srv, dir, ""); err != nil {
			t.Fatal(err)
		}
		graphs, totals := srv.GraphStats()
		if totals.Graphs != 2 || graphs[0].Name != "alpha" || graphs[1].Name != "beta" {
			t.Errorf("loaded %+v", graphs)
		}
		if srv.DefaultGraph != "" {
			t.Errorf("two-graph registry picked a default: %q", srv.DefaultGraph)
		}
	})
	t.Run("dir-and-file-compose", func(t *testing.T) {
		srv := &qserve.Server{Worlds: 8, Seed: 1}
		if err := loadGraphs(srv, dir, single); err != nil {
			t.Fatal(err)
		}
		_, totals := srv.GraphStats()
		if totals.Graphs != 3 || srv.DefaultGraph != "solo" {
			t.Errorf("graphs=%d default=%q", totals.Graphs, srv.DefaultGraph)
		}
	})
	t.Run("sole-graph-is-default", func(t *testing.T) {
		srv := &qserve.Server{Worlds: 8, Seed: 1}
		if err := loadGraphs(srv, "", single); err != nil {
			t.Fatal(err)
		}
		if srv.DefaultGraph != "solo" {
			t.Errorf("default = %q, want solo", srv.DefaultGraph)
		}
	})
	t.Run("empty-dir-errors", func(t *testing.T) {
		srv := &qserve.Server{Worlds: 8, Seed: 1}
		if err := loadGraphs(srv, t.TempDir(), ""); err == nil {
			t.Error("empty -graphs dir did not error")
		}
	})
	t.Run("missing-file-errors", func(t *testing.T) {
		srv := &qserve.Server{Worlds: 8, Seed: 1}
		if err := loadGraphs(srv, "", filepath.Join(dir, "nope.ug")); err == nil {
			t.Error("missing -graph file did not error")
		}
	})
}
