// Command queryd serves analytical queries over one published
// uncertain graph: a long-lived HTTP/JSON daemon for the paper's
// consumption side (§1, §6), backed by the batched possible-world
// query engine (worlds sampled once per request, one BFS per distinct
// source per world, pooled zero-alloc buffers across requests).
//
// Usage:
//
//	queryd -graph published.ug [-addr :8781] [-worlds 738] [-workers N] [-seed 1]
//
// Endpoints:
//
//	GET  /healthz
//	GET  /reliability?s=0&t=5[&worlds=1000][&seed=7]
//	GET  /distance?s=0&t=5
//	GET  /knn?s=0&k=10
//	POST /batch   {"worlds":1000,"queries":[{"op":"reliability","s":0,"t":5}, ...]}
//
// Unless a request pins a seed, its world stream is derived from the
// server seed and the request content, so identical requests return
// identical answers.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	ug "uncertaingraph"
	"uncertaingraph/internal/qserve"
)

func main() {
	var (
		gin       = flag.String("graph", "", "published uncertain graph to serve (required)")
		addr      = flag.String("addr", ":8781", "listen address (port 0 picks a free port)")
		worlds    = flag.Int("worlds", 0, "default worlds per request (0 selects the Hoeffding default, 738)")
		maxWorlds = flag.Int("max-worlds", qserve.DefaultMaxWorlds, "per-request worlds cap")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent world evaluations per request (answers are identical for every value)")
		seed      = flag.Int64("seed", 1, "base seed for content-derived request streams")
	)
	flag.Parse()
	if *gin == "" {
		fatal(fmt.Errorf("need -graph"))
	}

	f, err := os.Open(*gin)
	if err != nil {
		fatal(err)
	}
	g, err := ug.ReadUncertainGraph(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	srv := &qserve.Server{
		G:         g,
		Worlds:    *worlds,
		MaxWorlds: *maxWorlds,
		Workers:   *workers,
		Seed:      *seed,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The address line goes to stdout unbuffered so supervisors (and the
	// smoke test) can read the chosen port before the first request.
	fmt.Printf("queryd: serving %d vertices / %d candidate pairs at http://%s\n",
		g.NumVertices(), g.NumPairs(), ln.Addr())
	httpServer := &http.Server{
		Handler: srv.Handler(),
		// Bound header/idle time so stalled clients cannot pin
		// goroutines and fds forever; no WriteTimeout, since a
		// max-worlds batch is allowed to compute for a while.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := httpServer.Serve(ln); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "queryd:", err)
	os.Exit(1)
}
