// Command queryd serves analytical queries over a registry of
// published uncertain graphs: a long-lived HTTP/JSON daemon for the
// paper's consumption side (§1, §6), where releases accumulate per
// dataset, per ε, per epoch and one daemon hosts them all, backed by
// the batched possible-world query engine (worlds sampled once per
// request, one BFS per distinct source per world, per-graph pools of
// zero-alloc buffers across requests).
//
// Usage:
//
//	queryd -graph published.ug [-graphs releases/] [-addr :8781]
//	       [-worlds 738] [-workers N] [-seed 1]
//	       [-max-worlds 20000] [-max-queries 1024]
//	       [-mem-budget 1073741824] [-max-knn-sources 64]
//	       [-global-mem-budget 8589934592] [-tolerance 0.05]
//	       [-load-mode auto|mmap|heap]
//	       [-result-cache-budget 268435456]
//
// -graph loads one file and makes it the default graph (the legacy
// alias endpoints resolve to it); -graphs loads every *.ug and *.ugb
// in a directory, each named by its basename. At least one is
// required, and both compose. When exactly one graph is loaded it
// becomes the default either way.
//
// Formats are sniffed by magic, not extension: text files are parsed,
// binary .ugb files (see gengraph -convert / obfuscate -format binary)
// are memory-mapped, so their cold start is a page-table setup rather
// than a parse and their arrays live in the shared page cache.
// -load-mode overrides the mapping policy: auto (the default) maps where
// the platform supports it, mmap requires it, heap always reads into
// private memory.
//
// Endpoints:
//
//	GET    /healthz                          (limits + per-graph residency/eviction stats)
//	GET    /graphs                           (list with stats)
//	PUT    /graphs/{name}                    (publish a graph; ?worlds=&tolerance=&mem-budget= overrides)
//	POST   /graphs/{name}                    (same as PUT)
//	DELETE /graphs/{name}
//	GET    /graphs/{name}/reliability?s=0&t=5[&worlds=1000][&seed=7]
//	GET    /graphs/{name}/distance?s=0&t=5
//	GET    /graphs/{name}/knn?s=0&k=10
//	POST   /graphs/{name}/batch   {"worlds":1000,"queries":[{"op":"reliability","s":0,"t":5}, ...]}
//	GET    /reliability, /distance, /knn + POST /batch   (aliases for the default graph)
//
// Graphs are kept resident under -global-mem-budget: crossing it
// evicts the least-recently-used cold graphs, and the next request for
// an evicted graph reloads it from its source (the uploaded bytes or
// its file) transparently. Unless a request pins a seed, its world
// stream is derived from the server seed, the graph name and the
// request content, so identical requests return identical answers —
// bit-identical even across an evict/reload cycle.
//
// That determinism funds the result cache: complete answers are stored
// under -result-cache-budget bytes of LRU (default 256 MiB; 0 disables
// caching), keyed by graph release and fully resolved request content,
// so a repeated request is a lookup, N identical concurrent requests
// compute once (single-flight), and concurrent requests sharing a
// world stream ride one sampler tick. Cached, coalesced and shared
// answers are byte-identical to fresh recomputation; republishing or
// deleting a graph invalidates its entries. /healthz and /graphs
// report hit/miss/byte counters in "result_cache".
//
// The daemon shuts down gracefully: SIGINT or SIGTERM stops accepting
// new connections, lets in-flight requests drain for -drain (default
// 10s), then force-closes whatever remains — a dropped connection's
// request context cancels its batch run mid-flight — and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"uncertaingraph/internal/qserve"
	"uncertaingraph/internal/ugbin"
)

func main() {
	var (
		gin        = flag.String("graph", "", "published uncertain graph to serve as the default graph")
		gdir       = flag.String("graphs", "", "directory of published graphs: every *.ug is loaded at startup, named by basename")
		addr       = flag.String("addr", ":8781", "listen address (port 0 picks a free port)")
		worlds     = flag.Int("worlds", 0, "default worlds per request (0 selects the Hoeffding default, 738)")
		maxWorlds  = flag.Int("max-worlds", qserve.DefaultMaxWorlds, "per-request worlds cap")
		maxQueries = flag.Int("max-queries", qserve.DefaultMaxQueries, "per-request query-count cap (>= 1)")
		memBudget  = flag.Int64("mem-budget", qserve.DefaultMemoryBudget, "per-request worst-case accumulator budget in bytes (over-budget requests get HTTP 413)")
		maxKNN     = flag.Int("max-knn-sources", qserve.DefaultMaxKNNSources, "per-request cap on distinct k-NN sources")
		globalMem  = flag.Int64("global-mem-budget", qserve.DefaultGlobalMemBudget, "resident-graph byte budget; crossing it evicts least-recently-used cold graphs")
		maxGraphs  = flag.Int("max-graphs", qserve.DefaultMaxGraphs, "cap on registered graphs (loaded or evicted)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent world evaluations per request (answers are identical for every value)")
		seed       = flag.Int64("seed", 1, "base seed for content-derived request streams")
		tol        = flag.Float64("tolerance", 0, "default adaptive-precision tolerance: requests stop sampling once every query's relative SEM is at most this (0 disables; requests may override via the \"tolerance\" field)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests on SIGINT/SIGTERM")
		loadMode   = flag.String("load-mode", "auto", "how binary .ugb graphs are brought into memory: auto (mmap where supported), mmap (required), heap (always copy)")
		cacheMem   = flag.Int64("result-cache-budget", qserve.DefaultResultCacheBudget, "result-cache byte budget: complete answers are cached (LRU), identical concurrent requests coalesce and share world streams; 0 disables")
	)
	flag.Parse()
	if *gin == "" && *gdir == "" {
		fatal(fmt.Errorf("need -graph and/or -graphs"))
	}
	if !(*tol >= 0) || math.IsInf(*tol, 0) {
		fatal(fmt.Errorf("-tolerance %v must be a finite non-negative number", *tol))
	}
	if *maxQueries < 1 {
		fatal(fmt.Errorf("-max-queries %d must be >= 1", *maxQueries))
	}
	if *globalMem < 1 {
		fatal(fmt.Errorf("-global-mem-budget %d must be >= 1", *globalMem))
	}
	if *cacheMem < 0 {
		fatal(fmt.Errorf("-result-cache-budget %d must be >= 0", *cacheMem))
	}
	mode, err := ugbin.ParseMode(*loadMode)
	if err != nil {
		fatal(err)
	}

	srv := &qserve.Server{
		Worlds:          *worlds,
		MaxWorlds:       *maxWorlds,
		MaxQueries:      *maxQueries,
		Workers:         *workers,
		Seed:            *seed,
		Tolerance:       *tol,
		MemoryBudget:    *memBudget,
		MaxKNNSources:   *maxKNN,
		GlobalMemBudget: *globalMem,
		MaxGraphs:       *maxGraphs,
		BinaryLoadMode:  mode,
		// Cache by default at the daemon level; the library default is
		// off so embedders (and the registry's own tests) opt in.
		ResultCacheBudget: *cacheMem,
	}

	if err := loadGraphs(srv, *gdir, *gin); err != nil {
		fatal(err)
	}
	graphs, totals := srv.GraphStats()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The address line goes to stdout unbuffered so supervisors (and the
	// smoke test) can read the chosen port before the first request.
	var vertices, pairs int
	for _, g := range graphs {
		vertices += g.Vertices
		pairs += g.Pairs
	}
	fmt.Printf("queryd: serving %d vertices / %d candidate pairs across %d graph(s) at http://%s\n",
		vertices, pairs, totals.Graphs, ln.Addr())
	for _, g := range graphs {
		def := ""
		if g.Name == srv.DefaultGraph {
			def = " (default)"
		}
		mem := fmt.Sprintf("%d resident bytes", g.ResidentBytes)
		if g.MappedBytes > 0 {
			mem = fmt.Sprintf("%d mapped bytes", g.MappedBytes)
		}
		fmt.Printf("queryd: graph %q: %d vertices / %d candidate pairs / %s%s\n",
			g.Name, g.Vertices, g.Pairs, mem, def)
	}
	httpServer := &http.Server{
		Handler: srv.Handler(),
		// Bound header/idle time so stalled clients cannot pin
		// goroutines and fds forever; no WriteTimeout, since a
		// max-worlds batch is allowed to compute for a while.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: SIGINT/SIGTERM stops the accept loop, in-flight
	// requests get *drain to finish, then the remaining connections are
	// force-closed (cancelling their request contexts, which aborts
	// their batch runs between worlds). Either way the daemon exits 0 —
	// a supervisor's stop is not an error.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-sigCtx.Done():
		stop() // restore default signal handling: a second signal kills
		fmt.Printf("queryd: shutting down (draining up to %s)\n", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		err := httpServer.Shutdown(shutCtx)
		cancel()
		if err != nil {
			// Drain deadline hit: force-close stragglers; their request
			// contexts cancel and the pooled batches stop mid-flight.
			httpServer.Close()
		}
		<-serveErr // Serve has returned ErrServerClosed by now
		fmt.Println("queryd: shutdown complete")
	}
}

// loadGraphs publishes the startup graphs into srv: every *.ug and
// *.ugb in dir (when non-empty, sorted so a name present in both
// serializations keeps the binary), then file (when non-empty) as the
// default graph. A one-graph registry serves the legacy alias
// endpoints too, whichever flag loaded it.
func loadGraphs(srv *qserve.Server, dir, file string) error {
	if dir != "" {
		paths, err := filepath.Glob(filepath.Join(dir, "*.ug"))
		if err != nil {
			return err
		}
		binPaths, err := filepath.Glob(filepath.Join(dir, "*.ugb"))
		if err != nil {
			return err
		}
		paths = append(paths, binPaths...)
		if len(paths) == 0 {
			return fmt.Errorf("-graphs %s: no *.ug or *.ugb files", dir)
		}
		sort.Strings(paths)
		for _, p := range paths {
			if _, err := srv.PublishFile(graphName(p), p, qserve.GraphConfig{}); err != nil {
				return err
			}
		}
	}
	if file != "" {
		name := graphName(file)
		if _, err := srv.PublishFile(name, file, qserve.GraphConfig{}); err != nil {
			return err
		}
		srv.DefaultGraph = name
	}
	if graphs, _ := srv.GraphStats(); srv.DefaultGraph == "" && len(graphs) == 1 {
		srv.DefaultGraph = graphs[0].Name
	}
	return nil
}

// graphName derives a registry name from a graph file path: the
// basename with the .ug or .ugb suffix dropped — so releases/d.ug and
// releases/d.ugb are alternate serializations of one name, not two
// graphs (loading both from one directory keeps the last in sort
// order, the binary).
func graphName(p string) string {
	base := filepath.Base(p)
	base = strings.TrimSuffix(base, ".ugb")
	return strings.TrimSuffix(base, ".ug")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "queryd:", err)
	os.Exit(1)
}
